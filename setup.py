"""Shim for environments without the `wheel` package (legacy editable install)."""
from setuptools import setup

setup()
