#!/usr/bin/env python
"""Simulator-throughput tracking: measure, seed, and check cycles/sec.

Runs the same matrix as ``benchmarks/test_sim_speed.py`` — architecture ×
engine (fast-forward vs per-cycle reference) × kernel — and records
simulated-cycles-per-second for each cell.

Modes::

    python scripts/bench_simspeed.py                 # print a table
    python scripts/bench_simspeed.py --write         # seed BENCH_simspeed.json
    python scripts/bench_simspeed.py --check         # fail on regression

``--check`` compares against the committed baseline with a machine-speed
calibration: the median of current/baseline ratios across all cells is
taken as this machine's speed factor, and a cell fails only when it is
more than ``--tolerance`` (default 30%) below its *calibrated* baseline.
That keeps the check meaningful on CI runners of unknown speed while
still catching per-cell throughput regressions.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import statistics
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.kernels import get  # noqa: E402
from repro.sim.config import scaled_fermi  # noqa: E402
from repro.sim.gpu import GPU  # noqa: E402

BASELINE_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_simspeed.json"

ARCHES = ("baseline", "vt", "ideal-sched")
ENGINES = ("fast-forward", "reference")
# Mirrors benchmarks/test_sim_speed.py: hotspot is the fast-forward worst
# case, low-occupancy stride the best case.
WORKLOADS = (("hotspot", 0.5), ("stride", 0.0625))
NUM_SMS = 2

# Serial-vs-parallel engine cells: per-CTA pointer chains (``chase``)
# behind a single slow DRAM channel.  The queue staggers the SMs' issue
# windows so *some* SM issues on every cycle — chip fast-forward never
# fires and the serial engine pays the full every-SM scan each cycle,
# while the sharded epoch engine only visits SMs whose window is live.
# ``sim_jobs=1`` keeps the shards in-process: the speedup is algorithmic
# (epoch batching + dormancy), so it holds on a single-core runner.
PARALLEL_KERNEL = "chase"
PARALLEL_NUM_SMS = (32, 128)
PARALLEL_GATE_SMS = 128  # the ≥8-SM workload the speedup gate applies to
PARALLEL_MIN_SPEEDUP = 3.0
PARALLEL_OVERRIDES = {"dram_latency": 800, "dram_channels": 1,
                      "dram_service_cycles": 40, "lat_alu": 1}
PARALLEL_ENGINES = ("serial", "parallel")


def cell_id(kernel: str, arch: str, engine: str) -> str:
    return f"{kernel}/{arch}/{engine}"


def parallel_cell_id(num_sms: int, engine: str) -> str:
    return f"{PARALLEL_KERNEL}/{num_sms}sm/{engine}"


def measure_cell(kernel_name: str, scale: float, arch: str, engine: str,
                 rounds: int) -> dict:
    bench = get(kernel_name)
    best = None
    cycles = 0
    for _ in range(rounds):
        prep = bench.prepare(scale)
        gpu = GPU(scaled_fermi(num_sms=NUM_SMS, arch=arch,
                               fast_forward=engine == "fast-forward"))
        t0 = time.perf_counter()
        result = gpu.launch(bench.kernel, prep.grid_dim, prep.gmem, prep.params)
        elapsed = time.perf_counter() - t0
        cycles = result.stats.cycles
        if best is None or elapsed < best:
            best = elapsed
    return {"cycles": cycles, "seconds": round(best, 6),
            "cycles_per_sec": round(cycles / best, 1)}


def measure_parallel_cell(num_sms: int, engine: str, rounds: int) -> dict:
    bench = get(PARALLEL_KERNEL)
    best = None
    cycles = 0
    for _ in range(rounds):
        prep = bench.prepare(num_sms / 32)
        gpu = GPU(scaled_fermi(num_sms=num_sms, engine=engine, sim_jobs=1,
                               **PARALLEL_OVERRIDES))
        t0 = time.perf_counter()
        result = gpu.launch(bench.kernel, prep.grid_dim, prep.gmem, prep.params)
        elapsed = time.perf_counter() - t0
        prep.check(prep.gmem)
        cycles = result.stats.cycles
        if best is None or elapsed < best:
            best = elapsed
    return {"cycles": cycles, "seconds": round(best, 6),
            "cycles_per_sec": round(cycles / best, 1)}


def parallel_speedups(cells: dict) -> dict[int, float]:
    out = {}
    for num_sms in PARALLEL_NUM_SMS:
        serial = cells.get(parallel_cell_id(num_sms, "serial"))
        par = cells.get(parallel_cell_id(num_sms, "parallel"))
        if serial and par:
            out[num_sms] = par["cycles_per_sec"] / serial["cycles_per_sec"]
    return out


def measure_all(rounds: int) -> dict:
    cells = {}
    for kernel_name, scale in WORKLOADS:
        for arch in ARCHES:
            for engine in ENGINES:
                cells[cell_id(kernel_name, arch, engine)] = measure_cell(
                    kernel_name, scale, arch, engine, rounds)
    for num_sms in PARALLEL_NUM_SMS:
        for engine in PARALLEL_ENGINES:
            cells[parallel_cell_id(num_sms, engine)] = measure_parallel_cell(
                num_sms, engine, rounds)
    return {"num_sms": NUM_SMS,
            "workloads": {k: s for k, s in WORKLOADS},
            "parallel": {"kernel": PARALLEL_KERNEL,
                         "num_sms": list(PARALLEL_NUM_SMS),
                         "gate_sms": PARALLEL_GATE_SMS,
                         "min_speedup": PARALLEL_MIN_SPEEDUP,
                         "overrides": PARALLEL_OVERRIDES},
            "cells": cells}


def print_table(data: dict) -> None:
    cells = data["cells"]
    print(f"{'cell':40s} {'cycles':>9s} {'seconds':>9s} {'cyc/sec':>12s}")
    for name, cell in cells.items():
        print(f"{name:40s} {cell['cycles']:>9d} {cell['seconds']:>9.4f} "
              f"{cell['cycles_per_sec']:>12.0f}")
    for kernel_name, _ in WORKLOADS:
        for arch in ARCHES:
            fast = cells[cell_id(kernel_name, arch, "fast-forward")]
            ref = cells[cell_id(kernel_name, arch, "reference")]
            speedup = fast["cycles_per_sec"] / ref["cycles_per_sec"]
            print(f"fast-forward speedup {kernel_name}/{arch}: x{speedup:.2f}")
    for num_sms, speedup in parallel_speedups(cells).items():
        print(f"parallel speedup {PARALLEL_KERNEL}/{num_sms}sm: x{speedup:.2f}")


def check(data: dict, tolerance: float,
          min_parallel_speedup: float = PARALLEL_MIN_SPEEDUP) -> int:
    if not BASELINE_PATH.exists():
        print(f"no baseline at {BASELINE_PATH}; run with --write first",
              file=sys.stderr)
        return 2
    baseline = json.loads(BASELINE_PATH.read_text())
    base_cells = baseline["cells"]
    ratios = {}
    for name, cell in data["cells"].items():
        if name in base_cells:
            ratios[name] = cell["cycles_per_sec"] / base_cells[name]["cycles_per_sec"]
    if not ratios:
        print("baseline shares no cells with this run", file=sys.stderr)
        return 2
    machine_factor = statistics.median(ratios.values())
    print(f"machine speed factor vs committed baseline: {machine_factor:.2f}")
    failures = []
    for name, ratio in sorted(ratios.items()):
        calibrated = ratio / machine_factor
        status = "ok"
        if calibrated < 1.0 - tolerance:
            status = "REGRESSION"
            failures.append(name)
        print(f"  {name:40s} calibrated {calibrated:5.2f}  {status}")
    # The serial-vs-parallel speedup compares two legs of the *same* run on
    # the same machine, so no calibration is needed: the ratio must clear
    # the gate outright.
    gate = parallel_speedups(data["cells"]).get(PARALLEL_GATE_SMS)
    if gate is not None:
        status = "ok" if gate >= min_parallel_speedup else "BELOW GATE"
        print(f"  parallel speedup @{PARALLEL_GATE_SMS}sm: x{gate:.2f} "
              f"(gate x{min_parallel_speedup:.1f})  {status}")
        if gate < min_parallel_speedup:
            failures.append(f"parallel-speedup@{PARALLEL_GATE_SMS}sm")
    if failures:
        print(f"{len(failures)} cell(s) regressed more than "
              f"{tolerance:.0%} below the calibrated baseline "
              f"or missed the parallel-speedup gate", file=sys.stderr)
        return 1
    print("throughput within tolerance")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--write", action="store_true",
                        help=f"seed {BASELINE_PATH.name} with this run")
    parser.add_argument("--check", action="store_true",
                        help="compare against the committed baseline")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed calibrated shortfall (default 0.30)")
    parser.add_argument("--rounds", type=int, default=3,
                        help="timing rounds per cell; best-of is kept")
    parser.add_argument("--min-parallel-speedup", type=float,
                        default=PARALLEL_MIN_SPEEDUP,
                        help="required parallel-over-serial speedup on the "
                             f"{PARALLEL_GATE_SMS}-SM cell (default "
                             f"{PARALLEL_MIN_SPEEDUP})")
    args = parser.parse_args(argv)

    data = measure_all(args.rounds)
    print_table(data)
    if args.write:
        BASELINE_PATH.write_text(json.dumps(data, indent=2) + "\n")
        print(f"baseline written to {BASELINE_PATH}")
        return 0
    if args.check:
        return check(data, args.tolerance, args.min_parallel_speedup)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
