#!/usr/bin/env python3
"""CI smoke for the fault-tolerant serve stack (see docs/ROBUSTNESS.md).

One scripted campaign proves the headline robustness claims end to end,
against the real server as a separate OS process:

1. a cold **serial** sweep (no store, no server) establishes the ground
   truth ``stats_sha256`` per (benchmark, arch) cell;
2. a server is started and a batch with duplicate specs is submitted —
   at least one submission must **coalesce** onto an in-flight job;
3. the server is SIGKILLed mid-campaign, restarted on the same store,
   and the batch resubmitted — completed cells must come back
   ``cached`` (no re-simulation) and the campaign must finish;
4. a final resubmission of the whole campaign must be >= 90% cache
   reads, and every served digest must equal the cold serial run's —
   byte-identical results across crash, restart, and cache.

Exit code 0 on success; any violated claim raises with diagnostics.
The work directory (store, quarantine, artifacts, cold summary) is left
in place for CI to upload on failure.
"""

import argparse
import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

BENCHES = ["vecadd", "stride"]
ARCHS = ["baseline", "vt"]


def sh_env():
    env = dict(os.environ, PYTHONUNBUFFERED="1")
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    return env


def cold_truth(workdir, scale, sms):
    """Serial no-store sweep; returns {(bench, arch): stats_sha256}."""
    cmd = [sys.executable, "-m", "repro", "sweep", "--serial",
           "--scale", str(scale), "--sms", str(sms),
           "--dir", os.path.join(workdir, "cold-journal"),
           "--format", "json"]
    for bench in BENCHES:
        cmd += ["--benchmark", bench]
    out = subprocess.run(cmd, check=True, env=sh_env(),
                         capture_output=True, text=True).stdout
    summary = json.loads(out)
    with open(os.path.join(workdir, "cold-summary.json"), "w") as handle:
        handle.write(out)
    if not summary["ok"]:
        raise SystemExit(f"cold sweep failed: {summary['counts']}")
    return {(c["benchmark"], c["arch"]): c["stats_sha256"]
            for c in summary["cells"]}


def start_server(store_dir):
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--dir", store_dir,
         "--port", "0", "--jobs", "2"],
        stdout=subprocess.PIPE, text=True, env=sh_env())
    banner = proc.stdout.readline()
    if "listening on http://127.0.0.1:" not in banner:
        proc.kill()
        raise SystemExit(f"server failed to start: {banner!r}")
    port = int(banner.split("http://127.0.0.1:")[1].split()[0])
    print(f"  server pid={proc.pid} port={port}")
    return proc, f"http://127.0.0.1:{port}"


def post_jobs(base, specs):
    request = urllib.request.Request(
        base + "/v1/jobs", data=json.dumps({"jobs": specs}).encode(),
        method="POST")
    try:
        with urllib.request.urlopen(request, timeout=120) as response:
            return json.loads(response.read())
    except urllib.error.HTTPError as error:
        return json.loads(error.read())


def poll_done(base, fingerprint, timeout=300.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        with urllib.request.urlopen(
                base + f"/v1/jobs/{fingerprint}", timeout=30) as response:
            view = json.loads(response.read())
        if view["state"] == "done":
            return view
        time.sleep(0.2)
    raise SystemExit(f"job {fingerprint} did not finish in {timeout}s")


def require(condition, message):
    if not condition:
        raise SystemExit(f"FAIL: {message}")
    print(f"  ok: {message}")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dir", default="serve-smoke",
                        help="work directory (left behind for forensics)")
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument("--sms", type=int, default=1)
    args = parser.parse_args()
    os.makedirs(args.dir, exist_ok=True)
    store_dir = os.path.join(args.dir, "store")

    print("== cold serial ground truth ==")
    truth = cold_truth(args.dir, args.scale, args.sms)

    specs = [{"benchmark": bench, "arch": arch,
              "scale": args.scale, "sms": args.sms}
             for bench in BENCHES for arch in ARCHS]
    batch = specs + specs  # every spec submitted twice: dedupe must fire

    print("== campaign 1: submit duplicates, SIGKILL mid-run ==")
    proc, base = start_server(store_dir)
    try:
        results = post_jobs(base, batch)["results"]
        outcomes = [r["outcome"] for r in results]
        print(f"  outcomes: {outcomes}")
        require(outcomes.count("coalesced") >= 1,
                "duplicate submissions coalesced onto in-flight jobs")
        require("rejected" not in outcomes, "no spurious queue rejections")
        first_fp = results[0]["job"]["fingerprint"]
        first = poll_done(base, first_fp)
        require(first["ok"], "first cell completed before the kill")
    finally:
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait()
    print(f"  SIGKILLed server pid={proc.pid} mid-campaign")

    print("== campaign 2: restart, resume, finish ==")
    proc, base = start_server(store_dir)
    try:
        results = post_jobs(base, specs)["results"]
        outcomes = [r["outcome"] for r in results]
        print(f"  outcomes: {outcomes}")
        require(outcomes[0] == "cached",
                "pre-kill result served from the store after restart")
        views = {}
        for result in results:
            fingerprint = result["job"]["fingerprint"]
            view = poll_done(base, fingerprint)
            require(view["ok"], f"{view['benchmark']}/{view['arch']} finished")
            views[(view["benchmark"], view["arch"])] = view

        print("== campaign 3: full resubmit must be cache reads ==")
        results = post_jobs(base, specs)["results"]
        outcomes = [r["outcome"] for r in results]
        print(f"  outcomes: {outcomes}")
        cache_ratio = outcomes.count("cached") / len(outcomes)
        require(cache_ratio >= 0.9,
                f"resubmitted campaign is >=90% cache reads ({cache_ratio:.0%})")

        print("== byte-identity vs the cold serial run ==")
        for key, view in sorted(views.items()):
            require(view["stats_sha256"] == truth[key],
                    f"{key[0]}/{key[1]} digest identical to cold run")
        with urllib.request.urlopen(base + "/v1/stats", timeout=30) as resp:
            stats = json.loads(resp.read())
        print(f"  server stats: {json.dumps(stats)}")
        require(stats["store"]["corrupt"] == 0, "no entry quarantined")
    finally:
        proc.kill()
        proc.wait()

    print("PASS: serve smoke — coalesce, kill, resume, cache, byte-identity")
    return 0


if __name__ == "__main__":
    sys.exit(main())
