"""X2 (extension) — does Virtual Thread generalize to a Kepler-class SM?

Kepler doubles Fermi's scheduling structures *and* its register file, so
small-CTA kernels stay scheduling-limited and VT still pays off — with a
smaller average gain because the baseline already holds twice the warps.
"""

from conftest import run_once

from repro.analysis.experiments import x2_kepler


def test_x2_kepler(benchmark, report_sink):
    report, data = run_once(benchmark, lambda: x2_kepler())
    report_sink("X2", report)
    geomean = data.pop("geomean")
    # VT still wins on average on the next generation...
    assert geomean > 1.05
    # ...and never loses on this subset.
    for name, row in data.items():
        assert row["speedup"] > 0.97, name
        assert row["limiter"] == "scheduling", name
