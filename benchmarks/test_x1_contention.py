"""X1 (extension) — oversubscription cache contention on spmv.

E5's one regression diagnosed: VT's active-set rotation spreads the L1
working set on irregular gather kernels, inflating DRAM traffic.  The
experiment quantifies the effect and evaluates the LIFO ``most-recent``
selection-policy mitigation implemented in this reproduction.
"""

from conftest import bench_config, bench_scale, run_once

from repro.analysis.experiments import x1_contention


def test_x1_contention(benchmark, report_sink):
    # Contention requires oversubscription: never shrink below full scale.
    scale = max(1.0, bench_scale())
    report, data = run_once(
        benchmark, lambda: x1_contention(bench_config(), scale=scale)
    )
    report_sink("X1", report)
    base = data["baseline"]
    vt = data["vt / oldest-ready (paper)"]
    lifo = data["vt / most-recent (LIFO ext.)"]
    # Diagnosis: the VT loss comes with extra DRAM traffic and a lower L1
    # hit rate, not extra instructions.
    assert vt["dram"] > base["dram"] * 1.2
    assert vt["l1_hit"] < base["l1_hit"] + 1e-9
    # Mitigation: LIFO selection recovers a chunk of the lost traffic.
    assert lifo["dram"] < vt["dram"]
    assert lifo["cycles"] <= vt["cycles"]
