"""E8 — sensitivity: VT speedup vs virtual-CTA provisioning.

Paper claim reproduced: gains grow with the resident-CTA cap and
saturate once capacity (not provisioning) binds; a 1x cap degenerates to
the baseline.
"""

import pytest
from conftest import bench_config, bench_scale, run_once

from repro.analysis.experiments import e8_vcta_degree


def test_e8_vcta_degree(benchmark, report_sink):
    report, data = run_once(
        benchmark, lambda: e8_vcta_degree(bench_config(), scale=bench_scale())
    )
    report_sink("E8", report)
    # 1x provisioning = no virtual CTAs = baseline performance.
    assert data[1.0]["geomean"] == pytest.approx(1.0, abs=0.02)
    # More provisioning helps...
    assert data[2.0]["geomean"] > data[1.0]["geomean"] + 0.03
    # ...with diminishing returns toward the capacity limit.
    gain_12 = data[2.0]["geomean"] - data[1.0]["geomean"]
    gain_34 = data[4.0]["geomean"] - data[3.0]["geomean"]
    assert gain_34 < gain_12
