"""E10 — sensitivity: VT gain vs DRAM latency.

Paper claim reproduced: VT's benefit grows with memory latency — the
longer the stalls, the more an extra pool of ready CTAs is worth.
"""

from conftest import bench_config, bench_scale, run_once

from repro.analysis.experiments import e10_mem_latency


def test_e10_mem_latency(benchmark, report_sink):
    report, data = run_once(
        benchmark, lambda: e10_mem_latency(bench_config(), scale=bench_scale())
    )
    report_sink("E10", report)
    geomeans = [data[lat]["geomean"] for lat in (200, 400, 600, 800)]
    # Strictly positive gain everywhere, growing with latency overall.
    assert all(gm > 1.05 for gm in geomeans)
    assert geomeans[-1] > geomeans[0]
