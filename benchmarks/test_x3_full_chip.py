"""X3 (methodology) — the scaled 2-SM chip is faithful to the full chip.

Every other experiment runs on a scaled-down configuration for
tractability.  This target validates that methodology: at matched per-SM
CTA pressure the full 15-SM GTX480-class chip reproduces the scaled
chip's VT speedups within a few percent.
"""

from conftest import bench_config, run_once

from repro.analysis.experiments import x3_full_chip


def test_x3_full_chip(benchmark, report_sink):
    report, data = run_once(benchmark, lambda: x3_full_chip(bench_config()))
    report_sink("X3", report)
    for name, row in data.items():
        assert row["gap"] < 0.10, f"{name}: scaled vs full chip diverge by {row['gap']:.1%}"
        # The full chip preserves the qualitative result too.
        assert (row["full"] > 1.05) == (row["scaled"] > 1.05), name
