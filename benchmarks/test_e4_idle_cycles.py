"""E4 — motivation figure: baseline idle-cycle breakdown.

Paper claim reproduced: on scheduling-limited, memory-intensive kernels
the baseline SM spends a large fraction of cycles with zero issuable
warps because of long-latency memory stalls.
"""

from conftest import bench_config, bench_scale, run_once

from repro.analysis.experiments import e4_idle_cycles


def test_e4_idle_cycles(benchmark, report_sink):
    report, data = run_once(
        benchmark, lambda: e4_idle_cycles(bench_config(), scale=bench_scale())
    )
    report_sink("E4", report)
    # Latency-class kernels starve on memory in the baseline.
    assert data["stride"]["mem"] > 0.25
    assert data["streamcluster"]["mem"] > 0.2
    # Compute-bound kernels do not.
    assert data["mm_tiled"]["mem"] < 0.15
    # Every breakdown is a valid distribution.
    for name, breakdown in data.items():
        total = sum(breakdown.values())
        assert abs(total - 1.0) < 1e-9, name
