"""Benchmark harness plumbing.

Every experiment Ei gets one pytest-benchmark target that (a) regenerates
the paper artifact's rows/series, (b) writes the report to
``benchmarks/results/Ei.txt``, and (c) asserts the reproduction's shape
claims.  Environment knobs:

* ``REPRO_BENCH_SCALE`` — workload scale factor (default 1.0),
* ``REPRO_BENCH_SMS``   — simulated SM count (default 2).
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.sim.config import scaled_fermi

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def bench_config(**overrides):
    num_sms = int(os.environ.get("REPRO_BENCH_SMS", "2"))
    return scaled_fermi(num_sms=num_sms, **overrides)


@pytest.fixture
def report_sink():
    """Write an experiment report to benchmarks/results/ and echo it."""

    def sink(experiment_id: str, report: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{experiment_id}.txt"
        path.write_text(report + "\n")
        print(f"\n{report}\n[report written to {path}]")

    return sink


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
