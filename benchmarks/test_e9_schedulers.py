"""E9 — interaction with the warp scheduler.

Paper claim reproduced: VT's benefit is largely orthogonal to the warp
scheduling policy — it adds TLP the scheduler can use, rather than
competing with it, so every policy sees a positive geomean gain.
"""

from conftest import bench_config, bench_scale, run_once

from repro.analysis.experiments import e9_schedulers


def test_e9_schedulers(benchmark, report_sink):
    report, data = run_once(
        benchmark, lambda: e9_schedulers(bench_config(), scale=bench_scale())
    )
    report_sink("E9", report)
    for policy in ("lrr", "gto", "two-level"):
        assert data[policy]["geomean"] > 1.1, policy
