"""E1 — Table 1: the simulated GPU configuration."""

from conftest import bench_config, run_once

from repro.analysis.experiments import e1_config_table


def test_e1_config_table(benchmark, report_sink):
    report, data = run_once(benchmark, lambda: e1_config_table(bench_config()))
    report_sink("E1", report)
    cfg = data["config"]
    # Fermi-class scheduling and capacity limits (the paper's baseline).
    assert cfg.max_warps_per_sm == 48
    assert cfg.max_ctas_per_sm == 8
    assert cfg.registers_per_sm * 4 == 128 * 1024
    assert cfg.smem_per_sm == 48 * 1024
