"""E2 — Table 2: benchmark suite and limiter classification.

Paper claim reproduced: *most* general-purpose kernels are scheduling-
limited — their register/shared-memory footprint would admit more CTAs
than the scheduling structures allow.
"""

from conftest import bench_config, run_once

from repro.analysis.experiments import e2_benchmark_table
from repro.core.occupancy import LimiterClass


def test_e2_benchmark_table(benchmark, report_sink):
    report, data = run_once(benchmark, lambda: e2_benchmark_table(bench_config()))
    report_sink("E2", report)
    limiters = [occ.limiter for occ in data.values()]
    scheduling = sum(1 for lim in limiters if lim is LimiterClass.SCHEDULING)
    capacity = sum(1 for lim in limiters if lim is LimiterClass.CAPACITY)
    # The paper's observation: the scheduling limit dominates in practice.
    assert scheduling > len(limiters) / 2
    # But the suite includes capacity-limited counterexamples.
    assert capacity >= 2
