"""E7 — sensitivity: VT speedup vs context-switch latency.

Paper claim reproduced: because only scheduling state is saved/restored,
VT tolerates realistic swap costs; gains survive an order of magnitude of
cost inflation and only collapse at extreme (hundreds-of-cycles) costs.
"""

from conftest import bench_config, bench_scale, run_once

from repro.analysis.experiments import SWAP_LATENCY_POINTS, e7_swap_latency


def test_e7_swap_latency(benchmark, report_sink):
    report, data = run_once(
        benchmark, lambda: e7_swap_latency(bench_config(), scale=bench_scale())
    )
    report_sink("E7", report)
    free = data[(0, 0)]["geomean"]
    paper_cost = data[(2, 1)]["geomean"]
    ten_x = data[(8, 4)]["geomean"]
    extreme = data[(128, 64)]["geomean"]
    # The paper-cost point is within a few percent of a free switch.
    assert paper_cost > free * 0.97
    # Robust at ~4x the cost.
    assert ten_x > paper_cost * 0.9
    # Monotone degradation; extreme costs erase most of the gain.
    assert extreme < ten_x
    assert extreme < paper_cost
