"""E3 — motivation figure: CTAs/SM at the scheduling vs capacity limit."""

from conftest import bench_config, run_once

from repro.analysis.experiments import e3_cta_residency


def test_e3_cta_residency(benchmark, report_sink):
    report, headroom = run_once(benchmark, lambda: e3_cta_residency(bench_config()))
    report_sink("E3", report)
    # Scheduling-limited kernels leave >=2x CTA capacity idle ...
    assert headroom["stride"] >= 2.0
    assert headroom["bfs"] >= 2.0
    assert headroom["hotspot"] >= 2.0
    # ... while capacity-limited kernels have no headroom at all.
    assert headroom["mm_tiled"] == 1.0
    assert headroom["regheavy"] == 1.0
