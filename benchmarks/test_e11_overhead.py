"""E11 — hardware-overhead table.

Paper claim reproduced: the state VT moves on a context switch (PCs,
SIMT stacks, barrier bits) is small next to the register file and shared
memory that stay in place — that asymmetry is the whole mechanism.
"""

from conftest import bench_config, run_once

from repro.analysis.experiments import e11_overhead


def test_e11_overhead(benchmark, report_sink):
    report, data = run_once(benchmark, lambda: e11_overhead(bench_config()))
    report_sink("E11", report)
    overhead = data["overhead"]
    # Backup SRAM for 4x CTA virtualization stays well under the
    # capacity it virtualizes.
    assert overhead.overhead_fraction < 0.20
    assert overhead.backup_bytes < overhead.shared_mem_bytes
    # Per-warp scheduling state is hundreds of bits, not kilobytes.
    assert overhead.per_warp_bits < 4096
