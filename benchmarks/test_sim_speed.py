"""Simulator-throughput benchmark (not a paper artifact).

Measures simulated-cycles-per-second of the timing model itself — per
architecture, per engine (event-driven fast-forward vs per-cycle
reference), on two representative kernels:

* ``hotspot`` — compute/shared-memory bound, the fast-forward worst case
  (few dead cycles to skip);
* ``stride`` — a latency-bound strided-load chain at low occupancy, the
  fast-forward best case (long provably-dead stall spans).

Workload preparation happens in the benchmark setup hook so only
``GPU.launch`` is timed.  ``scripts/bench_simspeed.py`` runs the same
matrix standalone and checks it against the committed baseline in
``BENCH_simspeed.json``.
"""

import pytest
from conftest import bench_config

from repro.kernels import get
from repro.sim.config import scaled_fermi
from repro.sim.gpu import GPU

# (kernel, workload scale): hotspot at its usual benchmark scale; stride
# small enough that one CTA lands per SM — raw memory latency, no overlap.
WORKLOADS = [("hotspot", 0.5), ("stride", 0.0625)]

# Serial-vs-sharded engine comparison: the queue-staggered pointer chase
# from scripts/bench_simspeed.py at many SMs.  Kept at 32 SMs here so the
# pytest-benchmark sweep stays quick; the standalone script also runs the
# 128-SM gate cell.
PARALLEL_SMS = 32
PARALLEL_OVERRIDES = {"dram_latency": 800, "dram_channels": 1,
                      "dram_service_cycles": 40, "lat_alu": 1}


def _setup(kernel_name, scale, arch, fast_forward):
    bench = get(kernel_name)
    prep = bench.prepare(scale)
    gpu = GPU(bench_config(arch=arch, fast_forward=fast_forward))
    return (gpu, bench.kernel, prep), {}


def _launch(gpu, kernel, prep):
    return gpu.launch(kernel, prep.grid_dim, prep.gmem, prep.params).stats.cycles


@pytest.mark.parametrize("engine", ["fast-forward", "reference"])
@pytest.mark.parametrize("kernel_name,scale", WORKLOADS, ids=lambda v: str(v))
@pytest.mark.parametrize("arch", ["baseline", "vt", "ideal-sched"])
def test_simulator_throughput(benchmark, arch, kernel_name, scale, engine):
    fast_forward = engine == "fast-forward"
    cycles = benchmark.pedantic(
        _launch,
        setup=lambda: _setup(kernel_name, scale, arch, fast_forward),
        rounds=3,
    )
    assert cycles > 0
    # Report simulated cycles/second alongside wall time.
    benchmark.extra_info["simulated_cycles"] = cycles


def _setup_parallel(engine):
    bench = get("chase")
    prep = bench.prepare(PARALLEL_SMS / 32)
    gpu = GPU(scaled_fermi(num_sms=PARALLEL_SMS, engine=engine, sim_jobs=1,
                           **PARALLEL_OVERRIDES))
    return (gpu, bench.kernel, prep), {}


@pytest.mark.parametrize("engine", ["serial", "parallel"])
def test_engine_throughput(benchmark, engine):
    cycles = benchmark.pedantic(
        _launch,
        setup=lambda: _setup_parallel(engine),
        rounds=3,
    )
    assert cycles > 0
    benchmark.extra_info["simulated_cycles"] = cycles
