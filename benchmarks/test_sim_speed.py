"""Simulator-throughput benchmark (not a paper artifact).

Measures simulated-cycles-per-second of the timing model itself on a
representative kernel under each architecture, so performance regressions
in the simulator are visible in benchmark history.  Unlike the experiment
targets this one runs multiple rounds for a stable timing.
"""

import pytest
from conftest import bench_config

from repro.kernels import get
from repro.sim.gpu import GPU


def _simulate(arch):
    bench = get("hotspot")
    prep = bench.prepare(0.5)
    gpu = GPU(bench_config(arch=arch))
    result = gpu.launch(bench.kernel, prep.grid_dim, prep.gmem, prep.params)
    return result.stats.cycles


@pytest.mark.parametrize("arch", ["baseline", "vt", "ideal-sched"])
def test_simulator_throughput(benchmark, arch):
    cycles = benchmark.pedantic(lambda: _simulate(arch), rounds=3, iterations=1)
    assert cycles > 0
    # Report simulated cycles/second alongside wall time.
    benchmark.extra_info["simulated_cycles"] = cycles
