"""E6 — TLP figure: resident warps/CTAs, baseline vs Virtual Thread.

Paper claim reproduced: VT multiplies *resident* parallelism on
scheduling-limited kernels while the *active* set still respects the
scheduling limit.
"""

from conftest import bench_config, bench_scale, run_once

from repro.analysis.experiments import e6_tlp


def test_e6_tlp(benchmark, report_sink):
    report, data = run_once(
        benchmark, lambda: e6_tlp(bench_config(), scale=bench_scale())
    )
    report_sink("E6", report)
    # Scheduling-limited kernels: VT keeps ~2-4x more warps resident.
    assert data["stride"]["vt_warps"] > data["stride"]["base_warps"] * 1.8
    assert data["btree"]["vt_warps"] > data["btree"]["base_warps"] * 1.3
    assert data["bfs"]["vt_warps"] > data["bfs"]["base_warps"] * 1.05
    # Active CTAs never exceed the scheduling limit of 8.
    for name, row in data.items():
        assert row["vt_active_ctas"] <= 8.0 + 1e-6, name
    # Capacity-limited kernels cannot gain residency.
    assert abs(data["regheavy"]["vt_ctas"] - data["regheavy"]["base_ctas"]) < 0.3
