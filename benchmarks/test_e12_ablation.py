"""E12 — ablation: swap-trigger and incoming-selection policies.

Design-choice check called out in DESIGN.md: the paper's all-stalled /
oldest-ready combination is competitive; hysteresis (timeout) trades a
few swaps for a little performance; an eager majority trigger swaps away
runnable warps.
"""

from conftest import bench_config, bench_scale, run_once

from repro.analysis.experiments import e12_ablation

PAPER = "all-stalled / oldest-ready (paper)"


def test_e12_ablation(benchmark, report_sink):
    report, data = run_once(
        benchmark, lambda: e12_ablation(bench_config(), scale=bench_scale())
    )
    report_sink("E12", report)
    assert data[PAPER]["geomean"] > 1.1
    # The paper's trigger is within a few percent of every variant.
    best = max(row["geomean"] for row in data.values())
    assert data[PAPER]["geomean"] > best * 0.93
    # Every variant is a viable design point — the mechanism, not the
    # policy detail, carries the gain.
    for label, row in data.items():
        assert row["geomean"] > 1.1, label
    # The eager majority trigger swaps at least as often as the paper's.
    majority = data["majority-stalled / oldest-ready"]
    assert majority["swaps"] >= data[PAPER]["swaps"]
