"""E5 — the headline figure: VT and ideal-sched speedup over baseline.

Paper claim reproduced (shape): VT improves the suite geomean by tens of
percent (paper: +23.9% average on their suite/testbed), tracks the
ideal-sched upper bound closely, leaves capacity-limited kernels exactly
untouched, and gains little on bandwidth-bound streaming kernels.
"""

import pytest
from conftest import bench_config, bench_scale, run_once

from repro.analysis.experiments import e5_speedup
from repro.analysis.geomean import geomean

# The scheduling-limited, memory-class kernels — the composition of the
# paper's own suite, over which the +23.9% average is reported.
PAPER_CLASS = (
    "bfs", "btree", "stride", "hotspot", "kmeans", "spmv", "srad",
    "streamcluster", "pathfinder", "scan", "reduction", "histogram",
    "saxpy", "vecadd",
)


def test_e5_speedup(benchmark, report_sink):
    report, data = run_once(
        benchmark, lambda: e5_speedup(bench_config(), scale=bench_scale())
    )
    report_sink("E5", report)
    vt = data["vt"]

    # Headline: a double-digit average improvement overall, and the
    # paper's +23.9%-band average over the paper-class subset.
    assert data["geomean_vt"] > 1.10
    paper_class_gm = geomean(vt[name] for name in PAPER_CLASS)
    assert paper_class_gm > 1.18
    # VT never beats the free-hardware upper bound by more than noise.
    assert data["geomean_vt"] <= data["geomean_ideal"] * 1.02

    # Per-class shapes.
    assert vt["stride"] > 1.5          # latency class: large gains
    assert vt["streamcluster"] > 1.4
    assert vt["hotspot"] > 1.1
    assert vt["mm_tiled"] == pytest.approx(1.0)   # capacity class: untouched
    assert vt["regheavy"] == pytest.approx(1.0)
    assert 0.9 < vt["vecadd"] < 1.1    # streaming class: ~flat
    assert 0.9 < vt["nn"] < 1.1
