"""VirtualThreadManager unit tests: admission, activation, the swap engine."""

import pytest

from repro.core.vt import VirtualThreadManager
from repro.isa.kernel import KernelBuilder
from repro.sim.config import GPUConfig
from repro.sim.cta import CTA, CTAState
from repro.sim.smcore import ST_ALU, ST_FINISHED, ST_MEM, ST_READY
from repro.sim.stats import SMStats


def make_kernel(threads=64, regs=16, smem=0):
    b = KernelBuilder("k", regs_per_thread=regs, smem_bytes=smem, cta_dim=(threads, 1, 1))
    b.exit()
    return b.build()


def make_manager(cfg=None):
    return VirtualThreadManager(cfg or GPUConfig(), SMStats())


def make_cta(kernel, cta_id=0):
    return CTA(cta_id, (cta_id, 0, 0), kernel, (64, 1, 1), (), GPUConfig(), 0)


def fill(manager, kernel):
    count = 0
    while manager.can_accept(kernel):
        manager.on_assign(make_cta(kernel, count), 0)
        count += 1
        assert count < 1000
    return count


def status_all(code):
    return lambda warp: code


def test_active_limit_matches_scheduling_limit():
    manager = make_manager()
    assert manager.active_limit(make_kernel(threads=64)) == 8  # CTA slots
    assert manager.active_limit(make_kernel(threads=512)) == 3  # warp slots


def test_admission_beyond_scheduling_limit():
    manager = make_manager()
    kernel = make_kernel(threads=64, regs=16)  # capacity allows 32
    count = fill(manager, kernel)
    assert count == 32  # min(capacity 32, multiplier 4x8=32)
    assert manager.active_cta_count == 8
    inactive = [c for c in manager.resident if c.state is CTAState.INACTIVE]
    assert len(inactive) == 24


def test_admission_respects_capacity():
    manager = make_manager()
    kernel = make_kernel(threads=256, regs=40)  # capacity-limited: 3 CTAs
    assert fill(manager, kernel) == 3
    assert manager.active_cta_count == 3


def test_admission_respects_multiplier_cap():
    manager = make_manager(GPUConfig().with_(vt_max_resident_multiplier=1.5))
    kernel = make_kernel(threads=64, regs=8)
    assert fill(manager, kernel) == 12  # 1.5 x 8


def test_swap_sequence():
    cfg = GPUConfig()
    manager = make_manager(cfg)
    kernel = make_kernel(threads=64)  # 2 warps -> save 4, restore 4 cycles
    fill(manager, kernel)
    victim = next(c for c in manager.resident if c.state is CTAState.ACTIVE)
    # All warps of every active CTA long-latency stalled.
    manager.update(0, status_all(ST_MEM))
    assert manager.stats.swaps == 1
    swapping = [c for c in manager.resident if c.state is CTAState.SWAP_OUT]
    assert swapping == [victim]
    incoming = manager._swap_incoming
    assert incoming.state is CTAState.INACTIVE  # not restoring yet
    # Advance past the save phase.
    save, restore = cfg.vt_swap_cycles_for(2)
    manager.update(save, status_all(ST_MEM))
    assert victim.state is CTAState.INACTIVE
    assert incoming.state is CTAState.SWAP_IN
    # Advance past the restore phase.
    manager.update(save + restore, status_all(ST_MEM))
    assert incoming.state is CTAState.ACTIVE
    assert manager.active_cta_count == 8


def test_no_swap_without_ready_inactive():
    manager = make_manager()
    kernel = make_kernel(threads=64)
    fill(manager, kernel)
    # Make every inactive CTA un-ready (pending global loads).
    for cta in manager.resident:
        if cta.state is CTAState.INACTIVE:
            for w in cta.warps:
                w.scoreboard.set_pending(0, ready_cycle=10**6, is_global=True)
    manager.update(0, status_all(ST_MEM))
    assert manager.stats.swaps == 0


def test_no_swap_when_some_warp_runnable():
    manager = make_manager()
    fill(manager, make_kernel(threads=64))

    def status(warp):
        return ST_READY if warp.local_wid == 0 else ST_MEM

    manager.update(0, status)
    assert manager.stats.swaps == 0


def test_alu_stall_does_not_trigger():
    manager = make_manager()
    fill(manager, make_kernel(threads=64))
    manager.update(0, status_all(ST_ALU))
    assert manager.stats.swaps == 0


def test_promotion_when_active_slot_frees():
    manager = make_manager()
    kernel = make_kernel(threads=64)
    fill(manager, kernel)
    active = next(c for c in manager.resident if c.state is CTAState.ACTIVE)
    for w in active.warps:
        w.do_exit()
    manager.on_cta_finish(active, now=10)
    assert manager.active_cta_count == 7
    manager.update(11, status_all(ST_READY))
    promoted = [c for c in manager.resident if c.state is CTAState.SWAP_IN]
    assert len(promoted) == 1
    _save, restore = GPUConfig().vt_swap_cycles_for(2)
    manager.update(11 + restore, status_all(ST_READY))
    assert manager.active_cta_count == 8


def test_single_swap_engine():
    manager = make_manager()
    fill(manager, make_kernel(threads=64))
    manager.update(0, status_all(ST_MEM))
    swaps_after_first = manager.stats.swaps
    manager.update(1, status_all(ST_MEM))  # engine busy: no second swap
    assert manager.stats.swaps == swaps_after_first == 1


def test_invariants_hold_through_swaps():
    cfg = GPUConfig()
    manager = make_manager(cfg)
    fill(manager, make_kernel(threads=64))
    for now in range(0, 60):
        manager.update(now, status_all(ST_MEM))
        manager.assert_invariants(now)


def test_finish_during_swap_is_defensive_error():
    manager = make_manager()
    fill(manager, make_kernel(threads=64))
    manager.update(0, status_all(ST_MEM))
    victim = manager._swap_victim
    with pytest.raises(RuntimeError, match="context-switched"):
        manager.on_cta_finish(victim, 1)


def test_oldest_ready_selection_order():
    manager = make_manager()
    kernel = make_kernel(threads=64)
    fill(manager, kernel)
    inactive = [c for c in manager.resident if c.state is CTAState.INACTIVE]
    # Stamp distinct deactivation times; oldest must win.
    for i, cta in enumerate(inactive):
        cta.became_inactive_at = 100 - i
    manager.update(0, status_all(ST_MEM))
    assert manager._swap_incoming is inactive[-1]
