"""Planted isolation violations: a shard worker that touches shared state.

Mirrors the shape of ``repro.sim.parallel`` just enough for the entry
registry (module named ``parallel``, a ``_Shard`` class, a shared
``MemoryModel``, a sentinel ``DeferredMemory``) — never imported.
"""

_EPOCH_LOG = {}


class DeferredMemory:
    """The sanctioned shard-side sentinel: mirrors read, NOT prefetch."""

    def __init__(self):
        self.reads = []

    def read(self, addr):
        self.reads.append(addr)
        return 0


class MemoryModel:
    """Coordinator-owned shared memory model."""

    def read(self, addr):
        return addr

    def write(self, addr, value):
        return value

    def prefetch(self, addr):  # no sentinel mirror -> unmirrored seam
        return addr


class L1:
    def __init__(self, memsys):
        self.memsys = memsys  # untyped seam: MemoryModel or DeferredMemory

    def touch(self, addr):
        value = self.memsys.read(addr)  # duck, sanctioned: sentinel mirrors
        self.memsys.prefetch(addr)  # PLANTED: iso-unmirrored-call
        return value


class _Shard:
    def __init__(self):
        self.l1 = L1(DeferredMemory())
        self.mem = MemoryModel()  # PLANTED: iso-shared-call (instantiation)

    def advance(self, cycles):
        _EPOCH_LOG["last"] = cycles  # PLANTED: iso-global-write
        self.l1.touch(cycles)
        self.mem.write(cycles, 1)  # PLANTED: iso-shared-call (typed call)
        return cycles
