"""Planted determinism violations inside a simulator-path module."""

import os
import time


def step(budget):
    started = time.time()  # PLANTED: det-wallclock
    debug = os.environ.get("REPRO_DEBUG")  # PLANTED: det-env-read
    return started, debug, budget
