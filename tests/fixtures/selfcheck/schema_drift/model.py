"""Planted schema drift: serializer and deserializer disagree on keys."""

from dataclasses import dataclass


@dataclass
class Rec:
    alpha: int = 0
    beta: int = 0
    gamma: int = 0

    def to_dict(self):
        # PLANTED: schema-field-coverage ('gamma' silently dropped)
        return {"alpha": self.alpha, "beta": self.beta}

    @classmethod
    def from_dict(cls, data):
        return cls(
            alpha=data["alpha"],
            beta=data["missing"],  # PLANTED: schema-pair-drift
            gamma=data.get("legacy", 0),  # PLANTED: schema-orphan-read
        )
