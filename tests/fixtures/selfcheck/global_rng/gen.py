"""Planted determinism violations: module-global RNG draws."""

import random

import numpy as np


def pick(items):
    random.shuffle(items)  # PLANTED: det-global-rng (stdlib global)
    noise = np.random.rand()  # PLANTED: det-global-rng (legacy numpy global)
    return items, noise


def seeded_ok(seed):
    rng = random.Random(seed)  # fine: instance RNG
    gen = np.random.default_rng(seed)  # fine: sanctioned constructor
    return rng.random(), gen.random()
