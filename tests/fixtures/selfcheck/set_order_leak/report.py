"""Planted output-path nondeterminism: unordered-set iteration."""


def write_report(rows):
    seen = {row for row in rows}
    lines = []
    total = 0.0
    for item in seen:  # PLANTED: det-set-iter (output root iterates a set)
        lines.append(str(item))
        total += item  # PLANTED: det-float-accum (order-dependent rounding)
    return lines, total


def helper_ok(rows):
    return sorted({row for row in rows})  # fine: sorted before iteration
