"""Deterministic fault injection and what the robustness machinery does
with each fault class: delayed fills degrade gracefully, dropped fills are
caught (by the sanitizer immediately, by the watchdog eventually), corrupt
swap metadata trips the state machine, and a stalled warp deadlocks."""

import pytest

from repro.kernels import get
from repro.sim.config import scaled_fermi
from repro.sim.faults import NEVER, FaultPlan
from repro.sim.gpu import GPU, ProgressDeadlock, SimulationTimeout
from repro.sim.sanitizer import InvariantViolation


def _launch(bench_name, arch, faults, *, scale=0.25, check=True, **overrides):
    bench = get(bench_name)
    prep = bench.prepare(scale)
    cfg = scaled_fermi(num_sms=1, arch=arch, **overrides)
    gpu = GPU(cfg)
    result = gpu.launch(bench.kernel, prep.grid_dim, prep.gmem, prep.params,
                        faults=faults)
    if check:
        prep.check(result)
    return result


def test_fault_plan_is_deterministic():
    plan_a = FaultPlan(seed=7, delay_every=3, delay_jitter=50)
    plan_b = FaultPlan(seed=7, delay_every=3, delay_jitter=50)
    seq_a = [plan_a.filter_fill(0, addr, 10, 100) for addr in range(64)]
    seq_b = [plan_b.filter_fill(0, addr, 10, 100) for addr in range(64)]
    assert seq_a == seq_b
    assert any(c > 100 for c in seq_a), "no delay ever fired"


def test_filter_fill_drop_returns_never():
    plan = FaultPlan(drop_nth=2)
    first = plan.filter_fill(0, 0x100, 5, 50)
    second = plan.filter_fill(0, 0x140, 5, 50)
    assert first == 50
    assert second == NEVER


def test_delayed_fills_complete_correctly():
    """Latency faults slow the run down but must not change results."""
    baseline = _launch("vecadd", "baseline", None)
    delayed = _launch("vecadd", "baseline",
                      FaultPlan(seed=1, delay_every=2, delay_cycles=300))
    assert delayed.stats.cycles > baseline.stats.cycles


def test_dropped_fill_caught_by_sanitizer():
    """With the sanitizer on, a lost memory response is flagged as soon as
    the scoreboard entry exceeds the pending-latency bound."""
    with pytest.raises(InvariantViolation) as excinfo:
        _launch("vecadd", "baseline", FaultPlan(drop_nth=3),
                sanitize=True, max_pending_latency=500)
    assert excinfo.value.invariant in ("scoreboard-liveness", "mshr-liveness")


def test_dropped_fill_caught_by_watchdog():
    """Without the sanitizer, the same fault eventually trips the progress
    watchdog, and the deadlock carries a forensic dump."""
    with pytest.raises(ProgressDeadlock) as excinfo:
        _launch("vecadd", "baseline", FaultPlan(drop_nth=3),
                max_pending_latency=500, progress_window=800)
    exc = excinfo.value
    assert isinstance(exc, SimulationTimeout)
    assert exc.dump is not None
    assert "unfinished warps" in exc.dump
    assert "injected faults" in exc.dump


def test_corrupt_swap_metadata_trips_state_machine():
    with pytest.raises(InvariantViolation) as excinfo:
        _launch("stride", "vt", FaultPlan(corrupt_swap_nth=1),
                scale=0.5, sanitize=True)
    exc = excinfo.value
    assert exc.invariant in ("state-machine", "swap-engine")
    assert exc.sm_id == 0


def test_stalled_warp_deadlocks_with_dump():
    plan = FaultPlan(stall_warp=(0, 0, 0), stall_at_cycle=50)
    with pytest.raises(ProgressDeadlock) as excinfo:
        _launch("vecadd", "baseline", plan, progress_window=2000)
    dump = excinfo.value.dump
    assert dump is not None
    assert "resident CTAs" in dump
    assert "stall-warp" in dump  # injected-faults section names the fault


def test_stall_warp_only_matches_target():
    plan = FaultPlan(stall_warp=(1, 0, 0), stall_at_cycle=0)

    class FakeCTA:
        def __init__(self, cta_id):
            self.cta_id = cta_id

    class FakeWarp:
        def __init__(self, cta_id, local_wid):
            self.cta = FakeCTA(cta_id)
            self.local_wid = local_wid

    assert plan.warp_stalled(1, FakeWarp(0, 0), 10)
    assert not plan.warp_stalled(0, FakeWarp(0, 0), 10)
    assert not plan.warp_stalled(1, FakeWarp(0, 1), 10)
    assert not plan.warp_stalled(1, FakeWarp(2, 0), 10)


def test_faults_recorded_as_events():
    plan = FaultPlan(seed=1, delay_every=1, delay_cycles=100)
    plan.filter_fill(0, 0x80, 42, 142)
    assert plan.events
    event = plan.events[0]
    assert event.kind == "delay-response"
    assert event.cycle == 42
    assert "42" in str(event)
