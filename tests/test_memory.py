"""GlobalMemory / SharedMemory: allocation, access, errors, atomics."""

import numpy as np
import pytest

from repro.sim.memory import GlobalMemory, MemoryError_, SharedMemory


def test_alloc_returns_line_aligned_bases():
    g = GlobalMemory(1 << 16, line_bytes=128)
    a = g.alloc("a", 10)
    b = g.alloc("b", 10)
    assert a % 128 == 0
    assert b % 128 == 0
    assert b >= a + 40


def test_write_read_roundtrip():
    g = GlobalMemory(1 << 16)
    g.alloc("x", 8)
    g.write("x", np.arange(8))
    assert list(g.read("x")) == list(range(8))
    assert list(g.read("x", 3)) == [0, 1, 2]


def test_duplicate_alloc_rejected():
    g = GlobalMemory(1 << 16)
    g.alloc("x", 8)
    with pytest.raises(ValueError, match="already"):
        g.alloc("x", 8)


def test_exhaustion_rejected():
    g = GlobalMemory(256)
    with pytest.raises(MemoryError_, match="exhausted"):
        g.alloc("big", 1000)


def test_write_overflow_rejected():
    g = GlobalMemory(1 << 16)
    g.alloc("x", 4)
    with pytest.raises(MemoryError_, match="overflow"):
        g.write("x", np.arange(10))


def test_device_load_store():
    g = GlobalMemory(1 << 12)
    addrs = np.array([0, 4, 8], dtype=np.int64)
    g.store(addrs, np.array([1.0, 2.0, 3.0]))
    assert list(g.load(addrs)) == [1.0, 2.0, 3.0]


def test_misaligned_access_rejected():
    g = GlobalMemory(1 << 12)
    with pytest.raises(MemoryError_, match="misaligned"):
        g.load(np.array([2], dtype=np.int64))


def test_out_of_bounds_rejected():
    g = GlobalMemory(256)
    with pytest.raises(MemoryError_, match="out of bounds"):
        g.load(np.array([1 << 20], dtype=np.int64))
    with pytest.raises(MemoryError_, match="out of bounds"):
        g.load(np.array([-4], dtype=np.int64))


def test_store_conflict_last_lane_wins():
    g = GlobalMemory(1 << 12)
    addrs = np.array([0, 0, 0], dtype=np.int64)
    g.store(addrs, np.array([1.0, 2.0, 3.0]))
    assert g.data[0] == 3.0


def test_atomic_add_returns_old_values():
    g = GlobalMemory(1 << 12)
    addrs = np.zeros(4, dtype=np.int64)
    old = g.atomic_add(addrs, np.ones(4))
    assert list(old) == [0, 1, 2, 3]
    assert g.data[0] == 4


def test_atomic_max_semantics():
    g = GlobalMemory(1 << 12)
    g.data[0] = 5
    old = g.atomic_max(np.zeros(3, dtype=np.int64), np.array([3.0, 9.0, 7.0]))
    assert list(old) == [5, 5, 9]
    assert g.data[0] == 9


def test_shared_memory_bounds():
    s = SharedMemory(64)
    s.store(np.array([60], dtype=np.int64), np.array([1.0]))
    with pytest.raises(MemoryError_, match="out of bounds"):
        s.load(np.array([64], dtype=np.int64))


def test_shared_memory_atomic_add():
    s = SharedMemory(64)
    old = s.atomic_add(np.zeros(2, dtype=np.int64), np.array([2.0, 3.0]))
    assert list(old) == [0, 2]
    assert s.data[0] == 5


def test_zero_sized_shared_memory_allowed():
    s = SharedMemory(0)
    with pytest.raises(MemoryError_):
        s.load(np.array([0], dtype=np.int64))


def test_base_lookup():
    g = GlobalMemory(1 << 12)
    base = g.alloc("buf", 4)
    assert g.base("buf") == base
