"""VT hardware-overhead model and the liveness-compressed swap footprint."""

import pytest

from repro.core.overhead import SwapFootprint, liveness_swap_footprint, vt_overhead
from repro.kernels.registry import all_benchmarks
from repro.sim.config import GPUConfig


def test_backup_is_small_relative_to_capacity():
    report = vt_overhead(GPUConfig())
    assert 0 < report.overhead_fraction < 0.25
    assert report.backup_bytes < report.register_file_bytes


def test_slots_match_multiplier():
    report = vt_overhead(GPUConfig().with_(vt_max_resident_multiplier=4.0, max_ctas_per_sm=8))
    assert report.virtual_cta_slots == 24  # (4-1) x 8


def test_overhead_grows_with_multiplier():
    small = vt_overhead(GPUConfig().with_(vt_max_resident_multiplier=2.0))
    large = vt_overhead(GPUConfig().with_(vt_max_resident_multiplier=4.0))
    assert large.backup_bytes > small.backup_bytes


def test_overhead_grows_with_stack_depth():
    shallow = vt_overhead(GPUConfig(), stack_depth=4)
    deep = vt_overhead(GPUConfig(), stack_depth=16)
    assert deep.backup_bytes > shallow.backup_bytes
    assert deep.per_warp_bits > shallow.per_warp_bits


def test_rows_render():
    rows = vt_overhead().rows()
    labels = [label for label, _value in rows]
    assert any("backup SRAM" in label for label in labels)
    assert any("register file" in label for label in labels)
    assert all(isinstance(v, str) for _l, v in rows)


def test_minimum_one_slot():
    report = vt_overhead(GPUConfig().with_(vt_max_resident_multiplier=1.0))
    assert report.virtual_cta_slots >= 1


# -- liveness-compressed swap footprint --------------------------------------


@pytest.mark.parametrize("bench", all_benchmarks(), ids=lambda b: b.name)
def test_liveness_footprint_never_exceeds_declared(bench):
    fp = liveness_swap_footprint(bench.kernel)
    assert 0 < fp.live_regs <= fp.declared_regs
    assert fp.live_bytes <= fp.declared_bytes
    assert 0.0 <= fp.compression < 1.0


def test_footprint_rejects_impossible_liveness():
    with pytest.raises(ValueError, match="exceeds declared"):
        SwapFootprint(kernel_name="x", declared_regs=4, live_regs=5,
                      threads_per_cta=32)


def test_e11_default_table_unchanged_by_liveness_flag():
    from repro.analysis.experiments import e11_overhead

    plain, _data = e11_overhead()
    augmented, data = e11_overhead(liveness=True)
    assert augmented.startswith(plain)  # default table is byte-identical
    assert "liveness-compressed" in augmented
    assert set(data["footprints"]) == {b.name for b in all_benchmarks()}
