"""VT hardware-overhead model."""

import pytest

from repro.core.overhead import vt_overhead
from repro.sim.config import GPUConfig


def test_backup_is_small_relative_to_capacity():
    report = vt_overhead(GPUConfig())
    assert 0 < report.overhead_fraction < 0.25
    assert report.backup_bytes < report.register_file_bytes


def test_slots_match_multiplier():
    report = vt_overhead(GPUConfig().with_(vt_max_resident_multiplier=4.0, max_ctas_per_sm=8))
    assert report.virtual_cta_slots == 24  # (4-1) x 8


def test_overhead_grows_with_multiplier():
    small = vt_overhead(GPUConfig().with_(vt_max_resident_multiplier=2.0))
    large = vt_overhead(GPUConfig().with_(vt_max_resident_multiplier=4.0))
    assert large.backup_bytes > small.backup_bytes


def test_overhead_grows_with_stack_depth():
    shallow = vt_overhead(GPUConfig(), stack_depth=4)
    deep = vt_overhead(GPUConfig(), stack_depth=16)
    assert deep.backup_bytes > shallow.backup_bytes
    assert deep.per_warp_bits > shallow.per_warp_bits


def test_rows_render():
    rows = vt_overhead().rows()
    labels = [label for label, _value in rows]
    assert any("backup SRAM" in label for label in labels)
    assert any("register file" in label for label in labels)
    assert all(isinstance(v, str) for _l, v in rows)


def test_minimum_one_slot():
    report = vt_overhead(GPUConfig().with_(vt_max_resident_multiplier=1.0))
    assert report.virtual_cta_slots >= 1
