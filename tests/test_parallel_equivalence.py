"""Differential harness: the sharded parallel engine is stats-exact.

The epoch-synchronized multi-shard engine (``GPUConfig.engine =
"parallel"``) may only change wall-clock time.  For every registered
benchmark, ``SimStats.to_dict()`` and the final memory image must be
byte-identical to the serial engine — across shard counts (1 = in-process
shards, 2 = even fork partition, 3 = uneven partition of 4 SMs), across
scheduler/dispatch/VT-policy variants, and under engine degradation (a
killed worker, a cross-shard conflict).  Watchdog behaviour must also be
preserved: the hard cycle limit and the progress deadline fire at
serial-exact cycles with serial-exact messages.

``parallel._STRICT`` is held on for the whole module: an *unexpected*
engine exception must surface instead of hiding behind the silently
correct serial rerun.  Expected declines (conflict, dead worker,
degenerate epoch) still fall back — that path is itself under test.
"""

import numpy as np
import pytest

from repro.kernels import all_benchmarks, get
from repro.sim import parallel
from repro.sim.config import scaled_fermi
from repro.sim.gpu import GPU, ProgressDeadlock, SimulationTimeout

BENCHES = all_benchmarks()
SCALE = 0.25
NUM_SMS = 4


@pytest.fixture(autouse=True)
def strict_engine():
    parallel._STRICT = True
    try:
        yield
    finally:
        parallel._STRICT = False
        parallel._TEST_KILL.clear()


def run(bench, arch, engine, sim_jobs=1, num_sms=NUM_SMS, **overrides):
    prep = bench.prepare(SCALE)
    cfg = scaled_fermi(num_sms=num_sms, arch=arch, engine=engine,
                       sim_jobs=sim_jobs, **overrides)
    result = GPU(cfg).launch(bench.kernel, prep.grid_dim, prep.gmem, prep.params)
    return result


def assert_identical(bench, arch, sim_jobs, **overrides):
    ref = run(bench, arch, "serial", **overrides)
    par = run(bench, arch, "parallel", sim_jobs=sim_jobs, **overrides)
    key = (bench.name, arch, sim_jobs)
    assert par.stats.to_dict() == ref.stats.to_dict(), key
    assert np.array_equal(par.gmem.data, ref.gmem.data), key


@pytest.mark.parametrize("arch", ["baseline", "vt"])
@pytest.mark.parametrize("bench", BENCHES, ids=lambda b: b.name)
def test_stats_byte_identical(bench, arch):
    assert_identical(bench, arch, sim_jobs=1)


@pytest.mark.parametrize("sim_jobs", [2, 3], ids=["even-fork", "uneven-fork"])
@pytest.mark.parametrize("arch", ["baseline", "vt"])
@pytest.mark.parametrize("bench", BENCHES[:6], ids=lambda b: b.name)
def test_shard_counts_byte_identical(bench, arch, sim_jobs):
    """Forked workers, even (4 SMs / 2 shards) and uneven (4 / 3) splits:
    the ordered merge must erase the partition entirely."""
    assert_identical(bench, arch, sim_jobs)


@pytest.mark.parametrize("scheduler", ["lrr", "two-level"])
def test_scheduler_policies_byte_identical(scheduler):
    assert_identical(get("stride"), "baseline", sim_jobs=2,
                     warp_scheduler=scheduler)


@pytest.mark.parametrize("policy", ["timeout", "majority-stalled"])
def test_vt_trigger_policies_byte_identical(policy):
    assert_identical(get("stride"), "vt", sim_jobs=2,
                     vt_trigger_policy=policy)


def test_fill_first_dispatch_byte_identical():
    assert_identical(get("vecadd"), "baseline", sim_jobs=2,
                     cta_dispatch="fill-first")


def test_reference_engine_byte_identical():
    """The parallel engine composes with the per-cycle reference stepping
    (fast_forward off) too, not just the event-driven cores."""
    assert_identical(get("vecadd"), "baseline", sim_jobs=2,
                     fast_forward=False)


def test_hard_limit_exact():
    """The hard cycle limit fires at the same cycle with the same message:
    an epoch that would cross ``max_cycles`` must be truncated, never
    batched over."""
    bench = get("stride")
    messages = {}
    for engine in ("serial", "parallel"):
        prep = bench.prepare(SCALE)
        cfg = scaled_fermi(num_sms=NUM_SMS, engine=engine, sim_jobs=2)
        with pytest.raises(SimulationTimeout) as excinfo:
            GPU(cfg).launch(bench.kernel, prep.grid_dim, prep.gmem,
                            prep.params, max_cycles=300)
        messages[engine] = str(excinfo.value)
    assert messages["parallel"] == messages["serial"]


def test_progress_deadlock_exact():
    """A pending-latency watchdog tuned below the DRAM round-trip fires the
    deadlock at the identical cycle under both engines."""
    bench = get("stride")
    messages = {}
    for engine in ("serial", "parallel"):
        prep = bench.prepare(SCALE)
        cfg = scaled_fermi(num_sms=NUM_SMS, engine=engine, sim_jobs=2,
                           progress_window=60, max_pending_latency=30)
        with pytest.raises(ProgressDeadlock) as excinfo:
            GPU(cfg).launch(bench.kernel, prep.grid_dim, prep.gmem,
                            prep.params)
        messages[engine] = str(excinfo.value)
    assert messages["parallel"] == messages["serial"]


def test_dead_worker_degrades_to_serial():
    """Killing one forked worker mid-run must degrade to the serial rerun
    with byte-identical stats — the dead shard's partial epoch must leave
    no trace in memory."""
    bench = get("vecadd")
    ref = run(bench, "baseline", "serial")
    parallel._TEST_KILL[0] = 1  # worker 0 hard-exits at its second epoch
    try:
        par = run(bench, "baseline", "parallel", sim_jobs=2)
    finally:
        parallel._TEST_KILL.clear()
    assert par.stats.to_dict() == ref.stats.to_dict()
    assert np.array_equal(par.gmem.data, ref.gmem.data)


def test_conflict_fallback_is_exact():
    """bfs writes lines read by other SMs inside an epoch: the engine must
    decline (restoring pre-launch memory) and the serial rerun must be
    indistinguishable from never having tried."""
    assert_identical(get("bfs"), "baseline", sim_jobs=2)


def test_results_still_correct():
    """End to end: the benchmark's own numerical check passes on the
    parallel engine (functional behaviour untouched, not just stats)."""
    bench = get("chase")
    prep = bench.prepare(SCALE)
    cfg = scaled_fermi(num_sms=NUM_SMS, engine="parallel", sim_jobs=3)
    result = GPU(cfg).launch(bench.kernel, prep.grid_dim, prep.gmem, prep.params)
    prep.check(result)
