"""SMStats/SimStats aggregation and derived metrics."""

import pytest

from repro.sim.stats import SimStats, SMStats


def make_sim(sm_list):
    stats = SimStats()
    stats.sm_stats = sm_list
    stats.cycles = max((s.cycles for s in sm_list), default=0)
    stats.instructions = sum(s.instructions for s in sm_list)
    return stats


def test_ipc():
    sm = SMStats(cycles=100, instructions=50)
    stats = make_sim([sm])
    assert stats.ipc == 0.5


def test_ipc_zero_cycles():
    assert SimStats().ipc == 0.0


def test_idle_cycles_sum():
    sm = SMStats(idle_cycles_mem=3, idle_cycles_alu=2, idle_cycles_barrier=1,
                 idle_cycles_struct=4, idle_cycles_swap=5, idle_cycles_empty=6)
    assert sm.idle_cycles == 21


def test_idle_breakdown_sums_to_one():
    sm = SMStats(cycles=10, idle_cycles_mem=4, idle_cycles_alu=1)
    stats = make_sim([sm])
    breakdown = stats.idle_breakdown()
    assert breakdown["mem"] == pytest.approx(0.4)
    assert breakdown["busy"] == pytest.approx(0.5)
    assert sum(breakdown.values()) == pytest.approx(1.0)


def test_hit_rates():
    a = SMStats(l1_accesses=10, l1_hits=5)
    b = SMStats(l1_accesses=10, l1_hits=10)
    stats = make_sim([a, b])
    assert stats.l1_hit_rate == 0.75
    stats.l2_accesses = 4
    stats.l2_hits = 1
    assert stats.l2_hit_rate == 0.25


def test_occupancy_averages_use_sample_counts():
    sm = SMStats(occupancy_samples=4, resident_warp_samples=64,
                 schedulable_warp_samples=32, resident_cta_samples=16,
                 active_cta_samples=8)
    stats = make_sim([sm])
    assert stats.avg_resident_warps == 16.0
    assert stats.avg_schedulable_warps == 8.0
    assert stats.avg_resident_ctas == 4.0
    assert stats.avg_active_ctas == 2.0


def test_total_swaps():
    stats = make_sim([SMStats(swaps=3), SMStats(swaps=4)])
    assert stats.total_swaps == 7


def test_instruction_mix_fractions():
    a = SMStats(instructions_by_class={"alu": 6, "fpu": 2})
    b = SMStats(instructions_by_class={"alu": 2})
    stats = make_sim([a, b])
    mix = stats.instruction_mix()
    assert mix == {"alu": 0.8, "fpu": 0.2}
    assert SimStats().instruction_mix() == {}


def test_simd_efficiency():
    sm = SMStats(cycles=10, instructions=4, thread_instructions=64)
    stats = make_sim([sm])
    stats.thread_instructions = 64
    assert stats.simd_efficiency == pytest.approx(0.5)
    assert SimStats().simd_efficiency == 0.0


def test_summary_renders():
    sm = SMStats(cycles=10, instructions=5, occupancy_samples=1,
                 resident_warp_samples=8)
    stats = make_sim([sm])
    text = stats.summary()
    assert "IPC" in text and "cycle breakdown" in text


# ---------------------------------------------------------------------------
# to_dict / from_dict round-trip (the sweep journal depends on this)
# ---------------------------------------------------------------------------

def _populated_sm() -> SMStats:
    return SMStats(
        cycles=1000, instructions=400, thread_instructions=12800,
        instructions_by_class={"alu": 300, "mem_global": 100},
        issue_slots=2000, issued_slots=400,
        idle_cycles_mem=50, idle_cycles_alu=10, idle_cycles_swap=5,
        occupancy_samples=10, resident_warp_samples=480,
        schedulable_warp_samples=300, resident_cta_samples=80,
        active_cta_samples=60, swaps=7, swap_busy_cycles=90,
        l1_accesses=100, l1_hits=60, smem_accesses=3,
        global_transactions=40, ctas_completed=12,
    )


def test_smstats_round_trip():
    sm = _populated_sm()
    clone = SMStats.from_dict(sm.to_dict())
    assert clone == sm


def test_simstats_round_trip_preserves_counters_and_metrics():
    stats = SimStats(cycles=1000, instructions=400, thread_instructions=12800,
                     sm_stats=[_populated_sm(), SMStats(cycles=900)],
                     l2_accesses=80, l2_hits=40, dram_requests=40,
                     ctas_launched=24)
    clone = SimStats.from_dict(stats.to_dict())
    assert clone == stats
    # Derived metrics recompute identically from the restored counters.
    assert clone.ipc == stats.ipc
    assert clone.l1_hit_rate == stats.l1_hit_rate
    assert clone.l2_hit_rate == stats.l2_hit_rate
    assert clone.total_swaps == stats.total_swaps
    assert clone.idle_breakdown() == stats.idle_breakdown()
    assert clone.instruction_mix() == stats.instruction_mix()


def test_simstats_round_trip_is_json_safe():
    import json

    stats = SimStats(cycles=10, sm_stats=[_populated_sm()])
    wire = json.loads(json.dumps(stats.to_dict()))
    assert SimStats.from_dict(wire) == stats


def test_from_dict_ignores_unknown_keys():
    data = SimStats(cycles=5).to_dict()
    data["a_future_counter"] = 123
    data["sm_stats"] = [{"cycles": 3, "another_future_counter": 9}]
    clone = SimStats.from_dict(data)
    assert clone.cycles == 5
    assert clone.sm_stats[0].cycles == 3


def test_real_run_stats_round_trip():
    from repro.analysis.runner import run_benchmark
    from repro.kernels.registry import get
    from repro.sim.config import scaled_fermi

    record = run_benchmark(get("vecadd"), scaled_fermi(num_sms=1), scale=0.25)
    clone = SimStats.from_dict(record.stats.to_dict())
    assert clone == record.stats
