"""Domain-specific semantic properties of the benchmark kernels.

Beyond the generic reference check in test_kernels.py, each kernel has
structural invariants a correct port must satisfy (histogram mass
conservation, transpose involution, BFS idempotence, ...).  These catch
bugs a single lucky reference match could mask.
"""

import numpy as np
import pytest

from repro.kernels import get
from repro.sim.config import scaled_fermi
from repro.sim.gpu import GPU
from repro.sim.memory import GlobalMemory

CFG = scaled_fermi(num_sms=1)
SCALE = 0.25


def run(name, scale=SCALE, arch="baseline"):
    bench = get(name)
    prep = bench.prepare(scale)
    gpu = GPU(CFG.with_(arch=arch))
    result = gpu.launch(bench.kernel, prep.grid_dim, prep.gmem, prep.params)
    return prep, result


def test_histogram_conserves_mass():
    prep, result = run("histogram")
    bins = result.read("hist")
    data = result.read("data")
    assert bins.sum() == len(data)
    assert (bins >= 0).all()


def test_transpose_involution():
    # Transposing the transpose must restore the original matrix.
    bench = get("transpose")
    prep = bench.prepare(SCALE)
    gpu = GPU(CFG)
    first = gpu.launch(bench.kernel, prep.grid_dim, prep.gmem, prep.params)
    out = first.read("out")
    side = int(np.sqrt(len(out)))

    gmem = GlobalMemory(1 << 23)
    gmem.alloc("in", side * side)
    gmem.alloc("out", side * side)
    gmem.write("in", out)
    second = gpu.launch(bench.kernel, prep.grid_dim, gmem,
                        params=(gmem.base("in"), gmem.base("out"), side))
    original = first.gmem.read("in", side * side)
    assert np.array_equal(second.read("out"), original)


def test_bfs_expansion_is_idempotent():
    # Running the same level expansion twice changes nothing more.
    bench = get("bfs")
    prep = bench.prepare(SCALE)
    gpu = GPU(CFG)
    first = gpu.launch(bench.kernel, prep.grid_dim, prep.gmem, prep.params)
    after_one = first.read("level").copy()
    second = gpu.launch(bench.kernel, prep.grid_dim, first.gmem, prep.params)
    assert np.array_equal(second.read("level"), after_one)


def test_bfs_levels_monotone():
    from repro.kernels.bfs import CURRENT_LEVEL

    prep, result = run("bfs")
    levels = result.read("level")
    finite = levels[levels < 1_000_000]
    assert finite.min() >= 0
    # Expanding level L can only produce levels <= L + 1.
    assert finite.max() <= CURRENT_LEVEL + 1


def test_reduction_partials_positive_and_bounded():
    prep, result = run("reduction")
    partials = result.read("partial")
    # Sum of 256 uniform [0,1) values per CTA.
    assert (partials > 0).all()
    assert (partials < 256).all()


def test_kmeans_assignments_in_range():
    prep, result = run("kmeans")
    assign = result.read("assign")
    assert (assign >= 0).all()
    assert (assign < 5).all()
    assert (assign == np.floor(assign)).all()


def test_streamcluster_never_worsens_cost():
    bench = get("streamcluster")
    prep = bench.prepare(SCALE)
    before = prep.gmem.read("cost").copy()
    gpu = GPU(CFG)
    result = gpu.launch(bench.kernel, prep.grid_dim, prep.gmem, prep.params)
    after = result.read("cost")
    assert (after <= before + 1e-12).all()


def test_nn_distances_nonnegative():
    prep, result = run("nn")
    assert (result.read("dist") >= 0).all()


def test_mm_tiled_identity():
    # A @ I == A through the real kernel.
    bench = get("mm_tiled")
    from repro.kernels.mm_tiled import K_DIM, TILE

    tiles = 2
    m = n = TILE * tiles
    k = K_DIM
    rng = np.random.default_rng(5)
    a = rng.random((m, k))
    identity_padded = np.zeros((k, n))
    np.fill_diagonal(identity_padded, 1.0)

    gmem = GlobalMemory(1 << 23)
    gmem.alloc("a", m * k)
    gmem.alloc("b", k * n)
    gmem.alloc("c", m * n)
    gmem.write("a", a)
    gmem.write("b", identity_padded)
    gpu = GPU(CFG)
    result = gpu.launch(bench.kernel, (tiles, tiles, 1), gmem,
                        params=(gmem.base("a"), gmem.base("b"), gmem.base("c"),
                                k, n, k // TILE))
    got = result.read("c").reshape(m, n)
    assert np.allclose(got, a @ identity_padded)


def test_pathfinder_zero_wall_is_zero():
    bench = get("pathfinder")
    from repro.kernels.pathfinder import CTA_THREADS, STEPS

    grid = 2
    width = CTA_THREADS * grid
    gmem = GlobalMemory(1 << 23)
    gmem.alloc("wall", (STEPS + 1) * width)
    gmem.alloc("out", width)
    gpu = GPU(CFG)
    result = gpu.launch(bench.kernel, (grid, 1, 1), gmem,
                        params=(gmem.base("wall"), gmem.base("out"), width, STEPS))
    assert (result.read("out") == 0).all()


def test_srad_preserves_constant_field():
    # Laplacian of a constant field is zero -> output equals input.
    bench = get("srad")
    from repro.kernels.srad import CTA_Y, WIDTH

    rows = 2
    height = CTA_Y * rows
    gmem = GlobalMemory(1 << 23)
    gmem.alloc("in", height * WIDTH)
    gmem.alloc("out", height * WIDTH)
    gmem.write("in", np.full(height * WIDTH, 0.7))
    gpu = GPU(CFG)
    result = gpu.launch(bench.kernel, (WIDTH // 32, rows, 1), gmem,
                        params=(gmem.base("in"), gmem.base("out"), WIDTH, height))
    assert np.allclose(result.read("out"), 0.7)


def test_hotspot_weighted_mean_bounds():
    prep, result = run("hotspot")
    out = result.read("out")
    field = result.read("in")
    # Output is a convex-ish combination of [0,1) inputs with weight sum 1.
    assert out.min() >= 0
    assert out.max() <= 1.0 + 1e-9
    assert not np.array_equal(out, field)


def test_stride_accumulates_iters_values():
    prep, result = run("stride")
    from repro.kernels.stride import ITERS

    out = result.read("out")
    # Sum of ITERS uniform [0,1) values.
    assert (out > 0).all()
    assert (out < ITERS).all()


def test_spmv_zero_vector_gives_zero():
    bench = get("spmv")
    prep = bench.prepare(SCALE)
    prep.gmem.write("x", np.zeros(len(prep.gmem.read("x"))))
    gpu = GPU(CFG)
    result = gpu.launch(bench.kernel, prep.grid_dim, prep.gmem, prep.params)
    assert (result.read("y") == 0).all()


def test_backprop_outputs_are_sigmoid_range():
    prep, result = run("backprop")
    out = result.read("out")
    assert (out > 0).all()
    assert (out < 1).all()


def test_btree_results_are_valid_insertion_points():
    prep, result = run("btree")
    found = result.read("result")
    keys = result.read("keys")
    queries = result.read("queries")
    n = len(found)
    for i in range(0, n, 37):  # spot-check a sample
        idx = int(found[i])
        assert 0 <= idx <= len(keys)
        if idx > 0:
            assert keys[idx - 1] <= queries[i]
        if idx < len(keys):
            assert keys[idx] > queries[i]


def test_scan_is_monotone_for_positive_inputs():
    prep, result = run("scan")
    from repro.kernels.scan import CTA_THREADS

    out = result.read("out").reshape(-1, CTA_THREADS)
    assert (np.diff(out, axis=1) >= 0).all()
    # First element of each block is the raw input.
    data = result.read("in").reshape(-1, CTA_THREADS)
    assert np.allclose(out[:, 0], data[:, 0])


def test_nw_zero_similarity_gives_gap_staircase():
    # With similarity 0 everywhere, F[i][j] = -gap * max(i, j) ... actually
    # the optimum alignment of cost 0 matches along the diagonal, so
    # F[i][j] = -gap * |i - j|.
    bench = get("nw")
    from repro.kernels.nw import BLOCK, GAP

    grid = 2
    gmem = GlobalMemory(1 << 23)
    gmem.alloc("ref", grid * BLOCK * BLOCK)
    gmem.alloc("out", grid * BLOCK * BLOCK)
    gpu = GPU(CFG)
    result = gpu.launch(bench.kernel, (grid, 1, 1), gmem,
                        params=(gmem.base("ref"), gmem.base("out")))
    out = result.read("out").reshape(grid, BLOCK, BLOCK)
    i = np.arange(1, BLOCK + 1)[:, None]
    j = np.arange(1, BLOCK + 1)[None, :]
    expected = -GAP * np.abs(i - j).astype(np.float64)
    for b in range(grid):
        assert np.allclose(out[b], expected)


def test_mriq_zero_input_gives_zero():
    bench = get("mriq")
    prep = bench.prepare(SCALE)
    prep.gmem.write("x", np.zeros(len(prep.gmem.read("x"))))
    gpu = GPU(CFG)
    result = gpu.launch(bench.kernel, prep.grid_dim, prep.gmem, prep.params)
    assert np.allclose(result.read("out"), 0.0)


def test_vecadd_commutes():
    bench = get("vecadd")
    prep = bench.prepare(SCALE)
    a = prep.gmem.read("a").copy()
    b = prep.gmem.read("b").copy()
    gpu = GPU(CFG)
    r1 = gpu.launch(bench.kernel, prep.grid_dim, prep.gmem, prep.params)
    swapped = bench.prepare(SCALE)
    swapped.gmem.write("a", b)
    swapped.gmem.write("b", a)
    r2 = gpu.launch(bench.kernel, swapped.grid_dim, swapped.gmem, swapped.params)
    assert np.array_equal(r1.read("c"), r2.read("c"))
