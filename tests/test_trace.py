"""CTA tracer: sampling, rendering, state accounting."""

import pytest

from repro.analysis.trace import CTATracer
from repro.kernels import get
from repro.sim.config import scaled_fermi
from repro.sim.gpu import GPU


def traced_run(arch, stride=32):
    bench = get("stride")
    prep = bench.prepare(0.5)
    tracer = CTATracer(stride=stride)
    gpu = GPU(scaled_fermi(num_sms=1, arch=arch))
    result = gpu.launch(bench.kernel, prep.grid_dim, prep.gmem, prep.params, tracer=tracer)
    prep.check(result)
    return tracer


def test_stride_must_be_positive():
    with pytest.raises(ValueError):
        CTATracer(stride=0)


def test_tracer_collects_samples():
    tracer = traced_run("baseline")
    assert tracer.sample_count > 0
    assert tracer.samples
    symbols = {s for row in tracer.samples.values() for s in row.values()}
    assert symbols <= {"A", "i", "s", "-"}


def test_baseline_ctas_are_only_active():
    tracer = traced_run("baseline")
    for cta_id in tracer.samples:
        fractions = tracer.state_fractions(cta_id)
        assert set(fractions) == {"A"}, cta_id


def test_vt_shows_inactive_and_switching_states():
    tracer = traced_run("vt", stride=8)
    symbols = {s for row in tracer.samples.values() for s in row.values()}
    assert "i" in symbols  # virtual CTAs parked inactive
    assert "A" in symbols


def test_render_timeline_shape():
    tracer = traced_run("vt")
    text = tracer.render_timeline(max_ctas=6)
    lines = text.splitlines()
    assert "timeline" in lines[0]
    cta_lines = [l for l in lines if l.startswith("cta")]
    assert len(cta_lines) == 6
    # All rows render to equal width.
    assert len({len(l) for l in cta_lines}) == 1


def test_render_compresses_to_width():
    tracer = traced_run("vt", stride=4)
    text = tracer.render_timeline(max_ctas=3, width=40)
    for line in text.splitlines():
        if line.startswith("cta"):
            assert len(line) <= 8 + 41


def test_empty_tracer_renders_placeholder():
    assert CTATracer().render_timeline() == "(no samples)"


def test_state_fractions_sum_to_one():
    tracer = traced_run("vt")
    cta_id = next(iter(tracer.samples))
    fractions = tracer.state_fractions(cta_id)
    assert abs(sum(fractions.values()) - 1.0) < 1e-9
    assert tracer.state_fractions(999999) == {}
