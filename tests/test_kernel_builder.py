"""KernelBuilder API and static kernel validation."""

import pytest

from repro.isa.instruction import Imm, Reg
from repro.isa.kernel import Kernel, KernelBuilder, KernelValidationError
from repro.isa.opcodes import CmpOp, Op
from repro.isa.instruction import Instruction


def test_builder_builds_runnable_kernel():
    b = KernelBuilder("k", regs_per_thread=8, cta_dim=(64, 1, 1))
    b.s2r(0, "tid_x")
    b.movi(1, 0)
    b.label("loop")
    b.iadd(1, 1, Imm(1))
    b.setp("lt", 2, 1, Imm(4))
    b.bra("loop", pred=2)
    b.exit()
    k = b.build()
    assert k.name == "k"
    assert k.instrs[4].target == 2
    assert k.instrs[4].cmp is None
    assert k.instrs[3].cmp is CmpOp.LT
    assert k.warps_per_cta() == 2


def test_builder_int_operands_are_registers():
    b = KernelBuilder("k", regs_per_thread=4)
    b.iadd(0, 1, 2)
    b.exit()
    k = b.build()
    assert k.instrs[0].srcs == (Reg(1), Reg(2))


def test_builder_float_operands_are_immediates():
    b = KernelBuilder("k", regs_per_thread=4)
    b.fadd(0, 1, 2.5)
    b.exit()
    k = b.build()
    assert k.instrs[0].srcs == (Reg(1), Imm(2.5))


def test_builder_bool_operand_rejected():
    b = KernelBuilder("k", regs_per_thread=4)
    with pytest.raises(TypeError, match="bool"):
        b.iadd(0, True, 2)


def test_undefined_label_raises_at_build():
    b = KernelBuilder("k", regs_per_thread=4)
    b.bra("nowhere")
    b.exit()
    with pytest.raises(KernelValidationError, match="nowhere"):
        b.build()


def test_duplicate_label_rejected():
    b = KernelBuilder("k", regs_per_thread=4)
    b.label("x")
    with pytest.raises(KernelValidationError, match="duplicate"):
        b.label("x")


def test_memory_helpers():
    b = KernelBuilder("k", regs_per_thread=8, smem_bytes=64)
    b.ldg(0, 1, offset=4)
    b.stg(1, 0, offset=8)
    b.lds(2, 3)
    b.sts(3, 2)
    b.atoms_add(4, 3, 2)
    b.atomg_add(5, 1, 2)
    b.exit()
    k = b.build()
    ops = [i.op for i in k.instrs[:6]]
    assert ops == [Op.LDG, Op.STG, Op.LDS, Op.STS, Op.ATOMS_ADD, Op.ATOMG_ADD]
    assert k.instrs[0].srcs[0].offset == 4


def test_nop_count():
    b = KernelBuilder("k", regs_per_thread=4)
    b.nop(3)
    b.exit()
    assert len(b.build().instrs) == 4


def test_validation_requires_exit():
    with pytest.raises(KernelValidationError, match="EXIT"):
        Kernel(name="k", instrs=[Instruction(op=Op.NOP)], regs_per_thread=4)


def test_validation_register_overflow():
    b = KernelBuilder("k", regs_per_thread=4)
    b.mov(7, Imm(1))
    b.exit()
    with pytest.raises(KernelValidationError, match="r7"):
        b.build()


def test_validation_branch_target_range():
    instrs = [
        Instruction(op=Op.BRA, target=99),
        Instruction(op=Op.EXIT),
    ]
    with pytest.raises(KernelValidationError, match="outside the kernel"):
        Kernel(name="k", instrs=instrs, regs_per_thread=4)


def test_validation_missing_dst():
    instrs = [
        Instruction(op=Op.IADD, dst=None, srcs=(Reg(0), Reg(1))),
        Instruction(op=Op.EXIT),
    ]
    with pytest.raises(KernelValidationError, match="destination"):
        Kernel(name="k", instrs=instrs, regs_per_thread=4)


def test_validation_empty_kernel():
    with pytest.raises(KernelValidationError, match="no instructions"):
        Kernel(name="k", instrs=[], regs_per_thread=4)


def test_threads_and_warps():
    b = KernelBuilder("k", regs_per_thread=4, cta_dim=(16, 16, 1))
    b.exit()
    k = b.build()
    assert k.threads_per_cta == 256
    assert k.warps_per_cta(32) == 8
    # Partial warps round up.
    b2 = KernelBuilder("k2", regs_per_thread=4, cta_dim=(40, 1, 1))
    b2.exit()
    assert b2.build().warps_per_cta(32) == 2
