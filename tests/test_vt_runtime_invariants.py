"""VT invariants checked *every cycle* of real benchmark runs.

A checking subclass of the manager is injected through the factory; it
validates after every update that scheduling structures are never
oversubscribed and capacity is never exceeded — across thousands of
cycles of swaps on real kernels.
"""

import pytest

import repro.core.vt as vt_module
from repro.core.vt import VirtualThreadManager
from repro.kernels import get
from repro.sim.config import scaled_fermi
from repro.sim.gpu import GPU
from repro.sim.warp import Warp


class CheckedManager(VirtualThreadManager):
    updates = 0

    def update(self, now, warp_status):
        super().update(now, warp_status)
        self.assert_invariants(now)
        CheckedManager.updates += 1


@pytest.fixture
def checked_vt(monkeypatch):
    CheckedManager.updates = 0
    monkeypatch.setattr(vt_module, "VirtualThreadManager", CheckedManager)
    return CheckedManager


@pytest.mark.parametrize("name", ["stride", "pathfinder", "reduction", "histogram"])
def test_invariants_hold_every_cycle(checked_vt, name):
    bench = get(name)
    prep = bench.prepare(0.5)
    gpu = GPU(scaled_fermi(num_sms=1, arch="vt"))
    result = gpu.launch(bench.kernel, prep.grid_dim, prep.gmem, prep.params)
    prep.check(result)
    assert checked_vt.updates > 1000  # the check really ran per cycle


def test_swap_roundtrip_preserves_sched_state(checked_vt):
    """Capture warp scheduling state at swap-out; verify it is untouched
    when the CTA is reactivated (VT moves state, never mutates it)."""
    snapshots = {}
    mismatches = []

    original_advance = CheckedManager._advance_swap

    def spying_advance(self, now):
        victim = self._swap_victim
        original_advance(self, now)
        if victim is not None and self._swap_victim is None:
            # Save-phase completed: record the state placed in backup SRAM.
            snapshots[id(victim)] = (
                victim,
                tuple(w.sched_state_snapshot() for w in victim.warps),
            )

    def spying_begin(self, victim, incoming, now):
        # On reactivation of a previously swapped CTA, compare.
        entry = snapshots.get(id(incoming))
        if entry is not None:
            _cta, saved = entry
            current = tuple(w.sched_state_snapshot() for w in incoming.warps)
            if saved != current:
                mismatches.append(incoming.cta_id)
        CheckedManager.__mro__[1]._begin_swap(self, victim, incoming, now)

    CheckedManager._advance_swap = spying_advance
    CheckedManager._begin_swap = spying_begin
    try:
        bench = get("stride")
        prep = bench.prepare(0.5)
        gpu = GPU(scaled_fermi(num_sms=1, arch="vt"))
        result = gpu.launch(bench.kernel, prep.grid_dim, prep.gmem, prep.params)
        prep.check(result)
    finally:
        CheckedManager._advance_swap = original_advance
        del CheckedManager._begin_swap
    assert snapshots, "no swaps happened; test is vacuous"
    assert not mismatches, f"scheduling state mutated while inactive: {mismatches}"
