"""Planted-violation fixtures: every selfcheck detector must fire.

Each fixture tree under ``tests/fixtures/selfcheck/`` plants one class
of violation; the analyzer must report the expected rule at the right
``file:line`` with call-path evidence, in both the table and JSON output
of the CLI, and exit 1.
"""

import json

import pytest
from pathlib import Path

from repro.cli import main
from repro.selfcheck import run_selfcheck

FIXTURES = Path(__file__).resolve().parent / "fixtures" / "selfcheck"


def _findings(name):
    return run_selfcheck(FIXTURES / name).findings


def _by_rule(findings):
    out = {}
    for f in findings:
        out.setdefault(f.rule, []).append(f)
    return out


# ---------------------------------------------------------------------------
# Shard-isolation race detector
# ---------------------------------------------------------------------------

def test_cross_shard_write_fixture_fires_all_isolation_rules():
    by_rule = _by_rule(_findings("cross_shard_write"))
    gw = by_rule["iso-global-write"]
    assert gw[0].path == "parallel.py"
    assert gw[0].qualname == "parallel._Shard.advance"
    assert "_EPOCH_LOG" in gw[0].message
    assert gw[0].call_path[0] == "parallel._Shard.advance"

    shared = by_rule["iso-shared-call"]
    kinds = {f.qualname for f in shared}
    assert "parallel._Shard.__init__" in kinds  # MemoryModel() instantiation
    assert "parallel._Shard.advance" in kinds  # typed .write() call

    unmirrored = by_rule["iso-unmirrored-call"]
    assert unmirrored[0].qualname == "parallel.L1.touch"
    assert "prefetch" in unmirrored[0].message
    # Call-path evidence: worker entry -> the seam.
    assert unmirrored[0].call_path == [
        "parallel._Shard.advance", "parallel.L1.touch"]


def test_sanctioned_sentinel_mirror_is_not_flagged():
    findings = _findings("cross_shard_write")
    # .read() is mirrored by DeferredMemory: the duck call is legal.
    assert not any("read" in f.message and f.rule == "iso-unmirrored-call"
                   for f in findings)


# ---------------------------------------------------------------------------
# Determinism lint
# ---------------------------------------------------------------------------

def test_global_rng_fixture_flags_both_generators():
    rng = _by_rule(_findings("global_rng"))["det-global-rng"]
    lines = {f.line for f in rng}
    assert lines == {9, 10}, rng
    messages = " ".join(f.message for f in rng)
    assert "random.shuffle" in messages and "np.random.rand" in messages
    # The seeded instance constructors in the same file stay clean.
    assert all(f.qualname == "gen.pick" for f in rng)


def test_wallclock_fixture_flags_sim_path_reads():
    by_rule = _by_rule(_findings("wallclock"))
    clock = by_rule["det-wallclock"][0]
    assert (clock.path, clock.line) == ("sim/tick.py", 8)
    assert clock.call_path == ["sim.tick.step"]
    env = by_rule["det-env-read"][0]
    assert (env.path, env.line) == ("sim/tick.py", 9)


def test_set_order_leak_fixture_flags_output_path_iteration():
    by_rule = _by_rule(_findings("set_order_leak"))
    it = by_rule["det-set-iter"][0]
    assert (it.path, it.line) == ("report.py", 8)
    assert it.qualname == "report.write_report"
    acc = by_rule["det-float-accum"][0]
    assert acc.line == 10 and acc.severity == "warning"
    # sorted() consumption in helper_ok is order-free: not flagged.
    assert len(by_rule["det-set-iter"]) == 1


# ---------------------------------------------------------------------------
# Schema drift
# ---------------------------------------------------------------------------

def test_schema_drift_fixture_flags_all_three_rules():
    by_rule = _by_rule(_findings("schema_drift"))
    drift = by_rule["schema-pair-drift"][0]
    assert "missing" in drift.message and drift.line == 20
    orphan = by_rule["schema-orphan-read"][0]
    assert "legacy" in orphan.message
    coverage = by_rule["schema-field-coverage"][0]
    assert "gamma" in coverage.message
    assert coverage.qualname == "model.Rec.to_dict"


# ---------------------------------------------------------------------------
# CLI: exit codes, table, and JSON document shape
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("fixture", [
    "cross_shard_write", "global_rng", "wallclock", "set_order_leak",
    "schema_drift",
])
def test_cli_exits_1_on_planted_violation(fixture, capsys):
    rc = main(["selfcheck", str(FIXTURES / fixture)])
    out = capsys.readouterr().out
    assert rc == 1
    assert "selfcheck: FAIL" in out
    assert ".py:" in out  # file:line evidence in the table


def test_cli_json_document_shape(capsys):
    rc = main(["selfcheck", str(FIXTURES / "cross_shard_write"),
               "--format", "json"])
    doc = json.loads(capsys.readouterr().out)
    assert rc == 1
    assert doc["ok"] is False
    assert doc["counts"]["iso-global-write"] == 1
    finding = next(f for f in doc["findings"]
                   if f["rule"] == "iso-unmirrored-call")
    assert finding["path"] == "parallel.py"
    assert finding["line"] == 41
    assert finding["call_path"] == [
        "parallel._Shard.advance", "parallel.L1.touch"]
    assert {"rule", "severity", "path", "line", "qualname", "message",
            "call_path", "suppressed", "baselined"} <= set(finding)


def test_cli_table_includes_call_path_evidence(capsys):
    rc = main(["selfcheck", str(FIXTURES / "cross_shard_write")])
    out = capsys.readouterr().out
    assert rc == 1
    assert "via parallel._Shard.advance -> parallel.L1.touch" in out


def test_cli_strict_gates_warnings(capsys):
    # set_order_leak has an error; schema fixture's field-coverage warning
    # only gates under --strict.
    rc_default = main(["selfcheck", str(FIXTURES / "schema_drift")])
    capsys.readouterr()
    rc_strict = main(["selfcheck", str(FIXTURES / "schema_drift"),
                      "--strict"])
    capsys.readouterr()
    assert rc_default == 1  # pair-drift is an error already
    assert rc_strict == 1


def test_cli_on_repo_tree_is_clean(capsys):
    repo = Path(__file__).resolve().parent.parent
    rc = main(["selfcheck", str(repo / "src" / "repro"), "--strict",
               "--baseline", str(repo / "selfcheck-baseline.json")])
    out = capsys.readouterr().out
    assert rc == 0, out
    assert "selfcheck: OK" in out
