"""Workload generators: determinism, shapes, reference helpers."""

import numpy as np

from repro.workloads import (
    bfs_levels,
    random_array,
    random_csr_graph,
    random_csr_matrix,
    random_grid,
    random_ints,
)
from repro.workloads.graphs import INF_LEVEL, bfs_expand_level
from repro.workloads.grids import stencil5_reference
from repro.workloads.matrices import csr_matvec


def test_random_array_deterministic():
    assert (random_array(16, seed=3) == random_array(16, seed=3)).all()
    assert not (random_array(16, seed=3) == random_array(16, seed=4)).all()


def test_random_array_range():
    a = random_array(100, seed=1, low=2.0, high=3.0)
    assert (a >= 2.0).all() and (a < 3.0).all()


def test_random_ints_exact():
    a = random_ints(100, seed=1, low=0, high=10)
    assert (a == np.floor(a)).all()
    assert a.min() >= 0 and a.max() < 10


def test_csr_graph_well_formed():
    row_ptr, col_idx = random_csr_graph(50, avg_degree=4, seed=2)
    assert len(row_ptr) == 51
    assert row_ptr[0] == 0
    assert (np.diff(row_ptr) >= 0).all()
    assert row_ptr[-1] == len(col_idx)
    assert col_idx.min() >= 0 and col_idx.max() < 50


def test_bfs_levels_source_zero():
    row_ptr, col_idx = random_csr_graph(64, avg_degree=4, seed=5)
    levels = bfs_levels(row_ptr, col_idx, source=0)
    assert levels[0] == 0
    reached = levels[levels < INF_LEVEL]
    assert (reached >= 0).all()


def test_bfs_expand_matches_full_bfs():
    row_ptr, col_idx = random_csr_graph(64, avg_degree=4, seed=6)
    upto1 = bfs_levels(row_ptr, col_idx, source=0, max_level=1)
    expanded = bfs_expand_level(row_ptr, col_idx, upto1, current=1)
    upto2 = bfs_levels(row_ptr, col_idx, source=0, max_level=2)
    assert np.array_equal(expanded, upto2)


def test_csr_matrix_and_matvec():
    row_ptr, col_idx, values = random_csr_matrix(20, 20, avg_nnz_per_row=3, seed=7)
    x = random_array(20, seed=8)
    y = csr_matvec(row_ptr, col_idx, values, x)
    # Compare against a dense reconstruction.
    dense = np.zeros((20, 20))
    rp = row_ptr.astype(int)
    for r in range(20):
        for j in range(rp[r], rp[r + 1]):
            dense[r, int(col_idx[j])] += values[j]
    assert np.allclose(y, dense @ x)


def test_grid_shape_and_range():
    g = random_grid(8, 16, seed=9, low=1.0, high=2.0)
    assert g.shape == (8, 16)
    assert (g >= 1.0).all() and (g < 2.0).all()


def test_stencil_reference_constant_field_fixed_point():
    field = np.full((6, 6), 2.0)
    out = stencil5_reference(field, center_weight=0.5, neighbor_weight=0.125)
    # 0.5*2 + 0.125*(4*2) = 2: constant fields are fixed points.
    assert np.allclose(out, 2.0)


def test_stencil_reference_clamps_edges():
    field = np.zeros((3, 3))
    field[0, 0] = 8.0
    out = stencil5_reference(field, 0.0, 0.25)
    # Corner neighbours clamp onto itself twice: (8+8+0+0)*0.25 = 4.
    assert out[0, 0] == 4.0
