"""Static kernel profiler."""

import math

import pytest

from repro.isa import assemble, kernel_profile
from repro.kernels import all_benchmarks, get


def test_reduction_profile():
    profile = kernel_profile(get("reduction").kernel)
    assert profile.barriers == 2
    assert profile.global_loads == 2
    assert profile.global_stores == 1
    assert profile.shared_ops == 5
    assert profile.loops == 1
    assert profile.predicated > 0
    assert profile.basic_blocks >= 3


def test_histogram_counts_atomics():
    profile = kernel_profile(get("histogram").kernel)
    assert profile.atomics == 2  # one shared, one global


def test_straightline_kernel():
    kernel = assemble("""
.kernel line
.regs 4
    MOV r0, #1
    FADD r1, r0, r0
    EXIT
""")
    profile = kernel_profile(kernel)
    assert profile.num_instructions == 3
    assert profile.by_class == {"alu": 1, "fpu": 1, "ctrl": 1}
    assert profile.conditional_branches == 0
    assert profile.loops == 0
    assert math.isinf(profile.arithmetic_intensity)
    assert profile.max_register == 1


def test_loop_vs_forward_branch():
    kernel = assemble("""
.kernel both
.regs 4
top:
    IADD r0, r0, #1
    SETP.LT r1, r0, #4
@r1 BRA top
    SETP.GE r2, r0, #8
@r2 BRA done
    MOV r3, #0
done:
    EXIT
""")
    profile = kernel_profile(kernel)
    assert profile.conditional_branches == 2
    assert profile.loops == 1  # only the backward branch


def test_arithmetic_intensity_orders_kernels():
    mm = kernel_profile(get("mm_tiled").kernel).arithmetic_intensity
    vec = kernel_profile(get("vecadd").kernel).arithmetic_intensity
    assert mm > vec  # GEMM is far denser than streaming add


def test_rows_render_for_all_benchmarks():
    for bench in all_benchmarks():
        rows = kernel_profile(bench.kernel).rows()
        assert any("instructions" in label for label, _v in rows)
        assert all(isinstance(value, str) for _l, value in rows)


def test_total_mix_matches_instruction_count():
    for bench in all_benchmarks():
        profile = kernel_profile(bench.kernel)
        assert sum(profile.by_class.values()) == profile.num_instructions
