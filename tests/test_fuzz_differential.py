"""Differential harness: clean cases pass every leg, planted faults are
detected, and case-level crashes become divergences instead of raising."""

import pytest

from repro.fuzz.campaign import CANARY_FAULT
from repro.fuzz.differential import Divergence, run_case, sample_config
from repro.fuzz.generator import generate_spec


def test_sample_config_is_deterministic_and_varied():
    assert sample_config(4) == sample_config(4)
    configs = [sample_config(seed) for seed in range(12)]
    assert len({cfg.warp_scheduler for cfg in configs}) > 1


def test_clean_case_runs_every_leg():
    result = run_case(generate_spec(0))
    assert result.ok, result.summary()
    assert set(result.legs) == {
        f"{arch}/{leg}" for arch in ("baseline", "vt")
        for leg in ("reference", "fast-forward", "sanitize", "parallel",
                    "bound")}
    assert all(info["status"] == "ok" for info in result.legs.values())
    # The bound leg carries the static interval the measurement fell in.
    for arch in ("baseline", "vt"):
        info = result.legs[f"{arch}/bound"]
        assert info["lo"] <= info["cycles"] <= info["hi"]
    assert result.instructions > 0
    assert result.ref_stats is not None
    # The oracle prediction is recorded for both architectures.
    assert set(result.oracle) == {"baseline", "vt"}
    for summary in result.oracle.values():
        assert {"limiter", "idle_class", "measured_idle", "agrees"} \
            <= set(summary)


def test_planted_fault_is_detected_as_stats_mismatch():
    result = run_case(generate_spec(0), fault=CANARY_FAULT)
    assert not result.ok
    assert {d.kind for d in result.divergences} == {"stats-mismatch"}
    # Only the fast-forward leg carries the fault.
    assert all(d.leg.endswith("/fast-forward") for d in result.divergences)


def test_broken_spec_becomes_divergence_not_exception():
    bad = {"v": 1, "seed": 0, "cta_x": 32, "grid_x": 1, "use_acc": True,
           "segments": [{"kind": "no-such-kind"}]}
    result = run_case(bad)
    assert not result.ok
    assert result.divergences[0].kind == "reference-crash"


def test_divergence_roundtrips_and_prints():
    divergence = Divergence("stats-mismatch", "vt/fast-forward", "cycles differ")
    assert Divergence.from_dict(divergence.to_dict()) == divergence
    assert "stats-mismatch" in str(divergence)


def test_result_to_dict_is_json_safe():
    import json

    result = run_case(generate_spec(1), fault=CANARY_FAULT)
    payload = json.dumps(result.to_dict())
    assert "divergences" in payload


@pytest.mark.parametrize("seed", [2, 3])
def test_case_is_deterministic(seed):
    spec = generate_spec(seed)
    first = run_case(spec)
    second = run_case(spec)
    assert first.ok and second.ok
    assert first.legs == second.legs
    assert first.oracle == second.oracle
