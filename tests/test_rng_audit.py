"""RNG determinism audit.

Two layers: the ``selfcheck`` static analyzer's determinism rules forbid
module-global RNG use anywhere in ``src/repro`` (every stochastic
component must thread an explicitly seeded ``random.Random`` /
``np.random.default_rng``), and a behavioural check that two fuzz
campaigns with the same seed produce identical corpora and verdicts.

The old line-regex scanner this file used to carry lives on as the
AST-based ``det-global-rng`` rule (``repro/selfcheck/determinism.py``),
which also catches aliased imports (``from random import shuffle``) and
is exercised against planted violations in
``tests/test_selfcheck_fixtures.py``.
"""

from pathlib import Path

from repro.fuzz.campaign import run_campaign
from repro.fuzz.generator import generate_spec, spec_fingerprint
from repro.selfcheck import run_selfcheck

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


def test_no_module_global_rng_anywhere():
    report = run_selfcheck(SRC)
    offenders = [f"{f.path}:{f.line}: {f.message}"
                 for f in report.findings
                 if f.rule == "det-global-rng" and f.active]
    assert not offenders, (
        "module-global RNG use (seed a random.Random / "
        "np.random.default_rng instead):\n" + "\n".join(offenders))


def test_generator_does_not_disturb_global_rng():
    import random

    random.seed(1234)
    before = random.random()
    random.seed(1234)
    generate_spec(0)
    generate_spec(1)
    assert random.random() == before


def test_same_seed_campaigns_produce_identical_corpora(tmp_path):
    first = run_campaign(4, seed=10, jobs=0, directory=tmp_path / "a")
    second = run_campaign(4, seed=10, jobs=0, directory=tmp_path / "b")
    assert first.corpus == second.corpus
    assert set(first.records) == set(second.records)
    assert ({k: r.status for k, r in first.records.items()}
            == {k: r.status for k, r in second.records.items()})
    assert first.stats == second.stats


def test_corpus_fingerprints_match_specs():
    for seed in range(5):
        spec = generate_spec(seed)
        assert spec_fingerprint(spec) == spec_fingerprint(generate_spec(seed))
