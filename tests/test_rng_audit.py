"""RNG determinism audit.

Two layers: a source scan that forbids module-global RNG use anywhere in
``src/repro`` (every stochastic component must thread an explicitly
seeded ``random.Random`` / ``np.random.default_rng``), and a behavioural
check that two fuzz campaigns with the same seed produce identical
corpora and verdicts.
"""

import re
from pathlib import Path

from repro.fuzz.campaign import run_campaign
from repro.fuzz.generator import generate_spec, spec_fingerprint

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

# Module-level stdlib RNG calls draw from the interpreter-global
# generator; any of these would make results depend on import order.
_GLOBAL_STDLIB_RNG = re.compile(
    r"\brandom\.(random|randint|randrange|choice|choices|uniform|"
    r"shuffle|sample|seed|gauss|expovariate|betavariate)\s*\("
)

# numpy's legacy global generator; np.random.default_rng(seed) and the
# Generator type are the only sanctioned entry points.
_NUMPY_RANDOM = re.compile(r"\bnp\.random\.(\w+)")
_NUMPY_ALLOWED = {"default_rng", "Generator"}


def _source_files():
    files = sorted(SRC.rglob("*.py"))
    assert files, f"no sources under {SRC}"
    return files


def test_no_module_global_stdlib_rng():
    offenders = []
    for path in _source_files():
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            if _GLOBAL_STDLIB_RNG.search(line.split("#", 1)[0]):
                offenders.append(f"{path}:{lineno}: {line.strip()}")
    assert not offenders, (
        "module-global random.* calls (seed a random.Random instead):\n"
        + "\n".join(offenders))


def test_no_numpy_legacy_global_rng():
    offenders = []
    for path in _source_files():
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            for match in _NUMPY_RANDOM.finditer(line.split("#", 1)[0]):
                if match.group(1) not in _NUMPY_ALLOWED:
                    offenders.append(f"{path}:{lineno}: {line.strip()}")
    assert not offenders, (
        "legacy np.random.* global-state calls (use np.random.default_rng):\n"
        + "\n".join(offenders))


def test_generator_does_not_disturb_global_rng():
    import random

    random.seed(1234)
    before = random.random()
    random.seed(1234)
    generate_spec(0)
    generate_spec(1)
    assert random.random() == before


def test_same_seed_campaigns_produce_identical_corpora(tmp_path):
    first = run_campaign(4, seed=10, jobs=0, directory=tmp_path / "a")
    second = run_campaign(4, seed=10, jobs=0, directory=tmp_path / "b")
    assert first.corpus == second.corpus
    assert set(first.records) == set(second.records)
    assert ({k: r.status for k, r in first.records.items()}
            == {k: r.status for k, r in second.records.items()})
    assert first.stats == second.stats


def test_corpus_fingerprints_match_specs():
    for seed in range(5):
        spec = generate_spec(seed)
        assert spec_fingerprint(spec) == spec_fingerprint(generate_spec(seed))
