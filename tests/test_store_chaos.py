"""Chaos harness: every robustness claim of the store + serve stack with
the fault actually fired.

* crash-consistency property: a writer SIGKILLed at seeded byte offsets /
  commit stages leaves the store fully absent or fully valid for that
  key — never torn;
* storage corruption (bit flip, truncation) mid-campaign self-heals:
  quarantine + recompute, byte-identical result;
* a served campaign killed mid-run resumes after restart, and
  resubmitting a completed campaign is >= 90% cache reads with zero
  re-simulation.

Everything is seeded; a failure replays exactly.
"""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

import pytest

from repro.analysis.journal import cell_fingerprint
from repro.analysis.orchestrator import matrix_cells, run_sweep
from repro.kernels.registry import get
from repro.sim.config import scaled_fermi
from repro.store import chaos
from repro.store.cas import ResultStore, stats_digest
from repro.store.fsio import STAGE_FSYNCED, STAGE_RENAMED, STAGE_WRITE


@pytest.fixture
def cfg():
    return scaled_fermi(num_sms=1)


def _chaos_fingerprint(seed):
    record = chaos.synthetic_record(seed)
    return record, cell_fingerprint(record.benchmark, record.config, 1.0, seed)


# ---------------------------------------------------------------------------
# crash-consistency property: SIGKILLed writers never leave a torn entry
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("kill_stage, kill_bytes", [
    (STAGE_WRITE, 0),      # first chunk reached the temp file
    (STAGE_WRITE, 700),    # seeded mid-entry offset
    (STAGE_FSYNCED, 0),    # data durable in the temp file, rename pending
    (STAGE_RENAMED, 0),    # renamed, directory fsync pending
])
def test_killed_writer_is_all_or_nothing(tmp_path, kill_stage, kill_bytes):
    seed = 21
    record, fingerprint = _chaos_fingerprint(seed)
    exitcode = chaos.run_killed_writer(tmp_path / "store", fingerprint, seed,
                                       kill_stage=kill_stage,
                                       kill_bytes=kill_bytes)
    assert exitcode == -signal.SIGKILL  # the injected crash really fired

    store = ResultStore(tmp_path / "store")
    entry = store.get(fingerprint)
    if kill_stage == STAGE_RENAMED:
        # past the atomic rename the entry is committed and fully valid
        assert entry is not None
        assert entry.record.stats.to_dict() == record.stats.to_dict()
    else:
        # before the rename, nothing is visible under the key...
        assert entry is None
        # ...and crucially the miss was a clean absence, not corruption
        assert store.stats.corrupt == 0
    report = store.verify()
    assert report.quarantined_now == []  # no torn entry ever surfaced
    if kill_stage != STAGE_RENAMED:
        assert report.orphan_temps_removed <= 1  # leftover temp reclaimed
        assert store.gc() == 0  # and reclaimed exactly once


def test_killed_writer_sweep_of_seeded_offsets(tmp_path):
    """The property at many seeded mid-write offsets: whatever byte the
    writer died on, a reader sees all-or-nothing."""
    store_dir = tmp_path / "store"
    for seed in (1, 2, 3):
        record, fingerprint = _chaos_fingerprint(seed)
        for kill_bytes in (0, 512, 1024):
            exitcode = chaos.run_killed_writer(
                store_dir, fingerprint, seed,
                kill_stage=STAGE_WRITE, kill_bytes=kill_bytes)
            store = ResultStore(store_dir)
            entry = store.get(fingerprint)
            if exitcode == 0:
                # kill offset beyond the entry: the commit won the race
                assert entry is not None
                assert entry.record.stats.to_dict() == record.stats.to_dict()
            else:
                assert exitcode == -signal.SIGKILL
                assert entry is None
                assert store.stats.corrupt == 0
            assert store.verify().quarantined_now == []


# ---------------------------------------------------------------------------
# corruption mid-campaign: quarantine + recompute, byte-identical
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("mode", ["bitflip", "truncate"])
def test_corrupted_entry_is_requarantined_and_recomputed(tmp_path, cfg, mode):
    store = ResultStore(tmp_path / "store")
    cells = matrix_cells([get("vecadd")], ["baseline"], cfg, 0.25)
    result = run_sweep(cells, jobs=0, store=store)
    record = result.records[("vecadd", "baseline")]
    assert record.ok and store.stats.puts == 1
    fingerprint = cells[0].fingerprint
    pristine_digest = stats_digest(record.stats.to_dict())

    chaos.corrupt_entry(store, fingerprint, seed=9, mode=mode)

    rerun = run_sweep(matrix_cells([get("vecadd")], ["baseline"], cfg, 0.25),
                      jobs=0, store=store)
    healed = rerun.records[("vecadd", "baseline")]
    assert healed.ok
    assert ("vecadd", "baseline") not in rerun.cached  # it really re-ran
    assert store.stats.corrupt == 1  # the bad entry was caught...
    assert list((store.root / "quarantine").iterdir())  # ...and preserved
    # determinism: the recomputed result is byte-identical to the original
    assert stats_digest(healed.stats.to_dict()) == pristine_digest
    # and the store is whole again: a third pass is a pure cache read
    third = run_sweep(matrix_cells([get("vecadd")], ["baseline"], cfg, 0.25),
                      jobs=0, store=store)
    assert ("vecadd", "baseline") in third.cached


def test_resubmitted_campaign_is_all_cache_reads(tmp_path, cfg):
    """The acceptance bar: resubmitting a completed sweep must be >= 90%
    store reads with zero simulation re-executed (here: 100%)."""
    store = ResultStore(tmp_path / "store")
    benches = [get("vecadd"), get("stride")]
    cells = matrix_cells(benches, ["baseline", "vt"], cfg, 0.25)
    cold = run_sweep(cells, jobs=0, store=store, journal_dir=tmp_path / "s1")
    assert cold.ok and len(cold.cached) == 0

    warm_store = ResultStore(tmp_path / "store")
    warm = run_sweep(matrix_cells(benches, ["baseline", "vt"], cfg, 0.25),
                     jobs=0, store=warm_store, journal_dir=tmp_path / "s2")
    assert warm.ok
    cache_ratio = len(warm.cached) / len(cells)
    assert cache_ratio >= 0.9
    assert warm_store.stats.puts == 0  # nothing was re-simulated
    for key, record in cold.records.items():
        assert (warm.records[key].stats.to_dict() == record.stats.to_dict())
    # the summary document carries the provenance CI asserts on
    summary = warm.to_summary()
    assert summary["counts"]["cached"] == len(cells)
    assert summary["store"]["hits"] == len(cells)


# ---------------------------------------------------------------------------
# the served campaign: SIGKILL the server mid-run, restart, resume
# ---------------------------------------------------------------------------

SERVE_SPECS = [
    {"benchmark": "vecadd", "arch": "baseline", "scale": 0.25, "sms": 1},
    {"benchmark": "vecadd", "arch": "vt", "scale": 0.25, "sms": 1},
    {"benchmark": "stride", "arch": "baseline", "scale": 0.25, "sms": 1},
]


def _start_server(store_dir):
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env = dict(os.environ,
               PYTHONPATH=os.path.abspath(src), PYTHONUNBUFFERED="1")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--dir", str(store_dir),
         "--port", "0", "--jobs", "0"],
        stdout=subprocess.PIPE, text=True, env=env)
    banner = proc.stdout.readline()
    assert "listening on http://127.0.0.1:" in banner, banner
    port = int(banner.split("http://127.0.0.1:")[1].split()[0])
    return proc, f"http://127.0.0.1:{port}"


def _post_jobs(base, specs):
    request = urllib.request.Request(
        base + "/v1/jobs", data=json.dumps({"jobs": specs}).encode(),
        method="POST")
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _poll(base, fingerprint, timeout=120.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            with urllib.request.urlopen(
                    base + f"/v1/jobs/{fingerprint}", timeout=10) as response:
                view = json.loads(response.read())
        except (urllib.error.URLError, ConnectionError):
            return None
        if view["state"] == "done":
            return view
        time.sleep(0.1)
    return None


def test_server_killed_mid_campaign_resumes_after_restart(tmp_path):
    store_dir = tmp_path / "store"
    proc, base = _start_server(store_dir)
    try:
        status, body = _post_jobs(base, SERVE_SPECS)
        assert status == 200
        fingerprints = [r["job"]["fingerprint"] for r in body["results"]]
        # wait for the first job to complete, then kill mid-campaign
        first = _poll(base, fingerprints[0], timeout=120)
        assert first is not None and first["ok"]
    finally:
        proc.kill()
        proc.wait()

    # completed cells are already durable in the store
    store = ResultStore(store_dir)
    assert store.get(fingerprints[0]) is not None
    assert store.verify().quarantined_now == []  # the kill tore nothing

    proc, base = _start_server(store_dir)
    try:
        status, body = _post_jobs(base, SERVE_SPECS)
        assert status == 200
        outcomes = [r["outcome"] for r in body["results"]]
        # the finished cell is served from the store, not recomputed
        assert outcomes[0] == "cached"
        views = [_poll(base, fp, timeout=120) for fp in fingerprints]
        assert all(v is not None and v["ok"] for v in views)
        assert views[0]["stats_sha256"] == first["stats_sha256"]

        # the whole campaign resubmitted once more: pure cache, identical
        status, body = _post_jobs(base, SERVE_SPECS)
        assert status == 200
        assert [r["outcome"] for r in body["results"]] == ["cached"] * 3
        for result, view in zip(body["results"], views):
            assert result["job"]["stats_sha256"] == view["stats_sha256"]
    finally:
        proc.kill()
        proc.wait()
