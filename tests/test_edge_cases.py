"""Corner cases across modules that the mainline tests don't reach."""

import numpy as np
import pytest

from repro.isa.assembler import assemble
from repro.isa.instruction import Imm, Instruction, Reg, SReg, SpecialReg
from repro.isa.opcodes import Op
from repro.sim.config import scaled_fermi
from repro.sim.cta import CTA
from repro.sim.exec import functional_step
from repro.sim.gpu import GPU
from repro.sim.memory import GlobalMemory


def test_ffma_with_immediate_middle_operand():
    # The regheavy kernel relies on FFMA d, a, #imm, c.
    kernel = assemble("""
.kernel f
.regs 4
    MOV  r0, #3.0
    MOV  r1, #1.0
    FFMA r2, r0, #0.5, r1
    EXIT
""")
    cta = CTA(0, (0, 0, 0), kernel, (1, 1, 1), (), scaled_fermi(1), 0)
    warp = cta.warps[0]
    gmem = GlobalMemory(256)
    while not warp.finished:
        functional_step(warp, kernel.instrs[warp.pc], gmem)
    assert warp.regs[2][0] == 2.5


def test_assembler_fractional_immediates():
    kernel = assemble(".kernel f\n.regs 2\nMOV r0, #.5\nMOV r1, #0.25\nEXIT")
    assert kernel.instrs[0].srcs[0] == Imm(0.5)
    assert kernel.instrs[1].srcs[0] == Imm(0.25)


def test_negative_memref_offset_executes():
    kernel = assemble("""
.kernel f
.regs 4
    MOV  r0, #8
    LDG  r1, [r0-4]
    EXIT
""")
    gmem = GlobalMemory(256)
    gmem.data[1] = 7.0
    cta = CTA(0, (0, 0, 0), kernel, (1, 1, 1), (), scaled_fermi(1), 0)
    warp = cta.warps[0]
    while not warp.finished:
        functional_step(warp, kernel.instrs[warp.pc], gmem)
    assert (warp.regs[1] == 7.0).all()


def test_params_visible_through_s2r():
    kernel = assemble("""
.kernel f
.regs 4
    S2R r0, %param0
    S2R r1, %param7
    SHL r2, r0, #2
    S2R r3, %param1
    IADD r2, r2, r3
    STG [r2], r1
    EXIT
""")
    gmem = GlobalMemory(1 << 12)
    gmem.alloc("out", 32)
    gpu = GPU(scaled_fermi(1))
    result = gpu.launch(kernel, 1, gmem,
                        params=(0.0, gmem.base("out"), 0, 0, 0, 0, 0, 42.0))
    assert (result.read("out", 1) == 42.0).all()


def test_barrier_release_without_waiters_is_noop():
    kernel = assemble(".kernel f\n.regs 2\n.cta 64\nEXIT")
    cta = CTA(0, (0, 0, 0), kernel, (1, 1, 1), (), scaled_fermi(1), 0)
    assert not cta.check_barrier_release(now=0)


def test_partial_warp_divergence():
    # 40 threads: second warp has 8 live lanes; diverge inside it.
    kernel = assemble("""
.kernel f
.regs 6
.cta 40
    S2R  r0, %tid_x
    SETP.GE r1, r0, #36
@r1 BRA  high
    MOV  r2, #1
    BRA  out
high:
    MOV  r2, #2
out:
    SHL  r3, r0, #2
    S2R  r4, %param0
    IADD r3, r3, r4
    STG  [r3], r2
    EXIT
""")
    gmem = GlobalMemory(1 << 12)
    gmem.alloc("out", 40)
    gpu = GPU(scaled_fermi(1))
    result = gpu.launch(kernel, 1, gmem, params=(gmem.base("out"),))
    out = result.read("out")
    assert (out[:36] == 1).all()
    assert (out[36:] == 2).all()


def test_warp_sized_cta_no_barrier_needed():
    # A single-warp CTA's BAR must release immediately (no deadlock).
    kernel = assemble("""
.kernel f
.regs 4
.cta 32
    BAR
    BAR
    MOV r0, #1
    EXIT
""")
    gpu = GPU(scaled_fermi(1))
    result = gpu.launch(kernel, 2, GlobalMemory(256))
    assert result.stats.instructions == 8  # 2 CTAs x (BAR, BAR, MOV, EXIT)


def test_all_special_registers_readable():
    srcs = " ".join(f"%{k.value}" for k in SpecialReg)
    lines = [f"    S2R r0, %{kind.value}" for kind in SpecialReg]
    kernel = assemble(".kernel f\n.regs 2\n" + "\n".join(lines) + "\n    EXIT")
    gpu = GPU(scaled_fermi(1))
    result = gpu.launch(kernel, (2, 2, 1), GlobalMemory(256), params=(1, 2, 3))
    assert result.stats.instructions == 4 * (len(SpecialReg) + 1)


def test_exit_only_kernel():
    kernel = assemble(".kernel f\n.regs 1\n.cta 256\nEXIT")
    gpu = GPU(scaled_fermi(1, arch="vt"))
    result = gpu.launch(kernel, 32, GlobalMemory(256))
    assert result.stats.instructions == 32 * 8  # 8 warps per CTA


def test_single_thread_cta():
    kernel = assemble("""
.kernel f
.regs 4
.cta 1
    S2R  r0, %ctaid_x
    SHL  r1, r0, #2
    S2R  r2, %param0
    IADD r1, r1, r2
    STG  [r1], r0
    EXIT
""")
    gmem = GlobalMemory(1 << 12)
    gmem.alloc("out", 8)
    gpu = GPU(scaled_fermi(1))
    result = gpu.launch(kernel, 8, gmem, params=(gmem.base("out"),))
    assert np.array_equal(result.read("out"), np.arange(8, dtype=np.float64))
