"""Experiment entry points: reports render and shape claims hold.

The heavy experiments run at a small scale here — the full-scale runs live
in ``benchmarks/``.  These tests assert the *shape* DESIGN.md promises:
scheduling-limited kernels have VT headroom, VT speeds up the latency
class, capacity-limited kernels are untouched, extreme swap costs hurt.
"""

import pytest

from repro.analysis import experiments as ex
from repro.core.occupancy import LimiterClass
from repro.sim.config import scaled_fermi

# One SM keeps runs fast while the half-scale grids still oversubscribe it
# (a 2-SM chip at quarter scale would leave each SM under its CTA limit,
# making VT trivially inert).
ONE_SM = scaled_fermi(num_sms=1)


def test_e1_renders():
    report, data = ex.e1_config_table()
    assert "scheduling limit" in report
    assert data["config"].max_warps_per_sm == 48


def test_e2_classifies_suite():
    report, data = ex.e2_benchmark_table()
    assert "limiter" in report
    assert data["mm_tiled"].limiter is LimiterClass.CAPACITY
    assert data["stride"].limiter is LimiterClass.SCHEDULING


def test_e3_headroom_positive_for_scheduling_limited():
    report, headroom = ex.e3_cta_residency()
    assert headroom["stride"] > 2.0
    assert headroom["regheavy"] == 1.0
    assert "capacity" in report


@pytest.mark.slow
def test_e4_idle_breakdown_small_scale():
    report, data = ex.e4_idle_cycles(cfg=ONE_SM, scale=0.5)
    assert set(data) and all(0 <= d["mem"] <= 1 for d in data.values())
    # The latency microbenchmark idles on memory in the baseline.
    assert data["stride"]["mem"] > 0.2
    assert "busy" in report


@pytest.mark.slow
def test_e5_shape_small_scale():
    report, data = ex.e5_speedup(cfg=ONE_SM, scale=0.5)
    assert data["geomean_vt"] > 1.02
    assert data["vt"]["stride"] > 1.2
    assert data["vt"]["mm_tiled"] == pytest.approx(1.0)
    assert data["vt"]["regheavy"] == pytest.approx(1.0)
    assert "geomean" in report


@pytest.mark.slow
def test_e7_extreme_swap_cost_hurts():
    points = ((2, 1), (128, 64))
    report, data = ex.e7_swap_latency(cfg=ONE_SM, scale=0.5, points=points, subset=("stride",))
    cheap = data[(2, 1)]["geomean"]
    expensive = data[(128, 64)]["geomean"]
    assert cheap > expensive
    assert "swap" in report.lower()


@pytest.mark.slow
def test_e8_multiplier_one_is_baseline():
    report, data = ex.e8_vcta_degree(cfg=ONE_SM, scale=0.5, multipliers=(1.0, 4.0), subset=("stride",))
    assert data[1.0]["geomean"] == pytest.approx(1.0, abs=0.02)
    assert data[4.0]["geomean"] > data[1.0]["geomean"]


@pytest.mark.slow
def test_e10_gain_grows_with_latency():
    report, data = ex.e10_mem_latency(cfg=ONE_SM, scale=0.5, latencies=(200, 800), subset=("stride",))
    assert data[800]["geomean"] > data[200]["geomean"]


@pytest.mark.slow
def test_e6_tlp_small_scale():
    report, data = ex.e6_tlp(cfg=ONE_SM, scale=0.5)
    assert data["stride"]["vt_warps"] > data["stride"]["base_warps"]
    assert data["stride"]["vt_active_ctas"] <= 8 + 1e-9
    assert "warps/SM" in report


@pytest.mark.slow
def test_e9_schedulers_small_scale():
    report, data = ex.e9_schedulers(cfg=ONE_SM, scale=0.5,
                                    schedulers=("gto", "lrr"), subset=("stride",))
    assert data["gto"]["geomean"] > 1.1
    assert data["lrr"]["geomean"] > 1.1


@pytest.mark.slow
def test_e12_ablation_small_scale():
    report, data = ex.e12_ablation(cfg=ONE_SM, scale=0.5, subset=("stride",))
    for label, row in data.items():
        assert row["geomean"] > 1.0, label
    assert "policy" in report


def test_e11_overhead_report():
    report, data = ex.e11_overhead()
    assert "backup SRAM" in report
    assert data["overhead"].overhead_fraction < 0.25


def test_registry_complete():
    expected = {f"E{i}" for i in range(1, 13)} | {"X1", "X2", "X3", "X4",
                                                  "X6"}
    assert set(ex.ALL_EXPERIMENTS) == expected


def test_e2_limiter_column_is_the_occupancy_classification():
    # Regression for the dedupe: E2 must read the limiter from
    # core/occupancy's limiter_summary, never re-derive it.
    from repro.core.occupancy import limiter_summary
    from repro.kernels.registry import all_benchmarks

    _report, data = ex.e2_benchmark_table()
    for bench in all_benchmarks():
        assert data[bench.name].limiter.value == \
            limiter_summary(bench.kernel)["limiter"], bench.name
