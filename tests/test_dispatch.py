"""CTA dispatcher: round-robin vs fill-first, launch latency, fuzzing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.assembler import assemble
from repro.sim.config import scaled_fermi
from repro.sim.gpu import GPU
from repro.sim.memory import GlobalMemory

SMALL = """
.kernel small
.regs 8
.cta 64
    S2R  r0, %ctaid_x
    S2R  r1, %ntid_x
    S2R  r2, %tid_x
    IMAD r3, r0, r1, r2
    SHL  r4, r3, #2
    S2R  r5, %param0
    IADD r4, r4, r5
    I2F  r6, r3
    STG  [r4], r6
    EXIT
"""


def launch(cfg, grid=8):
    kernel = assemble(SMALL)
    gmem = GlobalMemory(1 << 20)
    gmem.alloc("out", 64 * grid)
    gpu = GPU(cfg)
    return gpu.launch(kernel, grid, gmem, params=(gmem.base("out"),))


def test_round_robin_balances_ctas():
    result = launch(scaled_fermi(num_sms=2, cta_dispatch="round-robin"), grid=8)
    per_sm = [s.ctas_completed for s in result.stats.sm_stats]
    assert per_sm == [4, 4]


def test_fill_first_prefers_sm0():
    result = launch(scaled_fermi(num_sms=2, cta_dispatch="fill-first"), grid=8)
    per_sm = [s.ctas_completed for s in result.stats.sm_stats]
    assert per_sm[0] == 8  # all CTAs fit on SM 0, SM 1 idles
    assert per_sm[1] == 0


def test_both_policies_compute_same_result():
    outputs = []
    for policy in ("round-robin", "fill-first"):
        result = launch(scaled_fermi(num_sms=2, cta_dispatch=policy), grid=8)
        outputs.append(result.read("out"))
    assert np.array_equal(outputs[0], outputs[1])
    expected = np.arange(64 * 8, dtype=np.float64)
    assert np.array_equal(outputs[0], expected)


def test_bad_dispatch_policy_rejected():
    with pytest.raises(ValueError, match="cta_dispatch"):
        scaled_fermi(num_sms=1, cta_dispatch="bogus").validate()


def test_launch_latency_delays_start():
    fast = launch(scaled_fermi(num_sms=1, cta_launch_latency=0), grid=2)
    slow = launch(scaled_fermi(num_sms=1, cta_launch_latency=200), grid=2)
    assert slow.stats.cycles > fast.stats.cycles + 150


@settings(max_examples=15, deadline=None)
@given(
    num_sms=st.integers(1, 3),
    schedulers=st.integers(1, 4),
    scheduler=st.sampled_from(["lrr", "gto", "two-level"]),
    arch=st.sampled_from(["baseline", "vt", "ideal-sched"]),
    max_ctas=st.integers(1, 8),
    grid=st.integers(1, 12),
)
def test_config_fuzz_always_completes_correctly(num_sms, schedulers, scheduler, arch, max_ctas, grid):
    """Any valid configuration must run the kernel to completion with
    correct results — no deadlocks, no hangs, no wrong values."""
    cfg = scaled_fermi(
        num_sms=num_sms,
        num_warp_schedulers=schedulers,
        warp_scheduler=scheduler,
        arch=arch,
        max_ctas_per_sm=max_ctas,
    )
    result = launch(cfg, grid=grid)
    expected = np.arange(64 * grid, dtype=np.float64)
    assert np.array_equal(result.read("out"), expected)
