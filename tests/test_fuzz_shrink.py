"""Shrinker properties, mostly against synthetic predicates (no
simulation), plus one end-to-end canary shrink."""

from repro.fuzz.campaign import CANARY_FAULT
from repro.fuzz.differential import run_case
from repro.fuzz.generator import generate_spec, materialize
from repro.fuzz.shrink import shrink_spec


def _big_spec():
    spec = generate_spec(4)
    assert len(spec["segments"]) >= 2
    return spec


def test_shrink_removes_irrelevant_segments():
    spec = _big_spec()
    spec["segments"].append({"kind": "bar"})

    def is_bad(candidate):
        return any(seg["kind"] == "bar" for seg in candidate["segments"])

    small, info = shrink_spec(spec, is_bad)
    assert info["reproduced"]
    assert len(small["segments"]) == 1
    assert small["segments"][0]["kind"] == "bar"
    assert small["grid_x"] == 1 and small["cta_x"] == 32


def test_shrink_reduces_knobs_to_floors():
    spec = {"v": 1, "seed": 0, "cta_x": 128, "grid_x": 4, "use_acc": True,
            "segments": [{"kind": "loop", "trips": 8, "divergent": True,
                          "body_n": 4, "sub": 12345}]}

    def is_bad(candidate):
        return any(seg["kind"] == "loop" for seg in candidate["segments"])

    small, info = shrink_spec(spec, is_bad)
    seg = small["segments"][0]
    assert seg["trips"] == 2 and seg["body_n"] == 1 and not seg["divergent"]
    assert small["use_acc"] is False


def test_shrink_returns_original_when_not_reproducing():
    spec = _big_spec()
    small, info = shrink_spec(spec, lambda s: False)
    assert small == spec
    assert info["reproduced"] is False


def test_shrink_respects_test_budget():
    spec = _big_spec()
    calls = []

    def is_bad(candidate):
        calls.append(1)
        return True

    shrink_spec(spec, is_bad, max_tests=5)
    assert len(calls) <= 5


def test_shrink_memoizes_repeated_candidates():
    spec = _big_spec()
    seen = []

    def is_bad(candidate):
        import json
        key = json.dumps(candidate, sort_keys=True)
        assert key not in seen, "same candidate tested twice"
        seen.append(key)
        return any(seg["kind"] == spec["segments"][0]["kind"]
                   for seg in candidate["segments"])

    shrink_spec(spec, is_bad)


def test_canary_shrinks_to_minimal_load_kernel():
    """End-to-end: the planted fill-delay fault shrinks to <= 8 instrs."""
    spec = generate_spec(3)

    def is_bad(candidate):
        return not run_case(candidate, fault=CANARY_FAULT).ok

    small, info = shrink_spec(spec, is_bad, max_tests=120)
    assert info["reproduced"]
    assert len(materialize(small).kernel.instrs) <= 8
    assert not run_case(small, fault=CANARY_FAULT).ok
