"""Content-addressed result store: commit discipline, checksum-verified
reads, corruption quarantine, GC, and audit artifacts.  (Crash/fault
injection lives in tests/test_store_chaos.py.)"""

import json
import os

import pytest

from repro.analysis.journal import cell_fingerprint
from repro.store import chaos
from repro.store.cas import (
    SCHEMA_VERSION,
    ResultStore,
    build_artifact,
    checksum_payload,
    code_version,
    stats_digest,
)
from repro.store.fsio import TMP_PREFIX, commit_bytes


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "store")


@pytest.fixture
def record():
    return chaos.synthetic_record(7)


def _fingerprint(record, seed=7):
    return cell_fingerprint(record.benchmark, record.config, 1.0, seed)


# ---------------------------------------------------------------------------
# round trip
# ---------------------------------------------------------------------------

def test_put_get_round_trip_is_lossless(store, record):
    fp = _fingerprint(record)
    path = store.put(fp, record, scale=1.0, seed=7, attempts=2, elapsed_s=1.25)
    assert path is not None and path.is_file()
    entry = store.get(fp)
    assert entry is not None
    assert entry.record.stats.to_dict() == record.stats.to_dict()
    assert entry.record.config == record.config
    assert (entry.scale, entry.seed, entry.attempts) == (1.0, 7, 2)
    assert stats_digest(entry.record.stats.to_dict()) == stats_digest(
        record.stats.to_dict())
    assert store.stats.puts == 1 and store.stats.hits == 1


def test_missing_fingerprint_is_a_miss(store):
    assert store.get("0" * 16) is None
    assert store.stats.misses == 1


def test_failed_records_are_refused(store, record):
    record.status = "timeout"
    record.stats = None
    assert store.put(_fingerprint(record), record) is None
    assert len(store) == 0


def test_reput_replaces_atomically(store, record):
    fp = _fingerprint(record)
    store.put(fp, record)
    store.put(fp, record)
    assert len(store) == 1
    assert store.get(fp) is not None


def test_store_handle_is_always_truthy(store):
    # __len__ alone would make an EMPTY store falsy and silently disable
    # every `if store:` guard in the orchestrator — the store would look
    # attached but never be read or written.
    assert len(store) == 0
    assert bool(store) is True


# ---------------------------------------------------------------------------
# corruption -> quarantine -> self-heal
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("mode", ["bitflip", "truncate"])
def test_corruption_quarantines_and_misses(store, record, mode):
    fp = _fingerprint(record)
    store.put(fp, record)
    path = chaos.corrupt_entry(store, fp, seed=3, mode=mode)
    assert store.get(fp) is None  # never serves corrupt bytes
    assert not path.exists()  # moved aside, not left in place
    quarantined = list((store.root / "quarantine").iterdir())
    assert len(quarantined) == 1  # evidence preserved
    assert store.stats.corrupt == 1
    # self-heal: recompute (here: re-put) and the store is whole again
    store.put(fp, record)
    entry = store.get(fp)
    assert entry is not None
    assert entry.record.stats.to_dict() == record.stats.to_dict()


def test_every_single_bitflip_is_detected(store, record):
    # Exhaustive over byte positions (seeded bit per byte): any one-bit
    # change must fail JSON decoding or the checksum — never parse as a
    # different valid entry.
    fp = _fingerprint(record)
    store.put(fp, record)
    pristine = store.entry_path(fp).read_bytes()
    rng_bits = [(i, (i * 7) % 8) for i in range(0, len(pristine), 97)]
    for byte_index, bit_index in rng_bits:
        chaos.flip_bit(store.entry_path(fp), byte_index, bit_index)
        assert store.get(fp) is None, (
            f"bit {bit_index} of byte {byte_index} went undetected")
        store.entry_path(fp).parent.mkdir(parents=True, exist_ok=True)
        store.entry_path(fp).write_bytes(pristine)


def test_wrong_fingerprint_file_is_quarantined(store, record):
    # A valid entry renamed onto another key must not be served.
    fp = _fingerprint(record)
    store.put(fp, record)
    other = "f" * 16
    target = store.entry_path(other)
    target.parent.mkdir(parents=True, exist_ok=True)
    os.replace(store.entry_path(fp), target)
    assert store.get(other) is None
    assert store.stats.corrupt == 1


def test_newer_schema_version_is_not_guessed_at(store, record):
    fp = _fingerprint(record)
    path = store.put(fp, record)
    document = json.loads(path.read_text())
    document["v"] = SCHEMA_VERSION + 1
    path.write_text(json.dumps(document))
    assert store.get(fp) is None


# ---------------------------------------------------------------------------
# verify / gc
# ---------------------------------------------------------------------------

def test_verify_reports_and_heals(store, record):
    fp = _fingerprint(record)
    store.put(fp, record)
    other = chaos.synthetic_record(11, benchmark="chaos2")
    fp2 = cell_fingerprint(other.benchmark, other.config, 1.0, 11)
    store.put(fp2, other)
    chaos.corrupt_entry(store, fp2, seed=5)

    report = store.verify()
    assert report.entries == 2
    assert report.verified == 1
    assert report.quarantined_now == [fp2]
    assert not report.healthy
    # a second audit over the healed store is clean
    report2 = store.verify()
    assert report2.healthy and report2.verified == 1
    assert report2.quarantined_before == 1  # evidence still preserved


def test_gc_reclaims_orphan_temps_only(store, record):
    fp = _fingerprint(record)
    store.put(fp, record)
    orphan = store.entry_path(fp).parent / f"{TMP_PREFIX}orphan.123"
    orphan.write_bytes(b"half-written junk")
    assert store.gc() == 1
    assert not orphan.exists()
    assert store.get(fp) is not None  # committed entries untouched


def test_commit_bytes_leaves_no_temp_on_success(tmp_path):
    target = tmp_path / "x.json"
    commit_bytes(target, b"payload")
    assert target.read_bytes() == b"payload"
    assert [p.name for p in tmp_path.iterdir()] == ["x.json"]


# ---------------------------------------------------------------------------
# audit artifacts
# ---------------------------------------------------------------------------

def test_artifact_round_trip_and_schema(store, record):
    fp = _fingerprint(record)
    path = store.put(fp, record, elapsed_s=2.0)
    artifact = build_artifact(fp, record, scale=1.0, seed=7, attempts=1,
                              elapsed_s=2.0, started_at=10.0, finished_at=12.0,
                              store_path=str(path))
    store.write_artifact(fp, artifact)
    back = store.read_artifact(fp)
    assert back == artifact
    assert back["kind"] == "repro-run-artifact"
    assert back["run"]["fingerprint"] == fp
    assert back["request"]["benchmark"] == record.benchmark
    assert back["config"]["arch"] == record.config.arch
    assert back["provenance"]["source"] == "computed"
    assert back["result"]["stats_sha256"] == stats_digest(record.stats.to_dict())
    assert set(back["code"]) == {"version", "commit"}


def test_code_version_reports_package_version():
    from repro import __version__

    assert code_version()["version"] == __version__


def test_checksum_is_canonical_not_formatting_sensitive():
    assert (checksum_payload({"b": 1, "a": 2})
            == checksum_payload({"a": 2, "b": 1}))
