"""Static per-access cost bounds: coalescing transactions and shared
bank passes, mirroring the simulator's LD/ST unit exactly."""

import pytest

from repro.isa.analysis import access_costs, cost_bounds_by_pc
from repro.isa.assembler import assemble
from repro.kernels.registry import all_benchmarks


def costs_of(text, **kw):
    return access_costs(assemble(text), **kw)


def only(costs, space=None, kind=None):
    picked = [c for c in costs
              if (space is None or c.space == space)
              and (kind is None or c.kind == kind)]
    assert len(picked) == 1, picked
    return picked[0]


COALESCED = """
.kernel coalesced
.regs 8
.cta 64
    S2R r0, %tid_x
    SHL r1, r0, #2
    LDG r2, [r1]
    STG [r1], r2
    EXIT
"""

STRIDED = """
.kernel strided
.regs 8
.cta 32
    S2R r0, %tid_x
    SHL r1, r0, #7
    LDG r2, [r1]
    STG [r1], r2
    EXIT
"""


def test_coalesced_access_is_exactly_one_transaction():
    load = only(costs_of(COALESCED), space="global", kind="load")
    assert (load.full_lo, load.full_hi) == (1, 1)
    assert load.analyzable and load.exact and not load.predicated
    assert load.expected == 1.0


def test_line_strided_access_fans_out_to_one_tx_per_lane():
    load = only(costs_of(STRIDED), space="global", kind="load")
    assert (load.full_lo, load.full_hi) == (32, 32)
    assert load.exact


def test_unknown_uniform_base_gives_straddle_bounds():
    # tid*4 + ctaid*32: a contiguous 128-byte run at an unknown
    # word-aligned offset — one line when aligned, two when straddling.
    text = """
.kernel shifted
.regs 8
.cta 32
    S2R r0, %tid_x
    S2R r1, %ctaid_x
    SHL r2, r0, #2
    SHL r3, r1, #5
    IADD r4, r2, r3
    LDG r5, [r4]
    STG [r4], r5
    EXIT
"""
    load = only(costs_of(text), space="global", kind="load")
    assert (load.full_lo, load.full_hi) == (1, 2)
    assert load.analyzable and not load.exact


def test_shared_passes_invariant_under_uniform_shift():
    # Bank multiplicity is invariant under a word-aligned uniform shift,
    # so shared passes stay exact even with an unknown ctaid term.
    text = """
.kernel sconf
.regs 8
.smem 512
.cta 32
    S2R r0, %tid_x
    S2R r1, %ctaid_x
    SHL r2, r0, #3
    SHL r3, r1, #2
    IADD r4, r2, r3
    STS [r4], r0
    BAR
    LDS r5, [r4]
    STG [r2], r5
    EXIT
"""
    load = only(costs_of(text), space="shared", kind="load")
    assert (load.full_lo, load.full_hi) == (2, 2)  # stride 2 words
    assert load.exact


def test_data_dependent_gather_is_never_silently_coalesced():
    text = """
.kernel gather
.regs 8
.cta 32
    S2R r0, %tid_x
    SHL r1, r0, #2
    LDG r2, [r1]
    SHL r3, r2, #2
    LDG r4, [r3]
    STG [r1], r4
    EXIT
"""
    gather = [c for c in costs_of(text) if not c.analyzable]
    assert len(gather) == 1
    g = gather[0]
    assert g.space == "global" and g.kind == "load"
    assert (g.lo, g.hi) == (1, 32)
    assert (g.full_lo, g.full_hi) == (1, 32)


def test_small_cta_caps_unanalyzable_bound_at_live_lanes():
    text = """
.kernel tinygather
.regs 8
.cta 8
    S2R r0, %tid_x
    SHL r1, r0, #2
    LDG r2, [r1]
    SHL r3, r2, #2
    LDG r4, [r3]
    STG [r1], r4
    EXIT
"""
    g = [c for c in costs_of(text) if not c.analyzable][0]
    assert g.hi == 8


def test_predicated_access_widens_lower_bound_to_one():
    text = """
.kernel pred
.regs 8
.cta 32
    S2R r0, %tid_x
    SHL r1, r0, #7
    SETP.LT r2, r0, #16
@r2 LDG r3, [r1]
@r2 STG [r1], r3
    EXIT
"""
    load = only(costs_of(text), space="global", kind="load")
    assert load.predicated and not load.exact
    assert load.lo == 1  # any non-empty lane subset may issue
    assert (load.full_lo, load.full_hi) == (32, 32)  # full mask still strided


def test_geometry_parameters_respected():
    # Halve the line: the coalesced 256-byte warp run needs two segments.
    load = only(costs_of(COALESCED, line_bytes=64), space="global",
                kind="load")
    assert (load.full_lo, load.full_hi) == (2, 2)


def test_cost_bounds_by_pc_maps_memory_sites_only():
    kernel = assemble(STRIDED)
    table = cost_bounds_by_pc(kernel, line_bytes=128, num_banks=32)
    mem_pcs = {pc for pc, i in enumerate(kernel.instrs) if i.info.is_mem}
    assert set(table) == mem_pcs
    for pc, cost in table.items():
        assert cost.pc == pc


@pytest.mark.parametrize("bench", all_benchmarks(), ids=lambda b: b.name)
def test_registry_bounds_are_well_formed(bench):
    for cost in access_costs(bench.kernel):
        assert 1 <= cost.lo <= cost.hi
        assert cost.lo <= cost.full_lo <= cost.full_hi <= cost.hi
        if not cost.analyzable:
            # Conservative contract: fuzzy sites report 1..lanes bounds.
            assert cost.full_hi >= 2
        if cost.exact:
            assert cost.lo == cost.hi and not cost.predicated
