"""Functional executor: per-opcode semantics, predication, memory, errors."""

import numpy as np
import pytest

from repro.isa.instruction import Imm, Instruction, MemRef, Reg, SReg, SpecialReg
from repro.isa.opcodes import CmpOp, Op
from repro.sim.exec import ExecutionError, functional_step
from repro.sim.memory import GlobalMemory, SharedMemory
from repro.sim.warp import FULL_MASK, Warp


class _FakeCTA:
    cta_id = 0

    def __init__(self, smem_bytes=256):
        self.smem = SharedMemory(smem_bytes)


def make_warp(regs=16, smem_bytes=256):
    cta = _FakeCTA(smem_bytes)
    warp = Warp(cta, 0, regs, 32, 32)
    warp.sregs = {SpecialReg.TID_X: np.arange(32, dtype=np.float64)}
    return warp


def run(warp, instr, gmem=None):
    gmem = gmem or GlobalMemory(4096)
    return functional_step(warp, instr, gmem)


def set_reg(warp, idx, value):
    warp.regs[idx][:] = value


def binop(op, a, b, cmp=None):
    warp = make_warp()
    set_reg(warp, 1, a)
    set_reg(warp, 2, b)
    run(warp, Instruction(op=op, dst=Reg(0), srcs=(Reg(1), Reg(2)), cmp=cmp))
    return warp.regs[0][0]


@pytest.mark.parametrize("op,a,b,expected", [
    (Op.IADD, 5, 3, 8),
    (Op.ISUB, 5, 3, 2),
    (Op.IMUL, 5, 3, 15),
    (Op.IMIN, 5, 3, 3),
    (Op.IMAX, 5, 3, 5),
    (Op.AND, 0b1100, 0b1010, 0b1000),
    (Op.OR, 0b1100, 0b1010, 0b1110),
    (Op.XOR, 0b1100, 0b1010, 0b0110),
    (Op.SHL, 3, 4, 48),
    (Op.SHR, 48, 4, 3),
    (Op.IDIV, 7, 2, 3),
    (Op.IREM, 7, 2, 1),
    (Op.FADD, 1.5, 2.25, 3.75),
    (Op.FSUB, 1.5, 2.25, -0.75),
    (Op.FMUL, 1.5, 2.0, 3.0),
    (Op.FDIV, 3.0, 2.0, 1.5),
    (Op.FMIN, 1.5, 2.0, 1.5),
    (Op.FMAX, 1.5, 2.0, 2.0),
])
def test_binary_ops(op, a, b, expected):
    assert binop(op, a, b) == expected


def test_idiv_truncates_toward_zero():
    assert binop(Op.IDIV, -7, 2) == -3  # C semantics, not floor


@pytest.mark.parametrize("cmp,a,b,expected", [
    (CmpOp.EQ, 2, 2, 1), (CmpOp.EQ, 2, 3, 0),
    (CmpOp.NE, 2, 3, 1), (CmpOp.LT, 2, 3, 1),
    (CmpOp.LE, 3, 3, 1), (CmpOp.GT, 4, 3, 1),
    (CmpOp.GE, 2, 3, 0),
])
def test_setp(cmp, a, b, expected):
    assert binop(Op.SETP, a, b, cmp=cmp) == expected


def test_three_operand_ops():
    warp = make_warp()
    set_reg(warp, 1, 2)
    set_reg(warp, 2, 3)
    set_reg(warp, 3, 4)
    run(warp, Instruction(op=Op.IMAD, dst=Reg(0), srcs=(Reg(1), Reg(2), Reg(3))))
    assert warp.regs[0][0] == 10
    run(warp, Instruction(op=Op.FFMA, dst=Reg(4), srcs=(Reg(1), Reg(2), Reg(3))))
    assert warp.regs[4][0] == 10.0
    set_reg(warp, 5, 0)
    run(warp, Instruction(op=Op.SEL, dst=Reg(6), srcs=(Reg(5), Reg(1), Reg(2))))
    assert warp.regs[6][0] == 3  # condition false -> second source


@pytest.mark.parametrize("op,a,expected", [
    (Op.FSQRT, 9.0, 3.0),
    (Op.FABS, -2.5, 2.5),
    (Op.I2F, 7, 7.0),
    (Op.F2I, 7.9, 7.0),
])
def test_unary_ops(op, a, expected):
    warp = make_warp()
    set_reg(warp, 1, a)
    run(warp, Instruction(op=op, dst=Reg(0), srcs=(Reg(1),)))
    assert warp.regs[0][0] == expected


def test_fexp():
    warp = make_warp()
    set_reg(warp, 1, 1.0)
    run(warp, Instruction(op=Op.FEXP, dst=Reg(0), srcs=(Reg(1),)))
    assert warp.regs[0][0] == pytest.approx(np.e)


def test_mov_immediate_and_s2r():
    warp = make_warp()
    run(warp, Instruction(op=Op.MOV, dst=Reg(0), srcs=(Imm(42),)))
    assert (warp.regs[0] == 42).all()
    run(warp, Instruction(op=Op.S2R, dst=Reg(1), srcs=(SReg(SpecialReg.TID_X),)))
    assert list(warp.regs[1]) == list(range(32))


def test_predication_masks_lanes():
    warp = make_warp()
    warp.regs[1][:] = np.arange(32) < 8  # predicate true for lanes 0..7
    set_reg(warp, 0, 0)
    result = run(warp, Instruction(op=Op.MOV, dst=Reg(0), srcs=(Imm(9),), pred=Reg(1)))
    assert result.lanes == 8
    assert (warp.regs[0][:8] == 9).all()
    assert (warp.regs[0][8:] == 0).all()


def test_negated_predication():
    warp = make_warp()
    warp.regs[1][:] = np.arange(32) < 8
    run(warp, Instruction(op=Op.MOV, dst=Reg(0), srcs=(Imm(9),), pred=Reg(1), pred_neg=True))
    assert (warp.regs[0][:8] == 0).all()
    assert (warp.regs[0][8:] == 9).all()


def test_global_load_store():
    gmem = GlobalMemory(4096)
    gmem.data[:32] = np.arange(32)
    warp = make_warp()
    warp.regs[1][:] = np.arange(32) * 4  # byte addresses
    result = run(warp, Instruction(op=Op.LDG, dst=Reg(0), srcs=(MemRef(Reg(1)),)), gmem)
    assert result.mem_space == "global"
    assert list(warp.regs[0]) == list(range(32))
    set_reg(warp, 2, 7)
    warp.regs[3][:] = (np.arange(32) + 100) * 4
    result = run(warp, Instruction(op=Op.STG, srcs=(MemRef(Reg(3)), Reg(2))), gmem)
    assert result.is_store
    assert (gmem.data[100:132] == 7).all()


def test_memref_offset_applies():
    gmem = GlobalMemory(4096)
    gmem.data[1] = 5.0
    warp = make_warp()
    set_reg(warp, 1, 0)
    run(warp, Instruction(op=Op.LDG, dst=Reg(0), srcs=(MemRef(Reg(1), 4),)), gmem)
    assert (warp.regs[0] == 5.0).all()


def test_shared_load_store():
    warp = make_warp()
    warp.regs[1][:] = np.arange(32) * 4
    set_reg(warp, 2, 3)
    run(warp, Instruction(op=Op.STS, srcs=(MemRef(Reg(1)), Reg(2))))
    assert (warp.cta.smem.data[:32] == 3).all()
    result = run(warp, Instruction(op=Op.LDS, dst=Reg(3), srcs=(MemRef(Reg(1)),)))
    assert result.mem_space == "shared"
    assert (warp.regs[3] == 3).all()


def test_atomic_add_intra_warp_serializes():
    gmem = GlobalMemory(4096)
    warp = make_warp()
    set_reg(warp, 1, 0)  # all lanes hit the same address
    set_reg(warp, 2, 1)
    result = run(warp, Instruction(op=Op.ATOMG_ADD, dst=Reg(0), srcs=(MemRef(Reg(1)), Reg(2))), gmem)
    assert result.is_atomic
    assert gmem.data[0] == 32
    assert sorted(warp.regs[0]) == list(range(32))  # each lane saw a distinct old value


def test_atomic_max():
    gmem = GlobalMemory(4096)
    gmem.data[0] = 10
    warp = make_warp()
    set_reg(warp, 1, 0)
    warp.regs[2][:] = np.arange(32, dtype=np.float64)
    run(warp, Instruction(op=Op.ATOMG_MAX, dst=Reg(0), srcs=(MemRef(Reg(1)), Reg(2))), gmem)
    assert gmem.data[0] == 31


def test_branch_uniform_taken():
    warp = make_warp()
    set_reg(warp, 1, 1)
    run(warp, Instruction(op=Op.BRA, target=5, pred=Reg(1), reconv_pc=7))
    assert warp.pc == 5


def test_branch_uniform_not_taken():
    warp = make_warp()
    set_reg(warp, 1, 0)
    run(warp, Instruction(op=Op.BRA, target=5, pred=Reg(1), reconv_pc=7))
    assert warp.pc == 1


def test_branch_divergent_splits():
    warp = make_warp()
    warp.regs[1][:] = np.arange(32) < 4
    run(warp, Instruction(op=Op.BRA, target=5, pred=Reg(1), reconv_pc=9))
    assert warp.pc == 5
    assert warp.active_mask() == 0xF


def test_divergent_branch_without_reconv_is_error():
    warp = make_warp()
    warp.regs[1][:] = np.arange(32) < 4
    with pytest.raises(ExecutionError, match="reconvergence"):
        run(warp, Instruction(op=Op.BRA, target=5, pred=Reg(1)))


def test_exit_and_barrier_flags():
    warp = make_warp()
    result = run(warp, Instruction(op=Op.BAR))
    assert result.did_barrier
    result = run(warp, Instruction(op=Op.EXIT))
    assert result.did_exit
    assert warp.finished


def test_predicated_exit_rejected():
    warp = make_warp()
    set_reg(warp, 1, 1)
    with pytest.raises(ExecutionError, match="predicated EXIT"):
        run(warp, Instruction(op=Op.EXIT, pred=Reg(1)))


@pytest.mark.parametrize("op,a,b,fragment", [
    (Op.IDIV, 1, 0, "division by zero"),
    (Op.IREM, 1, 0, "division by zero"),
    (Op.FDIV, 1.0, 0.0, "division by zero"),
    (Op.SHL, 1, -1, "negative shift"),
])
def test_arithmetic_errors(op, a, b, fragment):
    with pytest.raises(ExecutionError, match=fragment):
        binop(op, a, b)


def test_sqrt_negative_rejected():
    warp = make_warp()
    set_reg(warp, 1, -1.0)
    with pytest.raises(ExecutionError, match="sqrt"):
        run(warp, Instruction(op=Op.FSQRT, dst=Reg(0), srcs=(Reg(1),)))


def test_empty_mask_execution_is_error():
    warp = make_warp()
    warp.do_exit()
    with pytest.raises(ExecutionError, match="empty mask"):
        run(warp, Instruction(op=Op.NOP))


def test_fully_predicated_off_memory_op_has_no_addresses():
    warp = make_warp()
    set_reg(warp, 1, 0)  # predicate false everywhere
    set_reg(warp, 2, 0)
    result = run(warp, Instruction(op=Op.LDG, dst=Reg(0), srcs=(MemRef(Reg(2)),), pred=Reg(1)))
    assert result.addresses is None
    assert result.lanes == 0
    assert warp.pc == 1  # still advanced
