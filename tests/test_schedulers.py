"""Warp-scheduler policies: LRR rotation, GTO greediness, two-level sets."""

import pytest

from repro.sim.schedulers import GtoScheduler, LrrScheduler, TwoLevelScheduler, make_scheduler


class _W:
    """Stand-in warp with an identity."""

    def __init__(self, name):
        self.name = name

    def __repr__(self):
        return self.name


def warps(n):
    return [_W(f"w{i}") for i in range(n)]


def always(_w):
    return True


def test_factory():
    assert isinstance(make_scheduler("lrr"), LrrScheduler)
    assert isinstance(make_scheduler("gto"), GtoScheduler)
    assert isinstance(make_scheduler("two-level"), TwoLevelScheduler)
    with pytest.raises(ValueError):
        make_scheduler("bogus")


def test_lrr_rotates():
    s = LrrScheduler()
    ws = warps(3)
    for w in ws:
        s.add_warp(w)
    picks = [s.pick(always) for _ in range(6)]
    assert picks == [ws[0], ws[1], ws[2], ws[0], ws[1], ws[2]]


def test_lrr_skips_stalled():
    s = LrrScheduler()
    ws = warps(3)
    for w in ws:
        s.add_warp(w)
    assert s.pick(lambda w: w is not ws[0]) is ws[1]


def test_lrr_none_when_all_stalled():
    s = LrrScheduler()
    for w in warps(3):
        s.add_warp(w)
    assert s.pick(lambda w: False) is None


def test_gto_stays_greedy():
    s = GtoScheduler()
    ws = warps(3)
    for w in ws:
        s.add_warp(w)
    assert s.pick(always) is ws[0]
    assert s.pick(always) is ws[0]  # same warp until it stalls


def test_gto_falls_back_to_oldest():
    s = GtoScheduler()
    ws = warps(3)
    for w in ws:
        s.add_warp(w)
    s.pick(always)  # greedy on w0
    picked = s.pick(lambda w: w is not ws[0])
    assert picked is ws[1]  # oldest issuable
    # And becomes the new greedy warp.
    assert s.pick(always) is ws[1]


def test_gto_remove_greedy_warp():
    s = GtoScheduler()
    ws = warps(2)
    for w in ws:
        s.add_warp(w)
    s.pick(always)
    s.remove_warp(ws[0])
    assert s.pick(always) is ws[1]


def test_two_level_limits_active_set():
    s = TwoLevelScheduler(active_size=2)
    ws = warps(4)
    for w in ws:
        s.add_warp(w)
    picks = {s.pick(always) for _ in range(4)}
    assert picks == {ws[0], ws[1]}  # only the active set rotates


def test_two_level_refills_on_stall():
    s = TwoLevelScheduler(active_size=2)
    ws = warps(4)
    for w in ws:
        s.add_warp(w)
    s.pick(always)
    # First two stall; pending warps must be promoted.
    issuable = lambda w: w in (ws[2], ws[3])
    picked = s.pick(issuable)
    assert picked in (ws[2], ws[3])


def test_two_level_remove_warp():
    s = TwoLevelScheduler(active_size=2)
    ws = warps(2)
    for w in ws:
        s.add_warp(w)
    s.pick(always)
    s.remove_warp(ws[0])
    assert s.pick(always) is ws[1]


def test_empty_scheduler_returns_none():
    for policy in ("lrr", "gto", "two-level"):
        s = make_scheduler(policy)
        s.add_warp(_W("only"))
        s.remove_warp(s.warps[0])
        assert s.warps == []
        assert s.pick(always) is None


def test_lrr_rotation_fairness():
    """Over any window of N consecutive all-ready picks, every warp is
    chosen exactly once per lap — no warp is starved or double-served."""
    s = LrrScheduler()
    ws = warps(5)
    for w in ws:
        s.add_warp(w)
    picks = [s.pick(always) for _ in range(25)]
    for lap in range(5):
        window = picks[lap * 5:(lap + 1) * 5]
        assert sorted(w.name for w in window) == sorted(w.name for w in ws)


def test_lrr_resumes_after_stalled_warp_recovers():
    s = LrrScheduler()
    ws = warps(3)
    for w in ws:
        s.add_warp(w)
    assert s.pick(lambda w: w is not ws[0]) is ws[1]
    # w0 recovers; rotation continues from after w1, reaching w0 last.
    assert s.pick(always) is ws[2]
    assert s.pick(always) is ws[0]


def test_gto_greedy_slot_cleared_on_remove():
    """Removing the greedy warp must reset the greedy slot itself, not
    merely drop the warp from the age list — a stale reference would keep
    scheduling a retired warp."""
    s = GtoScheduler()
    ws = warps(3)
    for w in ws:
        s.add_warp(w)
    assert s.pick(always) is ws[0]
    assert s._greedy is ws[0]
    s.remove_warp(ws[0])
    assert s._greedy is None
    assert s.pick(always) is ws[1]


def test_gto_remove_non_greedy_keeps_greedy():
    s = GtoScheduler()
    ws = warps(3)
    for w in ws:
        s.add_warp(w)
    s.pick(always)  # greedy on w0
    s.remove_warp(ws[1])
    assert s._greedy is ws[0]
    assert s.pick(always) is ws[0]


def test_gto_greedy_cleared_when_nothing_issuable():
    s = GtoScheduler()
    ws = warps(2)
    for w in ws:
        s.add_warp(w)
    s.pick(always)
    assert s.pick(lambda w: False) is None
    assert s._greedy is None


def test_two_level_demote_and_promote_same_cycle():
    """When the whole active set stalls, a single pick() call must demote
    the stalled warps and promote a ready pending warp — the replacement
    issues in the same cycle, not one cycle later."""
    s = TwoLevelScheduler(active_size=2)
    ws = warps(4)
    for w in ws:
        s.add_warp(w)
    s.pick(always)  # active set = {w0, w1}
    assert set(s._active) == {ws[0], ws[1]}
    picked = s.pick(lambda w: w is ws[3])
    assert picked is ws[3]
    assert ws[3] in s._active


def test_two_level_active_set_mirror_consistent():
    """The O(1) membership mirror must track the active list through
    refills, demotions, and removals."""
    s = TwoLevelScheduler(active_size=3)
    ws = warps(6)
    for w in ws:
        s.add_warp(w)
    s.pick(always)
    assert s._active_set == set(s._active)
    # Demote two of the three active warps.
    survivors = set(s._active[:1])
    s.pick(lambda w: w in survivors or w in (ws[4], ws[5]))
    assert s._active_set == set(s._active)
    # Remove an active warp outright (CTA retired).
    victim = s._active[0]
    s.remove_warp(victim)
    assert victim not in s._active
    assert s._active_set == set(s._active)
    s.pick(always)
    assert s._active_set == set(s._active)


def test_two_level_refill_preserves_age_order():
    s = TwoLevelScheduler(active_size=2)
    ws = warps(4)
    for w in ws:
        s.add_warp(w)
    # Only the two youngest are issuable; the refill scan still walks the
    # owner list in age order, so they fill the active set in that order.
    s.pick(lambda w: w in (ws[2], ws[3]))
    assert s._active == [ws[2], ws[3]]
