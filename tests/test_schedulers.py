"""Warp-scheduler policies: LRR rotation, GTO greediness, two-level sets."""

import pytest

from repro.sim.schedulers import GtoScheduler, LrrScheduler, TwoLevelScheduler, make_scheduler


class _W:
    """Stand-in warp with an identity."""

    def __init__(self, name):
        self.name = name

    def __repr__(self):
        return self.name


def warps(n):
    return [_W(f"w{i}") for i in range(n)]


def always(_w):
    return True


def test_factory():
    assert isinstance(make_scheduler("lrr"), LrrScheduler)
    assert isinstance(make_scheduler("gto"), GtoScheduler)
    assert isinstance(make_scheduler("two-level"), TwoLevelScheduler)
    with pytest.raises(ValueError):
        make_scheduler("bogus")


def test_lrr_rotates():
    s = LrrScheduler()
    ws = warps(3)
    for w in ws:
        s.add_warp(w)
    picks = [s.pick(always) for _ in range(6)]
    assert picks == [ws[0], ws[1], ws[2], ws[0], ws[1], ws[2]]


def test_lrr_skips_stalled():
    s = LrrScheduler()
    ws = warps(3)
    for w in ws:
        s.add_warp(w)
    assert s.pick(lambda w: w is not ws[0]) is ws[1]


def test_lrr_none_when_all_stalled():
    s = LrrScheduler()
    for w in warps(3):
        s.add_warp(w)
    assert s.pick(lambda w: False) is None


def test_gto_stays_greedy():
    s = GtoScheduler()
    ws = warps(3)
    for w in ws:
        s.add_warp(w)
    assert s.pick(always) is ws[0]
    assert s.pick(always) is ws[0]  # same warp until it stalls


def test_gto_falls_back_to_oldest():
    s = GtoScheduler()
    ws = warps(3)
    for w in ws:
        s.add_warp(w)
    s.pick(always)  # greedy on w0
    picked = s.pick(lambda w: w is not ws[0])
    assert picked is ws[1]  # oldest issuable
    # And becomes the new greedy warp.
    assert s.pick(always) is ws[1]


def test_gto_remove_greedy_warp():
    s = GtoScheduler()
    ws = warps(2)
    for w in ws:
        s.add_warp(w)
    s.pick(always)
    s.remove_warp(ws[0])
    assert s.pick(always) is ws[1]


def test_two_level_limits_active_set():
    s = TwoLevelScheduler(active_size=2)
    ws = warps(4)
    for w in ws:
        s.add_warp(w)
    picks = {s.pick(always) for _ in range(4)}
    assert picks == {ws[0], ws[1]}  # only the active set rotates


def test_two_level_refills_on_stall():
    s = TwoLevelScheduler(active_size=2)
    ws = warps(4)
    for w in ws:
        s.add_warp(w)
    s.pick(always)
    # First two stall; pending warps must be promoted.
    issuable = lambda w: w in (ws[2], ws[3])
    picked = s.pick(issuable)
    assert picked in (ws[2], ws[3])


def test_two_level_remove_warp():
    s = TwoLevelScheduler(active_size=2)
    ws = warps(2)
    for w in ws:
        s.add_warp(w)
    s.pick(always)
    s.remove_warp(ws[0])
    assert s.pick(always) is ws[1]


def test_empty_scheduler_returns_none():
    for policy in ("lrr", "gto", "two-level"):
        s = make_scheduler(policy)
        s.add_warp(_W("only"))
        s.remove_warp(s.warps[0])
        assert s.warps == []
        assert s.pick(always) is None
