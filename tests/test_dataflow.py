"""The dataflow framework and its analysis passes: liveness (with VT swap
footprints), maybe-uninitialized reads, affine addresses, and the
barrier/shared passes' building blocks."""

import pytest

from repro.isa.analysis import (CFGView, affine_solution, liveness,
                                may_overlap, refine_bounds,
                                uninitialized_reads)
from repro.isa.analysis.affine import (Affine, CONST_ZERO, TOP,
                                       UNIFORM_UNKNOWN, is_top, join)
from repro.isa.assembler import assemble
from repro.kernels.registry import all_benchmarks


def _kernel(body: str, regs: int = 8, smem: int = 0, cta: str = "32"):
    return assemble(f".kernel t\n.regs {regs}\n.smem {smem}\n.cta {cta}\n{body}")


# -- CFGView -----------------------------------------------------------------


def test_instr_successors_shapes():
    k = _kernel("""
    SETP.LT r1, r0, #4
@r1 BRA skip
    MOV r2, #2
skip:
    EXIT
""")
    cfg = CFGView(k.instrs)
    assert cfg.instr_successors(0) == [1]
    assert sorted(cfg.instr_successors(1)) == [2, 3]  # taken + fallthrough
    assert cfg.instr_successors(3) == []  # EXIT


def test_reachability_excludes_dead_block():
    k = _kernel("""
    BRA end
    MOV r0, #1
end:
    EXIT
""")
    cfg = CFGView(k.instrs)
    assert cfg.pc_reachable(0) and cfg.pc_reachable(2)
    assert not cfg.pc_reachable(1)


# -- liveness ----------------------------------------------------------------


def test_liveness_straight_line():
    k = _kernel("""
    MOV r0, #1
    MOV r1, #2
    IADD r2, r0, r1
    STG [r2], r0
    EXIT
""")
    info = liveness(k)
    assert info.live_in[0] == frozenset()
    assert info.live_in[2] == frozenset({0, 1})
    assert info.live_in[3] == frozenset({0, 2})
    assert info.max_pressure == 2
    assert info.written_regs == frozenset({0, 1, 2})


def test_predicated_write_does_not_kill():
    k = _kernel("""
    MOV r0, #1
    SETP.LT r1, r0, #4
@r1 MOV r0, #2
    STG [r0], r0
    EXIT
""")
    info = liveness(k)
    # r0 stays live across the predicated redefinition at pc 2.
    assert 0 in info.live_in[2]


def test_swap_points_and_barrier_footprint():
    k = _kernel("""
    MOV r0, #0
    MOV r1, #4
    LDG r2, [r0]
    BAR
    FADD r3, r2, r1
    STG [r0], r3
    EXIT
""")
    info = liveness(k)
    assert 3 in info.barrier_live  # the BAR pc
    assert 2 in info.swap_point_live  # the LDG pc
    # After the LDG: r0, r1 live plus the in-flight r2 destination.
    assert info.swap_point_live[2] == 3
    assert info.swap_footprint_regs >= info.barrier_live[3]


def test_swap_footprint_counts_inflight_load_dst():
    k = _kernel("""
    MOV r0, #0
    LDG r1, [r0]
    STG [r0], r1
    EXIT
""")
    info = liveness(k)
    # live_in at pc 2 is {r0, r1}: dst already live, no double count.
    assert info.swap_point_live[1] == 2


# -- maybe-uninitialized reads ----------------------------------------------


def test_uninit_read_detected():
    k = _kernel("FADD r1, r0, r2\nSTG [r1], r1\nEXIT")
    findings = uninitialized_reads(k)
    assert (0, 0) in findings and (0, 2) in findings


def test_write_on_every_path_is_clean():
    k = _kernel("""
    SETP.LT r1, r0, #4
@r1 BRA a
    MOV r2, #1
    BRA join
a:
    MOV r2, #2
join:
    STG [r2], r2
    EXIT
""")
    findings = uninitialized_reads(k)
    assert all(reg != 2 for _pc, reg in findings)


def test_write_on_one_path_still_flagged():
    k = _kernel("""
    SETP.LT r1, r0, #4
@r1 BRA join
    MOV r2, #1
join:
    STG [r2], r2
    EXIT
""")
    findings = uninitialized_reads(k)
    assert any(reg == 2 for _pc, reg in findings)


def test_unreachable_reads_not_flagged():
    k = _kernel("""
    BRA end
    STG [r5], r5
end:
    EXIT
""")
    assert uninitialized_reads(k) == []


# -- affine domain -----------------------------------------------------------


def test_affine_tracks_tid_scaling():
    k = _kernel("""
    S2R r0, %tid_x
    SHL r1, r0, #2
    STG [r1], r0
    EXIT
""", cta="64")
    _affine, envs = affine_solution(k)
    value = envs[2].get(1)
    assert value.tid == (("tid_x", 4),)
    assert value.bounds(k.cta_dim) == (0, 4 * 63)


def test_affine_uniform_param_cancels_in_difference():
    k = _kernel("""
    S2R r0, %param0
    S2R r1, %tid_x
    IADD r2, r0, r1
    IADD r3, r2, #4
    STG [r2], r1
    EXIT
""")
    _affine, envs = affine_solution(k)
    a, b = envs[4].get(2), envs[4].get(3)
    diff = b.sub(a)
    assert diff.is_const and diff.const == 4


def test_top_absorbs_arithmetic():
    assert is_top(TOP.add(Affine(1.0)))
    assert is_top(TOP.scale(4))
    assert is_top(Affine(0.0, (("tid_x", 1),), ()).add(TOP))
    assert TOP.scale(0) == CONST_ZERO


def test_join_widens_uniform_disagreement():
    a = Affine(4.0, (("tid_x", 4),), ())
    b = Affine(8.0, (("tid_x", 4),), ())
    widened = join(a, b)
    assert widened.tid == (("tid_x", 4),)
    assert widened.fuzzy and widened.const == 0.0


def test_join_tid_disagreement_is_top():
    a = Affine(0.0, (("tid_x", 4),), ())
    b = Affine(0.0, (("tid_x", 8),), ())
    assert is_top(join(a, b))
    assert join(UNIFORM_UNKNOWN, Affine(3.0)) == UNIFORM_UNKNOWN


def test_loop_counter_stays_uniform():
    k = _kernel("""
    MOV r0, #0
loop:
    IADD r0, r0, #1
    SETP.LT r1, r0, #8
@r1 BRA loop
    EXIT
""")
    _affine, envs = affine_solution(k)
    # At the branch, the loop counter has widened but stayed uniform.
    assert envs[3].get(0).is_uniform


def test_refine_bounds_narrows_through_predicate():
    k = _kernel("""
    S2R r0, %tid_x
    SETP.LT r1, r0, #16
    SHL r2, r0, #2
@r1 STS [r2], r0
    EXIT
""", smem=64, cta="64")
    _affine, envs = affine_solution(k)
    env = envs[3]
    address = env.get(2)
    assert refine_bounds(address, None, False, k.cta_dim) == (0, 4 * 63)
    refined = refine_bounds(address, env.get(1), False, k.cta_dim)
    assert refined == (0, 4 * 15)
    # The negated guard covers the complement range.
    negated = refine_bounds(address, env.get(1), True, k.cta_dim)
    assert negated == (4 * 16, 4 * 63)


# -- overlap test ------------------------------------------------------------


def test_overlap_same_word_stride():
    a = Affine(0.0, (("tid_x", 4),), ())
    assert may_overlap(a, a, (32, 1, 1)) is False  # injective: distinct words
    shifted = Affine(4.0, (("tid_x", 4),), ())
    assert may_overlap(a, shifted, (32, 1, 1)) is True  # thread t vs t+1


def test_overlap_narrow_stride_collides():
    a = Affine(0.0, (("tid_x", 2),), ())  # sub-word stride: two tids share a word
    assert may_overlap(a, a, (32, 1, 1)) is True


def test_overlap_unknown_on_fuzzy():
    assert may_overlap(TOP, TOP, (32, 1, 1)) is None
    assert may_overlap(UNIFORM_UNKNOWN, CONST_ZERO, (32, 1, 1)) is None


def test_overlap_disjoint_constant_banks():
    a = Affine(0.0, (("tid_x", 4),), ())
    b = Affine(256.0, (("tid_x", 4),), ())
    assert may_overlap(a, b, (32, 1, 1)) is False  # 4*31 < 256


# -- acceptance: footprints over the registry --------------------------------


@pytest.mark.parametrize("bench", all_benchmarks(), ids=lambda b: b.name)
def test_swap_footprint_within_declared(bench):
    info = liveness(bench.kernel)
    assert 0 < info.swap_footprint_regs <= bench.kernel.regs_per_thread
    assert info.max_pressure <= bench.kernel.regs_per_thread
