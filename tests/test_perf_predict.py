"""The static performance oracle: limiter/idle-class/VT-tier predictions
and the agreement-gate helpers it shares with ``repro predict --check``."""

import pytest

from repro.core.occupancy import limiter_summary
from repro.isa.analysis import (layout_for, predict, predict_kernel,
                                warp_profile)
from repro.isa.analysis.perf import (AGREEMENT_TIE, IDLE_CLASSES, TIER_HIGH,
                                     TIER_MODERATE, idle_agreement,
                                     measured_idle_class, measured_vt_tier)
from repro.kernels.registry import all_benchmarks, get
from repro.sim.config import GPUConfig

BENCHES = all_benchmarks()


def predictions_for(name):
    bench = get(name)
    return {p.arch: p
            for p in predict_kernel(bench.kernel, layout=layout_for(bench))}


# -- structural contract ------------------------------------------------------


@pytest.mark.parametrize("bench", BENCHES, ids=lambda b: b.name)
def test_prediction_shape_and_limiter_single_source(bench):
    cfg = GPUConfig()
    summary = limiter_summary(bench.kernel, cfg)
    for p in predict_kernel(bench.kernel, cfg, layout=layout_for(bench)):
        # The limiter column must come from core/occupancy verbatim —
        # the oracle never re-derives scheduling-vs-capacity itself.
        assert p.limiter == summary["limiter"]
        assert p.idle_class in IDLE_CLASSES
        assert p.vt_tier in ("high", "moderate", "neutral")
        assert 0.0 < p.busy <= 1.0
        assert p.binding
        assert p.warps >= 1 and p.active_warps >= 1
        if p.arch == "vt":
            assert p.warps >= p.active_warps


@pytest.mark.parametrize("bench", BENCHES, ids=lambda b: b.name)
def test_profile_is_internally_consistent(bench):
    profile = warp_profile(bench.kernel, GPUConfig(), layout_for(bench))
    assert profile.instructions > 0
    assert profile.chain_cycles >= profile.instructions
    assert sum(n for n, *_ in profile.phases) == profile.instructions
    assert abs(sum(profile.mix.values()) - 1.0) < 1e-9
    if profile.inflight:
        assert profile.cold_lat > 0


def test_to_dict_is_json_ready():
    payload = predictions_for("vecadd")["baseline"].to_dict()
    assert payload["kernel"] == "vecadd"
    assert set(payload) == {"kernel", "arch", "limiter", "idle_class",
                            "vt_tier", "warps", "active_warps", "busy",
                            "binding", "bounds"}
    assert all(isinstance(v, (int, float)) for v in payload["bounds"].values())


# -- calibration snapshots ----------------------------------------------------
# A few hand-verified predictions that lock the model's calibration; each
# traces to a simulator mechanism (see docs/ARCHITECTURE.md).


def test_vecadd_baseline_exposed_latency_vt_mshr_convoy():
    preds = predictions_for("vecadd")
    assert preds["baseline"].idle_class == "mem"
    assert preds["baseline"].vt_tier == "high"
    # Under VT the extra CTAs saturate the 64-entry MSHR file: the
    # streaming kernel's bottleneck flips from latency to a structural one.
    assert preds["vt"].idle_class == "struct"
    assert preds["vt"].binding == "mshr-convoy"


def test_btree_is_ldst_port_bound_on_both_arches():
    preds = predictions_for("btree")
    for p in preds.values():
        assert p.idle_class == "struct"
        assert p.binding == "port:ldst"


def test_mriq_is_sfu_port_bound():
    preds = predictions_for("mriq")
    for p in preds.values():
        assert p.idle_class == "struct"
        assert p.binding == "port:sfu"


def test_bfs_is_dependence_residual_alu():
    preds = predictions_for("bfs")
    for p in preds.values():
        assert p.idle_class == "alu"
        assert p.binding == "dependence-residual"


def test_regheavy_capacity_limited_gets_no_vt_credit():
    preds = predictions_for("regheavy")
    assert preds["baseline"].limiter == "capacity"
    for p in preds.values():
        assert p.vt_tier == "neutral"


def test_prediction_without_layout_still_classifies():
    # No launch layout: every global access assumed to miss, symbolic
    # trip counts fall back to defaults — the oracle must still produce
    # a well-formed prediction (lint uses this path).
    p = predict(get("saxpy").kernel)
    assert p.idle_class in IDLE_CLASSES


# -- agreement-gate helpers ---------------------------------------------------


def test_measured_idle_class_ignores_barrier_idle():
    breakdown = {"mem": 0.2, "alu": 0.1, "struct": 0.15, "barrier": 0.5}
    assert measured_idle_class(breakdown) == "mem"


def test_idle_agreement_exact_match():
    ok, dom, ratio = idle_agreement("mem", {"mem": 0.4, "alu": 0.1})
    assert ok and dom == "mem" and ratio == 1.0


def test_idle_agreement_tie_tolerance():
    # Predicted class at >= tau of the dominant fraction still agrees.
    near = {"alu": 0.30, "mem": 0.30 * AGREEMENT_TIE + 1e-9, "struct": 0.0}
    ok, dom, ratio = idle_agreement("mem", near)
    assert ok and dom == "alu" and ratio >= AGREEMENT_TIE

    far = {"alu": 0.30, "mem": 0.30 * AGREEMENT_TIE - 0.05, "struct": 0.0}
    ok, _, _ = idle_agreement("mem", far)
    assert not ok


def test_measured_vt_tier_cut_points():
    assert measured_vt_tier(1000, int(1000 / TIER_HIGH) - 1) == "high"
    assert measured_vt_tier(1000, int(1000 / TIER_MODERATE) - 1) == "moderate"
    assert measured_vt_tier(1000, 1000) == "neutral"
    assert measured_vt_tier(1000, 1200) == "neutral"  # VT slowdown
