"""Coalescer and shared-memory bank-conflict analysis."""

import numpy as np

from repro.sim.ldst import bank_conflict_passes, coalesce


def addrs(*values):
    return np.array(values, dtype=np.int64)


def test_fully_coalesced_warp_one_transaction():
    warp_addrs = np.arange(32, dtype=np.int64) * 4  # consecutive words
    assert coalesce(warp_addrs, 128) == [0]


def test_two_segment_access():
    warp_addrs = np.arange(32, dtype=np.int64) * 4 + 64  # straddles a line
    assert coalesce(warp_addrs, 128) == [0, 128]


def test_strided_access_fans_out():
    warp_addrs = np.arange(32, dtype=np.int64) * 128
    assert len(coalesce(warp_addrs, 128)) == 32


def test_same_address_collapses():
    assert coalesce(addrs(4, 4, 4, 4), 128) == [0]


def test_unaligned_bases_align_to_segments():
    assert coalesce(addrs(120, 132), 128) == [0, 128]


def test_empty_access():
    assert coalesce(np.array([], dtype=np.int64), 128) == []
    assert bank_conflict_passes(np.array([], dtype=np.int64), 32) == 1


def test_conflict_free_row():
    warp_addrs = np.arange(32, dtype=np.int64) * 4  # one word per bank
    assert bank_conflict_passes(warp_addrs, 32) == 1


def test_broadcast_same_word_is_one_pass():
    assert bank_conflict_passes(addrs(0, 0, 0, 0), 32) == 1


def test_stride_32_words_full_conflict():
    warp_addrs = np.arange(32, dtype=np.int64) * 32 * 4  # all bank 0
    assert bank_conflict_passes(warp_addrs, 32) == 32


def test_stride_two_words_two_way_conflict():
    warp_addrs = np.arange(32, dtype=np.int64) * 2 * 4
    assert bank_conflict_passes(warp_addrs, 32) == 2


def test_padded_transpose_stride_is_conflict_free():
    # Stride 33 words (the padded shared-memory trick) hits distinct banks.
    warp_addrs = np.arange(32, dtype=np.int64) * 33 * 4
    assert bank_conflict_passes(warp_addrs, 32) == 1


# -- edge cases: masks, spills, broadcasts -----------------------------------


def test_empty_active_mask_costs_nothing():
    # A fully predicated-off warp issues no transactions and the shared
    # pipe's minimum single pass.
    empty = np.array([], dtype=np.int64)
    assert coalesce(empty, 128) == []
    assert bank_conflict_passes(empty, 32) == 1


def test_single_lane_mask_is_minimum_cost():
    assert coalesce(addrs(4096), 128) == [4096 // 128 * 128]
    assert bank_conflict_passes(addrs(4096), 32) == 1


def test_global_same_word_broadcast_collapses_to_one_segment():
    warp_addrs = np.zeros(32, dtype=np.int64) + 256
    assert coalesce(warp_addrs, 128) == [256]


def test_unaligned_segment_spill_property():
    # A contiguous 128-byte warp access starting at any word offset spills
    # into a second segment exactly when it is not line-aligned.
    run = np.arange(32, dtype=np.int64) * 4
    for offset in range(0, 128, 4):
        segments = coalesce(run + offset, 128)
        assert len(segments) == (1 if offset % 128 == 0 else 2), offset


def test_transpose_padding_property():
    # The transpose kernel's tile walk: reading column r of a 32x32 tile.
    # Unpadded (stride 32 words) every lane lands in one bank - a full
    # 32-way serialization for EVERY column; padding to stride 33 makes
    # every column conflict-free.  This is the padded/unpadded pair the
    # registry transpose kernel bakes in.
    lanes = np.arange(32, dtype=np.int64)
    for row in range(32):
        unpadded = (lanes * 32 + row) * 4
        padded = (lanes * 33 + row) * 4
        assert bank_conflict_passes(unpadded, 32) == 32, row
        assert bank_conflict_passes(padded, 32) == 1, row
