"""Coalescer and shared-memory bank-conflict analysis."""

import numpy as np

from repro.sim.ldst import bank_conflict_passes, coalesce


def addrs(*values):
    return np.array(values, dtype=np.int64)


def test_fully_coalesced_warp_one_transaction():
    warp_addrs = np.arange(32, dtype=np.int64) * 4  # consecutive words
    assert coalesce(warp_addrs, 128) == [0]


def test_two_segment_access():
    warp_addrs = np.arange(32, dtype=np.int64) * 4 + 64  # straddles a line
    assert coalesce(warp_addrs, 128) == [0, 128]


def test_strided_access_fans_out():
    warp_addrs = np.arange(32, dtype=np.int64) * 128
    assert len(coalesce(warp_addrs, 128)) == 32


def test_same_address_collapses():
    assert coalesce(addrs(4, 4, 4, 4), 128) == [0]


def test_unaligned_bases_align_to_segments():
    assert coalesce(addrs(120, 132), 128) == [0, 128]


def test_empty_access():
    assert coalesce(np.array([], dtype=np.int64), 128) == []
    assert bank_conflict_passes(np.array([], dtype=np.int64), 32) == 1


def test_conflict_free_row():
    warp_addrs = np.arange(32, dtype=np.int64) * 4  # one word per bank
    assert bank_conflict_passes(warp_addrs, 32) == 1


def test_broadcast_same_word_is_one_pass():
    assert bank_conflict_passes(addrs(0, 0, 0, 0), 32) == 1


def test_stride_32_words_full_conflict():
    warp_addrs = np.arange(32, dtype=np.int64) * 32 * 4  # all bank 0
    assert bank_conflict_passes(warp_addrs, 32) == 32


def test_stride_two_words_two_way_conflict():
    warp_addrs = np.arange(32, dtype=np.int64) * 2 * 4
    assert bank_conflict_passes(warp_addrs, 32) == 2


def test_padded_transpose_stride_is_conflict_free():
    # Stride 33 words (the padded shared-memory trick) hits distinct banks.
    warp_addrs = np.arange(32, dtype=np.int64) * 33 * 4
    assert bank_conflict_passes(warp_addrs, 32) == 1
