"""CFG construction and reconvergence-point (IPD) analysis."""

from repro.isa.assembler import assemble
from repro.isa.cfg import EXIT_PC, build_cfg, reconvergence_table


def _kernel(body: str):
    return assemble(f".kernel t\n.regs 8\n{body}")


def test_straight_line_single_block():
    k = _kernel("MOV r0, #1\nIADD r0, r0, #1\nEXIT")
    blocks = build_cfg(k.instrs)
    assert len(blocks) == 1
    assert blocks[0].start == 0 and blocks[0].end == 3
    assert blocks[0].successors == []


def test_if_else_diamond_reconverges_at_join():
    k = _kernel("""
    SETP.LT r1, r0, #4
@r1 BRA low
    MOV r2, #2
    BRA join
low:
    MOV r2, #1
join:
    MOV r3, #0
    EXIT
""")
    table = reconvergence_table(k.instrs)
    # The conditional branch is at pc 1; join label is at pc 5.
    assert table == {1: 5}
    assert k.instrs[1].reconv_pc == 5


def test_if_without_else():
    k = _kernel("""
    SETP.LT r1, r0, #4
@r1 BRA skip
    MOV r2, #2
skip:
    EXIT
""")
    assert reconvergence_table(k.instrs) == {1: 3}


def test_loop_backedge_reconverges_at_fallthrough():
    k = _kernel("""
top:
    IADD r0, r0, #1
    SETP.LT r1, r0, #4
@r1 BRA top
    EXIT
""")
    table = reconvergence_table(k.instrs)
    # Loop branch at pc 2: paths rejoin at the loop exit (pc 3).
    assert table == {2: 3}


def test_divergent_exit_paths_use_exit_sentinel():
    k = _kernel("""
    SETP.LT r1, r0, #4
@r1 BRA other
    EXIT
other:
    EXIT
""")
    assert reconvergence_table(k.instrs) == {1: EXIT_PC}


def test_nested_if_reconvergence_order():
    k = _kernel("""
    SETP.LT r1, r0, #8
@r1 BRA inner
    MOV r2, #0
    BRA join
inner:
    SETP.LT r3, r0, #4
@r3 BRA deep
    MOV r2, #1
    BRA ijoin
deep:
    MOV r2, #2
ijoin:
    MOV r4, #0
join:
    EXIT
""")
    table = reconvergence_table(k.instrs)
    outer_rpc = table[1]
    inner_rpc = table[5]
    assert inner_rpc < outer_rpc  # inner joins before outer
    assert k.instrs[outer_rpc].is_exit or outer_rpc == k.labels["join"]


def test_unconditional_branch_not_in_table():
    k = _kernel("""
    BRA skip
    MOV r0, #1
skip:
    EXIT
""")
    assert reconvergence_table(k.instrs) == {}


def test_successors_structure():
    k = _kernel("""
    SETP.LT r1, r0, #4
@r1 BRA a
    BRA b
a:
    MOV r2, #1
b:
    EXIT
""")
    blocks = build_cfg(k.instrs)
    by_start = {b.start: b for b in blocks}
    cond_block = by_start[0]
    assert len(cond_block.successors) == 2  # taken + fallthrough
    uncond_block = by_start[2]
    assert len(uncond_block.successors) == 1


def test_branch_to_self_forms_single_block_loop():
    k = _kernel("""
self:
    SETP.LT r1, r0, #4
@r1 BRA self
    EXIT
""")
    blocks = build_cfg(k.instrs)
    by_start = {b.start: b for b in blocks}
    loop = by_start[0]
    assert loop.index in loop.successors  # the self edge
    # The branch reconverges at its own fallthrough.
    assert reconvergence_table(k.instrs) == {1: 2}


def test_unreachable_block_is_kept_with_no_predecessors():
    k = _kernel("""
    BRA end
    MOV r0, #1
    MOV r1, #2
end:
    EXIT
""")
    blocks = build_cfg(k.instrs)
    by_start = {b.start: b for b in blocks}
    dead = by_start[1]
    assert dead.start == 1 and dead.end == 3
    preds = {succ for b in blocks for succ in b.successors}
    assert dead.index not in preds
    covered = sorted(pc for b in blocks for pc in range(b.start, b.end))
    assert covered == list(range(len(k.instrs)))


def test_exit_as_final_instruction_has_no_successors():
    k = _kernel("MOV r0, #1\nEXIT")
    blocks = build_cfg(k.instrs)
    assert blocks[-1].successors == []


def test_back_to_back_branches_each_end_a_block():
    k = _kernel("""
    SETP.LT r1, r0, #4
@r1 BRA a
@r1 BRA b
a:
    MOV r2, #1
b:
    EXIT
""")
    blocks = build_cfg(k.instrs)
    by_start = {b.start: b for b in blocks}
    # The first branch ends the entry block; the second gets a block of its
    # own (it is both a post-branch leader and a block terminator).
    assert by_start[0].end == 2
    assert by_start[2].end == 3
    assert len(by_start[0].successors) == 2
    assert len(by_start[2].successors) == 2


def test_exit_pc_sentinel_when_paths_never_rejoin():
    k = _kernel("""
    SETP.LT r1, r0, #4
@r1 BRA other
    MOV r2, #1
    EXIT
other:
    MOV r2, #2
    EXIT
""")
    table = reconvergence_table(k.instrs)
    assert table == {1: EXIT_PC}
    assert k.instrs[1].reconv_pc == EXIT_PC


def test_blocks_cover_all_pcs():
    k = _kernel("""
top:
    SETP.LT r1, r0, #4
@r1 BRA top
    MOV r2, #1
    EXIT
""")
    blocks = build_cfg(k.instrs)
    covered = sorted(pc for b in blocks for pc in range(b.start, b.end))
    assert covered == list(range(len(k.instrs)))
