"""Campaign driver: orchestrator wiring, journal resume, reproducer
dumps, deterministic replay, and the stale-fingerprint discipline."""

import json
from pathlib import Path

import pytest

from repro.analysis.experiments import doctor_report
from repro.fuzz.campaign import (
    CANARY_FAULT,
    StaleReproducerError,
    cell_name,
    list_reproducers,
    load_reproducer,
    make_cells,
    replay_reproducer,
    run_campaign,
    run_fuzz_cell,
)
from repro.fuzz.generator import GenConfig, generate_spec


def test_cell_name_tracks_spec_content():
    spec = generate_spec(4)
    assert cell_name(spec) == cell_name(dict(spec))
    assert cell_name(spec) != cell_name(dict(spec, cta_x=spec["cta_x"] + 32))


def test_cells_have_unique_fingerprints():
    cells = make_cells(range(10), GenConfig())
    prints = {cell.fingerprint for cell in cells}
    assert len(prints) == 10


def test_run_fuzz_cell_returns_ok_record_with_stats():
    from repro.analysis.orchestrator import _cell_payload

    cell = make_cells([0], GenConfig())[0]
    record = run_fuzz_cell(_cell_payload(cell, attempt=1, max_cycles=None))
    assert record.ok and record.stats is not None and record.cycles > 0


def test_run_fuzz_cell_divergence_record_carries_dump():
    from repro.analysis.orchestrator import _cell_payload

    cell = make_cells([0], GenConfig(), fault=CANARY_FAULT)[0]
    record = run_fuzz_cell(_cell_payload(cell, attempt=1, max_cycles=None))
    assert record.status == "divergence" and not record.ok
    assert "fuzz divergence dump" in record.dump
    assert "stats-mismatch" in record.dump


def test_clean_campaign_and_journal_resume(tmp_path):
    directory = tmp_path / "camp"
    result = run_campaign(3, seed=50, jobs=0, directory=directory)
    assert result.ok, result.divergent
    assert result.stats["cases"] == 3 and result.stats["divergent"] == 0
    assert (directory / "journal.jsonl").exists()

    # Resuming re-runs nothing and reaches the same verdict.
    again = run_campaign(3, seed=50, jobs=0, directory=directory, resume=True)
    assert again.ok
    assert set(again.records) == set(result.records)


def test_canary_campaign_writes_minimal_replayable_reproducer(tmp_path):
    directory = tmp_path / "canary"
    result = run_campaign(1, seed=0, jobs=0, directory=directory,
                          fault=CANARY_FAULT)
    assert not result.ok
    assert len(result.reproducer_paths) == 1
    data = load_reproducer(result.reproducer_paths[0])
    assert data["instructions"] <= 8
    assert data["fault"] == CANARY_FAULT
    assert data["divergences"]

    first = replay_reproducer(result.reproducer_paths[0])
    second = replay_reproducer(result.reproducer_paths[0])
    assert not first.ok and not second.ok
    assert ([d.to_dict() for d in first.divergences]
            == [d.to_dict() for d in second.divergences])


def test_tampered_reproducer_is_refused_as_stale(tmp_path):
    directory = tmp_path / "canary"
    result = run_campaign(1, seed=0, jobs=0, directory=directory,
                          fault=CANARY_FAULT)
    path = Path(result.reproducer_paths[0])
    data = json.loads(path.read_text())
    data["config"]["dram_latency"] += 1  # silent retune: must be refused
    path.write_text(json.dumps(data))
    with pytest.raises(StaleReproducerError):
        replay_reproducer(path)
    listed = list_reproducers(directory)
    assert listed and listed[0]["stale"] is True


def test_doctor_lists_fuzz_reproducers(tmp_path):
    directory = tmp_path / "canary"
    run_campaign(1, seed=0, jobs=0, directory=directory, fault=CANARY_FAULT)
    report, data = doctor_report(benches=["stride"], archs=("baseline",),
                                 fuzz_dir=directory)
    assert "fuzz reproducers" in report
    assert len(data["reproducers"]) == 1
    assert data["reproducers"][0]["stale"] is False
    assert "replay" in report


def test_time_budget_leaves_remaining_seeds_resumable(tmp_path):
    # A zero budget expires after the first batch (batches of 2 at jobs=0):
    # seeds 50..51 run, 52 is left journaled-out but resumable.
    directory = tmp_path / "budget"
    result = run_campaign(3, seed=50, jobs=0, time_budget=0.0,
                          directory=directory)
    assert result.seeds_skipped == [52]
    assert sorted(result.seeds_run) == [50, 51]

    resumed = run_campaign(3, seed=50, jobs=0, directory=directory,
                           resume=True)
    assert resumed.ok and not resumed.seeds_skipped


def test_divergence_status_is_not_retried():
    from repro.analysis.orchestrator import RETRY_POLICY
    from repro.analysis.runner import STATUSES

    assert "divergence" in STATUSES
    assert RETRY_POLICY["divergence"] is False
