"""CLI commands (invoked in-process via repro.cli.main)."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_list(capsys):
    code, out, _err = run_cli(capsys, "list")
    assert code == 0
    assert "bfs" in out and "mm_tiled" in out
    assert "scheduling" in out and "capacity" in out


def test_run(capsys):
    code, out, _err = run_cli(capsys, "run", "vecadd", "--scale", "0.25", "--sms", "1")
    assert code == 0
    assert "IPC" in out and "vecadd" in out


def test_run_with_arch_and_scheduler(capsys):
    code, out, _err = run_cli(capsys, "run", "stride", "--arch", "vt",
                              "--scale", "0.25", "--sms", "1", "--scheduler", "lrr")
    assert code == 0
    assert "swaps" in out


def test_compare(capsys):
    code, out, _err = run_cli(capsys, "compare", "stride", "--scale", "0.5", "--sms", "1")
    assert code == 0
    for arch in ("baseline", "vt", "ideal-sched"):
        assert arch in out
    assert "speedup" in out


def test_occupancy(capsys):
    code, out, _err = run_cli(capsys, "occupancy", "stride")
    assert code == 0
    assert "unbounded" in out  # no shared memory
    assert "headroom" in out


def test_disasm(capsys):
    code, out, _err = run_cli(capsys, "disasm", "vecadd")
    assert code == 0
    assert ".kernel vecadd" in out
    assert "LDG" in out


def test_profile(capsys):
    code, out, _err = run_cli(capsys, "profile", "reduction")
    assert code == 0
    assert "barriers" in out and "arithmetic intensity" in out


def test_experiment_static(capsys):
    code, out, _err = run_cli(capsys, "experiment", "e11")
    assert code == 0
    assert "backup SRAM" in out


def test_experiment_unknown(capsys):
    code, _out, err = run_cli(capsys, "experiment", "E99")
    assert code == 2
    assert "unknown experiment" in err


def test_unknown_benchmark(capsys):
    code, _out, err = run_cli(capsys, "run", "nope", "--scale", "0.25")
    assert code == 2
    assert "unknown benchmark" in err


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


# -- robustness surface ------------------------------------------------------


@pytest.mark.parametrize("bad", [
    ("run", "vecadd", "--scale", "0"),
    ("run", "vecadd", "--scale", "-1"),
    ("run", "vecadd", "--sms", "0"),
    ("compare", "vecadd", "--scale", "0"),
    ("doctor", "--scale", "-0.5"),
    ("run", "vecadd", "--max-cycles", "0"),
])
def test_invalid_arguments_rejected_at_parse_time(capsys, bad):
    with pytest.raises(SystemExit) as excinfo:
        main(list(bad))
    assert excinfo.value.code == 2
    assert "must be" in capsys.readouterr().err


def test_run_with_sanitizer(capsys):
    code, out, _err = run_cli(capsys, "run", "vecadd", "--scale", "0.25",
                              "--sms", "1", "--sanitize")
    assert code == 0
    assert "IPC" in out


def test_timeout_is_friendly_and_writes_dump(capsys):
    code, _out, err = run_cli(capsys, "run", "vecadd", "--scale", "0.25",
                              "--sms", "1", "--max-cycles", "100")
    assert code == 1
    assert "simulation timeout" in err
    assert "Traceback" not in err
    assert "diagnostic dump written to" in err
    path = err.rsplit("diagnostic dump written to ", 1)[1].strip()
    with open(path) as handle:
        assert "deadlock forensics" in handle.read()


def test_value_error_is_friendly(capsys, monkeypatch):
    import repro.cli

    def boom(*args, **kwargs):
        raise ValueError("boom")

    monkeypatch.setattr(repro.cli, "run_benchmark", boom)
    code, _out, err = run_cli(capsys, "run", "vecadd", "--scale", "0.25")
    assert code == 1
    assert err.strip() == "error: boom"


def test_invariant_violation_is_friendly(capsys, monkeypatch):
    import repro.cli
    from repro.sim.sanitizer import InvariantViolation

    def boom(*args, **kwargs):
        raise InvariantViolation("register-capacity", "too many", sm_id=0, cycle=9)

    monkeypatch.setattr(repro.cli, "run_benchmark", boom)
    code, _out, err = run_cli(capsys, "run", "vecadd")
    assert code == 1
    assert "invariant violation" in err
    assert "register-capacity" in err


def test_doctor_smoke(capsys):
    code, out, _err = run_cli(capsys, "doctor", "--scale", "0.1",
                              "--benchmark", "vecadd", "--benchmark", "stride")
    assert code == 0
    assert "vecadd" in out and "stride" in out
    assert "cells clean" in out


def test_doctor_exit_code_on_failure(capsys, monkeypatch):
    from repro.sim.gpu import SimulationTimeout

    def always_timeout(*args, **kwargs):
        raise SimulationTimeout("injected", dump=None)

    monkeypatch.setattr("repro.analysis.runner.run_benchmark", always_timeout)
    code, out, _err = run_cli(capsys, "doctor", "--scale", "0.1",
                              "--benchmark", "vecadd")
    assert code == 1
    assert "FAILED(timeout)" in out


def test_experiment_e5_renders(capsys):
    code, out, _err = run_cli(capsys, "experiment", "e5", "--scale", "0.1")
    assert code == 0
    assert "speedup" in out


def test_experiment_keep_going_renders_partial(capsys, monkeypatch):
    import repro.analysis.runner as runner_mod
    from repro.sim.gpu import ProgressDeadlock

    real = runner_mod.run_benchmark

    def flaky(bench, cfg, *args, **kwargs):
        if bench.name == "vecadd" and cfg.arch == "vt":
            raise ProgressDeadlock("injected hang", dump="dump text")
        return real(bench, cfg, *args, **kwargs)

    monkeypatch.setattr(runner_mod, "run_benchmark", flaky)
    code, out, _err = run_cli(capsys, "experiment", "e5", "--scale", "0.1")
    assert code == 0  # keep-going: the sweep survives the poisoned cell
    assert "FAILED(deadlock)" in out
    assert "failed cells" in out


def test_experiment_strict_propagates_failure(capsys, monkeypatch):
    import repro.analysis.runner as runner_mod
    from repro.sim.gpu import ProgressDeadlock

    real = runner_mod.run_benchmark

    def flaky(bench, cfg, *args, **kwargs):
        if bench.name == "vecadd" and cfg.arch == "vt":
            raise ProgressDeadlock("injected hang", dump="dump text")
        return real(bench, cfg, *args, **kwargs)

    monkeypatch.setattr(runner_mod, "run_benchmark", flaky)
    code, _out, err = run_cli(capsys, "experiment", "e5", "--scale", "0.1",
                              "--strict")
    assert code == 1
    assert "simulation deadlock" in err


# -- sweep: the orchestrated matrix ------------------------------------------


def test_sweep_serial_with_journal(capsys, tmp_path):
    code, out, _err = run_cli(
        capsys, "sweep", "--serial", "--scale", "0.25", "--sms", "1",
        "--benchmark", "vecadd", "--dir", str(tmp_path))
    assert code == 0
    assert "sweep summary" in out
    assert "3/3 ok" in out
    assert (tmp_path / "journal.jsonl").exists()


def test_sweep_resume_skips_journaled_cells(capsys, tmp_path):
    run_cli(capsys, "sweep", "--serial", "--scale", "0.25", "--sms", "1",
            "--benchmark", "vecadd", "--dir", str(tmp_path))
    code, out, _err = run_cli(
        capsys, "sweep", "--serial", "--scale", "0.25", "--sms", "1",
        "--benchmark", "vecadd", "--resume", str(tmp_path))
    assert code == 0
    assert "3 resumed" in out


def test_sweep_refuses_stale_directory_without_resume(capsys, tmp_path):
    run_cli(capsys, "sweep", "--serial", "--scale", "0.25", "--sms", "1",
            "--benchmark", "vecadd", "--dir", str(tmp_path))
    code, _out, err = run_cli(
        capsys, "sweep", "--serial", "--scale", "0.25", "--sms", "1",
        "--benchmark", "vecadd", "--dir", str(tmp_path))
    assert code == 1
    assert "resume" in err


def test_sweep_dir_and_resume_conflict(capsys, tmp_path):
    code, _out, err = run_cli(
        capsys, "sweep", "--dir", str(tmp_path), "--resume", str(tmp_path / "x"))
    assert code == 2
    assert "not both" in err


@pytest.mark.parametrize("bad", [
    ("sweep", "--jobs", "0"),
    ("sweep", "--retries", "-1"),
    ("sweep", "--wall-timeout", "0"),
    ("sweep", "--scale", "0"),
])
def test_sweep_invalid_arguments(capsys, bad):
    with pytest.raises(SystemExit) as excinfo:
        main(list(bad))
    assert excinfo.value.code == 2


def test_sweep_reports_failed_cells(capsys, tmp_path):
    code, out, _err = run_cli(
        capsys, "sweep", "--serial", "--scale", "0.25", "--sms", "1",
        "--benchmark", "vecadd", "--max-cycles", "100",
        "--retries", "0", "--dir", str(tmp_path))
    assert code == 1
    assert "FAILED(timeout)" in out
    assert (tmp_path / "dumps").exists()


def test_sweep_json_format_emits_machine_summary(capsys, tmp_path):
    import json

    code, out, err = run_cli(
        capsys, "sweep", "--serial", "--scale", "0.25", "--sms", "1",
        "--benchmark", "vecadd", "--dir", str(tmp_path / "j"),
        "--store", str(tmp_path / "store"), "--format", "json")
    assert code == 0
    summary = json.loads(out)  # stdout is ONLY the summary document
    assert summary["v"] == 1 and summary["ok"] is True
    assert summary["counts"]["total"] == 3
    assert summary["store"]["puts"] == 3
    assert all(c["stats_sha256"].startswith("sha256:")
               for c in summary["cells"] if c["ok"])
    assert "sweep directory" in err  # human chatter moved to stderr


def test_sweep_store_makes_rerun_cache_reads(capsys, tmp_path):
    import json

    run_cli(capsys, "sweep", "--serial", "--scale", "0.25", "--sms", "1",
            "--benchmark", "vecadd", "--dir", str(tmp_path / "j1"),
            "--store", str(tmp_path / "store"))
    code, out, _err = run_cli(
        capsys, "sweep", "--serial", "--scale", "0.25", "--sms", "1",
        "--benchmark", "vecadd", "--dir", str(tmp_path / "j2"),
        "--store", str(tmp_path / "store"), "--format", "json")
    assert code == 0
    summary = json.loads(out)
    assert summary["counts"]["cached"] == 3
    assert summary["store"]["hits"] == 3 and summary["store"]["puts"] == 0


def test_doctor_store_audit_verdict(capsys, tmp_path):
    code, out, _err = run_cli(
        capsys, "doctor", "--scale", "0.1", "--benchmark", "vecadd",
        "--store", str(tmp_path / "store"))
    assert code == 0
    assert "result store" in out and "entries verified" in out


def test_doctor_fails_on_sick_store(capsys, tmp_path):
    from repro.store import chaos
    from repro.store.cas import ResultStore

    store = ResultStore(tmp_path / "store")
    record = chaos.synthetic_record(3)
    from repro.analysis.journal import cell_fingerprint

    fp = cell_fingerprint(record.benchmark, record.config, 1.0, 3)
    store.put(fp, record)
    chaos.corrupt_entry(store, fp, seed=1)
    code, out, _err = run_cli(
        capsys, "doctor", "--scale", "0.1", "--benchmark", "vecadd",
        "--store", str(tmp_path / "store"))
    assert code == 1  # a quarantining audit is a failing doctor
    assert "quarantined" in out


def test_experiment_jobs_flag_parses():
    # (The jobs-mode wiring itself is covered by tests/test_orchestrator.py;
    # running a full experiment through workers is too slow for this suite.)
    args = build_parser().parse_args(["experiment", "e5", "--jobs", "4"])
    assert args.jobs == 4
    args = build_parser().parse_args(
        ["sweep", "--jobs", "3", "--wall-timeout", "60.5", "--retries", "2"])
    assert args.jobs == 3 and args.wall_timeout == 60.5 and args.retries == 2


# -- lint: the static kernel verifier ----------------------------------------


def test_lint_all_strict_clean(capsys):
    code, out, _err = run_cli(capsys, "lint", "--all", "--strict")
    assert code == 0
    assert "rule summary" in out
    assert "OK: no errors or warnings" in out


def test_lint_single_kernel(capsys):
    code, out, _err = run_cli(capsys, "lint", "reduction")
    assert code == 0
    assert "reduction" in out


def test_lint_all_and_name_conflict(capsys):
    code, _out, err = run_cli(capsys, "lint", "reduction", "--all")
    assert code == 2
    assert "not both" in err


def test_lint_unknown_benchmark(capsys):
    code, _out, err = run_cli(capsys, "lint", "nope")
    assert code == 2
    assert "unknown benchmark" in err


def test_lint_json_format(capsys):
    import json
    code, out, _err = run_cli(capsys, "lint", "nw", "--format", "json")
    assert code == 0
    reports = json.loads(out)
    assert [r["kernel"] for r in reports] == ["nw"]
    assert reports[0]["ok"] is True
    rules = {f["rule"] for f in reports[0]["findings"]}
    assert "uncoalesced-global" in rules  # nw's diagonal-wavefront walk


def test_lint_all_json_is_parseable(capsys):
    import json
    code, out, _err = run_cli(capsys, "lint", "--all", "--format", "json")
    assert code == 0
    reports = json.loads(out)
    assert len(reports) == 22
    assert all(r["ok"] for r in reports)


# -- predict: the static performance oracle -----------------------------------


def test_predict_table(capsys):
    code, out, _err = run_cli(capsys, "predict", "vecadd")
    assert code == 0
    assert "static performance predictions" in out
    assert "vecadd" in out and "baseline" in out and "vt" in out


def test_predict_json(capsys):
    import json
    code, out, _err = run_cli(capsys, "predict", "vecadd", "--format", "json")
    assert code == 0
    preds = json.loads(out)
    assert {p["arch"] for p in preds} == {"baseline", "vt"}
    assert all(p["kernel"] == "vecadd" for p in preds)
    assert all(p["idle_class"] in ("mem", "struct", "alu") for p in preds)


def test_predict_all_and_name_conflict(capsys):
    code, _out, err = run_cli(capsys, "predict", "vecadd", "--all")
    assert code == 2
    assert "not both" in err


def test_predict_unknown_benchmark(capsys):
    code, _out, err = run_cli(capsys, "predict", "nope")
    assert code == 2
    assert "unknown benchmark" in err


def _fake_x4(cells, disagreements, failures):
    def fake(cfg=None, scale=1.0, keep_going=True, jobs=None, sweep_dir=None):
        return "fake X4 report", {"cells": cells,
                                  "disagreements": disagreements,
                                  "failures": failures,
                                  "records": {}, "predictions": {}}
    return fake


CELL = {"predicted_idle": "mem", "measured_idle": "mem", "tie_ratio": 1.0,
        "idle_ok": True, "limiter_ok": True, "binding": "exposed-latency",
        "predicted_tier": "high", "measured_tier": "high"}


def test_predict_check_gate_passes(capsys, monkeypatch):
    import repro.analysis.experiments as ex
    monkeypatch.setattr(ex, "x4_prediction_table",
                        _fake_x4({("vecadd", "baseline"): CELL}, [], {}))
    code, out, _err = run_cli(capsys, "predict", "--all", "--check")
    assert code == 0
    assert "OK: static oracle agrees" in out


def test_predict_check_gate_fails_on_disagreement(capsys, monkeypatch):
    import repro.analysis.experiments as ex
    monkeypatch.setattr(ex, "x4_prediction_table",
                        _fake_x4({("vecadd", "vt"): CELL},
                                 [("vecadd", "vt")], {}))
    code, out, _err = run_cli(capsys, "predict", "--all", "--check")
    assert code == 1
    assert "OK" not in out


def test_predict_check_single_bench_filters_other_cells(capsys, monkeypatch):
    # Gating one benchmark must ignore another kernel's disagreement.
    import json

    import repro.analysis.experiments as ex
    monkeypatch.setattr(
        ex, "x4_prediction_table",
        _fake_x4({("stride", "baseline"): CELL, ("vecadd", "vt"): CELL},
                 [("vecadd", "vt")], {}))
    code, out, _err = run_cli(capsys, "predict", "stride", "--check",
                              "--format", "json")
    assert code == 0
    payload = json.loads(out)
    assert set(payload["cells"]) == {"stride/baseline"}
    assert payload["disagreements"] == []


def test_predict_check_simulation_failure_is_fatal(capsys, monkeypatch):
    import repro.analysis.experiments as ex
    monkeypatch.setattr(
        ex, "x4_prediction_table",
        _fake_x4({}, [], {("vecadd", "vt"): object()}))
    code, _out, err = run_cli(capsys, "predict", "--all", "--check")
    assert code == 1
    assert "simulation failures" in err


def test_experiment_e11_liveness_flag(capsys):
    code, out, _err = run_cli(capsys, "experiment", "e11", "--liveness")
    assert code == 0
    assert "liveness-compressed" in out
