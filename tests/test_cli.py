"""CLI commands (invoked in-process via repro.cli.main)."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_list(capsys):
    code, out, _err = run_cli(capsys, "list")
    assert code == 0
    assert "bfs" in out and "mm_tiled" in out
    assert "scheduling" in out and "capacity" in out


def test_run(capsys):
    code, out, _err = run_cli(capsys, "run", "vecadd", "--scale", "0.25", "--sms", "1")
    assert code == 0
    assert "IPC" in out and "vecadd" in out


def test_run_with_arch_and_scheduler(capsys):
    code, out, _err = run_cli(capsys, "run", "stride", "--arch", "vt",
                              "--scale", "0.25", "--sms", "1", "--scheduler", "lrr")
    assert code == 0
    assert "swaps" in out


def test_compare(capsys):
    code, out, _err = run_cli(capsys, "compare", "stride", "--scale", "0.5", "--sms", "1")
    assert code == 0
    for arch in ("baseline", "vt", "ideal-sched"):
        assert arch in out
    assert "speedup" in out


def test_occupancy(capsys):
    code, out, _err = run_cli(capsys, "occupancy", "stride")
    assert code == 0
    assert "unbounded" in out  # no shared memory
    assert "headroom" in out


def test_disasm(capsys):
    code, out, _err = run_cli(capsys, "disasm", "vecadd")
    assert code == 0
    assert ".kernel vecadd" in out
    assert "LDG" in out


def test_profile(capsys):
    code, out, _err = run_cli(capsys, "profile", "reduction")
    assert code == 0
    assert "barriers" in out and "arithmetic intensity" in out


def test_experiment_static(capsys):
    code, out, _err = run_cli(capsys, "experiment", "e11")
    assert code == 0
    assert "backup SRAM" in out


def test_experiment_unknown(capsys):
    code, _out, err = run_cli(capsys, "experiment", "E99")
    assert code == 2
    assert "unknown experiment" in err


def test_unknown_benchmark(capsys):
    code, _out, err = run_cli(capsys, "run", "nope", "--scale", "0.25")
    assert code == 2
    assert "unknown benchmark" in err


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
