"""SIMT stack semantics: divergence, reconvergence, exit, partial warps."""

import numpy as np
import pytest

from repro.isa.cfg import EXIT_PC
from repro.sim.warp import FULL_MASK, Warp, array_to_mask, mask_to_array


class _FakeCTA:
    cta_id = 0


def make_warp(live_lanes=32, regs=8):
    return Warp(_FakeCTA(), local_wid=0, regs_per_thread=regs, live_lanes=live_lanes, warp_size=32)


def test_mask_array_roundtrip_examples():
    for mask in (0, 1, 0xFFFF_FFFF, 0x8000_0001, 0x0F0F_0F0F):
        assert array_to_mask(mask_to_array(mask)) == mask


def test_initial_state():
    w = make_warp()
    assert w.pc == 0
    assert w.active_mask() == FULL_MASK
    assert not w.finished


def test_partial_warp_masks_dead_lanes():
    w = make_warp(live_lanes=20)
    assert w.active_mask() == (1 << 20) - 1
    assert mask_to_array(w.active_mask()).sum() == 20


def test_advance_increments_pc():
    w = make_warp()
    w.advance()
    assert w.pc == 1


def test_uniform_branch():
    w = make_warp()
    w.branch_uniform(7)
    assert w.pc == 7
    assert w.active_mask() == FULL_MASK


def test_divergence_runs_taken_side_first_then_reconverges():
    w = make_warp()
    taken = 0x0000_FFFF
    w.branch_divergent(taken, target=10, reconv_pc=20)
    # Taken side on top.
    assert w.pc == 10
    assert w.active_mask() == taken
    # Taken side reaches the reconvergence point -> falls to the other side.
    w.branch_uniform(20)
    assert w.pc == 1  # fall-through pc was 0 + 1
    assert w.active_mask() == FULL_MASK & ~taken
    # Fall side reaches reconvergence -> merged.
    w.branch_uniform(20)
    assert w.pc == 20
    assert w.active_mask() == FULL_MASK


def test_nested_divergence():
    w = make_warp()
    w.branch_divergent(0x0000_FFFF, target=5, reconv_pc=30)  # outer
    w.branch_divergent(0x0000_00FF, target=8, reconv_pc=15)  # inner on taken side
    assert w.pc == 8
    assert w.active_mask() == 0x0000_00FF
    w.branch_uniform(15)  # inner taken reaches inner reconv
    assert w.active_mask() == 0x0000_FF00
    w.branch_uniform(15)  # inner fall reaches inner reconv -> merged inner
    assert w.pc == 15
    assert w.active_mask() == 0x0000_FFFF
    w.branch_uniform(30)  # outer taken reaches outer reconv
    assert w.active_mask() == 0xFFFF_0000
    w.branch_uniform(30)
    assert w.active_mask() == FULL_MASK
    assert w.pc == 30


def test_exit_all_lanes_finishes_warp():
    w = make_warp()
    w.do_exit()
    assert w.finished


def test_exit_on_divergent_path_continues_other_side():
    w = make_warp()
    w.branch_divergent(0x0000_FFFF, target=5, reconv_pc=EXIT_PC)
    w.do_exit()  # taken side exits
    assert not w.finished
    assert w.active_mask() == 0xFFFF_0000
    assert w.pc == 1  # fall-through side
    w.do_exit()
    assert w.finished


def test_one_sided_divergence_taken_empty_is_callers_job():
    # branch_divergent is only called with both sides non-empty; the
    # executor routes one-sided branches to branch_uniform/advance.
    w = make_warp()
    w.branch_divergent(0x1, target=4, reconv_pc=9)
    assert w.pc == 4
    assert w.active_mask() == 0x1


def test_sched_state_snapshot_captures_stack():
    w = make_warp()
    w.branch_divergent(0xFF, target=3, reconv_pc=9)
    snap = w.sched_state_snapshot()
    stack, exited, at_barrier = snap
    assert len(stack) == 3
    assert exited == 0
    assert at_barrier is False
    # Snapshot is a value copy: mutating the warp does not alter it.
    w.branch_uniform(9)
    assert len(w.sched_state_snapshot()[0]) == 2
    assert len(stack) == 3


def test_registers_shape_and_dtype():
    w = make_warp(regs=12)
    assert w.regs.shape == (12, 32)
    assert w.regs.dtype == np.float64


def test_active_lanes_bool_array():
    w = make_warp(live_lanes=3)
    lanes = w.active_lanes()
    assert lanes.dtype == bool
    assert list(np.flatnonzero(lanes)) == [0, 1, 2]
