"""GPUConfig: defaults, validation, derived helpers, presets."""

import pytest

from repro.isa.opcodes import OpClass
from repro.sim.config import ArchMode, GPUConfig, fermi_config, scaled_fermi


def test_defaults_are_fermi_class():
    cfg = GPUConfig()
    assert cfg.max_warps_per_sm == 48
    assert cfg.max_ctas_per_sm == 8
    assert cfg.registers_per_sm == 32768
    assert cfg.smem_per_sm == 49152
    cfg.validate()


def test_with_returns_modified_copy():
    cfg = GPUConfig()
    other = cfg.with_(num_sms=4)
    assert other.num_sms == 4
    assert cfg.num_sms != 4 or cfg is not other
    assert other is not cfg


def test_latency_for_all_classes():
    cfg = GPUConfig()
    for op_class in (OpClass.ALU, OpClass.MUL, OpClass.FPU, OpClass.SFU, OpClass.CTRL):
        assert cfg.latency_for(op_class) >= 1


def test_swap_cycles_scale_with_warps():
    cfg = GPUConfig()
    save2, restore2 = cfg.vt_swap_cycles_for(2)
    save8, restore8 = cfg.vt_swap_cycles_for(8)
    assert save8 > save2
    assert restore8 > restore2
    assert save2 == cfg.vt_swap_out_base + 2 * cfg.vt_swap_out_per_warp


@pytest.mark.parametrize("overrides,fragment", [
    (dict(warp_size=0), "warp_size"),
    (dict(warp_size=64), "warp_size"),
    (dict(num_sms=0), "SM"),
    (dict(max_ctas_per_sm=0), "scheduling"),
    (dict(line_bytes=100), "line size"),
    (dict(arch="bogus"), "arch"),
    (dict(vt_trigger_policy="bogus"), "trigger"),
    (dict(vt_select_policy="bogus"), "select"),
])
def test_validation_rejects(overrides, fragment):
    with pytest.raises(ValueError, match=fragment):
        GPUConfig().with_(**overrides).validate()


def test_arch_modes():
    assert set(ArchMode.ALL) == {"baseline", "vt", "ideal-sched"}
    for arch in ArchMode.ALL:
        GPUConfig().with_(arch=arch).validate()


def test_fermi_preset():
    cfg = fermi_config()
    assert cfg.num_sms == 15
    assert cfg.dram_channels == 6
    assert cfg.l2_size == 786432
    cfg.validate()


def test_scaled_fermi_preserves_per_sm_params():
    cfg = scaled_fermi(num_sms=2)
    full = fermi_config()
    assert cfg.max_warps_per_sm == full.max_warps_per_sm
    assert cfg.registers_per_sm == full.registers_per_sm
    assert cfg.dram_channels < full.dram_channels
    assert cfg.l2_size < full.l2_size
    cfg.validate()


def test_scaled_fermi_overrides_apply():
    cfg = scaled_fermi(num_sms=1, arch="vt", dram_latency=999)
    assert cfg.arch == "vt"
    assert cfg.dram_latency == 999
