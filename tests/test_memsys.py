"""DRAM, interconnect, and the composed chip-level memory model."""

from repro.sim.config import GPUConfig
from repro.sim.dram import DramModel
from repro.sim.icnt import Link
from repro.sim.memsys import MemoryModel


def cfg(**over):
    return GPUConfig().with_(**over)


# -- DRAM -------------------------------------------------------------------

def test_dram_latency_unloaded():
    d = DramModel(cfg(dram_channels=2, dram_latency=400, dram_service_cycles=8))
    assert d.access(0, earliest=0) == 400


def test_dram_queueing_same_channel():
    c = cfg(dram_channels=2, dram_latency=400, dram_service_cycles=8)
    d = DramModel(c)
    first = d.access(0, earliest=0)
    # Same channel (line 0 and line 2*128 both map to channel 0 of 2).
    second = d.access(2 * 128, earliest=0)
    assert second == first + 8  # queued behind the first transfer


def test_dram_channels_independent():
    c = cfg(dram_channels=2, dram_latency=400, dram_service_cycles=8)
    d = DramModel(c)
    first = d.access(0, earliest=0)
    other_channel = d.access(128, earliest=0)
    assert other_channel == first  # no queueing across channels


def test_dram_utilization():
    c = cfg(dram_channels=1, dram_latency=10, dram_service_cycles=4)
    d = DramModel(c)
    d.access(0, 0)
    d.access(0, 0)
    assert d.requests == 2
    assert d.utilization(total_cycles=16) == 0.5


# -- interconnect ------------------------------------------------------------

def test_link_latency():
    link = Link(latency=24, service_cycles=1)
    assert link.traverse(0) == 24


def test_link_serializes():
    link = Link(latency=24, service_cycles=2)
    assert link.traverse(0) == 24
    assert link.traverse(0) == 26  # injected 2 cycles later
    assert link.packets == 2


# -- composed model ----------------------------------------------------------

def test_memsys_l2_hit_path_faster_than_miss():
    c = cfg()
    m = MemoryModel(c)
    miss = m.read(0, now=0)
    # Wait until the L2 fill landed, then re-read: must be an L2 hit.
    hit = m.read(0, now=miss + 10)
    assert hit - (miss + 10) < miss
    assert m.l2_hits == 1
    assert m.dram_requests == 1


def test_memsys_l2_pending_merge():
    c = cfg()
    m = MemoryModel(c)
    first = m.read(0, now=0)
    merged = m.read(0, now=1)
    assert m.dram_requests == 1  # merged at the L2 MSHRs
    assert merged >= first - 2  # rides the same fill (+response queueing)


def test_memsys_write_counts_as_l2_access():
    c = cfg()
    m = MemoryModel(c)
    m.write(0, now=0)
    assert m.l2_accesses == 1


def test_memsys_latency_composition_lower_bound():
    c = cfg()
    m = MemoryModel(c)
    completion = m.read(0, now=0)
    floor = 2 * c.icnt_latency + c.l2_hit_latency + c.dram_latency
    assert completion >= floor
