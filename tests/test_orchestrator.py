"""Process-isolated sweep orchestrator: worker determinism, wall-clock
kill, per-status retries, journal resume, quarantine, and graceful pool
degradation.

These tests spawn real worker subprocesses (multiprocessing *spawn*), so
each costs ~a second of interpreter start-up; cell counts are kept tiny.
"""

import pytest

from repro.analysis.journal import Journal
from repro.analysis.orchestrator import (
    RETRY_POLICY,
    SweepCell,
    matrix_cells,
    run_sweep,
)
from repro.analysis.runner import STATUSES, run_benchmark, run_matrix
from repro.kernels.registry import get
from repro.sim.config import scaled_fermi
from repro.sim.faults import FaultPlan


@pytest.fixture
def cfg():
    return scaled_fermi(num_sms=1)


def test_statuses_cover_orchestrator_outcomes():
    assert "wall-timeout" in STATUSES
    assert "worker-died" in STATUSES
    assert set(RETRY_POLICY) == set(STATUSES)
    assert not RETRY_POLICY["violation"]  # deterministic: never retried
    assert not RETRY_POLICY["deadlock"]
    assert RETRY_POLICY["timeout"]
    assert RETRY_POLICY["wall-timeout"]
    assert RETRY_POLICY["worker-died"]


def test_worker_run_matches_in_process_run(cfg):
    """Determinism across process boundaries: the property the resume
    fingerprint relies on.  The same (benchmark, config, scale) produces
    identical SimStats whether run here or in a spawned worker."""
    inproc = run_benchmark(get("vecadd"), cfg, scale=0.25)
    result = run_sweep([SweepCell("vecadd", cfg, scale=0.25)], jobs=1)
    record = result.records[("vecadd", "baseline")]
    assert record.ok
    assert record.cycles == inproc.cycles
    assert record.ipc == inproc.ipc
    assert record.stats.l1_hit_rate == inproc.stats.l1_hit_rate
    assert record.stats.l2_hits == inproc.stats.l2_hits
    assert record.stats.dram_requests == inproc.stats.dram_requests
    assert record.stats.to_dict() == inproc.stats.to_dict()


def test_stalled_warp_is_wall_clock_killed_and_retried(cfg):
    """A cell the in-sim detectors cannot bound (watchdog off, huge cycle
    budget) is killed at its wall-clock deadline and retried with a
    doubled wall budget before failing terminally."""
    plan = FaultPlan(stall_warp=(0, 0, 0), stall_at_cycle=50)
    cell = SweepCell(
        "vecadd",
        cfg.with_(progress_window=0, max_cycles=500_000_000),
        scale=0.25, faults=plan)
    result = run_sweep([cell], jobs=1, wall_timeout=1.5, retries=1,
                       backoff_base=0.0)
    record = result.records[cell.key]
    assert record.status == "wall-timeout"
    assert record.retried
    assert result.attempts[cell.key] == 2
    assert "wall-clock deadline" in record.error


def test_worker_death_retried_in_fresh_process(cfg):
    cell = SweepCell("vecadd", cfg, scale=0.25, die_on_attempts=(1,))
    result = run_sweep([cell], jobs=1, retries=1, backoff_base=0.0)
    record = result.records[cell.key]
    assert record.ok
    assert record.retried
    assert result.attempts[cell.key] == 2


def test_terminal_error_not_retried(cfg):
    cell = SweepCell("no-such-benchmark", cfg, scale=0.25)
    result = run_sweep([cell], jobs=1, retries=3, backoff_base=0.0)
    record = result.records[cell.key]
    assert record.status == "error"
    assert result.attempts[cell.key] == 1  # errors are deterministic


def test_pool_degrades_to_serial_when_workers_keep_dying(cfg):
    """Repeated worker deaths shrink the pool and finally fall back to the
    in-process serial path instead of aborting the sweep."""
    always = tuple(range(1, 20))
    cells = [SweepCell("vecadd", cfg, scale=0.25, die_on_attempts=always),
             SweepCell("saxpy", cfg, scale=0.25, die_on_attempts=always)]
    result = run_sweep(cells, jobs=2, retries=3, backoff_base=0.0)
    assert result.degraded_to_serial
    assert result.ok  # the fallback completed every cell in-process
    assert result.records[("vecadd", "baseline")].cycles > 0


def test_duplicate_cells_rejected(cfg):
    cell = SweepCell("vecadd", cfg, scale=0.25)
    dupe = SweepCell("vecadd", cfg, scale=0.25, key=("other", "key"))
    with pytest.raises(ValueError, match="duplicate sweep cell"):
        run_sweep([cell, dupe], jobs=0)


def test_resume_skips_completed_cells(cfg, tmp_path):
    """A journaled sweep interrupted partway re-runs only what is missing,
    and the resumed cells' stats are byte-identical to the first run."""
    benches = [get("vecadd"), get("saxpy")]
    first = run_sweep(matrix_cells(benches[:1], ["baseline", "vt"], cfg, 0.25),
                      jobs=0, journal_dir=tmp_path)
    assert first.ok and not first.resumed
    # "Crash": a second sweep over a superset of the matrix resumes.
    full = matrix_cells(benches, ["baseline", "vt"], cfg, 0.25)
    second = run_sweep(full, jobs=0, journal_dir=tmp_path, resume=True)
    assert sorted(second.resumed) == [("vecadd", "baseline"), ("vecadd", "vt")]
    assert second.ok
    for key, record in first.records.items():
        assert second.records[key].stats.to_dict() == record.stats.to_dict()


def test_resume_refuses_stale_fingerprints(cfg, tmp_path):
    """Changing any config knob changes the fingerprint, so old journal
    entries are not reused for the changed matrix."""
    cells = matrix_cells([get("vecadd")], ["baseline"], cfg, 0.25)
    run_sweep(cells, jobs=0, journal_dir=tmp_path)
    changed = matrix_cells([get("vecadd")], ["baseline"],
                           cfg.with_(dram_latency=600), 0.25)
    result = run_sweep(changed, jobs=0, journal_dir=tmp_path, resume=True)
    assert not result.resumed  # stale entry ignored, cell re-ran
    assert result.ok


def test_corrupted_journal_line_quarantined_on_resume(cfg, tmp_path):
    cells = matrix_cells([get("vecadd")], ["baseline", "vt"], cfg, 0.25)
    run_sweep(cells, jobs=0, journal_dir=tmp_path)
    journal_path = tmp_path / "journal.jsonl"
    with journal_path.open("a") as handle:
        handle.write('{"fingerprint": "torn-by-sigkill", "status"')
    result = run_sweep(cells, jobs=0, journal_dir=tmp_path, resume=True)
    assert result.quarantined_lines == 1
    assert len(result.resumed) == 2  # intact entries still resumed
    assert (tmp_path / "journal.jsonl.quarantine").exists()


def test_run_matrix_journal_mode(cfg, tmp_path):
    """run_matrix's journal/parallel mode returns the same shape as the
    serial keep_going path and is resumable."""
    benches = [get("vecadd")]
    records = run_matrix(benches, ["baseline", "vt"], cfg, scale=0.25,
                         keep_going=True, parallel=0, journal_dir=tmp_path)
    assert set(records) == {("vecadd", "baseline"), ("vecadd", "vt")}
    assert all(r.ok for r in records.values())
    again = run_matrix(benches, ["baseline", "vt"], cfg, scale=0.25,
                       parallel=0, journal_dir=tmp_path, resume=True)
    assert {k: r.cycles for k, r in again.items()} == \
        {k: r.cycles for k, r in records.items()}
    journal = Journal.open(tmp_path, resume=True)
    assert len(journal.entries) == 2


def test_failed_cells_are_journaled_with_dumps(cfg, tmp_path):
    """A terminally failing cell lands in the journal too (resume must not
    re-run it), with its forensic dump persisted under dumps/."""
    cell = SweepCell("vecadd", cfg, scale=0.25, max_cycles=100)
    result = run_sweep([cell], jobs=0, journal_dir=tmp_path)
    record = result.records[cell.key]
    assert record.status == "timeout"
    assert result.dump_paths[cell.key]
    assert (tmp_path / "dumps").exists()
    again = run_sweep([cell], jobs=0, journal_dir=tmp_path, resume=True)
    assert again.resumed == [cell.key]
    assert again.records[cell.key].status == "timeout"


def test_summary_table_marks_retries(cfg):
    cell = SweepCell("vecadd", cfg, scale=0.25, die_on_attempts=(1,))
    result = run_sweep([cell], jobs=1, retries=1, backoff_base=0.0)
    table = result.summary_table()
    assert "ok*" in table
    assert "completed only after a retry" in table
    counts = result.counts()
    assert counts["ok"] == 1 and counts["retried"] == 1


def test_e5_through_orchestrator_matches_serial(cfg):
    """The headline experiment produces identical numbers whether its
    matrix runs serially in-process or through isolated workers."""
    from repro.analysis.experiments import e5_speedup

    benches = [get("vecadd")]
    serial_report, serial = e5_speedup(cfg=cfg, scale=0.25, benches=benches)
    _report, par = e5_speedup(cfg=cfg, scale=0.25, benches=benches, jobs=2)
    assert par["vt"] == serial["vt"]
    assert par["ideal"] == serial["ideal"]
    assert par["geomean_vt"] == serial["geomean_vt"]
