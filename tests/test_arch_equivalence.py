"""Architectural equivalence: VT is a pure performance mechanism.

For every benchmark, the final global-memory image must be *identical*
(bit-for-bit) across baseline, VT and ideal-sched, and across repeated
runs (determinism).  This is the reproduction's strongest end-to-end
invariant: CTA virtualization and context switching may reorder execution
but can never change results.
"""

import numpy as np
import pytest

from repro.kernels import all_benchmarks
from repro.sim.config import scaled_fermi
from repro.sim.gpu import GPU

BENCHES = all_benchmarks()
SCALE = 0.25


def final_memory(bench, arch, num_sms=1):
    prep = bench.prepare(SCALE)
    gpu = GPU(scaled_fermi(num_sms=num_sms, arch=arch))
    result = gpu.launch(bench.kernel, prep.grid_dim, prep.gmem, prep.params)
    return result.gmem.data.copy(), result.stats.cycles


@pytest.mark.parametrize("bench", BENCHES, ids=lambda b: b.name)
def test_vt_memory_identical_to_baseline(bench):
    base_mem, _ = final_memory(bench, "baseline")
    vt_mem, _ = final_memory(bench, "vt")
    assert np.array_equal(base_mem, vt_mem), bench.name


@pytest.mark.parametrize("bench", BENCHES[:6], ids=lambda b: b.name)
def test_ideal_memory_identical_to_baseline(bench):
    base_mem, _ = final_memory(bench, "baseline")
    ideal_mem, _ = final_memory(bench, "ideal-sched")
    assert np.array_equal(base_mem, ideal_mem), bench.name


@pytest.mark.parametrize("bench", BENCHES[:6], ids=lambda b: b.name)
def test_runs_are_cycle_deterministic(bench):
    _mem1, cycles1 = final_memory(bench, "vt")
    _mem2, cycles2 = final_memory(bench, "vt")
    assert cycles1 == cycles2, bench.name


@pytest.mark.parametrize("bench", [BENCHES[1]], ids=lambda b: b.name)
def test_multi_sm_memory_matches_single_sm(bench):
    one, _ = final_memory(bench, "vt", num_sms=1)
    two, _ = final_memory(bench, "vt", num_sms=2)
    assert np.array_equal(one, two)
