"""Analysis helpers: tables, bars, geomean, runner."""

import pytest

from repro.analysis import ascii_bars, format_table, geomean, run_benchmark, run_matrix, speedup_summary
from repro.kernels import get
from repro.kernels.base import CheckFailure
from repro.sim.config import scaled_fermi


def test_format_table_alignment():
    text = format_table(("name", "value"), [("a", 1), ("longer", 2.5)], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[2]
    assert "longer" in lines[-1]
    assert "2.500" in text  # floats formatted


def test_format_table_empty_rows():
    text = format_table(("x",), [])
    assert "x" in text


def test_ascii_bars_reference_marker():
    text = ascii_bars([("a", 2.0), ("b", 0.5)], width=20, reference=1.0)
    assert "|" in text
    assert "a" in text and "b" in text


def test_ascii_bars_empty():
    assert ascii_bars([]) == "(no data)"


def test_geomean_basics():
    assert geomean([2.0, 8.0]) == pytest.approx(4.0)
    with pytest.raises(ValueError):
        geomean([])
    with pytest.raises(ValueError):
        geomean([1.0, 0.0])


def test_speedup_summary_mentions_extremes():
    text = speedup_summary({"fast": 2.0, "slow": 0.5})
    assert "fast" in text and "slow" in text and "geomean" in text
    assert speedup_summary({}) == "no data"


def test_run_benchmark_checks_output():
    record = run_benchmark(get("vecadd"), scaled_fermi(1), scale=0.25)
    assert record.cycles > 0
    assert record.arch == "baseline"
    assert record.ipc > 0


def test_run_matrix_covers_all_pairs():
    benches = [get("vecadd")]
    records = run_matrix(benches, ("baseline", "vt"), scaled_fermi(1), scale=0.25)
    assert set(records) == {("vecadd", "baseline"), ("vecadd", "vt")}
    assert records[("vecadd", "vt")].arch == "vt"
