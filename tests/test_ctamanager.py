"""Baseline and ideal-sched CTA managers: admission and accounting."""

from repro.isa.kernel import KernelBuilder
from repro.sim.config import GPUConfig
from repro.sim.cta import CTA
from repro.sim.ctamanager import BaselineManager, IdealSchedManager, ResourceAccounting
from repro.sim.stats import SMStats


def make_kernel(threads=64, regs=16, smem=0):
    b = KernelBuilder("k", regs_per_thread=regs, smem_bytes=smem, cta_dim=(threads, 1, 1))
    b.exit()
    return b.build()


def make_cta(kernel, cta_id=0):
    return CTA(cta_id, (cta_id, 0, 0), kernel, (64, 1, 1), (), GPUConfig(), 0)


def fill(manager, kernel, now=0):
    count = 0
    while manager.can_accept(kernel):
        manager.on_assign(make_cta(kernel, count), now)
        count += 1
        assert count < 1000
    return count


def test_accounting_charge_release():
    acc = ResourceAccounting(GPUConfig())
    kernel = make_kernel(threads=64, regs=16, smem=512)
    acc.charge(kernel)
    assert acc.regs_used == 1024
    assert acc.smem_used == 512
    assert acc.warps_used == 2
    assert acc.threads_used == 64
    acc.release(make_cta(kernel))
    assert (acc.regs_used, acc.smem_used, acc.warps_used, acc.threads_used) == (0, 0, 0, 0)


def test_baseline_stops_at_cta_slots():
    manager = BaselineManager(GPUConfig(), SMStats())
    assert fill(manager, make_kernel(threads=64, regs=16)) == 8  # CTA slots


def test_baseline_stops_at_warp_slots():
    manager = BaselineManager(GPUConfig(), SMStats())
    # 512 threads = 16 warps/CTA -> 3 CTAs by warp slots.
    assert fill(manager, make_kernel(threads=512, regs=8)) == 3


def test_baseline_stops_at_registers():
    manager = BaselineManager(GPUConfig(), SMStats())
    assert fill(manager, make_kernel(threads=256, regs=40)) == 3


def test_baseline_stops_at_smem():
    manager = BaselineManager(GPUConfig(), SMStats())
    assert fill(manager, make_kernel(threads=64, regs=8, smem=16384)) == 3


def test_ideal_ignores_scheduling_limits():
    manager = IdealSchedManager(GPUConfig(), SMStats())
    # Scheduling-limited kernel: ideal admits to the register limit (32).
    assert fill(manager, make_kernel(threads=64, regs=16)) == 32


def test_ideal_still_respects_capacity():
    manager = IdealSchedManager(GPUConfig(), SMStats())
    assert fill(manager, make_kernel(threads=256, regs=40)) == 3


def test_finish_frees_resources():
    manager = BaselineManager(GPUConfig(), SMStats())
    kernel = make_kernel()
    fill(manager, kernel)
    assert not manager.can_accept(kernel)
    manager.on_cta_finish(manager.resident[0], now=100)
    assert manager.can_accept(kernel)
    assert manager.stats.ctas_completed == 1


def test_warp_counts():
    manager = BaselineManager(GPUConfig(), SMStats())
    kernel = make_kernel(threads=64)
    fill(manager, kernel)
    assert manager.resident_warp_count() == 16
    assert manager.schedulable_warp_count(0) == 16
    assert manager.active_cta_count == 8
    # Finished warps drop out of the counts.
    for w in manager.resident[0].warps:
        w.do_exit()
    assert manager.resident_warp_count() == 14
