"""Targeted timing-behaviour tests on the SM core with micro-kernels."""

import numpy as np
import pytest

from repro.isa.assembler import assemble
from repro.sim.config import scaled_fermi
from repro.sim.gpu import GPU
from repro.sim.memory import GlobalMemory


def launch(asm, grid=1, cfg=None, params=(), gmem_words=4096):
    kernel = assemble(asm)
    gmem = GlobalMemory(1 << 20)
    gmem.alloc("buf", gmem_words)
    cfg = cfg or scaled_fermi(num_sms=1)
    gpu = GPU(cfg)
    return gpu.launch(kernel, grid, gmem, params=(gmem.base("buf"),) + params)


def cycles_of(asm, **kw):
    return launch(asm, **kw).stats.cycles


def test_dependent_chain_pays_alu_latency():
    dependent = """
.kernel dep
.regs 4
.cta 32
    MOV  r0, #1
    IADD r1, r0, #1
    IADD r2, r1, #1
    IADD r3, r2, #1
    EXIT
"""
    independent = """
.kernel indep
.regs 4
.cta 32
    MOV  r0, #1
    MOV  r1, #1
    MOV  r2, #1
    MOV  r3, #1
    EXIT
"""
    assert cycles_of(dependent) > cycles_of(independent)


def test_sfu_ops_slower_than_fpu():
    sfu = """
.kernel sfu
.regs 4
.cta 32
    MOV   r0, #2.0
    FSQRT r1, r0
    FSQRT r2, r1
    FSQRT r3, r2
    EXIT
"""
    fpu = """
.kernel fpu
.regs 4
.cta 32
    MOV  r0, #2.0
    FADD r1, r0, r0
    FADD r2, r1, r1
    FADD r3, r2, r2
    EXIT
"""
    assert cycles_of(sfu) > cycles_of(fpu)


def test_bank_conflicts_cost_cycles():
    conflicted = """
.kernel conflict
.regs 6
.smem 8192
.cta 32
    S2R  r0, %tid_x
    SHL  r1, r0, #7          // tid * 32 words: every lane same bank
    I2F  r2, r0
    STS  [r1], r2
    LDS  r3, [r1]
    EXIT
"""
    clean = """
.kernel clean
.regs 6
.smem 8192
.cta 32
    S2R  r0, %tid_x
    SHL  r1, r0, #2          // tid * 1 word: one lane per bank
    I2F  r2, r0
    STS  [r1], r2
    LDS  r3, [r1]
    EXIT
"""
    assert cycles_of(conflicted) > cycles_of(clean)


def test_coalesced_faster_than_strided():
    coalesced = """
.kernel co
.regs 8
.cta 32
    S2R  r0, %tid_x
    SHL  r1, r0, #2
    S2R  r2, %param0
    IADD r1, r1, r2
    LDG  r3, [r1]
    IADD r4, r3, #0          // consume: wait for the data
    EXIT
"""
    strided = """
.kernel st
.regs 8
.cta 32
    S2R  r0, %tid_x
    SHL  r1, r0, #7          // 128-byte stride: one line per lane
    S2R  r2, %param0
    IADD r1, r1, r2
    LDG  r3, [r1]
    IADD r4, r3, #0          // consume: wait for the data
    EXIT
"""
    fast = launch(coalesced)
    slow = launch(strided, gmem_words=2048)
    assert slow.stats.cycles > fast.stats.cycles
    fast_txn = sum(s.global_transactions for s in fast.stats.sm_stats)
    slow_txn = sum(s.global_transactions for s in slow.stats.sm_stats)
    assert fast_txn == 1
    assert slow_txn == 32


def test_l1_hit_faster_than_miss():
    reload_same = """
.kernel hit
.regs 8
.cta 32
    S2R  r0, %param0
    LDG  r1, [r0]
    IADD r2, r1, #0
    LDG  r3, [r0]            // same line: L1 hit after the fill
    IADD r4, r3, #0
    EXIT
"""
    result = launch(reload_same)
    assert result.stats.l1_hit_rate > 0.0


def test_barrier_convoy_classified():
    asm = """
.kernel barry
.regs 6
.smem 128
.cta 64
    S2R  r0, %tid_x
    SETP.EQ r1, r0, #0
    S2R  r2, %param0
@r1 LDG  r3, [r2]            // warp 0 waits on memory; warp 1 at the bar
    IADD r4, r3, #0
    BAR
    EXIT
"""
    result = launch(asm)
    sm = result.stats.sm_stats[0]
    assert sm.idle_cycles_mem + sm.idle_cycles_barrier > 0


def test_ipc_bounded_by_issue_width():
    asm = """
.kernel busy
.regs 6
.cta 256
    MOV  r0, #0
    MOV  r1, #0
    MOV  r2, #0
    MOV  r3, #0
    MOV  r4, #0
    MOV  r5, #0
    EXIT
"""
    cfg = scaled_fermi(num_sms=1)
    result = launch(asm, grid=6, cfg=cfg)
    assert result.stats.ipc <= cfg.num_warp_schedulers + 1e-9


def test_more_parallelism_hides_memory_latency():
    asm = """
.kernel lat
.regs 8
.cta 32
    S2R  r0, %ctaid_x
    S2R  r1, %tid_x
    IMAD r2, r0, #32, r1
    SHL  r2, r2, #2
    S2R  r3, %param0
    IADD r2, r2, r3
    LDG  r4, [r2]
    FADD r5, r4, #1.0
    EXIT
"""
    one = launch(asm, grid=1, gmem_words=8192).stats.cycles
    eight = launch(asm, grid=8, gmem_words=8192).stats.cycles
    # 8x the work at far less than 8x the time: latency overlapped.
    assert eight < one * 3
