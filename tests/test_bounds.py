"""Sound static cycle bounds: trip resolvers, edge cases, soundness, and
the co-residency composer."""

import pytest

from repro.analysis.runner import run_benchmark
from repro.isa.analysis.bounds import (DATA_TRIP_CAPS, UnboundedLoop,
                                       bench_bounds, gate_configs,
                                       kernel_bounds, trip_bounds)
from repro.isa.analysis.compose import (kernel_footprint, pair_matrix,
                                        pair_verdict)
from repro.isa.analysis.interval import interval_solution
from repro.isa.analysis.perf import layout_for
from repro.isa.assembler import assemble
from repro.kernels.registry import get
from repro.sim.config import scaled_fermi
from repro.sim.gpu import GPU
from repro.sim.memory import GlobalMemory


def trips_of(text, param_values=None):
    kernel = assemble(text)
    analysis, ienvs = interval_solution(kernel)
    return trip_bounds(kernel, analysis, ienvs, param_values)


def simulate(kernel, params=(), ctas=1, gmem_bytes=65536):
    cfg = scaled_fermi(num_sms=1)
    result = GPU(cfg).launch(kernel, (ctas, 1, 1), GlobalMemory(gmem_bytes),
                             params)
    return cfg, result.stats.cycles


# ---------------------------------------------------------------------------
# trip resolvers
# ---------------------------------------------------------------------------


COUNTED = """
.kernel counted
.regs 8
.cta 32
    MOV r1, #0
loop:
    IADD r1, r1, #1
    SETP.LT r2, r1, #7
@r2 BRA loop
    EXIT
"""

GEOMETRIC = """
.kernel geometric
.regs 8
.cta 32
    MOV r1, #1
loop:
    SHL r1, r1, #1
    SETP.LT r2, r1, #64
@r2 BRA loop
    EXIT
"""


def test_additive_counted_loop_is_exact():
    (bound,) = trips_of(COUNTED).values()
    assert (bound.lo, bound.hi, bound.exact) == (7, 7, True)
    assert bound.source == "additive"


def test_geometric_loop_is_exact():
    (bound,) = trips_of(GEOMETRIC).values()
    assert (bound.lo, bound.hi, bound.exact) == (6, 6, True)
    assert bound.source == "geometric"


def test_unresolvable_loop_raises_not_silently_bounds():
    # Bound loaded from memory, no workload cap declared for this name.
    text = """
.kernel datadep
.regs 8
.cta 32
    MOV r1, #0
    LDG r3, [r1]
loop:
    IADD r1, r1, #1
    SETP.LT r2, r1, r3
@r2 BRA loop
    EXIT
"""
    with pytest.raises(UnboundedLoop):
        trips_of(text)


@pytest.mark.parametrize("bench,expected", [
    ("scan", (7, 7, "geometric")),
    ("reduction", (7, 7, "geometric")),
    ("backprop", (4, 4, "geometric")),
    ("btree", (14, 15, "bracket")),
    ("bfs", (1, 12, "workload-cap")),
    ("spmv", (1, 16, "workload-cap")),
])
def test_registry_trip_bounds(bench, expected):
    b = get(bench)
    layout = layout_for(b)
    analysis, ienvs = interval_solution(b.kernel)
    trips = trip_bounds(b.kernel, analysis, ienvs, layout.param_values)
    lo, hi, source = expected
    assert any((t.lo, t.hi, t.source) == (lo, hi, source)
               for t in trips.values()), sorted(trips.values(),
                                                key=lambda t: t.pc)


def test_workload_caps_are_documented():
    for name, (lo, hi, why) in DATA_TRIP_CAPS.items():
        assert 1 <= lo <= hi
        assert why  # the justification string is part of the contract


def test_param_bound_loop_resolves_with_launch_values():
    text = """
.kernel parambound
.regs 8
.cta 32
    MOV r1, #0
    S2R r3, %param0
loop:
    IADD r1, r1, #1
    SETP.LT r2, r1, r3
@r2 BRA loop
    EXIT
"""
    (bound,) = trips_of(text, {0: 5}).values()
    assert (bound.lo, bound.hi) == (5, 5)
    with pytest.raises(UnboundedLoop):
        trips_of(text)  # without the launch value the bound is unknown


# ---------------------------------------------------------------------------
# edge cases: zero-trip loops, predicated-off paths, SFU saturation
# ---------------------------------------------------------------------------


GUARDED = """
.kernel guarded
.regs 8
.cta 32
    S2R r0, %tid_x
    SHL r4, r0, #2
    S2R r1, %param0
    SETP.LE r2, r1, #0
@r2 BRA end
    MOV r3, #0
loop:
    LDG r5, [r4]
    IADD r5, r5, #1
    STG [r4], r5
    IADD r3, r3, #1
    SETP.LT r2, r3, r1
@r2 BRA loop
end:
    EXIT
"""


@pytest.mark.parametrize("n", [0, 5])
def test_zero_trip_guarded_loop_soundness(n):
    # The forward guard can skip the loop entirely (n = 0): the loop body
    # must not inflate the lower bound, and both executions must land
    # inside the interval derived with the matching launch value.
    kernel = assemble(GUARDED)
    cfg, cycles = simulate(kernel, params=(float(n),), ctas=2)
    kb = kernel_bounds(kernel, cfg, mode="baseline", ctas=2,
                       param_values={0: n})
    assert kb.contains(cycles), (kb.lo, cycles, kb.hi)
    assert kb.lo >= 1 and kb.hi >= kb.lo


def test_zero_trip_lower_bound_excludes_loop_body():
    kernel = assemble(GUARDED)
    cfg = scaled_fermi(num_sms=1)
    kb0 = kernel_bounds(kernel, cfg, mode="baseline", ctas=1,
                        param_values={0: 0})
    kb9 = kernel_bounds(kernel, cfg, mode="baseline", ctas=1,
                        param_values={0: 9})
    # The guard makes the body avoidable, so lo is identical; the upper
    # bound must still scale with the trip count.
    assert kb0.lo == kb9.lo
    assert kb9.hi > kb0.hi


PREDICATED_OFF = """
.kernel predoff
.regs 8
.cta 32
    S2R r0, %tid_x
    SHL r1, r0, #2
    SETP.LT r2, r0, #0
@r2 LDG r3, [r1]
@r2 STG [r1], r3
    EXIT
"""


def test_predicated_off_path_soundness():
    # A never-taken predicate still occupies issue slots but moves no
    # data; the bounds must cover the execution either way.
    kernel = assemble(PREDICATED_OFF)
    cfg, cycles = simulate(kernel)
    kb = kernel_bounds(kernel, cfg, mode="baseline", ctas=1)
    assert kb.contains(cycles), (kb.lo, cycles, kb.hi)
    # Predicated accesses contribute zero transactions to the floor.
    assert kb.floors["ldst-port"] == 0


SFU_HEAVY = """
.kernel sfuheavy
.regs 8
.cta 256
    S2R r0, %tid_x
    FSQRT r1, r0
    FSQRT r2, r1
    FSQRT r3, r2
    FSQRT r4, r3
    FSQRT r5, r4
    FSQRT r6, r5
    EXIT
"""


def test_sfu_queue_saturation_floor():
    # Six SFU ops per warp across 8 warps serialize on the SFU issue
    # interval: the sfu-port floor must bind the lower bound and the
    # simulated cycle count must respect the interval.
    kernel = assemble(SFU_HEAVY)
    cfg, cycles = simulate(kernel)
    kb = kernel_bounds(kernel, cfg, mode="baseline", ctas=1)
    assert "sfu-port" in kb.floors
    assert kb.floors["sfu-port"] > kb.floors["issue"]
    assert kb.contains(cycles), (kb.lo, cycles, kb.hi)


# ---------------------------------------------------------------------------
# registry soundness spot checks (the full matrix runs in CI: repro bound)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("bench", ["saxpy", "scan", "bfs"])
@pytest.mark.parametrize("mode", ["baseline", "vt"])
def test_registry_bounds_contain_simulation(bench, mode):
    b = get(bench)
    cfg = scaled_fermi(num_sms=2)
    kb = bench_bounds(b, cfg, mode=mode, scale=0.25, arch="fermi-sm2")
    record = run_benchmark(b, cfg.with_(arch=mode), scale=0.25)
    assert kb.contains(record.stats.cycles), \
        (kb.lo, record.stats.cycles, kb.hi)
    assert kb.lo > 1  # never the trivial [<=1, ...] interval
    assert kb.tightness >= 1.0


def test_gate_configs_cover_three_arches():
    configs = gate_configs()
    assert set(configs) == {"fermi-sm2", "kepler-sm2", "fermi-sm1"}
    assert gate_configs(1).keys() == {"fermi-sm1"}


def test_vt_bound_adds_swap_bucket():
    b = get("saxpy")
    cfg = scaled_fermi(num_sms=2)
    base = bench_bounds(b, cfg, mode="baseline", scale=0.25)
    vt = bench_bounds(b, cfg, mode="vt", scale=0.25)
    assert "vt-swap" in vt.buckets and "vt-swap" not in base.buckets
    assert vt.hi > base.hi


def test_bound_to_dict_schema():
    kb = bench_bounds(get("saxpy"), scaled_fermi(num_sms=2),
                      mode="baseline", scale=0.25, arch="fermi-sm2")
    d = kb.to_dict()
    assert set(d) == {"kernel", "arch", "mode", "lo", "hi", "tightness",
                      "ctas", "warps", "floors", "buckets", "trips"}
    assert d["arch"] == "fermi-sm2" and d["lo"] <= d["hi"]


# ---------------------------------------------------------------------------
# co-residency composer
# ---------------------------------------------------------------------------


def test_pair_matrix_is_deterministic():
    benches = [get(n) for n in ("saxpy", "vecadd", "hotspot")]
    cfg = scaled_fermi(num_sms=2)
    first = [v.to_dict() for v in
             pair_matrix(benches, cfg, scale=0.25, arch="fermi-sm2")]
    second = [v.to_dict() for v in
              pair_matrix(benches, cfg, scale=0.25, arch="fermi-sm2")]
    assert first == second
    # Unordered pairs with self-pairs: n * (n + 1) / 2.
    assert len(first) == 6


def test_pair_verdicts_are_sane():
    benches = [get(n) for n in ("saxpy", "vecadd")]
    cfg = scaled_fermi(num_sms=2)
    for v in pair_matrix(benches, cfg, scale=0.25, arch="fermi-sm2"):
        assert v.verdict in ("admit", "degrade", "deny")
        if v.verdict != "deny":
            assert v.ctas_a >= 1 and v.ctas_b >= 1
            for lo, hi in (v.slowdown_a, v.slowdown_b):
                assert lo == 1.0 and hi >= lo


def test_deny_on_synthetic_tiny_sm():
    # A config whose SM cannot host one CTA of each kernel at once must
    # deny, naming the exhausted capacity.
    cfg = scaled_fermi(num_sms=1).with_(max_threads_per_sm=300)
    fa = kernel_footprint(get("mm_tiled"), cfg, scale=0.25, arch="tiny")
    fb = kernel_footprint(get("histogram"), cfg, scale=0.25, arch="tiny")
    assert fa.threads_per_cta + fb.threads_per_cta > 300
    v = pair_verdict(fa, fb, cfg)
    assert v.verdict == "deny"
    assert "thread-slots" in v.reasons
    assert v.ctas_a == 0 and v.ctas_b == 0
    assert v.slowdown_a[1] == float("inf")


def test_footprint_schema_and_bandwidth_class():
    f = kernel_footprint(get("saxpy"), scaled_fermi(num_sms=2),
                         scale=0.25, arch="fermi-sm2")
    d = f.to_dict()
    assert d["bandwidth_class"] in ("dram", "mixed", "compute")
    assert 0.0 <= d["mem_fraction"] <= 1.0
    assert d["bound"]["lo"] <= d["bound"]["hi"]


def test_x6_registered():
    from repro.analysis.experiments import ALL_EXPERIMENTS

    assert "X6" in ALL_EXPERIMENTS
