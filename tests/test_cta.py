"""CTA state: special registers, barrier protocol, VT readiness."""

import numpy as np
import pytest

from repro.isa.instruction import SpecialReg
from repro.isa.kernel import KernelBuilder
from repro.sim.config import GPUConfig
from repro.sim.cta import CTA, CTAState


def make_kernel(threads=64, regs=8, smem=128, dims=None):
    cta_dim = dims or (threads, 1, 1)
    b = KernelBuilder("k", regs_per_thread=regs, smem_bytes=smem, cta_dim=cta_dim)
    b.exit()
    return b.build()


def make_cta(kernel=None, cta_id=3, ctaid=(3, 0, 0), grid=(8, 1, 1), params=(100.0, 200.0)):
    kernel = kernel or make_kernel()
    return CTA(cta_id, ctaid, kernel, grid, params, GPUConfig(), start_cycle=0)


def test_warp_partitioning():
    cta = make_cta(make_kernel(threads=96))
    assert cta.num_warps == 3
    assert cta.warps[2].live_mask == (1 << 32) - 1


def test_partial_last_warp():
    cta = make_cta(make_kernel(threads=70))
    assert cta.num_warps == 3
    assert cta.warps[2].live_mask == (1 << 6) - 1


def test_special_registers_1d():
    cta = make_cta()
    w1 = cta.warps[1]
    assert list(w1.sregs[SpecialReg.TID_X][:3]) == [32, 33, 34]
    assert w1.sregs[SpecialReg.CTAID_X][0] == 3
    assert w1.sregs[SpecialReg.NTID_X][0] == 64
    assert w1.sregs[SpecialReg.NCTAID_X][0] == 8
    assert w1.sregs[SpecialReg.WARPID][0] == 1
    assert list(w1.sregs[SpecialReg.LANEID][:3]) == [0, 1, 2]


def test_special_registers_2d():
    cta = make_cta(make_kernel(dims=(16, 16, 1)))
    w0 = cta.warps[0]
    # Lane 17 = linear tid 17 -> (x=1, y=1).
    assert w0.sregs[SpecialReg.TID_X][17] == 1
    assert w0.sregs[SpecialReg.TID_Y][17] == 1
    assert w0.sregs[SpecialReg.TID_Z][17] == 0


def test_params_padded_with_zero():
    cta = make_cta(params=(7.0,))
    w = cta.warps[0]
    assert w.sregs[SpecialReg.PARAM0][0] == 7.0
    assert w.sregs[SpecialReg.PARAM1][0] == 0.0


def test_resource_footprint():
    cta = make_cta(make_kernel(threads=64, regs=10, smem=256))
    assert cta.regs_needed == 640
    assert cta.smem_needed == 256


def test_barrier_releases_when_all_arrive():
    cta = make_cta()  # 2 warps
    assert not cta.barrier_arrive(cta.warps[0], now=10)
    assert cta.warps[0].at_barrier
    assert cta.barrier_arrive(cta.warps[1], now=12)
    assert not cta.warps[0].at_barrier
    assert cta.warps[0].barrier_wake == 12 + GPUConfig().barrier_release_latency


def test_barrier_ignores_finished_warps():
    cta = make_cta()
    cta.warps[1].do_exit()
    assert cta.barrier_arrive(cta.warps[0], now=5)  # releases immediately


def test_check_barrier_release_on_warp_exit():
    cta = make_cta()
    cta.barrier_arrive(cta.warps[0], now=5)
    cta.warps[1].do_exit()
    assert cta.check_barrier_release(now=9)
    assert not cta.warps[0].at_barrier


def test_finished_property():
    cta = make_cta()
    assert not cta.finished
    for w in cta.warps:
        w.do_exit()
    assert cta.finished


def test_schedulable_now_respects_launch_latency():
    kernel = make_kernel()
    cta = CTA(0, (0, 0, 0), kernel, (1, 1, 1), (), GPUConfig(), start_cycle=20)
    assert not cta.schedulable_now(10)
    assert cta.schedulable_now(20)
    cta.state = CTAState.INACTIVE
    assert not cta.schedulable_now(25)


def test_ready_for_activation():
    cta = make_cta()
    assert cta.ready_for_activation(0)  # fresh CTA: nothing pending
    for w in cta.warps:
        w.scoreboard.set_pending(0, ready_cycle=100, is_global=True)
    assert not cta.ready_for_activation(50)
    assert cta.ready_for_activation(100)  # loads returned
    # A warp parked at a barrier does not make the CTA ready.
    for w in cta.warps:
        w.at_barrier = True
    assert not cta.ready_for_activation(200)
