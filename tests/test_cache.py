"""Set-associative cache, LRU, MSHR merging, L1 policies."""

import pytest

from repro.sim.cache import L1Cache, SetAssocCache
from repro.sim.config import GPUConfig


def make_tags(size=1024, assoc=2, line=128):
    return SetAssocCache(size, assoc, line)


def test_size_validation():
    with pytest.raises(ValueError):
        SetAssocCache(1000, 3, 128)


def test_miss_then_hit():
    c = make_tags()
    assert not c.access(0)
    assert c.access(0)
    assert c.accesses == 2 and c.hits == 1
    assert c.hit_rate == 0.5


def test_sets_are_independent():
    c = make_tags(size=1024, assoc=2, line=128)  # 4 sets
    c.access(0)        # set 0
    c.access(128)      # set 1
    assert c.access(0)
    assert c.access(128)


def test_lru_eviction_order():
    c = make_tags(size=512, assoc=2, line=128)  # 2 sets
    set_stride = 2 * 128  # lines mapping to set 0: 0, 256, 512...
    c.access(0 * set_stride)
    c.access(1 * set_stride)
    c.access(0 * set_stride)          # touch 0 -> 1*stride is now LRU
    c.access(2 * set_stride)          # evicts 1*stride
    assert c.probe(0)
    assert not c.probe(1 * set_stride)
    assert c.probe(2 * set_stride)


def test_invalidate():
    c = make_tags()
    c.access(0)
    c.invalidate(0)
    assert not c.probe(0)
    c.invalidate(0)  # idempotent


class _FakeMemoryModel:
    """Lower level returning a fixed completion delta and counting calls."""

    def __init__(self, delta=500):
        self.delta = delta
        self.reads = 0
        self.writes = 0

    def read(self, line_addr, now):
        self.reads += 1
        return now + self.delta

    def write(self, line_addr, now):
        self.writes += 1
        return now + self.delta


def make_l1(**over):
    cfg = GPUConfig().with_(**over)
    lower = _FakeMemoryModel()
    return L1Cache(cfg, lower, sm_id=0), lower, cfg


def test_l1_hit_latency():
    l1, lower, cfg = make_l1()
    miss_done = l1.read(0, now=0)
    assert miss_done == lower.delta
    # After the fill completes, the line hits in the tag array.
    assert l1.read(0, now=miss_done + 1) == miss_done + 1 + cfg.l1_hit_latency
    assert lower.reads == 1


def test_l1_mshr_merge():
    l1, lower, cfg = make_l1()
    first = l1.read(0, now=0)
    second = l1.read(0, now=10)  # same line while in flight
    assert second == first  # merged, no second lower-level request
    assert lower.reads == 1


def test_l1_mshr_capacity():
    l1, lower, cfg = make_l1(l1_mshrs=2)
    l1.read(0, now=0)
    l1.read(128, now=0)
    assert not l1.mshr_available(0)
    assert l1.earliest_mshr_free(0) == lower.delta
    # After fills return, MSHRs free up.
    assert l1.mshr_available(lower.delta + 1)


def test_l1_write_through_no_allocate():
    l1, lower, cfg = make_l1()
    l1.write(0, now=0)
    assert lower.writes == 1
    assert not l1.tags.probe(0)  # no allocate on write miss


def test_l1_write_hit_touches_line():
    l1, lower, cfg = make_l1()
    fill = l1.read(0, now=0)
    l1.write(0, now=fill + 1)
    assert l1.tags.probe(0)
    assert lower.writes == 1  # still written through


def test_l1_atomic_bypasses_and_invalidates():
    l1, lower, cfg = make_l1()
    fill = l1.read(0, now=0)
    l1.atomic(0, now=fill + 1)
    assert not l1.tags.probe(0)  # invalidated: L2 now owns the fresh value
    assert lower.reads == 2
