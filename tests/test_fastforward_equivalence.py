"""Differential harness: the fast-forward engine is stats-exact.

The event-driven engine (``GPUConfig.fast_forward``) may only change
wall-clock time.  For every registered benchmark and every architecture,
``SimStats.to_dict()`` — cycle counts, the full idle-cycle breakdown,
occupancy samples, swap accounting, cache counters — must be *identical*
to the per-cycle reference engine, and the final memory image must match
bit-for-bit.  Watchdog behaviour must also be preserved: the hard cycle
limit and the progress deadline fire at reference-exact cycles instead of
being jumped over.
"""

import numpy as np
import pytest

from repro.kernels import all_benchmarks, get
from repro.sim.config import ArchMode, scaled_fermi
from repro.sim.gpu import GPU, SimulationTimeout
from repro.sim.sanitizer import ProgressTracker

BENCHES = all_benchmarks()
SCALE = 0.25


def run(bench, arch, fast_forward, num_sms=1, **overrides):
    prep = bench.prepare(SCALE)
    cfg = scaled_fermi(num_sms=num_sms, arch=arch, fast_forward=fast_forward,
                       **overrides)
    result = GPU(cfg).launch(bench.kernel, prep.grid_dim, prep.gmem, prep.params)
    return result


@pytest.mark.parametrize("arch", ArchMode.ALL)
@pytest.mark.parametrize("bench", BENCHES, ids=lambda b: b.name)
def test_stats_byte_identical(bench, arch):
    ref = run(bench, arch, fast_forward=False)
    fast = run(bench, arch, fast_forward=True)
    assert fast.stats.to_dict() == ref.stats.to_dict(), (bench.name, arch)
    assert np.array_equal(fast.gmem.data, ref.gmem.data), (bench.name, arch)


@pytest.mark.parametrize("arch", ArchMode.ALL)
@pytest.mark.parametrize("bench", BENCHES[:6], ids=lambda b: b.name)
def test_stats_byte_identical_multi_sm(bench, arch):
    """Two SMs exercise the round-robin dispatch/rr-offset interplay: the
    skipped-span rotation credit must leave CTA placement unchanged."""
    ref = run(bench, arch, fast_forward=False, num_sms=2)
    fast = run(bench, arch, fast_forward=True, num_sms=2)
    assert fast.stats.to_dict() == ref.stats.to_dict(), (bench.name, arch)


@pytest.mark.parametrize("policy", ["timeout", "majority-stalled"])
def test_vt_trigger_policies_byte_identical(policy):
    """The timeout trigger fires on a deadline with no status change — the
    manager horizon must surface it as an event."""
    bench = get("stride")
    ref = run(bench, "vt", fast_forward=False, vt_trigger_policy=policy)
    fast = run(bench, "vt", fast_forward=True, vt_trigger_policy=policy)
    assert fast.stats.to_dict() == ref.stats.to_dict(), policy


@pytest.mark.parametrize("scheduler", ["lrr", "two-level"])
def test_scheduler_policies_byte_identical(scheduler):
    bench = get("stride")
    ref = run(bench, "baseline", fast_forward=False, warp_scheduler=scheduler)
    fast = run(bench, "baseline", fast_forward=True, warp_scheduler=scheduler)
    assert fast.stats.to_dict() == ref.stats.to_dict(), scheduler


def test_fill_first_dispatch_byte_identical():
    bench = get("vecadd")
    ref = run(bench, "baseline", fast_forward=False, num_sms=2,
              cta_dispatch="fill-first")
    fast = run(bench, "baseline", fast_forward=True, num_sms=2,
               cta_dispatch="fill-first")
    assert fast.stats.to_dict() == ref.stats.to_dict()


@pytest.mark.parametrize("fast_forward", [False, True])
def test_hard_limit_not_jumped(fast_forward):
    """A span that would cross ``max_cycles`` must be truncated so the
    timeout fires instead of being skipped over."""
    bench = get("stride")
    prep = bench.prepare(SCALE)
    cfg = scaled_fermi(num_sms=1, fast_forward=fast_forward)
    with pytest.raises(SimulationTimeout):
        GPU(cfg).launch(bench.kernel, prep.grid_dim, prep.gmem, prep.params,
                        max_cycles=300)


def test_small_progress_window_identical():
    """With a window just above the longest real stall, the watchdog stays
    quiet under both engines and stats still match (the span observer must
    advance ``last_progress`` exactly like per-cycle observation)."""
    bench = get("stride")
    ref = run(bench, "baseline", fast_forward=False, progress_window=2000)
    fast = run(bench, "baseline", fast_forward=True, progress_window=2000)
    assert fast.stats.to_dict() == ref.stats.to_dict()


def test_observe_span_matches_observe_sequence():
    """ProgressTracker.observe_span must be indistinguishable from the
    equivalent run of dead-cycle observe() calls."""
    per_cycle = ProgressTracker(window=100)
    spanned = ProgressTracker(window=100)
    for t in (0, 1, 2):
        per_cycle.observe(t, issued=1, swap_busy=False, dispatched=False,
                          mem_horizon=40)
        spanned.observe(t, issued=1, swap_busy=False, dispatched=False,
                        mem_horizon=40)
    # Dead cycles 3..30: the horizon (40) counts as progress up to 39.
    for t in range(3, 30):
        per_cycle.observe(t, issued=0, swap_busy=False, dispatched=False,
                          mem_horizon=40)
    spanned.observe_span(3, 30, swap_busy=False)
    assert spanned.last_progress == per_cycle.last_progress
    assert spanned.stall_deadline() == per_cycle.stall_deadline()
    # A swap-busy span counts every cycle as progress.
    for t in range(30, 35):
        per_cycle.observe(t, issued=0, swap_busy=True, dispatched=False,
                          mem_horizon=0)
    spanned.observe_span(30, 35, swap_busy=True)
    assert spanned.last_progress == per_cycle.last_progress


def test_sanitize_pins_reference_path():
    """cfg.sanitize forces the per-cycle engine even when fast_forward is
    on; the run must still match the reference engine's stats."""
    bench = get("vecadd")
    ref = run(bench, "vt", fast_forward=False)
    sanitized = run(bench, "vt", fast_forward=True, sanitize=True)
    assert sanitized.stats.to_dict() == ref.stats.to_dict()


def test_results_still_correct_under_fast_forward():
    """End to end: the benchmark's own numerical check passes on the fast
    engine (functional behaviour untouched, not just stats)."""
    bench = get("stride")
    prep = bench.prepare(SCALE)
    cfg = scaled_fermi(num_sms=2, arch="vt", fast_forward=True)
    result = GPU(cfg).launch(bench.kernel, prep.grid_dim, prep.gmem, prep.params)
    prep.check(result)
