"""Instruction/operand representation."""

import pytest

from repro.isa.instruction import Imm, Instruction, MemRef, Reg, SReg, SpecialReg
from repro.isa.opcodes import CmpOp, Op


def test_src_regs_collects_regs_memrefs_and_pred():
    instr = Instruction(
        op=Op.IMAD,
        dst=Reg(5),
        srcs=(Reg(1), Imm(3), Reg(2)),
        pred=Reg(7),
    )
    assert sorted(instr.src_regs()) == [1, 2, 7]
    assert instr.dst_reg() == 5
    assert instr.max_reg() == 7


def test_memref_base_counts_as_source():
    instr = Instruction(op=Op.LDG, dst=Reg(0), srcs=(MemRef(Reg(9), 4),))
    assert instr.src_regs() == [9]
    assert instr.is_load
    assert instr.is_global_mem
    assert not instr.is_store


def test_store_classification():
    instr = Instruction(op=Op.STG, srcs=(MemRef(Reg(1)), Reg(2)))
    assert instr.is_store
    assert not instr.is_load
    assert sorted(instr.src_regs()) == [1, 2]


def test_shared_classification():
    instr = Instruction(op=Op.LDS, dst=Reg(0), srcs=(MemRef(Reg(1)),))
    assert instr.is_shared_mem
    assert not instr.is_global_mem


def test_branch_properties():
    uncond = Instruction(op=Op.BRA, target=3)
    cond = Instruction(op=Op.BRA, target=3, pred=Reg(1))
    assert uncond.is_branch and not uncond.is_conditional_branch
    assert cond.is_conditional_branch


def test_max_reg_empty():
    assert Instruction(op=Op.NOP).max_reg() == -1


def test_repr_contains_operands():
    instr = Instruction(op=Op.SETP, dst=Reg(3), srcs=(Reg(1), Imm(7)), cmp=CmpOp.LT, pred=Reg(2), pred_neg=True)
    text = repr(instr)
    assert "SETP.LT" in text
    assert "@!r2" in text
    assert "r3" in text and "r1" in text


def test_operand_reprs():
    assert repr(Reg(4)) == "r4"
    assert repr(Imm(2)) == "#2"
    assert repr(SReg(SpecialReg.TID_X)) == "%tid_x"
    assert repr(MemRef(Reg(2), 8)) == "[r2+8]"
    assert repr(MemRef(Reg(2))) == "[r2]"


def test_barrier_and_exit_flags():
    assert Instruction(op=Op.BAR).is_barrier
    assert Instruction(op=Op.EXIT).is_exit


@pytest.mark.parametrize("kind", list(SpecialReg))
def test_special_registers_roundtrip(kind):
    assert SpecialReg(kind.value) is kind
