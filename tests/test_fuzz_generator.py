"""Generator grammar properties: determinism, lint-cleanliness by
construction, and semantic agreement with the reference executor."""

import numpy as np
import pytest

from repro.fuzz.generator import (
    GenConfig,
    generate_spec,
    materialize,
    spec_fingerprint,
)
from repro.fuzz.reference import reference_execute
from repro.isa.analysis import lint_kernel
from repro.isa.opcodes import Op
from repro.sim.config import scaled_fermi
from repro.sim.gpu import GPU


def test_generate_spec_is_deterministic():
    assert generate_spec(5) == generate_spec(5)
    assert generate_spec(5) != generate_spec(6)


def test_spec_fingerprint_tracks_content():
    a, b = generate_spec(5), generate_spec(5)
    assert spec_fingerprint(a) == spec_fingerprint(b)
    b = dict(b, cta_x=b["cta_x"] + 32)
    assert spec_fingerprint(a) != spec_fingerprint(b)


def test_genconfig_roundtrips():
    gen = GenConfig(max_segments=3, cta_choices=(32, 64))
    assert GenConfig.from_dict(gen.to_dict()) == gen


@pytest.mark.parametrize("seed", range(25))
def test_generated_kernels_are_lint_strict_clean(seed):
    kernel = materialize(generate_spec(seed)).kernel  # build() validates
    report = lint_kernel(kernel)
    assert report.ok(strict=True), [str(f) for f in report.findings]


@pytest.mark.parametrize("seed", range(6))
def test_simulator_matches_reference_executor(seed):
    case = materialize(generate_spec(seed))
    gmem, params = case.make_gmem()
    expected = gmem.data.copy()
    reference_execute(case.kernel, case.grid_dim, expected, params)

    cfg = scaled_fermi(num_sms=1, fast_forward=False)
    gmem2, params2 = case.make_gmem()
    GPU(cfg).launch(case.kernel, case.grid_dim, gmem2, params2,
                    max_cycles=300_000)
    assert np.array_equal(gmem2.data, expected, equal_nan=True)


def test_writeback_gload_emits_store_and_preserves_memory():
    spec = {"v": 1, "seed": 3, "cta_x": 32, "grid_x": 1, "use_acc": False,
            "segments": [{"kind": "gload", "buf": 0, "stride": 1,
                          "offset": 0, "fold": True, "writeback": True}]}
    case = materialize(spec)
    assert any(i.op is Op.STG for i in case.kernel.instrs)
    assert len(case.kernel.instrs) == 8
    gmem, params = case.make_gmem()
    before = gmem.data.copy()
    GPU(scaled_fermi(num_sms=1)).launch(case.kernel, case.grid_dim, gmem,
                                        params, max_cycles=300_000)
    # The writeback stores each loaded value to its own address: a no-op.
    assert np.array_equal(gmem.data, before)


def test_buffer_sizing_covers_worst_case_stride():
    spec = {"v": 1, "seed": 9, "cta_x": 128, "grid_x": 4, "use_acc": True,
            "segments": [{"kind": "gload", "buf": 0, "stride": 33,
                          "offset": 64, "fold": True}]}
    case = materialize(spec)
    gmem, params = case.make_gmem()
    # Must not raise any out-of-bounds memory error.
    reference_execute(case.kernel, case.grid_dim, gmem.data, params)


def test_single_cta_grid_aliases_gtid_to_tid():
    spec = dict(generate_spec(0), grid_x=1)
    kernel = materialize(spec).kernel
    assert not any(i.op is Op.IMAD and i.dst and i.dst.idx == 3
                   for i in kernel.instrs)


def test_atomic_segments_share_one_reduction_op():
    # Mixed reduction ops over one aux cell make the final value depend
    # on thread interleaving (found by the fuzzer itself at seed 189:
    # max-after-some-adds vs. the sequential reference), so generation
    # pins every atomic segment in a kernel to one op.
    for seed in range(200):
        ops = {seg["op"] for seg in generate_spec(seed)["segments"]
               if seg["kind"] == "atomic"}
        assert len(ops) <= 1


def test_gen_config_bounds_segments():
    gen = GenConfig(min_segments=2, max_segments=2)
    for seed in range(5):
        assert len(generate_spec(seed, gen)["segments"]) == 2
