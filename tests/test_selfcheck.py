"""Unit tests for the selfcheck static analyzer.

Covers the worklist solver, suppression/baseline mechanics, the schema
goldens, and the regression gate: ``src/repro`` must stay strict-clean
against the checked-in baseline (every fixed true positive stays fixed,
every remaining exemption stays justified).
"""

import json
from pathlib import Path

import pytest

from repro.selfcheck import RULES, run_selfcheck
from repro.selfcheck.rules import ERROR, WARNING, Finding
from repro.selfcheck.worklist import (SummaryProblem, reachable_with_paths,
                                      solve_summaries)

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"
BASELINE = REPO / "selfcheck-baseline.json"


# ---------------------------------------------------------------------------
# Worklist solver
# ---------------------------------------------------------------------------

class _Union(SummaryProblem):
    def __init__(self, local):
        self.local = local

    def init(self, qualname):
        return frozenset(self.local.get(qualname, ()))

    def meet(self, a, b):
        return a | b


def test_solver_propagates_through_a_cycle():
    edges = {"a": {"b"}, "b": {"c"}, "c": {"b"}, "d": set()}
    summaries = solve_summaries(edges, _Union({"c": {"X"}, "d": {"Y"}}))
    assert summaries["a"] == frozenset({"X"})
    assert summaries["b"] == frozenset({"X"})  # b<->c cycle converges
    assert summaries["d"] == frozenset({"Y"})


def test_reachability_reports_shortest_call_path():
    edges = {"e": {"m"}, "m": {"deep"}, "deep": set(), "other": {"deep"}}
    paths = reachable_with_paths(edges, ["e"])
    assert paths["deep"] == ["e", "m", "deep"]
    assert "other" not in paths


# ---------------------------------------------------------------------------
# Rule catalog / finding semantics
# ---------------------------------------------------------------------------

def test_every_rule_has_a_severity_and_description():
    for rule, (severity, description) in RULES.items():
        assert severity in (ERROR, WARNING), rule
        assert description, rule


def test_finding_gating_matches_lint_semantics():
    err = Finding(rule="iso-global-write", path="x.py", line=1,
                  qualname="x.f", message="m")
    warn = Finding(rule="det-float-accum", path="x.py", line=1,
                   qualname="x.f", message="m")
    assert err.gates(strict=False) and err.gates(strict=True)
    assert not warn.gates(strict=False) and warn.gates(strict=True)
    err.suppressed = True
    assert not err.gates(strict=True)


# ---------------------------------------------------------------------------
# Suppressions and baseline meta rules
# ---------------------------------------------------------------------------

def _write_tree(tmp_path, name, source):
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source, encoding="utf-8")
    return tmp_path


def test_justified_suppression_silences_the_finding(tmp_path):
    _write_tree(tmp_path, "gen.py", (
        "import random\n"
        "def pick(items):\n"
        "    # selfcheck: ok[det-global-rng] -- fixture exercising suppression\n"
        "    random.shuffle(items)\n"
        "    return items\n"))
    report = run_selfcheck(tmp_path)
    rng = [f for f in report.findings if f.rule == "det-global-rng"]
    assert len(rng) == 1 and rng[0].suppressed
    assert report.ok(strict=True)


def test_bare_suppression_is_itself_an_error(tmp_path):
    _write_tree(tmp_path, "gen.py", (
        "import random\n"
        "def pick(items):\n"
        "    random.shuffle(items)  # selfcheck: ok[det-global-rng]\n"
        "    return items\n"))
    report = run_selfcheck(tmp_path)
    rules = {f.rule for f in report.findings}
    assert "meta-bare-suppression" in rules
    # The reasonless comment does NOT silence the underlying finding.
    assert any(f.rule == "det-global-rng" and f.active
               for f in report.findings)
    assert not report.ok()


def test_baseline_matches_and_flags_stale_and_unjustified(tmp_path):
    _write_tree(tmp_path, "gen.py", (
        "import random\n"
        "def pick(items):\n"
        "    random.shuffle(items)\n"))
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps({"version": 1, "entries": [
        {"rule": "det-global-rng", "path": "gen.py",
         "qualname": "gen.pick", "reason": "fixture debt"},
        {"rule": "det-wallclock", "path": "gone.py",
         "reason": "matches nothing"},
        {"rule": "det-env-read", "path": "gen.py", "reason": ""},
    ]}), encoding="utf-8")
    report = run_selfcheck(tmp_path, baseline=baseline)
    by_rule = {f.rule: f for f in report.findings}
    assert by_rule["det-global-rng"].baselined
    assert by_rule["meta-stale-baseline"].severity == WARNING
    assert by_rule["meta-unjustified-baseline"].severity == ERROR
    assert report.baseline_used == 1
    assert report.baseline_stale == 2  # the unjustified entry matches nothing
    assert not report.ok()  # unjustified baseline entries gate


def test_bad_baseline_format_is_rejected(tmp_path):
    _write_tree(tmp_path, "m.py", "X = 1\n")
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps({"version": 99, "entries": []}))
    with pytest.raises(ValueError):
        run_selfcheck(tmp_path, baseline=baseline)


# ---------------------------------------------------------------------------
# Schema goldens
# ---------------------------------------------------------------------------

def test_golden_drift_fires_on_renamed_stats_field(tmp_path):
    _write_tree(tmp_path, "sim/stats.py", (
        "from dataclasses import dataclass, field\n"
        "@dataclass\n"
        "class SMStats:\n"
        "    cycles: int = 0\n"
        "    renamed_field: int = 0\n"))
    report = run_selfcheck(tmp_path)
    drift = [f for f in report.findings if f.rule == "schema-golden-drift"]
    assert drift, "golden drift must fire on a mutated SMStats"
    assert "renamed_field" in drift[0].message
    assert drift[0].severity == ERROR


def test_golden_drift_fires_on_schema_version_bump(tmp_path):
    _write_tree(tmp_path, "store/cas.py", "SCHEMA_VERSION = 2\n")
    report = run_selfcheck(tmp_path)
    drift = [f for f in report.findings if f.rule == "schema-golden-drift"]
    assert drift and "SCHEMA_VERSION is 2" in drift[0].message


# ---------------------------------------------------------------------------
# Regression gate: the real tree stays strict-clean and justified
# ---------------------------------------------------------------------------

def test_src_repro_is_strict_clean_against_baseline():
    report = run_selfcheck(SRC, baseline=BASELINE)
    gating = [f for f in report.findings if f.gates(strict=True)]
    assert not gating, "\n".join(
        f"{f.rule} {f.path}:{f.line} {f.message}" for f in gating)
    assert report.baseline_stale == 0, "baseline has stale entries"
    # Every exemption carries a justification by construction; prove the
    # meta rules saw none bare/unjustified.
    assert not any(f.rule in ("meta-bare-suppression",
                              "meta-unjustified-baseline")
                   for f in report.findings)


def test_worker_entries_have_no_transitive_write_footprint():
    report = run_selfcheck(SRC, baseline=BASELINE)
    assert report.worker_summaries, "parallel engine worker entries found"
    # The only worker-reachable global write is the justified warp-mask
    # memo; the summaries count raw sites, pre-suppression.
    assert all(count <= 1 for count in report.worker_summaries.values()), (
        report.worker_summaries)
