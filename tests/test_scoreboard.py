"""Scoreboard: dependence blocking, provenance, purging."""

from repro.isa.instruction import Instruction, MemRef, Reg
from repro.isa.opcodes import Op
from repro.sim.scoreboard import Scoreboard


def iadd(dst, a, b):
    return Instruction(op=Op.IADD, dst=Reg(dst), srcs=(Reg(a), Reg(b)))


def test_empty_scoreboard_never_blocks():
    sb = Scoreboard()
    assert sb.blocking(iadd(0, 1, 2), now=5) == (5, False)


def test_raw_dependence_blocks_until_ready():
    sb = Scoreboard()
    sb.set_pending(1, ready_cycle=100, is_global=False)
    blocked_until, is_global = sb.blocking(iadd(0, 1, 2), now=10)
    assert blocked_until == 100
    assert not is_global


def test_waw_on_destination_blocks():
    sb = Scoreboard()
    sb.set_pending(0, ready_cycle=50, is_global=True)
    blocked_until, is_global = sb.blocking(iadd(0, 1, 2), now=10)
    assert blocked_until == 50
    assert is_global


def test_global_provenance_reported():
    sb = Scoreboard()
    sb.set_pending(1, ready_cycle=500, is_global=True)
    sb.set_pending(2, ready_cycle=20, is_global=False)
    _until, is_global = sb.blocking(iadd(0, 1, 2), now=10)
    assert is_global  # the dominating (latest) blocker is the global load


def test_short_alu_dominates_when_later():
    sb = Scoreboard()
    sb.set_pending(1, ready_cycle=500, is_global=False)
    sb.set_pending(2, ready_cycle=20, is_global=True)
    _until, is_global = sb.blocking(iadd(0, 1, 2), now=10)
    # Latest blocker is the ALU op, but a global dependence still exists.
    assert is_global


def test_entries_expire():
    sb = Scoreboard()
    sb.set_pending(1, ready_cycle=100, is_global=True)
    assert sb.blocking(iadd(0, 1, 2), now=100) == (100, False)
    assert sb.outstanding(100) == {}


def test_memref_base_checked():
    sb = Scoreboard()
    sb.set_pending(3, ready_cycle=80, is_global=True)
    load = Instruction(op=Op.LDG, dst=Reg(0), srcs=(MemRef(Reg(3)),))
    assert sb.blocking(load, now=10)[0] == 80


def test_predicate_register_checked():
    sb = Scoreboard()
    sb.set_pending(7, ready_cycle=60, is_global=False)
    instr = Instruction(op=Op.MOV, dst=Reg(0), srcs=(Reg(1),), pred=Reg(7))
    assert sb.blocking(instr, now=10)[0] == 60


def test_mem_pending_until_tracks_max():
    sb = Scoreboard()
    sb.set_pending(1, ready_cycle=100, is_global=True)
    sb.set_pending(2, ready_cycle=300, is_global=True)
    sb.set_pending(3, ready_cycle=900, is_global=False)  # ALU: not memory
    assert sb.mem_pending_until() == 300
    assert sb.has_mem_pending(200)
    assert not sb.has_mem_pending(300)


def test_rewriting_register_updates_entry():
    sb = Scoreboard()
    sb.set_pending(1, ready_cycle=100, is_global=True)
    sb.set_pending(1, ready_cycle=40, is_global=False)
    assert sb.blocking(iadd(0, 1, 2), now=10) == (40, False)
