"""Assembler: syntax, directives, labels, predication, errors."""

import pytest

from repro.isa.assembler import AssemblerError, assemble, assemble_many
from repro.isa.instruction import Imm, MemRef, Reg, SReg, SpecialReg
from repro.isa.opcodes import CmpOp, Op


MINIMAL = """
.kernel t
.regs 4
.cta 32
    MOV r0, #1
    EXIT
"""


def test_minimal_kernel():
    k = assemble(MINIMAL)
    assert k.name == "t"
    assert k.regs_per_thread == 4
    assert k.cta_dim == (32, 1, 1)
    assert [i.op for i in k.instrs] == [Op.MOV, Op.EXIT]


def test_immediate_forms():
    k = assemble("""
.kernel t
.regs 8
    MOV r0, #1
    MOV r1, 2
    MOV r2, #-3
    MOV r3, #1.5
    MOV r4, #1e3
    EXIT
""")
    values = [i.srcs[0].value for i in k.instrs[:5]]
    assert values == [1, 2, -3, 1.5, 1000.0]
    assert isinstance(k.instrs[0].srcs[0], Imm)


def test_memref_parsing():
    k = assemble("""
.kernel t
.regs 8
    LDG r0, [r1]
    LDG r2, [r3+8]
    LDG r4, [r5-4]
    STG [r6], r0
    EXIT
""")
    assert k.instrs[0].srcs[0] == MemRef(Reg(1), 0)
    assert k.instrs[1].srcs[0] == MemRef(Reg(3), 8)
    assert k.instrs[2].srcs[0] == MemRef(Reg(5), -4)
    assert k.instrs[3].srcs == (MemRef(Reg(6), 0), Reg(0))


def test_special_registers():
    k = assemble("""
.kernel t
.regs 4
    S2R r0, %tid_x
    S2R r1, %param3
    EXIT
""")
    assert k.instrs[0].srcs[0] == SReg(SpecialReg.TID_X)
    assert k.instrs[1].srcs[0] == SReg(SpecialReg.PARAM3)


def test_predication_and_negation():
    k = assemble("""
.kernel t
.regs 8
    SETP.GE r1, r0, #4
@r1  MOV r2, #1
@!r1 MOV r2, #2
    EXIT
""")
    assert k.instrs[0].cmp is CmpOp.GE
    assert k.instrs[1].pred == Reg(1) and not k.instrs[1].pred_neg
    assert k.instrs[2].pred == Reg(1) and k.instrs[2].pred_neg


def test_labels_forward_and_backward():
    k = assemble("""
.kernel t
.regs 8
top:
    IADD r0, r0, #1
    SETP.LT r1, r0, #3
@r1 BRA top
@r1 BRA bottom
bottom:
    EXIT
""")
    assert k.instrs[2].target == 0
    assert k.instrs[3].target == 4
    assert k.labels == {"top": 0, "bottom": 4}


def test_comments_stripped():
    k = assemble("""
# full line comment
.kernel t
.regs 4
    MOV r0, #1   // trailing comment
    // another
    EXIT
""")
    assert len(k.instrs) == 2


def test_multiple_kernels():
    kernels = assemble_many("""
.kernel a
.regs 4
    EXIT
.kernel b
.regs 4
    EXIT
""")
    assert set(kernels) == {"a", "b"}


def test_assemble_rejects_multiple():
    with pytest.raises(AssemblerError):
        assemble(".kernel a\n.regs 4\nEXIT\n.kernel b\n.regs 4\nEXIT")


@pytest.mark.parametrize("text,fragment", [
    ("MOV r0, #1\nEXIT", "before .kernel"),
    (".kernel t\n.regs 4\nBOGUS r0, r1\nEXIT", "unknown opcode"),
    (".kernel t\n.regs 4\nMOV r0, %nope\nEXIT", "unknown special register"),
    (".kernel t\n.regs 4\nSETP r0, r1, r2\nEXIT", "needs a comparison"),
    (".kernel t\n.regs 4\nSETP.XX r0, r1, r2\nEXIT", "unknown comparison"),
    (".kernel t\n.regs 4\nBRA nowhere\nEXIT", "undefined label"),
    (".kernel t\n.regs 4\nx:\nx:\nEXIT", "duplicate label"),
    (".kernel t\n.regs 4\nMOV #1, #1\nEXIT", "register destination"),
    (".kernel t\n.regs 4\nIADD r0, r1\nEXIT", "expects 2 sources"),
    (".kernel t\n.regs 4\nBRA\nEXIT", "needs a target"),
    (".kernel t\n.regs 4\nMOV r0, ???\nEXIT", "cannot parse operand"),
    (".kernel t\n.bogus 4\nEXIT", "unknown directive"),
    ("", "no .kernel"),
])
def test_syntax_errors(text, fragment):
    with pytest.raises(AssemblerError, match=fragment):
        assemble_many(text)


def test_error_carries_line_number():
    with pytest.raises(AssemblerError, match="line 3"):
        assemble(".kernel t\n.regs 4\nBOGUS r0\nEXIT")


def test_validation_register_bound():
    with pytest.raises(Exception, match="r9"):
        assemble(".kernel t\n.regs 4\nMOV r9, #1\nEXIT")


def test_kernel_without_exit_rejected():
    with pytest.raises(Exception, match="EXIT"):
        assemble(".kernel t\n.regs 4\nMOV r0, #1")


def test_cta_directive_partial_dims():
    k = assemble(".kernel t\n.regs 4\n.cta 16 4\nEXIT")
    assert k.cta_dim == (16, 4, 1)
    assert k.threads_per_cta == 64
    assert k.warps_per_cta() == 2


def test_smem_directive():
    k = assemble(".kernel t\n.regs 4\n.smem 2048\nEXIT")
    assert k.smem_bytes == 2048


def test_disassemble_roundtrip_readable():
    k = assemble(MINIMAL)
    listing = k.disassemble()
    assert ".kernel t" in listing
    assert "MOV" in listing and "EXIT" in listing
