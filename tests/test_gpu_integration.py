"""End-to-end GPU launches: correctness, divergence, barriers, errors."""

import numpy as np
import pytest

from repro.isa.assembler import assemble
from repro.sim.config import scaled_fermi
from repro.sim.gpu import GPU, SimulationTimeout
from repro.sim.memory import GlobalMemory


def launch_copy(copy_kernel, cfg, grid=4):
    n = 64 * grid
    gmem = GlobalMemory(1 << 20)
    gmem.alloc("src", n)
    gmem.alloc("dst", n)
    data = np.arange(n, dtype=np.float64)
    gmem.write("src", data)
    gpu = GPU(cfg)
    result = gpu.launch(copy_kernel, grid, gmem, params=(gmem.base("src"), gmem.base("dst")))
    return result, data


def test_copy_kernel_correct(copy_kernel, small_cfg):
    result, data = launch_copy(copy_kernel, small_cfg)
    assert np.array_equal(result.read("dst"), data)


def test_stats_populated(copy_kernel, small_cfg):
    result, _ = launch_copy(copy_kernel, small_cfg)
    stats = result.stats
    assert stats.cycles > 0
    assert stats.instructions > 0
    assert 0 < stats.ipc <= small_cfg.num_warp_schedulers * small_cfg.num_sms
    assert stats.ctas_launched == 4
    assert sum(s.ctas_completed for s in stats.sm_stats) == 4
    assert stats.dram_requests > 0


def test_multi_sm_distributes_work(copy_kernel):
    cfg = scaled_fermi(num_sms=2)
    result, data = launch_copy(copy_kernel, cfg, grid=8)
    assert np.array_equal(result.read("dst"), data)
    per_sm = [s.instructions for s in result.stats.sm_stats]
    assert all(count > 0 for count in per_sm)


def test_divergent_kernel_correct(diverge_kernel, small_cfg):
    gmem = GlobalMemory(1 << 16)
    gmem.alloc("out", 32)
    gpu = GPU(small_cfg)
    result = gpu.launch(diverge_kernel, 1, gmem, params=(gmem.base("out"),))
    out = result.read("out")
    assert list(out[:16]) == [100.0] * 16
    assert list(out[16:]) == [200.0] * 16


def test_grid_dim_forms(copy_kernel, small_cfg):
    for grid in (4, (4,), (2, 2), (2, 2, 1)):
        gmem = GlobalMemory(1 << 20)
        gmem.alloc("src", 256)
        gmem.alloc("dst", 256)
        gmem.write("src", np.ones(256))
        gpu = GPU(small_cfg)
        result = gpu.launch(copy_kernel, grid, gmem, params=(gmem.base("src"), gmem.base("dst")))
        assert result.grid_dim[0] * result.grid_dim[1] * result.grid_dim[2] == 4


def test_empty_grid_rejected(copy_kernel, small_cfg):
    with pytest.raises(ValueError, match="empty grid"):
        GPU(small_cfg).launch(copy_kernel, 0, GlobalMemory(1 << 16))


def test_oversized_cta_rejected(small_cfg):
    kernel = assemble(".kernel big\n.regs 64\n.cta 1024\nEXIT")
    with pytest.raises(ValueError, match="register file"):
        GPU(small_cfg).launch(kernel, 1, GlobalMemory(1 << 16))


def test_oversized_smem_rejected(small_cfg):
    kernel = assemble(".kernel big\n.regs 8\n.smem 65536\n.cta 32\nEXIT")
    with pytest.raises(ValueError, match="shared memory"):
        GPU(small_cfg).launch(kernel, 1, GlobalMemory(1 << 16))


def test_watchdog_fires(copy_kernel, small_cfg):
    gmem = GlobalMemory(1 << 20)
    gmem.alloc("src", 256)
    gmem.alloc("dst", 256)
    with pytest.raises(SimulationTimeout, match="exceeded"):
        GPU(small_cfg).launch(copy_kernel, 4, gmem,
                              params=(gmem.base("src"), gmem.base("dst")), max_cycles=10)


def test_barrier_kernel_completes(small_cfg):
    kernel = assemble("""
.kernel barriers
.regs 8
.smem 256
.cta 64
    S2R  r0, %tid_x
    SHL  r1, r0, #2
    I2F  r2, r0
    STS  [r1], r2
    BAR
    XOR  r3, r0, #32
    SHL  r3, r3, #2
    LDS  r4, [r3]
    BAR
    S2R  r5, %param0
    IADD r6, r5, r1
    STG  [r6], r4
    EXIT
""")
    gmem = GlobalMemory(1 << 16)
    gmem.alloc("out", 64)
    result = GPU(small_cfg).launch(kernel, 2, gmem, params=(gmem.base("out"),))
    expected = (np.arange(64) ^ 32).astype(np.float64)
    assert np.array_equal(result.read("out"), expected)


def test_fresh_memory_per_launch(copy_kernel, small_cfg):
    # Two launches with separate GlobalMemory objects do not interfere.
    r1, d1 = launch_copy(copy_kernel, small_cfg)
    r2, d2 = launch_copy(copy_kernel, small_cfg)
    assert np.array_equal(r1.read("dst"), d1)
    assert np.array_equal(r2.read("dst"), d2)
    assert r1.stats.cycles == r2.stats.cycles  # determinism


def test_architectures_produce_identical_memory(copy_kernel):
    outputs = {}
    cycles = {}
    for arch in ("baseline", "vt", "ideal-sched"):
        cfg = scaled_fermi(num_sms=1, arch=arch)
        result, _ = launch_copy(copy_kernel, cfg, grid=16)
        outputs[arch] = result.read("dst")
        cycles[arch] = result.stats.cycles
    assert np.array_equal(outputs["baseline"], outputs["vt"])
    assert np.array_equal(outputs["baseline"], outputs["ideal-sched"])
