"""The hang-detection pair: the hard cycle limit (with forensics attached)
and the forward-progress watchdog that fires long before it."""

import pytest

from repro.isa.assembler import assemble
from repro.kernels import get
from repro.sim.config import scaled_fermi
from repro.sim.gpu import GPU, ProgressDeadlock, SimulationTimeout
from repro.sim.memory import GlobalMemory

# A kernel that never terminates: every cycle issues an instruction, so
# the *progress* watchdog stays quiet and only the hard limit can stop it.
# (The EXIT after the loop is unreachable; the validator requires one.)
SPIN_ASM = """
.kernel spin
.regs 2
.cta 32
loop:
    MOV   r0, #1
    BRA   loop
    EXIT
"""


def test_spin_kernel_hits_hard_limit_with_dump():
    kernel = assemble(SPIN_ASM)
    gpu = GPU(scaled_fermi(num_sms=1))
    with pytest.raises(SimulationTimeout) as excinfo:
        gpu.launch(kernel, 1, GlobalMemory(1 << 16), max_cycles=3000)
    exc = excinfo.value
    # A spin loop makes "progress" every cycle, so this is a plain
    # timeout, not a ProgressDeadlock.
    assert not isinstance(exc, ProgressDeadlock)
    assert exc.dump is not None
    for section in ("deadlock forensics", "resident CTAs", "unfinished warps",
                    "outstanding memory requests"):
        assert section in exc.dump
    # The dump names the spinning warp and calls it issuable.
    assert "ready to issue" in exc.dump


def test_dump_renders_without_faults():
    kernel = assemble(SPIN_ASM)
    gpu = GPU(scaled_fermi(num_sms=1))
    with pytest.raises(SimulationTimeout) as excinfo:
        gpu.launch(kernel, 1, GlobalMemory(1 << 16), max_cycles=500)
    assert "injected faults" not in excinfo.value.dump


@pytest.mark.parametrize("arch", ["baseline", "vt"])
def test_watchdog_quiet_on_clean_runs(arch):
    """A modest progress window must never false-fire on healthy
    workloads, including VT runs with long swap phases."""
    bench = get("stride")
    prep = bench.prepare(0.25)
    cfg = scaled_fermi(num_sms=1, arch=arch, progress_window=500)
    result = GPU(cfg).launch(bench.kernel, prep.grid_dim, prep.gmem, prep.params)
    prep.check(result)


def test_watchdog_fires_well_before_hard_limit():
    """A frozen warp deadlocks at ~progress_window cycles, not at the
    multi-million-cycle hard budget."""
    from repro.sim.faults import FaultPlan

    bench = get("vecadd")
    prep = bench.prepare(0.25)
    cfg = scaled_fermi(num_sms=1, progress_window=1500)
    plan = FaultPlan(stall_warp=(0, 0, 0), stall_at_cycle=100)
    with pytest.raises(ProgressDeadlock) as excinfo:
        GPU(cfg).launch(bench.kernel, prep.grid_dim, prep.gmem, prep.params,
                        faults=plan)
    assert "no forward progress" in str(excinfo.value)
    assert excinfo.value.dump is not None


def test_watchdog_disabled_with_zero_window():
    kernel = assemble(SPIN_ASM)
    cfg = scaled_fermi(num_sms=1, progress_window=0)
    with pytest.raises(SimulationTimeout):
        GPU(cfg).launch(kernel, 1, GlobalMemory(1 << 16), max_cycles=1000)


def test_progress_tracker_unit():
    from repro.sim.sanitizer import ProgressTracker

    tracker = ProgressTracker(window=100)
    tracker.observe(0, issued=1, swap_busy=False, dispatched=False, mem_horizon=0)
    assert not tracker.deadlocked(100)
    assert tracker.deadlocked(101)
    # An in-flight memory response counts as progress until its horizon.
    tracker.observe(101, issued=0, swap_busy=False, dispatched=False, mem_horizon=150)
    tracker.observe(149, issued=0, swap_busy=False, dispatched=False, mem_horizon=0)
    assert tracker.last_progress == 149
    tracker.observe(150, issued=0, swap_busy=False, dispatched=False, mem_horizon=0)
    assert tracker.last_progress == 149
    assert tracker.deadlocked(250)
    # Swap-engine activity is progress too.
    tracker.observe(251, issued=0, swap_busy=True, dispatched=False, mem_horizon=0)
    assert not tracker.deadlocked(300)
