"""Sweep journal: fingerprints, record serialization, durability, and
corrupted-line quarantine.  (Orchestrator end-to-end tests live in
tests/test_orchestrator.py.)"""

import json

import pytest

from repro.analysis.journal import (
    Journal,
    JournalEntry,
    cell_fingerprint,
    config_from_dict,
    config_to_dict,
    record_from_dict,
    record_to_dict,
)
from repro.analysis.runner import RunRecord, run_benchmark
from repro.kernels.registry import get
from repro.sim.config import scaled_fermi


@pytest.fixture
def cfg():
    return scaled_fermi(num_sms=1)


# ---------------------------------------------------------------------------
# fingerprints
# ---------------------------------------------------------------------------

def test_fingerprint_is_deterministic(cfg):
    assert (cell_fingerprint("vecadd", cfg, 0.25)
            == cell_fingerprint("vecadd", cfg, 0.25))
    # equal configs built independently fingerprint identically
    assert (cell_fingerprint("vecadd", scaled_fermi(num_sms=1), 0.25)
            == cell_fingerprint("vecadd", cfg, 0.25))


def test_fingerprint_changes_with_every_input(cfg):
    base = cell_fingerprint("vecadd", cfg, 0.25)
    assert cell_fingerprint("saxpy", cfg, 0.25) != base
    assert cell_fingerprint("vecadd", cfg, 0.5) != base
    assert cell_fingerprint("vecadd", cfg, 0.25, workload_seed=1) != base
    # ANY config knob participates: a stale entry can never be resumed
    # into a run whose configuration changed.
    assert cell_fingerprint("vecadd", cfg.with_(arch="vt"), 0.25) != base
    assert cell_fingerprint("vecadd", cfg.with_(dram_latency=401), 0.25) != base
    assert cell_fingerprint("vecadd", cfg.with_(vt_swap_out_base=3), 0.25) != base


# ---------------------------------------------------------------------------
# config / record serialization
# ---------------------------------------------------------------------------

def test_config_round_trip(cfg):
    tweaked = cfg.with_(arch="vt", warp_scheduler="lrr", dram_latency=600)
    assert config_from_dict(config_to_dict(tweaked)) == tweaked


def test_config_from_dict_ignores_unknown_keys(cfg):
    data = config_to_dict(cfg)
    data["knob_from_the_future"] = 42
    assert config_from_dict(data) == cfg


def test_ok_record_round_trips_through_json(cfg):
    record = run_benchmark(get("vecadd"), cfg, scale=0.25)
    wire = json.loads(json.dumps(record_to_dict(record)))
    clone = record_from_dict(wire)
    assert clone.ok
    assert clone.benchmark == "vecadd"
    assert clone.cycles == record.cycles
    assert clone.stats == record.stats
    assert clone.config == record.config


def test_failed_record_round_trips(cfg):
    record = RunRecord(benchmark="vecadd", arch="vt", stats=None, config=cfg,
                       status="timeout", error="SimulationTimeout: boom",
                       dump="forensics", retried=True)
    clone = record_from_dict(json.loads(json.dumps(record_to_dict(record))))
    assert clone.status == "timeout"
    assert clone.error == "SimulationTimeout: boom"
    assert clone.dump == "forensics"
    assert clone.retried
    assert clone.stats is None


# ---------------------------------------------------------------------------
# the journal file
# ---------------------------------------------------------------------------

def _entry(cfg, bench="vecadd", status="ok", **kwargs):
    record = RunRecord(benchmark=bench, arch=cfg.arch, stats=None, config=cfg,
                       status=status)
    return JournalEntry(fingerprint=cell_fingerprint(bench, cfg, 0.25),
                        record=record, **kwargs)


def test_journal_append_and_reload(tmp_path, cfg):
    journal = Journal.open(tmp_path / "sweep")
    entry = _entry(cfg, attempts=2, elapsed_s=1.5)
    journal.append(entry)
    reloaded = Journal.open(tmp_path / "sweep", resume=True)
    got = reloaded.lookup(entry.fingerprint)
    assert got is not None
    assert got.attempts == 2
    assert got.record.benchmark == "vecadd"
    assert reloaded.quarantined == 0


def test_journal_refuses_accidental_overwrite(tmp_path, cfg):
    journal = Journal.open(tmp_path / "sweep")
    journal.append(_entry(cfg))
    with pytest.raises(FileExistsError, match="resume"):
        Journal.open(tmp_path / "sweep")


def test_journal_later_line_wins(tmp_path, cfg):
    journal = Journal.open(tmp_path / "sweep")
    journal.append(_entry(cfg, status="timeout"))
    journal.append(_entry(cfg, status="ok", attempts=2))
    reloaded = Journal.open(tmp_path / "sweep", resume=True)
    assert len(reloaded.entries) == 1
    entry = next(iter(reloaded.entries.values()))
    assert entry.record.status == "ok"
    assert entry.attempts == 2


def test_corrupted_lines_are_quarantined_not_fatal(tmp_path, cfg):
    journal = Journal.open(tmp_path / "sweep")
    good = _entry(cfg)
    journal.append(good)
    # Simulate a SIGKILL mid-write (torn final line) plus stray garbage.
    with journal.path.open("a") as handle:
        handle.write('{"fingerprint": "abc", "trunc')
        handle.write("\nnot json at all\n")
        handle.write('{"valid_json": "but not a journal entry"}\n')
    reloaded = Journal.open(tmp_path / "sweep", resume=True)
    assert reloaded.lookup(good.fingerprint) is not None
    assert len(reloaded.entries) == 1
    assert reloaded.quarantined == 3
    quarantine = journal.path.with_suffix(".jsonl.quarantine")
    assert quarantine.exists()
    assert len(quarantine.read_text().strip().splitlines()) == 3


def test_journal_rejects_newer_schema(tmp_path, cfg):
    journal = Journal.open(tmp_path / "sweep")
    data = _entry(cfg).to_json()
    data["v"] = 999
    with journal.path.open("a") as handle:
        handle.write(json.dumps(data) + "\n")
    reloaded = Journal.open(tmp_path / "sweep", resume=True)
    # A from-the-future line is quarantined, not misread.
    assert reloaded.quarantined == 1


def test_write_dump(tmp_path, cfg):
    journal = Journal.open(tmp_path / "sweep")
    path = journal.write_dump("feedbeef", "stack of forensics")
    assert path is not None
    assert "feedbeef" in path
    assert "forensics" in open(path).read()
    assert journal.write_dump("feedbeef", None) is None


# ---------------------------------------------------------------------------
# directory-entry durability (the dirfd-fsync bugfix)
# ---------------------------------------------------------------------------

def test_journal_creation_fsyncs_the_directory(tmp_path, cfg, monkeypatch):
    """The append that creates journal.jsonl must fsync the containing
    directory: fsyncing the file alone makes the *bytes* durable but not
    the directory entry, so a crash right after creation could lose the
    whole journal even though every line was fsynced."""
    import os as os_mod
    import stat

    synced_dirs = []
    real_fsync = os_mod.fsync

    def spy_fsync(fd):
        if stat.S_ISDIR(os_mod.fstat(fd).st_mode):
            synced_dirs.append(os_mod.readlink(f"/proc/self/fd/{fd}"))
        return real_fsync(fd)

    monkeypatch.setattr(os_mod, "fsync", spy_fsync)
    journal = Journal.open(tmp_path / "sweep")
    journal.append(_entry(cfg))
    assert str(tmp_path / "sweep") in synced_dirs

    # Appends to an existing journal do not re-pay the directory fsync.
    synced_dirs.clear()
    journal.append(_entry(cfg, bench="saxpy"))
    assert synced_dirs == []
