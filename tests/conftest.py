"""Shared fixtures: tiny kernels and small configurations for fast tests."""

from __future__ import annotations

import pytest

from repro.isa.assembler import assemble
from repro.sim.config import GPUConfig, scaled_fermi


@pytest.fixture
def small_cfg() -> GPUConfig:
    """One-SM config for fast integration tests."""
    return scaled_fermi(num_sms=1)


COPY_ASM = """
.kernel copy
.regs 10
.cta 64
entry:
    S2R   r0, %ctaid_x
    S2R   r1, %ntid_x
    S2R   r2, %tid_x
    IMAD  r3, r0, r1, r2
    SHL   r4, r3, #2
    S2R   r5, %param0
    IADD  r6, r5, r4
    LDG   r7, [r6]
    S2R   r8, %param1
    IADD  r9, r8, r4
    STG   [r9], r7
    EXIT
"""


@pytest.fixture
def copy_kernel():
    return assemble(COPY_ASM)


DIVERGE_ASM = """
.kernel diverge
.regs 10
.cta 32
entry:
    S2R   r0, %tid_x
    SETP.LT r1, r0, #16
@r1 BRA   low
    MOV   r2, #200
    BRA   join
low:
    MOV   r2, #100
join:
    SHL   r3, r0, #2
    S2R   r4, %param0
    IADD  r3, r3, r4
    STG   [r3], r2
    EXIT
"""


@pytest.fixture
def diverge_kernel():
    return assemble(DIVERGE_ASM)
