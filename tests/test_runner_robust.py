"""Crash tolerance of the experiment harness: a poisoned cell must not
take down a sweep, tight-budget timeouts get one retry, and partial
results still render."""

import pytest

from repro.analysis.experiments import doctor_report, e5_speedup
from repro.analysis.runner import (
    STATUSES,
    run_benchmark,
    run_benchmark_safe,
    run_matrix,
)
from repro.kernels import get
from repro.kernels.base import Benchmark
from repro.sim.config import scaled_fermi
from repro.sim.faults import FaultPlan
from repro.sim.gpu import SimulationTimeout


def _poisoned(name="poisoned"):
    """A benchmark whose workload factory explodes."""
    def prepare(scale):
        raise RuntimeError("workload generator exploded")

    return Benchmark(name=name, suite="synthetic",
                     description="always fails to prepare", category="compute",
                     kernel=get("vecadd").kernel, prepare=prepare)


@pytest.fixture
def cfg():
    return scaled_fermi(num_sms=1)


def test_run_benchmark_safe_captures_errors(cfg):
    record = run_benchmark_safe(_poisoned(), cfg, scale=0.25)
    assert not record.ok
    assert record.status == "error"
    assert "workload generator exploded" in record.error
    assert record.failure == "FAILED(error)"
    with pytest.raises(RuntimeError, match="poisoned"):
        _ = record.cycles


def test_run_benchmark_still_raises(cfg):
    with pytest.raises(RuntimeError, match="exploded"):
        run_benchmark(_poisoned(), cfg, scale=0.25)


def test_timeout_retried_once_with_doubled_budget(cfg):
    bench = get("vecadd")
    full = run_benchmark(bench, cfg, scale=0.25)
    tight = int(full.cycles * 0.75)
    # The first attempt times out; the retry at 2x the budget completes.
    record = run_benchmark_safe(bench, cfg, scale=0.25, max_cycles=tight)
    assert record.retried
    assert record.ok
    assert record.cycles == full.cycles


def test_hopeless_timeout_stays_failed(cfg):
    bench = get("vecadd")
    record = run_benchmark_safe(bench, cfg, scale=0.25, max_cycles=100)
    assert record.retried
    assert record.status == "timeout"
    assert record.status in STATUSES
    assert record.dump is not None


def test_deadlock_not_retried(cfg):
    bench = get("vecadd")
    plan = FaultPlan(stall_warp=(0, 0, 0), stall_at_cycle=50)
    record = run_benchmark_safe(
        bench, cfg.with_(progress_window=1500), scale=0.25, faults=plan)
    assert record.status == "deadlock"
    assert not record.retried
    assert record.dump is not None


def test_retry_can_be_disabled(cfg):
    bench = get("vecadd")
    record = run_benchmark_safe(bench, cfg, scale=0.25, max_cycles=100,
                                retry_timeouts=False)
    assert record.status == "timeout"
    assert not record.retried


def test_matrix_keeps_going_past_poison(cfg):
    benches = [get("vecadd"), _poisoned(), get("saxpy")]
    records = run_matrix(benches, ["baseline", "vt"], cfg, scale=0.25,
                         keep_going=True)
    assert len(records) == 6
    assert records[("vecadd", "baseline")].ok
    assert records[("saxpy", "vt")].ok
    assert records[("poisoned", "baseline")].status == "error"
    assert records[("poisoned", "vt")].status == "error"


def test_matrix_strict_raises_on_poison(cfg):
    with pytest.raises(RuntimeError, match="exploded"):
        run_matrix([_poisoned()], ["baseline"], cfg, scale=0.25)


def test_e5_renders_partial_table_with_failed_cells():
    benches = [get("vecadd"), _poisoned()]
    report, data = e5_speedup(scale=0.25, benches=benches)
    assert "FAILED(error)" in report
    assert "failed cells" in report
    assert "vecadd" in report
    # Failures keyed by benchmark, then by the arch(s) that failed.
    assert set(data["failures"]) == {"poisoned"}
    assert set(data["failures"]["poisoned"]) == {"baseline", "vt", "ideal-sched"}
    # The healthy benchmark still contributes speedup statistics.
    assert "vecadd" in data["vt"]


def test_e5_strict_mode_raises():
    with pytest.raises(RuntimeError, match="exploded"):
        e5_speedup(scale=0.25, benches=[_poisoned()], keep_going=False)


def test_doctor_reports_failures():
    report, data = doctor_report(scale=0.25, benches=["vecadd"])
    assert "ok (" in report
    assert not data["failures"]


def test_doctor_flags_unhealthy_cell(monkeypatch):
    def always_timeout(*args, **kwargs):
        raise SimulationTimeout("injected for test", dump="dump text")

    monkeypatch.setattr("repro.analysis.runner.run_benchmark", always_timeout)
    report, data = doctor_report(scale=0.25, benches=["vecadd"])
    assert "FAILED(timeout)" in report
    assert data["failures"]


# ---------------------------------------------------------------------------
# wall-budget-aware timeout retry (the retry-budget bugfix)
# ---------------------------------------------------------------------------

def test_unaffordable_retry_is_skipped_as_wall_timeout(cfg):
    """With no wall budget left, the doubled-budget retry used to launch
    anyway and overshoot the deadline, surfacing as a misleading second
    ``timeout``; it must instead be skipped and reported ``wall-timeout``."""
    bench = get("vecadd")
    record = run_benchmark_safe(bench, cfg, scale=0.25, max_cycles=100,
                                wall_budget=1e-6)
    assert record.status == "wall-timeout"
    assert record.status in STATUSES
    assert not record.retried  # the retry never launched
    assert "retry skipped" in record.error
    assert "wall budget" in record.error


def test_generous_wall_budget_still_allows_the_retry(cfg):
    bench = get("vecadd")
    full = run_benchmark(bench, cfg, scale=0.25)
    tight = int(full.cycles * 0.75)
    record = run_benchmark_safe(bench, cfg, scale=0.25, max_cycles=tight,
                                wall_budget=3600.0)
    assert record.ok
    assert record.retried
    assert record.cycles == full.cycles


def test_clamped_retry_that_times_out_reports_wall_timeout(cfg, monkeypatch):
    """When the remaining budget affords more than the first attempt but
    less than 2x, the retry runs clamped — and if it *still* times out the
    status is ``wall-timeout`` with the clamp explained, not ``timeout``."""
    import time as time_mod

    bench = get("vecadd")
    # Fake the clock so exactly half the wall budget is gone after the
    # first attempt: affordable = first_budget * remaining/elapsed ~= 1.5x,
    # strictly between 1x and 2x -> the clamp path, deterministically.
    ticks = iter([0.0, 10.0, 10.0, 10.0])
    monkeypatch.setattr(time_mod, "monotonic", lambda: next(ticks, 25.0))
    record = run_benchmark_safe(bench, cfg, scale=0.25, max_cycles=100,
                                wall_budget=25.0)
    assert record.status == "wall-timeout"
    assert record.retried
    assert "clamped" in record.error
