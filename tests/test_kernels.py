"""Benchmark library: every kernel runs and matches its numpy reference."""

import pytest

from repro.core.occupancy import LimiterClass, occupancy
from repro.kernels import all_benchmarks, by_category, get
from repro.kernels.base import CATEGORIES
from repro.sim.config import scaled_fermi
from repro.sim.gpu import GPU

BENCHES = all_benchmarks()
SMALL_SCALE = 0.25


def test_registry_names_unique():
    names = [b.name for b in BENCHES]
    assert len(names) == len(set(names))
    assert len(names) >= 15


def test_get_and_unknown():
    assert get("bfs").name == "bfs"
    with pytest.raises(KeyError, match="unknown benchmark"):
        get("nope")


def test_by_category_partition():
    total = sum(len(by_category(c)) for c in CATEGORIES)
    assert total == len(BENCHES)
    assert by_category("streaming")


@pytest.mark.parametrize("bench", BENCHES, ids=lambda b: b.name)
def test_benchmark_correct_on_baseline(bench):
    prep = bench.prepare(SMALL_SCALE)
    gpu = GPU(scaled_fermi(num_sms=1, arch="baseline"))
    result = gpu.launch(bench.kernel, prep.grid_dim, prep.gmem, prep.params)
    prep.check(result)  # raises CheckFailure on mismatch


@pytest.mark.parametrize("bench", BENCHES, ids=lambda b: b.name)
def test_benchmark_correct_on_vt(bench):
    prep = bench.prepare(SMALL_SCALE)
    gpu = GPU(scaled_fermi(num_sms=1, arch="vt"))
    result = gpu.launch(bench.kernel, prep.grid_dim, prep.gmem, prep.params)
    prep.check(result)


@pytest.mark.parametrize("bench", BENCHES, ids=lambda b: b.name)
def test_kernel_fits_one_sm(bench):
    occ = occupancy(bench.kernel, scaled_fermi(1))
    assert occ.baseline_ctas >= 1


def test_expected_limiter_classes():
    expectations = {
        "bfs": LimiterClass.SCHEDULING,
        "stride": LimiterClass.SCHEDULING,
        "hotspot": LimiterClass.SCHEDULING,
        "reduction": LimiterClass.SCHEDULING,
        "mm_tiled": LimiterClass.CAPACITY,
        "regheavy": LimiterClass.CAPACITY,
        "backprop": LimiterClass.BALANCED,
        "nw": LimiterClass.CAPACITY,
        "btree": LimiterClass.SCHEDULING,
    }
    for name, expected in expectations.items():
        assert occupancy(get(name).kernel).limiter is expected, name


def test_scale_grows_grid():
    small = get("vecadd").prepare(0.25)
    large = get("vecadd").prepare(1.0)
    assert large.grid_dim[0] > small.grid_dim[0]


def test_prepare_is_deterministic():
    a = get("bfs").prepare(SMALL_SCALE)
    b = get("bfs").prepare(SMALL_SCALE)
    assert (a.gmem.data == b.gmem.data).all()
    assert a.params == b.params


def test_suite_mixes_limiters():
    limiters = {occupancy(b.kernel).limiter for b in BENCHES}
    assert LimiterClass.SCHEDULING in limiters
    assert LimiterClass.CAPACITY in limiters


def test_check_rejects_corrupted_output():
    bench = get("vecadd")
    prep = bench.prepare(SMALL_SCALE)
    gpu = GPU(scaled_fermi(num_sms=1))
    result = gpu.launch(bench.kernel, prep.grid_dim, prep.gmem, prep.params)
    result.gmem.write("c", [12345.0])  # corrupt one element
    with pytest.raises(AssertionError, match="mismatch"):
        prep.check(result)
