"""The static kernel verifier: every rule fires on a purpose-built broken
kernel, the whole registry is clean, and strict mode gates the
assembler/builder."""

import pytest

from repro.isa.analysis import ERROR, INFO, PERF, RULES, WARNING, lint_kernel
from repro.isa.assembler import assemble
from repro.isa.instruction import Reg
from repro.isa.kernel import KernelBuilder, KernelValidationError
from repro.kernels.registry import all_benchmarks

# -- fixture suite: intentionally broken kernels, one per rule ---------------

BROKEN = {
    "uninit-read": """
.kernel bad_uninit
.regs 8
.cta 32
    FADD r1, r0, r2
    STG [r1], r2
    EXIT
""",
    "barrier-divergence": """
.kernel bad_bar
.regs 8
.cta 64
    S2R r0, %tid_x
    SETP.LT r1, r0, #32
@!r1 BRA skip
    BAR
skip:
    EXIT
""",
    "shared-oob": """
.kernel bad_oob
.regs 8
.smem 64
.cta 64
    S2R r0, %tid_x
    SHL r1, r0, #2
    STS [r1], r0
    BAR
    EXIT
""",
    "shared-race": """
.kernel bad_race
.regs 8
.smem 512
.cta 64
    S2R r0, %tid_x
    SHL r1, r0, #2
    STS [r1], r0
    LDS r2, [r1+4]
    STG [r1], r2
    EXIT
""",
    "unreachable-code": """
.kernel bad_unreach
.regs 8
.cta 32
    BRA end
    MOV r0, #1
end:
    EXIT
""",
    "fall-off-end": """
.kernel bad_fall
.regs 8
.cta 32
    S2R r0, %tid_x
    SETP.LT r1, r0, #16
@r1 BRA past
    EXIT
past:
    MOV r2, #1
""",
    "over-declared-regs": """
.kernel bad_pressure
.regs 32
.cta 32
    MOV r0, #1
    STG [r0], r0
    EXIT
""",
}


@pytest.mark.parametrize("rule", sorted(BROKEN))
def test_rule_fires_on_broken_fixture(rule):
    report = lint_kernel(assemble(BROKEN[rule]))
    assert rule in {f.rule for f in report.findings}


def test_reg_oob_fires_on_post_construction_mutation():
    # Kernel.validate rejects out-of-range operands at construction, so the
    # lint's reg-oob rule is exercised by mutating an already-built kernel
    # (modelling a buggy transformation pass).
    kernel = assemble(".kernel k\n.regs 4\n.cta 32\nMOV r0, #1\nSTG [r0], r0\nEXIT")
    kernel.instrs[0].dst = Reg(9)
    report = lint_kernel(kernel)
    assert any(f.rule == "reg-oob" and f.pc == 0 for f in report.findings)


def test_unprovable_race_is_info_not_error():
    # Loop-carried (fuzzy) shared addresses: reported, but must not fail.
    # The trip count is a launch parameter so the bounded unroller cannot
    # concretize the loop either (a constant bound would now be discharged
    # by repro.isa.analysis.unroll).
    text = """
.kernel pingpong
.regs 8
.smem 256
.cta 32
    S2R r0, %tid_x
    SHL r1, r0, #2
    MOV r2, #0
    S2R r5, %param0
loop:
    LDS r3, [r1]
    STS [r1+128], r3
    IADD r1, r1, #128
    IADD r2, r2, #1
    SETP.LT r4, r2, r5
@r4 BRA loop
    EXIT
"""
    report = lint_kernel(assemble(text))
    races = [f for f in report.findings if f.rule.startswith("shared-race")]
    assert races and all(f.severity == INFO for f in races)


def test_severity_gating():
    report = lint_kernel(assemble(BROKEN["unreachable-code"]))
    assert not report.errors
    assert report.warnings
    assert report.ok(strict=False)
    assert not report.ok(strict=True)

    broken = lint_kernel(assemble(BROKEN["shared-oob"]))
    assert broken.errors and not broken.ok(strict=False)


def test_rule_catalog_severities_are_valid():
    assert set(RULES) >= set(BROKEN) | {"reg-oob", "shared-race-maybe"}
    assert set(RULES) >= {"uncoalesced-global", "shared-bank-conflict",
                          "low-ilp-low-occupancy"}
    for severity, description in RULES.values():
        assert severity in (ERROR, WARNING, PERF, INFO)
        assert description


def test_finding_str_mentions_location():
    report = lint_kernel(assemble(BROKEN["shared-oob"]))
    text = str(report.findings[0])
    assert "bad_oob" in text and "pc" in text


# -- performance advisories ---------------------------------------------------

PERF_FIXTURES = {
    "uncoalesced-global": """
.kernel perf_uncoal
.regs 8
.cta 32
    S2R r0, %tid_x
    SHL r1, r0, #7
    LDG r2, [r1]
    STG [r1], r2
    EXIT
""",
    "shared-bank-conflict": """
.kernel perf_conflict
.regs 8
.smem 4096
.cta 32
    S2R r0, %tid_x
    SHL r1, r0, #7
    STS [r1], r0
    BAR
    LDS r2, [r1]
    STG [r1], r2
    EXIT
""",
}


@pytest.mark.parametrize("rule", sorted(PERF_FIXTURES))
def test_perf_rule_fires(rule):
    report = lint_kernel(assemble(PERF_FIXTURES[rule]))
    hits = [f for f in report.findings if f.rule == rule]
    assert hits and all(f.severity == PERF for f in hits)


def test_low_ilp_low_occupancy_fires_on_dependent_miss_chain():
    # One dependent DRAM round trip per 5 issue slots, 32-thread CTAs:
    # residency tops out far below the warp slots, latency is unhidable.
    report = lint_kernel(assemble(PERF_FIXTURES["uncoalesced-global"]))
    assert any(f.rule == "low-ilp-low-occupancy" for f in report.findings)


def test_perf_findings_never_fail_even_strict():
    report = lint_kernel(assemble(PERF_FIXTURES["uncoalesced-global"]))
    assert report.perf
    assert report.ok(strict=True)


def test_report_to_dict_roundtrips_findings():
    report = lint_kernel(assemble(PERF_FIXTURES["shared-bank-conflict"]))
    payload = report.to_dict(strict=True)
    assert payload["kernel"] == "perf_conflict"
    assert payload["ok"] is True
    rules = {f["rule"] for f in payload["findings"]}
    assert "shared-bank-conflict" in rules
    for f in payload["findings"]:
        assert set(f) == {"kernel", "rule", "severity", "pc", "message"}


# -- acceptance: the registry is clean ---------------------------------------


@pytest.mark.parametrize("bench", all_benchmarks(), ids=lambda b: b.name)
def test_registry_kernel_lints_clean_strict(bench):
    report = lint_kernel(bench.kernel)
    assert report.ok(strict=True), "\n".join(
        str(f) for f in report.errors + report.warnings)


# -- strict mode in the assembler and builder --------------------------------


def test_assemble_strict_rejects_broken_kernel():
    with pytest.raises(KernelValidationError, match="shared-oob"):
        assemble(BROKEN["shared-oob"], strict=True)


def test_assemble_strict_accepts_clean_kernel():
    text = """
.kernel ok
.regs 4
.cta 32
    S2R r0, %tid_x
    SHL r1, r0, #2
    STG [r1], r0
    EXIT
"""
    kernel = assemble(text, strict=True)
    assert kernel.name == "ok"


def test_builder_strict_rejects_divergent_barrier():
    b = KernelBuilder("bad", regs_per_thread=8, cta_dim=(64, 1, 1))
    b.s2r(0, "tid_x")
    b.setp("lt", 1, 0, 32.0)
    b.bra("skip", pred=1, pred_neg=True)
    b.bar()
    b.label("skip")
    b.exit()
    with pytest.raises(KernelValidationError, match="barrier-divergence"):
        b.build(strict=True)


def test_builder_strict_accepts_clean_kernel():
    b = KernelBuilder("ok", regs_per_thread=4, cta_dim=(32, 1, 1))
    b.s2r(0, "tid_x")
    b.shl(1, 0, 2.0)
    b.stg(1, 0)
    b.exit()
    assert b.build(strict=True).name == "ok"
