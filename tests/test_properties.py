"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.geomean import geomean
from repro.core.occupancy import occupancy
from repro.isa.kernel import KernelBuilder
from repro.sim.cache import SetAssocCache
from repro.sim.config import GPUConfig
from repro.sim.dram import DramModel
from repro.sim.ldst import bank_conflict_passes, coalesce
from repro.sim.warp import FULL_MASK, array_to_mask, mask_to_array

masks = st.integers(min_value=0, max_value=FULL_MASK)
addr_arrays = st.lists(
    st.integers(min_value=0, max_value=1 << 20).map(lambda v: v * 4),
    min_size=1, max_size=32,
).map(lambda xs: np.array(xs, dtype=np.int64))


@given(masks)
def test_mask_roundtrip(mask):
    assert array_to_mask(mask_to_array(mask)) == mask


@given(masks)
def test_mask_popcount_matches(mask):
    assert mask_to_array(mask).sum() == mask.bit_count()


@given(addr_arrays)
def test_coalesce_covers_every_address(addrs):
    segments = coalesce(addrs, 128)
    for addr in addrs:
        base = (addr // 128) * 128
        assert base in segments


@given(addr_arrays)
def test_coalesce_segment_count_bounds(addrs):
    segments = coalesce(addrs, 128)
    assert 1 <= len(segments) <= len(addrs)
    assert segments == sorted(set(segments))
    assert all(s % 128 == 0 for s in segments)


@given(addr_arrays)
def test_coalesce_monotone_in_line_size(addrs):
    small = coalesce(addrs, 128)
    large = coalesce(addrs, 256)
    assert len(large) <= len(small)


@given(addr_arrays)
def test_bank_conflict_bounds(addrs):
    passes = bank_conflict_passes(addrs, 32)
    distinct_words = len(np.unique(addrs // 4))
    assert 1 <= passes <= min(32 * 32, distinct_words) or passes <= distinct_words
    # Broadcast: all-same address is always one pass.
    same = np.full(32, addrs[0], dtype=np.int64)
    assert bank_conflict_passes(same, 32) == 1


@given(st.lists(st.integers(min_value=0, max_value=4096), min_size=1, max_size=300))
def test_cache_matches_reference_lru(line_indices):
    """The tag array must behave exactly like a reference LRU model."""
    line = 128
    cache = SetAssocCache(size_bytes=4 * 2 * line, assoc=2, line_bytes=line)  # 4 sets
    reference: dict[int, list[int]] = {s: [] for s in range(4)}
    for idx in line_indices:
        addr = idx * line
        set_idx = idx % 4
        ref_set = reference[set_idx]
        expected_hit = addr in ref_set
        assert cache.access(addr) == expected_hit
        if expected_hit:
            ref_set.remove(addr)
        elif len(ref_set) == 2:
            ref_set.pop(0)
        ref_set.append(addr)


@given(st.lists(st.tuples(st.integers(0, 7), st.integers(0, 1000)), min_size=1, max_size=50))
def test_dram_completions_monotone_per_channel(requests):
    cfg = GPUConfig().with_(dram_channels=2)
    dram = DramModel(cfg)
    last_start: dict[int, int] = {}
    requests = sorted(requests, key=lambda r: r[1])
    for line_idx, earliest in requests:
        addr = line_idx * cfg.line_bytes
        channel = dram.channel_of(addr)
        done = dram.access(addr, earliest)
        assert done >= earliest + cfg.dram_latency
        if channel in last_start:
            assert done >= last_start[channel]  # FCFS per channel
        last_start[channel] = done


@given(
    st.integers(min_value=1, max_value=64),
    st.integers(min_value=32, max_value=1024),
    st.integers(min_value=0, max_value=49152),
)
def test_occupancy_baseline_respects_all_limits(regs, threads, smem):
    b = KernelBuilder("k", regs_per_thread=regs, smem_bytes=smem, cta_dim=(threads, 1, 1))
    b.exit()
    kernel = b.build()
    cfg = GPUConfig()
    occ = occupancy(kernel, cfg)
    n = occ.baseline_ctas
    assert n <= cfg.max_ctas_per_sm
    assert n * occ.warps_per_cta <= cfg.max_warps_per_sm
    assert n * threads <= cfg.max_threads_per_sm
    assert n * regs * threads <= cfg.registers_per_sm
    assert n * smem <= cfg.smem_per_sm
    # One more CTA must violate something (maximality), unless unbounded.
    m = n + 1
    assert (
        m > cfg.max_ctas_per_sm
        or m * occ.warps_per_cta > cfg.max_warps_per_sm
        or m * threads > cfg.max_threads_per_sm
        or m * regs * threads > cfg.registers_per_sm
        or m * smem > cfg.smem_per_sm
    )


@given(st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=20))
def test_geomean_bounds(values):
    gm = geomean(values)
    assert min(values) <= gm * (1 + 1e-9)
    assert gm <= max(values) * (1 + 1e-9)


@given(st.floats(min_value=0.01, max_value=100.0), st.integers(1, 10))
def test_geomean_of_constant(value, count):
    assert geomean([value] * count) == np.float64(value).item() or abs(geomean([value] * count) - value) < 1e-9
