"""Architecture-level behaviour of Virtual Thread on real kernels."""

import numpy as np
import pytest

from repro.analysis.runner import run_benchmark
from repro.kernels import get
from repro.sim.config import scaled_fermi


def cfg(arch, **over):
    return scaled_fermi(num_sms=1, arch=arch, **over)


def test_vt_speeds_up_latency_bound_kernel():
    bench = get("stride")
    base = run_benchmark(bench, cfg("baseline"), scale=0.5)
    vt = run_benchmark(bench, cfg("vt"), scale=0.5)
    assert vt.cycles < base.cycles * 0.85  # at least +18%
    assert vt.stats.total_swaps > 0


def test_vt_matches_baseline_on_capacity_limited():
    for name in ("mm_tiled", "regheavy"):
        bench = get(name)
        base = run_benchmark(bench, cfg("baseline"), scale=0.5)
        vt = run_benchmark(bench, cfg("vt"), scale=0.5)
        assert vt.cycles == base.cycles, name  # no headroom -> identical schedule
        assert vt.stats.total_swaps == 0, name


def test_vt_bounded_by_ideal_on_stride():
    bench = get("stride")
    vt = run_benchmark(bench, cfg("vt"), scale=0.5)
    ideal = run_benchmark(bench, cfg("ideal-sched"), scale=0.5)
    # The swap mechanism cannot beat free enlarged scheduling structures by
    # more than noise.
    assert vt.cycles >= ideal.cycles * 0.95


def test_vt_multiplier_one_degenerates_to_baseline():
    bench = get("stride")
    base = run_benchmark(bench, cfg("baseline"), scale=0.5)
    vt1 = run_benchmark(bench, cfg("vt", vt_max_resident_multiplier=1.0), scale=0.5)
    assert vt1.stats.total_swaps == 0
    assert vt1.cycles == base.cycles


def test_vt_exposes_more_resident_warps():
    bench = get("stride")
    base = run_benchmark(bench, cfg("baseline"), scale=0.5)
    vt = run_benchmark(bench, cfg("vt"), scale=0.5)
    assert vt.stats.avg_resident_warps > base.stats.avg_resident_warps * 1.5
    # But schedulable (active) warps still respect the scheduling limit.
    assert vt.stats.avg_schedulable_warps <= 48


def test_huge_swap_cost_erases_gains():
    bench = get("stride")
    base = run_benchmark(bench, cfg("baseline"), scale=0.5)
    cheap = run_benchmark(bench, cfg("vt"), scale=0.5)
    expensive = run_benchmark(
        bench,
        cfg("vt", vt_swap_out_base=512, vt_swap_out_per_warp=64,
            vt_swap_in_base=512, vt_swap_in_per_warp=64),
        scale=0.5,
    )
    assert cheap.cycles < expensive.cycles


def test_vt_and_baseline_same_instruction_count():
    bench = get("kmeans")
    base = run_benchmark(bench, cfg("baseline"), scale=0.5)
    vt = run_benchmark(bench, cfg("vt"), scale=0.5)
    assert base.stats.instructions == vt.stats.instructions
    assert base.stats.thread_instructions == vt.stats.thread_instructions


def test_swap_accounting_consistent():
    bench = get("stride")
    vt = run_benchmark(bench, cfg("vt"), scale=0.5)
    swaps = vt.stats.total_swaps
    busy = sum(s.swap_busy_cycles for s in vt.stats.sm_stats)
    assert swaps > 0
    assert busy >= swaps  # every swap occupies the engine at least a cycle


def test_barrier_heavy_kernel_swaps_safely():
    bench = get("pathfinder")
    base = run_benchmark(bench, cfg("baseline"), scale=0.5)
    vt = run_benchmark(bench, cfg("vt"), scale=0.5)
    # Correctness is asserted inside run_benchmark; VT must not deadlock
    # or regress badly on barrier-dense code.
    assert vt.cycles <= base.cycles * 1.1
