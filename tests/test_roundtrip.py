"""Round-trip property: ``assemble(kernel.disassemble())`` reproduces every
registry kernel exactly — instructions, resource metadata, and labels."""

import pytest

from repro.isa.assembler import assemble
from repro.isa.instruction import Imm, MemRef, Reg
from repro.isa.kernel import KernelBuilder
from repro.kernels.registry import all_benchmarks


@pytest.mark.parametrize("bench", all_benchmarks(), ids=lambda b: b.name)
def test_registry_kernel_roundtrips(bench):
    kernel = bench.kernel
    rebuilt = assemble(kernel.disassemble())
    assert rebuilt.name == kernel.name
    assert rebuilt.instrs == kernel.instrs
    assert rebuilt.regs_per_thread == kernel.regs_per_thread
    assert rebuilt.smem_bytes == kernel.smem_bytes
    assert rebuilt.cta_dim == kernel.cta_dim
    # Original labels survive; synthesized L<pc> labels may be added for
    # branch targets that had none.
    assert set(kernel.labels.items()) <= set(rebuilt.labels.items())


def test_disassembly_is_valid_assembler_input_twice():
    kernel = all_benchmarks()[0].kernel
    once = assemble(kernel.disassemble())
    twice = assemble(once.disassemble())
    assert twice.instrs == kernel.instrs


def test_synthesized_labels_for_builder_kernels():
    b = KernelBuilder("loopy", regs_per_thread=8)
    b.movi(0, 0)
    b.label("top")
    b.iadd(0, 0, Imm(1))
    b.setp("lt", 1, 0, Imm(4))
    b.bra("top", pred=1)
    b.exit()
    kernel = b.build()
    listing = kernel.disassemble()
    assert "top:" in listing
    rebuilt = assemble(listing)
    assert rebuilt.instrs == kernel.instrs


def test_negative_memref_offset_roundtrips():
    b = KernelBuilder("neg", regs_per_thread=4)
    b.movi(0, 16)
    b.ldg(1, 0, offset=-8)
    b.stg(0, 1, offset=-4)
    b.exit()
    kernel = b.build()
    rebuilt = assemble(kernel.disassemble())
    assert rebuilt.instrs == kernel.instrs
    memref = rebuilt.instrs[1].srcs[0]
    assert isinstance(memref, MemRef) and memref.offset == -8


def test_float_and_int_immediates_roundtrip():
    b = KernelBuilder("imms", regs_per_thread=4)
    b.movi(0, 5)
    b.movi(1, 2.5)
    b.movi(2, 1e-05)
    b.fmul(3, Reg(1), Imm(-3.0))
    b.stg(0, 3)
    b.exit()
    kernel = b.build()
    rebuilt = assemble(kernel.disassemble())
    assert rebuilt.instrs == kernel.instrs


@pytest.mark.parametrize("seed", range(12))
def test_generated_kernel_roundtrips(seed):
    """The round-trip property holds over the fuzz grammar, not just the
    registry: assemble(disassemble(k)) is exact for generated kernels."""
    from repro.fuzz.generator import generate_spec, materialize

    kernel = materialize(generate_spec(seed)).kernel
    rebuilt = assemble(kernel.disassemble())
    assert rebuilt.name == kernel.name
    assert rebuilt.instrs == kernel.instrs
    assert rebuilt.regs_per_thread == kernel.regs_per_thread
    assert rebuilt.smem_bytes == kernel.smem_bytes
    assert rebuilt.cta_dim == kernel.cta_dim
    # And the round trip is a fixed point.
    assert assemble(rebuilt.disassemble()).instrs == kernel.instrs


def test_predicates_roundtrip():
    b = KernelBuilder("preds", regs_per_thread=4, cta_dim=(64, 1, 1))
    b.s2r(0, "tid_x")
    b.setp("ge", 1, 0, Imm(32))
    b.movi(2, 1.0, pred=1)
    b.movi(2, 2.0, pred=1, pred_neg=True)
    b.stg(0, 2)
    b.exit()
    kernel = b.build()
    rebuilt = assemble(kernel.disassemble())
    assert rebuilt.instrs == kernel.instrs
