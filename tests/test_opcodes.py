"""Opcode metadata-table integrity."""

import pytest

from repro.isa.opcodes import Op, OpClass, OPCODE_INFO


def test_every_opcode_has_info():
    assert set(OPCODE_INFO) == set(Op)


@pytest.mark.parametrize("op", list(Op))
def test_info_shape(op):
    info = OPCODE_INFO[op]
    assert info.op is op
    assert isinstance(info.op_class, OpClass)
    assert 0 <= info.num_srcs <= 3


def test_branch_flags():
    assert OPCODE_INFO[Op.BRA].is_branch
    assert not OPCODE_INFO[Op.BRA].has_dst
    assert not any(OPCODE_INFO[op].is_branch for op in Op if op is not Op.BRA)


def test_memory_classification():
    global_ops = {Op.LDG, Op.STG, Op.ATOMG_ADD, Op.ATOMG_MAX}
    shared_ops = {Op.LDS, Op.STS, Op.ATOMS_ADD}
    for op in global_ops:
        assert OPCODE_INFO[op].op_class is OpClass.MEM_GLOBAL
        assert OPCODE_INFO[op].is_mem
    for op in shared_ops:
        assert OPCODE_INFO[op].op_class is OpClass.MEM_SHARED
        assert OPCODE_INFO[op].is_mem
    for op in Op:
        if op not in global_ops | shared_ops:
            assert not OPCODE_INFO[op].is_mem


def test_store_and_atomic_flags():
    assert OPCODE_INFO[Op.STG].is_store
    assert OPCODE_INFO[Op.STS].is_store
    assert not OPCODE_INFO[Op.LDG].is_store
    for op in (Op.ATOMG_ADD, Op.ATOMS_ADD, Op.ATOMG_MAX):
        assert OPCODE_INFO[op].is_atomic
        assert OPCODE_INFO[op].has_dst  # atomics return the old value


def test_three_source_ops():
    for op in (Op.IMAD, Op.FFMA, Op.SEL):
        assert OPCODE_INFO[op].num_srcs == 3


def test_sfu_ops_use_sfu_class():
    for op in (Op.IDIV, Op.IREM, Op.FDIV, Op.FSQRT, Op.FEXP):
        assert OPCODE_INFO[op].op_class is OpClass.SFU


def test_control_ops_have_no_dst():
    for op in (Op.BRA, Op.BAR, Op.EXIT, Op.NOP):
        assert OPCODE_INFO[op].op_class is OpClass.CTRL
        assert not OPCODE_INFO[op].has_dst
