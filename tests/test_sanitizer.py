"""The per-cycle invariant sanitizer: clean runs stay clean, corruption
is caught the cycle it happens."""

import pytest

from repro.kernels import get
from repro.sim.config import scaled_fermi
from repro.sim.cta import CTAState
from repro.sim.gpu import GPU
from repro.sim.sanitizer import InvariantViolation, Sanitizer
from repro.sim.smcore import SMCore


def _run(bench_name: str, arch: str, scale: float = 0.25, **overrides):
    bench = get(bench_name)
    prep = bench.prepare(scale)
    cfg = scaled_fermi(num_sms=1, arch=arch, sanitize=True, **overrides)
    gpu = GPU(cfg)
    result = gpu.launch(bench.kernel, prep.grid_dim, prep.gmem, prep.params)
    prep.check(result)
    return result


@pytest.mark.parametrize("arch", ["baseline", "vt", "ideal-sched"])
@pytest.mark.parametrize("name", ["stride", "reduction", "histogram", "mm_tiled"])
def test_clean_runs_pass_sanitizer(name, arch):
    result = _run(name, arch)
    assert result.stats.cycles > 0


@pytest.mark.slow
@pytest.mark.parametrize("arch", ["baseline", "vt", "ideal-sched"])
def test_whole_suite_clean_under_sanitizer(arch):
    """Acceptance sweep: every registered benchmark runs clean with the
    sanitizer enabled under this architecture."""
    from repro.kernels.registry import all_benchmarks

    for bench in all_benchmarks():
        prep = bench.prepare(0.25)
        gpu = GPU(scaled_fermi(num_sms=1, arch=arch, sanitize=True))
        result = gpu.launch(bench.kernel, prep.grid_dim, prep.gmem, prep.params)
        prep.check(result)


def test_sanitizer_runs_every_cycle(monkeypatch):
    """The checker is really invoked per (non-idle) SM cycle."""
    seen = []
    original = Sanitizer.check_sm

    def spying(self, sm, now):
        seen.append(now)
        original(self, sm, now)

    monkeypatch.setattr(Sanitizer, "check_sm", spying)
    result = _run("stride", "vt")
    assert len(seen) > 1000
    assert result.stats.cycles >= len(seen) - 1


def _launch_corrupted(corruption, arch="baseline", bench_name="vecadd",
                      scale=0.25):
    """Run with a step hook that corrupts SM state mid-flight; the
    sanitizer must notice.  ``corruption`` may return False to say "not
    applicable this cycle, try again later" (e.g. waiting for a CTA to
    reach a particular state)."""
    bench = get(bench_name)
    prep = bench.prepare(scale)
    cfg = scaled_fermi(num_sms=1, arch=arch, sanitize=True)
    gpu = GPU(cfg)

    original_step = SMCore.step
    fired = []

    def corrupting_step(self, now):
        if now >= 200 and not fired:
            if corruption(self) is not False:
                fired.append(now)
        return original_step(self, now)

    SMCore.step = corrupting_step
    try:
        with pytest.raises(InvariantViolation) as excinfo:
            gpu.launch(bench.kernel, prep.grid_dim, prep.gmem, prep.params)
    finally:
        SMCore.step = original_step
    assert fired, "corruption hook never ran; test is vacuous"
    return excinfo.value


def test_detects_register_leak():
    exc = _launch_corrupted(lambda sm: setattr(
        sm.manager.resources, "regs_used", sm.manager.resources.regs_used + 64))
    assert exc.invariant == "capacity-accounting"
    assert exc.sm_id == 0
    assert exc.cycle == 200


def test_detects_double_release():
    def corrupt(sm):
        sm.manager.resources.release(sm.manager.resident[0])

    exc = _launch_corrupted(corrupt)
    assert exc.invariant in ("capacity-accounting", "slot-accounting")


def test_detects_smem_overcommit():
    exc = _launch_corrupted(lambda sm: setattr(
        sm.manager.resources, "smem_used", sm.cfg.smem_per_sm + 1))
    # Accounting disagreement is noticed before the capacity ceiling.
    assert exc.invariant in ("capacity-accounting", "smem-capacity")


def test_detects_illegal_vt_edge():
    def corrupt(sm):
        for cta in sm.manager.resident:
            if cta.state is CTAState.ACTIVE:
                cta.state = CTAState.SWAP_IN  # ACTIVE -> SWAP_IN: illegal
                return None
        return False

    exc = _launch_corrupted(corrupt, arch="vt", bench_name="stride")
    assert exc.invariant in ("state-machine", "swap-engine")


def test_detects_orphaned_swap_state():
    def corrupt(sm):
        for cta in sm.manager.resident:
            if cta.state is CTAState.INACTIVE:
                cta.state = CTAState.SWAP_IN  # legal edge, but no engine entry
                return None
        return False  # wait for a cycle where an INACTIVE CTA exists

    exc = _launch_corrupted(corrupt, arch="vt", bench_name="stride", scale=0.5)
    assert exc.invariant == "swap-engine"


def test_detects_scoreboard_leak():
    from repro.sim.faults import NEVER

    def corrupt(sm):
        warp = sm.manager.resident[0].warps[0]
        warp.scoreboard.set_pending(0, NEVER, True)

    exc = _launch_corrupted(corrupt)
    assert exc.invariant == "scoreboard-liveness"


def test_violation_is_structured():
    exc = InvariantViolation("register-capacity", "boom", sm_id=3, cycle=77,
                             resource="registers")
    assert exc.sm_id == 3 and exc.cycle == 77
    assert exc.invariant == "register-capacity"
    assert "sm3" in str(exc) and "77" in str(exc)


# -- execution cross-check against the static analysis -----------------------


def _exec_fixtures():
    import numpy as np
    from types import SimpleNamespace

    from repro.isa.assembler import assemble

    kernel = assemble("""
.kernel xcheck
.regs 8
.smem 64
.cta 16
    S2R r0, %tid_x
    SHL r1, r0, #2
    STS [r1], r0
    BAR
    LDS r2, [r1]
    STG [r1], r2
    EXIT
""")
    sanitizer = Sanitizer(scaled_fermi(num_sms=1, sanitize=True))
    sm = SimpleNamespace(sm_id=0)
    warp = SimpleNamespace(cta=SimpleNamespace(kernel=kernel))

    def result(space=None, addresses=None):
        return SimpleNamespace(
            mem_space=space,
            addresses=None if addresses is None else np.asarray(addresses))

    return kernel, sanitizer, sm, warp, result


def test_check_exec_accepts_in_bounds_access():
    kernel, sanitizer, sm, warp, result = _exec_fixtures()
    sanitizer.check_exec(sm, warp, 2, kernel.instrs[2],
                         result("shared", [0, 4, 60]), now=5)
    sanitizer.check_exec(sm, warp, 0, kernel.instrs[0], result(), now=5)


def test_check_exec_rejects_shared_address_outside_declaration():
    kernel, sanitizer, sm, warp, result = _exec_fixtures()
    with pytest.raises(InvariantViolation) as excinfo:
        sanitizer.check_exec(sm, warp, 2, kernel.instrs[2],
                             result("shared", [0, 64]), now=5)
    assert excinfo.value.invariant == "exec-shared-bound"


def test_check_exec_rejects_address_outside_static_proof():
    # Bytes 60..64 fit the declaration, but the static analysis proved the
    # STS at pc 2 only ever touches 4*tid for tid < 16, i.e. up to byte 60;
    # an *unexpected* in-declaration address is still a cross-check failure.
    kernel, sanitizer, sm, warp, result = _exec_fixtures()
    kernel.smem_bytes = 128
    with pytest.raises(InvariantViolation) as excinfo:
        sanitizer.check_exec(sm, warp, 2, kernel.instrs[2],
                             result("shared", [100]), now=5)
    assert excinfo.value.invariant == "exec-shared-bound"


def test_check_exec_rejects_statically_unwritten_register():
    from types import SimpleNamespace

    from repro.isa.assembler import assemble

    kernel = assemble("""
.kernel deadwrite
.regs 8
.cta 16
    BRA end
    MOV r5, #1
end:
    EXIT
""")
    sanitizer = Sanitizer(scaled_fermi(num_sms=1, sanitize=True))
    sm = SimpleNamespace(sm_id=0)
    warp = SimpleNamespace(cta=SimpleNamespace(kernel=kernel))
    result = SimpleNamespace(mem_space=None, addresses=None)
    # pc 1 is unreachable, so the static write-set excludes r5: observing
    # the write means control flow escaped the verified CFG.
    with pytest.raises(InvariantViolation) as excinfo:
        sanitizer.check_exec(sm, warp, 1, kernel.instrs[1], result, now=3)
    assert excinfo.value.invariant == "exec-register-bound"


def test_check_exec_accepts_predicted_access_cost():
    kernel, sanitizer, sm, warp, result = _exec_fixtures()
    # Full-mask coalesced STG: exactly the one transaction the static
    # coalescing analysis predicts.
    sanitizer.check_exec(sm, warp, 5, kernel.instrs[5],
                         result("global", [4 * i for i in range(16)]), now=5)


def test_check_exec_rejects_access_cost_above_static_bound():
    kernel, sanitizer, sm, warp, result = _exec_fixtures()
    scattered = [128 * i for i in range(16)]  # one line per lane
    with pytest.raises(InvariantViolation) as excinfo:
        sanitizer.check_exec(sm, warp, 5, kernel.instrs[5],
                             result("global", scattered), now=5)
    assert excinfo.value.invariant == "exec-access-cost"
    assert "transactions" in str(excinfo.value)


def test_check_exec_partial_mask_checks_upper_bound_only():
    kernel, sanitizer, sm, warp, result = _exec_fixtures()
    # A divergence-thinned single-lane access may touch fewer segments
    # than the full-mask prediction; the upper bound still applies.
    sanitizer.check_exec(sm, warp, 5, kernel.instrs[5],
                         result("global", [8]), now=5)
    with pytest.raises(InvariantViolation):
        sanitizer.check_exec(sm, warp, 5, kernel.instrs[5],
                             result("global", [0, 512]), now=5)


def test_check_exec_invoked_during_runs(monkeypatch):
    seen = []
    original = Sanitizer.check_exec

    def spying(self, sm, warp, pc, instr, result, now):
        seen.append(pc)
        return original(self, sm, warp, pc, instr, result, now)

    monkeypatch.setattr(Sanitizer, "check_exec", spying)
    _run("reduction", "baseline")
    assert len(seen) > 0
