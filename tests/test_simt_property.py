"""Property test: random structured programs execute identically to a
straightforward per-thread interpreter.

This is the strongest functional check on the SIMT stack: hypothesis
generates random if/else-and-loop programs; we execute them (a) through
the full warp/SIMT machinery and (b) per-thread with plain Python, and
the architectural register state must match exactly.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.kernel import KernelBuilder
from repro.sim.cta import CTA
from repro.sim.config import GPUConfig
from repro.sim.exec import functional_step
from repro.sim.memory import GlobalMemory


def build_program(choices):
    """A structured random program over r0 (tid) and r1 (accumulator).

    ``choices`` is a list of (kind, threshold) pairs; each generates an
    if/else diamond or a bounded loop, all operating on r1.
    """
    b = KernelBuilder("prop", regs_per_thread=6, cta_dim=(32, 1, 1))
    b.s2r(0, "tid_x")
    b.movi(1, 0)
    for i, (kind, threshold) in enumerate(choices):
        if kind == 0:  # if tid < threshold: r1 += 3 else r1 += 5
            b.setp("lt", 2, 0, float(threshold))
            b.bra(f"then{i}", pred=2)
            b.iadd(1, 1, 5.0)
            b.bra(f"join{i}")
            b.label(f"then{i}")
            b.iadd(1, 1, 3.0)
            b.label(f"join{i}")
        elif kind == 1:  # data-dependent loop: r1 += (tid % threshold) + 1 times
            b.irem(3, 0, float(threshold))
            b.iadd(3, 3, 1.0)
            b.movi(4, 0)
            b.label(f"loop{i}")
            b.iadd(1, 1, 1.0)
            b.iadd(4, 4, 1.0)
            b.setp("lt", 2, 4, 3)
            b.bra(f"loop{i}", pred=2)
        else:  # predicated add
            b.setp("ge", 2, 0, float(threshold))
            b.iadd(1, 1, 7.0, pred=2)
    b.exit()
    return b.build()


def reference_exec(choices):
    """Per-thread scalar interpretation of the same program."""
    out = np.zeros(32)
    for tid in range(32):
        acc = 0
        for kind, threshold in choices:
            if kind == 0:
                acc += 3 if tid < threshold else 5
            elif kind == 1:
                trips = (tid % threshold) + 1
                acc += trips
            else:
                if tid >= threshold:
                    acc += 7
    # careful: accumulate across all choices
        out[tid] = acc
    return out


def simt_exec(kernel):
    cfg = GPUConfig()
    cta = CTA(0, (0, 0, 0), kernel, (1, 1, 1), (), cfg, 0)
    warp = cta.warps[0]
    gmem = GlobalMemory(4096)
    steps = 0
    while not warp.finished:
        instr = kernel.instrs[warp.pc]
        functional_step(warp, instr, gmem)
        steps += 1
        assert steps < 10000, "runaway program"
    return warp.regs[1].copy()


program_choices = st.lists(
    st.tuples(st.integers(0, 2), st.integers(1, 31)),
    min_size=1,
    max_size=5,
)


@settings(max_examples=60, deadline=None)
@given(program_choices)
def test_simt_matches_per_thread_reference(choices):
    kernel = build_program(choices)
    got = simt_exec(kernel)
    want = reference_exec(choices)
    assert np.array_equal(got, want), (choices, got, want)
