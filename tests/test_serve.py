"""The ``repro serve`` job service: request validation, dedupe/coalescing,
bounded-queue backpressure, cache serving, restart resume, and the HTTP
surface.  (Server crash/kill chaos lives in tests/test_store_chaos.py.)"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.serve.http import make_server
from repro.serve.service import BadRequest, JobService, QueueFull, parse_request

SPEC = {"benchmark": "vecadd", "arch": "baseline", "scale": 0.25, "sms": 1}


@pytest.fixture
def service(tmp_path):
    svc = JobService(tmp_path / "store", jobs=0, queue_limit=8)
    yield svc
    svc.shutdown()


# ---------------------------------------------------------------------------
# request validation
# ---------------------------------------------------------------------------

def test_parse_request_builds_the_right_cell():
    cell = parse_request({"benchmark": "vecadd", "arch": "vt", "scale": 0.5,
                          "sms": 1, "seed": 3, "dram_latency": 600})
    assert cell.benchmark == "vecadd"
    assert cell.cfg.arch == "vt"
    assert cell.cfg.num_sms == 1
    assert cell.cfg.dram_latency == 600
    assert cell.scale == 0.5
    assert cell.workload_seed == 3


def test_parse_request_routes_to_parallel_engine():
    """`engine`/`sim_jobs` are plain GPUConfig fields, so a serve job can
    request the sharded engine through the generic override path — and
    must produce stats byte-identical to the serial cell."""
    from repro.analysis.runner import run_benchmark
    from repro.kernels import get

    cell = parse_request({"benchmark": "vecadd", "sms": 4, "scale": 0.25,
                          "engine": "parallel", "sim_jobs": 2})
    assert cell.cfg.engine == "parallel"
    assert cell.cfg.sim_jobs == 2
    par = run_benchmark(get("vecadd"), cell.cfg, scale=cell.scale)
    ref = run_benchmark(get("vecadd"), cell.cfg.with_(engine="serial"),
                        scale=cell.scale)
    assert par.stats.to_dict() == ref.stats.to_dict()


def test_parse_request_fingerprint_matches_sweep_fingerprint():
    # A serve job and a sweep cell for the same work must share a cache key.
    from repro.analysis.journal import cell_fingerprint
    from repro.sim.config import scaled_fermi

    cell = parse_request(dict(SPEC))
    assert cell.fingerprint == cell_fingerprint(
        "vecadd", scaled_fermi(num_sms=1, arch="baseline"), 0.25, 0)


@pytest.mark.parametrize("spec, match", [
    ({}, "missing 'benchmark'"),
    ({"benchmark": "no-such-bench"}, "no-such-bench"),
    ({"benchmark": "vecadd", "arch": "warp-drive"}, "unknown arch"),
    ({"benchmark": "vecadd", "scale": -1}, "scale"),
    ({"benchmark": "vecadd", "scale": "wide"}, "bad numeric"),
    ({"benchmark": "vecadd", "typo_knob": 1}, "typo_knob"),
    ("just a string", "must be an object"),
])
def test_parse_request_rejects_malformed_specs(spec, match):
    with pytest.raises(BadRequest, match=match):
        parse_request(spec)


# ---------------------------------------------------------------------------
# service lifecycle: queue -> coalesce -> compute -> cache
# ---------------------------------------------------------------------------

def test_submit_coalesce_compute_and_cache(service):
    outcome1, view1 = service.submit(dict(SPEC))
    assert outcome1 == "queued"
    # identical concurrent submission attaches to the in-flight job
    outcome2, view2 = service.submit(dict(SPEC))
    assert outcome2 == "coalesced"
    assert view2["fingerprint"] == view1["fingerprint"]
    assert view2["waiters"] == 2

    done = service.wait(view1["fingerprint"], timeout=120)
    assert done["state"] == "done" and done["ok"]
    assert done["source"] == "computed"
    assert done["stats_sha256"].startswith("sha256:")

    # resubmitting completed work is a pure cache read, byte-identical
    outcome3, view3 = service.submit(dict(SPEC))
    assert outcome3 == "cached"
    assert view3["source"] == "cache"
    assert view3["stats"] == done["stats"]
    assert view3["stats_sha256"] == done["stats_sha256"]
    stats = service.stats()
    assert stats["coalesced"] == 1
    assert stats["cache_serves"] == 1
    assert service.store.stats.puts == 1


def test_restart_serves_predecessors_results(tmp_path):
    first = JobService(tmp_path / "store", jobs=0, queue_limit=8)
    _, view = first.submit(dict(SPEC))
    done = first.wait(view["fingerprint"], timeout=120)
    assert done["ok"]
    first.shutdown()

    second = JobService(tmp_path / "store", jobs=0, queue_limit=8)
    try:
        outcome, view2 = second.submit(dict(SPEC))
        assert outcome == "cached"
        assert view2["stats_sha256"] == done["stats_sha256"]
        # polling a fingerprint this process never ran also works
        polled = second.job_view(view["fingerprint"])
        assert polled is not None and polled["state"] == "done"
        # a served result always has an audit artifact on disk
        assert second.store.read_artifact(view["fingerprint"]) is not None
    finally:
        second.shutdown()


def test_bounded_queue_refuses_overflow_explicitly(tmp_path):
    # A huge linger keeps everything queued so admission control is what
    # we measure, not dispatch speed.
    service = JobService(tmp_path / "store", jobs=0, queue_limit=2,
                         batch_linger=300.0)
    try:
        specs = [{"benchmark": b, "arch": a, "scale": 0.25, "sms": 1}
                 for b in ("stride", "hotspot") for a in ("baseline", "vt")]
        outcomes = []
        for spec in specs:
            try:
                outcomes.append(service.submit(spec)[0])
            except QueueFull as exc:
                assert "capacity" in str(exc)
                outcomes.append("rejected")
        assert outcomes == ["queued", "queued", "rejected", "rejected"]
        stats = service.stats()
        assert stats["rejected"] == 2
        assert stats["queue_depth"] == 2
        # coalescing still works at capacity: no new queue slot needed
        assert service.submit(specs[0])[0] == "coalesced"
    finally:
        service.shutdown()


def test_failed_job_is_retried_on_resubmit(tmp_path, monkeypatch):
    service = JobService(tmp_path / "store", jobs=0, queue_limit=8,
                         batch_linger=300.0)
    try:
        _, view = service.submit(dict(SPEC))
        fp = view["fingerprint"]
        # forge a terminal failure (failures are never stored)
        job = service._jobs[fp]
        from repro.analysis.orchestrator import _failed_record

        job.state = "done"
        job.record = _failed_record(job.cell, "wall-timeout", "deadline")
        service._queue.clear()
        outcome, view2 = service.submit(dict(SPEC))
        assert outcome == "queued"  # a fresh attempt, not the stale failure
        assert view2["state"] == "queued"
    finally:
        service.shutdown()


# ---------------------------------------------------------------------------
# HTTP surface
# ---------------------------------------------------------------------------

@pytest.fixture
def http_base(service):
    server = make_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield f"http://127.0.0.1:{server.server_address[1]}"
    server.shutdown()
    server.server_close()


def _request(base, method, path, payload=None):
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(base + path, data=data, method=method)
    try:
        with urllib.request.urlopen(request, timeout=120) as response:
            return response.status, json.loads(response.read()), dict(response.headers)
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), dict(error.headers)


def test_http_health_ready_stats(http_base):
    status, body, _ = _request(http_base, "GET", "/v1/healthz")
    assert status == 200 and body["ok"] is True
    status, body, _ = _request(http_base, "GET", "/v1/readyz")
    assert status == 200 and body["ready"] is True
    status, body, _ = _request(http_base, "GET", "/v1/stats")
    assert status == 200 and "queue_depth" in body and "store" in body


def test_http_submit_poll_stream_roundtrip(http_base):
    status, body, _ = _request(http_base, "POST", "/v1/jobs",
                               {"jobs": [dict(SPEC), dict(SPEC)]})
    assert status == 200
    outcomes = [r["outcome"] for r in body["results"]]
    assert outcomes == ["queued", "coalesced"]
    fingerprint = body["results"][0]["job"]["fingerprint"]

    # stream long-polls until done; the final line is the terminal state
    with urllib.request.urlopen(
            http_base + f"/v1/jobs/{fingerprint}/stream", timeout=120) as resp:
        assert resp.headers["Content-Type"] == "application/x-ndjson"
        lines = [json.loads(line) for line in resp.read().splitlines() if line]
    assert lines[-1]["state"] == "done" and lines[-1]["ok"]

    status, body, _ = _request(http_base, "GET", f"/v1/jobs/{fingerprint}")
    assert status == 200 and body["state"] == "done"
    assert body["stats_sha256"] == lines[-1]["stats_sha256"]


def test_http_errors(http_base):
    status, _, _ = _request(http_base, "GET", "/v1/jobs/" + "f" * 16)
    assert status == 404
    status, _, _ = _request(http_base, "GET", "/v1/no-such-route")
    assert status == 404
    status, body, _ = _request(http_base, "POST", "/v1/jobs",
                               {"benchmark": "no-such-bench"})
    assert status == 400
    status, body, _ = _request(http_base, "POST", "/v1/jobs", {"jobs": []})
    assert status == 400


def test_http_backpressure_is_429_with_retry_after(tmp_path):
    service = JobService(tmp_path / "store", jobs=0, queue_limit=1,
                         batch_linger=300.0)
    server = make_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{server.server_address[1]}"
    try:
        specs = [{"benchmark": b, "arch": "baseline", "scale": 0.25, "sms": 1}
                 for b in ("stride", "hotspot", "kmeans")]
        status, body, headers = _request(base, "POST", "/v1/jobs",
                                         {"jobs": specs})
        assert status == 429
        assert headers.get("Retry-After") == "1"
        outcomes = [r["outcome"] for r in body["results"]]
        assert outcomes == ["queued", "rejected", "rejected"]
    finally:
        server.shutdown()
        server.server_close()
        service.shutdown()
