"""Occupancy calculator and limiter classification."""

import pytest

from repro.core.occupancy import LimiterClass, occupancy
from repro.isa.kernel import KernelBuilder
from repro.sim.config import GPUConfig


def kernel(regs=16, smem=0, threads=128, name="k"):
    b = KernelBuilder(name, regs_per_thread=regs, smem_bytes=smem, cta_dim=(threads, 1, 1))
    b.exit()
    return b.build()


def test_cta_slot_limited_kernel():
    # 64-thread, low-register kernel: CTA slots (8) bind first.
    occ = occupancy(kernel(regs=16, threads=64), GPUConfig())
    assert occ.ctas_by_cta_slots == 8
    assert occ.ctas_by_warp_slots == 24
    assert occ.ctas_by_registers == 32
    assert occ.baseline_ctas == 8
    assert occ.limiter is LimiterClass.SCHEDULING
    assert occ.binding_resource == "cta-slots"


def test_register_limited_kernel():
    occ = occupancy(kernel(regs=40, threads=256), GPUConfig())
    assert occ.ctas_by_registers == 3
    assert occ.limiter is LimiterClass.CAPACITY
    assert occ.binding_resource == "registers"
    assert occ.vt_headroom == 1.0  # no VT opportunity


def test_smem_limited_kernel():
    occ = occupancy(kernel(regs=8, smem=16384, threads=64), GPUConfig())
    assert occ.ctas_by_smem == 3
    assert occ.limiter is LimiterClass.CAPACITY
    assert occ.binding_resource == "shared-mem"


def test_warp_slot_limited_kernel():
    occ = occupancy(kernel(regs=8, threads=512), GPUConfig())
    assert occ.ctas_by_warp_slots == 3
    assert occ.ctas_by_thread_slots == 3
    assert occ.scheduling_limit_ctas == 3


def test_balanced_kernel():
    # 256 threads, 20 regs, 1 KiB smem: scheduling (6) == capacity (6).
    occ = occupancy(kernel(regs=20, smem=8192, threads=256), GPUConfig())
    assert occ.scheduling_limit_ctas == occ.capacity_limit_ctas == 6
    assert occ.limiter is LimiterClass.BALANCED


def test_no_smem_is_unbounded():
    occ = occupancy(kernel(smem=0), GPUConfig())
    assert occ.ctas_by_smem >= 10**9


def test_vt_headroom_ratio():
    occ = occupancy(kernel(regs=16, threads=64), GPUConfig())
    assert occ.vt_headroom == pytest.approx(32 / 8)


def test_occupancy_fraction():
    occ = occupancy(kernel(regs=16, threads=64), GPUConfig())
    # 8 CTAs x 2 warps / 48 slots.
    assert occ.occupancy_fraction(GPUConfig()) == pytest.approx(16 / 48)


def test_respects_custom_config():
    cfg = GPUConfig().with_(max_ctas_per_sm=16)
    occ = occupancy(kernel(regs=16, threads=64), cfg)
    assert occ.ctas_by_cta_slots == 16
    assert occ.baseline_ctas == 16


def test_baseline_never_exceeds_any_constraint():
    cfg = GPUConfig()
    for regs in (8, 21, 40):
        for threads in (32, 64, 128, 256, 512):
            for smem in (0, 1024, 12288):
                occ = occupancy(kernel(regs=regs, smem=smem, threads=threads), cfg)
                n = occ.baseline_ctas
                assert n <= cfg.max_ctas_per_sm
                assert n * occ.warps_per_cta <= cfg.max_warps_per_sm
                assert n * threads <= cfg.max_threads_per_sm
                assert n * regs * threads <= cfg.registers_per_sm
                assert n * smem <= cfg.smem_per_sm
