"""Bounded uniform unrolling: race discharge soundness and fallbacks."""

from repro.isa.analysis import affine_solution, races, shared_accesses
from repro.isa.analysis.dataflow import CFGView
from repro.isa.analysis.unroll import (UNROLL_BUDGET, discharge_shared_races,
                                       unrolled_trace)
from repro.isa.assembler import assemble
from repro.isa.analysis.perf import layout_for
from repro.kernels.registry import get


def races_of(kernel, unroll_budget=None):
    cfg = CFGView(kernel.instrs)
    affine, envs = affine_solution(kernel, cfg)
    accesses = shared_accesses(kernel, cfg, affine, envs)
    return races(kernel, cfg, accesses, unroll_budget=unroll_budget)


def test_scan_pingpong_race_discharged():
    # scan's ping-pong buffer index (r XOR 1) widens to unknown under the
    # fixpoint; the concrete unroll proves the read/write halves disjoint
    # in every barrier epoch.
    kernel = get("scan").kernel
    assert [f for f in races_of(kernel) if not f.proven] == []


def test_transpose_tile_race_discharged():
    kernel = get("transpose").kernel
    assert [f for f in races_of(kernel) if not f.proven] == []


def test_budget_starvation_keeps_maybe():
    # With the unroll budget too small to finish the trace, the maybe
    # finding must survive — never a silent "safe".
    kernel = get("scan").kernel
    starved = [f for f in races_of(kernel, unroll_budget=5) if not f.proven]
    assert starved, "budget exhaustion must fall back to maybe"
    assert unrolled_trace(kernel, budget=5) is None
    pairs = [(f.pc_a, f.pc_b) for f in starved]
    assert discharge_shared_races(kernel, pairs, budget=5) == set()


def test_trace_is_uniform_and_epoch_ordered():
    kernel = get("scan").kernel
    trace = unrolled_trace(kernel)
    assert trace is not None and trace
    epochs = [occ.epoch for occ in trace]
    assert epochs == sorted(epochs)
    # The discharged ping-pong sites themselves are unpredicated; the
    # guarded tree idiom (a divergent predicate) is tracked as such.
    shared = [occ for occ in trace
              if kernel.instrs[occ.pc].is_shared_mem and occ.pc in (17, 24)]
    assert shared and all(not occ.predicated for occ in shared)


DIVERGENT = """
.kernel divergent
.regs 8
.smem 256
.cta 32
    S2R r0, %tid_x
    SETP.LT r1, r0, #16
@r1 BRA skip
    STS [r0], r0
skip:
    EXIT
"""


def test_divergent_branch_declines_to_unroll():
    assert unrolled_trace(assemble(DIVERGENT)) is None


def test_param_bound_loop_needs_launch_values():
    bench = get("mm_tiled")
    kernel = bench.kernel
    assert unrolled_trace(kernel) is None  # outer bound is %param5
    layout = layout_for(bench)
    trace = unrolled_trace(kernel, param_values=layout.param_values)
    assert trace is not None and trace


CONSTFOLD = """
.kernel constfold
.regs 8
.smem 256
.cta 32
    S2R r0, %tid_x
    SHL r1, r0, #2
    MOV r2, #0
    MOV r3, #0
loop:
    XOR r3, r3, #1
    SHL r4, r3, #6
    IADD r4, r4, r1
    STS [r4], r0
    BAR
    IADD r2, r2, #1
    SETP.LT r5, r2, #3
@r5 BRA loop
    EXIT
"""


def test_xor_pingpong_constant_folds():
    # The XOR ping-pong the affine domain tops out on: the unroll folds
    # it concretely, alternating the 64-byte halves across epochs.
    trace = unrolled_trace(assemble(CONSTFOLD))
    assert trace is not None
    stores = [occ for occ in trace if occ.kind == "store"]
    assert len(stores) == 3
    offsets = [occ.address.const for occ in stores]
    assert offsets == [64.0, 0.0, 64.0]
    assert [occ.epoch for occ in stores] == [0, 1, 2]
