"""Partitioned memory system: per-channel L2 slices and icnt paths."""

from repro.sim.config import GPUConfig, kepler_config, scaled_kepler
from repro.sim.memsys import MemoryModel


def cfg(**over):
    return GPUConfig().with_(**over)


def test_partitions_have_independent_ports():
    c = cfg(dram_channels=2)
    m = MemoryModel(c)
    # Same partition: second read queues behind the first at the port.
    t0 = m.read(0, now=0)
    t1 = m.read(2 * c.line_bytes, now=0)  # also channel 0
    assert t1 > t0
    # Different partition: no port interference.
    m2 = MemoryModel(c)
    u0 = m2.read(0, now=0)
    u1 = m2.read(1 * c.line_bytes, now=0)  # channel 1
    assert u1 == u0


def test_bandwidth_scales_with_channels():
    """N back-to-back distinct-line reads drain ~N/channels as fast."""

    def drain(channels, lines=16):
        c = cfg(dram_channels=channels)
        m = MemoryModel(c)
        return max(m.read(i * c.line_bytes, now=0) for i in range(lines))

    assert drain(4) < drain(1)


def test_merging_still_works_across_partitions():
    c = cfg(dram_channels=4)
    m = MemoryModel(c)
    m.read(0, now=0)
    m.read(0, now=1)
    assert m.dram_requests == 1


def test_kepler_presets_validate():
    kepler_config().validate()
    small = scaled_kepler(num_sms=2)
    small.validate()
    assert small.max_warps_per_sm == 64
    assert small.max_ctas_per_sm == 16
    assert small.dram_channels < kepler_config().dram_channels
