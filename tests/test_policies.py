"""Swap trigger/selection policies over synthetic warp statuses."""

import pytest

from repro.core.policies import (
    SELECT_POLICIES,
    TRIGGER_POLICIES,
    cta_stall_profile,
    select_most_ready,
    select_oldest_ready,
    trigger_all_stalled,
    trigger_majority_stalled,
    trigger_timeout,
)
from repro.isa.kernel import KernelBuilder
from repro.sim.config import GPUConfig
from repro.sim.cta import CTA
from repro.sim.smcore import ST_ALU, ST_BARRIER, ST_FINISHED, ST_MEM, ST_READY


def make_cta(num_warps=4, cta_id=0):
    b = KernelBuilder("k", regs_per_thread=8, cta_dim=(num_warps * 32, 1, 1))
    b.exit()
    kernel = b.build()
    return CTA(cta_id, (0, 0, 0), kernel, (1, 1, 1), (), GPUConfig(), 0)


def by_wid(statuses):
    return lambda warp: statuses[warp.local_wid]


CFG = GPUConfig()


def test_stall_profile_counts():
    cta = make_cta(4)
    status = by_wid([ST_MEM, ST_BARRIER, ST_READY, ST_FINISHED])
    assert cta_stall_profile(cta, status) == (2, 1, 3)


def test_all_stalled_fires_only_when_unanimous():
    cta = make_cta(3)
    assert trigger_all_stalled(cta, by_wid([ST_MEM, ST_MEM, ST_MEM]), 0, CFG)
    assert not trigger_all_stalled(cta, by_wid([ST_MEM, ST_MEM, ST_READY]), 0, CFG)
    assert not trigger_all_stalled(cta, by_wid([ST_MEM, ST_MEM, ST_ALU]), 0, CFG)


def test_all_stalled_counts_barrier_followers():
    cta = make_cta(3)
    assert trigger_all_stalled(cta, by_wid([ST_MEM, ST_BARRIER, ST_BARRIER]), 0, CFG)


def test_all_stalled_requires_a_true_memory_stall():
    # All at a barrier with nobody memory-stalled: the barrier is about to
    # release; swapping would be pure overhead.
    cta = make_cta(3)
    assert not trigger_all_stalled(cta, by_wid([ST_BARRIER] * 3), 0, CFG)


def test_all_stalled_ignores_finished_warps():
    cta = make_cta(3)
    assert trigger_all_stalled(cta, by_wid([ST_MEM, ST_FINISHED, ST_MEM]), 0, CFG)


def test_all_stalled_fully_finished_cta_never_triggers():
    cta = make_cta(2)
    assert not trigger_all_stalled(cta, by_wid([ST_FINISHED, ST_FINISHED]), 0, CFG)


def test_majority_stalled():
    cta = make_cta(4)
    assert trigger_majority_stalled(cta, by_wid([ST_MEM, ST_MEM, ST_MEM, ST_READY]), 0, CFG)
    assert not trigger_majority_stalled(cta, by_wid([ST_MEM, ST_MEM, ST_READY, ST_READY]), 0, CFG)


def test_timeout_requires_persistence():
    cfg = GPUConfig().with_(vt_trigger_timeout=10)
    cta = make_cta(2)
    stalled = by_wid([ST_MEM, ST_MEM])
    assert not trigger_timeout(cta, stalled, 0, cfg)  # arms the timer
    assert not trigger_timeout(cta, stalled, 5, cfg)
    assert trigger_timeout(cta, stalled, 10, cfg)


def test_timeout_resets_when_stall_clears():
    cfg = GPUConfig().with_(vt_trigger_timeout=10)
    cta = make_cta(2)
    trigger_timeout(cta, by_wid([ST_MEM, ST_MEM]), 0, cfg)
    trigger_timeout(cta, by_wid([ST_READY, ST_MEM]), 5, cfg)  # clears
    assert cta.stall_since is None
    assert not trigger_timeout(cta, by_wid([ST_MEM, ST_MEM]), 12, cfg)


def test_select_oldest_ready():
    a, b = make_cta(cta_id=0), make_cta(cta_id=1)
    a.became_inactive_at = 50
    b.became_inactive_at = 20
    assert select_oldest_ready([a, b], now=100) is b


def test_select_most_recent_is_lifo():
    a, b = make_cta(cta_id=0), make_cta(cta_id=1)
    a.became_inactive_at = 50
    b.became_inactive_at = 20
    from repro.core.policies import select_most_recent
    assert select_most_recent([a, b], now=100) is a


def test_select_most_ready():
    a, b = make_cta(2, cta_id=0), make_cta(2, cta_id=1)
    # a: one warp blocked on memory; b: both runnable.
    a.warps[0].scoreboard.set_pending(0, ready_cycle=10**6, is_global=True)
    assert select_most_ready([a, b], now=0) is b


def test_registries_cover_config_choices():
    assert set(TRIGGER_POLICIES) == {"all-stalled", "majority-stalled", "timeout"}
    assert set(SELECT_POLICIES) == {"oldest-ready", "most-ready", "most-recent"}
