"""Deterministic chaos harness for the result store and the serve layer.

Robustness claims are only claims until a fault actually fires, so this
module provides *seeded, reproducible* fault injectors that the chaos test
suite (``tests/test_store_chaos.py``) and the CI serve smoke job drive:

* :func:`flip_bit` / :func:`truncate_file` — storage-level corruption of
  a committed entry (bit rot, a torn file smuggled past the rename
  discipline by a buggy filesystem);
* :func:`run_killed_writer` — a real writer subprocess SIGKILLed at a
  seeded byte offset / commit stage mid-``put``, the crash-consistency
  property: after reopening, the store is either fully absent or fully
  valid for that key, never torn;
* :func:`synthetic_record` — a deterministic ``RunRecord`` (pure function
  of the seed) so crash tests don't pay for a simulation per subprocess.

Everything is seeded; a failing chaos test replays exactly.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import signal

from repro.analysis.runner import RunRecord
from repro.sim.config import GPUConfig
from repro.sim.stats import SimStats, SMStats
from repro.store.cas import ResultStore
from repro.store.fsio import STAGE_FSYNCED, STAGE_RENAMED, STAGE_WRITE

#: Commit stages a writer can be killed at, beyond mid-write byte offsets.
KILL_STAGES = (STAGE_WRITE, STAGE_FSYNCED, STAGE_RENAMED)


def synthetic_record(seed: int, benchmark: str = "chaos") -> RunRecord:
    """A deterministic, store-shaped ``ok`` record derived from ``seed``."""
    rng = random.Random(f"chaos-{seed}")
    sm = SMStats(
        cycles=1000 + rng.randrange(10_000),
        instructions=500 + rng.randrange(5_000),
        thread_instructions=16_000 + rng.randrange(160_000),
        issue_slots=2000 + rng.randrange(20_000),
        issued_slots=rng.randrange(2000),
        idle_cycles_mem=rng.randrange(500),
        l1_accesses=rng.randrange(1000),
        l1_hits=rng.randrange(500),
        instructions_by_class={"alu": rng.randrange(4000),
                               "mem": rng.randrange(1000)},
    )
    stats = SimStats(cycles=sm.cycles, instructions=sm.instructions,
                     thread_instructions=sm.thread_instructions,
                     sm_stats=[sm], l2_accesses=rng.randrange(800),
                     l2_hits=rng.randrange(400),
                     dram_requests=rng.randrange(300),
                     ctas_launched=1 + rng.randrange(64))
    return RunRecord(benchmark=benchmark, arch="baseline", stats=stats,
                     config=GPUConfig())


def flip_bit(path, byte_index: int, bit_index: int = 0) -> None:
    """Flip one bit of a committed file in place (seeded bit rot)."""
    data = bytearray(open(path, "rb").read())
    byte_index %= len(data)
    data[byte_index] ^= 1 << (bit_index % 8)
    with open(path, "wb") as handle:
        handle.write(data)


def truncate_file(path, keep_bytes: int) -> None:
    """Truncate a committed file to ``keep_bytes`` (a torn tail)."""
    size = os.path.getsize(path)
    os.truncate(path, max(0, min(keep_bytes, size)))


def _killed_writer_main(store_dir, fingerprint: str, seed: int,
                        kill_stage: str, kill_bytes: int) -> None:
    """Subprocess entry: start a ``put`` and SIGKILL ourselves mid-commit.

    ``kill_stage`` picks the crash point: mid-``write`` once ``kill_bytes``
    have reached the temp file, after the data ``fsynced``, or after the
    atomic rename but *before* the directory fsync (``renamed``) — the
    window the journal durability bugfix is about.  SIGKILL (not
    ``os._exit``) so no interpreter cleanup can soften the crash.
    """
    record = synthetic_record(seed)
    store = ResultStore(store_dir)

    def hook(stage: str, written: int) -> None:
        if stage == kill_stage and (stage != STAGE_WRITE
                                    or written >= kill_bytes):
            os.kill(os.getpid(), signal.SIGKILL)

    store.put(fingerprint, record, seed=seed, write_hook=hook)


def run_killed_writer(store_dir, fingerprint: str, seed: int, *,
                      kill_stage: str = STAGE_WRITE,
                      kill_bytes: int = 0) -> int:
    """Run one doomed writer in a spawned subprocess; returns its exitcode
    (``-SIGKILL`` when the injected crash fired, ``0`` when the commit won
    the race — e.g. ``kill_bytes`` beyond the entry size)."""
    ctx = multiprocessing.get_context("spawn")
    proc = ctx.Process(target=_killed_writer_main,
                       args=(os.fspath(store_dir), fingerprint, seed,
                             kill_stage, kill_bytes))
    proc.start()
    proc.join(60)
    if proc.is_alive():  # pragma: no cover - hang safety net
        proc.kill()
        proc.join()
    return proc.exitcode


def corrupt_entry(store: ResultStore, fingerprint: str, seed: int,
                  mode: str = "bitflip"):
    """Seeded corruption of one committed entry (``bitflip``/``truncate``);
    returns the corrupted entry's path."""
    path = store.entry_path(fingerprint)
    size = os.path.getsize(path)
    rng = random.Random(f"corrupt-{seed}")
    if mode == "bitflip":
        flip_bit(path, rng.randrange(size), rng.randrange(8))
    elif mode == "truncate":
        truncate_file(path, rng.randrange(size))
    else:
        raise ValueError(f"unknown corruption mode {mode!r}")
    return path
