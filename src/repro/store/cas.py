"""Content-addressed result store: every simulation result, forever.

The deterministic simulator makes a result a pure function of its
fingerprint — SHA-256 over benchmark + full :class:`GPUConfig` + scale +
workload seed (:func:`repro.analysis.journal.cell_fingerprint`).  The
store promotes the sweep journal's per-directory resume into a *global*
cache: any sweep, experiment, serve job, or CLI run that has ever
completed a cell can hand its byte-identical ``SimStats`` to every later
caller without re-simulating.  Cache hits are exact, not approximate.

Layout under the store root::

    objects/<fp[:2]>/<fp>.json   one schema-versioned entry per fingerprint
    quarantine/                  corrupt entries moved aside on detection
    artifacts/<fp>.json          per-run audit records (see build_artifact)

Crash safety (the whole point):

* every entry is committed via :func:`repro.store.fsio.commit_bytes` —
  temp file + fsync + atomic rename + directory fsync — so a reader can
  never observe a torn entry, and a crash right after creation cannot
  lose the directory entry;
* every entry embeds a SHA-256 **checksum** over its canonical payload;
  a read that fails the checksum (bit rot, a truncated file smuggled in
  past the rename discipline, manual tampering) **quarantines** the file
  into ``quarantine/`` and reports a miss — the caller recomputes, the
  store self-heals, and the corrupt bytes are preserved for forensics;
* orphan ``.tmp-*`` files left by killed writers are reclaimed by
  :meth:`ResultStore.gc`.

Only ``ok`` records are stored: terminal failures are journal material
(they are budget- and environment-dependent), not global truths.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.journal import record_from_dict, record_to_dict
from repro.analysis.runner import RunRecord
from repro.store.fsio import TMP_PREFIX, commit_bytes, fsync_dir

SCHEMA_VERSION = 1

OBJECTS_DIR = "objects"
QUARANTINE_DIR = "quarantine"
ARTIFACTS_DIR = "artifacts"


def _canonical(payload: dict) -> bytes:
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()


def checksum_payload(payload: dict) -> str:
    """Canonical-JSON SHA-256 of an entry payload, ``sha256:`` prefixed."""
    return "sha256:" + hashlib.sha256(_canonical(payload)).hexdigest()


def stats_digest(stats_dict: dict | None) -> str | None:
    """Digest of one ``SimStats.to_dict()`` — the byte-identity witness
    that reports and the serve smoke test compare across runs."""
    if stats_dict is None:
        return None
    return "sha256:" + hashlib.sha256(_canonical(stats_dict)).hexdigest()


def code_version() -> dict:
    """Best-effort code identity for audit records: package version plus
    the git commit when running from a checkout (no subprocesses)."""
    from repro import __version__

    commit = None
    root = Path(__file__).resolve()
    for parent in root.parents:
        head = parent / ".git" / "HEAD"
        if head.is_file():
            try:
                text = head.read_text().strip()
                if text.startswith("ref:"):
                    ref = parent / ".git" / text.split(None, 1)[1]
                    commit = ref.read_text().strip() if ref.is_file() else None
                else:
                    commit = text
            except OSError:  # pragma: no cover - unreadable .git
                commit = None
            break
    return {"version": __version__, "commit": commit}


@dataclass
class StoreEntry:
    """One verified store entry: the record plus how it was produced."""

    fingerprint: str
    record: RunRecord
    scale: float = 1.0
    seed: int = 0
    attempts: int = 1
    elapsed_s: float = 0.0
    created_at: float = 0.0
    checksum: str = ""
    path: str | None = None

    # selfcheck: ok[schema-field-coverage] -- checksum/path are envelope metadata: the checksum is computed over this payload and the path is derived from the fingerprint
    def payload(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "scale": self.scale,
            "seed": self.seed,
            "attempts": self.attempts,
            "elapsed_s": self.elapsed_s,
            "created_at": self.created_at,
            "record": record_to_dict(self.record),
        }


@dataclass
class StoreStats:
    """Lifetime-of-this-handle counters (monitoring, tests, reports)."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    corrupt: int = 0  # entries quarantined by this handle's reads

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclass
class StoreReport:
    """Result of a full ``verify()`` scan (``repro doctor --store``)."""

    entries: int = 0
    verified: int = 0
    quarantined_now: list[str] = field(default_factory=list)
    quarantined_before: int = 0  # files already sitting in quarantine/
    orphan_temps_removed: int = 0
    artifacts: int = 0
    bytes: int = 0

    @property
    def healthy(self) -> bool:
        return not self.quarantined_now

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


class ResultStore:
    """Fingerprint-keyed, checksum-verified, crash-safe result store."""

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)
        for sub in (OBJECTS_DIR, QUARANTINE_DIR, ARTIFACTS_DIR):
            (self.root / sub).mkdir(parents=True, exist_ok=True)
        fsync_dir(self.root)
        self.stats = StoreStats()

    # -- paths -------------------------------------------------------------

    def entry_path(self, fingerprint: str) -> Path:
        return self.root / OBJECTS_DIR / fingerprint[:2] / f"{fingerprint}.json"

    def artifact_path(self, fingerprint: str) -> Path:
        return self.root / ARTIFACTS_DIR / f"{fingerprint}.json"

    # -- write -------------------------------------------------------------

    def put(self, fingerprint: str, record: RunRecord, *, scale: float = 1.0,
            seed: int = 0, attempts: int = 1, elapsed_s: float = 0.0,
            write_hook=None) -> Path | None:
        """Durably store one completed cell; returns the entry path.

        Failed records are refused (``None``): a timeout under one wall
        budget is not a global truth about the fingerprint.  Re-putting an
        existing fingerprint atomically replaces the entry — determinism
        guarantees the payload is equivalent, so last-writer-wins is safe.
        """
        if not record.ok:
            return None
        entry = StoreEntry(
            fingerprint=fingerprint, record=record, scale=scale, seed=seed,
            attempts=attempts, elapsed_s=round(elapsed_s, 3),
            created_at=time.time())
        payload = entry.payload()
        document = {
            "v": SCHEMA_VERSION,
            "checksum": checksum_payload(payload),
            "payload": payload,
        }
        path = self.entry_path(fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        commit_bytes(path, json.dumps(document, sort_keys=True).encode() + b"\n",
                     write_hook=write_hook)
        self.stats.puts += 1
        return path

    # -- read --------------------------------------------------------------

    def get(self, fingerprint: str) -> StoreEntry | None:
        """Fetch and *verify* one entry; corrupt entries are quarantined
        and reported as a miss so the caller recomputes (self-heal)."""
        path = self.entry_path(fingerprint)
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        entry = self._parse(fingerprint, raw, path)
        if entry is None:
            self._quarantine(path)
            self.stats.corrupt += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return entry

    def _parse(self, fingerprint: str, raw: bytes, path: Path) -> StoreEntry | None:
        """Decode + verify one entry; ``None`` for any corruption."""
        try:
            document = json.loads(raw)
            if not isinstance(document, dict):
                return None
            if int(document.get("v", 0)) > SCHEMA_VERSION:
                return None  # a newer writer's entry: do not guess
            payload = document["payload"]
            if document["checksum"] != checksum_payload(payload):
                return None
            if payload["fingerprint"] != fingerprint:
                return None  # a file renamed onto the wrong key
            record = record_from_dict(payload["record"])
        except (KeyError, TypeError, ValueError):
            return None
        return StoreEntry(
            fingerprint=fingerprint, record=record,
            scale=float(payload.get("scale", 1.0)),
            seed=int(payload.get("seed", 0)),
            attempts=int(payload.get("attempts", 1)),
            elapsed_s=float(payload.get("elapsed_s", 0.0)),
            created_at=float(payload.get("created_at", 0.0)),
            checksum=document["checksum"], path=str(path))

    def _quarantine(self, path: Path) -> Path:
        """Move a corrupt file into ``quarantine/`` (never delete evidence)."""
        qdir = self.root / QUARANTINE_DIR
        target = qdir / path.name
        serial = 0
        while target.exists():
            serial += 1
            target = qdir / f"{path.name}.{serial}"
        os.replace(path, target)
        fsync_dir(qdir)
        fsync_dir(path.parent)
        return target

    # -- maintenance -------------------------------------------------------

    def verify(self) -> StoreReport:
        """Scan every entry, quarantine corruption, reclaim orphan temps."""
        report = StoreReport()
        report.orphan_temps_removed = self.gc()
        for path in sorted((self.root / OBJECTS_DIR).glob("*/*.json")):
            report.entries += 1
            report.bytes += path.stat().st_size
            fingerprint = path.stem
            entry = self._parse(fingerprint, path.read_bytes(), path)
            if entry is None:
                self._quarantine(path)
                self.stats.corrupt += 1
                report.quarantined_now.append(fingerprint)
            else:
                report.verified += 1
        report.quarantined_before = sum(
            1 for p in (self.root / QUARANTINE_DIR).iterdir() if p.is_file())
        report.artifacts = sum(
            1 for p in (self.root / ARTIFACTS_DIR).glob("*.json"))
        return report

    def gc(self) -> int:
        """Remove orphan ``.tmp-*`` commit files left by killed writers."""
        removed = 0
        for base in (self.root / OBJECTS_DIR, self.root / ARTIFACTS_DIR):
            for path in base.rglob(f"{TMP_PREFIX}*"):
                path.unlink(missing_ok=True)
                removed += 1
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in (self.root / OBJECTS_DIR).glob("*/*.json"))

    def __bool__(self) -> bool:
        # A handle is always truthy; without this, __len__ would make an
        # *empty* store falsy and silently disable `if store:` guards.
        return True

    # -- audit records -----------------------------------------------------

    def write_artifact(self, fingerprint: str, artifact: dict) -> Path:
        """Durably publish the per-run audit record for ``fingerprint``."""
        path = self.artifact_path(fingerprint)
        commit_bytes(path, json.dumps(artifact, sort_keys=True, indent=2).encode() + b"\n")
        return path

    def read_artifact(self, fingerprint: str) -> dict | None:
        try:
            return json.loads(self.artifact_path(fingerprint).read_text())
        except (FileNotFoundError, ValueError):
            return None


def build_artifact(fingerprint: str, record: RunRecord, *,
                   scale: float = 1.0, seed: int = 0, attempts: int = 1,
                   elapsed_s: float = 0.0, source: str = "computed",
                   started_at: float | None = None,
                   finished_at: float | None = None,
                   store_path: str | None = None,
                   computed_at: float | None = None,
                   extra: dict | None = None) -> dict:
    """The per-run ``artifact.json`` audit record.

    Answers "exactly what was simulated, by which code, how long it took,
    and where the result came from" — the source of truth a serving layer
    derives summaries from.  ``source`` is the cache provenance:
    ``"computed"`` for a fresh simulation, ``"cache"`` when the result was
    served from the store (``computed_at`` then points at the original).
    """
    stats_dict = record.stats.to_dict() if record.stats is not None else None
    artifact = {
        "v": SCHEMA_VERSION,
        "kind": "repro-run-artifact",
        "run": {
            "fingerprint": fingerprint,
            "status": record.status,
            "error": record.error,
            "attempts": attempts,
            "retried": record.retried,
            "started_at": started_at,
            "finished_at": finished_at,
            "elapsed_s": round(elapsed_s, 3),
        },
        "request": {
            "benchmark": record.benchmark,
            "arch": record.arch,
            "scale": scale,
            "seed": seed,
        },
        "config": record_to_dict(record)["config"],
        "code": code_version(),
        "provenance": {
            "source": source,
            "store_path": store_path,
            "computed_at": computed_at,
        },
        "result": {
            "cycles": record.stats.cycles if record.stats else None,
            "instructions": record.stats.instructions if record.stats else None,
            "stats_sha256": stats_digest(stats_dict),
        },
    }
    if extra:
        artifact.update(extra)
    return artifact
