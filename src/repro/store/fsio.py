"""Durability primitives shared by the result store and the journal.

The crash-safety discipline is the classic one:

1. write the full payload to a *temp file in the destination directory*
   (same filesystem, so the final rename cannot cross a mount);
2. ``fsync`` the temp file — the bytes are on disk before anything points
   at them;
3. ``os.replace`` the temp file onto the final name — atomic on POSIX, so
   readers only ever see the old state or the complete new state;
4. ``fsync`` the *directory* — the rename itself (and, for brand-new
   files, the directory entry) is durable.  Skipping this step is the
   classic bug where a crash right after file creation loses the whole
   file even though every byte was fsynced.

``write_hook`` exists for the chaos harness (:mod:`repro.store.chaos`):
it is called between chunks and at each commit stage so a test writer can
SIGKILL itself at a seeded byte offset and prove the store is never torn.
Production callers leave it ``None``.
"""

from __future__ import annotations

import os
from pathlib import Path

#: Prefix of in-flight commit temp files; anything carrying it is garbage
#: after a crash and is reclaimed by ``ResultStore.gc()``.
TMP_PREFIX = ".tmp-"

#: Chunk size for commit writes.  Small enough that the chaos harness can
#: kill a writer at meaningful intermediate offsets, large enough to be
#: irrelevant for throughput at the entry sizes involved (a few KiB).
CHUNK_BYTES = 512

#: Stages reported to ``write_hook`` (after every chunk, then once each).
STAGE_WRITE = "write"
STAGE_FSYNCED = "fsynced"
STAGE_RENAMED = "renamed"


def fsync_dir(directory: str | os.PathLike) -> None:
    """fsync a directory so renames/creations inside it are durable.

    Best-effort on platforms whose directory handles refuse fsync
    (some network filesystems); the data-file fsync still happened.
    """
    fd = os.open(os.fspath(directory), os.O_RDONLY)
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


def commit_bytes(path: str | os.PathLike, data: bytes, *,
                 write_hook=None) -> None:
    """Durably publish ``data`` at ``path`` (temp + fsync + rename + dirsync).

    A crash at *any* point leaves either the complete previous state or
    the complete new state at ``path`` — never a prefix — plus possibly an
    orphan ``.tmp-*`` file, which ``gc()`` reclaims.
    """
    path = Path(path)
    tmp = path.parent / f"{TMP_PREFIX}{path.name}.{os.getpid()}"
    fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
    try:
        written = 0
        for offset in range(0, len(data), CHUNK_BYTES):
            chunk = data[offset:offset + CHUNK_BYTES]
            os.write(fd, chunk)
            written += len(chunk)
            if write_hook is not None:
                write_hook(STAGE_WRITE, written)
        os.fsync(fd)
    finally:
        os.close(fd)
    if write_hook is not None:
        write_hook(STAGE_FSYNCED, len(data))
    os.replace(tmp, path)
    if write_hook is not None:
        write_hook(STAGE_RENAMED, len(data))
    fsync_dir(path.parent)
