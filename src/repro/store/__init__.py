"""Crash-safe content-addressed result store.

Submodules (imported lazily to keep layering acyclic — ``fsio`` is also
used by :mod:`repro.analysis.journal`, which :mod:`repro.store.cas`
imports for the record schema):

* :mod:`repro.store.fsio` — durability primitives: temp-file +
  fsync + atomic-rename commits and directory fsync.
* :mod:`repro.store.cas` — the fingerprint-keyed store itself
  (:class:`~repro.store.cas.ResultStore`).
* :mod:`repro.store.chaos` — deterministic fault injection for the
  crash-consistency test suite (torn writes, bit flips, killed writers).
"""
