"""scan — per-CTA inclusive prefix sum (Hillis-Steele, double-buffered).

Models the CUDA SDK scan: log2(CTA) shared-memory passes with a barrier
after every pass, ping-ponging between two buffers so reads never race
writes.  Dense barriers + shared traffic make it the purest 'sync'-class
kernel in the suite.
"""

from __future__ import annotations

import numpy as np

from repro.isa.assembler import assemble
from repro.kernels.base import Benchmark, Prepared, expect_close, make_gmem
from repro.workloads import random_array

CTA_THREADS = 128
BUF_BYTES = CTA_THREADS * 4

# param0=&in, param1=&out
ASM = f"""
.kernel scan
.regs 20
.smem {2 * BUF_BYTES}
.cta {CTA_THREADS}
entry:
    S2R   r0, %ctaid_x
    S2R   r1, %ntid_x
    S2R   r2, %tid_x
    IMAD  r3, r0, r1, r2        // gtid
    SHL   r4, r3, #2
    S2R   r5, %param0
    IADD  r5, r5, r4
    LDG   r6, [r5]              // in[gtid]
    SHL   r7, r2, #2            // tid word offset
    STS   [r7], r6              // buffer A
    BAR
    MOV   r8, #1                // stride d
    MOV   r9, #0                // source buffer flag
sloop:
    IMUL  r10, r9, #{BUF_BYTES}   // src base
    MOV   r12, #{BUF_BYTES}
    ISUB  r11, r12, r10           // dst base (the other buffer)
    IADD  r13, r10, r7
    LDS   r14, [r13]              // own value from src
    SETP.GE r15, r2, r8
    SHL   r16, r8, #2
    ISUB  r16, r13, r16           // src[tid - d]
@r15 LDS  r17, [r16]
@r15 FADD r14, r14, r17
    IADD  r18, r11, r7
    STS   [r18], r14              // dst[tid]
    BAR
    XOR   r9, r9, #1
    SHL   r8, r8, #1
    SETP.LT r15, r8, #{CTA_THREADS}
@r15 BRA  sloop
    S2R   r10, %param1
    IADD  r10, r10, r4
    STG   [r10], r14              // r14 holds the final inclusive sum
    EXIT
"""

KERNEL = assemble(ASM)


def prepare(scale: float = 1.0) -> Prepared:
    grid = max(2, int(24 * scale))
    n = CTA_THREADS * grid
    data = random_array(n, seed=201)
    reference = np.concatenate(
        [np.cumsum(block) for block in data.reshape(grid, CTA_THREADS)]
    )

    gmem = make_gmem()
    gmem.alloc("in", n)
    gmem.alloc("out", n)
    gmem.write("in", data)

    def check(result):
        expect_close(result, "out", reference, rtol=1e-9)

    return Prepared(
        gmem=gmem,
        grid_dim=(grid, 1, 1),
        params=(gmem.base("in"), gmem.base("out")),
        check=check,
    )


BENCHMARK = Benchmark(
    name="scan",
    suite="CUDA SDK",
    description="Per-CTA Hillis-Steele prefix sum, barrier per pass",
    category="sync",
    kernel=KERNEL,
    prepare=prepare,
)
