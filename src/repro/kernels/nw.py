"""nw — Needleman-Wunsch block: anti-diagonal DP wavefront in shared memory.

Models Rodinia's nw: a 48×48 score block computed wavefront-by-wavefront
(95 anti-diagonals, one barrier each) with the whole DP tile held in
shared memory.  The 9.6 KiB tile makes this the suite's *shared-memory
capacity-limited* kernel (5 CTAs/SM fit, below the scheduling limit of
8), so VT has little admission headroom — the smem counterpart of
regheavy.
"""

from __future__ import annotations

import numpy as np

from repro.isa.assembler import assemble
from repro.kernels.base import Benchmark, Prepared, expect_close, make_gmem
from repro.workloads import random_array

BLOCK = 48  # DP tile side; one thread per row
PAD = BLOCK + 1  # padded smem stride in words
GAP = 1.0  # gap penalty

# param0=&ref (grid × BLOCK×BLOCK similarity), param1=&out (grid × BLOCK×BLOCK)
ASM = f"""
.kernel nw
.regs 22
.smem {PAD * PAD * 4}
.cta {BLOCK}
entry:
    S2R   r0, %ctaid_x
    S2R   r2, %tid_x            // row i
    // Borders: F[0][0] = 0, F[i+1][0] = -(i+1), F[0][j+1] = -(j+1).
    IADD  r3, r2, #1
    I2F   r4, r3
    MOV   r5, #0.0
    FSUB  r4, r5, r4            // -(tid+1)
    IMUL  r6, r3, #{PAD}
    SHL   r6, r6, #2
    STS   [r6], r4              // column border F[i+1][0]
    SHL   r7, r3, #2
    STS   [r7], r4              // row border F[0][j+1] (j = tid)
    SETP.EQ r8, r2, #0
    MOV   r9, #0
@r8  STS  [r9], r5              // F[0][0] = 0
    BAR
    // ref row base (word index): ctaid*BLOCK*BLOCK + i*BLOCK
    IMUL  r10, r0, #{BLOCK * BLOCK}
    IMUL  r11, r2, #{BLOCK}
    IADD  r10, r10, r11
    SHL   r10, r10, #2
    S2R   r11, %param0
    IADD  r10, r10, r11         // &ref[cta][i][0]
    // own smem row bases
    IMUL  r12, r2, #{PAD}
    SHL   r12, r12, #2          // F[i][...] byte base
    IMUL  r13, r3, #{PAD}
    SHL   r13, r13, #2          // F[i+1][...] byte base
    MOV   r14, #0               // diagonal counter d
dloop:
    ISUB  r15, r14, r2          // j = d - i
    SETP.GE r16, r15, #0
    SETP.LT r17, r15, #{BLOCK}
    AND   r16, r16, r17         // in-range predicate
    SHL   r17, r15, #2          // j words -> bytes
    IADD  r18, r12, r17         // &F[i][j]   (diagonal)
@r16 LDS  r19, [r18]
@r16 LDS  r20, [r18+4]          // &F[i][j+1] (up)
    IADD  r18, r13, r17         // &F[i+1][j] (left)
@r16 LDS  r21, [r18]
    FMAX  r20, r20, r21
    FSUB  r20, r20, #{GAP}      // max(up, left) - gap
    IADD  r21, r10, r17
@r16 LDG  r21, [r21]            // ref[i][j]
    FADD  r19, r19, r21         // diag + similarity
    FMAX  r19, r19, r20
    IADD  r18, r13, r17
@r16 STS  [r18+4], r19          // F[i+1][j+1]
    BAR
    IADD  r14, r14, #1
    SETP.LT r16, r14, #{2 * BLOCK - 1}
@r16 BRA  dloop
    // Write back this thread's DP row: out[cta][i][j] = F[i+1][j+1].
    S2R   r15, %param1
    IMUL  r16, r0, #{BLOCK * BLOCK}
    IMUL  r17, r2, #{BLOCK}
    IADD  r16, r16, r17
    SHL   r16, r16, #2
    IADD  r15, r15, r16         // &out[cta][i][0]
    MOV   r14, #0
wloop:
    SHL   r17, r14, #2
    IADD  r18, r13, r17
    LDS   r19, [r18+4]
    IADD  r20, r15, r17
    STG   [r20], r19
    IADD  r14, r14, #1
    SETP.LT r16, r14, #{BLOCK}
@r16 BRA  wloop
    EXIT
"""

KERNEL = assemble(ASM)


def _reference(ref_block: np.ndarray) -> np.ndarray:
    """CPU DP over one BLOCK×BLOCK similarity tile."""
    score = np.zeros((BLOCK + 1, BLOCK + 1))
    score[0, :] = -np.arange(BLOCK + 1) * GAP
    score[:, 0] = -np.arange(BLOCK + 1) * GAP
    for i in range(1, BLOCK + 1):
        for j in range(1, BLOCK + 1):
            score[i, j] = max(
                score[i - 1, j - 1] + ref_block[i - 1, j - 1],
                max(score[i - 1, j], score[i, j - 1]) - GAP,
            )
    return score[1:, 1:]


def prepare(scale: float = 1.0) -> Prepared:
    grid = max(2, int(8 * scale))
    ref = random_array(grid * BLOCK * BLOCK, seed=211, low=-0.5, high=0.5)
    blocks = ref.reshape(grid, BLOCK, BLOCK)
    reference = np.concatenate([_reference(b).ravel() for b in blocks])

    gmem = make_gmem()
    gmem.alloc("ref", grid * BLOCK * BLOCK)
    gmem.alloc("out", grid * BLOCK * BLOCK)
    gmem.write("ref", ref)

    def check(result):
        expect_close(result, "out", reference, rtol=1e-9)

    return Prepared(
        gmem=gmem,
        grid_dim=(grid, 1, 1),
        params=(gmem.base("ref"), gmem.base("out")),
        check=check,
    )


BENCHMARK = Benchmark(
    name="nw",
    suite="Rodinia",
    description="Needleman-Wunsch DP tile: barrier-per-diagonal, smem-capacity-limited",
    category="sync",
    kernel=KERNEL,
    prepare=prepare,
)
