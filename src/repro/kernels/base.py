"""Benchmark plumbing: a kernel plus its workload and correctness check.

Each benchmark module builds one :class:`Benchmark`: the assembled kernel,
a ``prepare(scale)`` factory that allocates fresh global memory with
deterministic inputs, and a check that compares device results against a
numpy reference.  ``scale`` grows the grid (≈ linearly in work) so the
same benchmark serves quick tests (scale<1) and the full harness.

``category`` tags the benchmark with its dominant behaviour — the axis the
paper's per-benchmark discussion is organized around:

* ``streaming``  — coalesced, bandwidth-bound (little VT headroom even
  when scheduling-limited: DRAM is already saturated),
* ``latency``    — memory-latency-bound (VT's sweet spot),
* ``irregular``  — data-dependent accesses/divergence,
* ``sync``       — barrier-heavy,
* ``compute``    — arithmetic-bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.isa.kernel import Kernel
from repro.sim.gpu import LaunchResult
from repro.sim.memory import GlobalMemory

CATEGORIES = ("streaming", "latency", "irregular", "sync", "compute")


class CheckFailure(AssertionError):
    """Device output did not match the numpy reference."""


@dataclass
class Prepared:
    """A ready-to-launch workload instance."""

    gmem: GlobalMemory
    grid_dim: tuple[int, int, int]
    params: tuple[float, ...]
    check: Callable[[LaunchResult], None]


@dataclass(frozen=True)
class Benchmark:
    """One benchmark: kernel + workload factory + metadata."""

    name: str
    suite: str  # the real suite this models (for the paper's Table 2)
    description: str
    category: str
    kernel: Kernel
    prepare: Callable[[float], Prepared] = field(compare=False)

    def __post_init__(self):
        if self.category not in CATEGORIES:
            raise ValueError(f"{self.name}: unknown category {self.category!r}")


def expect_close(result: LaunchResult, name: str, reference: np.ndarray,
                 rtol: float = 1e-9, atol: float = 1e-9) -> None:
    """Assert a device buffer matches ``reference`` (used by checks)."""
    got = result.read(name, len(reference))
    if not np.allclose(got, reference, rtol=rtol, atol=atol):
        bad = int(np.argmax(~np.isclose(got, reference, rtol=rtol, atol=atol)))
        raise CheckFailure(
            f"{result.kernel.name}: buffer {name!r} mismatch at [{bad}]: "
            f"got {got[bad]!r}, want {reference[bad]!r}"
        )


def make_gmem(size_bytes: int = 1 << 23) -> GlobalMemory:
    return GlobalMemory(size_bytes=size_bytes)
