"""bfs — one level-synchronous BFS expansion over a CSR graph.

Models Rodinia's BFS: a thread per node, data-dependent neighbour loops,
scattered loads and benign racy level updates (all writers store the same
value).  Irregular control flow + uncoalesced traffic make it scheduling-
limited and latency-bound — the paper's highest-gain class.
"""

from __future__ import annotations

import numpy as np

from repro.isa.assembler import assemble
from repro.kernels.base import Benchmark, CheckFailure, Prepared, make_gmem
from repro.workloads.graphs import INF_LEVEL, bfs_expand_level, bfs_levels, random_csr_graph

CTA_THREADS = 64
CURRENT_LEVEL = 3  # expand a mid-traversal level (large frontier = real work)

# param0=&rowptr, param1=&col, param2=&level, param3=N, param4=current level
ASM = f"""
.kernel bfs
.regs 18
.cta {CTA_THREADS}
entry:
    S2R   r0, %ctaid_x
    S2R   r1, %ntid_x
    S2R   r2, %tid_x
    IMAD  r3, r0, r1, r2        // node v
    S2R   r4, %param2
    SHL   r5, r3, #2
    IADD  r6, r4, r5
    LDG   r6, [r6]              // level[v]
    S2R   r7, %param4
    SETP.NE r8, r6, r7
@r8  BRA  done
    S2R   r9, %param0
    IADD  r10, r9, r5
    LDG   r11, [r10]            // j = rowptr[v]
    LDG   r12, [r10+4]          // end = rowptr[v+1]
    SETP.GE r13, r11, r12
@r13 BRA  done
    S2R   r14, %param1
    IADD  r15, r7, #1           // next level
nbloop:
    SHL   r16, r11, #2
    IADD  r16, r16, r14
    LDG   r17, [r16]            // w = col[j]
    SHL   r16, r17, #2
    IADD  r16, r16, r4          // &level[w]
    LDG   r17, [r16]
    SETP.EQ r13, r17, #{INF_LEVEL}
@r13 STG  [r16], r15            // claim unvisited neighbour
    IADD  r11, r11, #1
    SETP.LT r13, r11, r12
@r13 BRA  nbloop
done:
    EXIT
"""

KERNEL = assemble(ASM)


def prepare(scale: float = 1.0) -> Prepared:
    grid = max(2, int(32 * scale))
    num_nodes = CTA_THREADS * grid
    row_ptr, col_idx = random_csr_graph(num_nodes, avg_degree=6, seed=61)
    level = bfs_levels(row_ptr, col_idx, source=0, max_level=CURRENT_LEVEL)
    reference = bfs_expand_level(row_ptr, col_idx, level, CURRENT_LEVEL)

    gmem = make_gmem()
    gmem.alloc("rowptr", num_nodes + 1)
    gmem.alloc("col", max(1, len(col_idx)))
    gmem.alloc("level", num_nodes)
    gmem.write("rowptr", row_ptr)
    gmem.write("col", col_idx)
    gmem.write("level", level)

    def check(result):
        got = result.read("level", num_nodes)
        if not np.array_equal(got, reference):
            bad = int(np.argmax(got != reference))
            raise CheckFailure(
                f"bfs: level[{bad}] = {got[bad]}, want {reference[bad]}"
            )

    return Prepared(
        gmem=gmem,
        grid_dim=(grid, 1, 1),
        params=(
            gmem.base("rowptr"),
            gmem.base("col"),
            gmem.base("level"),
            num_nodes,
            CURRENT_LEVEL,
        ),
        check=check,
    )


BENCHMARK = Benchmark(
    name="bfs",
    suite="Rodinia / ISPASS",
    description="Level-synchronous BFS expansion, irregular CSR traversal",
    category="irregular",
    kernel=KERNEL,
    prepare=prepare,
)
