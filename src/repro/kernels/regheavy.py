"""regheavy — register-hungry FDTD-like update (capacity-limited).

A 256-thread CTA declaring 40 registers/thread: the register file caps
residency at 3 CTAs, well below the 6 the scheduling structures allow.
This is the paper's capacity-limited class — VT has no admission headroom
here and must match baseline, which experiment E5 verifies.

The declared footprint deliberately exceeds the hand-count of live
registers: real compilers allocate for peak pressure across the whole
function, and the paper's classification keys off that declared footprint.
"""

from __future__ import annotations

import numpy as np

from repro.isa.assembler import assemble
from repro.kernels.base import Benchmark, Prepared, expect_close, make_gmem
from repro.workloads import random_array

CTA_THREADS = 256

# param0=&e_field, param1=&h_field, param2=&out
ASM = f"""
.kernel regheavy
.regs 40
.cta {CTA_THREADS}
entry:
    S2R   r0, %ctaid_x
    S2R   r1, %ntid_x
    S2R   r2, %tid_x
    IMAD  r3, r0, r1, r2
    SHL   r4, r3, #2
    S2R   r5, %param0
    IADD  r5, r5, r4
    LDG   r6, [r5]              // e
    S2R   r7, %param1
    IADD  r7, r7, r4
    LDG   r8, [r7]              // h
    // FDTD-like update chain (long dependent FMA sequence -> high
    // register pressure in a real compilation of this kernel body).
    FMUL  r9, r6, #0.9
    FFMA  r10, r8, #0.1, r9
    FMUL  r11, r8, #0.8
    FFMA  r12, r6, #0.2, r11
    FMUL  r13, r10, r12
    FFMA  r14, r9, r11, r13
    FADD  r15, r10, r12
    FFMA  r16, r14, #0.5, r15
    FMUL  r17, r16, r16
    FFMA  r18, r17, #0.25, r16
    FADD  r19, r18, r14
    FFMA  r20, r19, #0.125, r18
    S2R   r21, %param2
    IADD  r21, r21, r4
    STG   [r21], r20
    EXIT
"""

KERNEL = assemble(ASM)


def _reference(e: np.ndarray, h: np.ndarray) -> np.ndarray:
    r9 = e * 0.9
    r10 = h * 0.1 + r9
    r11 = h * 0.8
    r12 = e * 0.2 + r11
    r13 = r10 * r12
    r14 = r9 * r11 + r13
    r15 = r10 + r12
    r16 = r14 * 0.5 + r15
    r17 = r16 * r16
    r18 = r17 * 0.25 + r16
    r19 = r18 + r14
    return r19 * 0.125 + r18


def prepare(scale: float = 1.0) -> Prepared:
    grid = max(2, int(16 * scale))
    n = CTA_THREADS * grid
    e = random_array(n, seed=161)
    h = random_array(n, seed=162)
    reference = _reference(e, h)

    gmem = make_gmem()
    gmem.alloc("e", n)
    gmem.alloc("h", n)
    gmem.alloc("out", n)
    gmem.write("e", e)
    gmem.write("h", h)

    def check(result):
        expect_close(result, "out", reference, rtol=1e-9)

    return Prepared(
        gmem=gmem,
        grid_dim=(grid, 1, 1),
        params=(gmem.base("e"), gmem.base("h"), gmem.base("out")),
        check=check,
    )


BENCHMARK = Benchmark(
    name="regheavy",
    suite="FDTD-class (synthetic)",
    description="Register-capacity-limited FMA chain update",
    category="compute",
    kernel=KERNEL,
    prepare=prepare,
)
