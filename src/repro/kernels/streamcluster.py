"""streamcluster — conditional reassignment against a candidate center.

Models Rodinia's streamcluster pgain inner kernel: per-point distance to a
candidate center (SFU square root), compared against the current
assignment cost, with predicated stores on improvement.
"""

from __future__ import annotations

import numpy as np

from repro.isa.assembler import assemble
from repro.kernels.base import Benchmark, Prepared, expect_close, make_gmem
from repro.workloads import random_array

CTA_THREADS = 64
NUM_FEATURES = 4
CENTER_ID = 7

# param0=&feat (D×N feature-major), param1=&center (D), param2=&cost,
# param3=&assign, param4=N, param5=D, param6=center id
ASM = f"""
.kernel streamcluster
.regs 20
.cta {CTA_THREADS}
entry:
    S2R   r0, %ctaid_x
    S2R   r1, %ntid_x
    S2R   r2, %tid_x
    IMAD  r3, r0, r1, r2        // point i
    S2R   r4, %param4           // N
    S2R   r5, %param0
    S2R   r6, %param1
    MOV   r7, #0.0              // squared distance
    MOV   r8, #0                // d
dloop:
    IMAD  r9, r8, r4, r3
    SHL   r9, r9, #2
    IADD  r9, r9, r5
    LDG   r10, [r9]             // feat[d][i]
    SHL   r11, r8, #2
    IADD  r11, r11, r6
    LDG   r12, [r11]            // center[d]
    FSUB  r10, r10, r12
    FFMA  r7, r10, r10, r7
    IADD  r8, r8, #1
    S2R   r13, %param5
    SETP.LT r14, r8, r13
@r14 BRA  dloop
    FSQRT r7, r7                // Euclidean distance (SFU)
    S2R   r13, %param2
    SHL   r15, r3, #2
    IADD  r16, r13, r15
    LDG   r17, [r16]            // current cost[i]
    SETP.LT r14, r7, r17
@r14 STG  [r16], r7             // improve: new cost
    S2R   r18, %param3
    IADD  r18, r18, r15
    S2R   r19, %param6
@r14 STG  [r18], r19            // improve: reassign to candidate
    EXIT
"""

KERNEL = assemble(ASM)


def prepare(scale: float = 1.0) -> Prepared:
    grid = max(2, int(24 * scale))
    n = CTA_THREADS * grid
    features = random_array(NUM_FEATURES * n, seed=111).reshape(NUM_FEATURES, n)
    center = random_array(NUM_FEATURES, seed=112)
    cost = random_array(n, seed=113, low=0.3, high=1.2)
    assign = np.zeros(n)

    dist = np.sqrt(((features - center[:, None]) ** 2).sum(axis=0))
    improved = dist < cost
    ref_cost = np.where(improved, dist, cost)
    ref_assign = np.where(improved, float(CENTER_ID), assign)

    gmem = make_gmem()
    gmem.alloc("feat", NUM_FEATURES * n)
    gmem.alloc("center", NUM_FEATURES)
    gmem.alloc("cost", n)
    gmem.alloc("assign", n)
    gmem.write("feat", features)
    gmem.write("center", center)
    gmem.write("cost", cost)
    gmem.write("assign", assign)

    def check(result):
        expect_close(result, "cost", ref_cost, rtol=1e-9)
        expect_close(result, "assign", ref_assign)

    return Prepared(
        gmem=gmem,
        grid_dim=(grid, 1, 1),
        params=(
            gmem.base("feat"),
            gmem.base("center"),
            gmem.base("cost"),
            gmem.base("assign"),
            n,
            NUM_FEATURES,
            CENTER_ID,
        ),
        check=check,
    )


BENCHMARK = Benchmark(
    name="streamcluster",
    suite="Rodinia",
    description="Per-point candidate-center reassignment with SFU distance",
    category="latency",
    kernel=KERNEL,
    prepare=prepare,
)
