"""mm_tiled — shared-memory tiled matrix multiply (capacity-limited).

The classic 16×16-tile GEMM: 256 threads/CTA with a 32-registers/thread
footprint, so the *register file* binds residency (4 CTAs) before the
scheduling structures do (6 CTAs) — the paper's capacity-limited class,
where VT admission gains nothing and performance must match baseline.
"""

from __future__ import annotations

import numpy as np

from repro.isa.assembler import assemble
from repro.kernels.base import Benchmark, Prepared, expect_close, make_gmem
from repro.workloads import random_array

TILE = 16
K_DIM = 32  # shared inner dimension (2 tile steps)

# param0=&A, param1=&B, param2=&C, param3=K, param4=N, param5=K/16
ASM = f"""
.kernel mm_tiled
.regs 32
.smem {2 * TILE * TILE * 4}
.cta {TILE} {TILE}
entry:
    S2R   r0, %tid_x
    S2R   r1, %tid_y
    S2R   r2, %ctaid_x
    S2R   r3, %ctaid_y
    S2R   r6, %param3           // K
    S2R   r7, %param4           // N
    SHL   r4, r3, #4
    IADD  r4, r4, r1            // row = by*16 + ty
    SHL   r5, r2, #4
    IADD  r5, r5, r0            // col = bx*16 + tx
    IMAD  r10, r4, r6, r0       // A word index sans kt: row*K + tx
    IMAD  r11, r1, r7, r5       // B word index sans kt: ty*N + col
    SHL   r12, r1, #4
    IADD  r12, r12, r0
    SHL   r12, r12, #2          // As store byte address (ty*16+tx)*4
    SHL   r14, r1, #6           // As row base: ty*64 bytes
    SHL   r15, r0, #2
    IADD  r15, r15, #{TILE * TILE * 4}  // Bs column base: 1024 + tx*4
    MOV   r8, #0.0              // acc
    MOV   r9, #0                // kt
ktloop:
    SHL   r16, r9, #4           // kt*16
    IADD  r17, r10, r16
    SHL   r17, r17, #2
    S2R   r18, %param0
    IADD  r17, r17, r18
    LDG   r19, [r17]            // A[row][kt*16+tx]
    STS   [r12], r19
    IMUL  r17, r16, r7          // kt*16*N
    IADD  r17, r17, r11
    SHL   r17, r17, #2
    S2R   r18, %param1
    IADD  r17, r17, r18
    LDG   r19, [r17]            // B[kt*16+ty][col]
    IADD  r20, r12, #{TILE * TILE * 4}
    STS   [r20], r19
    BAR
    MOV   r13, #0               // kk
kkloop:
    SHL   r16, r13, #2
    IADD  r17, r14, r16
    LDS   r18, [r17]            // As[ty][kk]
    SHL   r16, r13, #6
    IADD  r17, r15, r16
    LDS   r19, [r17]            // Bs[kk][tx]
    FFMA  r8, r18, r19, r8
    IADD  r13, r13, #1
    SETP.LT r16, r13, #{TILE}
@r16 BRA  kkloop
    BAR
    IADD  r9, r9, #1
    S2R   r16, %param5
    SETP.LT r17, r9, r16
@r17 BRA  ktloop
    IMAD  r16, r4, r7, r5       // row*N + col
    SHL   r16, r16, #2
    S2R   r17, %param2
    IADD  r16, r16, r17
    STG   [r16], r8
    EXIT
"""

KERNEL = assemble(ASM)


def prepare(scale: float = 1.0) -> Prepared:
    tiles = max(2, int(4 * scale))  # grid is tiles × tiles CTAs
    m = n = TILE * tiles
    k = K_DIM
    a = random_array(m * k, seed=41).reshape(m, k)
    b = random_array(k * n, seed=42).reshape(k, n)
    gmem = make_gmem()
    gmem.alloc("a", m * k)
    gmem.alloc("b", k * n)
    gmem.alloc("c", m * n)
    gmem.write("a", a)
    gmem.write("b", b)
    reference = (a @ b).ravel()

    def check(result):
        expect_close(result, "c", reference, rtol=1e-9)

    return Prepared(
        gmem=gmem,
        grid_dim=(tiles, tiles, 1),
        params=(gmem.base("a"), gmem.base("b"), gmem.base("c"), k, n, k // TILE),
        check=check,
    )


BENCHMARK = Benchmark(
    name="mm_tiled",
    suite="CUDA SDK / Parboil sgemm",
    description="16x16 shared-memory tiled GEMM (register capacity-limited)",
    category="compute",
    kernel=KERNEL,
    prepare=prepare,
)
