"""transpose — shared-memory tiled matrix transpose.

The classic coalesced transpose: a 32×32 tile staged through padded
shared memory (stride 33 words avoids bank conflicts), with a 32×8 thread
block looping over four tile rows.  Exercises shared-memory timing and
barrier behaviour with a large (8-warp) CTA.
"""

from __future__ import annotations

import numpy as np

from repro.isa.assembler import assemble
from repro.kernels.base import Benchmark, Prepared, expect_close, make_gmem
from repro.workloads import random_array

CTA_X, CTA_Y = 32, 8
TILE = 32
PAD_STRIDE = 33  # words per padded shared-memory row

# param0=&in, param1=&out, param2=S (square matrix side)
ASM = f"""
.kernel transpose
.regs 16
.smem {TILE * PAD_STRIDE * 4}
.cta {CTA_X} {CTA_Y}
entry:
    S2R   r0, %tid_x
    S2R   r1, %tid_y
    S2R   r2, %ctaid_x
    S2R   r3, %ctaid_y
    S2R   r4, %param2           // S
    SHL   r5, r2, #5            // bx*32
    SHL   r6, r3, #5            // by*32
    MOV   r7, #0                // row-chunk yy
rdloop:
    SHL   r8, r7, #3
    IADD  r8, r8, r1            // tile row = ty + yy*8
    IADD  r9, r6, r8            // global row
    IADD  r10, r5, r0           // global col
    IMAD  r11, r9, r4, r10
    SHL   r11, r11, #2
    S2R   r12, %param0
    IADD  r11, r11, r12
    LDG   r13, [r11]
    IMUL  r14, r8, #{PAD_STRIDE}
    IADD  r14, r14, r0
    SHL   r14, r14, #2
    STS   [r14], r13            // smem[row][col], padded
    IADD  r7, r7, #1
    SETP.LT r15, r7, #4
@r15 BRA  rdloop
    BAR
    MOV   r7, #0
wrloop:
    SHL   r8, r7, #3
    IADD  r8, r8, r1            // transposed tile row
    IADD  r9, r5, r8            // global out row = bx*32 + r
    IADD  r10, r6, r0           // global out col = by*32 + tx
    IMAD  r11, r9, r4, r10
    SHL   r11, r11, #2
    S2R   r12, %param1
    IADD  r11, r11, r12
    IMUL  r14, r0, #{PAD_STRIDE}  // smem[tx][r]
    IADD  r14, r14, r8
    SHL   r14, r14, #2
    LDS   r13, [r14]
    STG   [r11], r13
    IADD  r7, r7, #1
    SETP.LT r15, r7, #4
@r15 BRA  wrloop
    EXIT
"""

KERNEL = assemble(ASM)


def prepare(scale: float = 1.0) -> Prepared:
    tiles = max(2, int(3 * scale))
    side = TILE * tiles
    matrix = random_array(side * side, seed=151).reshape(side, side)
    reference = matrix.T.ravel()

    gmem = make_gmem()
    gmem.alloc("in", side * side)
    gmem.alloc("out", side * side)
    gmem.write("in", matrix)

    def check(result):
        expect_close(result, "out", reference)

    return Prepared(
        gmem=gmem,
        grid_dim=(tiles, tiles, 1),
        params=(gmem.base("in"), gmem.base("out"), side),
        check=check,
    )


BENCHMARK = Benchmark(
    name="transpose",
    suite="CUDA SDK",
    description="32x32 tiled transpose through padded shared memory",
    category="streaming",
    kernel=KERNEL,
    prepare=prepare,
)
