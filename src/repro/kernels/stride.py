"""stride — strided-load latency microbenchmark (GUPS-like).

Each thread walks a large-stride address sequence: every load opens a new
cache line and mostly misses L1, exposing raw memory latency without
saturating DRAM bandwidth.  This is the cleanest VT demonstrator: the
baseline's 16 warps cannot cover the round-trip, while VT's virtual CTAs
can.
"""

from __future__ import annotations

import numpy as np

from repro.isa.assembler import assemble
from repro.kernels.base import Benchmark, Prepared, expect_close, make_gmem
from repro.workloads import random_array

CTA_THREADS = 64
ITERS = 16
STRIDE_WORDS = 8192  # 32 KiB jumps: new line, defeats both L1 and reuse

# param0=&x, param1=&out
ASM = f"""
.kernel stride
.regs 14
.cta {CTA_THREADS}
entry:
    S2R   r0, %ctaid_x
    S2R   r1, %ntid_x
    S2R   r2, %tid_x
    IMAD  r3, r0, r1, r2
    SHL   r4, r3, #2
    S2R   r5, %param0
    IADD  r6, r5, r4            // &x[i]
    MOV   r7, #0.0              // acc
    MOV   r8, #0                // iter
loop:
    LDG   r9, [r6]
    FADD  r7, r7, r9
    IADD  r6, r6, #{STRIDE_WORDS * 4}
    IADD  r8, r8, #1
    SETP.LT r10, r8, #{ITERS}
@r10 BRA  loop
    S2R   r11, %param1
    IADD  r12, r11, r4
    STG   [r12], r7
    EXIT
"""

KERNEL = assemble(ASM)


def prepare(scale: float = 1.0) -> Prepared:
    grid = max(2, int(32 * scale))
    n = CTA_THREADS * grid
    words = STRIDE_WORDS * ITERS + n
    x = random_array(words, seed=171)
    idx = np.arange(n)
    reference = sum(x[idx + it * STRIDE_WORDS] for it in range(ITERS))

    gmem = make_gmem(size_bytes=1 << 24)
    gmem.alloc("x", words)
    gmem.alloc("out", n)
    gmem.write("x", x)

    def check(result):
        expect_close(result, "out", reference, rtol=1e-9)

    return Prepared(
        gmem=gmem,
        grid_dim=(grid, 1, 1),
        params=(gmem.base("x"), gmem.base("out")),
        check=check,
    )


BENCHMARK = Benchmark(
    name="stride",
    suite="GUPS-class (synthetic)",
    description="Large-stride load chain exposing raw memory latency",
    category="latency",
    kernel=KERNEL,
    prepare=prepare,
)
