"""chase — pointer-chase latency microbenchmark (serialized issue).

Each CTA walks its own pointer chain through global memory: every loaded
value *is* the next address, and a dependent integer chain after each load
keeps the warp issuing on every cycle of the load round-trip.  Chains are
line-disjoint across CTAs (per-CTA start lines, large stride), so the
workload scales to many SMs with zero cross-SM sharing — the parallel
engine's best case, and the fast-forward engine's worst case (no provably
dead gap ever opens).
"""

from __future__ import annotations

import numpy as np

from repro.isa.assembler import assemble
from repro.kernels.base import Benchmark, Prepared, expect_close, make_gmem

CTA_THREADS = 32
ITERS = 24
CHAIN = 45  # dependent IADDs per load: spans the load round-trip
STRIDE_WORDS = 8192  # chain step: always a new DRAM line
MAX_CTAS = 256  # per-CTA start lines stay below the first chain step

_ALU_CHAIN = "\n".join("    IADD  r9, r9, #1" for _ in range(CHAIN - 1))

# param0=&x, param1=&out.  One chain per CTA (all lanes chase the same
# pointer, fully coalesced); r6 ends as the final chased address.
ASM = f"""
.kernel chase
.regs 13
.cta {CTA_THREADS}
entry:
    S2R   r0, %ctaid_x
    SHL   r1, r0, #7            // start byte offset: line ctaid
    S2R   r2, %param0
    IADD  r6, r2, r1            // &x[32 * ctaid]
    MOV   r8, #0                // iter
loop:
    LDG   r6, [r6]              // next pointer
    IADD  r9, r6, #1            // dependent ALU chain on the loaded value
{_ALU_CHAIN}
    IADD  r8, r8, #1
    SETP.LT r10, r8, #{ITERS}
@r10 BRA  loop
    S2R   r11, %param1
    SHL   r12, r0, #2
    IADD  r11, r11, r12
    STG   [r11], r6             // final pointer: checks the whole chain
    EXIT
"""

KERNEL = assemble(ASM)


def prepare(scale: float = 1.0) -> Prepared:
    grid = min(MAX_CTAS, max(2, int(32 * scale)))
    n = STRIDE_WORDS * (ITERS + 4)

    gmem = make_gmem(size_bytes=1 << 24)
    gmem.alloc("x", n)
    gmem.alloc("out", grid)
    base = gmem.base("x")
    # x[w] = address of word (w + STRIDE) mod n: a single global cycle that
    # every CTA enters at its own start line.
    idx = np.arange(n, dtype=np.int64)
    gmem.write("x", (base + ((idx + STRIDE_WORDS) % n) * 4).astype(np.float64))

    start = 32 * np.arange(grid, dtype=np.int64)
    reference = (base + ((start + ITERS * STRIDE_WORDS) % n) * 4).astype(np.float64)

    def check(result):
        expect_close(result, "out", reference, rtol=0)

    return Prepared(
        gmem=gmem,
        grid_dim=(grid, 1, 1),
        params=(gmem.base("x"), gmem.base("out")),
        check=check,
    )


BENCHMARK = Benchmark(
    name="chase",
    suite="GUPS-class (synthetic)",
    description="Per-CTA pointer chains with dependent ALU fill: zero-gap issue",
    category="latency",
    kernel=KERNEL,
    prepare=prepare,
)
