"""kmeans — cluster-assignment step (nested distance loops).

Models Rodinia's kmeans: feature-major coalesced point loads, centroid
loads that hit L1, and an argmin over clusters carried in predicated
moves.  Small CTAs + repeated global loads make it scheduling-limited and
latency-sensitive.
"""

from __future__ import annotations

import numpy as np

from repro.isa.assembler import assemble
from repro.kernels.base import Benchmark, Prepared, expect_close, make_gmem
from repro.workloads import random_array

CTA_THREADS = 64
NUM_CLUSTERS = 5
NUM_FEATURES = 4

# param0=&feat (feature-major D×N), param1=&cent (K×D), param2=&assign,
# param3=N, param4=K, param5=D
ASM = f"""
.kernel kmeans
.regs 21
.cta {CTA_THREADS}
entry:
    S2R   r0, %ctaid_x
    S2R   r1, %ntid_x
    S2R   r2, %tid_x
    IMAD  r3, r0, r1, r2        // point index i
    S2R   r4, %param3           // N
    S2R   r5, %param0
    S2R   r6, %param1
    MOV   r7, #1e30             // best distance
    MOV   r8, #0                // best cluster
    MOV   r9, #0                // k
kloop:
    MOV   r10, #0.0             // dist
    MOV   r11, #0               // d
    S2R   r18, %param5          // D
    IMUL  r12, r9, r18
    SHL   r12, r12, #2
    IADD  r12, r12, r6          // &cent[k][0]
dloop:
    IMAD  r13, r11, r4, r3      // feature-major: d*N + i
    SHL   r13, r13, #2
    IADD  r13, r13, r5
    LDG   r14, [r13]            // feat[d][i]
    SHL   r15, r11, #2
    IADD  r15, r15, r12
    LDG   r16, [r15]            // cent[k][d]
    FSUB  r14, r14, r16
    FFMA  r10, r14, r14, r10
    IADD  r11, r11, #1
    SETP.LT r17, r11, r18
@r17 BRA  dloop
    SETP.LT r17, r10, r7
@r17 MOV  r7, r10               // predicated argmin update
@r17 MOV  r8, r9
    IADD  r9, r9, #1
    S2R   r19, %param4
    SETP.LT r17, r9, r19
@r17 BRA  kloop
    SHL   r13, r3, #2
    S2R   r14, %param2
    IADD  r13, r13, r14
    STG   [r13], r8
    EXIT
"""

KERNEL = assemble(ASM)


def prepare(scale: float = 1.0) -> Prepared:
    grid = max(2, int(24 * scale))
    n = CTA_THREADS * grid
    features = random_array(NUM_FEATURES * n, seed=71).reshape(NUM_FEATURES, n)
    centroids = random_array(NUM_CLUSTERS * NUM_FEATURES, seed=72).reshape(
        NUM_CLUSTERS, NUM_FEATURES
    )
    # dist[i][k] = sum_d (feat[d][i] - cent[k][d])^2 ; assignment = argmin_k
    diffs = features.T[:, None, :] - centroids[None, :, :]
    reference = np.argmin((diffs * diffs).sum(axis=2), axis=1).astype(np.float64)

    gmem = make_gmem()
    gmem.alloc("feat", NUM_FEATURES * n)
    gmem.alloc("cent", NUM_CLUSTERS * NUM_FEATURES)
    gmem.alloc("assign", n)
    gmem.write("feat", features)
    gmem.write("cent", centroids)

    def check(result):
        expect_close(result, "assign", reference)

    return Prepared(
        gmem=gmem,
        grid_dim=(grid, 1, 1),
        params=(
            gmem.base("feat"),
            gmem.base("cent"),
            gmem.base("assign"),
            n,
            NUM_CLUSTERS,
            NUM_FEATURES,
        ),
        check=check,
    )


BENCHMARK = Benchmark(
    name="kmeans",
    suite="Rodinia",
    description="K-means assignment step: nested distance loops, argmin",
    category="latency",
    kernel=KERNEL,
    prepare=prepare,
)
