"""srad — diffusion stencil with SFU-heavy coefficient math.

Models Rodinia's srad: a 5-point stencil whose update coefficient needs a
divide and a square root per element, mixing memory latency with SFU
throughput pressure.
"""

from __future__ import annotations

import numpy as np

from repro.isa.assembler import assemble
from repro.kernels.base import Benchmark, Prepared, expect_close, make_gmem
from repro.workloads.grids import random_grid

CTA_X, CTA_Y = 32, 2
WIDTH = 128
LAMBDA = 0.25

# param0=&in, param1=&out, param2=W, param3=H
ASM = f"""
.kernel srad
.regs 22
.cta {CTA_X} {CTA_Y}
entry:
    S2R   r0, %tid_x
    S2R   r1, %tid_y
    S2R   r2, %ctaid_x
    S2R   r3, %ctaid_y
    S2R   r4, %param2           // W
    S2R   r5, %param3           // H
    SHL   r6, r2, #5
    IADD  r6, r6, r0            // x
    SHL   r7, r3, #1
    IADD  r7, r7, r1            // y
    S2R   r8, %param0
    IMAD  r9, r7, r4, r6
    SHL   r9, r9, #2
    IADD  r9, r9, r8
    LDG   r10, [r9]             // center c
    ISUB  r11, r6, #1
    IMAX  r11, r11, #0
    IMAD  r12, r7, r4, r11
    SHL   r12, r12, #2
    IADD  r12, r12, r8
    LDG   r13, [r12]            // west
    IADD  r11, r6, #1
    ISUB  r12, r4, #1
    IMIN  r11, r11, r12
    IMAD  r12, r7, r4, r11
    SHL   r12, r12, #2
    IADD  r12, r12, r8
    LDG   r14, [r12]            // east
    ISUB  r11, r7, #1
    IMAX  r11, r11, #0
    IMAD  r12, r11, r4, r6
    SHL   r12, r12, #2
    IADD  r12, r12, r8
    LDG   r15, [r12]            // north
    IADD  r11, r7, #1
    ISUB  r12, r5, #1
    IMIN  r11, r11, r12
    IMAD  r12, r11, r4, r6
    SHL   r12, r12, #2
    IADD  r12, r12, r8
    LDG   r16, [r12]            // south
    FADD  r17, r13, r14
    FADD  r17, r17, r15
    FADD  r17, r17, r16
    FMUL  r18, r10, #4.0
    FSUB  r17, r17, r18         // laplacian d
    FADD  r18, r10, #1.0
    FDIV  r19, r17, r18         // q = d / (c + 1)
    FABS  r20, r19
    FADD  r20, r20, #1.0
    FSQRT r20, r20              // g = sqrt(|q| + 1)
    FDIV  r19, r17, r20         // d / g
    FMUL  r19, r19, #{LAMBDA}
    FADD  r10, r10, r19         // c + lambda * d / g
    S2R   r21, %param1
    IMAD  r9, r7, r4, r6
    SHL   r9, r9, #2
    IADD  r9, r9, r21
    STG   [r9], r10
    EXIT
"""

KERNEL = assemble(ASM)


def _reference(field: np.ndarray) -> np.ndarray:
    padded = np.pad(field, 1, mode="edge")
    north = padded[:-2, 1:-1]
    south = padded[2:, 1:-1]
    west = padded[1:-1, :-2]
    east = padded[1:-1, 2:]
    lap = north + south + east + west - 4.0 * field
    q = lap / (field + 1.0)
    g = np.sqrt(np.abs(q) + 1.0)
    return field + LAMBDA * lap / g


def prepare(scale: float = 1.0) -> Prepared:
    rows_of_ctas = max(2, int(12 * scale))
    height = CTA_Y * rows_of_ctas
    field = random_grid(height, WIDTH, seed=131, low=0.1, high=1.0)
    reference = _reference(field).ravel()

    gmem = make_gmem()
    gmem.alloc("in", height * WIDTH)
    gmem.alloc("out", height * WIDTH)
    gmem.write("in", field)

    def check(result):
        expect_close(result, "out", reference, rtol=1e-9)

    return Prepared(
        gmem=gmem,
        grid_dim=(WIDTH // CTA_X, rows_of_ctas, 1),
        params=(gmem.base("in"), gmem.base("out"), WIDTH, height),
        check=check,
    )


BENCHMARK = Benchmark(
    name="srad",
    suite="Rodinia",
    description="Diffusion stencil with SFU divide/sqrt per element",
    category="latency",
    kernel=KERNEL,
    prepare=prepare,
)
