"""hotspot — 5-point thermal stencil with clamped borders.

Models Rodinia's hotspot: small (32×2) CTAs make it scheduling-limited,
and the neighbour loads expose memory latency that 16 resident warps
cannot hide — a paper-style VT winner.
"""

from __future__ import annotations

import numpy as np

from repro.isa.assembler import assemble
from repro.kernels.base import Benchmark, Prepared, expect_close, make_gmem
from repro.workloads.grids import random_grid, stencil5_reference

CTA_X, CTA_Y = 32, 2
WIDTH = 128
CENTER_W = 0.5
NEIGHBOR_W = 0.125

# param0=&in, param1=&out, param2=W, param3=H
ASM = f"""
.kernel hotspot
.regs 18
.cta {CTA_X} {CTA_Y}
entry:
    S2R   r0, %tid_x
    S2R   r1, %tid_y
    S2R   r2, %ctaid_x
    S2R   r3, %ctaid_y
    S2R   r4, %param2           // W
    S2R   r5, %param3           // H
    SHL   r6, r2, #5
    IADD  r6, r6, r0            // x
    SHL   r7, r3, #1
    IADD  r7, r7, r1            // y
    S2R   r8, %param0
    IMAD  r9, r7, r4, r6
    SHL   r9, r9, #2
    IADD  r9, r9, r8
    LDG   r10, [r9]             // center
    ISUB  r11, r6, #1
    IMAX  r11, r11, #0          // clamped x-1
    IMAD  r12, r7, r4, r11
    SHL   r12, r12, #2
    IADD  r12, r12, r8
    LDG   r13, [r12]            // west
    IADD  r11, r6, #1
    ISUB  r12, r4, #1
    IMIN  r11, r11, r12         // clamped x+1
    IMAD  r12, r7, r4, r11
    SHL   r12, r12, #2
    IADD  r12, r12, r8
    LDG   r14, [r12]            // east
    ISUB  r11, r7, #1
    IMAX  r11, r11, #0          // clamped y-1
    IMAD  r12, r11, r4, r6
    SHL   r12, r12, #2
    IADD  r12, r12, r8
    LDG   r15, [r12]            // north
    IADD  r11, r7, #1
    ISUB  r12, r5, #1
    IMIN  r11, r11, r12         // clamped y+1
    IMAD  r12, r11, r4, r6
    SHL   r12, r12, #2
    IADD  r12, r12, r8
    LDG   r16, [r12]            // south
    FADD  r13, r13, r14
    FADD  r13, r13, r15
    FADD  r13, r13, r16
    FMUL  r13, r13, #{NEIGHBOR_W}
    FMUL  r10, r10, #{CENTER_W}
    FADD  r10, r10, r13
    S2R   r17, %param1
    IMAD  r9, r7, r4, r6
    SHL   r9, r9, #2
    IADD  r9, r9, r17
    STG   [r9], r10
    EXIT
"""

KERNEL = assemble(ASM)


def prepare(scale: float = 1.0) -> Prepared:
    rows_of_ctas = max(2, int(12 * scale))
    height = CTA_Y * rows_of_ctas
    field = random_grid(height, WIDTH, seed=51)
    gmem = make_gmem()
    gmem.alloc("in", height * WIDTH)
    gmem.alloc("out", height * WIDTH)
    gmem.write("in", field)
    reference = stencil5_reference(field, CENTER_W, NEIGHBOR_W).ravel()

    def check(result):
        expect_close(result, "out", reference)

    return Prepared(
        gmem=gmem,
        grid_dim=(WIDTH // CTA_X, rows_of_ctas, 1),
        params=(gmem.base("in"), gmem.base("out"), WIDTH, height),
        check=check,
    )


BENCHMARK = Benchmark(
    name="hotspot",
    suite="Rodinia",
    description="5-point thermal stencil, small CTAs, latency-sensitive",
    category="latency",
    kernel=KERNEL,
    prepare=prepare,
)
