"""spmv — CSR sparse matrix-vector product, one thread per row.

Models Parboil's spmv: irregular per-row trip counts (warp divergence on
the nonzero loop) and gather loads of ``x[col[j]]`` that rarely coalesce —
scheduling-limited, latency/irregularity-bound.
"""

from __future__ import annotations

from repro.isa.assembler import assemble
from repro.kernels.base import Benchmark, Prepared, expect_close, make_gmem
from repro.workloads import random_array
from repro.workloads.matrices import csr_matvec, random_csr_matrix

CTA_THREADS = 64

# param0=&rowptr, param1=&col, param2=&val, param3=&x, param4=&y
ASM = f"""
.kernel spmv
.regs 18
.cta {CTA_THREADS}
entry:
    S2R   r0, %ctaid_x
    S2R   r1, %ntid_x
    S2R   r2, %tid_x
    IMAD  r3, r0, r1, r2        // row
    SHL   r4, r3, #2
    S2R   r5, %param0
    IADD  r5, r5, r4
    LDG   r6, [r5]              // j = rowptr[row]
    LDG   r7, [r5+4]            // end = rowptr[row+1]
    MOV   r8, #0.0              // acc
    S2R   r9, %param1
    S2R   r10, %param2
    S2R   r11, %param3
    SETP.GE r12, r6, r7
@r12 BRA  store
rowloop:
    SHL   r13, r6, #2
    IADD  r14, r13, r9
    LDG   r15, [r14]            // col[j]
    IADD  r14, r13, r10
    LDG   r16, [r14]            // val[j]
    SHL   r15, r15, #2
    IADD  r15, r15, r11
    LDG   r17, [r15]            // x[col[j]]  (gather)
    FFMA  r8, r16, r17, r8
    IADD  r6, r6, #1
    SETP.LT r12, r6, r7
@r12 BRA  rowloop
store:
    S2R   r13, %param4
    IADD  r13, r13, r4
    STG   [r13], r8
    EXIT
"""

KERNEL = assemble(ASM)


def prepare(scale: float = 1.0) -> Prepared:
    grid = max(2, int(24 * scale))
    rows = CTA_THREADS * grid
    cols = rows
    row_ptr, col_idx, values = random_csr_matrix(rows, cols, avg_nnz_per_row=8, seed=91)
    x = random_array(cols, seed=92)
    reference = csr_matvec(row_ptr, col_idx, values, x)

    gmem = make_gmem()
    gmem.alloc("rowptr", rows + 1)
    gmem.alloc("col", max(1, len(col_idx)))
    gmem.alloc("val", max(1, len(values)))
    gmem.alloc("x", cols)
    gmem.alloc("y", rows)
    gmem.write("rowptr", row_ptr)
    gmem.write("col", col_idx)
    gmem.write("val", values)
    gmem.write("x", x)

    def check(result):
        expect_close(result, "y", reference, rtol=1e-9)

    return Prepared(
        gmem=gmem,
        grid_dim=(grid, 1, 1),
        params=(
            gmem.base("rowptr"),
            gmem.base("col"),
            gmem.base("val"),
            gmem.base("x"),
            gmem.base("y"),
        ),
        check=check,
    )


BENCHMARK = Benchmark(
    name="spmv",
    suite="Parboil",
    description="CSR SpMV, thread-per-row, divergent nonzero loops + gathers",
    category="irregular",
    kernel=KERNEL,
    prepare=prepare,
)
