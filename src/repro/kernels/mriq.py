"""mriq — MRI Q-matrix-style compute kernel (SFU-bound).

Models Parboil's mri-q: a long per-point loop over sample values whose
body is dominated by special-function math (the real kernel's sin/cos are
stood in by an sqrt + divide pair with the same SFU cost profile).
Compute-bound: scheduling-limited on paper but with nothing for VT to
hide, so the expected speedup is ~1.0.
"""

from __future__ import annotations

import numpy as np

from repro.isa.assembler import assemble
from repro.kernels.base import Benchmark, Prepared, expect_close, make_gmem
from repro.workloads import random_array

CTA_THREADS = 128
NUM_SAMPLES = 24

# param0=&x, param1=&kvals, param2=&out, param3=K
ASM = f"""
.kernel mriq
.regs 16
.cta {CTA_THREADS}
entry:
    S2R   r0, %ctaid_x
    S2R   r1, %ntid_x
    S2R   r2, %tid_x
    IMAD  r3, r0, r1, r2
    SHL   r4, r3, #2
    S2R   r5, %param0
    IADD  r5, r5, r4
    LDG   r6, [r5]              // x[i]
    MOV   r7, #0.0              // acc
    MOV   r8, #0                // k
    S2R   r9, %param1
loop:
    SHL   r10, r8, #2
    IADD  r10, r10, r9
    LDG   r11, [r10]            // m = kvals[k] (uniform: one line, L1-hot)
    FMUL  r12, r11, r6          // phase = m * x
    FMUL  r13, r12, r12
    FADD  r13, r13, #1.0
    FSQRT r13, r13              // SFU (cos-cost stand-in)
    FDIV  r12, r12, r13         // SFU (sin-cost stand-in)
    FFMA  r7, r11, r12, r7      // acc += m * sin-like
    IADD  r8, r8, #1
    S2R   r14, %param3
    SETP.LT r15, r8, r14
@r15 BRA  loop
    S2R   r10, %param2
    IADD  r10, r10, r4
    STG   [r10], r7
    EXIT
"""

KERNEL = assemble(ASM)


def _reference(x: np.ndarray, kvals: np.ndarray) -> np.ndarray:
    acc = np.zeros_like(x)
    for m in kvals:
        phase = m * x
        acc += m * (phase / np.sqrt(phase * phase + 1.0))
    return acc


def prepare(scale: float = 1.0) -> Prepared:
    grid = max(2, int(16 * scale))
    n = CTA_THREADS * grid
    x = random_array(n, seed=191)
    kvals = random_array(NUM_SAMPLES, seed=192, low=0.5, high=1.5)
    reference = _reference(x, kvals)

    gmem = make_gmem()
    gmem.alloc("x", n)
    gmem.alloc("kvals", NUM_SAMPLES)
    gmem.alloc("out", n)
    gmem.write("x", x)
    gmem.write("kvals", kvals)

    def check(result):
        expect_close(result, "out", reference, rtol=1e-9)

    return Prepared(
        gmem=gmem,
        grid_dim=(grid, 1, 1),
        params=(gmem.base("x"), gmem.base("kvals"), gmem.base("out"), NUM_SAMPLES),
        check=check,
    )


BENCHMARK = Benchmark(
    name="mriq",
    suite="Parboil mri-q",
    description="Per-point SFU-heavy sample loop (compute-bound)",
    category="compute",
    kernel=KERNEL,
    prepare=prepare,
)
