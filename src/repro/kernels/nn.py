"""nn — nearest-neighbour distance kernel (light streaming + SFU).

Models Rodinia's nn: per-record Euclidean distance to a query point from
interleaved (lat, lng) pairs; almost no arithmetic between the loads and
the store, so performance tracks raw memory throughput.
"""

from __future__ import annotations

import numpy as np

from repro.isa.assembler import assemble
from repro.kernels.base import Benchmark, Prepared, expect_close, make_gmem
from repro.workloads import random_array

CTA_THREADS = 128
QUERY_LAT = 30.0
QUERY_LNG = 90.0

# param0=&records (interleaved lat,lng), param1=&dist
ASM = f"""
.kernel nn
.regs 14
.cta {CTA_THREADS}
entry:
    S2R   r0, %ctaid_x
    S2R   r1, %ntid_x
    S2R   r2, %tid_x
    IMAD  r3, r0, r1, r2        // record index
    SHL   r4, r3, #3            // 2 words per record
    S2R   r5, %param0
    IADD  r5, r5, r4
    LDG   r6, [r5]              // lat
    LDG   r7, [r5+4]            // lng
    FSUB  r6, r6, #{QUERY_LAT}
    FSUB  r7, r7, #{QUERY_LNG}
    FMUL  r6, r6, r6
    FFMA  r6, r7, r7, r6
    FSQRT r6, r6
    SHL   r8, r3, #2
    S2R   r9, %param1
    IADD  r8, r8, r9
    STG   [r8], r6
    EXIT
"""

KERNEL = assemble(ASM)


def prepare(scale: float = 1.0) -> Prepared:
    grid = max(2, int(32 * scale))
    n = CTA_THREADS * grid
    lat = random_array(n, seed=141, low=0.0, high=60.0)
    lng = random_array(n, seed=142, low=0.0, high=180.0)
    records = np.empty(2 * n)
    records[0::2] = lat
    records[1::2] = lng
    reference = np.sqrt((lat - QUERY_LAT) ** 2 + (lng - QUERY_LNG) ** 2)

    gmem = make_gmem()
    gmem.alloc("records", 2 * n)
    gmem.alloc("dist", n)
    gmem.write("records", records)

    def check(result):
        expect_close(result, "dist", reference, rtol=1e-9)

    return Prepared(
        gmem=gmem,
        grid_dim=(grid, 1, 1),
        params=(gmem.base("records"), gmem.base("dist")),
        check=check,
    )


BENCHMARK = Benchmark(
    name="nn",
    suite="Rodinia",
    description="Nearest-neighbour distances over interleaved records",
    category="streaming",
    kernel=KERNEL,
    prepare=prepare,
)
