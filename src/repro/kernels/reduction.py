"""reduction — per-CTA tree sum in shared memory (barrier-heavy).

Models Rodinia-style reductions: shared-memory tree with a barrier per
level.  Scheduling-limited with small CTAs; barrier convoys plus the final
store give VT swap opportunities (the ``sync`` class).
"""

from __future__ import annotations

import numpy as np

from repro.isa.assembler import assemble
from repro.kernels.base import Benchmark, Prepared, expect_close, make_gmem
from repro.workloads import random_array

CTA_THREADS = 128
ELEMS_PER_CTA = 2 * CTA_THREADS

# param0 = &in, param1 = &partial
ASM = f"""
.kernel reduction
.regs 16
.smem {CTA_THREADS * 4}
.cta {CTA_THREADS}
entry:
    S2R   r0, %ctaid_x
    S2R   r1, %ntid_x
    S2R   r2, %tid_x
    IMUL  r3, r0, r1
    SHL   r3, r3, #1            // cta element base = ctaid * 256
    IADD  r3, r3, r2
    SHL   r4, r3, #2
    S2R   r5, %param0
    IADD  r5, r5, r4
    LDG   r6, [r5]              // in[base + tid]
    LDG   r7, [r5+{CTA_THREADS * 4}]   // in[base + tid + 128]
    FADD  r6, r6, r7
    SHL   r8, r2, #2            // smem byte address of this thread
    STS   [r8], r6
    BAR
    MOV   r9, #{CTA_THREADS // 2}      // tree stride s
loop:
    SETP.LT r10, r2, r9
    SHL   r11, r9, #2
    IADD  r11, r8, r11          // smem address of partner (tid + s)
@r10 LDS  r12, [r8]
@r10 LDS  r13, [r11]
@r10 FADD r12, r12, r13
@r10 STS  [r8], r12
    BAR
    SHR   r9, r9, #1
    SETP.GE r14, r9, #1
@r14 BRA  loop
    SETP.EQ r10, r2, #0
    MOV   r15, #0
@r10 LDS  r12, [r15]            // smem[0] = CTA total
    S2R   r11, %param1
    SHL   r13, r0, #2
    IADD  r11, r11, r13
@r10 STG  [r11], r12            // partial[ctaid]
    EXIT
"""

KERNEL = assemble(ASM)


def prepare(scale: float = 1.0) -> Prepared:
    grid = max(2, int(64 * scale))
    n = ELEMS_PER_CTA * grid
    data = random_array(n, seed=31)
    gmem = make_gmem()
    gmem.alloc("in", n)
    gmem.alloc("partial", grid)
    gmem.write("in", data)
    reference = data.reshape(grid, ELEMS_PER_CTA).sum(axis=1)

    def check(result):
        expect_close(result, "partial", reference, rtol=1e-9)

    return Prepared(
        gmem=gmem,
        grid_dim=(grid, 1, 1),
        params=(gmem.base("in"), gmem.base("partial")),
        check=check,
    )


BENCHMARK = Benchmark(
    name="reduction",
    suite="Rodinia / CUDA SDK",
    description="Per-CTA shared-memory tree reduction with per-level barriers",
    category="sync",
    kernel=KERNEL,
    prepare=prepare,
)
