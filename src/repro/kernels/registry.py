"""Benchmark registry: the reproduction's analogue of the paper's suite."""

from __future__ import annotations

from repro.kernels import (
    backprop,
    bfs,
    btree,
    chase,
    histogram,
    hotspot,
    kmeans,
    mm_tiled,
    mriq,
    nn,
    nw,
    pathfinder,
    reduction,
    regheavy,
    saxpy,
    scan,
    spmv,
    srad,
    streamcluster,
    stride,
    transpose,
    vecadd,
)
from repro.kernels.base import Benchmark

_MODULES = (
    bfs,
    btree,
    stride,
    chase,
    hotspot,
    kmeans,
    spmv,
    srad,
    streamcluster,
    pathfinder,
    scan,
    reduction,
    backprop,
    histogram,
    saxpy,
    vecadd,
    nn,
    transpose,
    mm_tiled,
    mriq,
    nw,
    regheavy,
)


def all_benchmarks() -> list[Benchmark]:
    """Every benchmark, in the order the experiment tables report them."""
    return [m.BENCHMARK for m in _MODULES]


def get(name: str) -> Benchmark:
    for bench in all_benchmarks():
        if bench.name == name:
            return bench
    raise KeyError(f"unknown benchmark {name!r}; known: {[b.name for b in all_benchmarks()]}")


def by_category(category: str) -> list[Benchmark]:
    return [b for b in all_benchmarks() if b.category == category]
