"""vecadd — elementwise c = a + b (STREAM-like, fully coalesced).

Models the paper's streaming class: scheduling-limited by occupancy
arithmetic, but DRAM-bandwidth-bound, so extra TLP from VT buys little —
the paper reports near-zero gains for this class.
"""

from __future__ import annotations

import numpy as np

from repro.isa.assembler import assemble
from repro.kernels.base import Benchmark, Prepared, expect_close, make_gmem
from repro.workloads import random_array

CTA_THREADS = 128

ASM = f"""
.kernel vecadd
.regs 13
.cta {CTA_THREADS}
entry:
    S2R   r0, %ctaid_x
    S2R   r1, %ntid_x
    S2R   r2, %tid_x
    IMAD  r3, r0, r1, r2        // global thread id
    SHL   r4, r3, #2            // byte offset
    S2R   r5, %param0
    IADD  r6, r5, r4
    LDG   r7, [r6]              // a[i]
    S2R   r8, %param1
    IADD  r9, r8, r4
    LDG   r10, [r9]             // b[i]
    FADD  r7, r7, r10
    S2R   r11, %param2
    IADD  r12, r11, r4
    STG   [r12], r7             // c[i]
    EXIT
"""

KERNEL = assemble(ASM)


def prepare(scale: float = 1.0) -> Prepared:
    grid = max(2, int(48 * scale))
    n = CTA_THREADS * grid
    a = random_array(n, seed=11)
    b = random_array(n, seed=12)
    gmem = make_gmem()
    gmem.alloc("a", n)
    gmem.alloc("b", n)
    gmem.alloc("c", n)
    gmem.write("a", a)
    gmem.write("b", b)
    reference = a + b

    def check(result):
        expect_close(result, "c", reference)

    return Prepared(
        gmem=gmem,
        grid_dim=(grid, 1, 1),
        params=(gmem.base("a"), gmem.base("b"), gmem.base("c")),
        check=check,
    )


BENCHMARK = Benchmark(
    name="vecadd",
    suite="CUDA SDK / STREAM",
    description="Elementwise vector add, fully coalesced streaming",
    category="streaming",
    kernel=KERNEL,
    prepare=prepare,
)
