"""backprop — neural-network layer-forward with shared-memory reduction.

Models Rodinia's backprop layerforward kernel: a 16×16 CTA computes
``in[ty] * w[ty][j]`` products, tree-reduces them over ``ty`` in shared
memory (barrier per level), and row 0 applies the sigmoid (SFU exp/div)
before storing the activations.
"""

from __future__ import annotations

import numpy as np

from repro.isa.assembler import assemble
from repro.kernels.base import Benchmark, Prepared, expect_close, make_gmem
from repro.workloads import random_array

TILE = 16
HIDDEN = TILE  # input units per layer slice

# param0=&in (16), param1=&w (16×OUT), param2=&out (OUT), param3=OUT
ASM = f"""
.kernel backprop
.regs 20
.smem {TILE * TILE * 4}
.cta {TILE} {TILE}
entry:
    S2R   r0, %tid_x
    S2R   r1, %tid_y
    S2R   r2, %ctaid_x
    S2R   r3, %param3           // OUT (total output units)
    SHL   r4, r2, #4
    IADD  r4, r4, r0            // output unit j
    SHL   r5, r1, #2
    S2R   r6, %param0
    IADD  r5, r5, r6
    LDG   r7, [r5]              // in[ty]
    IMAD  r8, r1, r3, r4
    SHL   r8, r8, #2
    S2R   r9, %param1
    IADD  r8, r8, r9
    LDG   r10, [r8]             // w[ty][j]
    FMUL  r7, r7, r10
    SHL   r11, r1, #4
    IADD  r11, r11, r0
    SHL   r11, r11, #2          // smem[ty][tx]
    STS   [r11], r7
    BAR
    MOV   r12, #{TILE // 2}
rloop:
    SETP.LT r13, r1, r12
    SHL   r14, r12, #6          // partner offset: s rows × 64 bytes
    IADD  r14, r11, r14
@r13 LDS  r15, [r11]
@r13 LDS  r16, [r14]
@r13 FADD r15, r15, r16
@r13 STS  [r11], r15
    BAR
    SHR   r12, r12, #1
    SETP.GE r13, r12, #1
@r13 BRA  rloop
    SETP.EQ r13, r1, #0
@r13 LDS  r15, [r11]            // column sum (ty == 0 row)
    MOV   r16, #0.0
    FSUB  r15, r16, r15
    FEXP  r15, r15              // exp(-sum)
    FADD  r15, r15, #1.0
    MOV   r17, #1.0
    FDIV  r15, r17, r15         // sigmoid
    SHL   r18, r4, #2
    S2R   r19, %param2
    IADD  r18, r18, r19
@r13 STG  [r18], r15
    EXIT
"""

KERNEL = assemble(ASM)


def prepare(scale: float = 1.0) -> Prepared:
    grid = max(2, int(24 * scale))
    out_units = TILE * grid
    inputs = random_array(HIDDEN, seed=121)
    weights = random_array(HIDDEN * out_units, seed=122).reshape(HIDDEN, out_units)
    sums = inputs @ weights
    reference = 1.0 / (1.0 + np.exp(-sums))

    gmem = make_gmem()
    gmem.alloc("in", HIDDEN)
    gmem.alloc("w", HIDDEN * out_units)
    gmem.alloc("out", out_units)
    gmem.write("in", inputs)
    gmem.write("w", weights)

    def check(result):
        expect_close(result, "out", reference, rtol=1e-9)

    return Prepared(
        gmem=gmem,
        grid_dim=(grid, 1, 1),
        params=(gmem.base("in"), gmem.base("w"), gmem.base("out"), out_units),
        check=check,
    )


BENCHMARK = Benchmark(
    name="backprop",
    suite="Rodinia",
    description="Layer-forward: products + shared-memory tree + sigmoid",
    category="sync",
    kernel=KERNEL,
    prepare=prepare,
)
