"""saxpy — y = alpha*x + y with a grid-stride loop (streaming class)."""

from __future__ import annotations

from repro.isa.assembler import assemble
from repro.kernels.base import Benchmark, Prepared, expect_close, make_gmem
from repro.workloads import random_array

CTA_THREADS = 128
ELEMS_PER_THREAD = 4
ALPHA = 2.5

# param0 = &x, param1 = &y, param2 = &out, param3 = total stride in bytes
ASM = f"""
.kernel saxpy
.regs 16
.cta {CTA_THREADS}
entry:
    S2R   r0, %ctaid_x
    S2R   r1, %ntid_x
    S2R   r2, %tid_x
    IMAD  r3, r0, r1, r2        // global thread id
    SHL   r4, r3, #2            // byte offset of first element
    S2R   r5, %param0
    IADD  r5, r5, r4            // &x[i]
    S2R   r6, %param1
    IADD  r6, r6, r4            // &y[i]
    S2R   r7, %param2
    IADD  r7, r7, r4            // &out[i]
    S2R   r8, %param3           // grid stride in bytes
    MOV   r9, #0                // iteration counter
loop:
    LDG   r10, [r5]
    LDG   r11, [r6]
    FMUL  r10, r10, #{ALPHA}
    FADD  r10, r10, r11
    STG   [r7], r10
    IADD  r5, r5, r8
    IADD  r6, r6, r8
    IADD  r7, r7, r8
    IADD  r9, r9, #1
    SETP.LT r12, r9, #{ELEMS_PER_THREAD}
@r12 BRA  loop
    EXIT
"""

KERNEL = assemble(ASM)


def prepare(scale: float = 1.0) -> Prepared:
    grid = max(2, int(24 * scale))
    n = CTA_THREADS * grid * ELEMS_PER_THREAD
    stride_bytes = CTA_THREADS * grid * 4
    x = random_array(n, seed=21)
    y = random_array(n, seed=22)
    gmem = make_gmem()
    gmem.alloc("x", n)
    gmem.alloc("y", n)
    gmem.alloc("out", n)
    gmem.write("x", x)
    gmem.write("y", y)
    reference = ALPHA * x + y

    def check(result):
        expect_close(result, "out", reference)

    return Prepared(
        gmem=gmem,
        grid_dim=(grid, 1, 1),
        params=(gmem.base("x"), gmem.base("y"), gmem.base("out"), stride_bytes),
        check=check,
    )


BENCHMARK = Benchmark(
    name="saxpy",
    suite="CUDA SDK / cuBLAS",
    description="Grid-stride saxpy, coalesced streaming with a short loop",
    category="streaming",
    kernel=KERNEL,
    prepare=prepare,
)
