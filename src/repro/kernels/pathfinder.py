"""pathfinder — dynamic-programming wavefront with two barriers per step.

Models Rodinia's pathfinder: each CTA owns a block of columns held in
shared memory; every DP step reads neighbours (clamped at the CTA edge,
i.e. the blocked variant), synchronizes, adds the next wall row from
global memory, and synchronizes again.  Barrier convoys interleaved with
one global load per step are exactly the whole-CTA stall pattern VT's
swap trigger targets.
"""

from __future__ import annotations

import numpy as np

from repro.isa.assembler import assemble
from repro.kernels.base import Benchmark, Prepared, expect_close, make_gmem
from repro.workloads import random_array

CTA_THREADS = 128
STEPS = 12

# param0=&wall ((T+1)×W row-major), param1=&out, param2=W, param3=T
ASM = f"""
.kernel pathfinder
.regs 20
.smem {CTA_THREADS * 4}
.cta {CTA_THREADS}
entry:
    S2R   r0, %ctaid_x
    S2R   r1, %ntid_x
    S2R   r2, %tid_x
    IMAD  r3, r0, r1, r2        // column
    S2R   r4, %param2           // W
    S2R   r5, %param0
    SHL   r6, r3, #2
    IADD  r7, r5, r6            // &wall[0][col]
    LDG   r8, [r7]
    SHL   r9, r2, #2            // own smem slot
    STS   [r9], r8
    ISUB  r10, r2, #1
    IMAX  r10, r10, #0
    SHL   r10, r10, #2          // left neighbour slot (clamped)
    IADD  r11, r2, #1
    IMIN  r11, r11, #{CTA_THREADS - 1}
    SHL   r11, r11, #2          // right neighbour slot (clamped)
    MOV   r12, #1               // step t
    SHL   r13, r4, #2           // row stride in bytes
    IADD  r7, r7, r13           // &wall[1][col]
    BAR
steploop:
    LDS   r14, [r10]
    LDS   r15, [r9]
    LDS   r16, [r11]
    FMIN  r14, r14, r15
    FMIN  r14, r14, r16
    BAR
    LDG   r17, [r7]             // wall[t][col]
    FADD  r14, r14, r17
    STS   [r9], r14
    IADD  r7, r7, r13
    IADD  r12, r12, #1
    BAR
    S2R   r18, %param3
    SETP.LE r19, r12, r18
@r19 BRA  steploop
    S2R   r17, %param1
    IADD  r17, r17, r6
    STG   [r17], r14
    EXIT
"""

KERNEL = assemble(ASM)


def _reference(wall: np.ndarray, steps: int) -> np.ndarray:
    """Blocked pathfinder: neighbour min clamped at CTA boundaries."""
    width = wall.shape[1]
    src = wall[0].copy()
    for t in range(1, steps + 1):
        dst = np.empty(width)
        for block_start in range(0, width, CTA_THREADS):
            block = src[block_start : block_start + CTA_THREADS]
            left = np.concatenate(([block[0]], block[:-1]))
            right = np.concatenate((block[1:], [block[-1]]))
            best = np.minimum(np.minimum(left, block), right)
            dst[block_start : block_start + CTA_THREADS] = (
                best + wall[t, block_start : block_start + CTA_THREADS]
            )
        src = dst
    return src


def prepare(scale: float = 1.0) -> Prepared:
    grid = max(2, int(24 * scale))
    width = CTA_THREADS * grid
    wall = random_array((STEPS + 1) * width, seed=101).reshape(STEPS + 1, width)
    reference = _reference(wall, STEPS)

    gmem = make_gmem()
    gmem.alloc("wall", (STEPS + 1) * width)
    gmem.alloc("out", width)
    gmem.write("wall", wall)

    def check(result):
        expect_close(result, "out", reference, rtol=1e-9)

    return Prepared(
        gmem=gmem,
        grid_dim=(grid, 1, 1),
        params=(gmem.base("wall"), gmem.base("out"), width, STEPS),
        check=check,
    )


BENCHMARK = Benchmark(
    name="pathfinder",
    suite="Rodinia",
    description="Blocked DP wavefront, two barriers + one global load per step",
    category="sync",
    kernel=KERNEL,
    prepare=prepare,
)
