"""btree — batched binary search over a sorted key array.

Models Rodinia's b+tree lookups: every thread walks log2(N) *dependent*,
data-scattered loads through a 64 KiB key array (larger than L1), so the
warp serializes on L2-latency round trips — a textbook latency-bound,
irregular VT winner.
"""

from __future__ import annotations

import numpy as np

from repro.isa.assembler import assemble
from repro.kernels.base import Benchmark, Prepared, expect_close, make_gmem
from repro.workloads import random_array

CTA_THREADS = 64
NUM_KEYS = 16384  # 64 KiB: misses L1, lives in L2

# param0=&keys (sorted), param1=&queries, param2=&result, param3=N
ASM = f"""
.kernel btree
.regs 16
.cta {CTA_THREADS}
entry:
    S2R   r0, %ctaid_x
    S2R   r1, %ntid_x
    S2R   r2, %tid_x
    IMAD  r3, r0, r1, r2        // query index
    SHL   r4, r3, #2
    S2R   r5, %param1
    IADD  r5, r5, r4
    LDG   r6, [r5]              // q = queries[i]
    MOV   r7, #0                // lo
    S2R   r8, %param3           // hi = N
    S2R   r9, %param0
loop:
    IADD  r10, r7, r8
    SHR   r10, r10, #1          // mid
    SHL   r11, r10, #2
    IADD  r11, r11, r9
    LDG   r12, [r11]            // keys[mid] — dependent scattered load
    SETP.LE r13, r12, r6
@r13 IADD r7, r10, #1           // keys[mid] <= q: lo = mid + 1
@!r13 MOV r8, r10               // else: hi = mid
    ISUB  r14, r8, r7
    SETP.GT r15, r14, #0
@r15 BRA  loop
    S2R   r10, %param2
    IADD  r10, r10, r4
    STG   [r10], r7             // upper-bound insertion point
    EXIT
"""

KERNEL = assemble(ASM)


def prepare(scale: float = 1.0) -> Prepared:
    grid = max(2, int(24 * scale))
    n = CTA_THREADS * grid
    keys = np.sort(random_array(NUM_KEYS, seed=181))
    queries = random_array(n, seed=182)
    reference = np.searchsorted(keys, queries, side="right").astype(np.float64)

    gmem = make_gmem()
    gmem.alloc("keys", NUM_KEYS)
    gmem.alloc("queries", n)
    gmem.alloc("result", n)
    gmem.write("keys", keys)
    gmem.write("queries", queries)

    def check(result):
        expect_close(result, "result", reference)

    return Prepared(
        gmem=gmem,
        grid_dim=(grid, 1, 1),
        params=(gmem.base("keys"), gmem.base("queries"), gmem.base("result"), NUM_KEYS),
        check=check,
    )


BENCHMARK = Benchmark(
    name="btree",
    suite="Rodinia b+tree",
    description="Batched binary search: dependent scattered loads",
    category="irregular",
    kernel=KERNEL,
    prepare=prepare,
)
