"""histogram — privatized shared-memory histogram with atomics.

Models Parboil's histo: per-CTA shared-memory bins updated with shared
atomics (bank-conflicted by data), merged into the global histogram with
global atomics at the end.
"""

from __future__ import annotations

import numpy as np

from repro.isa.assembler import assemble
from repro.kernels.base import Benchmark, Prepared, expect_close, make_gmem
from repro.workloads import random_ints

CTA_THREADS = 128
NUM_BINS = 64
ITEMS_PER_THREAD = 4

# param0=&data, param1=&hist, param2=grid stride bytes, param3=items/thread
ASM = f"""
.kernel histogram
.regs 16
.smem {NUM_BINS * 4}
.cta {CTA_THREADS}
entry:
    S2R   r0, %ctaid_x
    S2R   r1, %ntid_x
    S2R   r2, %tid_x
    IMAD  r3, r0, r1, r2
    SETP.LT r4, r2, #{NUM_BINS}
    SHL   r5, r2, #2
    MOV   r6, #0.0
@r4  STS  [r5], r6              // zero the private bins
    BAR
    SHL   r7, r3, #2
    S2R   r8, %param0
    IADD  r7, r7, r8            // &data[i]
    S2R   r9, %param2           // grid stride in bytes
    MOV   r10, #0
hloop:
    LDG   r11, [r7]
    F2I   r11, r11
    SHR   r12, r11, #2          // bin = value / 4  (values in 0..255)
    SHL   r12, r12, #2
    MOV   r13, #1.0
    ATOMS_ADD r14, [r12], r13
    IADD  r7, r7, r9
    IADD  r10, r10, #1
    S2R   r15, %param3
    SETP.LT r11, r10, r15
@r11 BRA  hloop
    BAR
@r4  LDS  r11, [r5]
    S2R   r12, %param1
    IADD  r13, r12, r5
@r4  ATOMG_ADD r14, [r13], r11  // merge into global bins
    EXIT
"""

KERNEL = assemble(ASM)


def prepare(scale: float = 1.0) -> Prepared:
    grid = max(2, int(24 * scale))
    n = CTA_THREADS * grid * ITEMS_PER_THREAD
    data = random_ints(n, seed=81, low=0, high=256)
    reference = np.bincount((data.astype(np.int64) >> 2), minlength=NUM_BINS).astype(np.float64)

    gmem = make_gmem()
    gmem.alloc("data", n)
    gmem.alloc("hist", NUM_BINS)
    gmem.write("data", data)

    def check(result):
        expect_close(result, "hist", reference)

    return Prepared(
        gmem=gmem,
        grid_dim=(grid, 1, 1),
        params=(
            gmem.base("data"),
            gmem.base("hist"),
            CTA_THREADS * grid * 4,
            ITEMS_PER_THREAD,
        ),
        check=check,
    )


BENCHMARK = Benchmark(
    name="histogram",
    suite="Parboil",
    description="Privatized histogram: shared atomics + global merge",
    category="irregular",
    kernel=KERNEL,
    prepare=prepare,
)
