"""Benchmark kernel library.

Twenty-one mini-ISA kernels modeled on the Rodinia / Parboil / CUDA-SDK
workloads the Virtual Thread paper evaluates, each paired with a
deterministic workload generator and a numpy reference so every timing run
doubles as a correctness check.  See :mod:`repro.kernels.registry` for the
suite and :mod:`repro.kernels.base` for the :class:`Benchmark` contract.
"""

from repro.kernels.base import Benchmark, CheckFailure, Prepared
from repro.kernels.registry import all_benchmarks, by_category, get

__all__ = [
    "Benchmark",
    "CheckFailure",
    "Prepared",
    "all_benchmarks",
    "by_category",
    "get",
]
