"""Control-flow-graph analysis: basic blocks and reconvergence points.

SIMT divergence is handled with a reconvergence stack (see
:mod:`repro.sim.warp`).  The reconvergence PC of every conditional branch is
its *immediate post-dominator* — the first instruction that every divergent
path is guaranteed to reach.  We compute immediate post-dominators as
immediate dominators of the reversed CFG (networkx provides the classic
Cooper-Harvey-Kennedy algorithm).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.isa.opcodes import Op

#: Sentinel reconvergence PC meaning "paths only rejoin at kernel exit".
EXIT_PC = -1


@dataclass
class BasicBlock:
    """A maximal straight-line instruction run ``[start, end)``."""

    index: int
    start: int
    end: int  # exclusive
    successors: list[int] = field(default_factory=list)

    def __repr__(self) -> str:
        return f"BB{self.index}[{self.start}:{self.end}] -> {self.successors}"


def build_cfg(instrs) -> list[BasicBlock]:
    """Partition ``instrs`` into basic blocks with successor edges.

    Leaders are: PC 0, every branch target, and every instruction following
    a branch or EXIT.  Unreachable blocks are kept (they simply have no
    predecessors) so PCs map cleanly onto blocks.
    """
    n = len(instrs)
    leaders = {0}
    for pc, instr in enumerate(instrs):
        if instr.op is Op.BRA:
            leaders.add(instr.target)
            if pc + 1 < n:
                leaders.add(pc + 1)
        elif instr.op is Op.EXIT and pc + 1 < n:
            leaders.add(pc + 1)
    starts = sorted(leaders)
    blocks: list[BasicBlock] = []
    for i, start in enumerate(starts):
        end = starts[i + 1] if i + 1 < len(starts) else n
        blocks.append(BasicBlock(index=i, start=start, end=end))
    start_to_block = {b.start: b.index for b in blocks}

    for block in blocks:
        last = instrs[block.end - 1]
        if last.op is Op.EXIT:
            continue
        if last.op is Op.BRA:
            block.successors.append(start_to_block[last.target])
            if last.pred is not None and block.end < n:
                block.successors.append(start_to_block[block.end])
        elif block.end < n:
            block.successors.append(start_to_block[block.end])
    return blocks


def reconvergence_table(instrs) -> dict[int, int]:
    """Map each conditional-branch PC to its reconvergence PC.

    Returns ``EXIT_PC`` for branches whose divergent paths only rejoin at
    kernel exit.
    """
    blocks = build_cfg(instrs)
    graph = nx.DiGraph()
    exit_node = "exit"
    graph.add_node(exit_node)
    for block in blocks:
        graph.add_node(block.index)
        if block.successors:
            for succ in block.successors:
                graph.add_edge(block.index, succ)
        else:
            graph.add_edge(block.index, exit_node)
    # Immediate post-dominators = immediate dominators of the reverse graph.
    # Restrict to nodes that can reach exit (all blocks ending in EXIT do;
    # infinite loops cannot diverge-reconverge meaningfully anyway).
    reverse = graph.reverse()
    ipdom = nx.immediate_dominators(reverse, exit_node)

    pc_to_block = {}
    for block in blocks:
        for pc in range(block.start, block.end):
            pc_to_block[pc] = block

    table: dict[int, int] = {}
    for pc, instr in enumerate(instrs):
        if instr.op is not Op.BRA or instr.pred is None:
            continue
        block = pc_to_block[pc]
        node = ipdom.get(block.index)
        # Walk up: the immediate post-dominator of the *branch* is the
        # ipdom of its block (the branch is the block's last instruction).
        if node is None or node == exit_node:
            table[pc] = EXIT_PC
        else:
            target_block = blocks[node]
            table[pc] = target_block.start
    return table


def annotate_reconvergence(kernel) -> None:
    """Fill ``Instruction.reconv_pc`` for every conditional branch."""
    table = reconvergence_table(kernel.instrs)
    for pc, rpc in table.items():
        kernel.instrs[pc].reconv_pc = rpc
