"""Static kernel analysis: instruction mix, control flow, memory shape.

``kernel_profile`` inspects a kernel without running it — the static
counterpart of the simulator's dynamic instruction-mix statistics.  It is
what the benchmark table (E2) and the CLI's ``profile`` command report,
and a quick sanity check when writing new kernels ("does this really have
the barrier density I intended?").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.cfg import build_cfg
from repro.isa.opcodes import Op, OpClass, OPCODE_INFO


@dataclass(frozen=True)
class KernelProfile:
    """Static facts about one kernel's code."""

    name: str
    num_instructions: int
    by_class: dict[str, int]
    global_loads: int
    global_stores: int
    shared_ops: int
    atomics: int
    barriers: int
    conditional_branches: int
    loops: int  # backward conditional branches
    predicated: int
    basic_blocks: int
    max_register: int

    @property
    def arithmetic_intensity(self) -> float:
        """Static compute ops per global-memory op (∞-safe)."""
        compute = (
            self.by_class.get("alu", 0)
            + self.by_class.get("mul", 0)
            + self.by_class.get("fpu", 0)
            + self.by_class.get("sfu", 0)
        )
        mem = self.global_loads + self.global_stores
        return compute / mem if mem else float("inf")

    def rows(self) -> list[tuple[str, str]]:
        mix = ", ".join(f"{k}:{v}" for k, v in sorted(self.by_class.items()))
        return [
            ("instructions", str(self.num_instructions)),
            ("mix", mix),
            ("global loads / stores", f"{self.global_loads} / {self.global_stores}"),
            ("shared-memory ops", str(self.shared_ops)),
            ("atomics", str(self.atomics)),
            ("barriers", str(self.barriers)),
            ("conditional branches (loops)", f"{self.conditional_branches} ({self.loops})"),
            ("predicated instructions", str(self.predicated)),
            ("basic blocks", str(self.basic_blocks)),
            ("highest register", f"r{self.max_register}"),
            ("static arithmetic intensity", f"{self.arithmetic_intensity:.1f} ops/mem-op"),
        ]


def kernel_profile(kernel) -> KernelProfile:
    """Compute the static profile of ``kernel``."""
    by_class: dict[str, int] = {}
    global_loads = global_stores = shared_ops = atomics = 0
    barriers = cond_branches = loops = predicated = 0
    max_register = -1
    for pc, instr in enumerate(kernel.instrs):
        info = OPCODE_INFO[instr.op]
        key = info.op_class.value
        by_class[key] = by_class.get(key, 0) + 1
        max_register = max(max_register, instr.max_reg())
        if instr.pred is not None and instr.op is not Op.BRA:
            predicated += 1
        if info.is_atomic:
            atomics += 1
        if info.op_class is OpClass.MEM_SHARED:
            shared_ops += 1
        elif info.op_class is OpClass.MEM_GLOBAL:
            if info.is_store:
                global_stores += 1
            elif not info.is_atomic:
                global_loads += 1
        if instr.op is Op.BAR:
            barriers += 1
        if instr.is_conditional_branch:
            cond_branches += 1
            if instr.target is not None and instr.target <= pc:
                loops += 1
    return KernelProfile(
        name=kernel.name,
        num_instructions=len(kernel.instrs),
        by_class=by_class,
        global_loads=global_loads,
        global_stores=global_stores,
        shared_ops=shared_ops,
        atomics=atomics,
        barriers=barriers,
        conditional_branches=cond_branches,
        loops=loops,
        predicated=predicated,
        basic_blocks=len(build_cfg(kernel.instrs)),
        max_register=max_register,
    )
