"""Operand and instruction representations for the mini SIMT ISA."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.isa.opcodes import CmpOp, Op, OPCODE_INFO, OpClass


class SpecialReg(enum.Enum):
    """Special (read-only, per-thread) registers exposed via ``S2R``."""

    TID_X = "tid_x"
    TID_Y = "tid_y"
    TID_Z = "tid_z"
    CTAID_X = "ctaid_x"
    CTAID_Y = "ctaid_y"
    CTAID_Z = "ctaid_z"
    NTID_X = "ntid_x"
    NTID_Y = "ntid_y"
    NTID_Z = "ntid_z"
    NCTAID_X = "nctaid_x"
    NCTAID_Y = "nctaid_y"
    NCTAID_Z = "nctaid_z"
    LANEID = "laneid"
    WARPID = "warpid"
    # Kernel launch parameters (scalar arguments, e.g. buffer base addresses),
    # the mini-ISA analogue of CUDA's constant-bank kernel params.
    PARAM0 = "param0"
    PARAM1 = "param1"
    PARAM2 = "param2"
    PARAM3 = "param3"
    PARAM4 = "param4"
    PARAM5 = "param5"
    PARAM6 = "param6"
    PARAM7 = "param7"


@dataclass(frozen=True)
class Reg:
    """A general-purpose register operand ``r<idx>``."""

    idx: int

    def __repr__(self) -> str:
        return f"r{self.idx}"


@dataclass(frozen=True)
class Imm:
    """An immediate operand."""

    value: float

    def __repr__(self) -> str:
        return f"#{self.value}"


@dataclass(frozen=True)
class SReg:
    """A special-register operand (only legal as the source of ``S2R``)."""

    kind: SpecialReg

    def __repr__(self) -> str:
        return f"%{self.kind.value}"


@dataclass(frozen=True)
class MemRef:
    """A memory reference ``[r<base> + offset]`` with a byte offset."""

    base: Reg
    offset: int = 0

    def __repr__(self) -> str:
        if self.offset:
            return f"[{self.base!r}+{self.offset}]"
        return f"[{self.base!r}]"


Operand = Reg | Imm | SReg | MemRef


@dataclass
class Instruction:
    """One decoded instruction.

    Attributes:
        op: The opcode.
        dst: Destination register, or ``None`` for stores/control flow.
        srcs: Source operands in opcode order.  For memory operations the
            :class:`MemRef` appears in ``srcs`` (first for loads/atomics,
            second for stores is the data register).
        cmp: Comparison kind, only meaningful for ``SETP``.
        target: Branch-target PC (instruction index), only for ``BRA``.
            Filled in by the assembler / builder once labels are resolved.
        pred: Optional predicate register guarding the instruction
            (``@rP`` / ``@!rP``).  For ``BRA`` this makes the branch
            conditional; for other ops it masks out lanes.
        pred_neg: Whether the predicate is negated.
    """

    op: Op
    dst: Reg | None = None
    srcs: tuple[Operand, ...] = ()
    cmp: CmpOp | None = None
    target: int | None = None
    pred: Reg | None = None
    pred_neg: bool = False
    #: Reconvergence PC for divergent branches; filled by CFG analysis.
    reconv_pc: int | None = field(default=None, compare=False)

    def __post_init__(self):
        # Issue-time hot path: the opcode metadata and hazard register list
        # are functions of fields fixed at construction (``target`` and
        # ``reconv_pc`` are patched later but name no registers), so they
        # are computed once here instead of per scoreboard/scheduler query.
        self.info = OPCODE_INFO[self.op]
        self._class_key = self.info.op_class.value
        regs: list[int] = []
        for operand in self.srcs:
            if isinstance(operand, Reg):
                regs.append(operand.idx)
            elif isinstance(operand, MemRef):
                regs.append(operand.base.idx)
        if self.pred is not None:
            regs.append(self.pred.idx)
        self._src_regs = tuple(regs)
        # Sources then destination, duplicates kept: the scoreboard's
        # latest-blocker classification walks this exact order.
        self._hazard_regs = self._src_regs + (
            (self.dst.idx,) if self.dst is not None else ())

    @property
    def is_branch(self) -> bool:
        return self.op is Op.BRA

    @property
    def is_conditional_branch(self) -> bool:
        return self.op is Op.BRA and self.pred is not None

    @property
    def is_global_mem(self) -> bool:
        return self.info.op_class is OpClass.MEM_GLOBAL

    @property
    def is_shared_mem(self) -> bool:
        return self.info.op_class is OpClass.MEM_SHARED

    @property
    def is_load(self) -> bool:
        return self.info.is_mem and self.info.has_dst and not self.info.is_atomic

    @property
    def is_store(self) -> bool:
        return self.info.is_store

    @property
    def is_barrier(self) -> bool:
        return self.op is Op.BAR

    @property
    def is_exit(self) -> bool:
        return self.op is Op.EXIT

    def src_regs(self) -> list[int]:
        """Register indices read by this instruction (including predicates
        and memory base addresses)."""
        return list(self._src_regs)

    def dst_reg(self) -> int | None:
        return self.dst.idx if self.dst is not None else None

    def max_reg(self) -> int:
        """Highest register index touched, or -1 if none."""
        regs = self.src_regs()
        if self.dst is not None:
            regs = regs + [self.dst.idx]
        return max(regs, default=-1)

    def __repr__(self) -> str:
        parts = []
        if self.pred is not None:
            parts.append(f"@{'!' if self.pred_neg else ''}{self.pred!r}")
        name = self.op.value
        if self.cmp is not None:
            name += f".{self.cmp.value.upper()}"
        parts.append(name)
        operands = []
        if self.dst is not None:
            operands.append(repr(self.dst))
        operands.extend(repr(s) for s in self.srcs)
        if self.target is not None:
            operands.append(f"pc:{self.target}")
        if operands:
            parts.append(", ".join(operands))
        return " ".join(parts)
