"""Opcode definitions for the mini SIMT ISA.

Every opcode carries static metadata used by both the functional executor
(:mod:`repro.sim.exec`) and the timing model (:mod:`repro.sim.smcore`):

* an :class:`OpClass` that selects the functional unit / latency class, and
* the number of register sources it reads (used by the scoreboard).

Latency *values* live in :class:`repro.sim.config.GPUConfig`; opcodes only
name the class, so one kernel can be timed under many configurations.
"""

from __future__ import annotations

import enum


class OpClass(enum.Enum):
    """Functional-unit / latency class of an opcode."""

    ALU = "alu"  # simple integer / move / compare
    MUL = "mul"  # integer multiply, multiply-add
    FPU = "fpu"  # single-precision add/mul/fma
    SFU = "sfu"  # special function unit: div, sqrt, exp
    MEM_GLOBAL = "mem_global"  # global loads/stores/atomics
    MEM_SHARED = "mem_shared"  # shared-memory accesses
    CTRL = "ctrl"  # branches, barrier, exit, nop


class CmpOp(enum.Enum):
    """Comparison kinds for ``SETP``."""

    EQ = "eq"
    NE = "ne"
    LT = "lt"
    LE = "le"
    GT = "gt"
    GE = "ge"


class Op(enum.Enum):
    """All opcodes of the mini ISA."""

    # Integer arithmetic.
    IADD = "IADD"
    ISUB = "ISUB"
    IMUL = "IMUL"
    IMAD = "IMAD"  # d = a * b + c
    IDIV = "IDIV"
    IREM = "IREM"
    IMIN = "IMIN"
    IMAX = "IMAX"
    AND = "AND"
    OR = "OR"
    XOR = "XOR"
    SHL = "SHL"
    SHR = "SHR"
    # Floating point.
    FADD = "FADD"
    FSUB = "FSUB"
    FMUL = "FMUL"
    FFMA = "FFMA"  # d = a * b + c
    FDIV = "FDIV"
    FMIN = "FMIN"
    FMAX = "FMAX"
    FSQRT = "FSQRT"
    FEXP = "FEXP"
    FABS = "FABS"
    # Conversions and data movement.
    I2F = "I2F"
    F2I = "F2I"
    MOV = "MOV"  # also accepts an immediate source
    SEL = "SEL"  # d = src0 ? src1 : src2
    S2R = "S2R"  # read special register
    SETP = "SETP"  # d = cmp(src0, src1) ? 1 : 0
    # Memory.
    LDG = "LDG"  # load global
    STG = "STG"  # store global
    LDS = "LDS"  # load shared
    STS = "STS"  # store shared
    ATOMG_ADD = "ATOMG_ADD"  # global atomic add, returns old value
    ATOMS_ADD = "ATOMS_ADD"  # shared atomic add, returns old value
    ATOMG_MAX = "ATOMG_MAX"
    # Control.
    BRA = "BRA"  # branch (conditional when predicated)
    BAR = "BAR"  # CTA-wide barrier
    EXIT = "EXIT"
    NOP = "NOP"


class OpInfo:
    """Static metadata for one opcode."""

    __slots__ = ("op", "op_class", "num_srcs", "has_dst", "is_branch", "is_mem", "is_store", "is_atomic")

    def __init__(self, op: Op, op_class: OpClass, num_srcs: int, has_dst: bool):
        self.op = op
        self.op_class = op_class
        self.num_srcs = num_srcs
        self.has_dst = has_dst
        self.is_branch = op is Op.BRA
        self.is_mem = op_class in (OpClass.MEM_GLOBAL, OpClass.MEM_SHARED)
        self.is_store = op in (Op.STG, Op.STS)
        self.is_atomic = op in (Op.ATOMG_ADD, Op.ATOMS_ADD, Op.ATOMG_MAX)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OpInfo({self.op.name}, {self.op_class.name})"


def _build_table() -> dict[Op, OpInfo]:
    a, m, f, s = OpClass.ALU, OpClass.MUL, OpClass.FPU, OpClass.SFU
    mg, ms, c = OpClass.MEM_GLOBAL, OpClass.MEM_SHARED, OpClass.CTRL
    spec = {
        Op.IADD: (a, 2, True),
        Op.ISUB: (a, 2, True),
        Op.IMUL: (m, 2, True),
        Op.IMAD: (m, 3, True),
        Op.IDIV: (s, 2, True),
        Op.IREM: (s, 2, True),
        Op.IMIN: (a, 2, True),
        Op.IMAX: (a, 2, True),
        Op.AND: (a, 2, True),
        Op.OR: (a, 2, True),
        Op.XOR: (a, 2, True),
        Op.SHL: (a, 2, True),
        Op.SHR: (a, 2, True),
        Op.FADD: (f, 2, True),
        Op.FSUB: (f, 2, True),
        Op.FMUL: (f, 2, True),
        Op.FFMA: (f, 3, True),
        Op.FDIV: (s, 2, True),
        Op.FMIN: (f, 2, True),
        Op.FMAX: (f, 2, True),
        Op.FSQRT: (s, 1, True),
        Op.FEXP: (s, 1, True),
        Op.FABS: (f, 1, True),
        Op.I2F: (a, 1, True),
        Op.F2I: (a, 1, True),
        Op.MOV: (a, 1, True),
        Op.SEL: (a, 3, True),
        Op.S2R: (a, 1, True),
        Op.SETP: (a, 2, True),
        Op.LDG: (mg, 1, True),
        Op.STG: (mg, 2, False),
        Op.LDS: (ms, 1, True),
        Op.STS: (ms, 2, False),
        Op.ATOMG_ADD: (mg, 2, True),
        Op.ATOMS_ADD: (ms, 2, True),
        Op.ATOMG_MAX: (mg, 2, True),
        Op.BRA: (c, 0, False),
        Op.BAR: (c, 0, False),
        Op.EXIT: (c, 0, False),
        Op.NOP: (c, 0, False),
    }
    return {op: OpInfo(op, cls, nsrc, dst) for op, (cls, nsrc, dst) in spec.items()}


#: Opcode metadata table, indexed by :class:`Op`.
OPCODE_INFO: dict[Op, OpInfo] = _build_table()
