"""Text assembler for the mini SIMT ISA.

Grammar (line-oriented)::

    .kernel <name>            start a kernel
    .regs <n>                 architectural registers per thread
    .smem <bytes>             static shared memory per CTA
    .cta <x> [y] [z]          CTA dimensions
    <label>:                  label
    [@[!]rP] OPCODE[.CMP] operands

Operands are comma-separated: ``rN`` (register), ``#v`` or a bare number
(immediate), ``%name`` (special register), ``[rN]`` / ``[rN+off]`` /
``[rN-off]`` (memory reference).  ``#`` at line start (or ``//`` anywhere)
begins a comment; ``;`` separates nothing (not supported).

Example::

    .kernel saxpy
    .regs 8
    .cta 128
    entry:
        S2R   r0, %ctaid_x
        S2R   r1, %ntid_x
        S2R   r2, %tid_x
        IMAD  r3, r0, r1, r2        // global thread id
        SHL   r4, r3, #2            // byte offset
        LDG   r5, [r4]
        FMUL  r5, r5, #2.0
        STG   [r4], r5
        EXIT
"""

from __future__ import annotations

import re

from repro.isa.instruction import Imm, Instruction, MemRef, Reg, SReg, SpecialReg
from repro.isa.kernel import Kernel
from repro.isa.opcodes import CmpOp, Op, OPCODE_INFO


class AssemblerError(ValueError):
    """Raised on any syntax or semantic error, with a line number."""

    def __init__(self, lineno: int, message: str):
        super().__init__(f"line {lineno}: {message}")
        self.lineno = lineno


_MEMREF_RE = re.compile(r"^\[\s*r(\d+)\s*(?:([+-])\s*(\d+)\s*)?\]$")
_LABEL_RE = re.compile(r"^([A-Za-z_][\w.]*):$")
_PRED_RE = re.compile(r"^@(!?)r(\d+)$")
_NUM_RE = re.compile(r"^#?-?(\d+\.?\d*(e-?\d+)?|\.\d+)$", re.IGNORECASE)


def _parse_operand(token: str, lineno: int):
    token = token.strip()
    if not token:
        raise AssemblerError(lineno, "empty operand")
    if token[0] == "r" and token[1:].isdigit():
        return Reg(int(token[1:]))
    if token[0] == "%":
        try:
            return SReg(SpecialReg(token[1:].lower()))
        except ValueError:
            raise AssemblerError(lineno, f"unknown special register {token!r}") from None
    match = _MEMREF_RE.match(token)
    if match:
        base, sign, off = match.groups()
        offset = int(off or 0)
        if sign == "-":
            offset = -offset
        return MemRef(Reg(int(base)), offset)
    if _NUM_RE.match(token):
        literal = token.lstrip("#")
        value = float(literal)
        if value.is_integer() and "." not in literal and "e" not in literal.lower():
            value = int(literal)
        return Imm(value)
    raise AssemblerError(lineno, f"cannot parse operand {token!r}")


def _split_operands(rest: str) -> list[str]:
    """Split an operand string on top-level commas (commas cannot appear
    inside ``[...]`` in this ISA, so a plain split suffices)."""
    rest = rest.strip()
    if not rest:
        return []
    return [part.strip() for part in rest.split(",")]


def _strip_comment(line: str) -> str:
    for marker in ("//", "#"):
        idx = line.find(marker)
        if idx == 0:
            return ""
        if idx > 0:
            # '#' may also introduce an immediate: only treat it as a
            # comment when preceded by whitespace and not followed by a digit.
            if marker == "#" and idx + 1 < len(line) and (line[idx + 1].isdigit() or line[idx + 1] in ".-"):
                continue
            line = line[:idx]
    return line.strip()


def assemble_many(text: str, strict: bool = False) -> dict[str, Kernel]:
    """Assemble every ``.kernel`` in ``text``; returns name -> Kernel.

    With ``strict=True`` every kernel additionally passes the static
    verifier (:mod:`repro.isa.analysis`): lint errors *or* warnings raise
    :class:`~repro.isa.kernel.KernelValidationError`.
    """
    kernels: dict[str, Kernel] = {}
    state: dict | None = None

    def finish():
        nonlocal state
        if state is None:
            return
        for pc, (label, lineno) in state["fixups"]:
            if label not in state["labels"]:
                raise AssemblerError(lineno, f"undefined label {label!r}")
            state["instrs"][pc].target = state["labels"][label]
        kernel = Kernel(
            name=state["name"],
            instrs=state["instrs"],
            regs_per_thread=state["regs"],
            smem_bytes=state["smem"],
            cta_dim=state["cta"],
            labels=state["labels"],
        )
        kernels[kernel.name] = kernel
        state = None

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw)
        if not line:
            continue
        if line.startswith("."):
            parts = line.split()
            directive = parts[0]
            if directive == ".kernel":
                finish()
                if len(parts) != 2:
                    raise AssemblerError(lineno, ".kernel needs a name")
                state = {
                    "name": parts[1],
                    "regs": 16,
                    "smem": 0,
                    "cta": (32, 1, 1),
                    "instrs": [],
                    "labels": {},
                    "fixups": [],
                }
            elif state is None:
                raise AssemblerError(lineno, f"{directive} before .kernel")
            elif directive == ".regs":
                state["regs"] = int(parts[1])
            elif directive == ".smem":
                state["smem"] = int(parts[1])
            elif directive == ".cta":
                dims = [int(p) for p in parts[1:4]]
                while len(dims) < 3:
                    dims.append(1)
                state["cta"] = tuple(dims)
            else:
                raise AssemblerError(lineno, f"unknown directive {directive!r}")
            continue

        if state is None:
            raise AssemblerError(lineno, "instruction before .kernel")

        label_match = _LABEL_RE.match(line)
        if label_match:
            name = label_match.group(1)
            if name in state["labels"]:
                raise AssemblerError(lineno, f"duplicate label {name!r}")
            state["labels"][name] = len(state["instrs"])
            continue

        tokens = line.split(None, 1)
        pred: Reg | None = None
        pred_neg = False
        pred_match = _PRED_RE.match(tokens[0])
        if pred_match:
            pred_neg = pred_match.group(1) == "!"
            pred = Reg(int(pred_match.group(2)))
            if len(tokens) == 1:
                raise AssemblerError(lineno, "predicate without instruction")
            tokens = tokens[1].split(None, 1)

        mnemonic = tokens[0].upper()
        rest = tokens[1] if len(tokens) > 1 else ""
        cmp = None
        if "." in mnemonic:
            base, suffix = mnemonic.split(".", 1)
            mnemonic = base
            try:
                cmp = CmpOp(suffix.lower())
            except ValueError:
                raise AssemblerError(lineno, f"unknown comparison {suffix!r}") from None
        try:
            op = Op(mnemonic)
        except ValueError:
            raise AssemblerError(lineno, f"unknown opcode {mnemonic!r}") from None

        info = OPCODE_INFO[op]
        if op is Op.BRA:
            target = rest.strip()
            if not target:
                raise AssemblerError(lineno, "BRA needs a target label")
            instr = Instruction(op=op, target=-1, pred=pred, pred_neg=pred_neg)
            state["fixups"].append((len(state["instrs"]), (target, lineno)))
            state["instrs"].append(instr)
            continue

        operands = [_parse_operand(tok, lineno) for tok in _split_operands(rest)]
        dst = None
        if info.has_dst:
            if not operands or not isinstance(operands[0], Reg):
                raise AssemblerError(lineno, f"{op.value} needs a register destination")
            dst = operands.pop(0)
        if len(operands) != info.num_srcs:
            raise AssemblerError(
                lineno, f"{op.value} expects {info.num_srcs} sources, got {len(operands)}"
            )
        if op is Op.SETP and cmp is None:
            raise AssemblerError(lineno, "SETP needs a comparison suffix, e.g. SETP.LT")
        state["instrs"].append(
            Instruction(op=op, dst=dst, srcs=tuple(operands), cmp=cmp, pred=pred, pred_neg=pred_neg)
        )

    finish()
    if not kernels:
        raise AssemblerError(0, "no .kernel found")
    if strict:
        from repro.isa.analysis import check_strict

        for kernel in kernels.values():
            check_strict(kernel)
    return kernels


def assemble(text: str, strict: bool = False) -> Kernel:
    """Assemble exactly one kernel from ``text`` (``strict``: run the
    static verifier and raise on lint errors/warnings)."""
    kernels = assemble_many(text, strict=strict)
    if len(kernels) != 1:
        raise AssemblerError(0, f"expected exactly one kernel, found {len(kernels)}")
    return next(iter(kernels.values()))
