"""Kernel objects: an instruction sequence plus launch/resource metadata.

A :class:`Kernel` is the unit handed to the simulator.  Besides the code it
carries the per-thread register footprint and per-CTA shared-memory
footprint that the hardware resource allocators (and the occupancy
calculator in :mod:`repro.core.occupancy`) use.  The *declared* footprints
may exceed what the code actually touches: real compilers frequently
allocate more registers than a hand count of the assembly suggests, and the
Virtual Thread paper's benchmark classification depends on those footprints,
so they are first-class, overridable metadata here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instruction import Imm, Instruction, MemRef, Reg, SReg
from repro.isa.opcodes import CmpOp, Op, OPCODE_INFO


class KernelValidationError(ValueError):
    """Raised when a kernel fails static validation."""


def _format_operand(operand) -> str:
    """Render one operand in assembler syntax (round-trip safe)."""
    if isinstance(operand, Reg):
        return f"r{operand.idx}"
    if isinstance(operand, Imm):
        value = operand.value
        text = repr(value) if isinstance(value, float) else str(value)
        # repr(1e+20) is '1e+20'; the assembler's immediate grammar has no
        # '+' exponent sign, but accepts the equivalent '1e20'.
        return "#" + text.replace("e+", "e")
    if isinstance(operand, SReg):
        return f"%{operand.kind.value}"
    if isinstance(operand, MemRef):
        if operand.offset < 0:
            return f"[r{operand.base.idx}-{-operand.offset}]"
        if operand.offset:
            return f"[r{operand.base.idx}+{operand.offset}]"
        return f"[r{operand.base.idx}]"
    raise TypeError(f"cannot format operand {operand!r}")


def _format_instr(instr: Instruction, pc_labels: dict[int, list[str]]) -> str:
    """Render one instruction in assembler syntax."""
    parts = []
    if instr.pred is not None:
        parts.append(f"@{'!' if instr.pred_neg else ''}r{instr.pred.idx}")
    mnemonic = instr.op.value
    if instr.cmp is not None:
        mnemonic += f".{instr.cmp.value.upper()}"
    parts.append(mnemonic)
    if instr.op is Op.BRA:
        parts.append(pc_labels[instr.target][0])
        return " ".join(parts)
    operands = []
    if instr.dst is not None:
        operands.append(_format_operand(instr.dst))
    operands.extend(_format_operand(s) for s in instr.srcs)
    if operands:
        parts.append(", ".join(operands))
    return " ".join(parts)


@dataclass
class Kernel:
    """An assembled kernel ready for launch.

    Attributes:
        name: Kernel name (used in reports).
        instrs: The instruction sequence; PCs are indices into this list.
        regs_per_thread: Architectural registers each thread needs.
        smem_bytes: Static shared memory per CTA, in bytes.
        cta_dim: Threads per CTA (x, y, z).
        labels: Label name -> PC mapping (informational, kept for disassembly).
    """

    name: str
    instrs: list[Instruction]
    regs_per_thread: int
    smem_bytes: int = 0
    cta_dim: tuple[int, int, int] = (32, 1, 1)
    labels: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.validate()
        # Reconvergence PCs are computed lazily on first launch; import here
        # to avoid a cycle at module load.
        from repro.isa.cfg import annotate_reconvergence

        annotate_reconvergence(self)

    @property
    def threads_per_cta(self) -> int:
        x, y, z = self.cta_dim
        return x * y * z

    def warps_per_cta(self, warp_size: int = 32) -> int:
        return -(-self.threads_per_cta // warp_size)

    def validate(self) -> None:
        """Static sanity checks; raises :class:`KernelValidationError`."""
        if not self.instrs:
            raise KernelValidationError(f"kernel {self.name!r} has no instructions")
        if not any(i.op is Op.EXIT for i in self.instrs):
            raise KernelValidationError(f"kernel {self.name!r} has no EXIT")
        if self.threads_per_cta <= 0:
            raise KernelValidationError(f"kernel {self.name!r} has empty CTA {self.cta_dim}")
        for pc, instr in enumerate(self.instrs):
            info = OPCODE_INFO[instr.op]
            if instr.max_reg() >= self.regs_per_thread:
                raise KernelValidationError(
                    f"{self.name}@{pc}: {instr!r} uses r{instr.max_reg()} but the "
                    f"kernel declares only {self.regs_per_thread} registers per "
                    f"thread (r0..r{self.regs_per_thread - 1})"
                )
            if instr.op is Op.BRA:
                if instr.target is None:
                    raise KernelValidationError(f"{self.name}@{pc}: BRA without target")
                if not 0 <= instr.target < len(self.instrs):
                    raise KernelValidationError(
                        f"{self.name}@{pc}: branch target {instr.target} is outside "
                        f"the kernel (valid PCs are 0..{len(self.instrs) - 1})"
                    )
            elif info.has_dst and instr.dst is None:
                raise KernelValidationError(f"{self.name}@{pc}: {instr.op.value} needs a destination")
            if instr.op is Op.SETP and instr.cmp is None:
                raise KernelValidationError(f"{self.name}@{pc}: SETP without comparison kind")

    def disassemble(self) -> str:
        """Listing that re-assembles to an identical kernel.

        The output is valid assembler input (directives, labels, ``// pc``
        comments), so ``assemble(kernel.disassemble())`` reproduces the
        same instructions and metadata — the round-trip property the test
        suite checks for every registry kernel.  Branch targets without a
        user label get a synthesized ``L<pc>`` label.
        """
        pc_labels: dict[int, list[str]] = {}
        for label, pc in sorted(self.labels.items()):
            pc_labels.setdefault(pc, []).append(label)
        for instr in self.instrs:
            if instr.op is Op.BRA and instr.target not in pc_labels:
                name = f"L{instr.target}"
                while name in self.labels:
                    name += "_"
                pc_labels[instr.target] = [name]

        lines = [
            f".kernel {self.name}",
            f".regs {self.regs_per_thread}",
            f".smem {self.smem_bytes}",
            ".cta " + " ".join(str(d) for d in self.cta_dim),
        ]
        for pc, instr in enumerate(self.instrs):
            for label in pc_labels.get(pc, ()):
                lines.append(f"{label}:")
            lines.append(f"    {_format_instr(instr, pc_labels):<40s} // pc {pc}")
        for label in pc_labels.get(len(self.instrs), ()):
            lines.append(f"{label}:")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Kernel({self.name!r}, {len(self.instrs)} instrs, regs={self.regs_per_thread})"


class KernelBuilder:
    """Fluent programmatic construction of :class:`Kernel` objects.

    Example::

        b = KernelBuilder("axpy", regs_per_thread=8, cta_dim=(128, 1, 1))
        b.s2r(0, "ctaid_x").s2r(1, "ntid_x").s2r(2, "tid_x")
        b.imad(3, 0, 1, 2)                 # global thread id
        ...
        b.exit()
        kernel = b.build()

    Branch targets may be forward references: ``b.bra("done", pred=5)``
    before ``b.label("done")`` is legal; labels are resolved at build time.
    """

    def __init__(
        self,
        name: str,
        regs_per_thread: int,
        smem_bytes: int = 0,
        cta_dim: tuple[int, int, int] = (32, 1, 1),
    ):
        self.name = name
        self.regs_per_thread = regs_per_thread
        self.smem_bytes = smem_bytes
        self.cta_dim = cta_dim
        self._instrs: list[Instruction] = []
        self._labels: dict[str, int] = {}
        self._fixups: list[tuple[int, str]] = []

    # -- structural helpers -------------------------------------------------

    def label(self, name: str) -> "KernelBuilder":
        if name in self._labels:
            raise KernelValidationError(f"duplicate label {name!r}")
        self._labels[name] = len(self._instrs)
        return self

    def emit(self, instr: Instruction) -> "KernelBuilder":
        self._instrs.append(instr)
        return self

    def _src(self, operand) -> Reg | Imm:
        """Coerce ints that look like register ids vs immediates.

        Plain ``int`` arguments denote *registers*; use :class:`Imm` (or the
        ``imm()`` helper) for literal values.  Floats are always immediates.
        """
        if isinstance(operand, (Reg, Imm, SReg, MemRef)):
            return operand
        if isinstance(operand, bool):
            raise TypeError("ambiguous bool operand; use Imm explicitly")
        if isinstance(operand, int):
            return Reg(operand)
        if isinstance(operand, float):
            return Imm(operand)
        raise TypeError(f"bad operand {operand!r}")

    def _op(self, op: Op, dst: int | None, *srcs, cmp: CmpOp | None = None,
            pred: int | None = None, pred_neg: bool = False) -> "KernelBuilder":
        instr = Instruction(
            op=op,
            dst=Reg(dst) if dst is not None else None,
            srcs=tuple(self._src(s) for s in srcs),
            cmp=cmp,
            pred=Reg(pred) if pred is not None else None,
            pred_neg=pred_neg,
        )
        return self.emit(instr)

    # -- arithmetic ---------------------------------------------------------

    def iadd(self, d, a, b, **kw):
        return self._op(Op.IADD, d, a, b, **kw)

    def isub(self, d, a, b, **kw):
        return self._op(Op.ISUB, d, a, b, **kw)

    def imul(self, d, a, b, **kw):
        return self._op(Op.IMUL, d, a, b, **kw)

    def imad(self, d, a, b, c, **kw):
        return self._op(Op.IMAD, d, a, b, c, **kw)

    def idiv(self, d, a, b, **kw):
        return self._op(Op.IDIV, d, a, b, **kw)

    def irem(self, d, a, b, **kw):
        return self._op(Op.IREM, d, a, b, **kw)

    def imin(self, d, a, b, **kw):
        return self._op(Op.IMIN, d, a, b, **kw)

    def imax(self, d, a, b, **kw):
        return self._op(Op.IMAX, d, a, b, **kw)

    def and_(self, d, a, b, **kw):
        return self._op(Op.AND, d, a, b, **kw)

    def or_(self, d, a, b, **kw):
        return self._op(Op.OR, d, a, b, **kw)

    def xor(self, d, a, b, **kw):
        return self._op(Op.XOR, d, a, b, **kw)

    def shl(self, d, a, b, **kw):
        return self._op(Op.SHL, d, a, b, **kw)

    def shr(self, d, a, b, **kw):
        return self._op(Op.SHR, d, a, b, **kw)

    def fadd(self, d, a, b, **kw):
        return self._op(Op.FADD, d, a, b, **kw)

    def fsub(self, d, a, b, **kw):
        return self._op(Op.FSUB, d, a, b, **kw)

    def fmul(self, d, a, b, **kw):
        return self._op(Op.FMUL, d, a, b, **kw)

    def ffma(self, d, a, b, c, **kw):
        return self._op(Op.FFMA, d, a, b, c, **kw)

    def fdiv(self, d, a, b, **kw):
        return self._op(Op.FDIV, d, a, b, **kw)

    def fmin(self, d, a, b, **kw):
        return self._op(Op.FMIN, d, a, b, **kw)

    def fmax(self, d, a, b, **kw):
        return self._op(Op.FMAX, d, a, b, **kw)

    def fsqrt(self, d, a, **kw):
        return self._op(Op.FSQRT, d, a, **kw)

    def fexp(self, d, a, **kw):
        return self._op(Op.FEXP, d, a, **kw)

    def fabs(self, d, a, **kw):
        return self._op(Op.FABS, d, a, **kw)

    def i2f(self, d, a, **kw):
        return self._op(Op.I2F, d, a, **kw)

    def f2i(self, d, a, **kw):
        return self._op(Op.F2I, d, a, **kw)

    def mov(self, d, a, **kw):
        return self._op(Op.MOV, d, a, **kw)

    def movi(self, d, value: float, **kw):
        return self._op(Op.MOV, d, Imm(value), **kw)

    def sel(self, d, cond, a, b, **kw):
        return self._op(Op.SEL, d, cond, a, b, **kw)

    def s2r(self, d, which: str, **kw):
        from repro.isa.instruction import SpecialReg

        return self._op(Op.S2R, d, SReg(SpecialReg(which)), **kw)

    def setp(self, cmp: str | CmpOp, d, a, b, **kw):
        cmp_op = CmpOp(cmp) if isinstance(cmp, str) else cmp
        return self._op(Op.SETP, d, a, b, cmp=cmp_op, **kw)

    # -- memory ---------------------------------------------------------------

    def ldg(self, d, base: int, offset: int = 0, **kw):
        return self._op(Op.LDG, d, MemRef(Reg(base), offset), **kw)

    def stg(self, base: int, src, offset: int = 0, **kw):
        return self._op(Op.STG, None, MemRef(Reg(base), offset), src, **kw)

    def lds(self, d, base: int, offset: int = 0, **kw):
        return self._op(Op.LDS, d, MemRef(Reg(base), offset), **kw)

    def sts(self, base: int, src, offset: int = 0, **kw):
        return self._op(Op.STS, None, MemRef(Reg(base), offset), src, **kw)

    def atomg_add(self, d, base: int, src, offset: int = 0, **kw):
        return self._op(Op.ATOMG_ADD, d, MemRef(Reg(base), offset), src, **kw)

    def atoms_add(self, d, base: int, src, offset: int = 0, **kw):
        return self._op(Op.ATOMS_ADD, d, MemRef(Reg(base), offset), src, **kw)

    def atomg_max(self, d, base: int, src, offset: int = 0, **kw):
        return self._op(Op.ATOMG_MAX, d, MemRef(Reg(base), offset), src, **kw)

    # -- control --------------------------------------------------------------

    def bra(self, target: str, pred: int | None = None, pred_neg: bool = False):
        instr = Instruction(
            op=Op.BRA,
            target=-1,
            pred=Reg(pred) if pred is not None else None,
            pred_neg=pred_neg,
        )
        self._fixups.append((len(self._instrs), target))
        return self.emit(instr)

    def bar(self):
        return self._op(Op.BAR, None)

    def exit(self):
        return self._op(Op.EXIT, None)

    def nop(self, count: int = 1):
        for _ in range(count):
            self._op(Op.NOP, None)
        return self

    # -- finalization -----------------------------------------------------------

    def build(self, strict: bool = False) -> Kernel:
        """Resolve labels and construct the kernel.

        ``strict=True`` additionally runs the static verifier
        (:mod:`repro.isa.analysis`) and raises
        :class:`KernelValidationError` on lint errors or warnings.
        """
        for pc, label in self._fixups:
            if label not in self._labels:
                raise KernelValidationError(f"undefined label {label!r} in {self.name!r}")
            self._instrs[pc].target = self._labels[label]
        kernel = Kernel(
            name=self.name,
            instrs=self._instrs,
            regs_per_thread=self.regs_per_thread,
            smem_bytes=self.smem_bytes,
            cta_dim=self.cta_dim,
            labels=dict(self._labels),
        )
        if strict:
            from repro.isa.analysis import check_strict

            check_strict(kernel)
        return kernel
