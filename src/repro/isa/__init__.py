"""Mini SIMT instruction set: opcodes, instructions, kernels, assembler, CFG.

This package defines the PTX/SASS-like instruction set executed by the
timing simulator in :mod:`repro.sim`.  It is deliberately small but complete
enough to express the control flow, memory behaviour and synchronization of
the general-purpose GPU workloads evaluated by the Virtual Thread paper:
integer/float arithmetic, predication, divergent branches with SIMT-stack
reconvergence, global/shared memory accesses, atomics and CTA-wide barriers.
"""

from repro.isa.opcodes import Op, OpClass, OPCODE_INFO, CmpOp
from repro.isa.instruction import Reg, Imm, SReg, MemRef, Instruction, SpecialReg
from repro.isa.kernel import Kernel, KernelBuilder
from repro.isa.assembler import assemble, AssemblerError
from repro.isa.cfg import build_cfg, reconvergence_table
from repro.isa.profile import KernelProfile, kernel_profile

__all__ = [
    "Op",
    "OpClass",
    "OPCODE_INFO",
    "CmpOp",
    "Reg",
    "Imm",
    "SReg",
    "MemRef",
    "Instruction",
    "SpecialReg",
    "Kernel",
    "KernelBuilder",
    "assemble",
    "AssemblerError",
    "build_cfg",
    "reconvergence_table",
    "KernelProfile",
    "kernel_profile",
]
