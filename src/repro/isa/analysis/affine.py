"""Affine symbolic evaluation of register values.

Shared-memory addresses in the mini ISA are built from a handful of
ingredients: thread ids (``%tid_*``), launch-constant uniforms
(``%ctaid_*``, ``%param*``, ``%nctaid_*``), immediates, and shifts/adds.
This pass tracks every register as an *affine form*

    value = const + Σ cᵢ·tidᵢ + Σ dⱼ·uniformⱼ  [+ unknown-uniform]

through a forward dataflow fixpoint.  The form answers the three
questions the lint rules ask:

* **Bounds** — when a value involves only constants and thread ids, its
  min/max over the CTA box (``tid_x < cta_x`` …) is exact, giving
  out-of-bounds checks for shared accesses.
* **Uniformity** — a value with no thread-id terms is the same for every
  thread of the CTA (launch constants are fixed per CTA), which decides
  whether a conditional branch can actually diverge.
* **Disjointness** — for two accesses whose uniform terms cancel, the
  cross-thread address difference is affine in the two thread ids, giving
  the static race check.

Loop-carried values widen to a single canonical *unknown-uniform* term
(``fuzzy``) when the joined forms differ only in their uniform part, and
to :data:`TOP` (unknown, possibly thread-dependent) otherwise, so the
fixpoint terminates in a couple of sweeps.

``SETP`` destinations additionally remember the comparison they hold
(:class:`PredInfo`), letting predicated shared accesses refine a thread
id's range — ``@p STS`` under ``p = tid < 64`` is bounded by 64, not the
CTA width.  That mirrors how the kernels in the registry actually guard
partial-CTA accesses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.analysis.dataflow import CFGView, DataflowProblem, FORWARD, solve
from repro.isa.instruction import Imm, MemRef, Reg, SReg, SpecialReg
from repro.isa.opcodes import CmpOp, Op

#: Thread-id symbols: per-thread, with a known range from ``cta_dim``.
TID_SYMS = ("tid_x", "tid_y", "tid_z")

#: Launch-constant symbols: unknown value but uniform across the CTA and
#: fixed for the whole launch (so equal terms cancel in differences).
_UNIFORM_SREGS = {
    SpecialReg.CTAID_X: "ctaid_x",
    SpecialReg.CTAID_Y: "ctaid_y",
    SpecialReg.CTAID_Z: "ctaid_z",
    SpecialReg.NCTAID_X: "nctaid_x",
    SpecialReg.NCTAID_Y: "nctaid_y",
    SpecialReg.NCTAID_Z: "nctaid_z",
    SpecialReg.PARAM0: "param0",
    SpecialReg.PARAM1: "param1",
    SpecialReg.PARAM2: "param2",
    SpecialReg.PARAM3: "param3",
    SpecialReg.PARAM4: "param4",
    SpecialReg.PARAM5: "param5",
    SpecialReg.PARAM6: "param6",
    SpecialReg.PARAM7: "param7",
}

_TID_SREGS = {
    SpecialReg.TID_X: "tid_x",
    SpecialReg.TID_Y: "tid_y",
    SpecialReg.TID_Z: "tid_z",
}

_NTID_SREGS = {
    SpecialReg.NTID_X: 0,
    SpecialReg.NTID_Y: 1,
    SpecialReg.NTID_Z: 2,
}


def _freeze(items: dict) -> tuple:
    return tuple(sorted((k, v) for k, v in items.items() if v != 0))


@dataclass(frozen=True)
class PredInfo:
    """What a ``SETP`` destination asserts when it is non-zero."""

    cmp: CmpOp
    lhs: "Affine"
    rhs: "Affine"


@dataclass(frozen=True)
class Affine:
    """``const + Σ tid terms + Σ uniform terms (+ unknown uniform)``."""

    const: float = 0.0
    tid: tuple = ()  # ((sym, coef), ...) sorted, coef != 0
    uni: tuple = ()  # ((sym, coef), ...) sorted, coef != 0
    fuzzy: bool = False  # plus an unknown (loop-varying) uniform term
    pred: PredInfo | None = field(default=None, compare=False)

    # -- classification ----------------------------------------------------

    @property
    def is_uniform(self) -> bool:
        """Same value for every thread of the CTA."""
        return not self.tid

    @property
    def is_const(self) -> bool:
        return not self.tid and not self.uni and not self.fuzzy

    @property
    def is_bounded(self) -> bool:
        """Min/max over the CTA box are statically known."""
        return not self.uni and not self.fuzzy

    def tid_coefs(self) -> dict:
        return dict(self.tid)

    # -- arithmetic --------------------------------------------------------

    def _combine(self, other: "Affine", sign: int) -> "Affine":
        if is_top(self) or is_top(other):
            return TOP
        tid = dict(self.tid)
        for sym, coef in other.tid:
            tid[sym] = tid.get(sym, 0) + sign * coef
        uni = dict(self.uni)
        for sym, coef in other.uni:
            uni[sym] = uni.get(sym, 0) + sign * coef
        return Affine(self.const + sign * other.const, _freeze(tid), _freeze(uni),
                      self.fuzzy or other.fuzzy)

    def add(self, other: "Affine") -> "Affine":
        return self._combine(other, 1)

    def sub(self, other: "Affine") -> "Affine":
        return self._combine(other, -1)

    def scale(self, factor: float) -> "Affine":
        if factor == 0:
            return Affine(0.0)
        if is_top(self):
            return TOP
        return Affine(self.const * factor,
                      _freeze({s: c * factor for s, c in self.tid}),
                      _freeze({s: c * factor for s, c in self.uni}),
                      self.fuzzy)

    def bounds(self, cta_dim) -> tuple[float, float] | None:
        """(min, max) over the CTA box, or None when not bounded."""
        if not self.is_bounded:
            return None
        lo = hi = self.const
        extents = dict(zip(TID_SYMS, cta_dim))
        for sym, coef in self.tid:
            span = coef * (extents[sym] - 1)
            lo += min(0, span)
            hi += max(0, span)
        return lo, hi

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [f"{self.const:g}"] if (self.const or not (self.tid or self.uni)) else []
        parts += [f"{c:g}*{s}" for s, c in self.tid]
        parts += [f"{c:g}*{s}" for s, c in self.uni]
        return " + ".join(parts) + (" + U" if self.fuzzy else "")


#: Synthetic thread-id symbol marking a fully unknown value.
_TOP_SYM = "*top*"

#: Unknown, possibly thread-dependent value.
TOP = Affine(0.0, ((_TOP_SYM, 1),), (), True)

#: Unknown but CTA-uniform value (canonical widened form).
UNIFORM_UNKNOWN = Affine(0.0, (), (), True)

CONST_ZERO = Affine(0.0)


def is_top(value: Affine) -> bool:
    return any(sym == _TOP_SYM for sym, _ in value.tid)


def join(a: Affine, b: Affine) -> Affine:
    """Least upper bound of two abstract values."""
    if a == b:
        # Preserve predicate info only when identical.
        if a.pred is not None and a.pred != b.pred:
            return Affine(a.const, a.tid, a.uni, a.fuzzy)
        return a
    if is_top(a) or is_top(b):
        return TOP
    if a.tid != b.tid:
        # Thread-dependent parts disagree: give up on thread structure.
        return TOP if (a.tid or b.tid) else UNIFORM_UNKNOWN
    # Same thread-id structure, different uniform part: keep the tid part,
    # widen the uniform part to the canonical unknown-uniform term.
    return Affine(0.0, a.tid, (), True)


def _to_affine(value) -> Affine:
    return value if isinstance(value, Affine) else TOP


class AffineEnv:
    """Immutable register -> :class:`Affine` map (the dataflow fact)."""

    __slots__ = ("regs",)

    def __init__(self, regs: dict):
        self.regs = regs

    def get(self, idx: int) -> Affine:
        return self.regs.get(idx, CONST_ZERO)

    def set(self, idx: int, value: Affine) -> "AffineEnv":
        regs = dict(self.regs)
        regs[idx] = value
        return AffineEnv(regs)

    def __eq__(self, other):
        return isinstance(other, AffineEnv) and self.regs == other.regs

    def __hash__(self):  # pragma: no cover - envs are not hashed today
        return hash(_freeze({k: id(v) for k, v in self.regs.items()}))


class AffineAnalysis(DataflowProblem):
    """Forward pass computing an :class:`AffineEnv` before every PC."""

    direction = FORWARD

    def __init__(self, kernel):
        self.kernel = kernel

    def boundary(self) -> AffineEnv:
        # Registers start zeroed in the simulator; the uninitialized-read
        # pass reports code that relies on that, so modelling the implicit
        # zero here is both faithful and harmless.
        return AffineEnv({})

    def init(self):
        return None  # bottom: block not yet reached

    def meet(self, a, b):
        if a is None:
            return b
        if b is None:
            return a
        regs = {}
        for idx in set(a.regs) | set(b.regs):
            regs[idx] = join(a.get(idx), b.get(idx))
        return AffineEnv(regs)

    # -- operand evaluation ------------------------------------------------

    def _operand(self, operand, env: AffineEnv) -> Affine:
        if isinstance(operand, Reg):
            return env.get(operand.idx)
        if isinstance(operand, Imm):
            return Affine(float(operand.value))
        if isinstance(operand, SReg):
            kind = operand.kind
            if kind in _TID_SREGS:
                return Affine(0.0, ((_TID_SREGS[kind], 1),), (), False)
            if kind in _NTID_SREGS:
                return Affine(float(self.kernel.cta_dim[_NTID_SREGS[kind]]))
            if kind in _UNIFORM_SREGS:
                return Affine(0.0, (), ((_UNIFORM_SREGS[kind], 1),), False)
            return TOP  # %laneid / %warpid: thread-dependent
        if isinstance(operand, MemRef):
            return env.get(operand.base.idx).add(Affine(float(operand.offset)))
        return TOP

    def address(self, pc: int, env: AffineEnv) -> Affine:
        """Abstract byte address of the memory operand at ``pc``."""
        instr = self.kernel.instrs[pc]
        for operand in instr.srcs:
            if isinstance(operand, MemRef):
                return self._operand(operand, env)
        return TOP

    # -- transfer ----------------------------------------------------------

    def transfer(self, pc: int, instr, env):
        if env is None:
            return None
        if instr.dst is None:
            return env
        srcs = [self._operand(s, env) for s in instr.srcs]
        value = self._evaluate(instr, srcs)
        if instr.pred is not None:
            # Predicated definition: lanes with a false predicate keep the
            # old value.  When the predicate is uniform every lane agrees
            # on which side it took, so the join of both is exact.  A
            # thread-dependent (or unknown) predicate *mixes* old and new
            # values across lanes — the mixture has no affine form unless
            # the two sides coincide, so anything else must go to TOP
            # (claiming the mixture is a uniform join would, e.g., call a
            # divergent binary-search address a broadcast).
            old = env.get(instr.dst.idx)
            pred_val = env.get(instr.pred.idx)
            if pred_val.is_uniform and not is_top(pred_val):
                value = join(old, value)
            elif not (old == value and not value.fuzzy):
                # Two equal fuzzy forms may still stand for *different*
                # unknown uniforms, so only an exact non-fuzzy match keeps
                # its affine form through a divergent write.
                value = TOP
        return env.set(instr.dst.idx, value)

    def _evaluate(self, instr, srcs: list[Affine]) -> Affine:
        op = instr.op
        if op in (Op.MOV, Op.S2R, Op.I2F, Op.F2I, Op.FABS):
            value = srcs[0]
            if op is Op.FABS and not value.is_const:
                return self._generic(srcs)
            if op is Op.FABS:
                return Affine(abs(value.const))
            return value
        if op in (Op.IADD, Op.FADD):
            return srcs[0].add(srcs[1])
        if op in (Op.ISUB, Op.FSUB):
            return srcs[0].sub(srcs[1])
        if op in (Op.IMUL, Op.FMUL):
            return self._mul(srcs[0], srcs[1])
        if op in (Op.IMAD, Op.FFMA):
            return self._mul(srcs[0], srcs[1]).add(srcs[2])
        if op is Op.SHL:
            if srcs[1].is_const:
                return self._mul(srcs[0], Affine(float(2 ** int(srcs[1].const))))
            return self._generic(srcs)
        if op is Op.SHR:
            if srcs[0].is_const and srcs[1].is_const:
                return Affine(float(int(srcs[0].const) >> int(srcs[1].const)))
            return self._generic(srcs)
        if op is Op.SETP:
            result = self._generic(srcs)
            return Affine(result.const, result.tid, result.uni, result.fuzzy,
                          pred=PredInfo(instr.cmp, srcs[0], srcs[1]))
        if op is Op.SEL:
            if srcs[0].is_uniform and not is_top(srcs[0]):
                return join(srcs[1], srcs[2])
            return join(join(srcs[1], srcs[2]), TOP) if srcs[1] != srcs[2] else srcs[1]
        if op in (Op.LDG, Op.LDS):
            # A load from a uniform address yields a uniform (unknown) value.
            addr = srcs[-1]
            return UNIFORM_UNKNOWN if addr.is_uniform and not is_top(addr) else TOP
        if op in (Op.ATOMG_ADD, Op.ATOMS_ADD, Op.ATOMG_MAX):
            return TOP  # returned old value depends on serialization order
        return self._generic(srcs)

    @staticmethod
    def _mul(a: Affine, b: Affine) -> Affine:
        if a.is_const:
            return b.scale(a.const)
        if b.is_const:
            return a.scale(b.const)
        if a.is_uniform and b.is_uniform and not is_top(a) and not is_top(b):
            return UNIFORM_UNKNOWN
        return TOP

    @staticmethod
    def _generic(srcs: list[Affine]) -> Affine:
        """Fallback: the result is uniform iff every input is."""
        if all(s.is_uniform and not is_top(s) for s in srcs):
            return UNIFORM_UNKNOWN
        return TOP


def affine_solution(kernel, cfg: CFGView | None = None):
    """Solve the affine pass; returns ``(analysis, per-PC env list)``."""
    cfg = cfg or CFGView(kernel.instrs)
    analysis = AffineAnalysis(kernel)
    solution = solve(analysis, cfg)
    return analysis, solution.per_pc()


def refine_bounds(address: Affine, pred_value: Affine | None, pred_neg: bool,
                  cta_dim) -> tuple[float, float] | None:
    """Bounds of ``address`` over the CTA box, narrowed by the guarding
    predicate when it is a recognizable ``tid <cmp> const`` comparison.

    Returns ``None`` when the address cannot be bounded statically.
    """
    if not address.is_bounded:
        return None
    extents = {sym: dim for sym, dim in zip(TID_SYMS, cta_dim)}
    ranges = {sym: (0, extents[sym] - 1) for sym in TID_SYMS}

    info = pred_value.pred if pred_value is not None else None
    if info is not None:
        narrowed = _tid_range_from_pred(info, pred_neg, ranges)
        if narrowed is not None:
            sym, lo, hi = narrowed
            old_lo, old_hi = ranges[sym]
            ranges[sym] = (max(lo, old_lo), min(hi, old_hi))

    lo = hi = address.const
    for sym, coef in address.tid:
        rmin, rmax = ranges[sym]
        if rmin > rmax:  # predicate excludes every thread: nothing executes
            return None
        a, b = coef * rmin, coef * rmax
        lo += min(a, b)
        hi += max(a, b)
    return lo, hi


def _tid_range_from_pred(info: PredInfo, neg: bool, ranges):
    """Extract ``(sym, lo, hi)`` from ``tid <cmp> const`` predicates."""
    lhs, rhs, cmp = info.lhs, info.rhs, info.cmp
    if rhs.tid and not lhs.tid:
        # Normalize to tid-on-the-left by flipping the comparison.
        flip = {CmpOp.LT: CmpOp.GT, CmpOp.LE: CmpOp.GE, CmpOp.GT: CmpOp.LT,
                CmpOp.GE: CmpOp.LE, CmpOp.EQ: CmpOp.EQ, CmpOp.NE: CmpOp.NE}
        lhs, rhs, cmp = rhs, lhs, flip[cmp]
    if not (len(lhs.tid) == 1 and not lhs.uni and not lhs.fuzzy and rhs.is_const):
        return None
    (sym, coef), = lhs.tid
    if coef != 1 or lhs.const != 0:
        return None
    bound = rhs.const
    if neg:
        negate = {CmpOp.LT: CmpOp.GE, CmpOp.LE: CmpOp.GT, CmpOp.GT: CmpOp.LE,
                  CmpOp.GE: CmpOp.LT, CmpOp.EQ: CmpOp.NE, CmpOp.NE: CmpOp.EQ}
        cmp = negate[cmp]
    big = float("inf")
    table = {
        CmpOp.LT: (-big, bound - 1),
        CmpOp.LE: (-big, bound),
        CmpOp.GT: (bound + 1, big),
        CmpOp.GE: (bound, big),
        CmpOp.EQ: (bound, bound),
    }
    if cmp not in table:
        return None
    lo, hi = table[cmp]
    return sym, lo, hi
