"""Barrier-divergence lint: ``BAR`` under thread-dependent control flow.

A CTA-wide barrier releases only when *every* unfinished warp arrives.
If a conditional branch actually diverges (its predicate differs across
threads) and a ``BAR`` sits strictly between the branch and its
reconvergence point, some warps can take a path that never reaches the
barrier — the arrived warps then wait forever and the launch dies as a
:class:`~repro.sim.gpu.ProgressDeadlock` (PR-1's watchdog catches it at
runtime, hours of simulation later; this pass catches it before launch).

Formally: the reconvergence PC of a branch is its immediate
post-dominator, so every PC strictly inside the divergent region fails to
post-dominate the branch — a ``BAR`` there is only safe if the branch
cannot diverge.  Uniformity comes from the affine pass: a predicate with
no thread-id component is identical across the CTA (launch constants and
loop counters), so classic uniform loops around barriers stay clean.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.analysis.affine import AffineAnalysis, is_top
from repro.isa.analysis.dataflow import CFGView
from repro.isa.cfg import EXIT_PC
from repro.isa.opcodes import Op


@dataclass(frozen=True)
class BarrierDivergence:
    """One ``BAR`` reachable under unreconverged divergent control flow."""

    bar_pc: int
    branch_pc: int
    reconv_pc: int  # EXIT_PC when paths only rejoin at kernel exit


def _divergent_region(cfg: CFGView, branch_pc: int, reconv_pc: int) -> set[int]:
    """PCs reachable from the branch without passing its reconvergence
    point (the branch's divergent region, reconvergence point excluded)."""
    region: set[int] = set()
    work = [pc for pc in cfg.instr_successors(branch_pc) if pc != reconv_pc]
    while work:
        pc = work.pop()
        if pc in region:
            continue
        region.add(pc)
        for succ in cfg.instr_successors(pc):
            if succ != reconv_pc and succ not in region:
                work.append(succ)
    return region


def barrier_divergence(kernel, cfg: CFGView, affine: AffineAnalysis,
                       envs: list) -> list[BarrierDivergence]:
    """Find every ``BAR`` inside a potentially-divergent region."""
    findings: list[BarrierDivergence] = []
    seen: set[int] = set()
    for pc, instr in enumerate(kernel.instrs):
        if not instr.is_conditional_branch or not cfg.pc_reachable(pc):
            continue
        env = envs[pc]
        if env is None:
            continue
        pred_value = env.get(instr.pred.idx)
        if pred_value.is_uniform and not is_top(pred_value):
            continue  # cannot diverge: every thread takes the same way
        reconv = instr.reconv_pc if instr.reconv_pc is not None else EXIT_PC
        for region_pc in sorted(_divergent_region(cfg, pc, reconv)):
            if kernel.instrs[region_pc].op is Op.BAR and region_pc not in seen:
                seen.add(region_pc)
                findings.append(BarrierDivergence(
                    bar_pc=region_pc, branch_pc=pc, reconv_pc=reconv))
    return findings
