"""Static analysis over mini-ISA kernels.

A small iterative dataflow framework (:mod:`.dataflow`) plus the passes
built on it — backward liveness with VT swap footprints (:mod:`.liveness`),
maybe-uninitialized register reads (:mod:`.reaching`), affine symbolic
addresses and uniformity (:mod:`.affine`), barrier-divergence detection
(:mod:`.barrier`) and shared-memory bounds/race checks (:mod:`.shared`) —
plus the performance side built on the same address maps: symbolic
coalescing / bank-conflict cost bounds (:mod:`.memaccess`) and the
analytical MWP/CWP-style predictor (:mod:`.perf`) — and the lint driver
tying them together (:mod:`.lint`).
"""

from repro.isa.analysis.affine import (Affine, AffineAnalysis, AffineEnv,
                                       affine_solution, refine_bounds)
from repro.isa.analysis.barrier import BarrierDivergence, barrier_divergence
from repro.isa.analysis.dataflow import (BACKWARD, CFGView, DataflowProblem,
                                         FORWARD, Solution, solve)
from repro.isa.analysis.lint import (ERROR, Finding, INFO, LintReport, PERF,
                                     RULES, WARNING, check_strict, lint_kernel,
                                     lint_kernels)
from repro.isa.analysis.liveness import LivenessAnalysis, LivenessInfo, liveness
from repro.isa.analysis.memaccess import (AccessCost, access_costs,
                                          cost_bounds_by_pc)
from repro.isa.analysis.perf import (KernelLayout, PerfPrediction, WarpProfile,
                                     layout_for, predict, predict_kernel,
                                     warp_profile)
from repro.isa.analysis.reaching import MaybeUninit, uninitialized_reads
from repro.isa.analysis.shared import (SharedAccess, SharedOOB, SharedRace,
                                       may_overlap, out_of_bounds, races,
                                       shared_accesses)

__all__ = [
    "Affine", "AffineAnalysis", "AffineEnv", "affine_solution", "refine_bounds",
    "BarrierDivergence", "barrier_divergence",
    "BACKWARD", "CFGView", "DataflowProblem", "FORWARD", "Solution", "solve",
    "ERROR", "Finding", "INFO", "LintReport", "PERF", "RULES", "WARNING",
    "check_strict", "lint_kernel", "lint_kernels",
    "LivenessAnalysis", "LivenessInfo", "liveness",
    "AccessCost", "access_costs", "cost_bounds_by_pc",
    "KernelLayout", "PerfPrediction", "WarpProfile", "layout_for",
    "predict", "predict_kernel", "warp_profile",
    "MaybeUninit", "uninitialized_reads",
    "SharedAccess", "SharedOOB", "SharedRace", "may_overlap", "out_of_bounds",
    "races", "shared_accesses",
]
