"""Reaching-definitions–based uninitialized-register-read detection.

The simulator zero-fills register files, so reading a never-written
register silently computes with 0.0 — results are plausibly wrong rather
than loudly broken, the worst failure mode for a reproduction.  This
forward may-pass tracks, per PC, the set of registers for which the
synthetic *uninitialized* definition at kernel entry still reaches; any
read of such a register is reported.

A predicated write counts as a definition: ``@p MOV r1, …`` followed by
``@p FADD …, r1`` is the registry's standard guarded idiom, and flagging
it would drown real findings in noise.  (Lanes where ``p`` is false never
read ``r1`` under the same guard either.)
"""

from __future__ import annotations

from repro.isa.analysis.dataflow import CFGView, DataflowProblem, FORWARD, solve


class MaybeUninit(DataflowProblem):
    """Forward may-analysis: registers the entry 'uninit' def still reaches."""

    direction = FORWARD

    def __init__(self, regs_per_thread: int):
        self.all_regs = frozenset(range(regs_per_thread))

    def boundary(self) -> frozenset:
        return self.all_regs

    def init(self) -> frozenset:
        return frozenset()

    def meet(self, a: frozenset, b: frozenset) -> frozenset:
        return a | b

    def transfer(self, pc: int, instr, uninit: frozenset) -> frozenset:
        dst = instr.dst_reg()
        if dst is not None and dst in uninit:
            return uninit - {dst}
        return uninit


def uninitialized_reads(kernel, cfg: CFGView | None = None) -> list[tuple[int, int]]:
    """``(pc, reg)`` pairs where a possibly-uninitialized register is read."""
    cfg = cfg or CFGView(kernel.instrs)
    solution = solve(MaybeUninit(kernel.regs_per_thread), cfg)
    uninit_at = solution.per_pc()
    findings: list[tuple[int, int]] = []
    for pc, instr in enumerate(kernel.instrs):
        if not cfg.pc_reachable(pc):
            continue
        for reg in sorted(set(instr.src_regs())):
            if reg in uninit_at[pc]:
                findings.append((pc, reg))
    return findings
