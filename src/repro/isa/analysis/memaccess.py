"""Static memory-access cost analysis: coalescing and bank conflicts.

For every reachable LD/ST/atomic the affine pass gives a symbolic byte
address ``const + Σ cᵢ·tidᵢ + Σ uniformⱼ (+ unknown uniform)``.  This
module turns that form into *bounds on the runtime cost* of one issued
warp access, mirroring the timing model's rules exactly
(:mod:`repro.sim.ldst`):

* **global** — the number of ``line_bytes``-aligned segments the active
  lanes touch (transactions; each occupies the LD/ST port one cycle);
* **shared** — the maximum per-bank multiplicity over unique words
  (serialized passes).

The lane addresses of warp ``w`` are reconstructed from the same
``linear = w·32 + lane`` thread mapping the simulator uses
(:meth:`repro.sim.cta.CTA._special_regs`), so for a fully analyzable
address the static per-warp cost is *exact*.  Two symbolic complications
are handled without giving up:

* **Unknown uniform base** (parameter pointers, ``ctaid`` terms,
  loop-carried ``fuzzy`` offsets): all lanes shift together.  Bank
  conflicts are *invariant* under a word-aligned uniform shift — adding
  the same word offset to every lane rotates the bank assignment but
  preserves the multiplicity histogram — so passes stay exact.
  Coalescing is not invariant (a shift can straddle one more line), so
  the transaction count is swept over every word-aligned offset within a
  line, yielding tight ``(lo, hi)`` bounds.
* **Unanalyzable addresses** (data-dependent gathers, TOP): the access
  is *never silently assumed coalesced* — it reports the conservative
  bounds ``1 .. active lanes`` (a warp access is at least one
  transaction and at most one per lane).

Predicated or divergence-masked accesses can execute with any non-empty
lane subset; a subset touches at most the full mask's segments, so the
upper bound stands and only the lower bound widens to 1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.isa.analysis.affine import Affine, AffineAnalysis, affine_solution, is_top
from repro.isa.analysis.dataflow import CFGView
from repro.sim.ldst import bank_conflict_passes, coalesce

WORD = 4
WARP = 32


@dataclass(frozen=True)
class AccessCost:
    """Static cost bounds for one memory-access site (one PC).

    ``lo``/``hi`` bound the runtime cost of *any* issued access at this
    PC (any warp, any non-empty active mask) — the sanitizer's runtime
    cross-check contract.  ``full_lo``/``full_hi`` bound the cost under a
    full (undiverged, unpredicated) active mask — what the performance
    model uses as the expected per-access cost.  ``exact`` means
    ``full_lo == full_hi`` and every warp of the CTA agrees.
    """

    pc: int
    space: str  # "global" | "shared"
    kind: str  # "load" | "store" | "atomic"
    lo: int
    hi: int
    full_lo: int
    full_hi: int
    analyzable: bool  # False: TOP/unknown per-lane structure
    exact: bool
    predicated: bool
    #: How the bounds were established: "affine" (fixpoint form, a
    #: tid-partitioned stream), "unroll" (exact per-occurrence addresses
    #: from the bounded uniform unroll), "interval" (value-set width
    #: only), or "unanalyzable" (conservative 1..lanes).
    source: str = "affine"

    @property
    def expected(self) -> float:
        """Model's point estimate of the per-access cost."""
        return (self.full_lo + self.full_hi) / 2.0


def _warp_lane_tids(cta_dim, warp_index: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-lane (tid_x, tid_y, tid_z) of one warp — the simulator's mapping."""
    nx, ny, _nz = cta_dim
    lanes = np.arange(WARP, dtype=np.int64)
    linear = warp_index * WARP + lanes
    return linear % nx, (linear // nx) % ny, linear // (nx * ny)


def _relative_lane_addresses(address: Affine, cta_dim) -> list[np.ndarray]:
    """Per-warp arrays of lane byte addresses *relative to the uniform
    part* (which shifts all lanes equally), live lanes only."""
    threads = cta_dim[0] * cta_dim[1] * cta_dim[2]
    num_warps = -(-threads // WARP)
    coefs = dict(address.tid)
    out = []
    for w in range(num_warps):
        tx, ty, tz = _warp_lane_tids(cta_dim, w)
        live = min(WARP, threads - w * WARP)
        rel = np.full(WARP, float(address.const))
        rel += coefs.get("tid_x", 0) * tx
        rel += coefs.get("tid_y", 0) * ty
        rel += coefs.get("tid_z", 0) * tz
        out.append(rel[:live].astype(np.int64))
    return out


def _global_cost(rel_warps, line_bytes: int, shifted: bool) -> tuple[int, int]:
    """(lo, hi) transactions over all warps; with an unknown word-aligned
    uniform base (``shifted``) each warp is swept over every word offset
    within a line."""
    offsets = range(0, line_bytes, WORD) if shifted else (0,)
    lo = hi = None
    for rel in rel_warps:
        for off in offsets:
            count = len(coalesce(rel + off, line_bytes))
            lo = count if lo is None else min(lo, count)
            hi = count if hi is None else max(hi, count)
    return int(lo), int(hi)


def _shared_cost(rel_warps, num_banks: int) -> tuple[int, int]:
    """(lo, hi) bank passes over all warps.  A word-aligned uniform shift
    rotates the bank mapping without changing any multiplicity, so no
    offset sweep is needed — the count is exact per warp."""
    lo = hi = None
    for rel in rel_warps:
        passes = bank_conflict_passes(rel, num_banks)
        lo = passes if lo is None else min(lo, passes)
        hi = passes if hi is None else max(hi, passes)
    return int(lo), int(hi)


def _kind(instr) -> str:
    if instr.info.is_atomic:
        return "atomic"
    return "store" if instr.is_store else "load"


def _unanalyzable(pc, space, kind, max_lanes, predicated) -> AccessCost:
    # Never silently coalesced: one transaction per lane in the worst case.
    return AccessCost(pc=pc, space=space, kind=kind, lo=1, hi=max_lanes,
                      full_lo=1, full_hi=max_lanes, analyzable=False,
                      exact=False, predicated=predicated,
                      source="unanalyzable")


def _occurrence_cost(kernel, pc, occurrences, space, kind, max_lanes,
                     predicated, line_bytes, num_banks) -> AccessCost | None:
    """Exact cost bounds from the bounded uniform unroll.

    When the whole kernel executes as one concrete uniform trace
    (:func:`repro.isa.analysis.unroll.unrolled_trace`), a loop-carried
    address the fixpoint widened to TOP has an exact affine form at every
    dynamic occurrence; the per-access cost bounds are then the min/max
    over the occurrences actually executed.  Any unanalyzable occurrence
    (TOP address, non-word-aligned lane spread) falls back to the caller's
    conservative path.
    """
    if not occurrences:
        return None  # site never executes in the trace: nothing to bound
    full_lo = full_hi = None
    divergent = predicated
    for occ in occurrences:
        address = occ.address
        if is_top(address):
            return None
        rel_warps = _relative_lane_addresses(address, kernel.cta_dim)
        base = rel_warps[0][0] if rel_warps and len(rel_warps[0]) else 0
        if any(((rel - base) % WORD).any() for rel in rel_warps):
            return None
        shifted = bool(address.uni) or address.fuzzy
        if space == "global":
            lo, hi = _global_cost(rel_warps, line_bytes, shifted)
        else:
            lo, hi = _shared_cost(rel_warps, num_banks)
        full_lo = lo if full_lo is None else min(full_lo, lo)
        full_hi = hi if full_hi is None else max(full_hi, hi)
        divergent = divergent or occ.predicated
    exact = full_lo == full_hi and not divergent
    return AccessCost(pc=pc, space=space, kind=kind,
                      lo=1 if divergent else full_lo, hi=full_hi,
                      full_lo=full_lo, full_hi=full_hi, analyzable=True,
                      exact=exact, predicated=predicated, source="unroll")


def _interval_cost(kernel, pc, instr, intervals, space, kind, max_lanes,
                   predicated, line_bytes, num_banks) -> AccessCost | None:
    """Tightened worst-case cost for a non-affine but *bounded* address.

    The interval pass (:mod:`repro.isa.analysis.interval`) splits the
    address into an affine base plus a residual interval of width ``w``.
    Every lane's address then lives in a window of
    ``(base lane spread) + w + WORD`` bytes whose alignment is unknown, so
    the access can touch at most ``(L - 1) // line + 2`` cache lines (a
    window of length ``L`` straddles one extra line in the worst case) and
    at most ``ceil(words_in_window / num_banks)`` same-bank shared words.
    The lower bound stays 1: a value-set says nothing about how *few*
    distinct lines the lanes hit.
    """
    ianalysis, ienvs = intervals
    env = ienvs[pc]
    if env is None:
        return None
    ival = ianalysis.address(pc, env)
    if is_top(ival.base) or not (ival.rlo > -np.inf and ival.rhi < np.inf):
        return None
    width = float(ival.rhi - ival.rlo)
    rel_warps = _relative_lane_addresses(ival.base, kernel.cta_dim)
    hi = None
    for rel in rel_warps:
        if len(rel) == 0:
            continue
        window = float(rel.max() - rel.min()) + width + WORD
        if space == "global":
            count = min(len(rel), int((window - 1) // line_bytes) + 2)
        else:
            words = int((window - 1) // WORD) + 2
            count = min(len(rel), -(-words // num_banks))
        hi = count if hi is None else max(hi, count)
    if hi is None or hi >= max_lanes:
        return None  # no tighter than the conservative bound
    return AccessCost(pc=pc, space=space, kind=kind, lo=1, hi=hi,
                      full_lo=1, full_hi=hi, analyzable=False,
                      exact=False, predicated=predicated, source="interval")


def access_costs(kernel, cfg_view: CFGView | None = None,
                 affine: AffineAnalysis | None = None, envs: list | None = None,
                 *, line_bytes: int = 128, num_banks: int = 32,
                 intervals=None, param_values: dict | None = None,
                 unroll: bool = True) -> list[AccessCost]:
    """Static cost bounds for every reachable memory-access site.

    ``line_bytes``/``num_banks`` default to the simulator's Fermi-class
    values (:class:`repro.sim.config.GPUConfig`); pass the config's
    values to analyze other geometries.

    Two refinements tighten sites the affine fixpoint calls TOP, tried in
    order of precision:

    * ``unroll`` — the bounded uniform unroll
      (:mod:`repro.isa.analysis.unroll`) re-executes uniform control flow
      concretely, giving *exact* per-occurrence costs for loop-carried
      tile/ping-pong addresses; ``param_values`` lets parameter-valued
      loop bounds resolve.
    * ``intervals`` — an ``(analysis, envs)`` pair from
      :func:`repro.isa.analysis.interval.interval_solution` bounds the
      worst case when the value-set is provably narrow (masked gathers,
      small atomic tables) even though per-lane structure is unknown.
    """
    cfg_view = cfg_view or CFGView(kernel.instrs)
    if affine is None or envs is None:
        affine, envs = affine_solution(kernel, cfg_view)
    threads = kernel.threads_per_cta
    max_lanes = min(WARP, threads)
    trace = False  # computed lazily on the first TOP-address site
    occurrences: dict[int, list] = {}
    costs: list[AccessCost] = []
    for pc, instr in enumerate(kernel.instrs):
        if not instr.info.is_mem or not cfg_view.pc_reachable(pc):
            continue
        space = "global" if instr.is_global_mem else "shared"
        kind = _kind(instr)
        predicated = instr.pred is not None
        env = envs[pc]
        if env is None:
            costs.append(_unanalyzable(pc, space, kind, max_lanes, predicated))
            continue
        address = affine.address(pc, env)
        if is_top(address):
            cost = None
            if unroll:
                if trace is False:
                    from repro.isa.analysis.unroll import unrolled_trace

                    trace = unrolled_trace(kernel, param_values=param_values)
                    for occ in trace or ():
                        occurrences.setdefault(occ.pc, []).append(occ)
                if trace is not None:
                    cost = _occurrence_cost(kernel, pc, occurrences.get(pc),
                                            space, kind, max_lanes, predicated,
                                            line_bytes, num_banks)
            if cost is None and intervals is not None:
                cost = _interval_cost(kernel, pc, instr, intervals, space,
                                      kind, max_lanes, predicated,
                                      line_bytes, num_banks)
            costs.append(cost if cost is not None else
                         _unanalyzable(pc, space, kind, max_lanes, predicated))
            continue
        rel_warps = _relative_lane_addresses(address, kernel.cta_dim)
        # A uniform base shifts every lane equally; lane *differences* must
        # be word-aligned or the access would fault at runtime — bail to
        # the conservative bounds rather than model an illegal access.
        base = rel_warps[0][0] if rel_warps and len(rel_warps[0]) else 0
        if any(((rel - base) % WORD).any() for rel in rel_warps):
            costs.append(_unanalyzable(pc, space, kind, max_lanes, predicated))
            continue
        shifted = bool(address.uni) or address.fuzzy
        if space == "global":
            full_lo, full_hi = _global_cost(rel_warps, line_bytes, shifted)
        else:
            full_lo, full_hi = _shared_cost(rel_warps, num_banks)
        exact = full_lo == full_hi and not predicated
        lo = 1 if predicated else full_lo
        costs.append(AccessCost(pc=pc, space=space, kind=kind, lo=lo,
                                hi=full_hi, full_lo=full_lo, full_hi=full_hi,
                                analyzable=True, exact=exact,
                                predicated=predicated))
    return costs


def cost_bounds_by_pc(kernel, *, line_bytes: int = 128,
                      num_banks: int = 32) -> dict[int, AccessCost]:
    """``pc -> AccessCost`` map (the sanitizer's cross-check input)."""
    return {cost.pc: cost
            for cost in access_costs(kernel, line_bytes=line_bytes,
                                     num_banks=num_banks)}
