"""Analytical MWP/CWP-style performance model (the static oracle).

Predicts, for one kernel on one architecture, the three things the
paper's argument turns on — without running the simulator:

* the **limiter class** (scheduling- vs capacity-limited residency),
  taken verbatim from :mod:`repro.core.occupancy` (the single source of
  truth the experiments also use);
* the **idle-cycle class** the SM spends its dead cycles on — memory
  latency (``mem``), port/MSHR structural hazards (``struct``), or
  compute dependence chains (``alu``) — matching the simulator's
  dead-cycle taxonomy and its priority (``struct`` > ``alu`` > ``mem``
  over *schedulable* warps: a READY-but-port-blocked warp makes the
  cycle structural, any short-stalled warp makes it compute);
* a **VT-benefit tier** (``high`` / ``moderate`` / ``neutral``).

Model structure, in the spirit of Hong & Kim's MWP/CWP analysis:

1. One warp's execution is expanded into a straight-line *trace* (loop
   trip counts recovered from the counted-loop idiom, with launch
   parameter values substituted for symbolic bounds when a layout is
   known) and walked with scoreboard semantics, yielding issue slots,
   dependence-stall cycles split by producer kind *and by barrier
   phase*, and the peak number of outstanding miss *lines* (same-line
   sites merge, mirroring the L1's MSHR coalescing).
2. Every memory access site is costed by :mod:`.memaccess` (symbolic
   coalescing / bank-conflict bounds) and *attributed* to the global
   buffer it targets through the affine ``%param`` terms, so a
   cache-residency estimate (reuse factor x footprint vs. L1/L2
   capacity) assigns each load a latency class.  Short (L1-resident)
   loads stall the scoreboard below the long-stall threshold and are
   therefore compute-class stalls, exactly as the simulator counts them.
3. A decision cascade evaluates the machine's structural hazards and
   latency exposure at the per-architecture warp counts from the
   occupancy/VT residency rules — see :func:`classify_idle` for the
   rules and their mechanistic reading of the simulator.

The numeric thresholds are calibrated once against the cycle-level
simulator at the reference configuration and then *locked* by the
``repro predict --check`` agreement gate and experiment X4 — the model
cannot silently drift from the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.occupancy import OccupancyResult, occupancy
from repro.isa.analysis.affine import affine_solution, is_top
from repro.isa.analysis.dataflow import CFGView
from repro.isa.analysis.interval import interval_solution
from repro.isa.analysis.memaccess import AccessCost, access_costs
from repro.isa.instruction import Imm, MemRef, Reg
from repro.isa.opcodes import Op, OpClass
from repro.sim.config import GPUConfig

#: Trip count assumed for loops whose bound is data-dependent (binary
#: search, CSR row walks, frontier scans).  Registry workloads put such
#: loops in the ~10-20 iteration range (``log2(16K)`` for btree, mean
#: nnz/row for spmv), and the steady-state bounds only need the loop
#: body to dominate the straight-line prologue.
DEFAULT_TRIPS = 12

#: Point estimate of transactions per warp access for addresses the
#: affine pass cannot analyze.  Unpredicated data-dependent *gathers*
#: (address tainted by a loaded value) scatter near-worst-case;
#: predicated gathers execute with sparse active masks (frontier-style)
#: and unsupported arithmetic on thread ids stays mostly coalesced.
#: Bounds reported to the sanitizer are unaffected — these feed only
#: the throughput model.
TX_EST_GATHER = 16.0
TX_EST_ARITH = 2.0
#: Bank-conflict point estimate for unanalyzable shared addresses: the
#: registry's data-dependent shared indexing (histogram bins) is
#: low-conflict, and structured conflicts are always analyzable.
PASSES_EST_UNKNOWN = 2.0

#: Residency thresholds: words of a buffer must be re-touched this many
#: times for the model to call it L1-resident (short loads) or
#: L2-resident (misses stop at L2).
REUSE_L1 = 6.0
REUSE_L2 = 1.1

#: Minimum exposed-latency cycles before the cascade calls a kernel
#: memory-bound (smaller exposures are classification noise).
EXPOSED_MIN = 32.0
#: Stricter exposure floor for VT's *cold convoy* (launch-aligned first
#: misses): swap rotation erases most of the cold transient, so only a
#: substantial residue classifies the steady state.
EXPOSED_COLD = 128.0

#: A pipeline port binds (READY warps queue behind it) only when its
#: demand clearly exceeds the issue/critical-path anchor; near-parity
#: overlaps cleanly.
PORT_MARGIN = 1.15

#: DRAM service demand must exceed the issue bound by this factor before
#: queueing delays dominate the steady state (below it the channel has
#: enough slack to absorb bursts).
DRAM_EXCESS = 4.0

#: SFU-pipeline pressure (relative to the issue bound) that surfaces as
#: structural idle once memory latency is hidden.
SFU_SURFACE = 0.6

#: The dependence-residual rule calls the hidden-latency residue
#: compute-class only when the scan set's short-stall mass *clearly
#: dominates* the cold-start miss — at parity the simulator's dead
#: cycles still trace back to the first round trip (mem).
ALU_RESIDUAL = 2.0

#: Trace-length safety cap (instructions) for pathological loop nests.
MAX_TRACE = 60_000

IDLE_CLASSES = ("mem", "struct", "alu")


@dataclass(frozen=True)
class KernelLayout:
    """Launch-time memory layout: what each ``%paramN`` points at.

    Built by :func:`layout_for` from a prepared benchmark; lets the
    model attribute access sites to buffers, estimate cache residency,
    and resolve parameter-valued loop bounds.  Without a layout every
    global access is assumed to miss and symbolic bounds fall back to
    :data:`DEFAULT_TRIPS`.
    """

    #: param index -> buffer size in bytes (pointer params only).
    buffer_bytes: dict = field(default_factory=dict)
    #: param index -> scalar value (integer params only).
    param_values: dict = field(default_factory=dict)
    #: total threads in the grid (for reuse-factor estimates).
    total_threads: int = 0


def layout_for(bench, scale: float = 1.0) -> KernelLayout:
    """Derive the :class:`KernelLayout` of ``bench`` at ``scale``."""
    prepared = bench.prepare(scale)
    by_base = {base: nbytes
               for base, nbytes in prepared.gmem._buffers.values()}
    buffers = {}
    values = {}
    for i, p in enumerate(prepared.params):
        if p in by_base:
            buffers[i] = by_base[p]
        else:
            values[i] = int(p)
    gx, gy, gz = prepared.grid_dim
    threads = gx * gy * gz * bench.kernel.threads_per_cta
    return KernelLayout(buffer_bytes=buffers, param_values=values,
                        total_threads=threads)


@dataclass(frozen=True)
class WarpProfile:
    """One warp's summarized execution (loop-expanded trace)."""

    instructions: int  # issue slots consumed
    alu_stall: int  # dependence stalls on short-latency producers
    alu_taint: int  # the subset whose producer chain includes a load
    mem_stall: int  # dependence stalls on long-latency (miss) loads
    ldst_port: float  # LD/ST port busy cycles (sum of expected transactions)
    smem_port: float  # shared-memory port busy cycles (sum of expected passes)
    sfu_port: float  # SFU pipeline busy cycles
    inflight: int  # peak outstanding long-load *lines* (same-line merged)
    dram_lines: float  # DRAM transactions per trace (miss loads + stores)
    cold_lat: int  # latency of the first long load in the trace (0 if none)
    global_accesses: int
    shared_accesses: int
    barriers: int
    #: True when a long-latency load occurs *after* the first barrier:
    #: warps re-stagger every round trip, so no post-barrier alignment
    #: survives into later phases.
    post_barrier_miss: bool = False
    #: per-barrier-phase (issue slots, alu stalls, mem stalls,
    #: shared passes, sfu cycles)
    phases: tuple = ()
    mix: dict = field(default_factory=dict)  # op-class -> issue fraction

    @property
    def chain_cycles(self) -> int:
        """Single-warp makespan lower bound (critical path)."""
        return self.instructions + self.alu_stall + self.mem_stall


@dataclass(frozen=True)
class PerfPrediction:
    """Static prediction for one kernel on one architecture."""

    kernel: str
    arch: str
    limiter: str  # occupancy LimiterClass value
    idle_class: str  # "mem" | "struct" | "alu"
    vt_tier: str  # "high" | "moderate" | "neutral"
    warps: int  # resident latency-hiding warps used by the model
    active_warps: int  # simultaneously schedulable warps (baseline set)
    busy: float  # predicted issue-slot utilization at the binding bound
    bounds: dict = field(default_factory=dict)  # bound name -> cycles
    binding: str = ""  # name of the rule / constraint that decided the class
    profile: WarpProfile | None = None
    occupancy: OccupancyResult | None = None

    def to_dict(self) -> dict:
        return {
            "kernel": self.kernel,
            "arch": self.arch,
            "limiter": self.limiter,
            "idle_class": self.idle_class,
            "vt_tier": self.vt_tier,
            "warps": self.warps,
            "active_warps": self.active_warps,
            "busy": round(self.busy, 4),
            "binding": self.binding,
            "bounds": {k: round(v, 1) for k, v in self.bounds.items()},
        }


# -- loop structure ----------------------------------------------------------


def _affine_param_value(value, param_values: dict) -> int | None:
    """Concrete value of an affine form ``const + paramN`` when the
    parameter's launch value is known (loop bounds held in registers)."""
    if value is None or is_top(value) or value.fuzzy or value.tid:
        return None
    if len(value.uni) != 1:
        return None
    sym, coef = value.uni[0]
    if coef != 1 or not sym.startswith("param"):
        return None
    v = param_values.get(int(sym[len("param"):]))
    return None if v is None else v + int(value.const)


def _loop_trip_counts(kernel, envs=None, param_values=None) -> dict[int, int]:
    """``branch pc -> trip count`` for every backward branch.

    Recognizes the registry's counted-loop idiom: a counter initialized
    by ``MOV rC, #init`` before the loop, stepped by ``IADD rC, rC, #s``
    inside it, compared by ``SETP.cmp rP, rC, bound``, looped by
    ``@rP BRA``.  An immediate bound is exact; a register bound resolves
    through the affine environment when it is a known launch parameter.
    Anything else gets :data:`DEFAULT_TRIPS`.
    """
    instrs = kernel.instrs
    trips: dict[int, int] = {}
    param_values = param_values or {}
    for pc, instr in enumerate(instrs):
        if not (instr.is_branch and instr.target is not None
                and instr.target <= pc):
            continue
        trips[pc] = DEFAULT_TRIPS
        if instr.pred is None:
            continue
        body = range(instr.target, pc + 1)
        setp_pc = next((i for i in reversed(body)
                        if instrs[i].op is Op.SETP and instrs[i].dst is not None
                        and instrs[i].dst.idx == instr.pred.idx), None)
        if setp_pc is None or len(instrs[setp_pc].srcs) != 2:
            continue
        setp = instrs[setp_pc]
        lhs, rhs = setp.srcs
        if not isinstance(lhs, Reg):
            continue
        bound = None
        if isinstance(rhs, Imm):
            bound = float(rhs.value)
        elif isinstance(rhs, Reg) and envs is not None and envs[setp_pc] is not None:
            v = _affine_param_value(envs[setp_pc].get(rhs.idx), param_values)
            if v is not None:
                bound = float(v)
        if bound is None:
            continue
        counter = lhs.idx
        step = 0
        for i in body:
            s = instrs[i]
            if (s.op is Op.IADD and s.dst is not None and s.dst.idx == counter
                    and isinstance(s.srcs[0], Reg) and s.srcs[0].idx == counter
                    and isinstance(s.srcs[1], Imm)):
                step += int(s.srcs[1].value)
        init = None
        for i in range(instr.target):
            s = instrs[i]
            if s.dst is not None and s.dst.idx == counter:
                init = (float(s.srcs[0].value)
                        if s.op is Op.MOV and isinstance(s.srcs[0], Imm)
                        else None)
        if init is None or step == 0:
            continue
        cmp = setp.cmp.value if setp.cmp is not None else ""
        if instr.pred_neg:  # @!p BRA: loops while the comparison is false
            cmp = {"lt": "ge", "le": "gt", "gt": "le", "ge": "lt",
                   "eq": "ne", "ne": "eq"}.get(cmp, "")
        span = None
        if cmp == "lt" and step > 0:
            span = bound - init
        elif cmp == "le" and step > 0:
            span = bound - init + 1
        elif cmp == "gt" and step < 0:
            span = init - bound
        elif cmp == "ge" and step < 0:
            span = init - bound + 1
        if span is not None and span > 0:
            trips[pc] = max(1, -(-int(span) // abs(step)))
    return trips


def _linear_trace(kernel, trips: dict[int, int]) -> list[int]:
    """Loop-expanded straight-line PC trace of one warp.

    Backward branches are taken ``trips - 1`` times (budgets of nested
    back edges re-arm on every outer iteration); forward conditional
    branches fall through — a divergent warp pays for both sides of an
    if/else, which is exactly what serialized execution costs.
    """
    budgets = {pc: trips[pc] - 1 for pc in trips}
    trace: list[int] = []
    pc = 0
    n = len(kernel.instrs)
    while 0 <= pc < n and len(trace) < MAX_TRACE:
        instr = kernel.instrs[pc]
        trace.append(pc)
        if instr.is_exit:
            break
        if instr.is_branch and instr.target is not None:
            if instr.target <= pc:  # back edge
                if budgets.get(pc, 0) > 0:
                    budgets[pc] -= 1
                    for other in budgets:  # re-arm nested loops
                        if instr.target <= other < pc:
                            budgets[other] = trips[other] - 1
                    pc = instr.target
                    continue
            elif instr.pred is None:  # unconditional forward jump
                pc = instr.target
                continue
        pc += 1
    return trace


# -- access attribution and cache residency ----------------------------------


def _taint_regs(kernel, cfg_view: CFGView) -> list[set[int]]:
    """Per-PC set of registers whose value is data-dependent (derived
    from a loaded value, directly or through a predicate)."""
    n = len(kernel.instrs)
    tainted: list[set[int]] = [set() for _ in range(n)]
    changed = True
    while changed:
        changed = False
        for pc in range(n):
            if not cfg_view.pc_reachable(pc):
                continue
            instr = kernel.instrs[pc]
            out = set(tainted[pc])
            dst = instr.dst_reg()
            if dst is not None:
                if instr.is_load or any(r in tainted[pc]
                                        for r in instr.src_regs()):
                    out.add(dst)
                elif instr.pred is None:
                    out.discard(dst)
            for succ in cfg_view.instr_successors(pc):
                if succ < n and not out <= tainted[succ]:
                    tainted[succ] |= out
                    changed = True
    return tainted


def _sparse_filtered(kernel, tainted: list[set[int]]) -> set[int]:
    """PCs guarded by a data-dependent *equality filter*: a forward
    branch whose predicate compares a loaded value for EQ/NE.

    That idiom selects a sparse subset of threads to do work (BFS's
    ``level[v] == current`` frontier test): the guarded loads execute
    with thin active masks over a small touched working set, so they
    stay L1-resident and near-coalesced.  Range guards (LT/GE loop
    bounds, as in spmv's row walk) do not filter — every thread's range
    is non-empty — and are excluded by the comparison kind.
    """
    out: set[int] = set()
    instrs = kernel.instrs
    for pc, instr in enumerate(instrs):
        if not (instr.is_branch and instr.target is not None
                and instr.target > pc and instr.pred is not None):
            continue
        if instr.pred.idx not in tainted[pc]:
            continue
        setp = next((instrs[i] for i in range(pc - 1, -1, -1)
                     if instrs[i].op is Op.SETP and instrs[i].dst is not None
                     and instrs[i].dst.idx == instr.pred.idx), None)
        if setp is None or setp.cmp is None:
            continue
        if setp.cmp.value in ("eq", "ne"):
            out.update(range(pc + 1, instr.target))
    return out


def _param_of(value) -> int | None:
    """Parameter index of the single unit-coefficient ``%paramN`` term
    in an affine value, if any (how every kernel forms base pointers)."""
    params = [sym for sym, coef in value.uni
              if sym.startswith("param") and coef == 1]
    if len(params) == 1:
        return int(params[0][len("param"):])
    return None


def _attribute_sites(kernel, affine, envs) -> dict[int, int]:
    """``access pc -> param index`` of the buffer each global access
    targets.

    Analyzable addresses carry their ``%param`` base in the affine
    form.  Unanalyzable (TOP) addresses are attributed by walking the
    base register's *nearest preceding* definition (registers are
    recycled, so a union over all defs cross-contaminates): ``IADD rb,
    r_base, r_index`` with a param-affine operand is the universal
    base+offset idiom.
    """
    out: dict[int, int] = {}
    instrs = kernel.instrs
    for pc, instr in enumerate(instrs):
        if not instr.is_global_mem or envs[pc] is None:
            continue
        address = affine.address(pc, envs[pc])
        if not is_top(address):
            p = _param_of(address)
            if p is not None:
                out[pc] = p
            continue
        base = next((s.base.idx for s in instr.srcs
                     if isinstance(s, MemRef)), None)
        if base is None:
            continue
        dpc = next((i for i in range(pc - 1, -1, -1)
                    if instrs[i].dst_reg() == base), None)
        if dpc is None or envs[dpc] is None:
            continue
        candidates = {p for operand in instrs[dpc].srcs
                      if isinstance(operand, Reg)
                      and (p := _param_of(envs[dpc].get(operand.idx)))
                      is not None}
        if len(candidates) == 1:
            out[pc] = candidates.pop()
    return out


def _latency_classes(kernel, cfg: GPUConfig, layout: KernelLayout | None,
                     site_param: dict[int, int], site_weight: dict[int, int],
                     costs: dict[int, AccessCost],
                     filtered: set[int]) -> dict[int, int]:
    """``access pc -> modelled load latency`` from cache residency.

    Tiers, checked in order:

    * **Sparse filter** — loads guarded by a data-dependent equality
      test (:func:`_sparse_filtered`) or individually predicated
      gathers execute with thin active masks over a touched working
      set far below the buffer footprint: L1-resident.
    * **L1-resident** — heavy temporal reuse (touches / words >=
      :data:`REUSE_L1`) over a per-SM working set that fits L1
      (tid-partitioned buffers split across SMs; gathers do not).
    * **L2-resident** — modest reuse (>= :data:`REUSE_L2`) over a
      buffer that fits L2: misses stop at the partition, paying
      interconnect + L2 latency instead of the DRAM round trip.
    * Everything else — and everything when no layout is known — pays
      the full DRAM round trip.
    """
    miss = cfg.dram_latency + cfg.l2_hit_latency
    l2_lat = cfg.l2_hit_latency + 2 * cfg.icnt_latency
    lat: dict[int, int] = {}
    touches: dict[int, float] = {}
    partitioned: dict[int, bool] = {}
    if layout is not None and layout.buffer_bytes:
        for pc, p in site_param.items():
            touches[p] = (touches.get(p, 0.0)
                          + site_weight.get(pc, 0) * layout.total_threads)
            cost = costs.get(pc)
            # Only the fixpoint-affine form implies a tid-partitioned
            # stream; an unroll-refined loop-carried walk still sweeps
            # the whole buffer from every SM.
            part = bool(cost and cost.analyzable and cost.source == "affine")
            partitioned[p] = partitioned.get(p, True) and part
    for pc, instr in enumerate(kernel.instrs):
        if not instr.is_global_mem:
            continue
        cost = costs.get(pc)
        unanalyzable = cost is not None and not cost.analyzable
        if pc in filtered or (unanalyzable and instr.pred is not None):
            lat[pc] = cfg.l1_hit_latency
            continue
        p = site_param.get(pc)
        nbytes = (layout.buffer_bytes.get(p)
                  if layout is not None and p is not None else None)
        if nbytes is None:
            lat[pc] = miss
            continue
        reuse = touches[p] / max(1.0, nbytes / 4.0)
        resident = nbytes / cfg.num_sms if partitioned[p] else nbytes
        if reuse >= REUSE_L1 and resident <= cfg.l1_size:
            lat[pc] = cfg.l1_hit_latency
        elif reuse >= REUSE_L2 and nbytes <= cfg.l2_size:
            lat[pc] = l2_lat
        else:
            lat[pc] = miss
    return lat


# -- single-warp profile -----------------------------------------------------


def _model_tx(cost: AccessCost | None, tainted_addr: bool, sparse: bool,
              max_lanes: int) -> float:
    if cost is None:
        return 1.0
    if cost.analyzable and cost.source == "affine":
        return cost.expected
    if tainted_addr and not sparse:
        est = TX_EST_GATHER
    else:
        est = TX_EST_ARITH
    # The unroll/interval refinements may have proven a tighter worst
    # case than one transaction per lane; never estimate above a proven
    # bound.  (The refined *expected* value is deliberately not used for
    # globals: the estimate also stands in for L1-sector and row-buffer
    # effects the exact line count does not see.)
    return min(float(max_lanes), float(cost.full_hi), max(1.0, est))


def _line_clusters(kernel, cfg: GPUConfig, site_param: dict[int, int],
                   affine, envs) -> dict[int, tuple]:
    """``load pc -> line-group key``: sites whose affine address
    constants land within one L1 line of each other on the same buffer
    share an MSHR fill (hotspot's west/center/east stencil taps), so
    they count once toward outstanding-miss concurrency."""
    by_param: dict[int, list[tuple[int, int]]] = {}
    for pc, p in site_param.items():
        if envs[pc] is None:
            continue
        addr = affine.address(pc, envs[pc])
        if addr is not None and not is_top(addr):
            by_param.setdefault(p, []).append((int(addr.const), pc))
    groups: dict[int, tuple] = {}
    for p, sites in by_param.items():
        sites.sort()
        cluster = 0
        prev = None
        for const, pc in sites:
            if prev is not None and const - prev > cfg.line_bytes:
                cluster += 1
            groups[pc] = (p, cluster)
            prev = const
    return groups


def warp_profile(kernel, cfg: GPUConfig,
                 layout: KernelLayout | None = None) -> WarpProfile:
    """Summarize one warp's loop-expanded execution for the model."""
    cfg_view = CFGView(kernel.instrs)
    affine, envs = affine_solution(kernel, cfg_view)
    ianalysis, ienvs = interval_solution(kernel, cfg_view)
    costs = {c.pc: c for c in access_costs(
        kernel, cfg_view, affine, envs, line_bytes=cfg.line_bytes,
        num_banks=cfg.shared_mem_banks, intervals=(ianalysis, ienvs),
        param_values=layout.param_values if layout else None)}
    tainted = _taint_regs(kernel, cfg_view)
    trips = _loop_trip_counts(kernel, envs,
                              layout.param_values if layout else None)
    trace = _linear_trace(kernel, trips)
    max_lanes = min(32, kernel.threads_per_cta)

    site_weight: dict[int, int] = {}
    for pc in trace:
        if kernel.instrs[pc].info.is_mem:
            site_weight[pc] = site_weight.get(pc, 0) + 1
    site_param = _attribute_sites(kernel, affine, envs)
    filtered = _sparse_filtered(kernel, tainted)
    load_lat = _latency_classes(kernel, cfg, layout, site_param,
                                site_weight, costs, filtered)
    default_lat = cfg.dram_latency + cfg.l2_hit_latency
    line_group = _line_clusters(kernel, cfg, site_param, affine, envs)

    # In-order issue walk with scoreboard semantics (srcs + WAW on dst):
    # one warp, unit issue, no port contention.  A stall is memory-class
    # only when its producer is a *long*-latency load, mirroring the
    # simulator's vt_long_stall_threshold rule.
    ready: dict[int, tuple[int, bool]] = {}  # reg -> (ready time, long load)
    t = 0
    alu_stall = mem_stall = alu_taint = 0
    ldst = smem = sfu = dram_lines = 0.0
    inflight = 0
    cold_lat = 0
    long_gather = False  # some long load has a data-dependent/unknown address
    long_params: set[int] = set()  # buffers the long affine streams walk
    post_barrier_miss = False
    retire: list[tuple[int, tuple]] = []  # (completion, line-group key)
    n_glob = n_shared = n_bar = 0
    phases: list[tuple] = []  # (issue, alu, mem, smem passes, sfu cycles)
    ph_i = ph_a = ph_m = 0
    ph_smem = ph_sfu = 0.0
    mix: dict[str, int] = {}
    for pc in trace:
        instr = kernel.instrs[pc]
        cls = instr.info.op_class
        mix[cls.value] = mix.get(cls.value, 0) + 1
        ph_i += 1
        start = t + 1
        blocker: int | None = None
        blocker_long = False
        deps = instr.src_regs()
        if instr.dst is not None:
            deps.append(instr.dst.idx)
        for reg in deps:
            when, long = ready.get(reg, (0, False))
            if when > start or (when == start and long and not blocker_long):
                start, blocker, blocker_long = max(start, when), reg, long
        stall = start - (t + 1)
        if stall:
            if blocker_long:
                mem_stall += stall
                ph_m += stall
            else:
                alu_stall += stall
                ph_a += stall
                if blocker is not None and blocker in tainted[pc]:
                    alu_taint += stall
        t = start
        retire = [r for r in retire if r[0] > t]
        cost = costs.get(pc)
        if cls is OpClass.MEM_GLOBAL:
            n_glob += 1
            sparse = pc in filtered or instr.pred is not None
            gather = bool(tainted[pc] & set(instr.src_regs()))
            tx = max(1.0, _model_tx(cost, gather, sparse, max_lanes))
            ldst += tx
            lat = load_lat.get(pc, default_lat)
            if instr.is_store and not instr.info.is_atomic:
                if not sparse:  # write-through: full-mask store lines hit DRAM
                    dram_lines += tx
            else:
                long = lat >= cfg.vt_long_stall_threshold
                if instr.dst is not None:
                    ready[instr.dst.idx] = (t + lat, long)
                if long:
                    if lat >= default_lat:
                        dram_lines += tx
                    if not cold_lat:
                        cold_lat = lat
                    if n_bar:
                        post_barrier_miss = True
                    p = site_param.get(pc)
                    if gather or p is None:
                        long_gather = True
                    else:
                        long_params.add(p)
                    retire.append((t + lat, line_group.get(pc, (None, pc))))
                    inflight = max(inflight, len({k for _, k in retire}))
        elif cls is OpClass.MEM_SHARED:
            n_shared += 1
            passes = (cost.expected if cost and cost.analyzable
                      else min(PASSES_EST_UNKNOWN, float(cost.hi))
                      if cost else PASSES_EST_UNKNOWN)
            passes = max(1.0, passes)
            smem += passes
            ph_smem += passes
            if instr.dst is not None:
                lat = cfg.lat_smem + (passes - 1) * cfg.smem_bank_conflict_penalty
                ready[instr.dst.idx] = (t + int(round(lat)), False)
        else:
            if cls is OpClass.SFU:
                sfu += cfg.sfu_issue_interval
                ph_sfu += cfg.sfu_issue_interval
            if instr.is_barrier:
                n_bar += 1
                phases.append((ph_i, ph_a, ph_m, ph_smem, ph_sfu))
                ph_i = ph_a = ph_m = 0
                ph_smem = ph_sfu = 0.0
            if instr.dst is not None:
                ready[instr.dst.idx] = (t + cfg.latency_for(cls), False)
    phases.append((ph_i, ph_a, ph_m, ph_smem, ph_sfu))
    # Footprint cap on outstanding lines: warps partition an affine
    # stream, so one warp holds at most its grid share of each long
    # buffer's lines in flight at once (gathers stay uncapped — a
    # data-dependent address can scatter across the whole buffer).
    if (inflight and not long_gather and long_params and layout is not None
            and layout.total_threads):
        grid_warps = max(1, layout.total_threads // 32)
        cap = sum(max(1, round(layout.buffer_bytes.get(p, 0)
                               / cfg.line_bytes / grid_warps))
                  for p in long_params)
        inflight = min(inflight, cap)
    total = max(1, len(trace))
    return WarpProfile(
        instructions=len(trace), alu_stall=alu_stall, alu_taint=alu_taint,
        mem_stall=mem_stall, ldst_port=ldst, smem_port=smem, sfu_port=sfu,
        inflight=inflight, dram_lines=dram_lines, cold_lat=cold_lat,
        global_accesses=n_glob, shared_accesses=n_shared, barriers=n_bar,
        post_barrier_miss=post_barrier_miss, phases=tuple(phases),
        mix={k: v / total for k, v in sorted(mix.items())})


# -- machine model -----------------------------------------------------------


def _effective_warps(occ: OccupancyResult, cfg: GPUConfig, arch: str) -> int:
    """Warps available for latency hiding on one SM under ``arch``."""
    baseline = max(1, occ.baseline_ctas)
    if arch == "baseline":
        ctas = baseline
    else:  # vt / ideal-sched: capacity-limited residency, swap-scheduled
        resident_cap = max(1, int(cfg.vt_max_resident_multiplier * baseline))
        ctas = max(baseline, min(occ.capacity_limit_ctas, resident_cap))
    return max(1, ctas * occ.warps_per_cta)


def throughput_bounds(profile: WarpProfile, cfg: GPUConfig,
                      warps: int) -> dict[str, float]:
    """Steady-state cycles for one SM to retire ``warps`` warp-traces,
    one bound per machine resource (the max binds)."""
    n = warps
    service = cfg.dram_service_cycles / max(1, cfg.dram_channels)
    return {
        "issue": n * profile.instructions / max(1, cfg.num_warp_schedulers),
        "ldst": n * profile.ldst_port,
        "smem": n * profile.smem_port,
        "sfu": n * profile.sfu_port,
        "dram": n * profile.dram_lines * service * cfg.num_sms,
        "chain": float(profile.chain_cycles),
    }


def _exposed_mem(profile: WarpProfile, warps: int, schedulers: int) -> float:
    """Memory-stall cycles the other warps' issue slots cannot cover,
    summed per barrier phase.

    All warps launch aligned, so within a stall window the other warps
    contribute only their *issue* slots (their own stalls coincide with
    ours), and barriers re-align a CTA's warps so slack does not carry
    across phases.
    """
    exposed = 0.0
    for instrs, alu, mem, _smem, _sfu in profile.phases:
        exposed += max(0.0, mem - (warps - 1) * instrs / schedulers)
    return exposed


def _cold_exposed(profile: WarpProfile, active: int,
                  schedulers: int) -> tuple[float, float]:
    """(phase-0 exposed cycles, phase-0 share of total memory stalls)
    for the VT cold-convoy rule: at t=0 the *active* warps issue their
    first misses launch-aligned — rotation has not built up yet."""
    instrs, _alu, mem, _smem, _sfu = profile.phases[0]
    exposed = max(0.0, mem - (active - 1) * instrs / schedulers)
    share = mem / profile.mem_stall if profile.mem_stall else 0.0
    return exposed, share


def _aligned_burst(profile: WarpProfile, schedulers: int) -> float:
    """Peak per-phase port pressure of a barrier-*aligned* phase train.

    Meaningful only when no long-latency load occurs after the first
    barrier: round trips re-stagger warps, but a miss-free phase train
    keeps every warp of the CTA aligned, so per-phase shared/SFU demand
    concentrates into a burst the port must serialize (backprop's
    post-tree sigmoid: every warp hits the SFU in the same short phase).
    Returns the worst ratio of port demand to phase issue time.
    """
    if not profile.barriers or profile.post_barrier_miss:
        return 0.0
    worst = 0.0
    for instrs, _alu, _mem, smem, sfu in profile.phases[1:]:
        if instrs:
            worst = max(worst, max(smem, sfu) * schedulers / instrs)
    return worst


def classify_idle(profile: WarpProfile, bounds: dict[str, float],
                  cfg: GPUConfig, warps: int,
                  active_warps: int | None = None) -> tuple[str, str]:
    """(idle class, deciding rule).  A decision cascade mirroring the
    simulator's dead-cycle mechanics (priority ``struct`` > ``alu`` >
    ``mem`` over *schedulable* warps — VT removes swapped-out CTAs from
    that scan); thresholds are calibrated against the simulator and
    locked by the ``repro predict --check`` gate.

    1. **Port serialization** — a pipeline (LD/ST transactions, shared
       passes, SFU issue interval) demanding clearly more cycles than
       the issue/critical-path anchor keeps READY warps queued behind
       it: dead cycles have a ready warp (struct).
    2. **MSHR convoy** (VT only) — at launch the *active* warps issue
       their initial misses nearly simultaneously; when the distinct
       miss lines of that convoy fill the MSHR file, the spare CTAs VT
       swaps in park READY at the LD/ST port (struct).  At baseline the
       same convoy leaves no spare warp behind it to block.
    3. **SFU surfacing** (VT only) — with memory stalls swapped out of
       the scan set, a hot SFU pipeline (>= :data:`SFU_SURFACE` of the
       issue bound) queues ready warps at its issue interval (struct).
    4. **Exposed latency** — at baseline, per-phase memory stalls the
       other warps' issue slots cannot cover leave every schedulable
       warp mem-blocked (mem).  Under VT, rotation hides steady-state
       misses and only the launch-aligned *cold convoy* survives — it
       must both clear :data:`EXPOSED_COLD` and carry at least half the
       trace's memory stalls (a cold transient of a long run dissolves
       into rotation).
    5. **Aligned burst** — a miss-free barrier-phase train keeps warps
       aligned, so a phase whose shared/SFU demand exceeds its issue
       time serializes every CTA behind the port each round (struct).
    6. **DRAM bandwidth** — DRAM service demand far above the issue
       bound (>= :data:`DRAM_EXCESS`) inflates every miss with queueing
       delay; warps wait mem-blocked regardless of residency (mem).
    7. **Residual** — hidden-latency steady state: any data-dependent
       short-stall mass across the active scan set makes dead cycles
       compute-class (the simulator calls a cycle ``alu`` if even one
       scanned warp is short-blocked); otherwise the residue is the
       cold-start miss (mem).
    """
    active = active_warps if active_warps is not None else warps
    schedulers = max(1, cfg.num_warp_schedulers)
    issue = bounds["issue"]
    anchor = max(issue, bounds["chain"])
    vt_rotation = warps > active

    for port in ("ldst", "smem", "sfu"):
        if bounds[port] >= PORT_MARGIN * anchor:
            return "struct", f"port:{port}"

    if vt_rotation:
        if active * profile.inflight >= cfg.l1_mshrs:
            return "struct", "mshr-convoy"
        if bounds["sfu"] >= SFU_SURFACE * issue:
            return "struct", "sfu-queue"
        cold, share = _cold_exposed(profile, active, schedulers)
        if cold >= EXPOSED_COLD and share >= 0.5:
            return "mem", "cold-convoy"
    else:
        if _exposed_mem(profile, warps, schedulers) > EXPOSED_MIN:
            return "mem", "exposed-latency"

    if _aligned_burst(profile, schedulers) >= 1.0:
        return "struct", "aligned-burst"

    if bounds["dram"] >= DRAM_EXCESS * issue:
        return "mem", "dram-bandwidth"

    if profile.alu_taint * active >= ALU_RESIDUAL * max(float(profile.cold_lat), 1.0):
        return "alu", "dependence-residual"
    return "mem", "cold-start"


def vt_tier(occ: OccupancyResult, baseline_idle: str, busy: float) -> str:
    """Predicted VT-benefit tier from headroom and the baseline bottleneck.

    VT pays off when extra resident CTAs exist (capacity headroom beyond
    the scheduling limit) *and* the baseline actually idles on memory
    latency those CTAs could hide.
    """
    headroom = occ.vt_headroom
    if headroom <= 1.0 or baseline_idle != "mem":
        return "neutral"
    if headroom >= 2.0 and busy < 0.55:
        return "high"
    return "moderate"


def predict(kernel, cfg: GPUConfig | None = None, arch: str = "baseline",
            *, layout: KernelLayout | None = None,
            profile: WarpProfile | None = None,
            occ: OccupancyResult | None = None) -> PerfPrediction:
    """Static performance prediction for ``kernel`` under ``arch``."""
    cfg = cfg or GPUConfig()
    occ = occ or occupancy(kernel, cfg)
    profile = profile or warp_profile(kernel, cfg, layout)
    warps = _effective_warps(occ, cfg, arch)
    active = _effective_warps(occ, cfg, "baseline")
    bounds = throughput_bounds(profile, cfg, warps)
    idle, binding = classify_idle(profile, bounds, cfg, warps, active)
    total = max(bounds.values())
    busy = min(1.0, bounds["issue"] / total) if total else 1.0

    if arch == "baseline":
        base_idle, base_busy = idle, busy
    else:
        base_bounds = throughput_bounds(profile, cfg, active)
        base_idle, _ = classify_idle(profile, base_bounds, cfg, active, active)
        base_total = max(base_bounds.values())
        base_busy = (min(1.0, base_bounds["issue"] / base_total)
                     if base_total else 1.0)
    tier = vt_tier(occ, base_idle, base_busy)

    return PerfPrediction(
        kernel=kernel.name, arch=arch, limiter=occ.limiter.value,
        idle_class=idle, vt_tier=tier, warps=warps, active_warps=active,
        busy=busy, bounds=bounds, binding=binding, profile=profile,
        occupancy=occ)


def predict_kernel(kernel, cfg: GPUConfig | None = None,
                   archs: tuple[str, ...] = ("baseline", "vt"),
                   layout: KernelLayout | None = None) -> list[PerfPrediction]:
    """Predictions for one kernel across ``archs`` (shared profile)."""
    cfg = cfg or GPUConfig()
    occ = occupancy(kernel, cfg)
    profile = warp_profile(kernel, cfg, layout)
    return [predict(kernel, cfg, arch, profile=profile, occ=occ)
            for arch in archs]


# -- agreement gate ----------------------------------------------------------

#: Tie tolerance of the ``repro predict --check`` gate: the predicted
#: idle class also agrees when its measured cycle fraction reaches this
#: share of the dominant class's.  Several kernels sit on genuine
#: near-ties (srad's alu/mem split, nw's struct/mem split) where the
#: 3-class argmax is measurement noise, not model error; anything below
#: this ratio is a real disagreement and fails the gate.
AGREEMENT_TIE = 0.65

#: Measured VT-benefit tier cut points (baseline/VT cycle ratio).
TIER_HIGH = 1.30
TIER_MODERATE = 1.05


def measured_idle_class(breakdown: dict) -> str:
    """Dominant simulated idle class among the model's three classes
    (``barrier``/``swap``/``empty`` idle is outside the prediction)."""
    return max(IDLE_CLASSES, key=lambda k: breakdown.get(k, 0.0))


def idle_agreement(predicted: str, breakdown: dict,
                   tie: float = AGREEMENT_TIE) -> tuple[bool, str, float]:
    """(agrees, dominant class, predicted/dominant fraction ratio)."""
    dom = measured_idle_class(breakdown)
    top = breakdown.get(dom, 0.0)
    ratio = breakdown.get(predicted, 0.0) / top if top else 1.0
    return predicted == dom or ratio >= tie, dom, ratio


def measured_vt_tier(baseline_cycles: int, vt_cycles: int) -> str:
    """Measured VT-benefit tier from the simulated cycle ratio."""
    ratio = baseline_cycles / max(1, vt_cycles)
    if ratio >= TIER_HIGH:
        return "high"
    if ratio >= TIER_MODERATE:
        return "moderate"
    return "neutral"
