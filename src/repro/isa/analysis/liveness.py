"""Backward liveness analysis and VT swap-point register footprints.

A register is *live* at a PC when some path from that PC reads it before
writing it.  Three consumers:

* **Lint** — declared ``regs_per_thread`` far above the maximum live
  pressure is flagged as an over-declaration (informational: the registry
  deliberately over-declares some kernels to model real compilers).
* **VT swap footprint** — the paper's context switch moves only
  scheduling state, but a design that also spilled architectural
  registers (compiler-assisted preemption, see Pai et al. in PAPERS.md)
  would move the *live* set, not the declared footprint.  VT swaps fire
  when every warp of a CTA is blocked on a long-latency load, so the
  relevant PCs are the instruction boundaries just after global-memory
  accesses, plus barriers (where warps also park).  The footprint is the
  worst case over those swap points.
* **Sanitizer cross-check** — registers written at runtime must be in
  the statically written set (see :mod:`repro.sim.sanitizer`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.analysis.dataflow import BACKWARD, CFGView, DataflowProblem, solve
from repro.isa.opcodes import Op, OpClass


class LivenessAnalysis(DataflowProblem):
    """Classic backward may-liveness over register indices."""

    direction = BACKWARD

    def boundary(self) -> frozenset:
        return frozenset()

    def init(self) -> frozenset:
        return frozenset()

    def meet(self, a: frozenset, b: frozenset) -> frozenset:
        return a | b

    def transfer(self, pc: int, instr, live: frozenset) -> frozenset:
        dst = instr.dst_reg()
        if dst is not None and instr.pred is None:
            # Only an unpredicated write fully kills: a predicated write
            # leaves lanes with the old value, so the register stays live.
            live = live - {dst}
        reads = instr.src_regs()
        if reads:
            live = live | frozenset(reads)
        return live


@dataclass(frozen=True)
class LivenessInfo:
    """Per-kernel liveness summary."""

    kernel_name: str
    live_in: tuple  # frozenset per PC
    max_pressure: int  # max |live_in| over reachable PCs
    barrier_live: dict  # BAR pc -> live register count
    swap_point_live: dict  # pc after a global-memory op -> live count
    written_regs: frozenset  # statically written register indices

    @property
    def swap_footprint_regs(self) -> int:
        """Worst-case live registers at a VT swap point.

        Falls back to the overall max pressure for kernels with no global
        memory ops or barriers (nothing would ever trigger a swap, but the
        bound stays meaningful).
        """
        points = list(self.barrier_live.values()) + list(self.swap_point_live.values())
        return max(points) if points else self.max_pressure


def liveness(kernel, cfg: CFGView | None = None) -> LivenessInfo:
    """Run the liveness pass over ``kernel``."""
    cfg = cfg or CFGView(kernel.instrs)
    solution = solve(LivenessAnalysis(), cfg)
    live_in = solution.per_pc()

    max_pressure = 0
    barrier_live: dict[int, int] = {}
    swap_live: dict[int, int] = {}
    written: set[int] = set()
    n = len(kernel.instrs)
    for pc, instr in enumerate(kernel.instrs):
        if not cfg.pc_reachable(pc):
            continue
        pressure = len(live_in[pc])
        max_pressure = max(max_pressure, pressure)
        dst = instr.dst_reg()
        if dst is not None:
            written.add(dst)
        if instr.op is Op.BAR:
            barrier_live[pc] = pressure
        if instr.info.op_class is OpClass.MEM_GLOBAL:
            # The warp blocks with its PC already advanced past the load:
            # the state a swap would save is what is live *after* it.
            after = pc + 1
            count = len(live_in[after]) if after < n else 0
            # The load's destination is in flight and must survive the
            # swap even if the static set at pc+1 happens to drop it.
            if dst is not None and after < n and dst not in live_in[after]:
                count += 1
            swap_live[pc] = count
    return LivenessInfo(
        kernel_name=kernel.name,
        live_in=tuple(live_in),
        max_pressure=max_pressure,
        barrier_live=barrier_live,
        swap_point_live=swap_live,
        written_regs=frozenset(written),
    )
