"""Bounded uniform loop unrolling for the affine pass.

The fixpoint affine analysis joins loop-carried values at loop headers,
so a ping-pong buffer index (``buf ^= 1``) or an unrolled-by-hand tile
counter widens to *unknown uniform* and every shared address built from
it goes unanalyzable — leaving ``shared-race-maybe`` findings the race
pass cannot decide.  This module re-executes the kernel *path-
sensitively* instead: when every branch predicate is CTA-uniform and
concretely evaluable, the whole execution is a single straight-line
trace shared by all threads, and each shared access occurrence gets an
exact affine address (constant folded through XOR/AND/shift arithmetic
the fixpoint domain tops out on).

Soundness of the discharge:

* The trace is only produced when **every** conditional branch decided
  concretely and uniformly; all threads therefore execute the same
  occurrence sequence, and two occurrences can race only when no ``BAR``
  separates them — i.e. they fall in the same *barrier epoch*.
* A ``maybe`` race between sites ``(a, b)`` is discharged only when
  every same-epoch occurrence pair proves disjoint under
  :func:`~repro.isa.analysis.shared.may_overlap` (``False``, not merely
  unknown), with word-injectivity covering the distinct-threads-same-
  occurrence case.
* Anything else — the dynamic-step **budget** exceeded, a divergent or
  unevaluable branch, a divergent predicate on an occurrence, an
  overlap query returning unknown — keeps the finding at ``maybe``.
  The fallback is always the undecided verdict, never a silent ``safe``
  (tests/test_unroll.py pins this with a budget-starved fixture).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.analysis.affine import (
    Affine,
    AffineAnalysis,
    AffineEnv,
    PredInfo,
    is_top,
)
from repro.isa.instruction import MemRef
from repro.isa.opcodes import CmpOp, Op

#: Default cap on dynamically executed instructions during the unroll.
#: The registry's uniform-loop kernels trace in a few hundred steps; the
#: cap only exists so pathological trip counts degrade to ``maybe``
#: instead of stalling the linter.
UNROLL_BUDGET = 4096

_INT64_MOD = 1 << 64
_INT64_SIGN = 1 << 63


def _wrap(value: int) -> int:
    """Two's-complement int64 wrap (the executor's integer width)."""
    return (value + _INT64_SIGN) % _INT64_MOD - _INT64_SIGN


def _trunc_div(a: int, b: int) -> int:
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


_CMP = {
    CmpOp.LT: lambda a, b: a < b,
    CmpOp.LE: lambda a, b: a <= b,
    CmpOp.GT: lambda a, b: a > b,
    CmpOp.GE: lambda a, b: a >= b,
    CmpOp.EQ: lambda a, b: a == b,
    CmpOp.NE: lambda a, b: a != b,
}

#: Integer ops folded concretely when every operand is a known constant —
#: exactly the ops the affine domain loses (bitwise, division) plus the
#: ones it keeps (kept here too so folded values stay integral).
_FOLD = {
    Op.MOV: lambda s: s[0],
    Op.IADD: lambda s: s[0] + s[1],
    Op.ISUB: lambda s: s[0] - s[1],
    Op.IMUL: lambda s: s[0] * s[1],
    Op.IMAD: lambda s: s[0] * s[1] + s[2],
    Op.SHL: lambda s: s[0] << s[1],
    Op.SHR: lambda s: s[0] >> s[1],
    Op.AND: lambda s: s[0] & s[1],
    Op.OR: lambda s: s[0] | s[1],
    Op.XOR: lambda s: s[0] ^ s[1],
    Op.IMIN: lambda s: min(s[0], s[1]),
    Op.IMAX: lambda s: max(s[0], s[1]),
    Op.IDIV: lambda s: _trunc_div(s[0], s[1]) if s[1] else 0,
    Op.IREM: lambda s: s[0] - _trunc_div(s[0], s[1]) * s[1] if s[1] else s[0],
}


@dataclass(frozen=True)
class Occurrence:
    """One dynamic memory access (shared or global) in the unrolled trace."""

    pc: int
    epoch: int  # barrier-phase index (BAR increments it)
    kind: str  # "load" | "store" | "atomic"
    address: Affine
    predicated: bool  # guarded by a divergent (non-concrete) predicate


def _concrete(value: Affine) -> int | None:
    if value.is_const and float(value.const).is_integer():
        return int(value.const)
    return None


def _resolve_params(value: Affine, param_values) -> Affine:
    """Fold known launch-parameter uniforms into the constant term."""
    if not value.uni or is_top(value):
        return value
    const = value.const
    uni = []
    for sym, coef in value.uni:
        if sym.startswith("param") and sym[5:].isdigit():
            idx = int(sym[5:])
            if idx in param_values:
                const += coef * param_values[idx]
                continue
        uni.append((sym, coef))
    if len(uni) == len(value.uni):
        return value
    return Affine(const, value.tid, tuple(uni), value.fuzzy, pred=value.pred)


def unrolled_trace(kernel, budget: int = UNROLL_BUDGET,
                   param_values: dict | None = None):
    """Execute the kernel's uniform control flow concretely.

    Returns the list of memory-access :class:`Occurrence`\\ s (shared and
    global), or ``None`` when the kernel cannot be unrolled within
    ``budget`` dynamic steps — a branch predicate is divergent or not
    concretely known, or the trace is longer than the budget.  ``None``
    always means *undecided*.

    ``param_values`` (parameter index -> launch value) lets branches on
    parameter-valued loop bounds (e.g. a tiled loop's trip count) decide
    concretely; without it such kernels simply return ``None``.
    """
    analysis = AffineAnalysis(kernel)
    regs: dict[int, Affine] = {}
    env = AffineEnv(regs)  # live view of the mutable dict
    trace: list[Occurrence] = []
    pc = 0
    epoch = 0
    steps = 0
    n = len(kernel.instrs)

    def operand(src) -> Affine:
        value = analysis._operand(src, env)
        if param_values:
            return _resolve_params(value, param_values)
        return value

    while 0 <= pc < n:
        steps += 1
        if steps > budget:
            return None
        instr = kernel.instrs[pc]
        if instr.is_exit:
            return trace
        if instr.op is Op.BAR:
            epoch += 1
            pc += 1
            continue
        if instr.is_branch and instr.target is not None:
            if instr.pred is None:
                pc = instr.target
                continue
            pred = _concrete(env.get(instr.pred.idx))
            if pred is None:
                return None  # divergent/unknown branch: cannot unroll
            taken = bool(pred) != instr.pred_neg
            pc = instr.target if taken else pc + 1
            continue

        pred_concrete = True
        pred_true = True
        if instr.pred is not None:
            pred = _concrete(env.get(instr.pred.idx))
            if pred is None:
                pred_concrete = False
            else:
                pred_true = bool(pred) != instr.pred_neg

        if instr.info.is_mem and (pred_true or not pred_concrete):
            ref = next(s for s in instr.srcs if isinstance(s, MemRef))
            address = operand(ref)
            kind = ("atomic" if instr.info.is_atomic
                    else "store" if instr.is_store else "load")
            trace.append(Occurrence(pc, epoch, kind, address,
                                    predicated=not pred_concrete))

        if instr.dst is not None and (pred_true or not pred_concrete):
            srcs = [operand(s) for s in instr.srcs]
            value = None
            fold = _FOLD.get(instr.op)
            ints = [_concrete(s) for s in srcs]
            if fold is not None and all(v is not None for v in ints):
                value = Affine(float(_wrap(fold(ints))))
            elif instr.op is Op.SETP and None not in ints[:2]:
                value = Affine(
                    float(_CMP[instr.cmp](ints[0], ints[1])),
                    pred=PredInfo(instr.cmp, srcs[0], srcs[1]))
            if value is None:
                value = analysis._evaluate(instr, srcs)
            if not pred_concrete:
                # Divergent write: lanes mix old and new values.
                old = env.get(instr.dst.idx)
                if not (old == value and not value.fuzzy):
                    from repro.isa.analysis.affine import TOP
                    value = TOP
            regs[instr.dst.idx] = value
        pc += 1
    return trace


def discharge_shared_races(kernel, pairs, budget: int = UNROLL_BUDGET):
    """Subset of ``pairs`` (``(pc_a, pc_b)``) proven race-free by the
    unrolled trace: every same-epoch occurrence pair is disjoint."""
    from repro.isa.analysis.shared import may_overlap

    trace = unrolled_trace(kernel, budget)
    if trace is None:
        return set()
    by_pc: dict[int, list[Occurrence]] = {}
    for occ in trace:
        if kernel.instrs[occ.pc].is_shared_mem:
            by_pc.setdefault(occ.pc, []).append(occ)
    discharged = set()
    for pc_a, pc_b in pairs:
        safe = True
        for a in by_pc.get(pc_a, ()):
            for b in by_pc.get(pc_b, ()):
                if a.epoch != b.epoch:
                    continue
                if a.predicated or b.predicated:
                    safe = False
                    break
                if is_top(a.address) or is_top(b.address):
                    safe = False
                    break
                if may_overlap(a.address, b.address,
                               kernel.cta_dim) is not False:
                    safe = False
                    break
            if not safe:
                break
        if safe:
            discharged.add((pc_a, pc_b))
    return discharged
