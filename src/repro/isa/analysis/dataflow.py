"""Generic forward/backward dataflow framework over ``isa/cfg.py`` blocks.

Every static pass in this package (liveness, uninitialized-register
reachability, affine address analysis) is an instance of the classic
iterative dataflow scheme: a lattice of facts, a meet operator joining
facts at control-flow merges, and a per-instruction transfer function.
:func:`solve` runs the worklist algorithm over the basic blocks produced
by :func:`repro.isa.cfg.build_cfg` until a fixpoint, then
:meth:`Solution.at` replays block transfers to expose the fact holding at
every individual PC.

The framework is deliberately small: passes subclass
:class:`DataflowProblem`, provide ``boundary`` / ``init`` / ``meet`` /
``transfer``, and get per-PC results.  Facts must be immutable (or
treated as such) — transfer functions return new facts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.cfg import BasicBlock, build_cfg
from repro.isa.opcodes import Op

FORWARD = "forward"
BACKWARD = "backward"


class CFGView:
    """Basic blocks of one instruction sequence plus derived edge maps.

    Wraps :func:`build_cfg` with the predecessor map, entry-reachability,
    and an instruction-level successor relation — everything the analyses
    and lint rules need, computed once and shared.
    """

    def __init__(self, instrs):
        self.instrs = list(instrs)
        self.blocks: list[BasicBlock] = build_cfg(self.instrs)
        self.preds: list[list[int]] = [[] for _ in self.blocks]
        for block in self.blocks:
            for succ in block.successors:
                self.preds[succ].append(block.index)
        self.block_of_pc: list[int] = [0] * len(self.instrs)
        for block in self.blocks:
            for pc in range(block.start, block.end):
                self.block_of_pc[pc] = block.index
        self.reachable: set[int] = self._reachable_blocks()

    def _reachable_blocks(self) -> set[int]:
        seen = {0}
        work = [0]
        while work:
            for succ in self.blocks[work.pop()].successors:
                if succ not in seen:
                    seen.add(succ)
                    work.append(succ)
        return seen

    def pc_reachable(self, pc: int) -> bool:
        return self.block_of_pc[pc] in self.reachable

    def instr_successors(self, pc: int) -> list[int]:
        """Successor PCs of one instruction (empty for EXIT / fall-off)."""
        instr = self.instrs[pc]
        n = len(self.instrs)
        if instr.op is Op.EXIT:
            return []
        if instr.op is Op.BRA:
            succs = [instr.target]
            if instr.pred is not None and pc + 1 < n:
                succs.append(pc + 1)
            return succs
        return [pc + 1] if pc + 1 < n else []


class DataflowProblem:
    """One dataflow analysis: lattice + transfer, direction-agnostic."""

    direction = FORWARD

    def boundary(self):
        """Fact at the entry (forward) or exit (backward) of the CFG."""
        raise NotImplementedError

    def init(self):
        """Initial optimistic fact for every other block boundary."""
        raise NotImplementedError

    def meet(self, a, b):
        """Combine facts arriving over multiple CFG edges."""
        raise NotImplementedError

    def transfer(self, pc: int, instr, fact):
        """Fact after executing ``instr`` at ``pc`` given ``fact`` before it
        (in analysis direction: "before" means above for forward passes,
        below for backward passes)."""
        raise NotImplementedError


@dataclass
class Solution:
    """Fixpoint facts at block boundaries, with per-PC replay."""

    problem: DataflowProblem
    cfg: CFGView
    block_in: list  # fact at block entry (forward) / block bottom (backward)
    block_out: list

    def at(self, pc: int):
        """The fact holding immediately *before* ``pc`` executes (forward
        passes) or the fact *live into* ``pc`` (backward passes)."""
        problem, cfg = self.problem, self.cfg
        block = cfg.blocks[cfg.block_of_pc[pc]]
        fact = self.block_in[block.index]
        if problem.direction == FORWARD:
            for p in range(block.start, pc):
                fact = problem.transfer(p, cfg.instrs[p], fact)
        else:
            for p in range(block.end - 1, pc - 1, -1):
                fact = problem.transfer(p, cfg.instrs[p], fact)
        return fact

    def per_pc(self) -> list:
        """The :meth:`at` fact for every PC, computed in one sweep."""
        problem, cfg = self.problem, self.cfg
        facts = [None] * len(cfg.instrs)
        for block in cfg.blocks:
            fact = self.block_in[block.index]
            if problem.direction == FORWARD:
                for pc in range(block.start, block.end):
                    facts[pc] = fact  # fact *before* pc executes
                    fact = problem.transfer(pc, cfg.instrs[pc], fact)
            else:
                for pc in range(block.end - 1, block.start - 1, -1):
                    fact = problem.transfer(pc, cfg.instrs[pc], fact)
                    facts[pc] = fact  # fact *live into* pc
        return facts


def solve(problem: DataflowProblem, cfg: CFGView) -> Solution:
    """Run the worklist algorithm to a fixpoint.

    For forward passes ``block_in`` is the fact at the top of each block
    and ``block_out`` at the bottom; for backward passes the roles swap
    (``block_in`` is the fact at the bottom, i.e. where the pass starts
    transferring from).
    """
    forward = problem.direction == FORWARD
    nblocks = len(cfg.blocks)
    block_in = [problem.init() for _ in range(nblocks)]
    block_out = [problem.init() for _ in range(nblocks)]

    if forward:
        edges_in = cfg.preds
        edges_out = [b.successors for b in cfg.blocks]
        boundary_blocks = [0]
    else:
        edges_in = [b.successors for b in cfg.blocks]
        edges_out = cfg.preds
        # Backward boundary: every block with no successors (EXIT blocks,
        # fall-off-the-end) plus blocks that never reach an exit (infinite
        # loops) still converge from ``init``.
        boundary_blocks = [b.index for b in cfg.blocks if not b.successors]

    for index in boundary_blocks:
        block_in[index] = problem.boundary()

    def apply_block(index: int):
        block = cfg.blocks[index]
        fact = block_in[index]
        pcs = range(block.start, block.end)
        if not forward:
            pcs = reversed(pcs)
        for pc in pcs:
            fact = problem.transfer(pc, cfg.instrs[pc], fact)
        return fact

    work = list(range(nblocks))
    iterations = 0
    limit = max(64, 4 * nblocks * nblocks + 16 * len(cfg.instrs))
    while work:
        iterations += 1
        if iterations > limit * 8:  # pragma: no cover - widening safety net
            raise RuntimeError("dataflow solve did not converge")
        index = work.pop(0)
        if edges_in[index] or index in boundary_blocks:
            merged = None
            for other in edges_in[index]:
                merged = block_out[other] if merged is None else problem.meet(merged, block_out[other])
            if index in boundary_blocks:
                merged = problem.boundary() if merged is None else problem.meet(merged, problem.boundary())
            if merged is not None:
                block_in[index] = merged
        new_out = apply_block(index)
        if new_out != block_out[index]:
            block_out[index] = new_out
            for succ in edges_out[index]:
                if succ not in work:
                    work.append(succ)
    return Solution(problem=problem, cfg=cfg, block_in=block_in, block_out=block_out)
