"""Static co-residency composer: kernel-pair admission verdicts.

ROADMAP item 1 (concurrent-kernel co-residency with preemptive CTA
scheduling, after arXiv:1406.6037) needs an admission-control front end:
given two kernels and an architecture, may the CTA manager co-schedule
them on one chip, and what does that cost?  This module answers the
question *statically*, composing per-kernel resource footprints — derived
from the same machinery as the cycle bounds (:mod:`.bounds`) and the
occupancy calculator (:mod:`repro.core.occupancy`) — against the per-arch
:class:`~repro.sim.config.GPUConfig` capacities.

Verdict semantics:

* **deny** — one CTA of each kernel cannot be simultaneously resident on
  a single SM: some hard per-SM capacity (CTA slots, warp slots, thread
  slots, register file, shared memory) is exceeded even at minimum
  residency.  Co-scheduling would serialize at kernel granularity, which
  is what the manager does *without* co-residency; there is nothing to
  admit.
* **degrade** — both kernels fit, but a contention signal predicts
  measurable mutual slowdown: both are DRAM-bandwidth-class, their
  combined worst-case MSHR demand oversubscribes the L1 MSHR file, or
  fair sharing halves (or worse) a kernel's solo residency.  Admission is
  still sound — the slowdown bounds quantify the risk.
* **admit** — both fit and no contention signal fires.

The **slowdown bounds** lean on the cycle bounds' soundness: a
co-schedule can always be degraded to full serialization, whose makespan
is at most ``hi_a + hi_b``, so kernel *a*'s completion is at most
``(hi_a + hi_b) / lo_a`` times its solo lower bound; and an admission
controller never finishes a kernel *earlier* than unobstructed solo
execution, so the slowdown floor is 1.  The verdict and both bounds are
pure functions of (kernel pair, config, mode) — byte-deterministic, as
the `repro bound --pairs` gate requires.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.occupancy import occupancy
from repro.isa.analysis.bounds import KernelBound, bench_bounds
from repro.isa.analysis.dataflow import CFGView
from repro.isa.opcodes import OpClass
from repro.sim.config import GPUConfig

#: Memory-server share of the upper-bound budget above which a kernel is
#: classed as DRAM-bandwidth-bound (two such kernels contend for the same
#: work-conserving servers, so their co-residency is flagged "degrade").
_DRAM_HEAVY_FRACTION = 0.40
_MIXED_FRACTION = 0.15


@dataclass(frozen=True)
class KernelFootprint:
    """Per-SM resource demand and bandwidth class of one kernel."""

    kernel: str
    arch: str
    mode: str
    regs_per_cta: int
    smem_per_cta: int
    warps_per_cta: int
    threads_per_cta: int
    solo_ctas_per_sm: int  # baseline occupancy (all limits enforced)
    mshr_per_cta: int  # worst-case concurrently outstanding misses
    mem_fraction: float  # memory-server share of the hi-bound budget
    bandwidth_class: str  # "dram" | "mixed" | "compute"
    bound: KernelBound

    def to_dict(self) -> dict:
        return {
            "kernel": self.kernel,
            "arch": self.arch,
            "mode": self.mode,
            "regs_per_cta": self.regs_per_cta,
            "smem_per_cta": self.smem_per_cta,
            "warps_per_cta": self.warps_per_cta,
            "threads_per_cta": self.threads_per_cta,
            "solo_ctas_per_sm": self.solo_ctas_per_sm,
            "mshr_per_cta": self.mshr_per_cta,
            "mem_fraction": round(self.mem_fraction, 3),
            "bandwidth_class": self.bandwidth_class,
            "bound": {"lo": self.bound.lo, "hi": self.bound.hi},
        }


def _mshr_demand_per_warp(kernel) -> int:
    """Peak misses one warp keeps outstanding at once: the densest basic
    block's global-load/atomic site count.  An in-order warp blocks at the
    first cross-block use of a loaded value, so loads from different
    blocks rarely overlap, while back-to-back loads inside one block all
    take an MSHR before the first fill returns."""
    view = CFGView(kernel.instrs)
    peak = 0
    for block in view.blocks:
        if not view.pc_reachable(block.start):
            continue
        loads = 0
        for pc in range(block.start, block.end):
            info = kernel.instrs[pc].info
            if info.op_class is OpClass.MEM_GLOBAL and (
                    not info.is_store or info.is_atomic):
                loads += 1
        peak = max(peak, loads)
    return peak


def kernel_footprint(bench, cfg: GPUConfig, *, mode: str = "baseline",
                     scale: float = 1.0, arch: str = "") -> KernelFootprint:
    """Static per-SM footprint + bandwidth class for one benchmark."""
    kernel = bench.kernel
    occ = occupancy(kernel, cfg)
    bound = bench_bounds(bench, cfg, mode=mode, scale=scale, arch=arch)
    total = sum(bound.buckets.values()) or 1.0
    mem_fraction = (bound.buckets.get("memory-server", 0)
                    + bound.buckets.get("ldst-port", 0)) / total
    if mem_fraction >= _DRAM_HEAVY_FRACTION:
        bclass = "dram"
    elif mem_fraction >= _MIXED_FRACTION:
        bclass = "mixed"
    else:
        bclass = "compute"
    warps = kernel.warps_per_cta(cfg.warp_size)
    return KernelFootprint(
        kernel=bench.name,
        arch=arch,
        mode=mode,
        regs_per_cta=kernel.regs_per_thread * kernel.threads_per_cta,
        smem_per_cta=kernel.smem_bytes,
        warps_per_cta=warps,
        threads_per_cta=kernel.threads_per_cta,
        solo_ctas_per_sm=occ.baseline_ctas,
        mshr_per_cta=warps * _mshr_demand_per_warp(kernel),
        mem_fraction=mem_fraction,
        bandwidth_class=bclass,
        bound=bound,
    )


@dataclass(frozen=True)
class PairVerdict:
    """Admission verdict for co-scheduling two kernels on one arch."""

    a: str
    b: str
    arch: str
    mode: str
    verdict: str  # "admit" | "degrade" | "deny"
    ctas_a: int  # co-resident CTAs/SM under fair alternating fill
    ctas_b: int
    slowdown_a: tuple  # (lo, hi) predicted slowdown of a vs solo
    slowdown_b: tuple
    reasons: tuple  # deterministic, sorted contention/denial signals

    def to_dict(self) -> dict:
        return {
            "a": self.a,
            "b": self.b,
            "arch": self.arch,
            "mode": self.mode,
            "verdict": self.verdict,
            "ctas_a": self.ctas_a,
            "ctas_b": self.ctas_b,
            "slowdown_a": [round(s, 2) for s in self.slowdown_a],
            "slowdown_b": [round(s, 2) for s in self.slowdown_b],
            "reasons": list(self.reasons),
        }


def _fits(cfg: GPUConfig, fa: KernelFootprint, na: int,
          fb: KernelFootprint, nb: int) -> bool:
    """Do ``na`` CTAs of *a* plus ``nb`` of *b* fit on one SM?"""
    return (na + nb <= cfg.max_ctas_per_sm
            and na * fa.warps_per_cta + nb * fb.warps_per_cta
            <= cfg.max_warps_per_sm
            and na * fa.threads_per_cta + nb * fb.threads_per_cta
            <= cfg.max_threads_per_sm
            and na * fa.regs_per_cta + nb * fb.regs_per_cta
            <= cfg.registers_per_sm
            and na * fa.smem_per_cta + nb * fb.smem_per_cta
            <= cfg.smem_per_sm)


def _fair_fill(cfg: GPUConfig, fa: KernelFootprint,
               fb: KernelFootprint) -> tuple[int, int]:
    """Alternating greedy fill from (1, 1); deterministic in (a, b)."""
    na = nb = 1
    grew = True
    while grew:
        grew = False
        if _fits(cfg, fa, na + 1, fb, nb):
            na += 1
            grew = True
        if _fits(cfg, fa, na, fb, nb + 1):
            nb += 1
            grew = True
    return na, nb


def pair_verdict(fa: KernelFootprint, fb: KernelFootprint,
                 cfg: GPUConfig) -> PairVerdict:
    """Compose two footprints into an admission verdict."""
    base = dict(a=fa.kernel, b=fb.kernel, arch=fa.arch, mode=fa.mode)
    if not _fits(cfg, fa, 1, fb, 1):
        reasons = []
        if 2 > cfg.max_ctas_per_sm:
            reasons.append("cta-slots")
        if fa.warps_per_cta + fb.warps_per_cta > cfg.max_warps_per_sm:
            reasons.append("warp-slots")
        if fa.threads_per_cta + fb.threads_per_cta > cfg.max_threads_per_sm:
            reasons.append("thread-slots")
        if fa.regs_per_cta + fb.regs_per_cta > cfg.registers_per_sm:
            reasons.append("registers")
        if fa.smem_per_cta + fb.smem_per_cta > cfg.smem_per_sm:
            reasons.append("shared-mem")
        return PairVerdict(**base, verdict="deny", ctas_a=0, ctas_b=0,
                           slowdown_a=(1.0, float("inf")),
                           slowdown_b=(1.0, float("inf")),
                           reasons=tuple(sorted(reasons)))

    na, nb = _fair_fill(cfg, fa, fb)
    reasons = []
    if fa.bandwidth_class == "dram" and fb.bandwidth_class == "dram":
        reasons.append("dram-bandwidth")
    if na * fa.mshr_per_cta + nb * fb.mshr_per_cta > cfg.l1_mshrs:
        reasons.append("mshr-oversubscription")
    if na * 2 < fa.solo_ctas_per_sm or nb * 2 < fb.solo_ctas_per_sm:
        reasons.append("residency-halved")
    verdict = "degrade" if reasons else "admit"
    # Full serialization is the worst co-schedule: makespan <= hi_a + hi_b.
    hi_sum = fa.bound.hi + fb.bound.hi
    return PairVerdict(
        **base, verdict=verdict, ctas_a=na, ctas_b=nb,
        slowdown_a=(1.0, hi_sum / max(1, fa.bound.lo)),
        slowdown_b=(1.0, hi_sum / max(1, fb.bound.lo)),
        reasons=tuple(sorted(reasons)))


def pair_matrix(benches, cfg: GPUConfig, *, mode: str = "baseline",
                scale: float = 1.0, arch: str = "") -> list[PairVerdict]:
    """Verdicts for every unordered benchmark pair (self-pairs included).

    Iteration is over name-sorted benchmarks, so the output order — and,
    since every verdict is a pure function of its inputs, the content —
    is byte-deterministic across runs.
    """
    ordered = sorted(benches, key=lambda b: b.name)
    feet = [kernel_footprint(b, cfg, mode=mode, scale=scale, arch=arch)
            for b in ordered]
    out = []
    for i, fa in enumerate(feet):
        for fb in feet[i:]:
            out.append(pair_verdict(fa, fb, cfg))
    return out
