"""Static shared-memory checks: out-of-bounds and cross-thread races.

Both checks build on the affine address pass:

* **Bounds** — an access whose byte address is affine in thread ids (and
  constants) has exact min/max over the CTA box; predicated accesses are
  narrowed through recognizable ``tid <cmp> const`` guards.  Any word
  falling outside the declared ``smem_bytes`` is an error: at runtime it
  would corrupt a neighbouring CTA's scratchpad on real hardware (the
  simulator's :class:`~repro.sim.memory.SharedMemory` raises instead).
* **Races** — two accesses to the same shared word from different
  threads, at least one a (non-atomic) write, with a ``BAR``-free path
  between them.  Paths are computed on the instruction-level CFG,
  stopping at barriers; address overlap is decided on the affine forms —
  identical launch-constant terms cancel, so ``base + 4·tid`` vs
  ``base + 4·tid + 4`` is caught even with an unknown ``base``.  Accesses
  the analysis cannot bound (data-dependent or loop-carried addresses)
  and predicated accesses (the registry's guarded idiom, e.g. the
  ``tid < s`` tree-reduction step) are reported at *info* severity
  instead: possible, not proven.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.analysis.affine import Affine, AffineAnalysis, is_top, refine_bounds
from repro.isa.analysis.dataflow import CFGView
from repro.isa.cfg import EXIT_PC  # noqa: F401  (re-exported for callers)
from repro.isa.opcodes import Op

WORD = 4  # every shared access moves one 4-byte word


@dataclass(frozen=True)
class SharedAccess:
    """One static shared-memory access site."""

    pc: int
    kind: str  # "load" | "store" | "atomic"
    address: Affine | None  # None when the enclosing block is unreachable
    bounds: tuple[float, float] | None  # byte bounds over the CTA box
    predicated: bool


@dataclass(frozen=True)
class SharedOOB:
    pc: int
    lo: float
    hi: float
    smem_bytes: int


@dataclass(frozen=True)
class SharedRace:
    pc_a: int
    pc_b: int
    proven: bool  # True: affine overlap shown; False: could not rule out


def shared_accesses(kernel, cfg: CFGView, affine: AffineAnalysis,
                    envs: list) -> list[SharedAccess]:
    accesses = []
    for pc, instr in enumerate(kernel.instrs):
        if not instr.is_shared_mem or not cfg.pc_reachable(pc):
            continue
        env = envs[pc]
        if env is None:
            accesses.append(SharedAccess(pc, _kind(instr), None, None,
                                         instr.pred is not None))
            continue
        address = affine.address(pc, env)
        pred_value = env.get(instr.pred.idx) if instr.pred is not None else None
        bounds = refine_bounds(address, pred_value, instr.pred_neg, kernel.cta_dim)
        accesses.append(SharedAccess(pc, _kind(instr), address, bounds,
                                     instr.pred is not None))
    return accesses


def _kind(instr) -> str:
    if instr.info.is_atomic:
        return "atomic"
    return "store" if instr.is_store else "load"


def out_of_bounds(kernel, accesses: list[SharedAccess]) -> list[SharedOOB]:
    """Accesses whose statically-bounded footprint escapes ``smem_bytes``."""
    findings = []
    for access in accesses:
        if access.bounds is None:
            if kernel.smem_bytes == 0 and access.address is not None:
                # Unanalyzable address into zero declared bytes: every
                # possible word is out of bounds.
                findings.append(SharedOOB(access.pc, 0, 0, 0))
            continue
        lo, hi = access.bounds
        if lo < 0 or hi + WORD > kernel.smem_bytes:
            findings.append(SharedOOB(access.pc, lo, hi, kernel.smem_bytes))
    return findings


# ---------------------------------------------------------------------------
# race detection
# ---------------------------------------------------------------------------

_CONFLICTS = {
    ("store", "store"), ("store", "load"), ("load", "store"),
    ("store", "atomic"), ("atomic", "store"),
    ("atomic", "load"), ("load", "atomic"),
}


def _barrier_free_reach(cfg: CFGView, start_pc: int) -> set[int]:
    """PCs reachable from just after ``start_pc`` without crossing a BAR
    (the barrier instruction itself is not expanded: it ends the phase)."""
    reach: set[int] = set()
    work = list(cfg.instr_successors(start_pc))
    while work:
        pc = work.pop()
        if pc in reach:
            continue
        reach.add(pc)
        if cfg.instrs[pc].op is Op.BAR:
            continue
        work.extend(s for s in cfg.instr_successors(pc) if s not in reach)
    return reach


def _word_injective(tid_coefs: dict, cta_dim) -> bool:
    """True when distinct threads provably touch distinct 4-byte words."""
    extents = dict(zip(("tid_x", "tid_y", "tid_z"), cta_dim))
    dims = []
    for sym, extent in extents.items():
        if extent <= 1:
            continue
        coef = tid_coefs.get(sym, 0)
        if coef == 0:
            return False  # two threads differing only in this dim collide
        dims.append((abs(coef), extent))
    if not dims:
        return True  # single-thread CTA: no distinct threads at all
    dims.sort()
    if dims[0][0] < WORD:
        return False
    for (coef, extent), (next_coef, _next_extent) in zip(dims, dims[1:]):
        if next_coef < coef * extent:
            return False
    return True


def _span(tid: tuple, cta_dim) -> float:
    extents = dict(zip(("tid_x", "tid_y", "tid_z"), cta_dim))
    return sum(abs(coef) * (extents.get(sym, 1) - 1) for sym, coef in tid)


def may_overlap(a: Affine, b: Affine, cta_dim) -> bool | None:
    """Can two *different* threads hit the same word via ``a`` and ``b``?

    Returns ``True`` (proven possible), ``False`` (proven disjoint), or
    ``None`` (addresses not analyzable — unknown).
    """
    if is_top(a) or is_top(b) or a.fuzzy or b.fuzzy:
        return None
    if a.uni != b.uni:
        return None  # uniform offsets differ by an unknown amount
    delta = a.const - b.const
    if a.tid == b.tid:
        if delta == 0:
            return not _word_injective(a.tid_coefs(), cta_dim)
        span = _span(a.tid, cta_dim)  # same coefs: Δ(t1-t2) spans ±span
        return abs(delta) <= span + (WORD - 1)
    # Different coefs: full independent-box range of a(t1) - b(t2).
    lo = delta + _box_min(a.tid, cta_dim) - _box_max(b.tid, cta_dim)
    hi = delta + _box_max(a.tid, cta_dim) - _box_min(b.tid, cta_dim)
    return lo <= (WORD - 1) and hi >= -(WORD - 1)


def _box_min(tid: tuple, cta_dim) -> float:
    extents = dict(zip(("tid_x", "tid_y", "tid_z"), cta_dim))
    return sum(min(0.0, coef * (extents.get(sym, 1) - 1)) for sym, coef in tid)


def _box_max(tid: tuple, cta_dim) -> float:
    extents = dict(zip(("tid_x", "tid_y", "tid_z"), cta_dim))
    return sum(max(0.0, coef * (extents.get(sym, 1) - 1)) for sym, coef in tid)


def races(kernel, cfg: CFGView, accesses: list[SharedAccess],
          *, unroll_budget: int | None = None) -> list[SharedRace]:
    """Conflicting shared access pairs with a barrier-free path between.

    Unproven (``maybe``) pairs get a second chance through the bounded
    uniform unroller (:mod:`repro.isa.analysis.unroll`): when the whole
    kernel executes as one concrete uniform trace, loop-carried ping-pong
    or tile offsets the fixpoint widens away become exact per-iteration
    addresses, and a pair whose same-barrier-epoch occurrences are all
    provably disjoint is dropped.  An exhausted unroll budget (or any
    other failure to unroll) keeps the finding at ``maybe`` — never a
    silent ``safe``.
    """
    if len(accesses) == 0:
        return []
    by_pc = {access.pc: access for access in accesses}
    reach = {access.pc: _barrier_free_reach(cfg, access.pc) for access in accesses}
    reported: set[tuple[int, int]] = set()
    findings: list[SharedRace] = []
    for a in accesses:
        for pc_b in sorted(reach[a.pc]):
            b = by_pc.get(pc_b)
            if b is None or (a.kind, b.kind) not in _CONFLICTS:
                continue
            key = (min(a.pc, b.pc), max(a.pc, b.pc))
            if key in reported:
                continue
            if a.predicated or b.predicated:
                continue  # guarded idiom: assume the predicate partitions
            if a.address is None or b.address is None:
                continue
            overlap = may_overlap(a.address, b.address, kernel.cta_dim)
            if overlap is False:
                continue
            reported.add(key)
            findings.append(SharedRace(pc_a=key[0], pc_b=key[1],
                                       proven=overlap is True))
    maybes = [(f.pc_a, f.pc_b) for f in findings if not f.proven]
    if maybes:
        from repro.isa.analysis.unroll import UNROLL_BUDGET, discharge_shared_races

        budget = UNROLL_BUDGET if unroll_budget is None else unroll_budget
        cleared = discharge_shared_races(kernel, maybes, budget)
        findings = [f for f in findings
                    if f.proven or (f.pc_a, f.pc_b) not in cleared]
    return findings
