"""Kernel lint driver: run every static pass and report findings.

Each finding carries a stable rule id (catalogued in :data:`RULES` with a
severity and one-line description — ``docs/LINT.md`` documents each rule
with an offending example and a fix).  Severities:

* ``error`` — the kernel is wrong: it deadlocks, corrupts memory, or
  computes with garbage.  Always fails the lint.
* ``warning`` — very likely wrong, but depends on schedule or data the
  static analysis cannot see.  Fails only under ``--strict``.
* ``perf`` — the kernel is *correct* but provably leaves performance on
  the table (uncoalesced accesses, bank conflicts, unhidden latency).
  Advisory: never fails the lint, even under ``--strict``.
* ``info`` — possible issue the analysis cannot decide, or a benign
  modelling choice (deliberate register over-declaration).  Never fails.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.analysis.affine import affine_solution
from repro.isa.analysis.barrier import barrier_divergence
from repro.isa.analysis.dataflow import CFGView
from repro.isa.analysis.liveness import LivenessInfo, liveness
from repro.isa.analysis.reaching import uninitialized_reads
from repro.isa.analysis.shared import out_of_bounds, races, shared_accesses
from repro.isa.cfg import EXIT_PC, annotate_reconvergence
from repro.isa.opcodes import Op

ERROR = "error"
WARNING = "warning"
PERF = "perf"
INFO = "info"

_SEVERITY_RANK = {ERROR: 0, WARNING: 1, PERF: 2, INFO: 3}

#: A full-mask global access provably needing at least this many
#: transactions (a perfectly coalesced 4-byte access needs 1 line) is
#: flagged uncoalesced.
UNCOALESCED_TX = 8
#: A full-mask shared access provably serializing into at least this
#: many bank passes is flagged conflicted.
CONFLICT_PASSES = 2
#: `low-ilp-low-occupancy`: flag when the single-warp critical path is
#: this many times the issue time while residency fills under half the
#: SM's warp slots — the classic unhidden-latency shape.
LOW_ILP_CHAIN = 2.0
LOW_OCC_FRACTION = 0.5

#: rule id -> (default severity, one-line description)
RULES = {
    "uninit-read": (ERROR, "read of a register no definition reaches"),
    "barrier-divergence": (ERROR, "BAR inside a potentially divergent region"),
    "shared-oob": (ERROR, "shared access outside declared smem_bytes"),
    "fall-off-end": (ERROR, "control flow can run past the last instruction"),
    "reg-oob": (ERROR, "register operand outside regs_per_thread"),
    "shared-race": (WARNING, "conflicting shared accesses with no BAR between"),
    "unreachable-code": (WARNING, "basic block has no path from kernel entry"),
    "uncoalesced-global": (PERF, "global access needs many transactions per warp"),
    "shared-bank-conflict": (PERF, "shared access serializes on bank conflicts"),
    "low-ilp-low-occupancy": (PERF, "dependence chains too long for the resident warps to hide"),
    "shared-race-maybe": (INFO, "possible shared race on unanalyzable addresses"),
    "over-declared-regs": (INFO, "regs_per_thread exceeds any register used"),
}


@dataclass(frozen=True)
class Finding:
    """One lint diagnostic for one kernel."""

    kernel: str
    rule: str
    severity: str
    pc: int | None
    message: str

    def __str__(self) -> str:
        where = f"pc {self.pc}" if self.pc is not None else "kernel"
        return f"[{self.severity}] {self.kernel} {where}: {self.rule}: {self.message}"

    def to_dict(self) -> dict:
        return {"kernel": self.kernel, "rule": self.rule,
                "severity": self.severity, "pc": self.pc,
                "message": self.message}


@dataclass(frozen=True)
class LintReport:
    """All findings for one kernel plus the liveness summary."""

    kernel: str
    findings: tuple
    liveness: LivenessInfo

    @property
    def errors(self) -> list:
        return [f for f in self.findings if f.severity == ERROR]

    @property
    def warnings(self) -> list:
        return [f for f in self.findings if f.severity == WARNING]

    @property
    def perf(self) -> list:
        return [f for f in self.findings if f.severity == PERF]

    def ok(self, strict: bool = False) -> bool:
        """PERF findings are advisory and never fail the lint."""
        if self.errors:
            return False
        return not (strict and self.warnings)

    def to_dict(self, strict: bool = False) -> dict:
        return {"kernel": self.kernel, "ok": self.ok(strict=strict),
                "findings": [f.to_dict() for f in self.findings]}


def _sorted(findings: list[Finding]) -> tuple:
    return tuple(sorted(
        findings,
        key=lambda f: (_SEVERITY_RANK[f.severity], f.pc if f.pc is not None else -1,
                       f.rule)))


def lint_kernel(kernel) -> LintReport:
    """Run every static check over one kernel."""
    cfg = CFGView(kernel.instrs)
    annotate_reconvergence(kernel)
    findings: list[Finding] = []

    def add(rule: str, pc: int | None, message: str, severity: str | None = None):
        findings.append(Finding(kernel=kernel.name, rule=rule,
                                severity=severity or RULES[rule][0],
                                pc=pc, message=message))

    # -- structural --------------------------------------------------------
    for block in cfg.blocks:
        if block.index not in cfg.reachable and block.start < block.end:
            add("unreachable-code", block.start,
                f"block pcs {block.start}..{block.end - 1} are unreachable")
    n = len(kernel.instrs)
    for pc, instr in enumerate(kernel.instrs):
        if not cfg.pc_reachable(pc):
            continue
        if instr.max_reg() >= kernel.regs_per_thread:
            add("reg-oob", pc,
                f"r{instr.max_reg()} used but regs_per_thread={kernel.regs_per_thread}")
        if pc + 1 >= n and instr.op is not Op.EXIT and not (
                instr.op is Op.BRA and instr.pred is None):
            add("fall-off-end", pc,
                f"last instruction is {instr.op.value}, not EXIT "
                "(or an unconditional branch)")

    # -- uninitialized reads ----------------------------------------------
    for pc, reg in uninitialized_reads(kernel, cfg):
        add("uninit-read", pc,
            f"r{reg} may be read before any write (registers are only "
            "zero-filled by the simulator, not by the ISA)")

    # -- affine-based checks ----------------------------------------------
    affine, envs = affine_solution(kernel, cfg)
    for bd in barrier_divergence(kernel, cfg, affine, envs):
        reconv = "kernel exit" if bd.reconv_pc == EXIT_PC else f"pc {bd.reconv_pc}"
        add("barrier-divergence", bd.bar_pc,
            f"BAR reachable under the divergent branch at pc {bd.branch_pc} "
            f"(reconverges at {reconv}); threads skipping it deadlock the CTA")
    accesses = shared_accesses(kernel, cfg, affine, envs)
    for oob in out_of_bounds(kernel, accesses):
        add("shared-oob", oob.pc,
            f"shared access spans bytes [{oob.lo:g}, {oob.hi + 4:g}) but "
            f"smem_bytes={oob.smem_bytes}")
    for race in races(kernel, cfg, accesses):
        if race.proven:
            add("shared-race", race.pc_b,
                f"conflicts with pc {race.pc_a} on an overlapping shared word "
                "with no intervening BAR")
        else:
            add("shared-race-maybe", race.pc_b,
                f"may conflict with pc {race.pc_a}; addresses not statically "
                "analyzable, no intervening BAR")

    # -- performance advisories (never fail the lint) ----------------------
    from repro.isa.analysis.memaccess import access_costs
    from repro.isa.analysis.perf import warp_profile
    from repro.core.occupancy import occupancy
    from repro.sim.config import GPUConfig

    gpu = GPUConfig()
    for cost in access_costs(kernel, cfg, affine, envs,
                             line_bytes=gpu.line_bytes,
                             num_banks=gpu.shared_mem_banks):
        if not cost.analyzable:
            continue  # bounds-only sites are the predictor's job, not lint's
        if cost.space == "global" and cost.full_lo >= UNCOALESCED_TX:
            add("uncoalesced-global", cost.pc,
                f"{cost.kind} needs {cost.full_lo}-{cost.full_hi} transactions "
                f"per full warp access (coalesced would need "
                f"{-(-4 * min(32, kernel.threads_per_cta) // gpu.line_bytes)})")
        elif cost.space == "shared" and cost.full_lo >= CONFLICT_PASSES:
            add("shared-bank-conflict", cost.pc,
                f"{cost.kind} serializes into {cost.full_lo} bank passes "
                f"per full warp access over {gpu.shared_mem_banks} banks")
    occ = occupancy(kernel, gpu)
    profile = warp_profile(kernel, gpu)
    chain_ratio = profile.chain_cycles / max(1, profile.instructions)
    occ_fraction = occ.occupancy_fraction(gpu)
    if chain_ratio >= LOW_ILP_CHAIN and occ_fraction < LOW_OCC_FRACTION:
        add("low-ilp-low-occupancy", None,
            f"single-warp critical path is {chain_ratio:.1f}x its issue time "
            f"but residency fills only {occ_fraction:.0%} of warp slots "
            f"({occ.baseline_ctas} CTAs/SM, {occ.limiter.value}-limited): "
            "latency cannot be hidden")

    # -- liveness ----------------------------------------------------------
    live = liveness(kernel, cfg)
    max_used = max(
        (instr.max_reg() for pc, instr in enumerate(kernel.instrs)
         if cfg.pc_reachable(pc)), default=-1)
    if kernel.regs_per_thread > max_used + 1:
        add("over-declared-regs", None,
            f"regs_per_thread={kernel.regs_per_thread} but max register used "
            f"is r{max_used} (max live pressure {live.max_pressure}); extra "
            "registers still count against occupancy")

    return LintReport(kernel=kernel.name, findings=_sorted(findings),
                      liveness=live)


def lint_kernels(kernels) -> list[LintReport]:
    return [lint_kernel(k) for k in kernels]


def check_strict(kernel) -> None:
    """Raise :class:`~repro.isa.kernel.KernelValidationError` when the lint
    finds errors or warnings; the hook behind the assembler's and
    :class:`~repro.isa.kernel.KernelBuilder`'s ``strict`` modes."""
    from repro.isa.kernel import KernelValidationError

    report = lint_kernel(kernel)
    bad = report.errors + report.warnings
    if bad:
        details = "\n".join(f"  {finding}" for finding in bad)
        raise KernelValidationError(
            f"kernel {kernel.name!r} fails strict lint "
            f"({len(bad)} finding(s)):\n{details}")
