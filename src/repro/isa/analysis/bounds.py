"""Sound static [lo, hi] total-cycle bounds per kernel x config x mode.

The performance oracle (:mod:`repro.isa.analysis.perf`) predicts
*qualitative* classes — limiter, idle kind, VT tier.  This module derives
a *quantitative* counterpart: a closed interval that the simulator's
total cycle count provably falls into, for every kernel, GPU config, and
scheduling mode (baseline / Virtual Thread).  The co-residency composer
(:mod:`repro.isa.analysis.compose`) consumes the same machinery to turn
per-kernel footprints into admission verdicts, and the `repro bound
--check` CI gate validates every interval against the simulator.

Construction, in three layers:

**Trip bounds.**  Every backward branch gets a ``[lo, hi]`` iteration
interval from one of four resolvers: the *additive* counted-loop idiom
(counter += step vs. an immediate/parameter/interval bound, evaluated
over the interval-affine domain of :mod:`.interval`, so divergent bounds
like ``trips + (tid & 3)`` resolve to an interval); the *geometric*
idiom (counter <<= k / >>= k, iterated concretely); the *bracket
halving* idiom (binary search: ``while hi - lo > 0`` with
``mid = (lo + hi) >> 1``, ``lo = mid + 1`` / ``hi = mid``, whose width
recurrence ``w -> [ceil(w/2) - 1, floor(w/2)]`` is iterated exactly);
and declared *workload caps* for loops whose bound is loaded from memory
but is bounded by the workload generator's construction (bfs row degrees
``<= 2 * avg_degree``, spmv row population ``in [1, 2 * avg_nnz]`` — see
``repro.workloads.graphs`` / ``matrices``).

**Path bounds.**  A forward-only DAG over the kernel (back edges cut)
gives, by big-integer path counting, the *unavoidable* instructions (on
every entry-to-exit path) and the *reachable* ones.  Minimum dynamic
counts multiply unavoidable instructions by the product of enclosing
loops' ``trips.lo``; maximum counts multiply every reachable instruction
by ``trips.hi`` — an over-approximation that also covers divergence,
since a warp serializing an if/else pays for both sides.  Per-access
transaction/bank-pass costs come from :mod:`.memaccess` (interval-
tightened), predicated accesses contribute zero to minimum counts (a
fully predicated-off memory op occupies only its issue slot).

**Cycle bounds.**  The lower bound is the max of throughput floors that
mirror ``sim/smcore.py``'s structural ports — issue (one instruction per
scheduler per cycle), LD/ST (one transaction per SM per cycle), shared
memory (one bank pass per SM per cycle), SFU (one op per
``sfu_issue_interval``) — and a per-warp dependence-chain floor: CTA
launch latency plus, for each unavoidable basic block, its earliest
in-order issue schedule under best-case latencies (L1 hit for global
loads, ``lat_smem`` for shared, per-class ALU latencies), which no
in-order warp can beat.  The upper bound is a bucket sum: every cycle of
the makespan either issues an instruction somewhere (at most the total
maximum issue slots), or every resident warp is blocked on something
whose total supply is itself bounded — an outstanding latency window, a
busy LD/ST / shared / SFU port, a busy memory server (work-conserving:
links, L2 port, DRAM), a VT swap in flight, a barrier release, or CTA
dispatch.  Summing those supplies is loose (reported as the per-cell
``tightness`` ratio ``hi / lo``) but *sound*; the CI gate checks
``lo <= simulated cycles <= hi`` over the whole registry x config x mode
matrix and the fuzz corpus.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.isa.analysis.affine import affine_solution
from repro.isa.analysis.dataflow import CFGView
from repro.isa.analysis.interval import _ZERO_IVAL, IVal, interval_solution
from repro.isa.analysis.memaccess import access_costs
from repro.isa.instruction import Imm, MemRef, Reg
from repro.isa.opcodes import Op, OpClass
from repro.sim.config import GPUConfig

WARP = 32

#: Iteration cap for the concrete geometric / bracket-halving recurrences.
_RECURRENCE_CAP = 200

#: Expansion cap for the per-block chain floor (block executions).
_CHAIN_CAP = 1 << 20


class UnboundedLoop(ValueError):
    """A backward branch no resolver could bound (hi would be unsound)."""


class IrregularControlFlow(ValueError):
    """Loop regions are not properly nested single-back-edge intervals."""


# -- workload-construction trip caps ----------------------------------------

#: Kernel-name -> (lo, hi, why) applied to backward branches whose bound
#: is loaded from memory.  Sound because the workload *generators*
#: construct the loaded values inside these ranges; the caps live next to
#: the trip resolvers so the justification is auditable in one place.
DATA_TRIP_CAPS: dict[str, tuple[int, int, str]] = {
    # graphs.random_csr_graph: degree ~ integers(0, 2*avg_degree+1),
    # avg_degree=6 -> row degree <= 12; the loop is guarded by
    # row_start < row_end, so when entered it runs [1, 12] times.
    "bfs": (1, 12, "csr degree <= 2*avg_degree = 12 by construction"),
    # matrices.random_csr_matrix: nnz/row ~ integers(1, 2*avg+1), avg=8.
    "spmv": (1, 16, "csr row population in [1, 2*avg_nnz] = [1, 16]"),
}


@dataclass(frozen=True)
class TripBound:
    """Iteration bounds for one backward branch."""

    pc: int
    lo: int
    hi: int
    exact: bool
    source: str  # "additive" | "geometric" | "bracket" | "workload-cap"

    def to_dict(self) -> dict:
        return {"pc": self.pc, "lo": self.lo, "hi": self.hi,
                "exact": self.exact, "source": self.source}


def _value_interval(ival: IVal, kernel, param_values):
    return ival.interval(kernel.cta_dim, param_values)


def _entry_value(kernel, analysis, ienvs, reg: int, before_pc: int):
    """Interval value of ``reg`` as the loop at ``before_pc`` is entered.

    ``ienvs[target]`` merges the back edge, so instead evaluate the last
    unpredicated definition before the loop; no definition means the
    register still holds its implicit zero.
    """
    last = None
    for pc in range(before_pc):
        instr = kernel.instrs[pc]
        if instr.dst is not None and instr.dst.idx == reg:
            last = pc
    if last is None:
        return _ZERO_IVAL  # registers start zeroed
    instr = kernel.instrs[last]
    if instr.pred is not None or ienvs[last] is None:
        return None
    env = analysis.transfer(last, instr, ienvs[last])
    return env.get(reg)


def _cmp_for_branch(setp, branch) -> str:
    cmp = setp.cmp.value if setp.cmp is not None else ""
    if branch.pred_neg:  # @!p BRA: loops while the comparison is false
        cmp = {"lt": "ge", "le": "gt", "gt": "le", "ge": "lt",
               "eq": "ne", "ne": "eq"}.get(cmp, "")
    return cmp


def _find_setp(kernel, bpc):
    branch = kernel.instrs[bpc]
    if branch.pred is None:
        return None
    for pc in range(bpc, branch.target - 1, -1):
        instr = kernel.instrs[pc]
        if (instr.op is Op.SETP and instr.dst is not None
                and instr.dst.idx == branch.pred.idx):
            return pc
    return None


def _additive_trips(kernel, analysis, ienvs, param_values, bpc, setp_pc):
    """Counted loop: counter += const step, compared against a bound."""
    instrs = kernel.instrs
    setp = instrs[setp_pc]
    if len(setp.srcs) != 2 or not isinstance(setp.srcs[0], Reg):
        return None
    counter = setp.srcs[0].idx
    target = instrs[bpc].target
    step = 0
    for pc in range(target, bpc + 1):
        instr = instrs[pc]
        if instr.dst is None or instr.dst.idx != counter:
            continue
        if (instr.op is Op.IADD and instr.pred is None
                and isinstance(instr.srcs[0], Reg)
                and instr.srcs[0].idx == counter
                and isinstance(instr.srcs[1], Imm)):
            step += int(instr.srcs[1].value)
        else:
            return None  # some other def: not a clean counted loop
    if step == 0:
        return None
    rhs = setp.srcs[1]
    if isinstance(rhs, Imm):
        bound_lo = bound_hi = float(rhs.value)
    elif isinstance(rhs, Reg) and ienvs[setp_pc] is not None:
        span = _value_interval(ienvs[setp_pc].get(rhs.idx), kernel, param_values)
        if span is None:
            return None
        bound_lo, bound_hi = span
    else:
        return None
    init = _entry_value(kernel, analysis, ienvs, counter, target)
    if init is None:
        return None
    init_span = _value_interval(init, kernel, param_values)
    if init_span is None:
        return None
    init_lo, init_hi = init_span
    cmp = _cmp_for_branch(setp, instrs[bpc])
    # Normalize to "loop while counter < bound" with a positive step.
    if cmp == "le":
        cmp, bound_lo, bound_hi = "lt", bound_lo + 1, bound_hi + 1
    elif cmp == "ge":
        cmp, bound_lo, bound_hi = "gt", bound_lo - 1, bound_hi - 1
    if cmp == "gt":
        cmp = "lt"
        step = -step
        init_lo, init_hi = -init_hi, -init_lo
        bound_lo, bound_hi = -bound_hi, -bound_lo
    if cmp != "lt" or step <= 0:
        return None
    hi_span = bound_hi - init_lo
    lo_span = bound_lo - init_hi
    trips_hi = max(1, math.ceil(hi_span / step))
    trips_lo = max(1, math.ceil(lo_span / step))
    lo, hi = min(trips_lo, trips_hi), max(trips_lo, trips_hi)
    return TripBound(bpc, lo, hi, lo == hi, "additive")


def _geometric_trips(kernel, analysis, ienvs, param_values, bpc, setp_pc):
    """Geometric loop: counter <<= k or >>= k against a known bound."""
    instrs = kernel.instrs
    setp = instrs[setp_pc]
    if len(setp.srcs) != 2 or not isinstance(setp.srcs[0], Reg):
        return None
    counter = setp.srcs[0].idx
    target = instrs[bpc].target
    update = None
    for pc in range(target, bpc + 1):
        instr = instrs[pc]
        if instr.dst is None or instr.dst.idx != counter:
            continue
        if (instr.op in (Op.SHL, Op.SHR) and instr.pred is None
                and update is None
                and isinstance(instr.srcs[0], Reg)
                and instr.srcs[0].idx == counter
                and isinstance(instr.srcs[1], Imm)
                and int(instr.srcs[1].value) > 0):
            update = (instr.op, int(instr.srcs[1].value))
        else:
            return None
    if update is None:
        return None
    rhs = setp.srcs[1]
    if isinstance(rhs, Imm):
        bound_lo = bound_hi = float(rhs.value)
    elif isinstance(rhs, Reg) and ienvs[setp_pc] is not None:
        span = _value_interval(ienvs[setp_pc].get(rhs.idx), kernel, param_values)
        if span is None:
            return None
        bound_lo, bound_hi = span
    else:
        return None
    init = _entry_value(kernel, analysis, ienvs, counter, target)
    if init is None:
        return None
    init_span = _value_interval(init, kernel, param_values)
    if init_span is None:
        return None
    cmp = _cmp_for_branch(setp, instrs[bpc])
    if cmp not in ("lt", "le", "gt", "ge"):
        return None
    op, k = update

    def simulate(start: float, bound: float) -> int | None:
        w = int(start)
        trips = 0
        while trips <= _RECURRENCE_CAP:
            trips += 1
            w = (w << k) if op is Op.SHL else (w >> k)
            keep = {"lt": w < bound, "le": w <= bound,
                    "gt": w > bound, "ge": w >= bound}[cmp]
            if not keep:
                return trips
        return None  # no concrete progress within the cap

    # Trip count is monotone in (init, bound); evaluate all four corners.
    corners = []
    for start in (init_span[0], init_span[1]):
        for bound in (bound_lo, bound_hi):
            t = simulate(start, bound)
            if t is None:
                return None
            corners.append(t)
    lo, hi = min(corners), max(corners)
    return TripBound(bpc, lo, hi, lo == hi, "geometric")


def _bracket_trips(kernel, analysis, ienvs, param_values, bpc, setp_pc):
    """Binary-search bracket: ``while hi - lo > 0`` with halving updates.

    Requires every in-body update of the bracket to shrink it: the lower
    end only moves to ``mid + 1`` and the upper end only to ``mid``, with
    ``mid = (lo + hi) >> 1``.  The width then follows
    ``w -> [ceil(w/2) - 1, floor(w/2)]``, iterated concretely.
    """
    instrs = kernel.instrs
    setp = instrs[setp_pc]
    cmp = _cmp_for_branch(setp, instrs[bpc])
    if len(setp.srcs) != 2 or not isinstance(setp.srcs[0], Reg):
        return None
    if not (cmp == "gt" and isinstance(setp.srcs[1], Imm)
            and int(setp.srcs[1].value) == 0):
        return None
    width = setp.srcs[0].idx
    target = instrs[bpc].target
    body = range(target, bpc + 1)
    sub = next((instrs[pc] for pc in body
                if instrs[pc].op is Op.ISUB and instrs[pc].dst is not None
                and instrs[pc].dst.idx == width and instrs[pc].pred is None
                and all(isinstance(s, Reg) for s in instrs[pc].srcs)), None)
    if sub is None:
        return None
    r_hi, r_lo = sub.srcs[0].idx, sub.srcs[1].idx
    # mid = (lo + hi) >> 1, recomputed inside the body.
    mid = None
    for pc in body:
        instr = instrs[pc]
        if (instr.op is Op.SHR and instr.dst is not None and instr.pred is None
                and isinstance(instr.srcs[0], Reg)
                and isinstance(instr.srcs[1], Imm)
                and int(instr.srcs[1].value) == 1):
            src = instr.srcs[0].idx
            for qc in body:
                q = instrs[qc]
                if (q.op is Op.IADD and q.dst is not None
                        and q.dst.idx == src and q.pred is None
                        and all(isinstance(s, Reg) for s in q.srcs)
                        and {q.srcs[0].idx, q.srcs[1].idx} == {r_lo, r_hi}):
                    mid = instr.dst.idx
    if mid is None:
        return None
    for pc in body:
        instr = instrs[pc]
        if instr.dst is None or instr.dst.idx not in (r_lo, r_hi):
            continue
        if instr.dst.idx == r_lo:
            ok = (instr.op is Op.IADD and isinstance(instr.srcs[0], Reg)
                  and instr.srcs[0].idx == mid
                  and isinstance(instr.srcs[1], Imm)
                  and int(instr.srcs[1].value) == 1)
        else:
            ok = (instr.op is Op.MOV and isinstance(instr.srcs[0], Reg)
                  and instr.srcs[0].idx == mid)
        if not ok:
            return None
    lo_val = _entry_value(kernel, analysis, ienvs, r_lo, target)
    hi_val = _entry_value(kernel, analysis, ienvs, r_hi, target)
    if lo_val is None or hi_val is None:
        return None
    lo_span = _value_interval(lo_val, kernel, param_values)
    hi_span = _value_interval(hi_val, kernel, param_values)
    if lo_span is None or hi_span is None:
        return None
    w_lo = int(hi_span[0] - lo_span[1])
    w_hi = int(hi_span[1] - lo_span[0])

    def iters(w: int, shrink) -> int | None:
        trips = 0
        while w > 0 and trips <= _RECURRENCE_CAP:
            trips += 1
            w = shrink(w)
        return max(1, trips) if trips <= _RECURRENCE_CAP else None

    t_hi = iters(w_hi, lambda w: w // 2)  # slowest shrink
    t_lo = iters(w_lo, lambda w: -(-w // 2) - 1)  # fastest shrink
    if t_hi is None or t_lo is None:
        return None
    return TripBound(bpc, min(t_lo, t_hi), max(t_lo, t_hi),
                     t_lo == t_hi, "bracket")


def trip_bounds(kernel, analysis, ienvs, param_values=None,
                *, kernel_name: str | None = None) -> dict[int, TripBound]:
    """``branch pc -> TripBound`` for every backward branch.

    Raises :class:`UnboundedLoop` when no resolver (nor a declared
    workload cap) bounds a loop — an unsound upper bound is never
    silently produced.
    """
    param_values = param_values or {}
    name = kernel_name or kernel.name
    trips: dict[int, TripBound] = {}
    for bpc, instr in enumerate(kernel.instrs):
        if not (instr.is_branch and instr.target is not None
                and instr.target <= bpc):
            continue
        setp_pc = _find_setp(kernel, bpc)
        bound = None
        if setp_pc is not None:
            for resolver in (_additive_trips, _geometric_trips,
                             _bracket_trips):
                bound = resolver(kernel, analysis, ienvs, param_values,
                                 bpc, setp_pc)
                if bound is not None:
                    break
        if bound is None and name in DATA_TRIP_CAPS:
            lo, hi, _why = DATA_TRIP_CAPS[name]
            bound = TripBound(bpc, lo, hi, lo == hi, "workload-cap")
        if bound is None:
            raise UnboundedLoop(
                f"{name}: backward branch at pc {bpc} has no resolvable "
                f"trip bound (and no workload cap is declared)")
        trips[bpc] = bound
    return trips


# -- control-flow structure --------------------------------------------------


def _loops(kernel) -> list[tuple[int, int]]:
    """All ``(target, branch_pc)`` loop regions, properly nested."""
    loops = [(i.target, pc) for pc, i in enumerate(kernel.instrs)
             if i.is_branch and i.target is not None and i.target <= pc]
    for a_t, a_b in loops:
        for b_t, b_b in loops:
            if (a_t, a_b) == (b_t, b_b):
                continue
            disjoint = a_b < b_t or b_b < a_t
            nested = (b_t <= a_t and a_b <= b_b) or (a_t <= b_t and b_b <= a_b)
            if not (disjoint or nested):
                raise IrregularControlFlow(
                    f"{kernel.name}: loops [{a_t},{a_b}] and [{b_t},{b_b}] "
                    f"overlap without nesting")
    # Forward branches must not jump into the middle of a loop body.
    for pc, i in enumerate(kernel.instrs):
        if i.is_branch and i.target is not None and i.target > pc:
            for t, b in loops:
                if t < i.target <= b and not (t <= pc <= b):
                    raise IrregularControlFlow(
                        f"{kernel.name}: branch at pc {pc} jumps into loop "
                        f"[{t},{b}]")
    return loops


def _successors(kernel, pc: int, n: int) -> list[int]:
    """Forward-DAG successors (back edges cut; ``n`` is the exit sink)."""
    instr = kernel.instrs[pc]
    if instr.is_exit:
        return [n]
    if instr.is_branch and instr.target is not None:
        if instr.target <= pc:  # back edge: only the loop-exit side
            return [pc + 1] if pc + 1 < n else [n]
        if instr.pred is None:
            return [instr.target]
        return [pc + 1, instr.target] if pc + 1 < n else [instr.target]
    return [pc + 1] if pc + 1 < n else [n]


def _path_sets(kernel) -> tuple[set[int], set[int]]:
    """``(reachable, unavoidable)`` PCs on the forward-only DAG."""
    n = len(kernel.instrs)
    succs = {pc: _successors(kernel, pc, n) for pc in range(n)}
    paths_to = [0] * (n + 1)
    paths_to[0] = 1
    for pc in range(n):
        if paths_to[pc]:
            for s in succs[pc]:
                paths_to[s] += paths_to[pc]
    paths_from = [0] * (n + 1)
    paths_from[n] = 1
    for pc in range(n - 1, -1, -1):
        paths_from[pc] = sum(paths_from[s] for s in succs[pc])
    total = paths_to[n]
    reachable = {pc for pc in range(n) if paths_to[pc] and paths_from[pc]}
    unavoidable = {pc for pc in reachable
                   if paths_to[pc] * paths_from[pc] == total}
    return reachable, unavoidable


def _multiplicity(pc: int, loops, trips: dict[int, TripBound],
                  which: str) -> int:
    mult = 1
    for target, bpc in loops:
        if target <= pc <= bpc:
            t = trips[bpc]
            mult *= t.lo if which == "lo" else t.hi
    return mult


# -- dynamic counts ----------------------------------------------------------


@dataclass
class PathCounts:
    """Per-warp dynamic totals along the min or max path."""

    issue: int = 0  # issue slots
    tx: float = 0.0  # global-memory transactions (lines)
    loads: int = 0  # dynamic global loads + atomics (latency windows)
    atomics: int = 0
    smem_passes: float = 0.0
    smem_loads: int = 0
    sfu: int = 0
    barriers: int = 0
    windows: float = 0.0  # sum of worst-case latency windows (hi only)


def _load_window(cfg: GPUConfig, tx_hi: float) -> float:
    """Worst-case outstanding-latency window of one global load."""
    return (cfg.l1_hit_latency + 2 * cfg.icnt_latency + cfg.l2_hit_latency
            + cfg.l2_service_cycles + cfg.dram_latency
            + cfg.dram_service_cycles + tx_hi + 4)


def path_counts(kernel, cfg: GPUConfig, costs, trips, loops,
                reachable, unavoidable, which: str) -> PathCounts:
    out = PathCounts()
    pcs = reachable if which == "hi" else unavoidable
    for pc in sorted(pcs):
        instr = kernel.instrs[pc]
        mult = _multiplicity(pc, loops, trips, which)
        if mult == 0:
            continue
        out.issue += mult
        info = instr.info
        predicated = instr.pred is not None
        cost = costs.get(pc)
        if info.op_class is OpClass.MEM_GLOBAL:
            if which == "hi":
                tx = cost.hi if cost is not None else WARP
                out.tx += mult * tx
                if not info.is_store or info.is_atomic:
                    out.loads += mult
                    out.windows += mult * _load_window(cfg, tx)
                if info.is_atomic:
                    out.atomics += mult
            elif not predicated:
                out.tx += mult * (cost.full_lo if cost is not None else 1)
        elif info.op_class is OpClass.MEM_SHARED:
            if which == "hi":
                passes = cost.hi if cost is not None else WARP
                out.smem_passes += mult * passes
                if not info.is_store or info.is_atomic:
                    out.smem_loads += mult
                    out.windows += mult * (
                        cfg.lat_smem
                        + (passes - 1) * cfg.smem_bank_conflict_penalty)
            elif not predicated:
                out.smem_passes += mult * (
                    cost.full_lo if cost is not None else 1)
        elif info.op_class is OpClass.SFU:
            if which == "hi":
                out.sfu += mult
                out.windows += mult * cfg.lat_sfu
            elif not predicated:
                out.sfu += mult
        elif instr.op is Op.BAR:
            out.barriers += mult
        elif info.op_class is not OpClass.CTRL and instr.dst is not None:
            if which == "hi":
                out.windows += mult * cfg.latency_for(info.op_class)
    return out


# -- dependence-chain floor --------------------------------------------------


def _operand_regs(instr) -> list[int]:
    regs = []
    for s in instr.srcs:
        if isinstance(s, Reg):
            regs.append(s.idx)
        elif isinstance(s, MemRef):
            regs.append(s.base.idx)
    if instr.pred is not None:
        regs.append(instr.pred.idx)
    return regs


def _best_case_latency(cfg: GPUConfig, instr) -> int:
    info = instr.info
    if info.op_class is OpClass.MEM_GLOBAL:
        return cfg.l1_hit_latency
    if info.op_class is OpClass.MEM_SHARED:
        return cfg.lat_smem
    if info.op_class is OpClass.SFU:
        return cfg.lat_sfu
    if info.op_class is OpClass.CTRL:
        return 0
    return cfg.latency_for(info.op_class)


def _block_span(kernel, cfg: GPUConfig, costs, start: int, end: int) -> int:
    """Earliest in-order issue schedule of one straight-line block.

    Returns the span (cycles from the first to the last issue, inclusive)
    under best-case latencies and the per-SM structural ports; no
    in-order warp can execute the block faster.  Predicated instructions
    contribute an issue slot but no dependence constraints (a false
    predicate skips both read and write).
    """
    finish: dict[int, int] = {}
    prev = 0
    ldst_free = 0
    smem_free = 0
    sfu_free = 0
    for pc in range(start, end):
        instr = kernel.instrs[pc]
        info = instr.info
        t = prev + 1
        if instr.pred is None:
            for reg in _operand_regs(instr):
                t = max(t, finish.get(reg, 0))
        cost = costs.get(pc)
        if info.op_class is OpClass.MEM_GLOBAL:
            t = max(t, ldst_free)
            busy = 1 if instr.pred is not None else max(
                1, int(cost.full_lo) if cost is not None else 1)
            ldst_free = t + busy
        elif info.op_class is OpClass.MEM_SHARED:
            t = max(t, smem_free)
            busy = 1 if instr.pred is not None else max(
                1, int(cost.full_lo) if cost is not None else 1)
            smem_free = t + busy
        elif info.op_class is OpClass.SFU:
            t = max(t, sfu_free)
            sfu_free = t + cfg.sfu_issue_interval
        if instr.dst is not None:
            if instr.pred is None:
                finish[instr.dst.idx] = t + _best_case_latency(cfg, instr)
            else:
                finish.pop(instr.dst.idx, None)  # may or may not write
        prev = t
    return prev


def chain_floor(kernel, cfg: GPUConfig, cfg_view: CFGView, costs, trips,
                loops, unavoidable) -> int:
    """Launch latency plus every unavoidable block's minimum schedule."""
    total = cfg.cta_launch_latency
    expanded = 0
    for block in cfg_view.blocks:
        if block.start not in unavoidable:
            continue
        mult = _multiplicity(block.start, loops, trips, "lo")
        if mult == 0:
            continue
        expanded += mult
        if expanded > _CHAIN_CAP:
            break  # keep the floor cheap; what's summed so far is sound
        span = _block_span(kernel, cfg, costs, block.start, block.end)
        total += mult * span
        for pc in range(block.start, block.end):
            if kernel.instrs[pc].op is Op.BAR:
                total += mult * cfg.barrier_release_latency
    return total


# -- assembled bounds --------------------------------------------------------


@dataclass(frozen=True)
class KernelBound:
    """Sound total-cycle interval for one kernel x config x mode cell."""

    kernel: str
    arch: str  # config label, e.g. "fermi-sm2"
    mode: str  # "baseline" | "vt"
    lo: int
    hi: int
    ctas: int
    warps: int
    floors: dict = field(default_factory=dict)  # lower-bound candidates
    buckets: dict = field(default_factory=dict)  # upper-bound terms
    trips: tuple = ()  # TripBound per backward branch

    @property
    def tightness(self) -> float:
        return self.hi / max(1, self.lo)

    def contains(self, cycles: int) -> bool:
        return self.lo <= cycles <= self.hi

    def to_dict(self) -> dict:
        return {
            "kernel": self.kernel,
            "arch": self.arch,
            "mode": self.mode,
            "lo": self.lo,
            "hi": self.hi,
            "tightness": round(self.tightness, 2),
            "ctas": self.ctas,
            "warps": self.warps,
            "floors": {k: int(v) for k, v in sorted(self.floors.items())},
            "buckets": {k: int(v) for k, v in sorted(self.buckets.items())},
            "trips": [t.to_dict() for t in self.trips],
        }


def kernel_bounds(kernel, cfg: GPUConfig, *, mode: str, ctas: int,
                  param_values: dict | None = None,
                  arch: str = "") -> KernelBound:
    """Derive the sound [lo, hi] cycle interval for one cell.

    ``ctas`` is the launched grid size (product of the grid dims);
    ``param_values`` maps integer parameter indices to launch values so
    parameter-valued loop bounds resolve.
    """
    if mode not in ("baseline", "vt"):
        raise ValueError(f"unknown mode {mode!r}")
    cfg_view = CFGView(kernel.instrs)
    affine, envs = affine_solution(kernel, cfg_view)
    ianalysis, ienvs = interval_solution(kernel, cfg_view)
    costs = {c.pc: c for c in access_costs(
        kernel, cfg_view, affine, envs, line_bytes=cfg.line_bytes,
        num_banks=cfg.shared_mem_banks, intervals=(ianalysis, ienvs),
        param_values=param_values)}
    trips = trip_bounds(kernel, ianalysis, ienvs, param_values)
    loops = _loops(kernel)
    reachable, unavoidable = _path_sets(kernel)

    lo_counts = path_counts(kernel, cfg, costs, trips, loops,
                            reachable, unavoidable, "lo")
    hi_counts = path_counts(kernel, cfg, costs, trips, loops,
                            reachable, unavoidable, "hi")

    warps_per_cta = -(-kernel.threads_per_cta // WARP)
    warps = ctas * warps_per_cta

    # -- lower bound: structural throughput floors + dependence chain.
    sms = max(1, min(cfg.num_sms, ctas))
    issue_lanes = max(1, min(cfg.num_sms * cfg.num_warp_schedulers, warps))
    floors = {
        "issue": -(-lo_counts.issue * warps // issue_lanes),
        "ldst-port": -(-int(lo_counts.tx * warps) // sms),
        "smem-port": -(-int(lo_counts.smem_passes * warps) // sms),
        "chain": chain_floor(kernel, cfg, cfg_view, costs, trips, loops,
                             unavoidable),
    }
    if lo_counts.sfu:
        per_sm = -(-lo_counts.sfu * warps // sms)
        floors["sfu-port"] = (per_sm - 1) * cfg.sfu_issue_interval + 1
    lo = max(1, *floors.values())

    # -- upper bound: bucket sum (see the module docstring).
    save, restore = cfg.vt_swap_cycles_for(warps_per_cta)
    buckets = {
        "issue": hi_counts.issue * warps,
        "latency-windows": hi_counts.windows * warps,
        "memory-server": (hi_counts.tx + hi_counts.atomics) * warps
        * (2 + cfg.l2_service_cycles + cfg.dram_service_cycles),
        "ldst-port": hi_counts.tx * warps,
        "smem-port": hi_counts.smem_passes * warps,
        "sfu-port": hi_counts.sfu * warps * cfg.sfu_issue_interval,
        "launch": ctas * (cfg.cta_launch_latency + 1),
        # One release per CTA per dynamic barrier on the (per-warp) path.
        "barrier": hi_counts.barriers * ctas
        * (cfg.barrier_release_latency + 2),
    }
    if mode == "vt":
        events = hi_counts.loads * warps + ctas
        buckets["vt-swap"] = events * (save + restore)
    hi = int(math.ceil(sum(buckets.values())))
    hi = max(hi, lo)

    return KernelBound(
        kernel=kernel.name, arch=arch, mode=mode, lo=int(lo), hi=hi,
        ctas=ctas, warps=warps, floors=floors, buckets=buckets,
        trips=tuple(sorted(trips.values(), key=lambda t: t.pc)),
    )


def bench_bounds(bench, cfg: GPUConfig, *, mode: str, scale: float = 1.0,
                 arch: str = "") -> KernelBound:
    """Bounds for a registry benchmark at ``scale`` (resolves its layout)."""
    from repro.isa.analysis.perf import layout_for

    layout = layout_for(bench, scale)
    ctas = max(1, layout.total_threads // max(1, bench.kernel.threads_per_cta))
    return kernel_bounds(bench.kernel, cfg, mode=mode, ctas=ctas,
                         param_values=layout.param_values, arch=arch)


#: The three gate configurations ("arches") the CI soundness gate runs.
def gate_configs(num_sms: int | None = None):
    """Label -> GPUConfig for the bound gate's three architectures."""
    from repro.sim.config import scaled_fermi, scaled_kepler

    if num_sms is not None:
        return {f"fermi-sm{num_sms}": scaled_fermi(num_sms=num_sms)}
    return {
        "fermi-sm2": scaled_fermi(num_sms=2),
        "kepler-sm2": scaled_kepler(num_sms=2),
        "fermi-sm1": scaled_fermi(num_sms=1),
    }
