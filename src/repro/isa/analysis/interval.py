"""Interval-affine residual analysis: value-set bounds beyond affine forms.

The affine pass (:mod:`repro.isa.analysis.affine`) is exact for values
built from adds, shifts, and constant multiplies, but drops straight to
TOP (or an unknown uniform) on masking idioms — ``AND rD, rT, #mask``,
``IREM``, ``IMIN``/``IMAX`` against a constant — that the registry and
the fuzzer's gather/scatter segments use to fold a thread id into a
small table.  Those values are not affine, but they *are* bounded, and
a sound width is all the transaction/bank-pass model and the cycle-bound
analysis (:mod:`repro.isa.analysis.bounds`) need.

This pass tracks every register as

    value  =  base  +  residual,      residual in [rlo, rhi]

where ``base`` is an :class:`~repro.isa.analysis.affine.Affine` form and
the residual interval absorbs the non-affine part.  Pure affine values
carry a ``[0, 0]`` residual; ``AND rD, x, #m`` (``m >= 0``) becomes
``0 + [0, m]``; loads stay TOP.  Linear operators (add, sub, constant
multiply/shift, select) compose both components; everything else falls
back to the affine evaluation when the residuals are exact, and to TOP
when they are not.

Joins hull the residuals and round the hull outward to a fixed menu of
``2**k - 1`` magnitudes, so loop-carried residuals widen in a bounded
number of steps and the fixpoint terminates.  Mask constants are almost
always ``2**k - 1`` themselves, so the common values survive the
rounding exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.isa.analysis.affine import (
    TOP,
    Affine,
    AffineAnalysis,
    is_top,
    join as affine_join,
)
from repro.isa.analysis.dataflow import CFGView, solve
from repro.isa.opcodes import Op

INF = math.inf

#: Residual magnitudes a join may round to (0, 1, 3, 7, ... 2**26-1, inf).
_WIDEN_MENU = tuple(2 ** k - 1 for k in range(27)) + (INF,)

_ZERO = Affine(0.0)


@dataclass(frozen=True)
class IVal:
    """One register's abstraction: affine ``base`` plus residual interval."""

    base: Affine
    rlo: float = 0.0
    rhi: float = 0.0

    @property
    def exact(self) -> bool:
        """No residual slack: the affine base is the whole story."""
        return self.rlo == 0 and self.rhi == 0

    @property
    def width(self) -> float:
        return self.rhi - self.rlo

    @property
    def bounded(self) -> bool:
        return not is_top(self.base) and self.rlo > -INF and self.rhi < INF

    def shift(self, delta: float) -> "IVal":
        return IVal(self.base.add(Affine(delta)), self.rlo, self.rhi)

    def interval(self, cta_dim, param_values=None) -> tuple[float, float] | None:
        """Concrete ``[lo, hi]`` of the value over the CTA box, or None.

        Uniform ``paramN`` terms resolve through ``param_values`` when the
        launch values are known; any other uniform term leaves the value
        unbounded.
        """
        if not self.bounded:
            return None
        base = self.base
        const = base.const
        for sym, coef in base.uni:
            if base.fuzzy:
                return None
            if not sym.startswith("param") or param_values is None:
                return None
            v = param_values.get(int(sym[len("param"):]))
            if v is None:
                return None
            const += coef * v
        if base.fuzzy:
            return None
        resolved = Affine(const, base.tid, (), False)
        span = resolved.bounds(cta_dim)
        if span is None:
            return None
        return (span[0] + self.rlo, span[1] + self.rhi)


TOP_IVAL = IVal(TOP, -INF, INF)
_ZERO_IVAL = IVal(_ZERO)


def _widen_up(x: float) -> float:
    if x <= 0:
        return 0.0 if x == 0 else -_widen_down_mag(-x)
    for m in _WIDEN_MENU:
        if x <= m:
            return float(m)
    return INF


def _widen_down_mag(x: float) -> float:
    """Largest menu value <= x (for rounding a negative lo outward)."""
    for m in _WIDEN_MENU:
        if x <= m:
            return float(m)
    return INF


def _widen_lo(x: float) -> float:
    if x >= 0:
        # Positive lower bounds round down to 0: the menu only needs to
        # bound growth, and a sound lo of 0 keeps the lattice small.
        return 0.0
    return -_widen_up(-x)


def ival_join(a: IVal, b: IVal) -> IVal:
    if a == b:
        return a
    if a.base == b.base:
        return IVal(a.base, _widen_lo(min(a.rlo, b.rlo)),
                    _widen_up(max(a.rhi, b.rhi)))
    if (a.base.is_const and b.base.is_const
            and a.rlo > -INF and b.rlo > -INF
            and a.rhi < INF and b.rhi < INF):
        lo = min(a.base.const + a.rlo, b.base.const + b.rlo)
        hi = max(a.base.const + a.rhi, b.base.const + b.rhi)
        return IVal(_ZERO, _widen_lo(lo), _widen_up(hi))
    joined = affine_join(a.base, b.base)
    if is_top(joined):
        return TOP_IVAL
    # The joined form's unknown uniform absorbs the differing parts; the
    # residual hull stays a sound over-approximation of the slack.
    return IVal(joined, _widen_lo(min(a.rlo, b.rlo)),
                _widen_up(max(a.rhi, b.rhi)))


class _IEnv:
    """Immutable register -> :class:`IVal` map (mirrors ``AffineEnv``)."""

    __slots__ = ("regs",)

    def __init__(self, regs: dict):
        self.regs = regs

    def get(self, idx: int) -> IVal:
        # Registers start zeroed in the simulator (mirrors AffineEnv).
        return self.regs.get(idx, _ZERO_IVAL)

    def set(self, idx: int, value: IVal) -> "_IEnv":
        regs = dict(self.regs)
        regs[idx] = value
        return _IEnv(regs)

    def __eq__(self, other):
        return isinstance(other, _IEnv) and self.regs == other.regs


class IntervalAnalysis(AffineAnalysis):
    """Forward dataflow over :class:`IVal` environments.

    Subclasses the affine pass only to reuse its operand evaluation for
    the base component; the lattice and transfer are interval-aware.
    """

    def boundary(self):
        return _IEnv({})

    def init(self):
        return None

    def meet(self, a, b):
        if a is None:
            return b
        if b is None:
            return a
        regs = {}
        for idx in set(a.regs) | set(b.regs):
            regs[idx] = ival_join(a.get(idx), b.get(idx))
        return _IEnv(regs)

    # -- operands ----------------------------------------------------------

    def _ival_operand(self, operand, env: _IEnv) -> IVal:
        from repro.isa.instruction import Reg

        if isinstance(operand, Reg):
            return env.get(operand.idx)
        base = AffineAnalysis._operand(self, operand, _EMPTY_AFFINE_ENV)
        if is_top(base):
            return TOP_IVAL
        return IVal(base)

    def address(self, pc: int, env: _IEnv) -> IVal:  # type: ignore[override]
        from repro.isa.instruction import MemRef

        instr = self.kernel.instrs[pc]
        for operand in instr.srcs:
            if isinstance(operand, MemRef):
                return env.get(operand.base.idx).shift(float(operand.offset))
        return TOP_IVAL

    # -- transfer ----------------------------------------------------------

    def transfer(self, pc: int, instr, env):
        if env is None:
            return None
        if instr.dst is None:
            return env
        srcs = [self._ival_operand(s, env) for s in instr.srcs]
        value = self._ival_evaluate(instr, srcs)
        if instr.pred is not None:
            old = env.get(instr.dst.idx)
            pred = env.get(instr.pred.idx)
            if pred.exact and pred.base.is_uniform and not is_top(pred.base):
                value = ival_join(old, value)
            elif old == value and value.exact and not value.base.fuzzy:
                pass  # both sides agree exactly; divergence is harmless
            elif (old.bounded and value.bounded and old.base.is_const
                  and value.base.is_const):
                # A divergent write mixes old and new per lane; with both
                # sides concretely bounded the mixture stays in the hull.
                value = ival_join(old, value)
            else:
                value = TOP_IVAL
        return env.set(instr.dst.idx, value)

    def _ival_evaluate(self, instr, srcs: list[IVal]) -> IVal:
        op = instr.op
        if op in (Op.MOV, Op.S2R, Op.I2F, Op.F2I):
            return srcs[0]
        if op in (Op.IADD, Op.FADD):
            return IVal(srcs[0].base.add(srcs[1].base),
                        srcs[0].rlo + srcs[1].rlo, srcs[0].rhi + srcs[1].rhi)
        if op in (Op.ISUB, Op.FSUB):
            return IVal(srcs[0].base.sub(srcs[1].base),
                        srcs[0].rlo - srcs[1].rhi, srcs[0].rhi - srcs[1].rlo)
        if op in (Op.IMUL, Op.FMUL, Op.SHL):
            a, b = srcs
            if op is Op.SHL:
                if not (b.exact and b.base.is_const):
                    return TOP_IVAL
                b = IVal(Affine(float(2 ** int(b.base.const))))
            for x, c in ((a, b), (b, a)):
                if c.exact and c.base.is_const:
                    k = c.base.const
                    lo, hi = k * x.rlo, k * x.rhi
                    return IVal(x.base.scale(k), min(lo, hi), max(lo, hi))
            if a.exact and b.exact:
                base = AffineAnalysis._mul(a.base, b.base)
                if not is_top(base):
                    return IVal(base)
            return TOP_IVAL
        if op in (Op.IMAD, Op.FFMA):
            prod = self._ival_evaluate(_FakeMul(op), [srcs[0], srcs[1]])
            return self._ival_evaluate(_FakeAdd(op), [prod, srcs[2]])
        if op is Op.AND:
            for x, c in ((srcs[0], srcs[1]), (srcs[1], srcs[0])):
                if c.exact and c.base.is_const and c.base.const >= 0:
                    mask = float(int(c.base.const))
                    span = x.interval(self.kernel.cta_dim)
                    hi = mask
                    if span is not None and 0 <= span[0] and span[1] < mask:
                        hi = span[1]
                    return IVal(_ZERO, 0.0, hi)
            return TOP_IVAL
        if op in (Op.OR, Op.XOR):
            a, b = (s.interval(self.kernel.cta_dim) for s in srcs)
            if a is not None and b is not None and a[0] >= 0 and b[0] >= 0:
                # For non-negative ints, OR/XOR never exceed the sum.
                return IVal(_ZERO, 0.0, a[1] + b[1])
            return TOP_IVAL
        if op is Op.IREM:
            c = srcs[1]
            if c.exact and c.base.is_const and c.base.const > 0:
                m = float(int(c.base.const)) - 1
                span = srcs[0].interval(self.kernel.cta_dim)
                if span is not None and span[0] >= 0:
                    return IVal(_ZERO, 0.0, min(m, span[1]))
                return IVal(_ZERO, -m, m)  # C-style: sign of the dividend
            return TOP_IVAL
        if op in (Op.IDIV, Op.SHR):
            x, c = srcs
            if not (c.exact and c.base.is_const):
                return TOP_IVAL
            k = int(c.base.const)
            div = (2 ** k) if op is Op.SHR else k
            if div <= 0:
                return TOP_IVAL
            span = x.interval(self.kernel.cta_dim)
            if span is not None and span[0] >= 0:
                return IVal(_ZERO, float(int(span[0]) // div),
                            float(int(span[1]) // div))
            return TOP_IVAL
        if op in (Op.IMIN, Op.FMIN, Op.IMAX, Op.FMAX):
            a, b = (s.interval(self.kernel.cta_dim) for s in srcs)
            pick = min if op in (Op.IMIN, Op.FMIN) else max
            if a is not None and b is not None:
                return IVal(_ZERO, pick(a[0], b[0]), pick(a[1], b[1]))
            known = a if a is not None else b
            if known is not None:
                if op in (Op.IMIN, Op.FMIN):
                    return IVal(_ZERO, -INF, known[1])
                return IVal(_ZERO, known[0], INF)
            return TOP_IVAL
        if op is Op.SEL:
            return ival_join(srcs[1], srcs[2])
        if op is Op.SETP:
            return IVal(_ZERO, 0.0, 1.0)
        if op is Op.FABS:
            span = srcs[0].interval(self.kernel.cta_dim)
            if span is not None:
                lo, hi = span
                alo = 0.0 if lo <= 0 <= hi else min(abs(lo), abs(hi))
                return IVal(_ZERO, alo, max(abs(lo), abs(hi)))
            return TOP_IVAL
        # Loads, atomics, FDIV/FSQRT/FEXP: no sound static bound.
        return TOP_IVAL


class _FakeMul:
    """Operand shim so IMAD/FFMA reuse the binary evaluation rules."""

    def __init__(self, op):
        self.op = Op.IMUL if op is Op.IMAD else Op.FMUL


class _FakeAdd:
    def __init__(self, op):
        self.op = Op.IADD if op is Op.IMAD else Op.FADD


class _EmptyAffineEnv:
    def get(self, idx):  # pragma: no cover - Reg operands never reach here
        return TOP


_EMPTY_AFFINE_ENV = _EmptyAffineEnv()


def interval_solution(kernel, cfg: CFGView | None = None):
    """Solve the interval pass; returns ``(analysis, envs)`` like affine.

    ``envs[pc]`` is the :class:`_IEnv` *before* ``pc`` executes (None for
    unreachable code).
    """
    cfg = cfg or CFGView(kernel.instrs)
    analysis = IntervalAnalysis(kernel)
    solution = solve(analysis, cfg)
    return analysis, solution.per_pc()
