"""Functional execution of one instruction for one warp.

Execution happens at *issue* time: the timing model decides when an
instruction may issue, then calls :func:`functional_step`, which updates
registers/memory/PC immediately while the scoreboard models when the
results become architecturally visible.  This split is safe because the
workloads are data-race-free (inter-warp communication goes through
barriers or atomics, and atomics are performed read-modify-write in issue
order).

The returned :class:`ExecResult` carries everything the timing model needs
(memory space, per-lane byte addresses, lane count) without re-decoding.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.isa.instruction import Imm, MemRef, Reg, SReg
from repro.isa.opcodes import CmpOp, Op
from repro.sim.warp import Warp, mask_to_array, array_to_mask


class ExecutionError(RuntimeError):
    """A dynamic semantic error in the simulated program."""


@dataclass
class ExecResult:
    """Side-band information about one executed instruction."""

    exec_mask: int  # lanes that executed (post-predication)
    mem_space: str | None = None  # "global" | "shared" | None
    addresses: np.ndarray | None = None  # byte addrs of executed lanes
    is_store: bool = False
    is_atomic: bool = False
    did_barrier: bool = False
    did_exit: bool = False

    @property
    def lanes(self) -> int:
        return self.exec_mask.bit_count()


_INT_BIN = {
    Op.IADD: lambda a, b: a + b,
    Op.ISUB: lambda a, b: a - b,
    Op.IMUL: lambda a, b: a * b,
    Op.IMIN: lambda a, b: np.minimum(a, b),
    Op.IMAX: lambda a, b: np.maximum(a, b),
    Op.AND: lambda a, b: a & b,
    Op.OR: lambda a, b: a | b,
    Op.XOR: lambda a, b: a ^ b,
    Op.SHL: lambda a, b: a << b,
    Op.SHR: lambda a, b: a >> b,
}

_FLOAT_BIN = {
    Op.FADD: lambda a, b: a + b,
    Op.FSUB: lambda a, b: a - b,
    Op.FMUL: lambda a, b: a * b,
    Op.FMIN: lambda a, b: np.minimum(a, b),
    Op.FMAX: lambda a, b: np.maximum(a, b),
}

_CMP = {
    CmpOp.EQ: lambda a, b: a == b,
    CmpOp.NE: lambda a, b: a != b,
    CmpOp.LT: lambda a, b: a < b,
    CmpOp.LE: lambda a, b: a <= b,
    CmpOp.GT: lambda a, b: a > b,
    CmpOp.GE: lambda a, b: a >= b,
}


#: Shared read-only broadcasts of immediates, keyed by (value, lane count):
#: kernels name few distinct immediates, and consumers never write through
#: an operand read, so the allocation per executed instruction is avoidable.
_IMM_CACHE: dict[tuple[float, int], np.ndarray] = {}
_IMM_INT_CACHE: dict[tuple[float, int], np.ndarray] = {}


def _imm_broadcast(value: float, n: int, as_int: bool) -> np.ndarray:
    cache = _IMM_INT_CACHE if as_int else _IMM_CACHE
    key = (value, n)
    arr = cache.get(key)
    if arr is None:
        arr = np.full(n, float(value))
        if as_int:
            arr = arr.astype(np.int64)
        arr.setflags(write=False)
        if len(cache) < 65536:
            cache[key] = arr
    return arr


def _read(warp: Warp, operand, lanes: np.ndarray, n: int) -> np.ndarray:
    """Read an operand's value for the selected lanes (float64 array).

    ``n`` is the popcount of ``lanes``.  For a full-mask read the register
    row is returned as a *view*: no executor mutates an operand array in
    place (every ALU op allocates its result), so skipping the boolean
    gather is observationally identical.
    """
    if isinstance(operand, Reg):
        row = warp.regs[operand.idx]
        return row if n == 32 else row[lanes]
    if isinstance(operand, Imm):
        return _imm_broadcast(operand.value, n, False)
    if isinstance(operand, SReg):
        row = warp.sregs[operand.kind]
        return row if n == 32 else row[lanes]
    raise ExecutionError(f"cannot read operand {operand!r}")


def _read_int(warp: Warp, operand, lanes: np.ndarray, n: int) -> np.ndarray:
    if isinstance(operand, Imm):
        return _imm_broadcast(operand.value, n, True)
    return _read(warp, operand, lanes, n).astype(np.int64)


def _addresses(warp: Warp, ref: MemRef, lanes: np.ndarray, n: int) -> np.ndarray:
    base = _read(warp, ref.base, lanes, n).astype(np.int64)
    return base + ref.offset


def _write(warp: Warp, dst: Reg, lanes: np.ndarray, n: int, values) -> None:
    if n == 32:
        warp.regs[dst.idx] = values  # full-mask row assign (copies values)
    else:
        warp.regs[dst.idx][lanes] = values


def functional_step(warp: Warp, instr, gmem) -> ExecResult:
    """Execute ``instr`` for ``warp``; updates state and returns metadata."""
    if warp.finished:
        raise ExecutionError(f"executing with empty mask (finished warp): {instr!r}")
    active = warp.active_mask()
    if active == 0:
        raise ExecutionError(f"executing with empty mask: {instr!r}")

    # Predication (for non-branch ops) masks lanes out of execution but all
    # active lanes still advance past the instruction.
    if instr.op is Op.BRA:
        return _exec_branch(warp, instr, active)

    exec_mask = active
    if instr.pred is not None:
        # Vectorized predication: evaluate the predicate over all 32 lanes
        # and AND with the active mask — lanes outside the mask contribute
        # nothing, so this matches the per-lane gather exactly.
        active_arr = mask_to_array(active)
        pvals = warp.regs[instr.pred.idx] != 0
        if instr.pred_neg:
            pvals = ~pvals
        exec_mask = array_to_mask(active_arr & pvals)

    result = ExecResult(exec_mask=exec_mask)
    op = instr.op

    if op is Op.EXIT:
        # Predicated EXIT is disallowed by convention (keeps warp-completion
        # logic simple); the assembler cannot express it accidentally in our
        # kernels but guard anyway.
        if instr.pred is not None:
            raise ExecutionError("predicated EXIT is not supported")
        warp.do_exit()
        result.did_exit = True
        return result

    if op is Op.BAR:
        if exec_mask != active:
            raise ExecutionError("predicated BAR is not supported")
        result.did_barrier = True
        warp.advance()
        return result

    if op is Op.NOP or exec_mask == 0:
        warp.advance()
        return result

    lanes = mask_to_array(exec_mask)
    n = exec_mask.bit_count()

    int_fn = _INT_BIN.get(op)
    if int_fn is not None:
        a = _read_int(warp, instr.srcs[0], lanes, n)
        b = _read_int(warp, instr.srcs[1], lanes, n)
        if op in (Op.SHL, Op.SHR) and b.size and (b < 0).any():
            raise ExecutionError("negative shift amount")
        _write(warp, instr.dst, lanes, n, int_fn(a, b).astype(np.float64))
    elif (float_fn := _FLOAT_BIN.get(op)) is not None:
        a = _read(warp, instr.srcs[0], lanes, n)
        b = _read(warp, instr.srcs[1], lanes, n)
        _write(warp, instr.dst, lanes, n, float_fn(a, b))
    elif op is Op.IMAD:
        a = _read_int(warp, instr.srcs[0], lanes, n)
        b = _read_int(warp, instr.srcs[1], lanes, n)
        c = _read_int(warp, instr.srcs[2], lanes, n)
        _write(warp, instr.dst, lanes, n, (a * b + c).astype(np.float64))
    elif op is Op.FFMA:
        a = _read(warp, instr.srcs[0], lanes, n)
        b = _read(warp, instr.srcs[1], lanes, n)
        c = _read(warp, instr.srcs[2], lanes, n)
        _write(warp, instr.dst, lanes, n, a * b + c)
    elif op in (Op.IDIV, Op.IREM):
        a = _read_int(warp, instr.srcs[0], lanes, n)
        b = _read_int(warp, instr.srcs[1], lanes, n)
        if b.size and (b == 0).any():
            raise ExecutionError("integer division by zero")
        quotient = np.trunc(a / b).astype(np.int64)  # C-style truncation
        value = quotient if op is Op.IDIV else a - quotient * b
        _write(warp, instr.dst, lanes, n, value.astype(np.float64))
    elif op is Op.FDIV:
        a = _read(warp, instr.srcs[0], lanes, n)
        b = _read(warp, instr.srcs[1], lanes, n)
        if b.size and (b == 0).any():
            raise ExecutionError("float division by zero")
        _write(warp, instr.dst, lanes, n, a / b)
    elif op is Op.FSQRT:
        a = _read(warp, instr.srcs[0], lanes, n)
        if a.size and (a < 0).any():
            raise ExecutionError("sqrt of negative value")
        _write(warp, instr.dst, lanes, n, np.sqrt(a))
    elif op is Op.FEXP:
        _write(warp, instr.dst, lanes, n, np.exp(_read(warp, instr.srcs[0], lanes, n)))
    elif op is Op.FABS:
        _write(warp, instr.dst, lanes, n, np.abs(_read(warp, instr.srcs[0], lanes, n)))
    elif op is Op.I2F:
        _write(warp, instr.dst, lanes, n, _read_int(warp, instr.srcs[0], lanes, n).astype(np.float64))
    elif op is Op.F2I:
        _write(warp, instr.dst, lanes, n, np.trunc(_read(warp, instr.srcs[0], lanes, n)))
    elif op is Op.MOV:
        _write(warp, instr.dst, lanes, n, _read(warp, instr.srcs[0], lanes, n))
    elif op is Op.S2R:
        _write(warp, instr.dst, lanes, n, _read(warp, instr.srcs[0], lanes, n))
    elif op is Op.SEL:
        c = _read(warp, instr.srcs[0], lanes, n)
        a = _read(warp, instr.srcs[1], lanes, n)
        b = _read(warp, instr.srcs[2], lanes, n)
        _write(warp, instr.dst, lanes, n, np.where(c != 0, a, b))
    elif op is Op.SETP:
        a = _read(warp, instr.srcs[0], lanes, n)
        b = _read(warp, instr.srcs[1], lanes, n)
        _write(warp, instr.dst, lanes, n, _CMP[instr.cmp](a, b).astype(np.float64))
    elif op in (Op.LDG, Op.STG, Op.LDS, Op.STS, Op.ATOMG_ADD, Op.ATOMS_ADD, Op.ATOMG_MAX):
        _exec_memory(warp, instr, lanes, n, gmem, result)
    else:  # pragma: no cover - exhaustive over Op
        raise ExecutionError(f"unhandled opcode {op}")

    warp.advance()
    return result


def _exec_memory(warp: Warp, instr, lanes: np.ndarray, n: int, gmem, result: ExecResult) -> None:
    op = instr.op
    ref = instr.srcs[0]
    addrs = _addresses(warp, ref, lanes, n)
    smem = warp.cta.smem
    if op is Op.LDG:
        _write(warp, instr.dst, lanes, n, gmem.load(addrs))
        result.mem_space = "global"
    elif op is Op.STG:
        gmem.store(addrs, _read(warp, instr.srcs[1], lanes, n))
        result.mem_space, result.is_store = "global", True
    elif op is Op.LDS:
        _write(warp, instr.dst, lanes, n, smem.load(addrs))
        result.mem_space = "shared"
    elif op is Op.STS:
        smem.store(addrs, _read(warp, instr.srcs[1], lanes, n))
        result.mem_space, result.is_store = "shared", True
    elif op is Op.ATOMG_ADD:
        _write(warp, instr.dst, lanes, n, gmem.atomic_add(addrs, _read(warp, instr.srcs[1], lanes, n)))
        result.mem_space, result.is_atomic = "global", True
    elif op is Op.ATOMG_MAX:
        _write(warp, instr.dst, lanes, n, gmem.atomic_max(addrs, _read(warp, instr.srcs[1], lanes, n)))
        result.mem_space, result.is_atomic = "global", True
    elif op is Op.ATOMS_ADD:
        _write(warp, instr.dst, lanes, n, smem.atomic_add(addrs, _read(warp, instr.srcs[1], lanes, n)))
        result.mem_space, result.is_atomic = "shared", True
    result.addresses = addrs
    if result.is_atomic and result.mem_space == "global":
        # Parallel-engine tap: a deferring gmem proxy needs (warp, dst,
        # lanes) to patch the true old values in at the epoch barrier.
        note = getattr(gmem, "note_atomic_target", None)
        if note is not None:
            note(warp, instr.dst, lanes)


def _exec_branch(warp: Warp, instr, active: int) -> ExecResult:
    if instr.pred is None:
        warp.branch_uniform(instr.target)
        return ExecResult(exec_mask=active)
    active_arr = mask_to_array(active)
    pvals = warp.regs[instr.pred.idx] != 0
    if instr.pred_neg:
        pvals = ~pvals
    taken_arr = active_arr & pvals
    taken = array_to_mask(taken_arr)
    fall = active & ~taken
    if fall == 0:
        warp.branch_uniform(instr.target)
    elif taken == 0:
        warp.advance()
    else:
        if instr.reconv_pc is None:
            raise ExecutionError(f"divergent branch without reconvergence PC: {instr!r}")
        warp.branch_divergent(taken, instr.target, instr.reconv_pc)
    return ExecResult(exec_mask=active)
