"""Functional execution of one instruction for one warp.

Execution happens at *issue* time: the timing model decides when an
instruction may issue, then calls :func:`functional_step`, which updates
registers/memory/PC immediately while the scoreboard models when the
results become architecturally visible.  This split is safe because the
workloads are data-race-free (inter-warp communication goes through
barriers or atomics, and atomics are performed read-modify-write in issue
order).

The returned :class:`ExecResult` carries everything the timing model needs
(memory space, per-lane byte addresses, lane count) without re-decoding.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.isa.instruction import Imm, MemRef, Reg, SReg
from repro.isa.opcodes import CmpOp, Op
from repro.sim.warp import Warp, mask_to_array, array_to_mask


class ExecutionError(RuntimeError):
    """A dynamic semantic error in the simulated program."""


@dataclass
class ExecResult:
    """Side-band information about one executed instruction."""

    exec_mask: int  # lanes that executed (post-predication)
    mem_space: str | None = None  # "global" | "shared" | None
    addresses: np.ndarray | None = None  # byte addrs of executed lanes
    is_store: bool = False
    is_atomic: bool = False
    did_barrier: bool = False
    did_exit: bool = False

    @property
    def lanes(self) -> int:
        return self.exec_mask.bit_count()


_INT_BIN = {
    Op.IADD: lambda a, b: a + b,
    Op.ISUB: lambda a, b: a - b,
    Op.IMUL: lambda a, b: a * b,
    Op.IMIN: lambda a, b: np.minimum(a, b),
    Op.IMAX: lambda a, b: np.maximum(a, b),
    Op.AND: lambda a, b: a & b,
    Op.OR: lambda a, b: a | b,
    Op.XOR: lambda a, b: a ^ b,
    Op.SHL: lambda a, b: a << b,
    Op.SHR: lambda a, b: a >> b,
}

_FLOAT_BIN = {
    Op.FADD: lambda a, b: a + b,
    Op.FSUB: lambda a, b: a - b,
    Op.FMUL: lambda a, b: a * b,
    Op.FMIN: lambda a, b: np.minimum(a, b),
    Op.FMAX: lambda a, b: np.maximum(a, b),
}

_CMP = {
    CmpOp.EQ: lambda a, b: a == b,
    CmpOp.NE: lambda a, b: a != b,
    CmpOp.LT: lambda a, b: a < b,
    CmpOp.LE: lambda a, b: a <= b,
    CmpOp.GT: lambda a, b: a > b,
    CmpOp.GE: lambda a, b: a >= b,
}


def _read(warp: Warp, operand, lanes: np.ndarray) -> np.ndarray:
    """Read an operand's value for the selected lanes (float64 array)."""
    if isinstance(operand, Reg):
        return warp.regs[operand.idx][lanes]
    if isinstance(operand, Imm):
        return np.full(int(lanes.sum()), float(operand.value))
    if isinstance(operand, SReg):
        return warp.sregs[operand.kind][lanes]
    raise ExecutionError(f"cannot read operand {operand!r}")


def _read_int(warp: Warp, operand, lanes: np.ndarray) -> np.ndarray:
    return _read(warp, operand, lanes).astype(np.int64)


def _addresses(warp: Warp, ref: MemRef, lanes: np.ndarray) -> np.ndarray:
    base = warp.regs[ref.base.idx][lanes].astype(np.int64)
    return base + ref.offset


def _write(warp: Warp, dst: Reg, lanes: np.ndarray, values) -> None:
    warp.regs[dst.idx][lanes] = values


def functional_step(warp: Warp, instr, gmem) -> ExecResult:
    """Execute ``instr`` for ``warp``; updates state and returns metadata."""
    if warp.finished:
        raise ExecutionError(f"executing with empty mask (finished warp): {instr!r}")
    active = warp.active_mask()
    if active == 0:
        raise ExecutionError(f"executing with empty mask: {instr!r}")

    # Predication (for non-branch ops) masks lanes out of execution but all
    # active lanes still advance past the instruction.
    if instr.op is Op.BRA:
        return _exec_branch(warp, instr, active)

    exec_mask = active
    if instr.pred is not None:
        active_arr = mask_to_array(active)
        pvals = warp.regs[instr.pred.idx][active_arr] != 0
        if instr.pred_neg:
            pvals = ~pvals
        lane_ids = np.flatnonzero(active_arr)[pvals]
        exec_mask = int(sum(1 << int(i) for i in lane_ids))

    result = ExecResult(exec_mask=exec_mask)
    op = instr.op

    if op is Op.EXIT:
        # Predicated EXIT is disallowed by convention (keeps warp-completion
        # logic simple); the assembler cannot express it accidentally in our
        # kernels but guard anyway.
        if instr.pred is not None:
            raise ExecutionError("predicated EXIT is not supported")
        warp.do_exit()
        result.did_exit = True
        return result

    if op is Op.BAR:
        if exec_mask != active:
            raise ExecutionError("predicated BAR is not supported")
        result.did_barrier = True
        warp.advance()
        return result

    if op is Op.NOP or exec_mask == 0:
        warp.advance()
        return result

    lanes = mask_to_array(exec_mask)

    if op in _INT_BIN:
        a = _read_int(warp, instr.srcs[0], lanes)
        b = _read_int(warp, instr.srcs[1], lanes)
        if op in (Op.SHL, Op.SHR) and b.size and (b < 0).any():
            raise ExecutionError("negative shift amount")
        _write(warp, instr.dst, lanes, _INT_BIN[op](a, b).astype(np.float64))
    elif op in _FLOAT_BIN:
        a = _read(warp, instr.srcs[0], lanes)
        b = _read(warp, instr.srcs[1], lanes)
        _write(warp, instr.dst, lanes, _FLOAT_BIN[op](a, b))
    elif op is Op.IMAD:
        a = _read_int(warp, instr.srcs[0], lanes)
        b = _read_int(warp, instr.srcs[1], lanes)
        c = _read_int(warp, instr.srcs[2], lanes)
        _write(warp, instr.dst, lanes, (a * b + c).astype(np.float64))
    elif op is Op.FFMA:
        a = _read(warp, instr.srcs[0], lanes)
        b = _read(warp, instr.srcs[1], lanes)
        c = _read(warp, instr.srcs[2], lanes)
        _write(warp, instr.dst, lanes, a * b + c)
    elif op in (Op.IDIV, Op.IREM):
        a = _read_int(warp, instr.srcs[0], lanes)
        b = _read_int(warp, instr.srcs[1], lanes)
        if b.size and (b == 0).any():
            raise ExecutionError("integer division by zero")
        quotient = np.trunc(a / b).astype(np.int64)  # C-style truncation
        value = quotient if op is Op.IDIV else a - quotient * b
        _write(warp, instr.dst, lanes, value.astype(np.float64))
    elif op is Op.FDIV:
        a = _read(warp, instr.srcs[0], lanes)
        b = _read(warp, instr.srcs[1], lanes)
        if b.size and (b == 0).any():
            raise ExecutionError("float division by zero")
        _write(warp, instr.dst, lanes, a / b)
    elif op is Op.FSQRT:
        a = _read(warp, instr.srcs[0], lanes)
        if a.size and (a < 0).any():
            raise ExecutionError("sqrt of negative value")
        _write(warp, instr.dst, lanes, np.sqrt(a))
    elif op is Op.FEXP:
        _write(warp, instr.dst, lanes, np.exp(_read(warp, instr.srcs[0], lanes)))
    elif op is Op.FABS:
        _write(warp, instr.dst, lanes, np.abs(_read(warp, instr.srcs[0], lanes)))
    elif op is Op.I2F:
        _write(warp, instr.dst, lanes, _read_int(warp, instr.srcs[0], lanes).astype(np.float64))
    elif op is Op.F2I:
        _write(warp, instr.dst, lanes, np.trunc(_read(warp, instr.srcs[0], lanes)))
    elif op is Op.MOV:
        _write(warp, instr.dst, lanes, _read(warp, instr.srcs[0], lanes))
    elif op is Op.S2R:
        _write(warp, instr.dst, lanes, _read(warp, instr.srcs[0], lanes))
    elif op is Op.SEL:
        c = _read(warp, instr.srcs[0], lanes)
        a = _read(warp, instr.srcs[1], lanes)
        b = _read(warp, instr.srcs[2], lanes)
        _write(warp, instr.dst, lanes, np.where(c != 0, a, b))
    elif op is Op.SETP:
        a = _read(warp, instr.srcs[0], lanes)
        b = _read(warp, instr.srcs[1], lanes)
        _write(warp, instr.dst, lanes, _CMP[instr.cmp](a, b).astype(np.float64))
    elif op in (Op.LDG, Op.STG, Op.LDS, Op.STS, Op.ATOMG_ADD, Op.ATOMS_ADD, Op.ATOMG_MAX):
        _exec_memory(warp, instr, lanes, gmem, result)
    else:  # pragma: no cover - exhaustive over Op
        raise ExecutionError(f"unhandled opcode {op}")

    warp.advance()
    return result


def _exec_memory(warp: Warp, instr, lanes: np.ndarray, gmem, result: ExecResult) -> None:
    op = instr.op
    ref = instr.srcs[0]
    addrs = _addresses(warp, ref, lanes)
    smem = warp.cta.smem
    if op is Op.LDG:
        _write(warp, instr.dst, lanes, gmem.load(addrs))
        result.mem_space = "global"
    elif op is Op.STG:
        gmem.store(addrs, _read(warp, instr.srcs[1], lanes))
        result.mem_space, result.is_store = "global", True
    elif op is Op.LDS:
        _write(warp, instr.dst, lanes, smem.load(addrs))
        result.mem_space = "shared"
    elif op is Op.STS:
        smem.store(addrs, _read(warp, instr.srcs[1], lanes))
        result.mem_space, result.is_store = "shared", True
    elif op is Op.ATOMG_ADD:
        _write(warp, instr.dst, lanes, gmem.atomic_add(addrs, _read(warp, instr.srcs[1], lanes)))
        result.mem_space, result.is_atomic = "global", True
    elif op is Op.ATOMG_MAX:
        _write(warp, instr.dst, lanes, gmem.atomic_max(addrs, _read(warp, instr.srcs[1], lanes)))
        result.mem_space, result.is_atomic = "global", True
    elif op is Op.ATOMS_ADD:
        _write(warp, instr.dst, lanes, smem.atomic_add(addrs, _read(warp, instr.srcs[1], lanes)))
        result.mem_space, result.is_atomic = "shared", True
    result.addresses = addrs


def _exec_branch(warp: Warp, instr, active: int) -> ExecResult:
    if instr.pred is None:
        warp.branch_uniform(instr.target)
        return ExecResult(exec_mask=active)
    active_arr = mask_to_array(active)
    pvals = warp.regs[instr.pred.idx] != 0
    if instr.pred_neg:
        pvals = ~pvals
    taken_arr = active_arr & pvals
    taken = array_to_mask(taken_arr)
    fall = active & ~taken
    if fall == 0:
        warp.branch_uniform(instr.target)
    elif taken == 0:
        warp.advance()
    else:
        if instr.reconv_pc is None:
            raise ExecutionError(f"divergent branch without reconvergence PC: {instr!r}")
        warp.branch_divergent(taken, instr.target, instr.reconv_pc)
    return ExecResult(exec_mask=active)
