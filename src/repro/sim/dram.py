"""DRAM timing: per-channel bandwidth with fixed access latency.

Each channel is a server with deterministic service time
(``dram_service_cycles`` per line transfer).  A request arriving at a busy
channel queues behind earlier arrivals — ``next_free`` bookkeeping yields
exactly FCFS queueing delay without simulating the queue cycle-by-cycle.
Channels are line-interleaved by address, the common GPU mapping.
"""

from __future__ import annotations


class DramModel:
    """Banked, bandwidth-limited DRAM with a flat access latency."""

    def __init__(self, cfg):
        self.cfg = cfg
        self.channel_next_free = [0] * cfg.dram_channels
        self.requests = 0
        self.busy_cycles = 0

    def channel_of(self, line_addr: int) -> int:
        return (line_addr // self.cfg.line_bytes) % self.cfg.dram_channels

    def access(self, line_addr: int, earliest: int) -> int:
        """Service a line request arriving at ``earliest``; returns the
        cycle at which data leaves the DRAM."""
        channel = self.channel_of(line_addr)
        start = max(earliest, self.channel_next_free[channel])
        self.channel_next_free[channel] = start + self.cfg.dram_service_cycles
        self.requests += 1
        self.busy_cycles += self.cfg.dram_service_cycles
        return start + self.cfg.dram_latency

    def utilization(self, total_cycles: int) -> float:
        capacity = total_cycles * self.cfg.dram_channels
        return self.busy_cycles / capacity if capacity else 0.0
