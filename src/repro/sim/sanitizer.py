"""Per-cycle invariant sanitizer, progress tracking, and deadlock forensics.

Long simulations fail in two ways: *corruption* (an accounting bug or an
injected fault silently breaks a conservation law, poisoning every number
collected afterwards) and *hangs* (a warp that can never issue again stalls
the launch until the hard cycle limit fires, hours later, with no clue).
This module defends against both:

* :class:`Sanitizer` — an opt-in checker (``GPUConfig.sanitize=True``)
  invoked by :meth:`SMCore.step` every cycle and at every CTA retirement.
  It asserts microarchitectural conservation laws and raises a structured
  :class:`InvariantViolation` (SM id, cycle, invariant name) the moment one
  breaks, instead of letting the run limp on.
* :class:`ProgressTracker` — drives the progress watchdog in
  :meth:`GPU.launch`: a cycle makes *progress* when any SM issues, a CTA
  is dispatched, the VT swap engine is busy, or a memory response is still
  in flight (bounded by ``max_pending_latency``).  ``progress_window``
  consecutive cycles without progress is a deadlock — diagnosed early,
  well before ``max_cycles``.
* :func:`diagnostic_dump` — the forensic snapshot attached to
  :class:`~repro.sim.gpu.SimulationTimeout` and raised with deadlocks:
  per-SM resident CTAs, per-warp PC/state/stall reason, outstanding memory
  requests, swap-engine state, and any injected faults.

Invariants checked every cycle:

1. **Capacity conservation** — register-file and shared-memory charges
   never exceed SM capacity, never go negative, and always equal the sum
   over resident CTAs (no leaks, no double releases).
2. **Scheduling-limit conservation** — CTA/warp/thread slot usage stays
   within the per-architecture limits (baseline: all resident CTAs; VT:
   the ACTIVE set plus one in-flight switch; ideal-sched: the enlarged
   cap).
3. **Scoreboard/MSHR liveness** — no pending register writeback or L1
   fill completes further than ``max_pending_latency`` cycles in the
   future (a dropped response is caught the cycle it is recorded).
4. **VT state-machine legality** — resident CTAs only follow the edges
   ``ACTIVE -> SWAP_OUT -> INACTIVE -> SWAP_IN -> ACTIVE``, at most one
   context switch is in flight, and no CTA sits in a ``SWAP_*`` state
   outside the swap engine.
5. **Clean retirement** — a retiring CTA has every warp finished, owns no
   scheduler slots, leaks no scoreboard entries, and its release leaves
   the resource accounts non-negative.
"""

from __future__ import annotations

from repro.sim.cta import CTAState

#: Legal VT lifecycle edges (self-loops are implicit).
_LEGAL_EDGES = {
    CTAState.ACTIVE: {CTAState.ACTIVE, CTAState.SWAP_OUT},
    CTAState.SWAP_OUT: {CTAState.SWAP_OUT, CTAState.INACTIVE},
    CTAState.INACTIVE: {CTAState.INACTIVE, CTAState.SWAP_IN},
    CTAState.SWAP_IN: {CTAState.SWAP_IN, CTAState.ACTIVE},
}

#: States a CTA may first be observed in (set by ``on_assign``).
_LEGAL_INITIAL = {CTAState.ACTIVE, CTAState.INACTIVE}


class InvariantViolation(RuntimeError):
    """A microarchitectural conservation law broke.

    Carries the failing ``invariant`` name, the ``sm_id`` and ``cycle`` it
    was detected at, and the offending ``resource`` description, so test
    harnesses and the crash-tolerant runner can report it structurally.
    """

    def __init__(self, invariant: str, message: str, *, sm_id: int | None = None,
                 cycle: int | None = None, resource: str | None = None):
        self.invariant = invariant
        self.sm_id = sm_id
        self.cycle = cycle
        self.resource = resource
        where = f"sm{sm_id}" if sm_id is not None else "chip"
        super().__init__(f"[{where} @cycle {cycle}] {invariant}: {message}")


class Sanitizer:
    """Opt-in per-cycle invariant checker shared by all SMs of a launch."""

    def __init__(self, cfg):
        self.cfg = cfg
        self.checks = 0
        # (sm_id, cta_id) -> last observed CTAState, for edge legality.
        self._last_state: dict[tuple[int, int], CTAState] = {}
        # id(kernel) -> (kernel, statically-written regs, pc -> shared bounds),
        # computed lazily per kernel for the execution cross-check.  The
        # kernel reference is kept so a recycled id cannot alias.
        self._static_bounds: dict[int, tuple] = {}

    # -- helpers -----------------------------------------------------------

    def _fail(self, invariant: str, message: str, sm_id: int, now: int,
              resource: str | None = None):
        raise InvariantViolation(invariant, message, sm_id=sm_id, cycle=now,
                                 resource=resource)

    # -- per-cycle check ---------------------------------------------------

    def check_sm(self, sm, now: int) -> None:
        """Validate every invariant on one SM; called from ``SMCore.step``."""
        self.checks += 1
        cfg = self.cfg
        manager = sm.manager
        res = manager.resources
        resident = manager.resident

        # 1. capacity conservation -----------------------------------------
        expected_regs = expected_smem = expected_warps = expected_threads = 0
        for cta in resident:
            expected_regs += cta.regs_needed
            expected_smem += cta.smem_needed
            expected_warps += cta.kernel.warps_per_cta(cfg.warp_size)
            expected_threads += cta.kernel.threads_per_cta
        if res.regs_used != expected_regs or res.smem_used != expected_smem:
            self._fail(
                "capacity-accounting",
                f"accounts (regs={res.regs_used}, smem={res.smem_used}) disagree "
                f"with resident CTAs (regs={expected_regs}, smem={expected_smem})",
                sm.sm_id, now, resource="registers/shared-memory")
        if res.warps_used != expected_warps or res.threads_used != expected_threads:
            self._fail(
                "slot-accounting",
                f"accounts (warps={res.warps_used}, threads={res.threads_used}) "
                f"disagree with resident CTAs (warps={expected_warps}, "
                f"threads={expected_threads})",
                sm.sm_id, now, resource="warp/thread slots")
        if res.regs_used < 0 or res.smem_used < 0 or res.warps_used < 0 or res.threads_used < 0:
            self._fail("capacity-underflow", "a resource account went negative",
                       sm.sm_id, now)
        if res.regs_used > cfg.registers_per_sm:
            self._fail("register-capacity",
                       f"{res.regs_used} registers allocated, SM holds "
                       f"{cfg.registers_per_sm}", sm.sm_id, now, resource="registers")
        if res.smem_used > cfg.smem_per_sm:
            self._fail("smem-capacity",
                       f"{res.smem_used} B shared memory allocated, SM holds "
                       f"{cfg.smem_per_sm} B", sm.sm_id, now, resource="shared memory")

        # 2. scheduling-limit conservation ---------------------------------
        self._check_scheduling_limits(sm, manager, resident, now)

        # 3. scoreboard / MSHR liveness ------------------------------------
        bound = now + cfg.max_pending_latency
        if sm.l1.max_fill_completion > bound:
            self._fail(
                "mshr-liveness",
                f"an L1 fill completes at cycle {sm.l1.max_fill_completion}, more "
                f"than max_pending_latency={cfg.max_pending_latency} ahead — "
                "the response was lost", sm.sm_id, now, resource="L1 MSHR")
        for cta in resident:
            for warp in cta.warps:
                pending = warp.scoreboard.mem_pending_until()
                if pending > bound:
                    self._fail(
                        "scoreboard-liveness",
                        f"cta {cta.cta_id} warp {warp.local_wid} waits on a load "
                        f"completing at cycle {pending}, more than "
                        f"max_pending_latency={cfg.max_pending_latency} ahead",
                        sm.sm_id, now, resource="scoreboard")

        # 4. VT state machine ----------------------------------------------
        self._check_states(sm, manager, resident, now)

        # Cross-check the manager's own invariant hook when it has one.
        assert_invariants = getattr(manager, "assert_invariants", None)
        if assert_invariants is not None:
            try:
                assert_invariants(now)
            except AssertionError as exc:
                self._fail("manager-invariant", str(exc), sm.sm_id, now)

    def _check_scheduling_limits(self, sm, manager, resident, now: int) -> None:
        cfg = self.cfg
        if not resident:
            return
        kernel = resident[0].kernel
        if cfg.arch == "vt":
            active_limit = manager.active_limit(kernel)
            active_like = sum(
                1 for c in resident
                if c.state in (CTAState.ACTIVE, CTAState.SWAP_OUT, CTAState.SWAP_IN))
            # +1: victim and incoming briefly coexist during a switch.
            if active_like > active_limit + 1:
                self._fail(
                    "vt-active-limit",
                    f"{active_like} CTAs hold scheduling structures, "
                    f"limit is {active_limit} (+1 in-flight switch)",
                    sm.sm_id, now, resource="CTA slots")
            active_warps = sum(
                c.num_warps for c in resident if c.state is CTAState.ACTIVE)
            if active_warps > cfg.max_warps_per_sm:
                self._fail(
                    "vt-warp-slots",
                    f"{active_warps} active warps exceed {cfg.max_warps_per_sm} "
                    "warp slots", sm.sm_id, now, resource="warp slots")
            if len(resident) > manager.resident_limit(kernel):
                self._fail(
                    "vt-resident-limit",
                    f"{len(resident)} resident CTAs exceed the backup-slot "
                    f"provisioning cap {manager.resident_limit(kernel)}",
                    sm.sm_id, now, resource="backup SRAM slots")
        elif cfg.arch == "baseline":
            if len(resident) > cfg.max_ctas_per_sm:
                self._fail("cta-slots",
                           f"{len(resident)} resident CTAs exceed "
                           f"{cfg.max_ctas_per_sm} CTA slots",
                           sm.sm_id, now, resource="CTA slots")
            res = manager.resources
            if res.warps_used > cfg.max_warps_per_sm:
                self._fail("warp-slots",
                           f"{res.warps_used} resident warps exceed "
                           f"{cfg.max_warps_per_sm} warp slots",
                           sm.sm_id, now, resource="warp slots")
            if res.threads_used > cfg.max_threads_per_sm:
                self._fail("thread-slots",
                           f"{res.threads_used} resident threads exceed "
                           f"{cfg.max_threads_per_sm} thread slots",
                           sm.sm_id, now, resource="thread slots")

    def _check_states(self, sm, manager, resident, now: int) -> None:
        victim = getattr(manager, "_swap_victim", None)
        incoming = getattr(manager, "_swap_incoming", None)
        if victim is not None and incoming is not None and victim is incoming:
            self._fail("swap-engine", "victim and incoming are the same CTA",
                       sm.sm_id, now)
        for cta in resident:
            state = cta.state
            if state is CTAState.FINISHED:
                self._fail("state-machine",
                           f"cta {cta.cta_id} is resident but FINISHED",
                           sm.sm_id, now)
            key = (sm.sm_id, cta.cta_id)
            prev = self._last_state.get(key)
            if prev is None:
                if state not in _LEGAL_INITIAL:
                    self._fail("state-machine",
                               f"cta {cta.cta_id} appeared in state {state.value}",
                               sm.sm_id, now)
            elif state not in _LEGAL_EDGES[prev]:
                self._fail(
                    "state-machine",
                    f"cta {cta.cta_id} took illegal edge "
                    f"{prev.value} -> {state.value}",
                    sm.sm_id, now)
            self._last_state[key] = state
            # Orphaned swap states: only the engine's CTAs may be SWAP_*.
            if state is CTAState.SWAP_OUT and cta is not victim:
                self._fail("swap-engine",
                           f"cta {cta.cta_id} is SWAP_OUT outside the swap engine",
                           sm.sm_id, now)
            if state is CTAState.SWAP_IN and cta is not incoming:
                self._fail("swap-engine",
                           f"cta {cta.cta_id} is SWAP_IN outside the swap engine",
                           sm.sm_id, now)

    # -- execution cross-check ---------------------------------------------

    def _kernel_bounds(self, kernel):
        """Static write-set, per-PC shared-address bounds, and per-PC
        access-cost bounds (coalescing / bank passes) for ``kernel``."""
        entry = self._static_bounds.get(id(kernel))
        if entry is None or entry[0] is not kernel:
            from repro.isa.analysis import (CFGView, affine_solution, liveness,
                                            shared_accesses)
            from repro.isa.analysis.memaccess import cost_bounds_by_pc

            cfg = CFGView(kernel.instrs)
            written = liveness(kernel, cfg).written_regs
            affine, envs = affine_solution(kernel, cfg)
            bounds = {access.pc: access.bounds
                      for access in shared_accesses(kernel, cfg, affine, envs)
                      if access.bounds is not None}
            costs = cost_bounds_by_pc(kernel, line_bytes=self.cfg.line_bytes,
                                      num_banks=self.cfg.shared_mem_banks)
            entry = (kernel, written, bounds, costs)
            self._static_bounds[id(kernel)] = entry
        return entry

    def check_exec(self, sm, warp, pc: int, instr, result, now: int) -> None:
        """Cross-check one issued instruction against the static analysis:
        observed register writes and shared-memory addresses must stay
        within the bounds the verifier proved.  A mismatch means either
        the functional model or the static analysis is wrong — both are
        worth a loud stop.  Called from ``SMCore._issue``."""
        self.checks += 1
        kernel = warp.cta.kernel
        _kernel, written, shared_bounds, cost_bounds = self._kernel_bounds(kernel)

        dst = instr.dst_reg()
        if dst is not None:
            if dst >= kernel.regs_per_thread:
                self._fail(
                    "exec-register-bound",
                    f"pc {pc} wrote r{dst} outside the declared register file "
                    f"(regs_per_thread={kernel.regs_per_thread})",
                    sm.sm_id, now, resource="registers")
            if dst not in written:
                self._fail(
                    "exec-register-bound",
                    f"pc {pc} wrote r{dst}, which the static analysis says no "
                    "reachable instruction defines",
                    sm.sm_id, now, resource="registers")

        if result.mem_space == "shared" and result.addresses is not None \
                and len(result.addresses):
            lo_seen = float(result.addresses.min())
            hi_seen = float(result.addresses.max())
            if lo_seen < 0 or hi_seen + 4 > kernel.smem_bytes:
                self._fail(
                    "exec-shared-bound",
                    f"pc {pc} touched shared bytes [{lo_seen:g}, {hi_seen + 4:g}) "
                    f"outside the declared smem_bytes={kernel.smem_bytes}",
                    sm.sm_id, now, resource="shared memory")
            static = shared_bounds.get(pc)
            if static is not None:
                lo, hi = static
                if lo_seen < lo or hi_seen > hi:
                    self._fail(
                        "exec-shared-bound",
                        f"pc {pc} touched shared bytes {lo_seen:g}..{hi_seen:g}, "
                        f"outside the statically proven range {lo:g}..{hi:g}",
                        sm.sm_id, now, resource="shared memory")

        # Access-cost cross-check: the observed transaction / bank-pass
        # count of this issue must stay within the bounds the static
        # coalescing analysis proved (divergence can thin the active mask
        # below the full-warp lower bound, so only a full mask checks it).
        if result.addresses is not None and len(result.addresses):
            cost = cost_bounds.get(pc)
            if cost is not None:
                from repro.sim.ldst import bank_conflict_passes, coalesce

                if result.mem_space == "shared":
                    seen = bank_conflict_passes(result.addresses,
                                                self.cfg.shared_mem_banks)
                    what = "bank passes"
                else:
                    seen = len(coalesce(result.addresses, self.cfg.line_bytes))
                    what = "transactions"
                full = len(result.addresses) >= min(
                    32, kernel.threads_per_cta)
                lo_c = cost.full_lo if full and not cost.predicated else 1
                hi_c = cost.full_hi if full else cost.hi
                if not lo_c <= seen <= hi_c:
                    self._fail(
                        "exec-access-cost",
                        f"pc {pc} performed {seen} {what}, outside the "
                        f"statically predicted bounds {lo_c}..{hi_c} "
                        f"({'full' if full else 'partial'} active mask)",
                        sm.sm_id, now, resource="memory ports")

    # -- retirement check --------------------------------------------------

    def on_cta_retire(self, sm, cta, now: int) -> None:
        """Validate a CTA's retirement; called from ``SMCore._finish_cta``
        after the manager released its resources."""
        key = (sm.sm_id, cta.cta_id)
        prev = self._last_state.pop(key, None)
        if prev is not None and prev is not CTAState.ACTIVE:
            self._fail("state-machine",
                       f"cta {cta.cta_id} retired from state {prev.value} "
                       "(only ACTIVE CTAs can issue their final EXIT)",
                       sm.sm_id, now)
        bound = now + self.cfg.max_pending_latency
        for warp in cta.warps:
            if not warp.finished:
                self._fail("retire-unfinished",
                           f"cta {cta.cta_id} retired with warp {warp.local_wid} "
                           f"unfinished at pc {warp.pc}", sm.sm_id, now)
            if warp.scoreboard.mem_pending_until() > bound:
                self._fail("scoreboard-leak",
                           f"cta {cta.cta_id} warp {warp.local_wid} retired "
                           "leaving a pending load that never completes",
                           sm.sm_id, now, resource="scoreboard")
            for scheduler in sm.schedulers:
                if warp in scheduler.warps:
                    self._fail("scheduler-leak",
                               f"retired warp {warp.local_wid} of cta {cta.cta_id} "
                               "still owns a scheduler slot", sm.sm_id, now,
                               resource="scheduler")
        res = sm.manager.resources
        if res.regs_used < 0 or res.smem_used < 0 or res.warps_used < 0 or res.threads_used < 0:
            self._fail("capacity-underflow",
                       f"retiring cta {cta.cta_id} drove a resource account "
                       "negative (double release?)", sm.sm_id, now)


class ProgressTracker:
    """Forward-progress bookkeeping for the deadlock watchdog.

    A cycle counts as progress when an instruction issued anywhere, a CTA
    was dispatched, the swap engine was busy, or a memory response is
    still legitimately in flight (``mem_horizon``, already capped by
    ``max_pending_latency`` at record time, lies in the future).
    """

    def __init__(self, window: int):
        self.window = window
        self.last_progress = 0
        self.horizon = 0

    def observe(self, now: int, issued: int, swap_busy: bool, dispatched: bool,
                mem_horizon: int) -> None:
        if mem_horizon > self.horizon:
            self.horizon = mem_horizon
        if issued or swap_busy or dispatched or now < self.horizon:
            self.last_progress = now

    def observe_span(self, start: int, stop: int, swap_busy: bool) -> None:
        """Bulk equivalent of per-cycle :meth:`observe` over the dead span
        ``[start, stop)`` skipped by the fast-forward engine.

        During such a span nothing issues and nothing dispatches, the
        swap-engine state is constant (a phase boundary would have ended
        the span), and ``mem_horizon`` cannot grow (it only moves on
        issue) — so progress at cycle ``t`` reduces to ``swap_busy or
        t < horizon`` and the latest progressing cycle is closed-form."""
        if swap_busy:
            self.last_progress = stop - 1
        elif self.horizon > start:
            latest = min(stop - 1, self.horizon - 1)
            if latest > self.last_progress:
                self.last_progress = latest

    def stall_deadline(self) -> int:
        """First cycle at which :meth:`deadlocked` would fire assuming no
        issue, dispatch, or swap activity from here on (memory responses
        already in flight keep counting as progress until ``horizon``).
        The fast-forward engine never skips past this cycle, so a deadlock
        raises at exactly the same cycle as under the reference engine."""
        if self.window <= 0:
            return 1 << 60
        return max(self.last_progress, self.horizon - 1) + self.window + 1

    def stalled_cycles(self, now: int) -> int:
        return now - self.last_progress

    def deadlocked(self, now: int) -> bool:
        return self.window > 0 and self.stalled_cycles(now) > self.window


# ---------------------------------------------------------------------------
# deadlock forensics
# ---------------------------------------------------------------------------

_FOREVER_ISH = 1 << 50  # anything beyond this renders as "never"


def _cycle_str(cycle: int) -> str:
    return "never" if cycle >= _FOREVER_ISH else str(cycle)


def _warp_condition(warp, now: int) -> str:
    """Human-readable stall reason for one warp."""
    if warp.finished:
        return "finished"
    if warp.at_barrier:
        return "waiting at barrier"
    if warp.barrier_wake > now:
        return f"barrier release, wakes @{warp.barrier_wake}"
    instr = warp.cta.kernel.instrs[warp.pc]
    blocked_until, any_global = warp.scoreboard.blocking(instr, now)
    if blocked_until > now:
        kind = "global load" if any_global else "short op"
        return f"blocked on {kind} until {_cycle_str(blocked_until)}"
    return "ready to issue"


def diagnostic_dump(sms, now: int, reason: str, faults=None) -> str:
    """Forensic snapshot of the whole chip, for timeout/deadlock reports."""
    from repro.analysis.tables import format_table  # deferred: avoids an import cycle

    sections = [f"=== deadlock forensics @cycle {now}: {reason} ==="]

    cta_rows = []
    warp_rows = []
    mem_rows = []
    for sm in sms:
        manager = sm.manager
        for cta in manager.resident:
            done = sum(1 for w in cta.warps if w.finished)
            cta_rows.append((
                f"sm{sm.sm_id}", cta.cta_id, cta.state.value,
                f"{done}/{cta.num_warps}", cta.start_cycle, cta.times_swapped_out,
            ))
            for warp in cta.warps:
                if warp.finished:
                    continue
                pending = warp.scoreboard.outstanding(now)
                warp_rows.append((
                    f"sm{sm.sm_id}", cta.cta_id, warp.local_wid, warp.pc,
                    warp.instructions_issued, _warp_condition(warp, now),
                    ", ".join(
                        f"r{reg}@{_cycle_str(t)}" for reg, (t, _g) in sorted(pending.items())
                    ) or "-",
                ))
        outstanding = {line: t for line, t in sm.l1.pending.items() if t > now}
        if outstanding:
            mem_rows.append((
                f"sm{sm.sm_id}", len(outstanding),
                _cycle_str(min(outstanding.values())),
                _cycle_str(max(outstanding.values())),
                sm.cfg.l1_mshrs - len(outstanding),
            ))
        else:
            mem_rows.append((f"sm{sm.sm_id}", 0, "-", "-", sm.cfg.l1_mshrs))

        victim = getattr(manager, "_swap_victim", None)
        incoming = getattr(manager, "_swap_incoming", None)
        if victim is not None or incoming is not None:
            sections.append(
                f"sm{sm.sm_id} swap engine: "
                f"victim={victim.cta_id if victim else '-'} "
                f"incoming={incoming.cta_id if incoming else '-'} "
                f"phase ends @{getattr(manager, '_swap_phase_end', '?')}")

    sections.append(format_table(
        ("sm", "cta", "state", "warps done", "start", "swapped out"),
        cta_rows or [("-", "-", "-", "-", "-", "-")],
        title="resident CTAs"))
    sections.append(format_table(
        ("sm", "cta", "warp", "pc", "issued", "condition", "pending regs"),
        warp_rows or [("-", "-", "-", "-", "-", "all warps finished", "-")],
        title="unfinished warps"))
    sections.append(format_table(
        ("sm", "outstanding fills", "earliest", "latest", "MSHRs free"),
        mem_rows, title="outstanding memory requests"))

    if any(row[5] == "waiting at barrier" for row in warp_rows):
        sections.append(
            "hint: warps parked at a barrier that never releases usually mean "
            "a BAR under divergent control flow — `repro lint <bench>` runs "
            "the static barrier-divergence check that catches this before "
            "launch (rule `barrier-divergence` in docs/LINT.md).")

    if faults is not None and getattr(faults, "events", None):
        sections.append("injected faults:\n" + "\n".join(
            f"  {event}" for event in faults.events))

    return "\n\n".join(sections)
