"""Functional memory state: global memory and per-CTA shared memory.

Memories are word-addressable (4-byte words) with byte addresses at the
interface, matching how the kernels compute addresses.  Values are stored
as ``float64``: floats exactly, integers exactly up to 2**53 — far beyond
anything the workloads index or accumulate.
"""

from __future__ import annotations

import numpy as np

WORD_BYTES = 4


class MemoryError_(IndexError):
    """Out-of-bounds or misaligned access (kernel bug, not a sim bug)."""


class GlobalMemory:
    """Flat global memory, byte-addressed, 4-byte word granularity.

    The host allocates named buffers with :meth:`alloc`, writes inputs with
    :meth:`write`, and reads results back with :meth:`read`.  Buffer
    base addresses are aligned to the cache-line size so coalescing
    behaviour is deterministic.
    """

    def __init__(self, size_bytes: int = 1 << 22, line_bytes: int = 128):
        if size_bytes % WORD_BYTES:
            raise ValueError("size must be a multiple of 4 bytes")
        self.size_bytes = size_bytes
        self.line_bytes = line_bytes
        self.data = np.zeros(size_bytes // WORD_BYTES, dtype=np.float64)
        self._next_free = 0
        self._buffers: dict[str, tuple[int, int]] = {}  # name -> (base, bytes)

    # -- host API -----------------------------------------------------------

    def alloc(self, name: str, num_words: int) -> int:
        """Allocate a line-aligned buffer; returns its byte base address."""
        if name in self._buffers:
            raise ValueError(f"buffer {name!r} already allocated")
        base = self._next_free
        nbytes = num_words * WORD_BYTES
        end = base + nbytes
        if end > self.size_bytes:
            raise MemoryError_(f"global memory exhausted allocating {name!r}")
        self._buffers[name] = (base, nbytes)
        # Align the next buffer to a line boundary.
        self._next_free = -(-end // self.line_bytes) * self.line_bytes
        return base

    def base(self, name: str) -> int:
        return self._buffers[name][0]

    def clone(self) -> "GlobalMemory":
        """Private copy of the full memory image (data and allocation map).

        Mirrors the copy-on-write image a forked shard worker inherits, so
        in-process shards can run on isolated images when forking is
        unavailable."""
        twin = GlobalMemory.__new__(GlobalMemory)
        twin.size_bytes = self.size_bytes
        twin.line_bytes = self.line_bytes
        twin.data = self.data.copy()
        twin._next_free = self._next_free
        twin._buffers = dict(self._buffers)
        return twin

    def write(self, name: str, values) -> None:
        base, nbytes = self._buffers[name]
        arr = np.asarray(values, dtype=np.float64).ravel()
        if arr.size * WORD_BYTES > nbytes:
            raise MemoryError_(f"write overflows buffer {name!r}")
        start = base // WORD_BYTES
        self.data[start : start + arr.size] = arr

    def read(self, name: str, num_words: int | None = None) -> np.ndarray:
        base, nbytes = self._buffers[name]
        start = base // WORD_BYTES
        count = num_words if num_words is not None else nbytes // WORD_BYTES
        return self.data[start : start + count].copy()

    # -- device API (used by the functional executor) ------------------------

    def _indices(self, byte_addrs: np.ndarray) -> np.ndarray:
        idx = byte_addrs >> 2
        if byte_addrs.size:
            if (byte_addrs & 3).any():
                raise MemoryError_("misaligned global access")
            if idx.min() < 0 or idx.max() >= self.data.size:
                raise MemoryError_(
                    f"global access out of bounds: [{byte_addrs.min()}, {byte_addrs.max()}]"
                )
        return idx

    def load(self, byte_addrs: np.ndarray) -> np.ndarray:
        return self.data[self._indices(byte_addrs)]

    def store(self, byte_addrs: np.ndarray, values: np.ndarray) -> None:
        idx = self._indices(byte_addrs)
        # Lane order defines intra-warp store conflict resolution (last wins),
        # matching CUDA's "one of the writes is guaranteed" semantics.
        self.data[idx] = values

    def atomic_add(self, byte_addrs: np.ndarray, values: np.ndarray) -> np.ndarray:
        idx = self._indices(byte_addrs)
        old = np.empty(idx.size, dtype=np.float64)
        for lane in range(idx.size):  # sequential: true RMW per lane
            old[lane] = self.data[idx[lane]]
            self.data[idx[lane]] = old[lane] + values[lane]
        return old

    def atomic_max(self, byte_addrs: np.ndarray, values: np.ndarray) -> np.ndarray:
        idx = self._indices(byte_addrs)
        old = np.empty(idx.size, dtype=np.float64)
        for lane in range(idx.size):
            old[lane] = self.data[idx[lane]]
            self.data[idx[lane]] = max(old[lane], values[lane])
        return old


class SharedMemory:
    """Per-CTA scratchpad, byte-addressed, 4-byte words."""

    def __init__(self, size_bytes: int):
        self.size_bytes = size_bytes
        self.data = np.zeros(max(1, size_bytes // WORD_BYTES), dtype=np.float64)

    def _indices(self, byte_addrs: np.ndarray) -> np.ndarray:
        idx = byte_addrs >> 2
        if byte_addrs.size:
            if (byte_addrs & 3).any():
                raise MemoryError_("misaligned shared access")
            if idx.min() < 0 or (idx.max() << 2) >= self.size_bytes:
                raise MemoryError_(
                    f"shared access out of bounds: [{byte_addrs.min()}, {byte_addrs.max()}]"
                    f" of {self.size_bytes}B"
                )
        return idx

    def load(self, byte_addrs: np.ndarray) -> np.ndarray:
        return self.data[self._indices(byte_addrs)]

    def store(self, byte_addrs: np.ndarray, values: np.ndarray) -> None:
        self.data[self._indices(byte_addrs)] = values

    def atomic_add(self, byte_addrs: np.ndarray, values: np.ndarray) -> np.ndarray:
        idx = self._indices(byte_addrs)
        old = np.empty(idx.size, dtype=np.float64)
        for lane in range(idx.size):
            old[lane] = self.data[idx[lane]]
            self.data[idx[lane]] = old[lane] + values[lane]
        return old
