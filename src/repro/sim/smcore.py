"""Streaming-multiprocessor timing model.

Per cycle, each warp scheduler picks at most one issuable warp; the chosen
instruction executes functionally and its timing effects are recorded:
scoreboard release times for dependants, structural busy horizons for the
LD/ST and SFU pipelines, and memory-transaction completion times from the
cache hierarchy.

Warp readiness is classified into status codes that serve three consumers
at once: the issue logic, the idle-cycle accounting (paper motivation
figure), and the Virtual Thread swap trigger ("every warp of the CTA is
long-latency stalled").  Statuses are cached with a validity horizon so
idle SMs do not rescan scoreboards every cycle.
"""

from __future__ import annotations

from repro.isa.opcodes import Op, OpClass
from repro.sim.cache import L1Cache
from repro.sim.cta import CTA, CTAState
from repro.sim.ctamanager import FOREVER as _FOREVER
from repro.sim.exec import functional_step
from repro.sim.ldst import bank_conflict_passes, coalesce
from repro.sim.schedulers import make_scheduler
from repro.sim.stats import SMStats

# Warp status codes (ints for speed; cached on the warp object).
ST_READY = 0
ST_MEM = 1  # blocked on an outstanding global-memory dependence
ST_ALU = 2  # blocked on a short (non-memory) dependence
ST_BARRIER = 3
ST_FINISHED = 4

_OCCUPANCY_STRIDE = 16  # occupancy is sampled every N cycles


class SMCore:
    """One SM: warp slots, schedulers, L1, and a CTA residency manager."""

    def __init__(self, sm_id: int, cfg, memory_model, make_manager,
                 sanitizer=None, faults=None):
        self.sm_id = sm_id
        self.cfg = cfg
        self.stats = SMStats()
        self.sanitizer = sanitizer
        self.faults = faults
        self.l1 = L1Cache(cfg, memory_model, sm_id, faults=faults)
        self.manager = make_manager(cfg, self.stats)
        self.manager.sm_id = sm_id
        self.manager.faults = faults
        self.schedulers = [make_scheduler(cfg.warp_scheduler) for _ in range(cfg.num_warp_schedulers)]
        self._next_sched = 0
        self._ldst_free = 0  # global-memory pipeline
        self._smem_free = 0  # shared-memory pipeline (separate on Fermi)
        self._sfu_free = 0
        self.gmem = None  # set at launch
        self._live_ctas = 0
        # Latest cycle at which an outstanding memory response may still
        # legitimately arrive (capped by max_pending_latency); the progress
        # watchdog treats cycles before this horizon as forward progress.
        self.mem_horizon = 0
        # Fast-forward engine state (see GPU.launch): after a zero-issue
        # step the SM caches its next-event cycle and idle class; while
        # ``next_wake > now`` every step is provably dead and collapses to
        # O(1) accounting.  ``allow_fast`` is set by the launch loop; the
        # reference engine never primes the cache.
        self.allow_fast = False
        self.next_wake = 0
        self._idle_kind = "empty"
        self._scan_cycle = 0  # cycle of the scan that produced next_wake
        # Occupancy-sample cache: the four sampled counts are functions of
        # manager state, which only changes in a full step or on assign —
        # both invalidate the cache — so every sample inside a dead span
        # reuses one computation (the counts are provably constant there,
        # the same argument that lets fast_forward multiply by ``samples``).
        self._occ_cache = None
        # Parallel-engine tap (see repro.sim.parallel): when set, every
        # global-load group is reported so epoch-deferred completions can be
        # patched to their exact values at the next shard barrier.
        self._defer = None

    # -- CTA lifecycle -------------------------------------------------------

    def assign_cta(self, cta: CTA, now: int) -> None:
        self.next_wake = 0  # new CTA: the cached dead-cycle horizon is stale
        self._occ_cache = None
        self.manager.on_assign(cta, now)
        for warp in cta.warps:
            self.schedulers[self._next_sched].add_warp(warp)
            self._next_sched = (self._next_sched + 1) % len(self.schedulers)
        self._live_ctas += 1

    def _finish_cta(self, cta: CTA, now: int) -> None:
        for warp in cta.warps:
            for scheduler in self.schedulers:
                if warp in scheduler.warps:
                    scheduler.remove_warp(warp)
                    break
        self.manager.on_cta_finish(cta, now)
        self._live_ctas -= 1
        if self.sanitizer is not None:
            self.sanitizer.on_cta_retire(self, cta, now)

    @property
    def idle(self) -> bool:
        return self._live_ctas == 0

    # -- warp status ------------------------------------------------------------

    def _status(self, warp, now: int) -> int:
        if now < warp.status_until:
            return warp.cached_status
        if warp.finished:
            status, until = ST_FINISHED, _FOREVER
        elif warp.at_barrier:
            status, until = ST_BARRIER, _FOREVER  # invalidated on release
        elif warp.barrier_wake > now:
            status, until = ST_BARRIER, warp.barrier_wake
        else:
            instr = warp.cta.kernel.instrs[warp.pc]
            blocked_until, any_global = warp.scoreboard.blocking(instr, now)
            if blocked_until > now:
                status = ST_MEM if any_global else ST_ALU
                until = blocked_until
            else:
                status, until = ST_READY, _FOREVER  # invalidated on issue
        warp.cached_status = status
        warp.status_until = until
        return status

    def _structural_ok(self, warp, now: int) -> bool:
        instr = warp.cta.kernel.instrs[warp.pc]
        op_class = instr.info.op_class
        if op_class is OpClass.MEM_GLOBAL:
            if self._ldst_free > now:
                return False
            if not instr.is_store and not self.l1.mshr_available(now):
                return False
            return True
        if op_class is OpClass.MEM_SHARED:
            return self._smem_free <= now
        if op_class is OpClass.SFU:
            return self._sfu_free <= now
        return True

    def _issuable(self, warp, now: int) -> bool:
        if self.faults is not None and self.faults.warp_stalled(self.sm_id, warp, now):
            return False
        if not self.manager.is_schedulable(warp.cta, now):
            return False
        if self._status(warp, now) != ST_READY:
            return False
        return self._structural_ok(warp, now)

    # -- issue ---------------------------------------------------------------------

    def _issue(self, warp, now: int) -> None:
        cta = warp.cta
        pc = warp.pc  # functional_step advances it; keep for the sanitizer
        instr = cta.kernel.instrs[pc]
        result = functional_step(warp, instr, self.gmem)
        if self.sanitizer is not None:
            self.sanitizer.check_exec(self, warp, pc, instr, result, now)
        warp.status_until = -1
        warp.instructions_issued += 1
        self.stats.instructions += 1
        self.stats.thread_instructions += result.lanes
        by_class = self.stats.instructions_by_class
        class_key = instr._class_key
        by_class[class_key] = by_class.get(class_key, 0) + 1

        info = instr.info
        op_class = info.op_class

        if result.did_barrier:
            cta.barrier_arrive(warp, now)
            return
        if result.did_exit:
            if warp.finished:
                if cta.finished:
                    self._finish_cta(cta, now)
                else:
                    # A finished warp may be the last arrival a barrier waits for.
                    cta.check_barrier_release(now)
            return

        if result.addresses is None and info.is_mem:
            # Fully predicated-off memory op: occupies an issue slot only.
            return
        if op_class is OpClass.MEM_GLOBAL:
            self._issue_global(warp, instr, result, now)
        elif op_class is OpClass.MEM_SHARED:
            self._issue_shared(warp, instr, result, now)
        elif op_class is OpClass.SFU:
            self._sfu_free = now + self.cfg.sfu_issue_interval
            if instr.dst is not None:
                warp.scoreboard.set_pending(instr.dst.idx, now + self.cfg.lat_sfu, False)
        elif op_class is not OpClass.CTRL:
            if instr.dst is not None:
                latency = self.cfg.latency_for(op_class)
                warp.scoreboard.set_pending(instr.dst.idx, now + latency, False)

    def _issue_global(self, warp, instr, result, now: int) -> None:
        lines = coalesce(result.addresses, self.cfg.line_bytes)
        count = max(1, len(lines))
        self._ldst_free = now + count
        self.stats.global_transactions += len(lines)
        if instr.is_store:
            for i, line in enumerate(lines):
                self.l1.write(line, now + i)
            return
        access = self.l1.atomic if instr.info.is_atomic else self.l1.read
        ready = now
        if self._defer is None:
            for i, line in enumerate(lines):
                completion = access(line, now + i)
                if completion > ready:
                    ready = completion
        else:
            completions = []
            for i, line in enumerate(lines):
                completion = access(line, now + i)
                completions.append(completion)
                if completion > ready:
                    ready = completion
            self._defer.note_load(
                warp, instr.dst.idx if instr.dst is not None else None,
                now, completions)
        horizon = min(ready, now + self.cfg.max_pending_latency)
        if horizon > self.mem_horizon:
            self.mem_horizon = horizon
        if instr.dst is not None:
            is_long = ready - now >= self.cfg.vt_long_stall_threshold
            warp.scoreboard.set_pending(instr.dst.idx, ready, is_long)

    def _issue_shared(self, warp, instr, result, now: int) -> None:
        passes = bank_conflict_passes(result.addresses, self.cfg.shared_mem_banks)
        self._smem_free = now + passes
        self.stats.smem_accesses += 1
        self.stats.smem_bank_conflict_passes += passes
        if instr.dst is not None:
            latency = self.cfg.lat_smem + (passes - 1) * self.cfg.smem_bank_conflict_penalty
            warp.scoreboard.set_pending(instr.dst.idx, now + latency, False)

    # -- per-cycle step ------------------------------------------------------------

    def step(self, now: int) -> int:
        """Advance one cycle; returns the number of instructions issued
        (the launch loop's forward-progress signal)."""
        stats = self.stats
        if self.next_wake > now:
            # Provably-dead cycle: a previous zero-issue step computed the
            # next event and nothing can change before it, so the reference
            # path's per-cycle accounting collapses to O(1) bookkeeping —
            # no scheduler scan, no scoreboard reads, no manager update
            # (whose only per-cycle effect before the event is the swap
            # engine's busy credit, replicated here).
            stats.cycles += 1
            stats.issue_slots += len(self.schedulers)
            if now % _OCCUPANCY_STRIDE == 0:
                self._sample_occupancy(now)
            stats.add_idle(self._idle_kind, 1)
            if self.manager.swap_in_flight():
                stats.swap_busy_cycles += 1
            return 0
        stats.cycles += 1
        self._occ_cache = None  # a live cycle may change any sampled count
        self.manager.update(now, lambda warp: self._status(warp, now))

        issued = 0
        for scheduler in self.schedulers:
            stats.issue_slots += 1
            if not scheduler.warps:
                continue
            warp = scheduler.pick(lambda w: self._issuable(w, now))
            if warp is not None:
                self._issue(warp, now)
                issued += 1
                stats.issued_slots += 1

        if now % _OCCUPANCY_STRIDE == 0:
            self._sample_occupancy(now)
        if issued == 0:
            if self.allow_fast:
                # Prime the dead-cycle cache in the same pass that
                # classifies the idle cycle: statuses cannot change before
                # the next event, so until then steps replay this cycle's
                # accounting verbatim.
                kind, event = self._dead_scan(now)
                self._idle_kind = kind
                self.next_wake = event
                self._scan_cycle = now
            else:
                kind = self._idle_class(now)
            stats.add_idle(kind, 1)
        if self.sanitizer is not None:
            self.sanitizer.check_sm(self, now)
        return issued

    def _occ_values(self, now: int) -> tuple[int, int, int, int]:
        """The four occupancy-sample counts at ``now``, cached across dead
        spans (any step that could change them clears the cache first)."""
        values = self._occ_cache
        if values is None:
            manager = self.manager
            values = self._occ_cache = (
                len(manager.resident),
                manager.active_cta_count,
                manager.resident_warp_count(),
                manager.schedulable_warp_count(now),
            )
        return values

    def _sample_occupancy(self, now: int) -> None:
        resident, active, warps, schedulable = self._occ_values(now)
        stats = self.stats
        stats.occupancy_samples += 1
        stats.resident_cta_samples += resident
        stats.active_cta_samples += active
        stats.resident_warp_samples += warps
        stats.schedulable_warp_samples += schedulable

    def _idle_class(self, now: int) -> str:
        """Idle-classification key for a zero-issue cycle at ``now`` (one of
        :data:`repro.sim.stats.IDLE_KINDS`).  Shared by the per-cycle path
        and the fast-forward bulk credit so both engines classify a dead
        cycle identically."""
        return self._dead_scan(now)[0]

    # -- fast-forward support -----------------------------------------------------

    def next_event(self, now: int) -> int:
        """Earliest future cycle at which this SM's observable behaviour can
        change, assuming no warp issues anywhere before it.

        This is the SM's half of the next-event contract (see
        docs/ARCHITECTURE.md): the minimum over

        * the manager's own horizon (VT swap-engine phase end, inactive-CTA
          activation readiness, timeout-trigger deadlines),
        * the launch latency of CTAs seated but not yet schedulable,
        * cached warp wake times for blocked warps of schedulable CTAs
          (scoreboard release, barrier-release wake), and
        * structural-pipeline free times for READY warps that could not
          issue this cycle (LD/ST, shared-memory, SFU ports, MSHR file).

        Only valid immediately after a :meth:`step` that issued nothing:
        a READY warp that is not structurally blocked would contradict the
        zero-issue premise.  Returning too-early cycles wastes a wake-up;
        returning too-late cycles would skip a live cycle and break the
        byte-identical-stats guarantee.
        """
        return self._dead_scan(now)[1]

    def _dead_scan(self, now: int) -> tuple[str, int]:
        """One pass over resident warps computing ``(idle class, next
        event)`` for a zero-issue cycle — the hot primitive behind both
        :meth:`_idle_class` and :meth:`next_event`, fused because every
        dead-cycle discovery needs both."""
        manager = self.manager
        event = manager.next_event(now)
        n_ready = n_alu = n_mem = n_barrier = 0
        any_swap = False
        any_resident = False
        for cta in manager.resident:
            if cta.state in (CTAState.SWAP_OUT, CTAState.SWAP_IN):
                any_swap = True
            if now < cta.start_cycle:
                # Seated but still inside the dispatcher latency: nothing
                # about this CTA is observable before its start cycle.
                if cta.start_cycle < event:
                    event = cta.start_cycle
                continue
            if not manager.is_schedulable(cta, now):
                # INACTIVE/SWAP_* CTAs wake through the manager's horizon.
                continue
            for warp in cta.warps:
                status = self._status(warp, now)
                if status == ST_FINISHED:
                    continue
                any_resident = True
                if status == ST_READY:
                    n_ready += 1
                    wake = self._ready_wake(warp, now)
                    if wake < event:
                        event = wake
                else:
                    if status == ST_ALU:
                        n_alu += 1
                    elif status == ST_MEM:
                        n_mem += 1
                    else:
                        n_barrier += 1
                    if warp.status_until < event:
                        # ST_MEM/ST_ALU scoreboard release or barrier wake;
                        # warps parked *at* a barrier carry a _FOREVER
                        # horizon (they only move when another warp issues).
                        event = warp.status_until
        if not any_resident:
            kind = "swap" if any_swap else "empty"
        elif n_ready:
            kind = "struct"
        elif n_alu:
            kind = "alu"
        elif n_mem:
            kind = "mem"
        elif n_barrier:
            kind = "barrier"
        else:  # pragma: no cover - defensive
            kind = "empty"
        return kind, event

    def reprime_after_patch(self) -> None:
        """Recompute ``(idle kind, next_wake)`` after an epoch-boundary
        completion patch (parallel engine only).

        The SM's state has been frozen since the zero-issue step at
        ``_scan_cycle`` (every later cycle took the O(1) dead path), so
        re-running the scan *as of that cycle* against the now-exact
        scoreboard/MSHR values reproduces exactly what the serial engine's
        scan computed there."""
        kind, event = self._dead_scan(self._scan_cycle)
        self._idle_kind = kind
        self.next_wake = event

    def _ready_wake(self, warp, now: int) -> int:
        """When a READY-but-unissued warp's structural hazard clears."""
        instr = warp.cta.kernel.instrs[warp.pc]
        op_class = instr.info.op_class
        if op_class is OpClass.MEM_GLOBAL:
            wake = self._ldst_free
            if not instr.is_store:
                mshr_free = self.l1.earliest_mshr_free(now)
                if mshr_free > wake:
                    wake = mshr_free
            return max(wake, now + 1)
        if op_class is OpClass.MEM_SHARED:
            return max(self._smem_free, now + 1)
        if op_class is OpClass.SFU:
            return max(self._sfu_free, now + 1)
        return now + 1  # pragma: no cover - a hazard-free READY warp issues

    def fast_forward(self, start: int, stop: int) -> None:
        """Credit cycles ``[start, stop)`` as verified-dead cycles.

        The caller (the fast-forward engine in :meth:`GPU.launch`)
        guarantees no event falls inside the span, so every per-cycle
        quantity is constant across it and the reference engine's
        cycle-by-cycle accounting collapses to arithmetic: cycle and
        issue-slot counters, occupancy samples on the
        ``_OCCUPANCY_STRIDE`` grid, one idle class for the whole span, and
        the VT swap engine's per-cycle busy credit."""
        span = stop - start
        stats = self.stats
        manager = self.manager
        stats.cycles += span
        stats.issue_slots += len(self.schedulers) * span
        samples = (stop - 1) // _OCCUPANCY_STRIDE - (start - 1) // _OCCUPANCY_STRIDE
        if samples:
            resident, active, warps, schedulable = self._occ_values(start)
            stats.occupancy_samples += samples
            stats.resident_cta_samples += samples * resident
            stats.active_cta_samples += samples * active
            stats.resident_warp_samples += samples * warps
            stats.schedulable_warp_samples += samples * schedulable
        stats.add_idle(self._idle_kind, span)
        if manager.swap_in_flight():
            # update() adds one busy cycle per cycle while a switch phase
            # is draining; the span never crosses a phase boundary.
            stats.swap_busy_cycles += span
