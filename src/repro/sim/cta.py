"""Cooperative Thread Array (CTA) state.

A CTA owns its warps, its shared-memory scratchpad and its barrier state.
Under Virtual Thread a CTA additionally carries a lifecycle state: ACTIVE
CTAs occupy scheduling structures and may issue; INACTIVE CTAs keep their
registers and shared memory resident but cannot issue; SWAP_OUT/SWAP_IN
model the cycles the swap engine spends saving/restoring the (small)
scheduling state.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.isa.instruction import SpecialReg
from repro.sim.memory import SharedMemory
from repro.sim.warp import Warp


class CTAState(enum.Enum):
    ACTIVE = "active"
    INACTIVE = "inactive"
    SWAP_OUT = "swap_out"
    SWAP_IN = "swap_in"
    FINISHED = "finished"


class CTA:
    """One resident CTA on an SM."""

    def __init__(self, cta_id: int, ctaid: tuple[int, int, int], kernel, grid_dim,
                 params: tuple[float, ...], cfg, start_cycle: int):
        self.cta_id = cta_id
        self.ctaid = ctaid
        self.kernel = kernel
        self.cfg = cfg
        self.state = CTAState.ACTIVE
        self.state_until = 0  # swap-engine busy horizon for SWAP_* states
        self.start_cycle = start_cycle
        self.smem = SharedMemory(kernel.smem_bytes)
        self.times_swapped_out = 0
        self.became_inactive_at = start_cycle
        self.stall_since: int | None = None  # for the "timeout" trigger policy

        threads = kernel.threads_per_cta
        warp_size = cfg.warp_size
        num_warps = -(-threads // warp_size)
        self.warps: list[Warp] = []
        for w in range(num_warps):
            live = min(warp_size, threads - w * warp_size)
            warp = Warp(self, w, kernel.regs_per_thread, live, warp_size)
            warp.sregs = self._special_regs(warp, w, ctaid, kernel, grid_dim, params)
            self.warps.append(warp)

    @staticmethod
    def _special_regs(warp: Warp, local_wid: int, ctaid, kernel, grid_dim, params):
        ntid_x, ntid_y, ntid_z = kernel.cta_dim
        lanes = np.arange(32, dtype=np.float64)
        linear = local_wid * 32 + lanes
        sregs = {
            SpecialReg.TID_X: linear % ntid_x,
            SpecialReg.TID_Y: (linear // ntid_x) % ntid_y,
            SpecialReg.TID_Z: linear // (ntid_x * ntid_y),
            SpecialReg.CTAID_X: np.full(32, float(ctaid[0])),
            SpecialReg.CTAID_Y: np.full(32, float(ctaid[1])),
            SpecialReg.CTAID_Z: np.full(32, float(ctaid[2])),
            SpecialReg.NTID_X: np.full(32, float(ntid_x)),
            SpecialReg.NTID_Y: np.full(32, float(ntid_y)),
            SpecialReg.NTID_Z: np.full(32, float(ntid_z)),
            SpecialReg.NCTAID_X: np.full(32, float(grid_dim[0])),
            SpecialReg.NCTAID_Y: np.full(32, float(grid_dim[1])),
            SpecialReg.NCTAID_Z: np.full(32, float(grid_dim[2])),
            SpecialReg.LANEID: lanes.copy(),
            SpecialReg.WARPID: np.full(32, float(local_wid)),
        }
        param_kinds = (
            SpecialReg.PARAM0, SpecialReg.PARAM1, SpecialReg.PARAM2, SpecialReg.PARAM3,
            SpecialReg.PARAM4, SpecialReg.PARAM5, SpecialReg.PARAM6, SpecialReg.PARAM7,
        )
        for i, kind in enumerate(param_kinds):
            value = float(params[i]) if i < len(params) else 0.0
            sregs[kind] = np.full(32, value)
        return sregs

    # -- resource footprint (what the allocators charge) -----------------------

    @property
    def regs_needed(self) -> int:
        return self.kernel.regs_per_thread * self.kernel.threads_per_cta

    @property
    def smem_needed(self) -> int:
        return self.kernel.smem_bytes

    @property
    def num_warps(self) -> int:
        return len(self.warps)

    # -- lifecycle ---------------------------------------------------------------

    @property
    def finished(self) -> bool:
        return all(w.finished for w in self.warps)

    def schedulable_now(self, now: int) -> bool:
        """Whether this CTA's warps may issue this cycle (VT state + launch)."""
        return self.state is CTAState.ACTIVE and now >= self.start_cycle

    # -- barrier ------------------------------------------------------------------

    def barrier_arrive(self, warp: Warp, now: int) -> bool:
        """Warp reached a BAR; returns True if the barrier released."""
        warp.at_barrier = True
        return self.check_barrier_release(now)

    def check_barrier_release(self, now: int) -> bool:
        """Release the barrier if every unfinished warp has arrived."""
        waiting = [w for w in self.warps if not w.finished]
        if not waiting or not all(w.at_barrier for w in waiting):
            return False
        wake = now + self.cfg.barrier_release_latency
        for warp in waiting:
            warp.at_barrier = False
            warp.barrier_wake = wake
            warp.status_until = -1  # invalidate status cache
        return True

    # -- Virtual Thread readiness ----------------------------------------------

    def ready_for_activation(self, now: int) -> bool:
        """An inactive CTA is ready when some warp could make progress:
        it is unfinished, not parked at a barrier, and has no outstanding
        global-load dependence."""
        for warp in self.warps:
            if warp.finished or warp.at_barrier:
                continue
            if not warp.scoreboard.has_mem_pending(now):
                return True
        return False

    def __repr__(self) -> str:
        return f"CTA({self.cta_id}, {self.state.value}, warps={self.num_warps})"
