"""Simulator configuration.

Defaults model a Fermi (GTX 480)-class streaming multiprocessor, the
baseline of the Virtual Thread paper: 48 warp slots and 8 CTA slots per SM
(the *scheduling limit*), a 128 KiB register file (32 K 4-byte registers)
and 48 KiB of shared memory per SM (the *capacity limit*).

The default SM count is small (the paper's GTX 480 has 15): Virtual Thread
is a per-SM mechanism and its gains are SM-local, so simulating fewer SMs
with proportionally scaled L2/DRAM bandwidth preserves the experiment shape
while keeping pure-Python runtimes tractable.  ``scaled_fermi()`` documents
that scaling in one place.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.isa.opcodes import OpClass


class ArchMode:
    """Architecture variants compared in the paper's evaluation."""

    BASELINE = "baseline"  # stock GPU: scheduling limit enforced
    VT = "vt"  # Virtual Thread: capacity-limit CTAs, active/inactive swap
    IDEAL_SCHED = "ideal-sched"  # scheduling structures enlarged for free (upper bound)

    ALL = (BASELINE, VT, IDEAL_SCHED)


@dataclass
class GPUConfig:
    """All tunables of the timing model, with Fermi-class defaults."""

    # ---- chip-level -------------------------------------------------------
    num_sms: int = 2
    warp_size: int = 32

    # ---- scheduling limit (per SM) ---------------------------------------
    max_warps_per_sm: int = 48
    max_ctas_per_sm: int = 8
    num_warp_schedulers: int = 2
    warp_scheduler: str = "gto"  # "lrr" | "gto" | "two-level"

    # ---- capacity limit (per SM) -----------------------------------------
    registers_per_sm: int = 32768  # 4-byte registers (128 KiB register file)
    smem_per_sm: int = 49152  # bytes of shared memory
    max_threads_per_sm: int = 1536

    # ---- architecture mode -------------------------------------------------
    arch: str = ArchMode.BASELINE

    # ---- Virtual Thread parameters -----------------------------------------
    #: Hard cap on resident CTAs under VT, as a multiple of the active limit
    #: (bounds the backup-SRAM provisioning; capacity usually binds first).
    vt_max_resident_multiplier: float = 4.0
    #: Cycles to save one CTA's scheduling state (PCs + SIMT stacks + barrier).
    vt_swap_out_base: int = 2
    vt_swap_out_per_warp: int = 1
    #: Cycles to restore the incoming CTA's scheduling state.
    vt_swap_in_base: int = 2
    vt_swap_in_per_warp: int = 1
    #: Swap-trigger policy: "all-stalled" (paper), "majority-stalled",
    #: or "timeout".
    vt_trigger_policy: str = "all-stalled"
    #: For the "timeout" policy: cycles a CTA must stay fully stalled.
    vt_trigger_timeout: int = 16
    #: Incoming-CTA selection: "oldest-ready" (paper-style FIFO),
    #: "most-ready", or "most-recent" (LIFO, cache-locality-aware extension).
    vt_select_policy: str = "oldest-ready"
    #: A stalled warp only counts as *long-latency* stalled (and thus feeds
    #: the swap trigger) when its blocking load's total latency is at least
    #: this many cycles — i.e. it missed in L1.  Hardware detects this from
    #: the miss going out to the interconnect.
    vt_long_stall_threshold: int = 40

    # ---- execution latencies (cycles until dependants may issue) ----------
    lat_alu: int = 4
    lat_mul: int = 6
    lat_fpu: int = 6
    lat_sfu: int = 20
    lat_smem: int = 24
    smem_bank_conflict_penalty: int = 2
    sfu_issue_interval: int = 8  # SFU throughput: one warp per 8 cycles

    # ---- memory hierarchy ---------------------------------------------------
    line_bytes: int = 128
    l1_size: int = 16384
    l1_assoc: int = 4
    l1_hit_latency: int = 28
    l1_mshrs: int = 64
    icnt_latency: int = 24  # one-way SM <-> L2
    l2_size: int = 131072  # scaled with num_sms (GTX480: 768 KiB / 15 SMs)
    l2_assoc: int = 8
    l2_hit_latency: int = 96
    l2_service_cycles: int = 2  # inverse L2 port bandwidth per line
    dram_channels: int = 2  # scaled (GTX480: 6 channels / 15 SMs)
    dram_latency: int = 400
    dram_service_cycles: int = 8  # inverse per-channel bandwidth per line
    shared_mem_banks: int = 32

    # ---- misc ---------------------------------------------------------------
    #: Grid->SM assignment: "round-robin" (GigaThread-style, default) or
    #: "fill-first" (pack SMs in order; useful to study load imbalance).
    cta_dispatch: str = "round-robin"
    cta_launch_latency: int = 20  # dispatcher latency to seat a new CTA
    barrier_release_latency: int = 1
    max_cycles: int = 5_000_000  # hard watchdog: absolute cycle budget

    # ---- simulation engine --------------------------------------------------
    #: Event-driven fast-forward: when no scheduler can issue, jump straight
    #: to the earliest next event across SMs (warp wake, structural-pipe
    #: free, barrier release, swap-phase end, CTA start) and bulk-credit the
    #: skipped span into the idle/occupancy counters.  Statistics are
    #: byte-identical to the per-cycle reference path (asserted by
    #: tests/test_fastforward_equivalence.py); only wall-clock time changes.
    #: The sanitizer, fault injection, and tracers pin the reference path
    #: regardless of this flag, since they observe individual cycles.
    fast_forward: bool = True
    #: Simulation engine: "serial" (the historical single-loop engine) or
    #: "parallel" (the sharded epoch engine in :mod:`repro.sim.parallel`,
    #: byte-identical stats, faster on multi-SM configs).  The parallel
    #: engine falls back to serial whenever a feature pins per-cycle
    #: observation (sanitizer, fault plans, tracers) or the epoch length
    #: would be degenerate for the configured latencies.
    engine: str = "serial"
    #: Worker shards for the parallel engine: 1 runs every shard inline in
    #: this process (no IPC; still gains per-SM epoch fast-forwarding),
    #: >1 forks that many worker processes, each owning a slice of the SMs.
    sim_jobs: int = 1

    # ---- robustness ---------------------------------------------------------
    #: Run the per-cycle invariant sanitizer (see :mod:`repro.sim.sanitizer`).
    #: Off by default: it costs simulation speed, not correctness.
    sanitize: bool = False
    #: Progress watchdog: a launch that makes no forward progress (no issue,
    #: no dispatch, no swap in flight, no memory response outstanding) for
    #: this many consecutive cycles raises ``ProgressDeadlock`` with a
    #: diagnostic dump.  0 disables.  Kept well below ``max_cycles`` so
    #: hangs are diagnosed early.
    progress_window: int = 50_000
    #: No legitimate memory response completes further than this many cycles
    #: in the future; pending entries beyond it are flagged as lost by the
    #: sanitizer and ignored by the progress watchdog's in-flight check.
    max_pending_latency: int = 100_000

    def latency_for(self, op_class: OpClass) -> int:
        """Dependency-visible latency for a non-memory op class."""
        # Built lazily and stored outside the dataclass fields: this sits
        # on the per-instruction issue path, and the latencies are fixed
        # once a config is in use (``with_`` builds a fresh instance).
        table = self.__dict__.get("_lat_table")
        if table is None:
            table = self.__dict__["_lat_table"] = {
                OpClass.ALU: self.lat_alu,
                OpClass.MUL: self.lat_mul,
                OpClass.FPU: self.lat_fpu,
                OpClass.SFU: self.lat_sfu,
                OpClass.CTRL: 1,
            }
        return table[op_class]

    def with_(self, **overrides) -> "GPUConfig":
        """A copy of this config with ``overrides`` applied."""
        return dataclasses.replace(self, **overrides)

    @property
    def vt_swap_cycles_for(self):
        """(save, restore) cycles for a CTA with ``w`` warps as a callable."""

        def cycles(num_warps: int) -> tuple[int, int]:
            save = self.vt_swap_out_base + self.vt_swap_out_per_warp * num_warps
            restore = self.vt_swap_in_base + self.vt_swap_in_per_warp * num_warps
            return save, restore

        return cycles

    def validate(self) -> None:
        # Drop the memoized latency table in case fields were mutated in
        # place between validations (tests do this; real callers use with_).
        self.__dict__.pop("_lat_table", None)
        if self.warp_size <= 0 or self.warp_size > 32:
            raise ValueError("warp_size must be in 1..32")
        if self.num_sms <= 0:
            raise ValueError("need at least one SM")
        if self.max_ctas_per_sm <= 0 or self.max_warps_per_sm <= 0:
            raise ValueError("scheduling limits must be positive")
        if self.line_bytes < 32 or self.line_bytes & (self.line_bytes - 1):
            raise ValueError("line size must be a power of two >= 32")
        if self.arch not in ArchMode.ALL:
            raise ValueError(f"unknown arch {self.arch!r}; choose from {ArchMode.ALL}")
        if self.vt_trigger_policy not in ("all-stalled", "majority-stalled", "timeout"):
            raise ValueError(f"unknown vt_trigger_policy {self.vt_trigger_policy!r}")
        if self.vt_select_policy not in ("oldest-ready", "most-ready", "most-recent"):
            raise ValueError(f"unknown vt_select_policy {self.vt_select_policy!r}")
        if self.cta_dispatch not in ("round-robin", "fill-first"):
            raise ValueError(f"unknown cta_dispatch {self.cta_dispatch!r}")
        if self.progress_window < 0:
            raise ValueError("progress_window must be >= 0 (0 disables)")
        if self.max_pending_latency <= 0:
            raise ValueError("max_pending_latency must be positive")
        if self.engine not in ("serial", "parallel"):
            raise ValueError(f"unknown engine {self.engine!r}; choose 'serial' or 'parallel'")
        if self.sim_jobs <= 0:
            raise ValueError("sim_jobs must be >= 1")


def fermi_config(**overrides) -> GPUConfig:
    """The paper's GTX 480-class configuration (full 15-SM chip)."""
    cfg = GPUConfig(
        num_sms=15,
        l2_size=786432,
        dram_channels=6,
    )
    return cfg.with_(**overrides)


def kepler_config(**overrides) -> GPUConfig:
    """A Kepler (K20)-class configuration (extension experiment X2).

    Kepler doubles most scheduling structures over Fermi (64 warp slots,
    16 CTA slots, 2048 thread slots) and doubles the register file.  Small
    CTAs are *still* scheduling-limited here, so Virtual Thread's argument
    carries forward a generation.
    """
    cfg = GPUConfig(
        num_sms=13,
        max_warps_per_sm=64,
        max_ctas_per_sm=16,
        max_threads_per_sm=2048,
        registers_per_sm=65536,
        num_warp_schedulers=4,
        l2_size=1572864,
        dram_channels=5,
    )
    return cfg.with_(**overrides)


def scaled_kepler(num_sms: int = 2, **overrides) -> GPUConfig:
    """Kepler-class SM with chip resources scaled to ``num_sms``."""
    full = kepler_config()
    scale = num_sms / full.num_sms
    cfg = full.with_(
        num_sms=num_sms,
        l2_size=max(65536, int(full.l2_size * scale) // 65536 * 65536 or 65536),
        dram_channels=max(1, round(full.dram_channels * scale)),
    )
    return cfg.with_(**overrides)


def scaled_fermi(num_sms: int = 2, **overrides) -> GPUConfig:
    """Fermi-class SM with chip resources scaled to ``num_sms``.

    Per-SM parameters are untouched; L2 capacity and DRAM channel count are
    scaled proportionally so per-SM memory bandwidth and cache share match
    the full chip.  This is the default configuration of the experiment
    harness.
    """
    full = fermi_config()
    scale = num_sms / full.num_sms
    cfg = full.with_(
        num_sms=num_sms,
        l2_size=max(65536, int(full.l2_size * scale) // 65536 * 65536 or 65536),
        dram_channels=max(1, round(full.dram_channels * scale)),
    )
    return cfg.with_(**overrides)
