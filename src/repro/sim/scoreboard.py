"""Per-warp register scoreboard.

Tracks which registers have an in-flight producer and when they become
readable.  Entries additionally remember whether the producer was a
*global-memory* operation: that provenance is what classifies a stalled
warp as "long-latency stalled", the condition Virtual Thread's swap
trigger is built on.
"""

from __future__ import annotations


class Scoreboard:
    """Register -> (ready_cycle, produced_by_global_load) for one warp."""

    __slots__ = ("_pending", "_mem_pending_until")

    def __init__(self):
        self._pending: dict[int, tuple[int, bool]] = {}
        self._mem_pending_until = 0

    def set_pending(self, reg: int, ready_cycle: int, is_global: bool) -> None:
        self._pending[reg] = (ready_cycle, is_global)
        if is_global and ready_cycle > self._mem_pending_until:
            self._mem_pending_until = ready_cycle

    def _purge(self, now: int) -> None:
        if not self._pending:
            return
        expired = [r for r, (t, _g) in self._pending.items() if t <= now]
        for reg in expired:
            del self._pending[reg]

    def blocking(self, instr, now: int) -> tuple[int, bool]:
        """(latest blocking ready-cycle, blocked-by-global?) for ``instr``.

        Returns ``(now, False)`` when the instruction can issue.  Both the
        sources and the destination are checked: the destination must be
        free to preserve in-order write semantics (WAW) within a warp.
        """
        pending = self._pending
        if not pending:
            return now, False
        latest = now
        any_global = False
        # Expired entries are skipped in place rather than purged: the dict
        # is bounded by the registers the kernel ever writes, and skipping
        # matches what purge-then-scan computed.
        for reg in instr._hazard_regs:
            entry = pending.get(reg)
            if entry is None or entry[0] <= now:
                continue
            if entry[0] > latest:
                latest = entry[0]
                # classify by the *latest* blocker: it dominates the stall
                any_global = entry[1]
            elif entry[1]:
                any_global = True
        return latest, any_global

    def mem_pending_until(self) -> int:
        """Latest outstanding global-load completion (0 if none ever)."""
        return self._mem_pending_until

    def has_mem_pending(self, now: int) -> bool:
        return self._mem_pending_until > now

    def outstanding(self, now: int) -> dict[int, tuple[int, bool]]:
        """Snapshot of still-pending registers (for tests/inspection)."""
        self._purge(now)
        return dict(self._pending)
