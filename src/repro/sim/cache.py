"""Set-associative cache tag arrays with MSHR-style miss merging.

Timing is modeled with *completion times* rather than cycle-by-cycle
queues: when a miss is sent down the hierarchy, the lower level computes
the cycle at which the fill returns (including queueing delay from
bandwidth contention), and the line is recorded as *pending* until then.
Subsequent accesses to a pending line merge (MSHR behaviour) and complete
at the same time.  Tags are installed at request time — a standard
simplification that keeps hit/miss classification deterministic.
"""

from __future__ import annotations


class SetAssocCache:
    """Tag-only set-associative LRU cache (line granularity)."""

    def __init__(self, size_bytes: int, assoc: int, line_bytes: int):
        if size_bytes % (assoc * line_bytes):
            raise ValueError("cache size must be a multiple of assoc * line size")
        self.line_bytes = line_bytes
        self.assoc = assoc
        self.num_sets = size_bytes // (assoc * line_bytes)
        # set index -> {line_addr: lru_stamp}
        self._sets: list[dict[int, int]] = [dict() for _ in range(self.num_sets)]
        self._stamp = 0
        self.accesses = 0
        self.hits = 0

    def _set_for(self, line_addr: int) -> dict[int, int]:
        return self._sets[(line_addr // self.line_bytes) % self.num_sets]

    def probe(self, line_addr: int) -> bool:
        """Hit/miss without side effects."""
        return line_addr in self._set_for(line_addr)

    def access(self, line_addr: int) -> bool:
        """Look up and touch; on miss, allocate (evicting LRU). True = hit."""
        self.accesses += 1
        self._stamp += 1
        cache_set = self._set_for(line_addr)
        if line_addr in cache_set:
            cache_set[line_addr] = self._stamp
            self.hits += 1
            return True
        if len(cache_set) >= self.assoc:
            victim = min(cache_set, key=cache_set.get)
            del cache_set[victim]
        cache_set[line_addr] = self._stamp
        return False

    def invalidate(self, line_addr: int) -> None:
        self._set_for(line_addr).pop(line_addr, None)

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class L1Cache:
    """Per-SM L1 data cache: write-through, no write-allocate, with MSHRs.

    ``read`` returns the cycle at which the loaded data is usable.  Misses
    are forwarded to the chip-level :class:`repro.sim.memsys.MemoryModel`.
    """

    def __init__(self, cfg, memory_model, sm_id: int, faults=None):
        self.cfg = cfg
        self.tags = SetAssocCache(cfg.l1_size, cfg.l1_assoc, cfg.line_bytes)
        self.memory_model = memory_model
        self.sm_id = sm_id
        self.faults = faults  # optional FaultPlan filtering fill responses
        # line_addr -> fill completion cycle (the MSHR file)
        self.pending: dict[int, int] = {}
        # Latest fill completion ever recorded; monotonic, so the sanitizer
        # can detect a lost response in O(1) (a legitimate fill is never
        # more than the memory system's worst latency in the future).
        self.max_fill_completion = 0

    def _purge(self, now: int) -> None:
        if not self.pending:
            return
        done = [line for line, t in self.pending.items() if t <= now]
        for line in done:
            del self.pending[line]

    def mshr_available(self, now: int) -> bool:
        self._purge(now)
        return len(self.pending) < self.cfg.l1_mshrs

    def earliest_mshr_free(self, now: int) -> int:
        self._purge(now)
        if len(self.pending) < self.cfg.l1_mshrs:
            return now
        return min(self.pending.values())

    def read(self, line_addr: int, now: int) -> int:
        """A load transaction for one line; returns data-ready cycle."""
        self._purge(now)
        pending = self.pending.get(line_addr)
        if pending is not None:
            # MSHR merge: ride the in-flight fill.
            return max(pending, now + self.cfg.l1_hit_latency)
        if self.tags.access(line_addr):
            return now + self.cfg.l1_hit_latency
        completion = self.memory_model.read(line_addr, now)
        if self.faults is not None:
            completion = self.faults.filter_fill(self.sm_id, line_addr, now, completion)
        self.pending[line_addr] = completion
        if completion > self.max_fill_completion:
            self.max_fill_completion = completion
        return completion

    def write(self, line_addr: int, now: int) -> int:
        """A store transaction: write-through to L2, no L1 allocate."""
        self._purge(now)
        if self.tags.probe(line_addr):
            self.tags.access(line_addr)  # update data in place (tag touch)
        return self.memory_model.write(line_addr, now)

    def atomic(self, line_addr: int, now: int) -> int:
        """Atomics bypass L1 and execute at L2 (GPU-typical)."""
        self.tags.invalidate(line_addr)  # keep L1 coherent with L2 RMW
        return self.memory_model.read(line_addr, now)
