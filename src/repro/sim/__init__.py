"""Cycle-level SIMT GPU timing model.

The simulator is execution-driven: kernels compute real values through the
functional executor while the timing model tracks cycles, so every timing
run doubles as a correctness check.  The model follows the structure the
Virtual Thread paper assumes (a GPGPU-Sim-like Fermi-class SM):

* per-SM warp slots with SIMT reconvergence stacks and scoreboards,
* multiple warp schedulers (LRR / GTO / two-level),
* a coalescing LD/ST unit in front of a per-SM L1, a shared L2 and a
  banked, bandwidth-limited DRAM model,
* a CTA dispatcher that enforces the scheduling and capacity limits.
"""

from repro.sim.config import GPUConfig
from repro.sim.faults import FaultPlan
from repro.sim.gpu import GPU, LaunchResult, ProgressDeadlock, SimulationTimeout
from repro.sim.memory import GlobalMemory
from repro.sim.sanitizer import InvariantViolation, Sanitizer
from repro.sim.stats import SimStats

__all__ = [
    "GPUConfig",
    "GPU",
    "LaunchResult",
    "GlobalMemory",
    "SimStats",
    "FaultPlan",
    "SimulationTimeout",
    "ProgressDeadlock",
    "InvariantViolation",
    "Sanitizer",
]
