"""Interconnect between the SMs and the memory partitions.

Modeled as a latency + bandwidth link: every packet pays a fixed one-way
latency, and the shared injection port serializes packets at a fixed rate.
The same completion-time bookkeeping as the DRAM model applies.
"""

from __future__ import annotations


class Link:
    """A shared latency/bandwidth link (one direction)."""

    def __init__(self, latency: int, service_cycles: int = 1):
        self.latency = latency
        self.service_cycles = service_cycles
        self._next_free = 0
        self.packets = 0

    def traverse(self, now: int) -> int:
        """Inject a packet at ``now``; returns its arrival cycle."""
        start = max(now, self._next_free)
        self._next_free = start + self.service_cycles
        self.packets += 1
        return start + self.latency

    @property
    def min_traversal(self) -> int:
        """Lower bound on ``traverse(now) - now``: the fixed latency, with
        zero queueing.  Queueing only ever *delays* arrival (``start >=
        now``), never accelerates it — the invariant
        ``repro.sim.memsys.min_cross_rtt`` builds the parallel engine's
        epoch bound on.  Any future link feature that could undercut the
        fixed latency (cut-through, speculation) must lower this bound
        with it."""
        return self.latency
