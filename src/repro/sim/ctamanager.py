"""CTA residency managers: baseline and ideal-scheduling architectures.

A manager decides (a) whether the SM can accept one more CTA of a kernel,
and (b) which resident CTAs are allowed to use the warp schedulers.  The
baseline enforces both the scheduling limit and the capacity limit; the
*ideal-sched* variant models scheduling structures enlarged to the
capacity limit at zero cost (the paper's upper bound).  The Virtual Thread
manager lives with the paper's contribution in :mod:`repro.core.vt`.
"""

from __future__ import annotations

from repro.sim.cta import CTA, CTAState

#: "No event scheduled": a cycle count no simulation ever reaches.
FOREVER = 1 << 60


class ResourceAccounting:
    """Per-SM register/shared-memory/warp-slot bookkeeping."""

    def __init__(self, cfg):
        self.cfg = cfg
        self.regs_used = 0
        self.smem_used = 0
        self.warps_used = 0
        self.threads_used = 0

    def charge(self, kernel) -> None:
        self.regs_used += kernel.regs_per_thread * kernel.threads_per_cta
        self.smem_used += kernel.smem_bytes
        self.warps_used += kernel.warps_per_cta(self.cfg.warp_size)
        self.threads_used += kernel.threads_per_cta

    def release(self, cta: CTA) -> None:
        kernel = cta.kernel
        self.regs_used -= kernel.regs_per_thread * kernel.threads_per_cta
        self.smem_used -= kernel.smem_bytes
        self.warps_used -= kernel.warps_per_cta(self.cfg.warp_size)
        self.threads_used -= kernel.threads_per_cta

    def capacity_fits(self, kernel) -> bool:
        """The paper's *capacity limit*: register file + shared memory."""
        cfg = self.cfg
        return (
            self.regs_used + kernel.regs_per_thread * kernel.threads_per_cta <= cfg.registers_per_sm
            and self.smem_used + kernel.smem_bytes <= cfg.smem_per_sm
        )

    def sched_fits(self, kernel, resident_ctas: int) -> bool:
        """The paper's *scheduling limit*: CTA slots, warp slots, threads."""
        cfg = self.cfg
        return (
            resident_ctas < cfg.max_ctas_per_sm
            and self.warps_used + kernel.warps_per_cta(cfg.warp_size) <= cfg.max_warps_per_sm
            and self.threads_used + kernel.threads_per_cta <= cfg.max_threads_per_sm
        )


class CTAManagerBase:
    """Interface shared by baseline, ideal-sched and VT managers."""

    def __init__(self, cfg, stats):
        self.cfg = cfg
        self.stats = stats
        self.resources = ResourceAccounting(cfg)
        self.resident: list[CTA] = []
        self.faults = None  # optional FaultPlan, attached by the SM core
        self.sm_id = -1  # set by the owning SM core

    # -- admission ---------------------------------------------------------------

    def can_accept(self, kernel) -> bool:
        raise NotImplementedError

    def on_assign(self, cta: CTA, now: int) -> None:
        self.resources.charge(cta.kernel)
        self.resident.append(cta)

    def on_cta_finish(self, cta: CTA, now: int) -> None:
        cta.state = CTAState.FINISHED
        self.resources.release(cta)
        self.resident.remove(cta)
        self.stats.ctas_completed += 1

    # -- per-cycle hooks -----------------------------------------------------------

    def update(self, now: int, warp_status) -> None:
        """Called once per cycle before issue; ``warp_status(warp)`` returns
        the cached status code (see :mod:`repro.sim.smcore`)."""

    def is_schedulable(self, cta: CTA, now: int) -> bool:
        return cta.schedulable_now(now)

    def next_event(self, now: int) -> int:
        """Earliest future cycle at which this manager, given that no warp
        issues anywhere before it, would do anything observable in
        :meth:`update` (state transition, swap-busy accounting, promotion).

        The base managers are purely reactive — their ``update`` is a
        no-op — so they never schedule an event.  The fast-forward engine
        (:meth:`repro.sim.gpu.GPU.launch`) folds this horizon into the SM's
        next-event cycle; returning an *earlier* cycle than necessary is
        merely a wasted wake-up, returning a *later* one breaks the
        byte-identical-stats guarantee.
        """
        return FOREVER

    def swap_in_flight(self) -> bool:
        """Whether a context switch is busy (always False without VT);
        counts as forward progress for the deadlock watchdog."""
        return False

    # -- occupancy reporting ---------------------------------------------------

    @property
    def active_cta_count(self) -> int:
        return sum(1 for c in self.resident if c.state is CTAState.ACTIVE)

    def schedulable_warp_count(self, now: int) -> int:
        return sum(
            1
            for cta in self.resident
            if self.is_schedulable(cta, now)
            for w in cta.warps
            if not w.finished
        )

    def resident_warp_count(self) -> int:
        return sum(1 for cta in self.resident for w in cta.warps if not w.finished)


class BaselineManager(CTAManagerBase):
    """Stock GPU: both scheduling and capacity limits enforced; every
    resident CTA is active."""

    def can_accept(self, kernel) -> bool:
        return self.resources.capacity_fits(kernel) and self.resources.sched_fits(
            kernel, len(self.resident)
        )


class IdealSchedManager(CTAManagerBase):
    """Upper bound: scheduling structures magically enlarged to the capacity
    limit — CTAs are admitted while registers and shared memory fit, and all
    of them are active with no swap cost.

    The thread/warp-slot limits are lifted entirely; only the max-CTA count
    is bounded by a generous multiple to keep the model finite.
    """

    def can_accept(self, kernel) -> bool:
        hard_cap = self.cfg.max_ctas_per_sm * 16
        return self.resources.capacity_fits(kernel) and len(self.resident) < hard_cap
