"""Chip top level: CTA dispatcher, SM array, shared memory system.

:class:`GPU` is the public simulation entry point::

    gpu = GPU(scaled_fermi(num_sms=2, arch="vt"))
    gmem = GlobalMemory()
    ... allocate/write buffers ...
    result = gpu.launch(kernel, grid_dim=(64, 1, 1), gmem=gmem,
                        params=(gmem.base("a"), gmem.base("b")))
    print(result.stats.summary())

Each launch builds a fresh chip state (cold caches), making runs
reproducible and architecture comparisons fair.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.kernel import Kernel
from repro.sim.config import ArchMode, GPUConfig
from repro.sim.cta import CTA
from repro.sim.memory import GlobalMemory
from repro.sim.memsys import MemoryModel
from repro.sim.sanitizer import ProgressTracker, Sanitizer, diagnostic_dump
from repro.sim.smcore import SMCore
from repro.sim.stats import SimStats


class SimulationTimeout(RuntimeError):
    """The hard watchdog fired: the launch did not finish within max_cycles.

    ``dump`` carries the deadlock-forensics snapshot taken when the limit
    was hit (see :func:`repro.sim.sanitizer.diagnostic_dump`).
    """

    def __init__(self, message: str, dump: str | None = None):
        super().__init__(message)
        self.dump = dump


class ProgressDeadlock(SimulationTimeout):
    """The progress watchdog fired: no SM made forward progress for
    ``progress_window`` consecutive cycles.  Raised long before
    ``max_cycles``, with the same forensic ``dump`` attached — a true
    deadlock never gets better with a bigger cycle budget."""


@dataclass
class LaunchResult:
    """Outcome of one kernel launch."""

    stats: SimStats
    gmem: GlobalMemory
    kernel: Kernel
    grid_dim: tuple[int, int, int]

    def read(self, name: str, num_words: int | None = None):
        """Read a result buffer from global memory."""
        return self.gmem.read(name, num_words)


def _manager_factory(arch: str):
    if arch == ArchMode.BASELINE:
        from repro.sim.ctamanager import BaselineManager

        return BaselineManager
    if arch == ArchMode.IDEAL_SCHED:
        from repro.sim.ctamanager import IdealSchedManager

        return IdealSchedManager
    if arch == ArchMode.VT:
        from repro.core.vt import VirtualThreadManager

        return VirtualThreadManager
    raise ValueError(f"unknown arch {arch!r}")


class GPU:
    """A simulated GPU; construct once per configuration, launch many."""

    def __init__(self, cfg: GPUConfig | None = None):
        self.cfg = cfg or GPUConfig()
        self.cfg.validate()

    def launch(
        self,
        kernel: Kernel,
        grid_dim,
        gmem: GlobalMemory | None = None,
        params: tuple[float, ...] = (),
        max_cycles: int | None = None,
        tracer=None,
        faults=None,
    ) -> LaunchResult:
        """Run ``kernel`` over ``grid_dim`` CTAs to completion.

        ``faults`` optionally injects failures (:class:`repro.sim.faults.FaultPlan`);
        with ``cfg.sanitize`` the per-cycle invariant sanitizer runs too.
        """
        cfg = self.cfg
        grid = self._normalize_grid(grid_dim)
        total_ctas = grid[0] * grid[1] * grid[2]
        if total_ctas <= 0:
            raise ValueError(f"empty grid {grid}")
        self._check_kernel_fits(kernel)

        gmem = gmem if gmem is not None else GlobalMemory(line_bytes=cfg.line_bytes)
        limit = max_cycles if max_cycles is not None else cfg.max_cycles
        if (cfg.engine == "parallel" and tracer is None and faults is None
                and not cfg.sanitize):
            # The sharded epoch engine (byte-identical stats; see
            # repro.sim.parallel).  Anything observing individual cycles
            # pins the serial engine, and the parallel engine itself may
            # decline (degenerate epoch, cross-SM conflict, dead worker) —
            # None means "run serially", with gmem restored.
            from repro.sim.parallel import try_parallel_launch

            result = try_parallel_launch(
                cfg, kernel, grid, gmem, params, limit, total_ctas)
            if result is not None:
                return result
        memory_model = MemoryModel(cfg)
        factory = _manager_factory(cfg.arch)
        sanitizer = Sanitizer(cfg) if cfg.sanitize else None
        sms = [
            SMCore(sm_id, cfg, memory_model, factory, sanitizer=sanitizer, faults=faults)
            for sm_id in range(cfg.num_sms)
        ]
        for sm in sms:
            sm.gmem = gmem

        progress = ProgressTracker(cfg.progress_window)
        # The fast-forward engine skips provably-dead cycles; anything that
        # observes individual cycles (sanitizer, fault plans, tracers) pins
        # the per-cycle reference path.
        fast_forward = (cfg.fast_forward and tracer is None and faults is None
                        and not cfg.sanitize)
        for sm in sms:
            sm.allow_fast = fast_forward
        next_cta = 0
        now = 0
        rr_offset = 0
        num_sms = len(sms)
        fill_first = cfg.cta_dispatch == "fill-first"
        # Only the VT manager ever has a context switch in flight; skip the
        # per-SM query entirely on the other architectures.
        vt_mode = cfg.arch == ArchMode.VT
        while True:
            # Dispatch: at most one CTA per SM per cycle.  Round-robin
            # rotates the starting SM each cycle (GigaThread-style fairness);
            # fill-first always starts at SM 0.
            dispatched = False
            if next_cta < total_ctas:
                if fill_first:
                    # One CTA per cycle, always packed into the
                    # lowest-numbered SM with room.
                    for sm in sms:
                        if sm.manager.can_accept(kernel):
                            sm.assign_cta(
                                self._make_cta(next_cta, kernel, grid, params, now),
                                now)
                            next_cta += 1
                            dispatched = True
                            break
                else:
                    # The rotation advances every cycle CTAs remain, whether
                    # or not one lands; indices are computed on the fly so
                    # idle dispatch cycles allocate nothing.
                    start = rr_offset
                    rr_offset = (rr_offset + 1) % num_sms
                    for i in range(num_sms):
                        if next_cta >= total_ctas:
                            break
                        sm = sms[(start + i) % num_sms]
                        if sm.manager.can_accept(kernel):
                            sm.assign_cta(
                                self._make_cta(next_cta, kernel, grid, params, now),
                                now)
                            next_cta += 1
                            dispatched = True

            issued = 0
            swap_busy = False
            mem_horizon = 0
            for sm in sms:
                if not sm.idle:
                    issued += sm.step(now)
                    if vt_mode and sm.manager.swap_in_flight():
                        swap_busy = True
                if sm.mem_horizon > mem_horizon:
                    mem_horizon = sm.mem_horizon
            if dispatched:
                # A freshly seated CTA only becomes schedulable after the
                # dispatcher latency; cover the gap in the horizon.
                mem_horizon = max(mem_horizon, now + cfg.cta_launch_latency)
            progress.observe(now, issued, swap_busy, dispatched, mem_horizon)
            if tracer is not None:
                tracer.on_cycle(now, sms)

            if next_cta >= total_ctas and all(sm.idle for sm in sms):
                break

            if fast_forward and not issued and not (
                    next_cta < total_ctas
                    and any(sm.manager.can_accept(kernel) for sm in sms)):
                # This cycle was dead and the next one cannot dispatch:
                # jump to the earliest event across SMs, bulk-crediting the
                # skipped span.  Every non-idle SM just took a zero-issue
                # step, so its cached ``next_wake`` is fresh.  Capped at the
                # watchdog deadline and the hard cycle budget so both fire
                # at reference-exact cycles.
                target = limit
                for sm in sms:
                    if not sm.idle and sm.next_wake < target:
                        target = sm.next_wake
                if not swap_busy:
                    deadline = progress.stall_deadline()
                    if deadline < target:
                        target = deadline
                if target > now + 1:
                    for sm in sms:
                        if not sm.idle:
                            sm.fast_forward(now + 1, target)
                    progress.observe_span(now + 1, target, swap_busy)
                    if next_cta < total_ctas and not fill_first:
                        rr_offset = (rr_offset + target - now - 1) % num_sms
                    now = target - 1

            now += 1
            if progress.deadlocked(now):
                reason = (
                    f"kernel {kernel.name!r} made no forward progress for "
                    f"{progress.stalled_cycles(now)} cycles "
                    f"({next_cta}/{total_ctas} CTAs dispatched)"
                )
                raise ProgressDeadlock(
                    reason, dump=diagnostic_dump(sms, now, reason, faults=faults))
            if now >= limit:
                reason = (
                    f"kernel {kernel.name!r} exceeded {limit} cycles "
                    f"({next_cta}/{total_ctas} CTAs dispatched)"
                )
                raise SimulationTimeout(
                    reason, dump=diagnostic_dump(sms, now, reason, faults=faults))

        return LaunchResult(
            stats=self._collect(sms, memory_model, now, total_ctas),
            gmem=gmem,
            kernel=kernel,
            grid_dim=grid,
        )

    # -- helpers ---------------------------------------------------------------

    def _make_cta(self, cta_id: int, kernel: Kernel, grid, params, now: int) -> CTA:
        return CTA(
            cta_id=cta_id,
            ctaid=self._cta_coords(cta_id, grid),
            kernel=kernel,
            grid_dim=grid,
            params=params,
            cfg=self.cfg,
            start_cycle=now + self.cfg.cta_launch_latency,
        )

    def _check_kernel_fits(self, kernel: Kernel) -> None:
        cfg = self.cfg
        if kernel.regs_per_thread * kernel.threads_per_cta > cfg.registers_per_sm:
            raise ValueError(f"kernel {kernel.name!r}: one CTA exceeds the register file")
        if kernel.smem_bytes > cfg.smem_per_sm:
            raise ValueError(f"kernel {kernel.name!r}: one CTA exceeds shared memory")
        if kernel.threads_per_cta > cfg.max_threads_per_sm:
            raise ValueError(f"kernel {kernel.name!r}: CTA exceeds thread slots")
        if kernel.warps_per_cta(cfg.warp_size) > cfg.max_warps_per_sm:
            raise ValueError(f"kernel {kernel.name!r}: CTA exceeds warp slots")

    @staticmethod
    def _normalize_grid(grid_dim) -> tuple[int, int, int]:
        if isinstance(grid_dim, int):
            return (grid_dim, 1, 1)
        dims = tuple(int(d) for d in grid_dim)
        while len(dims) < 3:
            dims = dims + (1,)
        return dims[:3]

    @staticmethod
    def _cta_coords(index: int, grid: tuple[int, int, int]) -> tuple[int, int, int]:
        gx, gy, _gz = grid
        return (index % gx, (index // gx) % gy, index // (gx * gy))

    @staticmethod
    def _collect(sms, memory_model, cycles: int, total_ctas: int) -> SimStats:
        stats = SimStats()
        stats.cycles = cycles
        stats.ctas_launched = total_ctas
        for sm in sms:
            sm.stats.l1_accesses = sm.l1.tags.accesses
            sm.stats.l1_hits = sm.l1.tags.hits
            stats.sm_stats.append(sm.stats)
            stats.instructions += sm.stats.instructions
            stats.thread_instructions += sm.stats.thread_instructions
        stats.l2_accesses = memory_model.l2_accesses
        stats.l2_hits = memory_model.l2_hits
        stats.dram_requests = memory_model.dram_requests
        return stats
