"""Chip-level memory model: interconnect + shared L2 + DRAM.

One instance is shared by all SMs.  Like real NVIDIA chips, the L2 and
DRAM are organized as *memory partitions* — one L2 slice with its own
port and interconnect path per DRAM channel, line-interleaved by address.
The request path is

    SM L1 miss -> partition icnt -> L2-slice port (bandwidth) -> L2 tags
        -> (on L2 miss) DRAM channel (bandwidth + latency)
    -> partition response icnt -> L1 fill

Every stage contributes latency; slice ports and DRAM channels also
contribute queueing delay under contention, which is what makes extra
thread-level parallelism eventually hit the bandwidth wall — a
first-order effect in the paper's memory-intensive workloads.  Because
bandwidth resources are per-partition, chip bandwidth scales with the
channel count and the scaled-down configurations stay faithful to the
full chip.
"""

from __future__ import annotations

from repro.sim.cache import SetAssocCache
from repro.sim.dram import DramModel
from repro.sim.icnt import Link


def min_cross_rtt(cfg) -> int:
    """Lower bound on the SM -> L2 -> SM round trip: request link + L2 hit
    + response link with zero queueing (``Link.min_traversal`` each way).
    No read issued at cycle ``t`` can complete before
    ``t + min_cross_rtt(cfg)``, which is what bounds the parallel
    engine's epoch length (see :mod:`repro.sim.parallel`)."""
    return 2 * cfg.icnt_latency + cfg.l2_hit_latency


class MemoryModel:
    """Partitioned L2 + DRAM behind per-partition interconnect links."""

    def __init__(self, cfg):
        self.cfg = cfg
        self.l2 = SetAssocCache(cfg.l2_size, cfg.l2_assoc, cfg.line_bytes)
        self.dram = DramModel(cfg)
        partitions = cfg.dram_channels
        self._request_links = [Link(cfg.icnt_latency, 1) for _ in range(partitions)]
        self._response_links = [Link(cfg.icnt_latency, 1) for _ in range(partitions)]
        self._l2_port_free = [0] * partitions
        # L2-level miss merging: line -> DRAM fill completion at L2.
        self._l2_pending: dict[int, int] = {}

    def _partition(self, line_addr: int) -> int:
        return self.dram.channel_of(line_addr)

    def _purge(self, now: int) -> None:
        if not self._l2_pending:
            return
        done = [line for line, t in self._l2_pending.items() if t <= now]
        for line in done:
            del self._l2_pending[line]

    def _l2_lookup(self, line_addr: int, arrival: int, partition: int) -> int:
        """Time at which the line's data is available at its L2 slice."""
        start = max(arrival, self._l2_port_free[partition])
        self._l2_port_free[partition] = start + self.cfg.l2_service_cycles
        self._purge(arrival)
        pending = self._l2_pending.get(line_addr)
        if pending is not None:
            self.l2.access(line_addr)  # counts as an access; data in flight
            return max(pending, start + self.cfg.l2_hit_latency)
        if self.l2.access(line_addr):
            return start + self.cfg.l2_hit_latency
        fill = self.dram.access(line_addr, start + self.cfg.l2_hit_latency)
        self._l2_pending[line_addr] = fill
        return fill

    def read(self, line_addr: int, now: int) -> int:
        """A read request leaving an SM at ``now``; returns the cycle the
        fill arrives back at the SM."""
        partition = self._partition(line_addr)
        arrival = self._request_links[partition].traverse(now)
        data_at_l2 = self._l2_lookup(line_addr, arrival, partition)
        return self._response_links[partition].traverse(data_at_l2)

    def write(self, line_addr: int, now: int) -> int:
        """A write-through store; returns L2 commit time (no SM dependence)."""
        partition = self._partition(line_addr)
        arrival = self._request_links[partition].traverse(now)
        return self._l2_lookup(line_addr, arrival, partition)

    # -- reporting ------------------------------------------------------------

    @property
    def l2_accesses(self) -> int:
        return self.l2.accesses

    @property
    def l2_hits(self) -> int:
        return self.l2.hits

    @property
    def dram_requests(self) -> int:
        return self.dram.requests
