"""Deterministic fault injection for robustness testing.

A :class:`FaultPlan` describes *when* and *where* the simulator should
misbehave: delay or drop global-memory fill responses, corrupt the Virtual
Thread swap state machine, or freeze a chosen warp.  Plans are seeded and
counter-driven, so the same plan against the same workload injects the
same faults on every run — a failing fault test reproduces exactly.

Faults exist to prove the detection machinery works: each failure class
must be caught by the invariant sanitizer (:mod:`repro.sim.sanitizer`) or
the progress watchdog in :meth:`repro.sim.gpu.GPU.launch`, never by a
silent hang or a corrupted result.  Delayed responses are the exception —
they model a slow but functioning memory system, and the simulator must
absorb them gracefully (the warp simply waits longer for its fill).

Injection points:

* :meth:`FaultPlan.filter_fill` — called by the L1 on every miss fill;
  may add latency or return :data:`NEVER` (the response is lost).
* :meth:`FaultPlan.corrupt_swap` — polled by the VT swap engine after
  each completed save phase; ``True`` resurrects the victim CTA to
  ``ACTIVE`` without a restore, an illegal state-machine edge.
* :meth:`FaultPlan.warp_stalled` — consulted by the SM issue logic; a
  matching warp is unissuable from ``stall_at_cycle`` onwards.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

#: Completion cycle of a response that will never arrive.  Far beyond any
#: reachable simulation cycle, and far beyond ``max_pending_latency``, so
#: the sanitizer flags it as a leak the cycle it is recorded.
NEVER = 1 << 60


@dataclass
class FaultEvent:
    """One injected fault occurrence (for test assertions and reports)."""

    cycle: int
    kind: str  # "delay-response" | "drop-response" | "corrupt-swap" | "stall-warp"
    detail: str

    def __str__(self) -> str:
        return f"@{self.cycle} {self.kind}: {self.detail}"


@dataclass
class FaultPlan:
    """A seeded, deterministic schedule of injected faults.

    All triggers are counter-based (every Nth fill, the Nth swap), so the
    plan is reproducible; ``delay_jitter`` draws from a ``random.Random``
    seeded with ``seed`` and stays deterministic too.
    """

    seed: int = 0
    #: Delay every Nth global-memory fill (0 disables).
    delay_every: int = 0
    #: Extra cycles added to a delayed fill.
    delay_cycles: int = 200
    #: Optional extra uniform jitter in [0, delay_jitter) on delayed fills.
    delay_jitter: int = 0
    #: Drop the Nth global-memory fill entirely (1-based; 0 disables).
    drop_nth: int = 0
    #: Corrupt the VT swap state machine after the Nth completed save
    #: phase (1-based; 0 disables).
    corrupt_swap_nth: int = 0
    #: Freeze one warp: (sm_id, cta_id, local_warp_id), or None.
    stall_warp: tuple[int, int, int] | None = None
    #: First cycle at which the stalled warp stops issuing.
    stall_at_cycle: int = 0

    events: list[FaultEvent] = field(default_factory=list, repr=False)

    def __post_init__(self):
        self._rng = random.Random(self.seed)
        self._fills = 0
        self._swaps = 0

    # -- injection hooks ---------------------------------------------------

    def filter_fill(self, sm_id: int, line_addr: int, now: int, completion: int) -> int:
        """Possibly delay or drop the fill for ``line_addr``; returns the
        (possibly altered) completion cycle."""
        self._fills += 1
        if self.drop_nth and self._fills == self.drop_nth:
            self.events.append(FaultEvent(
                now, "drop-response",
                f"sm{sm_id} line 0x{line_addr:x}: fill will never return"))
            return NEVER
        if self.delay_every and self._fills % self.delay_every == 0:
            extra = self.delay_cycles
            if self.delay_jitter:
                extra += self._rng.randrange(self.delay_jitter)
            self.events.append(FaultEvent(
                now, "delay-response",
                f"sm{sm_id} line 0x{line_addr:x}: +{extra} cycles"))
            return completion + extra
        return completion

    def corrupt_swap(self, sm_id: int, now: int, cta_id: int) -> bool:
        """Whether to corrupt the swap whose save phase just completed."""
        self._swaps += 1
        if self.corrupt_swap_nth and self._swaps == self.corrupt_swap_nth:
            self.events.append(FaultEvent(
                now, "corrupt-swap",
                f"sm{sm_id} cta {cta_id}: victim resurrected ACTIVE without restore"))
            return True
        return False

    def warp_stalled(self, sm_id: int, warp, now: int) -> bool:
        """Whether ``warp`` is frozen by this plan at ``now``."""
        spec = self.stall_warp
        if spec is None or now < self.stall_at_cycle:
            return False
        if sm_id != spec[0] or warp.cta.cta_id != spec[1] or warp.local_wid != spec[2]:
            return False
        if not self.events or self.events[-1].kind != "stall-warp":
            self.events.append(FaultEvent(
                now, "stall-warp", f"sm{sm_id} cta {spec[1]} warp {spec[2]} frozen"))
        return True
