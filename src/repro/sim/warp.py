"""Warp state: SIMT reconvergence stack, registers, barrier/exit flags.

Masks are 32-bit Python integers (bit ``i`` = lane ``i``); they convert to
boolean numpy arrays only at the functional-execution boundary.  The
*scheduling state* of a warp — PC, SIMT stack, barrier flag — is exactly
the state Virtual Thread saves to backup SRAM on a context switch; the
*capacity state* (registers) stays in place.  :meth:`Warp.sched_state_snapshot`
exposes the former so tests can assert swap round-trips are lossless.
"""

from __future__ import annotations

import numpy as np

from repro.isa.cfg import EXIT_PC
from repro.isa.instruction import SpecialReg
from repro.sim.scoreboard import Scoreboard

_LANE_BITS = np.arange(32, dtype=np.uint64)
_LANE_POWERS = (np.uint64(1) << _LANE_BITS).astype(np.uint64)
FULL_MASK = (1 << 32) - 1


_MASK_CACHE: dict[int, np.ndarray] = {}


def mask_to_array(mask: int) -> np.ndarray:
    """32-bit int mask -> boolean lane array.

    Returns a shared read-only array: masks repeat heavily (a uniform warp
    presents the full mask on every instruction), and every consumer either
    fancy-indexes with it or derives a fresh array from it.
    """
    arr = _MASK_CACHE.get(mask)
    if arr is None:
        arr = (np.uint64(mask) >> _LANE_BITS & np.uint64(1)).astype(bool)
        arr.setflags(write=False)
        if len(_MASK_CACHE) < 65536:
            # selfcheck: ok[iso-global-write] -- pure memo: idempotent writes of a deterministic function of the key; fork workers fill private copies, inline sharing is benign
            _MASK_CACHE[mask] = arr
    return arr


def array_to_mask(arr: np.ndarray) -> int:
    """Boolean lane array -> 32-bit int mask."""
    return int(arr.astype(np.uint64) @ _LANE_POWERS)


class StackEntry:
    """One SIMT-stack entry: run ``mask`` from ``pc``, pop at ``rpc``."""

    __slots__ = ("rpc", "pc", "mask")

    def __init__(self, rpc: int | None, pc: int, mask: int):
        self.rpc = rpc
        self.pc = pc
        self.mask = mask

    def copy(self) -> "StackEntry":
        return StackEntry(self.rpc, self.pc, self.mask)

    def __repr__(self) -> str:
        return f"StackEntry(rpc={self.rpc}, pc={self.pc}, mask={self.mask:08x})"


class Warp:
    """One warp of a CTA: functional state plus timing bookkeeping."""

    __slots__ = (
        "cta",
        "local_wid",
        "live_mask",
        "regs",
        "stack",
        "exited",
        "at_barrier",
        "barrier_wake",
        "sregs",
        "scoreboard",
        "cached_status",
        "status_until",
        "instructions_issued",
    )

    def __init__(self, cta, local_wid: int, regs_per_thread: int, live_lanes: int, warp_size: int):
        self.cta = cta
        self.local_wid = local_wid
        # Lanes beyond the CTA's thread count never exist.
        self.live_mask = (1 << live_lanes) - 1 if live_lanes < warp_size else FULL_MASK
        self.regs = np.zeros((regs_per_thread, 32), dtype=np.float64)
        self.stack: list[StackEntry] = [StackEntry(None, 0, self.live_mask)]
        self.exited = (~self.live_mask) & FULL_MASK
        self.at_barrier = False
        self.barrier_wake = 0
        self.sregs: dict[SpecialReg, np.ndarray] = {}
        self.scoreboard = Scoreboard()
        # Status cache managed by the SM core (see smcore._status).
        self.cached_status: int = -1
        self.status_until: int = -1
        self.instructions_issued = 0

    # -- derived state --------------------------------------------------------

    @property
    def finished(self) -> bool:
        return not self.stack

    @property
    def pc(self) -> int:
        return self.stack[-1].pc

    def active_mask(self) -> int:
        return self.stack[-1].mask & ~self.exited & FULL_MASK

    def active_lanes(self) -> np.ndarray:
        return mask_to_array(self.active_mask())

    # -- SIMT stack transitions ------------------------------------------------

    def _cleanup(self) -> None:
        """Pop exhausted/reconverged entries until the top is runnable."""
        while self.stack:
            top = self.stack[-1]
            if (top.mask & ~self.exited & FULL_MASK) == 0:
                self.stack.pop()
                continue
            if top.rpc is not None and top.rpc != EXIT_PC and top.pc == top.rpc:
                self.stack.pop()
                continue
            break

    def advance(self) -> None:
        """Fall through to the next instruction, reconverging if reached."""
        self.stack[-1].pc += 1
        self._cleanup()

    def branch_uniform(self, target: int) -> None:
        """All active lanes take the branch."""
        self.stack[-1].pc = target
        self._cleanup()

    def branch_divergent(self, taken_mask: int, target: int, reconv_pc: int) -> None:
        """Split the warp: not-taken runs first, taken pushed on top.

        The current top entry becomes the reconvergence continuation; the
        two sides are pushed with ``rpc = reconv_pc`` so they pop when they
        reach it.  ``reconv_pc`` may be :data:`EXIT_PC` when the paths only
        rejoin at kernel exit.
        """
        top = self.stack[-1]
        active = top.mask & ~self.exited & FULL_MASK
        fall_mask = active & ~taken_mask & FULL_MASK
        fall_pc = top.pc + 1
        top.pc = reconv_pc if reconv_pc != EXIT_PC else EXIT_PC
        if fall_mask:
            self.stack.append(StackEntry(reconv_pc, fall_pc, fall_mask))
        self.stack.append(StackEntry(reconv_pc, target, taken_mask))
        self._cleanup()

    def do_exit(self) -> None:
        """Active lanes terminate; pops through to any remaining work."""
        self.exited |= self.active_mask()
        self._cleanup()

    # -- Virtual Thread support -------------------------------------------------

    def sched_state_snapshot(self) -> tuple:
        """The state VT backs up on swap-out: SIMT stack + barrier flag.

        Registers are intentionally absent — they stay resident on-chip,
        which is the paper's central cost argument.
        """
        return (
            tuple((e.rpc, e.pc, e.mask) for e in self.stack),
            self.exited,
            self.at_barrier,
        )

    def __repr__(self) -> str:
        state = "fin" if self.finished else f"pc={self.pc}"
        return f"Warp(cta={self.cta.cta_id}, w{self.local_wid}, {state})"
