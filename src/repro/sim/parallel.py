"""Sharded parallel multi-SM engine with deterministic epoch synchronization.

The serial engine in :meth:`repro.sim.gpu.GPU.launch` interleaves every SM
cycle by cycle, so per-cycle cost grows linearly with SM count even though
most SMs spend most cycles provably dead (waiting on memory).  This engine
partitions the SM cores into *shards* that advance independently across an
*epoch* — a span of cycles short enough that no information can cross
between SMs inside it — and exchanges all cross-SM interaction exactly at
epoch boundaries.  Statistics stay byte-identical to the serial engine
(the same discipline as ``tests/test_fastforward_equivalence.py``).

Why an epoch is safe (the determinism argument, see docs/ARCHITECTURE.md):

* The only cross-SM channels are (a) the shared memory system (L2/DRAM via
  the interconnect), (b) the CTA dispatcher's shared work pool, and
  (c) functional global-memory data.
* (a) A read issued at cycle ``t`` cannot return before
  ``t + min_cross_rtt(cfg)`` (request link + L2 hit + response link), so
  inside an epoch of ``E <= min_cross_rtt`` cycles no completion value is
  ever *observed*.  Each SM therefore runs against a
  :class:`DeferredMemory` stand-in that logs requests and returns sentinel
  completions; at the boundary the coordinator replays the merged request
  log — ordered by ``(cycle, sm_id, seq)``, exactly the order the serial
  engine would have issued them in — against the real
  :class:`~repro.sim.memsys.MemoryModel` and patches the exact completion
  times back into L1 MSHRs, scoreboards, and status caches.
* The epoch is additionally capped at ``min_cross_rtt -
  vt_long_stall_threshold + 1`` so that any in-epoch MSHR merge onto a
  deferred fill is still provably *long-latency* — the scoreboard's
  ``is_long`` bit (which feeds warp-status classification and the VT swap
  trigger in every architecture mode) then matches the serial engine
  without knowing the exact value.
* (b) CTA dispatch is resolved with a halt protocol: while the work pool
  is non-empty, a shard halts an SM at the first cycle it could accept a
  CTA; the coordinator resolves the earliest halt chip-wide using the
  closed-form round-robin rotation (``start(c) = c % num_sms``, valid
  because the serial engine advances the rotation every pool-non-empty
  cycle) and resumes the shards.
* (c) Functional loads/stores apply immediately to the shard's global
  memory image and are logged per-SM; the boundary checks that no word
  written by one SM was read or written by another SM in the same epoch
  (and that no global atomic shares a word with any plain access).  If the
  check fails — the only case where intra-epoch ordering could matter —
  the engine abandons the launch, restores global memory, and reruns
  serially (:class:`SerialFallback`).  Atomics are order-sensitive by
  nature, so they are deferred and replayed in the global
  ``(cycle, sm_id, seq)`` order at the boundary, with the true old values
  patched into the destination registers (safe: the issuing warp is
  scoreboard-blocked on that register past the epoch's end).

Backends: ``sim_jobs == 1`` runs one shard containing every SM inline in
this process — no IPC, but each SM still fast-forwards over its own dead
spans instead of being O(1)-stepped every chip cycle, which is where the
multi-SM speedup comes from on few-core hosts.  ``sim_jobs > 1`` forks
worker processes (copy-on-write shard state), each owning a slice of SMs,
with the same epoch protocol over pipes; a dead worker degrades to the
serial rerun path.
"""

from __future__ import annotations

import numpy as np

from repro.sim.config import ArchMode
from repro.sim.cta import CTA
from repro.sim.gpu import (LaunchResult, ProgressDeadlock, SimulationTimeout,
                           _manager_factory)
from repro.sim.memsys import MemoryModel, min_cross_rtt
from repro.sim.sanitizer import ProgressTracker, diagnostic_dump
from repro.sim.smcore import SMCore
from repro.sim.stats import SimStats

#: Sentinel completion times handed out for deferred memory requests.
#: Far above any reachable cycle (``max_cycles`` tops out in the millions)
#: but below the managers' FOREVER (1 << 60), so sentinel-valued wake/ready
#: magnitudes behave as "beyond this epoch" everywhere they leak.
SENTINEL_BASE = 1 << 48

#: Minimum epoch length worth running; below this the barrier overhead
#: dwarfs the work and the serial engine is strictly better.
MIN_EPOCH = 8

#: Test hook (fork backend): ``{worker_index: epoch_index}`` — the worker
#: hard-exits at the start of that epoch, exercising the dead-worker
#: degradation path.  Set before launch; inherited by fork.
_TEST_KILL: dict[int, int] = {}

#: When True (set by the equivalence tests), unexpected exceptions inside
#: the parallel engine propagate instead of degrading to the serial rerun,
#: so an engine bug cannot hide behind a silently-correct fallback.  The
#: default is lenient: a shard that errors mid-epoch may have observed a
#: conflicting peer write that the serial rerun resolves (or reproduces
#: deterministically, if the error is the kernel's own).
_STRICT = False


class SerialFallback(Exception):
    """The parallel engine cannot (or should not) finish this launch.

    Raised internally on a cross-SM memory conflict, a degenerate epoch
    length, or a dead worker; :func:`try_parallel_launch` converts it into
    a clean ``None`` after restoring global memory so the caller reruns
    the launch on the serial engine.
    """


def epoch_length(cfg) -> int:
    """Epoch length for ``cfg``: the minimum cross-SM interaction horizon,
    tightened so every in-epoch observation of a deferred completion is
    provably identical to serial.  The guard term keeps (a) the
    scoreboard's ``is_long`` classification exact on in-epoch MSHR merges
    (``>= vt_long_stall_threshold``) and (b) the L1 merge rule
    ``max(pending, now + l1_hit_latency)`` sentinel-preserving — the true
    fill time of any request still outstanding is at least
    ``rtt - (E - 1) >= l1_hit_latency`` cycles away, so serial's merge
    keeps the original completion too."""
    rtt = min_cross_rtt(cfg)
    guard = max(cfg.vt_long_stall_threshold, cfg.l1_hit_latency)
    return min(rtt, rtt - guard + 1)


def _cta_coords(index: int, grid) -> tuple[int, int, int]:
    gx, gy, _gz = grid
    return (index % gx, (index // gx) % gy, index // (gx * gy))


class DeferredMemory:
    """Per-SM stand-in for the chip :class:`MemoryModel` during an epoch.

    Every call the L1 would make down the hierarchy is logged with the
    SM-local sequence number and the issuing cycle; reads return a
    sentinel (``SENTINEL_BASE + request_index``) that the boundary patch
    resolves to the exact completion.  Also records every global-load
    group (via :meth:`SMCore._issue_global`'s tap) with the pre-epoch
    ``mem_pending_until`` snapshot needed to rebuild scoreboard state
    exactly.
    """

    __slots__ = ("shard", "requests", "groups", "mpu_snap")

    def __init__(self, shard):
        self.shard = shard
        self.requests: list[tuple[int, int, str, int, int]] = []
        self.groups: list[tuple[object, int | None, int, list[int]]] = []
        self.mpu_snap: dict[object, int] = {}

    def reset(self) -> None:
        self.requests = []
        self.groups = []
        self.mpu_snap = {}

    # -- MemoryModel interface (called by L1Cache) ---------------------------

    def read(self, line_addr: int, now: int) -> int:
        idx = len(self.requests)
        self.requests.append((self.shard.cycle, idx, "r", line_addr, now))
        return SENTINEL_BASE + idx

    def write(self, line_addr: int, now: int) -> int:
        self.requests.append(
            (self.shard.cycle, len(self.requests), "w", line_addr, now))
        return 0  # store completions are discarded by the SM

    # -- SMCore tap ----------------------------------------------------------

    def note_load(self, warp, dst: int | None, now: int,
                  completions: list[int]) -> None:
        # Called before set_pending, so the snapshot predates every group
        # this warp issues in the epoch.
        if warp not in self.mpu_snap:
            self.mpu_snap[warp] = warp.scoreboard._mem_pending_until
        self.groups.append((warp, dst, now, completions))

    def summarize_groups(self) -> list[tuple[int, int, list[int]]]:
        """(cycle, max exact completion, deferred request idxs) per group —
        what the coordinator needs to compute exact ready times and
        memory-horizon events without holding warp references."""
        out = []
        for _warp, _dst, cycle, completions in self.groups:
            mx = 0
            idxs = []
            for c in completions:
                if c >= SENTINEL_BASE:
                    idxs.append(c - SENTINEL_BASE)
                elif c > mx:
                    mx = c
            out.append((cycle, mx, idxs))
        return out


class ShardGmem:
    """Per-SM global-memory proxy: applies plain accesses immediately to
    the shard's memory image while logging word footprints (for the
    cross-SM conflict check) and write/atomic streams (for boundary
    merging).  Global atomics are deferred: they return placeholder zeros
    and are replayed in exact global order at the boundary."""

    __slots__ = ("shard", "base", "sm_id", "read_words", "write_words",
                 "atom_words", "write_log", "atomics", "targets")

    def __init__(self, shard, base, sm_id: int):
        self.shard = shard
        self.base = base
        self.sm_id = sm_id
        self.reset()

    def reset(self) -> None:
        self.read_words: set[int] = set()
        self.write_words: set[int] = set()
        self.atom_words: set[int] = set()
        self.write_log: list[tuple[np.ndarray, np.ndarray]] = []
        self.atomics: list[tuple[int, int, str, np.ndarray, np.ndarray]] = []
        self.targets: list[tuple[object, int, np.ndarray]] = []

    # -- device API (called by the functional executor) ----------------------

    def load(self, byte_addrs: np.ndarray) -> np.ndarray:
        values = self.base.load(byte_addrs)  # validates; raises like serial
        if byte_addrs.size:
            self.read_words.update((byte_addrs >> 2).tolist())
        return values

    def store(self, byte_addrs: np.ndarray, values) -> None:
        self.base.store(byte_addrs, values)  # validates; raises like serial
        idx = byte_addrs >> 2
        self.write_words.update(idx.tolist())
        self.write_log.append(
            (idx.copy(), np.array(values, dtype=np.float64, copy=True)))

    def atomic_add(self, byte_addrs: np.ndarray, values) -> np.ndarray:
        return self._atomic("add", byte_addrs, values)

    def atomic_max(self, byte_addrs: np.ndarray, values) -> np.ndarray:
        return self._atomic("max", byte_addrs, values)

    def _atomic(self, op: str, byte_addrs: np.ndarray, values) -> np.ndarray:
        idx = self.base._indices(byte_addrs)  # validate at issue, like serial
        self.atom_words.update(idx.tolist())
        self.atomics.append((self.shard.cycle, len(self.atomics), op,
                             byte_addrs.copy(),
                             np.array(values, dtype=np.float64, copy=True)))
        return np.zeros(idx.size)  # placeholder olds, patched at the boundary

    def note_atomic_target(self, warp, dst, lanes: np.ndarray) -> None:
        """Executor tap: remember where the just-issued atomic's old values
        must land once the boundary replay computes them."""
        self.targets.append((warp, dst.idx, lanes))


class _Core:
    """One SM plus its per-epoch deferral state inside a shard."""

    __slots__ = ("sm", "defer", "gproxy", "cursor", "max_fill", "horizon")

    def __init__(self, sm: SMCore, defer: DeferredMemory, gproxy: ShardGmem):
        self.sm = sm
        self.defer = defer
        self.gproxy = gproxy
        self.cursor = 0  # next cycle this SM will run
        self.max_fill = 0  # exact cumulative L1 max_fill_completion
        self.horizon = 0  # exact cumulative mem_horizon


class _Shard:
    """A slice of the SM array advancing through epochs.

    Holds the full per-SM timing state (cores, L1s, managers) plus the
    per-epoch deferral logs.  The same object backs both the inline
    backend (driven directly) and a fork worker (driven over a pipe).
    """

    def __init__(self, cfg, kernel, grid, params, sm_ids, gmem):
        self.cfg = cfg
        self.kernel = kernel
        self.grid = grid
        self.params = params
        self.gmem = gmem
        self.vt_mode = cfg.arch == ArchMode.VT
        self.thr = cfg.vt_long_stall_threshold
        self.cycle = 0  # tag for deferred requests; set before each step
        factory = _manager_factory(cfg.arch)
        self.cores: list[_Core] = []
        self.by_id: dict[int, _Core] = {}
        for sm_id in sm_ids:
            defer = DeferredMemory(self)
            sm = SMCore(sm_id, cfg, defer, factory)
            sm.allow_fast = cfg.fast_forward
            sm._defer = defer
            gproxy = ShardGmem(self, gmem, sm_id)
            sm.gmem = gproxy
            core = _Core(sm, defer, gproxy)
            self.cores.append(core)
            self.by_id[sm_id] = core

    # -- epoch lifecycle -----------------------------------------------------

    def begin_epoch(self, e0: int, e1: int) -> None:
        self.e0 = e0
        self.e1 = e1
        n = e1 - e0
        self.issued = np.zeros(n, dtype=bool)
        self.swap = np.zeros(n, dtype=bool)
        self.idle_events: list[tuple[int, int]] = []
        for core in self.cores:
            defer = core.defer
            if defer.requests or defer.groups:
                defer.reset()
            gp = core.gproxy
            if gp.read_words or gp.write_words or gp.atom_words or gp.atomics:
                gp.reset()

    def assign(self, sm_id: int, cta_id: int, cycle: int) -> None:
        """Seat a dispatched CTA — constructed here (deterministically)
        so fork workers never need CTA objects over the wire."""
        cta = CTA(
            cta_id=cta_id,
            ctaid=_cta_coords(cta_id, self.grid),
            kernel=self.kernel,
            grid_dim=self.grid,
            params=self.params,
            cfg=self.cfg,
            start_cycle=cycle + self.cfg.cta_launch_latency,
        )
        self.by_id[sm_id].sm.assign_cta(cta, cycle)

    def advance(self, pool_active: bool,
                skips: dict[int, int]) -> list[tuple[int, int]]:
        """Run every core toward the epoch end; returns ``(cycle, sm_id)``
        halts where dispatch must be resolved before the SM may proceed.

        Once the CTA pool is empty (``pool_active`` is monotonic: it never
        turns back on), a core whose cached next event lies at or beyond
        the epoch end is *dormant*: nothing about it can change this epoch,
        so it is skipped outright, its cursor left behind.  The lag is
        credited lazily — the first epoch that contains its wake fast-
        forwards the whole multi-epoch dead span in one call (the span is
        provably event-free, so the bulk accounting is exact).  This keeps
        the per-epoch cost proportional to the *active* cores, which is
        what lets the engine beat the serial chip on stall-heavy chips.
        """
        halts = []
        e1 = self.e1
        for core in self.cores:
            if core.cursor >= e1:
                continue
            sm = core.sm
            if not pool_active:
                if sm.idle:
                    core.cursor = e1
                    continue
                if sm.next_wake >= e1 and not (
                        self.vt_mode and sm.manager.swap_in_flight()):
                    continue  # dormant: wake is exact and beyond this epoch
            halt = self._run_core(core, pool_active,
                                  skips.get(sm.sm_id, -1))
            if halt is not None:
                halts.append((halt, sm.sm_id))
        return halts

    def _run_core(self, core: _Core, pool_active: bool,
                  skip: int) -> int | None:
        sm = core.sm
        kernel = self.kernel
        e0, e1 = self.e0, self.e1
        issued_arr = self.issued
        swap_arr = self.swap
        vt = self.vt_mode
        manager = sm.manager
        t = core.cursor
        while t < e1:
            # Dispatch halt: the serial engine offers this SM a CTA at the
            # first cycle it can accept one (checked before the SM steps),
            # so the shard must stop here and let the coordinator decide.
            # can_accept is pure and only changes on assign/finish, so
            # cycles already run past were decided identically.
            if pool_active and t != skip and manager.can_accept(kernel):
                core.cursor = t
                return t
            if sm.idle:
                if pool_active:
                    # Not stepped (serial skips idle SMs) but it may accept
                    # next cycle; re-check the halt condition per cycle.
                    t += 1
                    continue
                core.cursor = e1
                return None
            wake = sm.next_wake
            if wake > t:
                stop = wake if wake < e1 else e1
                if stop - t >= 2:
                    # Provably-dead span: bulk-credit it.  Identical to the
                    # serial engine's per-cycle O(1) dead steps because all
                    # sampled state is frozen until the next event (same
                    # argument as the chip-level fast-forward).  A dormant
                    # core flushing its lag starts below e0; its span is
                    # swap-free (dormancy excludes in-flight swaps and the
                    # span is event-free), so the slice clamp is safe.
                    sm.fast_forward(t, stop)
                    if vt and manager.swap_in_flight():
                        swap_arr[max(t - e0, 0):stop - e0] = True
                    t = stop
                    continue
                self.cycle = t
                sm.step(t)  # single dead cycle: O(1) path
                if vt and manager.swap_in_flight():
                    swap_arr[t - e0] = True
                t += 1
                continue
            self.cycle = t
            if sm.step(t):
                issued_arr[t - e0] = True
            if vt and manager.swap_in_flight():
                swap_arr[t - e0] = True
            if sm.idle:
                # Went idle during this step (last CTA finished): the
                # serial engine stops stepping it right after this cycle.
                self.idle_events.append((t, sm.sm_id))
            t += 1
        core.cursor = e1
        return None

    # -- epoch boundary ------------------------------------------------------

    def collect(self) -> dict:
        """Everything the coordinator needs from this epoch, picklable.
        Cores without activity contribute no entries at all, so the
        boundary cost tracks the active cores, not the SM count."""
        requests: dict[int, list] = {}
        groups: dict[int, list] = {}
        reads_w: dict[int, set] = {}
        writes_w: dict[int, set] = {}
        atoms_w: dict[int, set] = {}
        write_log: dict[int, list] = {}
        atomics: dict[int, list] = {}
        for c in self.cores:
            sm_id = c.sm.sm_id
            defer = c.defer
            gp = c.gproxy
            if defer.requests:
                requests[sm_id] = defer.requests
            if defer.groups:
                groups[sm_id] = defer.summarize_groups()
            if gp.read_words:
                reads_w[sm_id] = gp.read_words
            if gp.write_words:
                writes_w[sm_id] = gp.write_words
            if gp.atom_words:
                atoms_w[sm_id] = gp.atom_words
            if gp.write_log:
                write_log[sm_id] = gp.write_log
            if gp.atomics:
                atomics[sm_id] = list(gp.atomics)
        return {
            "requests": requests,
            "groups": groups,
            "reads_w": reads_w,
            "writes_w": writes_w,
            "atoms_w": atoms_w,
            "write_log": write_log,
            "atomics": atomics,
            "issued": self.issued,
            "swap": self.swap,
            "idle": self.idle_events,
        }

    def apply_boundary(self, actuals_by_sm: dict[int, list[int]],
                       peer_writes: list[tuple[np.ndarray, np.ndarray]],
                       atomics_global: list) -> None:
        """Commit the epoch: merge peer writes into this shard's memory
        image, replay every global atomic in exact global order (patching
        old values into the issuing warps' registers), then patch exact
        completion times into each SM's timing state."""
        data = self.gmem.data
        for idx, vals in peer_writes:
            data[idx] = vals
        for _cycle, sm_id, seq, op, addrs, vals in atomics_global:
            fn = self.gmem.atomic_add if op == "add" else self.gmem.atomic_max
            old = fn(addrs, vals)
            core = self.by_id.get(sm_id)
            if core is not None:
                warp, dst_idx, lanes = core.gproxy.targets[seq]
                warp.regs[dst_idx][lanes] = old
        for core in self.cores:
            self._patch_core(core, actuals_by_sm.get(core.sm.sm_id, []))

    def _patch_core(self, core: _Core, actuals: list[int]) -> None:
        sm = core.sm
        defer = core.defer
        if not defer.requests and not defer.groups:
            return  # no epoch activity: every cached value is still exact
        e1 = self.e1
        thr = self.thr
        mpl = self.cfg.max_pending_latency

        # L1 MSHR file: a pending entry still holding its sentinel is this
        # epoch's read miss — swap in the exact fill time.  (Merges never
        # overwrite the entry; atomics never create one.)
        l1 = sm.l1
        pending = l1.pending
        for ridx, (_cycle, _seq, kind, line, _t) in enumerate(defer.requests):
            if kind != "r":
                continue
            if pending.get(line) == SENTINEL_BASE + ridx:
                actual = actuals[ridx]
                pending[line] = actual
                if actual > core.max_fill:
                    core.max_fill = actual
        l1.max_fill_completion = core.max_fill

        # Scoreboard groups: compute each group's exact ready time; groups
        # containing a deferred completion ("tainted") are the only ones
        # whose scoreboard effects were inexact in-epoch.
        per_warp: dict[object, list[tuple[int | None, int, int, bool]]] = {}
        any_taint = False
        for warp, dst, cycle, completions in defer.groups:
            ready = 0
            tainted = False
            for c in completions:
                if c >= SENTINEL_BASE:
                    tainted = True
                    c = actuals[c - SENTINEL_BASE]
                if c > ready:
                    ready = c
            horizon = ready if ready < cycle + mpl else cycle + mpl
            if horizon > core.horizon:
                core.horizon = horizon
            per_warp.setdefault(warp, []).append((dst, cycle, ready, tainted))
            if tainted:
                any_taint = True
        sm.mem_horizon = core.horizon
        if not any_taint:
            return
        for warp, groups in per_warp.items():
            if not any(t for (_d, _c, _r, t) in groups):
                continue  # every effect was exact already
            sb = warp.scoreboard
            for dst, _cycle, ready, tainted in groups:
                if tainted and dst is not None:
                    entry = sb._pending.get(dst)
                    if entry is not None and entry[0] >= SENTINEL_BASE:
                        # Still this group's entry (the warp is blocked on
                        # dst past the epoch, so nothing overwrote it).
                        # is_long is guaranteed by the epoch-length cap.
                        sb._pending[dst] = (ready, True)
            # mem_pending_until is a running max over long-latency groups;
            # rebuild it from the pre-epoch snapshot (max is order-free).
            mpu = defer.mpu_snap[warp]
            for dst, cycle, ready, _tainted in groups:
                if dst is not None and ready - cycle >= thr and ready > mpu:
                    mpu = ready
            sb._mem_pending_until = mpu
            # Drop the cached status: it embedded a sentinel horizon.  The
            # recompute against exact values is what serial would cache.
            warp.status_until = -1
        if sm.allow_fast and sm.next_wake >= e1:
            # The cached next event crossed the boundary, so the scan that
            # produced it may have had sentinel wake times masking the true
            # (earlier) event.  Re-run it as of the original scan cycle:
            # the SM's state has been frozen since (all later cycles took
            # the O(1) dead path), so this reproduces serial's scan.
            sm.reprime_after_patch()

    # -- termination ---------------------------------------------------------

    def finalize_stats(self) -> list:
        for core in self.cores:
            core.sm.stats.l1_accesses = core.sm.l1.tags.accesses
            core.sm.stats.l1_hits = core.sm.l1.tags.hits
        return [(c.sm.sm_id, c.sm.stats) for c in self.cores]

    def dump(self, cycle: int, reason: str) -> str:
        return diagnostic_dump([c.sm for c in self.cores], cycle, reason)


# ---------------------------------------------------------------------------
# shard drivers: inline (same process) and fork (worker over a pipe)
# ---------------------------------------------------------------------------


class _InlineDriver:
    """Drives one shard by direct call — the ``sim_jobs == 1`` backend."""

    def __init__(self, shard: _Shard):
        self.shard = shard
        self.sm_ids = [c.sm.sm_id for c in shard.cores]

    def begin(self, e0, e1):
        self.shard.begin_epoch(e0, e1)

    def advance_send(self, pool_active, skips, assigns):
        for sm_id, cta_id, cycle in assigns:
            self.shard.assign(sm_id, cta_id, cycle)
        self._halts = self.shard.advance(pool_active, skips)

    def advance_recv(self):
        return self._halts

    def collect_send(self):
        self._payload = self.shard.collect()

    def collect_recv(self):
        return self._payload

    def boundary_send(self, actuals, peer_writes, atomics):
        self.shard.apply_boundary(actuals, peer_writes, atomics)

    def boundary_recv(self):
        return None

    def finalize(self):
        return self.shard.finalize_stats()

    def dump(self, cycle, reason):
        return self.shard.dump(cycle, reason)

    def close(self):
        pass


def _worker_main(conn, shard: _Shard, index: int) -> None:
    """Fork-worker loop: executes shard commands arriving on ``conn``."""
    import os

    epoch = 0
    try:
        while True:
            msg = conn.recv()
            cmd = msg[0]
            try:
                if cmd == "begin":
                    if _TEST_KILL.get(index) == epoch:
                        os._exit(1)  # test hook: dead-worker degradation
                    epoch += 1
                    shard.begin_epoch(msg[1], msg[2])
                elif cmd == "advance":
                    for sm_id, cta_id, cycle in msg[3]:
                        shard.assign(sm_id, cta_id, cycle)
                    conn.send(shard.advance(msg[1], msg[2]))
                elif cmd == "collect":
                    conn.send(shard.collect())
                elif cmd == "boundary":
                    shard.apply_boundary(msg[1], msg[2], msg[3])
                    conn.send("ok")
                elif cmd == "finish":
                    conn.send(shard.finalize_stats())
                elif cmd == "dump":
                    conn.send(shard.dump(msg[1], msg[2]))
                elif cmd == "exit":
                    return
            except Exception as exc:  # simulated-program errors: re-raise in parent
                conn.send(("err", exc))
    except (EOFError, KeyboardInterrupt, BrokenPipeError, OSError):
        pass


class _ForkDriver:
    """Drives one shard living in a forked worker process."""

    def __init__(self, ctx, shard: _Shard, index: int):
        self.sm_ids = [c.sm.sm_id for c in shard.cores]
        self.conn, child = ctx.Pipe()
        self.proc = ctx.Process(
            target=_worker_main, args=(child, shard, index), daemon=True)
        self.proc.start()
        child.close()

    def _send(self, msg):
        try:
            self.conn.send(msg)
        except (BrokenPipeError, OSError) as exc:
            raise SerialFallback(f"worker for SMs {self.sm_ids} died: {exc}")

    def _recv(self):
        try:
            reply = self.conn.recv()
        except (EOFError, OSError) as exc:
            raise SerialFallback(f"worker for SMs {self.sm_ids} died: {exc}")
        if isinstance(reply, tuple) and reply and reply[0] == "err":
            raise reply[1]
        return reply

    def begin(self, e0, e1):
        self._send(("begin", e0, e1))

    def advance_send(self, pool_active, skips, assigns):
        self._send(("advance", pool_active, skips, assigns))

    def advance_recv(self):
        return self._recv()

    def collect_send(self):
        self._send(("collect",))

    def collect_recv(self):
        return self._recv()

    def boundary_send(self, actuals, peer_writes, atomics):
        self._send(("boundary", actuals, peer_writes, atomics))

    def boundary_recv(self):
        return self._recv()

    def finalize(self):
        self._send(("finish",))
        return self._recv()

    def dump(self, cycle, reason):
        self._send(("dump", cycle, reason))
        return self._recv()

    def close(self):
        try:
            self.conn.send(("exit",))
        except Exception:
            pass
        self.proc.join(timeout=2)
        if self.proc.is_alive():
            self.proc.terminate()
            self.proc.join(timeout=2)
        self.conn.close()


def _partition(num_sms: int, num_shards: int) -> list[list[int]]:
    base, extra = divmod(num_sms, num_shards)
    out, start = [], 0
    for i in range(num_shards):
        n = base + (1 if i < extra else 0)
        if n:
            out.append(list(range(start, start + n)))
        start += n
    return out


# ---------------------------------------------------------------------------
# coordinator
# ---------------------------------------------------------------------------


class _Coordinator:
    """Owns the chip-shared state (memory system, progress tracker, CTA
    pool, master global memory) and drives the shards epoch by epoch."""

    def __init__(self, cfg, kernel, grid, params, gmem, limit, total_ctas,
                 epoch: int):
        self.cfg = cfg
        self.kernel = kernel
        self.grid = grid
        self.gmem = gmem
        self.limit = limit
        self.total_ctas = total_ctas
        self.epoch = epoch
        self.memsys = MemoryModel(cfg)
        self.tracker = ProgressTracker(cfg.progress_window)
        num_shards = min(cfg.sim_jobs, cfg.num_sms)
        # Multiple shards run on private memory images (merged at epoch
        # boundaries) whether they live in forked workers or in-process.
        self.private = num_shards > 1
        self.drivers: list = []
        if num_shards > 1:
            import multiprocessing

            ctx = None
            if not multiprocessing.current_process().daemon:
                try:
                    ctx = multiprocessing.get_context("fork")
                except ValueError:  # platform without fork
                    ctx = None
            for i, sm_ids in enumerate(_partition(cfg.num_sms, num_shards)):
                if ctx is not None:
                    shard = _Shard(cfg, kernel, grid, params, sm_ids, gmem)
                    self.drivers.append(_ForkDriver(ctx, shard, i))
                else:
                    # No fork backend, or we are a daemonic worker that may
                    # not spawn children: drive the same shard partition
                    # in-process, each shard on a private memory clone (the
                    # copy a fork would have given it).
                    shard = _Shard(cfg, kernel, grid, params, sm_ids,
                                   gmem.clone())
                    self.drivers.append(_InlineDriver(shard))
        else:
            shard = _Shard(cfg, kernel, grid, params,
                           list(range(cfg.num_sms)), gmem)
            self.drivers.append(_InlineDriver(shard))
        self.owner = {sm_id: d for d in self.drivers for sm_id in d.sm_ids}

    def close(self) -> None:
        for d in self.drivers:
            try:
                d.close()
            except Exception:
                pass

    # -- main loop -----------------------------------------------------------

    def run(self) -> LaunchResult:
        cfg = self.cfg
        kernel = self.kernel
        num_sms = cfg.num_sms
        total = self.total_ctas
        limit = self.limit
        tracker = self.tracker
        drivers = self.drivers
        fill_first = cfg.cta_dispatch == "fill-first"
        mpl = cfg.max_pending_latency
        launch_lat = cfg.cta_launch_latency

        next_cta = 0  # CTAs handed out by dispatch resolution
        dispatched_replay = 0  # CTAs accounted for by the cycle replay
        idle_flags = [True] * num_sms
        idle_count = num_sms
        chip_h = 0  # chip-wide memory horizon (running max, like the tracker)
        e0 = 0
        while True:
            e1 = min(e0 + self.epoch, limit)
            try:
                for d in drivers:
                    d.begin(e0, e1)

                # -- advance, resolving dispatch halts chip-wide -------------
                pool_active = next_cta < total
                skips: dict[int, int] = {}
                assigns = {id(d): [] for d in drivers}
                epoch_assigns: list[tuple[int, int]] = []
                dispatch_cycles: set[int] = set()
                while True:
                    for d in drivers:
                        d.advance_send(pool_active, skips, assigns[id(d)])
                        assigns[id(d)] = []
                    halts: list[tuple[int, int]] = []
                    for d in drivers:
                        halts.extend(d.advance_recv())
                    if not halts:
                        break
                    # Resolve the earliest halt cycle exactly like the serial
                    # dispatcher: round-robin starts at (cycle % num_sms)
                    # (the rotation advances every pool-non-empty cycle, so
                    # this closed form holds), fill-first always takes the
                    # lowest-numbered acceptor, one CTA per SM per cycle.
                    c_star = min(c for c, _sm in halts)
                    ready = sorted(sm for c, sm in halts if c == c_star)
                    if pool_active:
                        ready_set = set(ready)
                        order = ([ready[0]] if fill_first else
                                 [(c_star + i) % num_sms
                                  for i in range(num_sms)])
                        for sm_id in order:
                            if next_cta >= total:
                                break
                            if sm_id in ready_set:
                                assigns[id(self.owner[sm_id])].append(
                                    (sm_id, next_cta, c_star))
                                epoch_assigns.append((c_star, sm_id))
                                dispatch_cycles.add(c_star)
                                next_cta += 1
                        pool_active = next_cta < total
                    skips = {sm_id: c_star for sm_id in ready}

                # -- collect and merge the epoch's cross-SM traffic ----------
                for d in drivers:
                    d.collect_send()
                payloads = [d.collect_recv() for d in drivers]

                events = self._replay_memsys(payloads)
                for c in dispatch_cycles:
                    events.append((c, c + launch_lat))
                events.sort()
                self._check_conflicts(payloads)
                atomics_global = self._merge_atomics(payloads)
                self._apply_boundary(payloads, atomics_global)
            except (SerialFallback, SimulationTimeout):
                raise
            except Exception as exc:
                if _STRICT:
                    raise
                # A shard observing a peer's same-epoch write can error in
                # ways serial never would; the serial rerun resolves it (and
                # reproduces any genuine kernel error deterministically).
                raise SerialFallback(f"parallel epoch failed: {exc!r}")

            # -- replay the chip-level per-cycle bookkeeping -----------------
            # Span-compressed but byte-identical to the serial loop: only
            # "interesting" cycles — an issue, a swap-state transition, a
            # memory-horizon event, a dispatch, or an SM going idle — can
            # change the tracker inputs or the termination condition, so
            # the stretches between them collapse to one ``observe_span``
            # (the same closed form the serial fast-forward uses), capped
            # at ``stall_deadline`` so a deadlock still fires at the
            # reference-exact cycle.
            issued = payloads[0]["issued"]
            swap = payloads[0]["swap"]
            for p in payloads[1:]:
                issued = issued | p["issued"]
                swap = swap | p["swap"]
            asg = sorted(epoch_assigns)
            idles = sorted(ev for p in payloads for ev in p["idle"])
            offs = set(np.flatnonzero(issued).tolist())
            offs.update((np.flatnonzero(swap[1:] != swap[:-1]) + 1).tolist())
            offs.update(c - e0 for c, _h in events)
            offs.update(c - e0 for c, _sm in asg)
            offs.update(c - e0 for c, _sm in idles)
            offs.discard(0)
            ticks = sorted(offs)
            ei = ai = ii = ti = 0
            t = e0
            while True:
                while ei < len(events) and events[ei][0] <= t:
                    if events[ei][1] > chip_h:
                        chip_h = events[ei][1]
                    ei += 1
                while ai < len(asg) and asg[ai][0] == t:
                    sm_id = asg[ai][1]
                    dispatched_replay += 1
                    if idle_flags[sm_id]:
                        idle_flags[sm_id] = False
                        idle_count -= 1
                    ai += 1
                while ii < len(idles) and idles[ii][0] == t:
                    idle_flags[idles[ii][1]] = True
                    idle_count += 1
                    ii += 1
                tracker.observe(t, bool(issued[t - e0]), bool(swap[t - e0]),
                                t in dispatch_cycles, chip_h)
                if dispatched_replay >= total and idle_count == num_sms:
                    return self._finish(t)
                while ti < len(ticks) and ticks[ti] + e0 <= t:
                    ti += 1
                u = ticks[ti] + e0 if ti < len(ticks) else e1
                t_next = t + 1
                if u > t_next:
                    # Dead span (t, u): nothing issues or dispatches, the
                    # swap state is constant, and the chip horizon cannot
                    # move — serial's per-cycle observes reduce to the
                    # span form.  Deadlock cannot fire strictly inside it
                    # because the span is capped at the stall deadline
                    # (swap-busy cycles are themselves progress).
                    swap_busy = bool(swap[t_next - e0])
                    target = u
                    if not swap_busy:
                        deadline = tracker.stall_deadline()
                        if deadline < target:
                            target = deadline
                    if target > t_next:
                        tracker.observe_span(t_next, target, swap_busy)
                        t_next = target
                if tracker.deadlocked(t_next):
                    reason = (
                        f"kernel {kernel.name!r} made no forward progress for "
                        f"{tracker.stalled_cycles(t_next)} cycles "
                        f"({dispatched_replay}/{total} CTAs dispatched)"
                    )
                    raise ProgressDeadlock(reason,
                                           dump=self._dump(t_next, reason))
                if t_next >= limit:
                    reason = (
                        f"kernel {kernel.name!r} exceeded {limit} cycles "
                        f"({dispatched_replay}/{total} CTAs dispatched)"
                    )
                    raise SimulationTimeout(reason,
                                            dump=self._dump(t_next, reason))
                if t_next >= e1:
                    break
                t = t_next
            e0 = e1

    # -- epoch boundary helpers ----------------------------------------------

    def _replay_memsys(self, payloads) -> list[tuple[int, int]]:
        """Replay the merged request log on the real memory system in the
        exact serial issue order — (cycle, sm_id, seq) — filling in the
        actual completion times, and return the memory-horizon events."""
        merged = []
        actuals: dict[int, list[int]] = {}
        for p in payloads:
            for sm_id, reqs in p["requests"].items():
                actuals[sm_id] = [0] * len(reqs)
                for cycle, seq, kind, line, t_arg in reqs:
                    merged.append((cycle, sm_id, seq, kind, line, t_arg))
        merged.sort()
        memsys = self.memsys
        for _cycle, sm_id, seq, kind, line, t_arg in merged:
            if kind == "r":
                actuals[sm_id][seq] = memsys.read(line, t_arg)
            else:
                memsys.write(line, t_arg)
        self._actuals = actuals
        events = []
        mpl = self.cfg.max_pending_latency
        for p in payloads:
            for sm_id, groups in p["groups"].items():
                acts = actuals.get(sm_id, ())
                for cycle, mx, idxs in groups:
                    ready = mx
                    for i in idxs:
                        if acts[i] > ready:
                            ready = acts[i]
                    cap = cycle + mpl
                    events.append((cycle, ready if ready < cap else cap))
        return events

    def _check_conflicts(self, payloads) -> None:
        """Cross-SM conflict detection on word footprints: any word written
        by one SM and touched by another this epoch — or any global-atomic
        word sharing with any plain access at all — means intra-epoch
        ordering could matter, which the shards did not preserve."""
        write_owner: dict[int, int] = {}
        for p in payloads:
            for sm_id, words in p["writes_w"].items():
                for w in words:
                    if write_owner.setdefault(w, sm_id) != sm_id:
                        raise SerialFallback("cross-SM write/write conflict")
        plain = set(write_owner)
        atom_words: set[int] = set()
        for p in payloads:
            for sm_id, words in p["reads_w"].items():
                for w in words:
                    owner = write_owner.get(w)
                    if owner is not None and owner != sm_id:
                        raise SerialFallback("cross-SM read/write conflict")
                plain.update(words)
            for words in p["atoms_w"].values():
                atom_words.update(words)
        if atom_words and atom_words & plain:
            raise SerialFallback("global atomic/plain-access conflict")

    @staticmethod
    def _merge_atomics(payloads) -> list:
        atomics = []
        for p in payloads:
            for sm_id, entries in p["atomics"].items():
                for cycle, seq, op, addrs, vals in entries:
                    atomics.append((cycle, sm_id, seq, op, addrs, vals))
        atomics.sort(key=lambda a: (a[0], a[1], a[2]))
        return atomics

    def _apply_boundary(self, payloads, atomics_global) -> None:
        if self.private:
            # Commit the epoch to the master image: peer-disjoint plain
            # writes (any cross-SM order; in-order per SM) then every
            # global atomic in serial order (their words are disjoint from
            # all plain accesses, so the phases commute).
            master = self.gmem
            for p in payloads:
                for log in p["write_log"].values():
                    for idx, vals in log:
                        master.data[idx] = vals
            for _cycle, _sm, _seq, op, addrs, vals in atomics_global:
                fn = master.atomic_add if op == "add" else master.atomic_max
                fn(addrs, vals)
        for d, p in zip(self.drivers, payloads):
            own = set(d.sm_ids)
            acts = {sm_id: self._actuals.get(sm_id, [])
                    for sm_id in own}
            if self.private:
                peers = [entry
                         for q in payloads
                         for sm_id, log in q["write_log"].items()
                         if sm_id not in own
                         for entry in log]
            else:
                peers = []  # single shard: its image is the master already
            d.boundary_send(acts, peers, atomics_global)
        for d in self.drivers:
            d.boundary_recv()

    # -- outcomes ------------------------------------------------------------

    def _finish(self, cycles: int) -> LaunchResult:
        pairs = []
        for d in self.drivers:
            pairs.extend(d.finalize())
        pairs.sort(key=lambda pair: pair[0])
        stats = SimStats()
        stats.cycles = cycles
        stats.ctas_launched = self.total_ctas
        for _sm_id, sm_stats in pairs:
            stats.sm_stats.append(sm_stats)
            stats.instructions += sm_stats.instructions
            stats.thread_instructions += sm_stats.thread_instructions
        stats.l2_accesses = self.memsys.l2_accesses
        stats.l2_hits = self.memsys.l2_hits
        stats.dram_requests = self.memsys.dram_requests
        return LaunchResult(stats=stats, gmem=self.gmem, kernel=self.kernel,
                            grid_dim=self.grid)

    def _dump(self, cycle: int, reason: str) -> str:
        fragments = []
        for d in self.drivers:
            try:
                fragments.append(d.dump(cycle, reason))
            except Exception:
                fragments.append(
                    f"<shard for SMs {d.sm_ids}: dump unavailable>")
        return "\n".join(fragments)


def try_parallel_launch(cfg, kernel, grid, gmem, params, limit: int,
                        total_ctas: int) -> LaunchResult | None:
    """Run a launch on the parallel engine; ``None`` means "use serial".

    Restores ``gmem`` to its pre-launch contents before returning ``None``,
    so the serial rerun starts from identical state.  Watchdog exceptions
    (``ProgressDeadlock``/``SimulationTimeout``) propagate with
    reference-exact cycles and messages.
    """
    if epoch_length(cfg) < MIN_EPOCH:
        return None
    snapshot = gmem.data.copy()
    coordinator = None
    try:
        coordinator = _Coordinator(cfg, kernel, grid, params, gmem, limit,
                                   total_ctas, epoch_length(cfg))
        return coordinator.run()
    except SerialFallback:
        gmem.data[:] = snapshot
        return None
    finally:
        if coordinator is not None:
            coordinator.close()

