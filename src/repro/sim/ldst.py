"""Load/store unit helpers: global-memory coalescing and shared-memory
bank-conflict analysis.

Coalescing follows the post-Fermi rule: the active lanes' byte addresses
are grouped into the minimal set of aligned ``line_bytes`` segments; each
segment becomes one memory transaction.  A fully coalesced warp touching
consecutive 4-byte words produces one 128-byte transaction; a strided or
random warp fans out to up to 32.

Shared memory is organized in 32 word-interleaved banks.  Lanes hitting
different words in the same bank serialize into multiple passes; lanes
reading the *same* word broadcast in one pass.
"""

from __future__ import annotations

import numpy as np


def coalesce(byte_addrs: np.ndarray, line_bytes: int) -> list[int]:
    """Unique aligned segment base addresses touched by the lanes."""
    if byte_addrs.size == 0:
        return []
    lines = np.unique(byte_addrs // line_bytes)
    return [int(line) * line_bytes for line in lines]


def bank_conflict_passes(byte_addrs: np.ndarray, num_banks: int, word_bytes: int = 4) -> int:
    """Number of serialized passes needed to satisfy a shared access."""
    if byte_addrs.size == 0:
        return 1
    words = np.unique(byte_addrs // word_bytes)
    banks = words % num_banks
    _unique, counts = np.unique(banks, return_counts=True)
    return int(counts.max())
