"""Statistics collected by the timing model.

Two levels: :class:`SMStats` accumulates per-SM counters during simulation;
:class:`SimStats` aggregates them chip-wide at the end of a run and derives
the metrics the experiments report (IPC, idle-cycle breakdown, average
resident/schedulable warps, swap accounting, cache hit rates).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field


def _filtered(cls, data: dict) -> dict:
    """Keep only keys that are fields of ``cls`` (forward/backward compat:
    a journal written by a newer or older build still loads)."""
    known = {f.name for f in dataclasses.fields(cls)}
    return {k: v for k, v in data.items() if k in known}


#: Idle-cycle classification keys, in reporting order.  Each maps to an
#: ``idle_cycles_<kind>`` counter on :class:`SMStats`; both the per-cycle
#: reference engine and the fast-forward engine account through
#: :meth:`SMStats.add_idle` so the two can never drift apart.
IDLE_KINDS = ("mem", "alu", "barrier", "struct", "swap", "empty")


@dataclass
class SMStats:
    """Raw per-SM counters."""

    cycles: int = 0
    instructions: int = 0  # warp-instructions issued
    thread_instructions: int = 0  # lane-instructions (mask popcount)
    # Warp-instruction counts per functional-unit class (OpClass.value).
    instructions_by_class: dict = field(default_factory=dict)
    # Scheduler-slot accounting: one sample per scheduler per cycle.
    issue_slots: int = 0
    issued_slots: int = 0
    # Cycle-level idle classification (whole SM issued nothing that cycle).
    idle_cycles_mem: int = 0
    idle_cycles_alu: int = 0
    idle_cycles_barrier: int = 0
    idle_cycles_struct: int = 0
    idle_cycles_swap: int = 0
    idle_cycles_empty: int = 0
    # Occupancy accounting (sampled every few cycles; see occupancy_samples).
    occupancy_samples: int = 0
    resident_warp_samples: int = 0
    schedulable_warp_samples: int = 0
    resident_cta_samples: int = 0
    active_cta_samples: int = 0
    # Virtual Thread events.
    swaps: int = 0
    swap_busy_cycles: int = 0
    # Memory system (per-SM view).
    l1_accesses: int = 0
    l1_hits: int = 0
    smem_accesses: int = 0
    smem_bank_conflict_passes: int = 0
    global_transactions: int = 0
    ctas_completed: int = 0

    def add_idle(self, kind: str, count: int = 1) -> None:
        """Credit ``count`` cycles to one idle class (see :data:`IDLE_KINDS`)."""
        attr = "idle_cycles_" + kind
        setattr(self, attr, getattr(self, attr) + count)

    @property
    def idle_cycles(self) -> int:
        return (
            self.idle_cycles_mem
            + self.idle_cycles_alu
            + self.idle_cycles_barrier
            + self.idle_cycles_struct
            + self.idle_cycles_swap
            + self.idle_cycles_empty
        )

    def to_dict(self) -> dict:
        """JSON-safe dict of every raw counter (round-trips losslessly)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "SMStats":
        stats = cls(**_filtered(cls, data))
        # JSON object keys are always strings; counts must stay ints.
        stats.instructions_by_class = {
            str(k): int(v) for k, v in stats.instructions_by_class.items()
        }
        return stats


@dataclass
class SimStats:
    """Chip-level results of one kernel launch."""

    cycles: int = 0
    instructions: int = 0
    thread_instructions: int = 0
    sm_stats: list[SMStats] = field(default_factory=list)
    l2_accesses: int = 0
    l2_hits: int = 0
    dram_requests: int = 0
    ctas_launched: int = 0

    def to_dict(self) -> dict:
        """JSON-safe dict (chip counters + per-SM counter dicts).

        Derived metrics (``ipc``, hit rates, …) are intentionally not
        stored: they are recomputed from the raw counters after
        :meth:`from_dict`, so a journal can never carry a stats/metric
        mismatch.
        """
        data = dataclasses.asdict(self)
        data["sm_stats"] = [sm.to_dict() for sm in self.sm_stats]
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "SimStats":
        stats = cls(**_filtered(cls, data))
        stats.sm_stats = [SMStats.from_dict(sm) for sm in data.get("sm_stats", [])]
        return stats

    def instruction_mix(self) -> dict[str, float]:
        """Fraction of warp-instructions per functional-unit class."""
        totals: dict[str, int] = {}
        for sm in self.sm_stats:
            for op_class, count in sm.instructions_by_class.items():
                totals[op_class] = totals.get(op_class, 0) + count
        grand = sum(totals.values())
        if not grand:
            return {}
        return {op_class: count / grand for op_class, count in sorted(totals.items())}

    @property
    def ipc(self) -> float:
        """Warp-instructions per cycle, chip-wide."""
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def thread_ipc(self) -> float:
        return self.thread_instructions / self.cycles if self.cycles else 0.0

    @property
    def simd_efficiency(self) -> float:
        """Average fraction of lanes active per issued warp-instruction."""
        if not self.instructions:
            return 0.0
        return self.thread_instructions / (self.instructions * 32)

    @property
    def l1_hit_rate(self) -> float:
        acc = sum(s.l1_accesses for s in self.sm_stats)
        hit = sum(s.l1_hits for s in self.sm_stats)
        return hit / acc if acc else 0.0

    @property
    def l2_hit_rate(self) -> float:
        return self.l2_hits / self.l2_accesses if self.l2_accesses else 0.0

    @property
    def total_swaps(self) -> int:
        return sum(s.swaps for s in self.sm_stats)

    def _avg_over_samples(self, field_name: str) -> float:
        samples = sum(s.occupancy_samples for s in self.sm_stats)
        total = sum(getattr(s, field_name) for s in self.sm_stats)
        return total / samples if samples else 0.0

    @property
    def avg_resident_warps(self) -> float:
        return self._avg_over_samples("resident_warp_samples")

    @property
    def avg_schedulable_warps(self) -> float:
        return self._avg_over_samples("schedulable_warp_samples")

    @property
    def avg_resident_ctas(self) -> float:
        return self._avg_over_samples("resident_cta_samples")

    @property
    def avg_active_ctas(self) -> float:
        return self._avg_over_samples("active_cta_samples")

    def idle_breakdown(self) -> dict[str, float]:
        """Fraction of SM-cycles in each idle class (sums with 'busy' to 1)."""
        cycles = sum(s.cycles for s in self.sm_stats)
        if not cycles:
            return {}
        keys = ("mem", "alu", "barrier", "struct", "swap", "empty")
        out = {}
        for key in keys:
            out[key] = sum(getattr(s, f"idle_cycles_{key}") for s in self.sm_stats) / cycles
        out["busy"] = 1.0 - sum(out.values())
        return out

    def summary(self) -> str:
        lines = [
            f"cycles={self.cycles}  warp-instructions={self.instructions}  IPC={self.ipc:.3f}",
            f"avg resident warps/SM={self.avg_resident_warps:.1f}  "
            f"schedulable={self.avg_schedulable_warps:.1f}  "
            f"resident CTAs/SM={self.avg_resident_ctas:.2f} (active {self.avg_active_ctas:.2f})",
            f"L1 hit={self.l1_hit_rate:.1%}  L2 hit={self.l2_hit_rate:.1%}  "
            f"DRAM reqs={self.dram_requests}  swaps={self.total_swaps}  "
            f"SIMD eff={self.simd_efficiency:.1%}",
        ]
        breakdown = self.idle_breakdown()
        if breakdown:
            parts = "  ".join(f"{k}={v:.1%}" for k, v in breakdown.items())
            lines.append(f"cycle breakdown: {parts}")
        return "\n".join(lines)
