"""Warp-scheduler policies.

Each SM has ``num_warp_schedulers`` schedulers; resident warps are
partitioned among them by warp-slot index.  Every cycle each scheduler
picks at most one issuable warp according to its policy:

* **LRR** — loose round-robin: rotate through warps, issue the first ready.
* **GTO** — greedy-then-oldest: keep issuing the same warp until it stalls,
  then fall back to the oldest (earliest-assigned) ready warp.  This is the
  paper's (and GPGPU-Sim's) default.
* **two-level** — a small active set is scheduled LRR; stalled warps are
  demoted to the pending set and replaced by pending warps.

Schedulers only *order* candidates; issuability is decided by the SM core
via the ``issuable(warp)`` callback so policy code stays timing-agnostic.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.warp import Warp


class SchedulerBase:
    """Common bookkeeping: the set of warps owned by this scheduler."""

    def __init__(self):
        self.warps: list[Warp] = []

    def add_warp(self, warp: Warp) -> None:
        self.warps.append(warp)

    def remove_warp(self, warp: Warp) -> None:
        self.warps.remove(warp)

    def pick(self, issuable: Callable[[Warp], bool]) -> Optional[Warp]:
        raise NotImplementedError


class LrrScheduler(SchedulerBase):
    """Loose round-robin."""

    def __init__(self):
        super().__init__()
        self._next = 0

    def pick(self, issuable):
        n = len(self.warps)
        for offset in range(n):
            idx = (self._next + offset) % n
            warp = self.warps[idx]
            if issuable(warp):
                self._next = (idx + 1) % n
                return warp
        return None


class GtoScheduler(SchedulerBase):
    """Greedy-then-oldest.

    ``self.warps`` is kept in assignment (age) order — warps are appended
    on add and order is preserved on removal — so the oldest-first
    fallback is a plain in-order scan.
    """

    def __init__(self):
        super().__init__()
        self._greedy: Optional[Warp] = None

    def remove_warp(self, warp):
        super().remove_warp(warp)
        if self._greedy is warp:
            self._greedy = None

    def pick(self, issuable):
        if self._greedy is not None and issuable(self._greedy):
            return self._greedy
        for warp in self.warps:  # oldest (earliest-assigned) first
            if issuable(warp):
                self._greedy = warp
                return warp
        self._greedy = None
        return None


class TwoLevelScheduler(SchedulerBase):
    """Two-level scheduler with a bounded active set.

    ``_active`` keeps promotion order for the LRR rotation; ``_active_set``
    mirrors it for O(1) membership, so one refill pass over ``n`` resident
    warps is O(n) instead of the O(n·active_size) list scan it used to be.
    """

    def __init__(self, active_size: int = 8):
        super().__init__()
        self.active_size = active_size
        self._active: list[Warp] = []
        self._active_set: set[Warp] = set()
        self._next = 0

    def remove_warp(self, warp):
        super().remove_warp(warp)
        if warp in self._active_set:
            self._active.remove(warp)
            self._active_set.discard(warp)

    def _refill(self, issuable):
        if len(self._active) >= self.active_size:
            return
        for warp in self.warps:
            if warp not in self._active_set and issuable(warp):
                self._active.append(warp)
                self._active_set.add(warp)
                if len(self._active) >= self.active_size:
                    return

    def pick(self, issuable):
        for _attempt in range(2):
            self._refill(issuable)
            n = len(self._active)
            for offset in range(n):
                idx = (self._next + offset) % n
                warp = self._active[idx]
                if issuable(warp):
                    self._next = (idx + 1) % n
                    return warp
            # Demote stalled warps and retry once so a pending ready warp
            # can be promoted within the same cycle.
            self._active = [w for w in self._active if issuable(w)]
            self._active_set = set(self._active)
            self._next = 0
        return None


def make_scheduler(policy: str) -> SchedulerBase:
    """Factory keyed by ``GPUConfig.warp_scheduler``."""
    if policy == "lrr":
        return LrrScheduler()
    if policy == "gto":
        return GtoScheduler()
    if policy == "two-level":
        return TwoLevelScheduler()
    raise ValueError(f"unknown warp scheduler {policy!r}")
