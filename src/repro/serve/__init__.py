"""Fault-tolerant simulation job service (``repro serve``).

:mod:`repro.serve.service` is the transport-free core: a bounded,
deduplicating job queue dispatched into the subprocess sweep orchestrator
with the content-addressed result store underneath.  :mod:`repro.serve.http`
wraps it in a stdlib-only HTTP server.  Nothing here imports eagerly so
embedding one half never drags in the other.
"""
