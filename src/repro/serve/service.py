"""The job service behind ``repro serve`` — transport-free core.

A :class:`JobService` accepts simulation *requests* (benchmark + full
configuration knobs), keys each by its deterministic cell fingerprint
(:func:`repro.analysis.journal.cell_fingerprint`), and resolves it through
three layers, cheapest first:

1. **store** — a verified entry in the content-addressed result store is
   served immediately (``cached``); nothing runs.
2. **coalescing** — a request whose fingerprint is already queued or
   running attaches to the in-flight job (``coalesced``); identical
   concurrent submissions cost one simulation, total.
3. **queue** — otherwise the request joins a *bounded* queue
   (``queued``).  A full queue refuses admission with :class:`QueueFull`
   (HTTP 429 upstream) instead of buffering without bound: backpressure
   is explicit, and a melting-down client cannot OOM the server.

A single dispatcher thread drains the queue in batches into
:func:`repro.analysis.orchestrator.run_sweep` with the store attached, so
every queued job inherits the orchestrator's whole robustness stack —
worker-process isolation, per-status retries with backoff, wall-clock
deadlines, pool degradation — and every completed ``ok`` cell is committed
crash-safely with an ``artifacts/<fp>.json`` audit record.  A SIGKILL of
the server loses only in-flight cells: completed ones are already durable,
so a restarted server answers their resubmission from the store.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.analysis.journal import config_to_dict
from repro.analysis.orchestrator import SweepCell, run_sweep
from repro.sim.config import ArchMode, scaled_fermi
from repro.store.cas import ResultStore, StoreEntry, build_artifact, stats_digest

#: Submission outcomes, cheapest to most expensive.
OUTCOMES = ("cached", "coalesced", "queued", "rejected")

#: Job lifecycle states.
STATES = ("queued", "running", "done")


class QueueFull(Exception):
    """Admission refused: the bounded queue is at capacity (HTTP 429)."""


class BadRequest(Exception):
    """The request is malformed (unknown benchmark, bad knob value)."""


def parse_request(spec: dict) -> SweepCell:
    """Validate one request dict into a :class:`SweepCell`.

    Recognized keys: ``benchmark`` (required), ``arch``, ``scale``,
    ``sms``, ``seed``, ``max_cycles``, ``sanitize``, plus any other
    :class:`GPUConfig` field name as an override.  Unknown keys are an
    error — a typo must not silently fingerprint a different cell.
    """
    if not isinstance(spec, dict):
        raise BadRequest(f"job spec must be an object, got {type(spec).__name__}")
    spec = dict(spec)
    try:
        benchmark = spec.pop("benchmark")
    except KeyError:
        raise BadRequest("job spec is missing 'benchmark'") from None
    from repro.kernels.registry import get

    try:
        get(benchmark)
    except KeyError as exc:
        raise BadRequest(str(exc.args[0])) from None
    arch = spec.pop("arch", ArchMode.BASELINE)
    if arch not in ArchMode.ALL:
        raise BadRequest(f"unknown arch {arch!r}; choose from {ArchMode.ALL}")
    try:
        scale = float(spec.pop("scale", 1.0))
        sms = int(spec.pop("sms", 2))
        seed = int(spec.pop("seed", 0))
        max_cycles = spec.pop("max_cycles", None)
        if max_cycles is not None:
            max_cycles = int(max_cycles)
    except (TypeError, ValueError) as exc:
        raise BadRequest(f"bad numeric field: {exc}") from None
    if scale <= 0 or sms < 1:
        raise BadRequest("scale must be > 0 and sms >= 1")
    cfg = scaled_fermi(num_sms=sms, arch=arch)
    known = set(config_to_dict(cfg))
    unknown = set(spec) - known
    if unknown:
        raise BadRequest(f"unknown job spec field(s): {sorted(unknown)}")
    if spec:
        try:
            cfg = cfg.with_(**spec)
        except (TypeError, ValueError) as exc:
            raise BadRequest(f"bad config override: {exc}") from None
    return SweepCell(benchmark, cfg, scale, max_cycles=max_cycles,
                     workload_seed=seed)


@dataclass
class Job:
    """One fingerprint's lifecycle through the service."""

    fingerprint: str
    cell: SweepCell
    state: str = "queued"
    source: str | None = None  # "cache" | "computed" once done
    record: object | None = None  # RunRecord once done
    attempts: int = 0
    waiters: int = 1  # submissions answered by this job (1 = no coalescing)
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None

    def view(self) -> dict:
        """JSON-safe snapshot for the HTTP layer."""
        record = self.record
        stats = (record.stats.to_dict()
                 if record is not None and record.stats is not None else None)
        return {
            "fingerprint": self.fingerprint,
            "benchmark": self.cell.benchmark,
            "arch": self.cell.cfg.arch,
            "scale": self.cell.scale,
            "seed": self.cell.workload_seed,
            "state": self.state,
            "source": self.source,
            "waiters": self.waiters,
            "attempts": self.attempts,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "status": record.status if record is not None else None,
            "ok": bool(record.ok) if record is not None else None,
            "error": record.error if record is not None else None,
            "cycles": record.stats.cycles if stats else None,
            "stats_sha256": stats_digest(stats),
            "stats": stats,
        }


def _entry_view(entry: StoreEntry) -> dict:
    """A done-job view synthesized straight from a store entry — how a
    restarted server answers polls for jobs a dead server completed."""
    stats = (entry.record.stats.to_dict()
             if entry.record.stats is not None else None)
    return {
        "fingerprint": entry.fingerprint,
        "benchmark": entry.record.benchmark,
        "arch": entry.record.arch,
        "scale": entry.scale,
        "seed": entry.seed,
        "state": "done",
        "source": "cache",
        "waiters": 0,
        "attempts": entry.attempts,
        "submitted_at": None,
        "started_at": None,
        "finished_at": entry.created_at,
        "status": entry.record.status,
        "ok": True,
        "error": None,
        "cycles": entry.record.stats.cycles if stats else None,
        "stats_sha256": stats_digest(stats),
        "stats": stats,
    }


class JobService:
    """Bounded, deduplicating, store-backed simulation job service."""

    def __init__(self, store_dir, *, jobs: int = 2, queue_limit: int = 16,
                 wall_timeout: float | None = None, retries: int = 1,
                 batch_linger: float = 0.05):
        self.store = ResultStore(store_dir)
        self.jobs = jobs
        self.queue_limit = queue_limit
        self.wall_timeout = wall_timeout
        self.retries = retries
        self.batch_linger = batch_linger
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._jobs: dict[str, Job] = {}
        self._queue: list[str] = []  # fingerprints awaiting dispatch
        self._coalesced = 0
        self._rejected = 0
        self._cache_serves = 0
        self._stopping = False
        self._ready = False
        # Startup self-heal: reclaim temp files a killed predecessor left
        # behind before accepting work against the same store.
        self.store.gc()
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-serve-dispatcher",
            daemon=True)
        self._dispatcher.start()

    # -- submission --------------------------------------------------------

    def submit(self, spec: dict) -> tuple[str, dict]:
        """Admit one request; returns ``(outcome, job_view)``.

        Raises :class:`BadRequest` for malformed specs and
        :class:`QueueFull` when admission control refuses the request.
        """
        cell = parse_request(spec)
        fingerprint = cell.fingerprint
        with self._lock:
            job = self._jobs.get(fingerprint)
            if job is not None and job.state != "done":
                job.waiters += 1
                self._coalesced += 1
                return "coalesced", job.view()
            entry = self.store.get(fingerprint)
            if entry is not None:
                self._cache_serves += 1
                job = Job(fingerprint=fingerprint, cell=cell, state="done",
                          source="cache", record=entry.record,
                          attempts=entry.attempts,
                          finished_at=time.time())
                self._jobs[fingerprint] = job
                self._heal_artifact(entry)
                return "cached", job.view()
            if len(self._queue) >= self.queue_limit:
                self._rejected += 1
                raise QueueFull(
                    f"queue is at capacity ({self.queue_limit} jobs); "
                    f"retry after the backlog drains")
            if job is not None:
                # A done job that missed the store is a prior *failure*
                # (only ok records are stored) — resubmission retries it.
                job.state = "queued"
                job.record = None
                job.source = None
                job.waiters += 1
            else:
                job = Job(fingerprint=fingerprint, cell=cell)
                self._jobs[fingerprint] = job
            self._queue.append(fingerprint)
            self._wake.notify_all()
            return "queued", job.view()

    def _heal_artifact(self, entry: StoreEntry) -> None:
        """Backfill a missing audit record for a store-served entry.

        The computed run normally wrote one; if it is gone (partial
        restore, manual cleanup) the serve emits a ``source="cache"``
        record so every served result has provenance on disk.  An
        existing artifact is never overwritten — the original compute
        audit is the valuable one.
        """
        if self.store.read_artifact(entry.fingerprint) is not None:
            return
        self.store.write_artifact(entry.fingerprint, build_artifact(
            entry.fingerprint, entry.record, scale=entry.scale,
            seed=entry.seed, attempts=entry.attempts,
            elapsed_s=entry.elapsed_s, source="cache",
            computed_at=entry.created_at,
            store_path=str(self.store.entry_path(entry.fingerprint))))

    # -- queries -----------------------------------------------------------

    def job_view(self, fingerprint: str) -> dict | None:
        """Snapshot one job; falls back to the store so a restarted server
        still answers for jobs its dead predecessor completed."""
        with self._lock:
            job = self._jobs.get(fingerprint)
            if job is not None:
                return job.view()
        entry = self.store.get(fingerprint)
        if entry is not None:
            return _entry_view(entry)
        return None

    def wait(self, fingerprint: str, timeout: float = 30.0,
             poll: float = 0.05) -> dict | None:
        """Block until the job is done (or ``timeout``); returns the view."""
        deadline = time.monotonic() + timeout
        while True:
            view = self.job_view(fingerprint)
            if view is None or view["state"] == "done":
                return view
            if time.monotonic() >= deadline:
                return view
            time.sleep(poll)

    def ready(self) -> bool:
        """Readiness: the dispatcher is alive and the store is writable."""
        return (self._ready and not self._stopping
                and self._dispatcher.is_alive())

    def stats(self) -> dict:
        with self._lock:
            by_state = {state: 0 for state in STATES}
            for job in self._jobs.values():
                by_state[job.state] += 1
            return {
                "queue_depth": len(self._queue),
                "queue_limit": self.queue_limit,
                "jobs": by_state,
                "coalesced": self._coalesced,
                "rejected": self._rejected,
                "cache_serves": self._cache_serves,
                "store": self.store.stats.to_dict(),
            }

    # -- dispatch ----------------------------------------------------------

    def _dispatch_loop(self) -> None:
        self._ready = True
        while True:
            with self._wake:
                while not self._queue and not self._stopping:
                    self._wake.wait(timeout=0.5)
                if self._stopping:
                    return
                # Linger briefly so a burst of submissions lands in one
                # orchestrator batch instead of N single-cell sweeps.
                if self.batch_linger:
                    self._wake.wait(timeout=self.batch_linger)
                batch = [self._jobs[fp] for fp in self._queue]
                self._queue.clear()
                now = time.time()
                for job in batch:
                    job.state = "running"
                    job.started_at = now
            self._run_batch(batch)

    def _run_batch(self, batch: list[Job]) -> None:
        cells = []
        for job in batch:
            cell = job.cell
            cell.key = (job.fingerprint,)
            cells.append(cell)
        try:
            result = run_sweep(
                cells, jobs=self.jobs, wall_timeout=self.wall_timeout,
                retries=self.retries, store=self.store)
        except Exception as exc:  # noqa: BLE001 - the service must survive
            from repro.analysis.orchestrator import _failed_record

            with self._lock:
                now = time.time()
                for job in batch:
                    job.state = "done"
                    job.source = "computed"
                    job.record = _failed_record(
                        job.cell, "error", f"dispatch failed: {exc}")
                    job.finished_at = now
            return
        with self._lock:
            now = time.time()
            for job in batch:
                key = (job.fingerprint,)
                job.state = "done"
                job.record = result.records.get(key)
                job.attempts = result.attempts.get(key, 1)
                job.source = "cache" if key in result.cached else "computed"
                job.finished_at = now

    def shutdown(self) -> None:
        with self._wake:
            self._stopping = True
            self._wake.notify_all()
        self._dispatcher.join(timeout=5)
