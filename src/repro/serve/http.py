"""Stdlib-only HTTP front end for :class:`repro.serve.service.JobService`.

Endpoints (all JSON):

* ``POST /v1/jobs`` — submit a batch: ``{"jobs": [spec, ...]}`` (or one
  bare spec).  Response lists one ``{outcome, job}`` per spec in order.
  If *any* spec was refused by admission control the status is **429**
  with a ``Retry-After`` header — the client backs off and resubmits;
  accepted specs in the same batch are still queued (resubmitting them
  is free: they coalesce or hit the cache).
* ``GET /v1/jobs/<fingerprint>`` — poll one job.  A restarted server
  answers for its dead predecessor's completed jobs straight from the
  result store.  Unknown fingerprints are 404.
* ``GET /v1/jobs/<fingerprint>/stream`` — long-poll until the job is
  done (newline-delimited JSON snapshots, final state last).
* ``GET /v1/healthz`` — liveness (200 while the process serves).
* ``GET /v1/readyz`` — readiness: 200 when the dispatcher is accepting
  work, 503 otherwise (load balancers drain on this).
* ``GET /v1/stats`` — queue depth, dedupe/backpressure counters, store
  hit/miss/corrupt counters.

The server binds ``127.0.0.1`` only: this is a lab-bench job runner, not
an internet service.  ``port=0`` binds an ephemeral port and prints the
chosen one — how tests and the CI smoke script avoid port collisions.
"""

from __future__ import annotations

import json
import sys
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.serve.service import BadRequest, JobService, QueueFull

STREAM_TIMEOUT_S = 60.0


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> JobService:
        return self.server.service  # type: ignore[attr-defined]

    # -- plumbing ----------------------------------------------------------

    def log_message(self, *_args) -> None:  # silence per-request stderr spam
        pass

    def _send_json(self, status: int, payload, headers: dict | None = None) -> None:
        body = (json.dumps(payload, indent=2) + "\n").encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self):
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return None
        return json.loads(raw)

    # -- routes ------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        path = self.path.rstrip("/")
        if path == "/v1/healthz":
            self._send_json(200, {"ok": True})
            return
        if path == "/v1/readyz":
            if self.service.ready():
                self._send_json(200, {"ready": True})
            else:
                self._send_json(503, {"ready": False})
            return
        if path == "/v1/stats":
            self._send_json(200, self.service.stats())
            return
        if path.startswith("/v1/jobs/"):
            rest = path[len("/v1/jobs/"):]
            if rest.endswith("/stream"):
                self._stream(rest[:-len("/stream")])
                return
            view = self.service.job_view(rest)
            if view is None:
                self._send_json(404, {"error": f"unknown job {rest!r}"})
            else:
                self._send_json(200, view)
            return
        self._send_json(404, {"error": f"no route for {self.path!r}"})

    def _stream(self, fingerprint: str) -> None:
        """Newline-delimited JSON until the job completes (or timeout)."""
        view = self.service.job_view(fingerprint)
        if view is None:
            self._send_json(404, {"error": f"unknown job {fingerprint!r}"})
            return
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Cache-Control", "no-store")
        # Chunked framing is overkill for a lab tool; close delimits.
        self.send_header("Connection", "close")
        self.end_headers()
        deadline = time.monotonic() + STREAM_TIMEOUT_S
        last_state = None
        while True:
            if view["state"] != last_state:
                last_state = view["state"]
                self.wfile.write(json.dumps(view).encode() + b"\n")
                self.wfile.flush()
            if view["state"] == "done" or time.monotonic() >= deadline:
                self.close_connection = True
                return
            time.sleep(0.05)
            view = self.service.job_view(fingerprint) or view

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        if self.path.rstrip("/") != "/v1/jobs":
            self._send_json(404, {"error": f"no route for {self.path!r}"})
            return
        try:
            body = self._read_body()
        except ValueError:
            self._send_json(400, {"error": "request body is not valid JSON"})
            return
        if body is None:
            self._send_json(400, {"error": "empty request body"})
            return
        specs = body.get("jobs") if isinstance(body, dict) and "jobs" in body else [body]
        if not isinstance(specs, list) or not specs:
            self._send_json(400, {"error": "'jobs' must be a non-empty list"})
            return
        results = []
        any_rejected = False
        for spec in specs:
            try:
                outcome, view = self.service.submit(spec)
                results.append({"outcome": outcome, "job": view})
            except BadRequest as exc:
                self._send_json(400, {"error": str(exc)})
                return
            except QueueFull as exc:
                any_rejected = True
                results.append({"outcome": "rejected", "error": str(exc)})
        if any_rejected:
            self._send_json(429, {"results": results},
                            headers={"Retry-After": "1"})
        else:
            self._send_json(200, {"results": results})


def make_server(service: JobService, port: int = 0,
                host: str = "127.0.0.1") -> ThreadingHTTPServer:
    server = ThreadingHTTPServer((host, port), _Handler)
    server.daemon_threads = True
    server.service = service  # type: ignore[attr-defined]
    return server


def serve_forever(store_dir, *, port: int = 0, jobs: int = 2,
                  queue_limit: int = 16, wall_timeout: float | None = None,
                  retries: int = 1) -> int:
    """Run the service until interrupted (the ``repro serve`` entry)."""
    service = JobService(store_dir, jobs=jobs, queue_limit=queue_limit,
                         wall_timeout=wall_timeout, retries=retries)
    server = make_server(service, port=port)
    bound = server.server_address[1]
    # Parsed by scripts (the CI smoke test): keep this line first & flushed.
    print(f"repro-serve listening on http://127.0.0.1:{bound} "
          f"store={store_dir}", flush=True)
    try:
        server.serve_forever(poll_interval=0.1)
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        service.shutdown()
    return 0
