"""Crash-tolerant fuzz campaigns, reproducer dumps, and deterministic replay.

A campaign is a batch of differential cases driven through the sweep
orchestrator (:mod:`repro.analysis.orchestrator`): each case runs in its
own worker subprocess under a wall-clock deadline, completed cases stream
into the append-only journal (so an interrupted campaign resumes with
``--resume``), and any divergence is shrunk *in the parent* to a minimal
spec and written as a **reproducer** JSON next to the journal's deadlock
dumps.

Reproducers carry full forensics — the shrunken spec, the original spec,
the generator config, the exact :class:`~repro.sim.config.GPUConfig`, any
injected fault plan, the divergence list, and a fingerprint over
(spec, config, seed).  ``repro fuzz --replay <file>`` re-runs the case
from the dump alone; a dump whose recomputed fingerprint no longer
matches (hand-edited config, schema drift) is refused as **stale**, the
same discipline the sweep journal applies to its cells.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.fuzz.differential import DEFAULT_MAX_CYCLES, Divergence, DiffResult, run_case, sample_config
from repro.fuzz.generator import GenConfig, generate_spec, materialize, spec_fingerprint
from repro.fuzz.shrink import shrink_spec

REPRO_KIND = "fuzz-reproducer"
REPRO_DIR = "reproducers"

#: Cap on how many divergent cases one campaign shrinks (each shrink costs
#: up to ``shrink_tests`` differential runs).
MAX_SHRINKS = 5

#: The planted-bug canary: delay every cache-line fill on the (nominally)
#: fast-forward leg.  Any kernel whose timing depends on a load diverges,
#: so a healthy pipeline must detect this on every seed and shrink it to
#: the minimal load-dependent kernel (8 instructions).
CANARY_FAULT = {"seed": 7, "delay_every": 1, "delay_cycles": 40}


class StaleReproducerError(RuntimeError):
    """The dump's fingerprint no longer matches its own spec/config."""


def cell_name(spec: dict) -> str:
    """Journal-visible identity of one fuzz case.

    Includes the spec fingerprint so any grammar/knob change reshapes the
    sweep fingerprint and a resumed campaign never reuses a stale verdict.
    """
    return f"fuzz-s{spec['seed']}-{spec_fingerprint(spec)}"


def reproducer_fingerprint(spec: dict, config: dict, seed: int) -> str:
    """Fingerprint binding a reproducer's spec to its exact GPUConfig."""
    from repro.analysis.journal import cell_fingerprint, config_from_dict

    return cell_fingerprint(cell_name(spec), config_from_dict(config),
                            scale=1.0, workload_seed=seed)


# ---------------------------------------------------------------------------
# One cell (runs inside an orchestrator worker)
# ---------------------------------------------------------------------------

def run_fuzz_cell(payload: dict):
    """Run one differential case from an orchestrator payload; returns a
    :class:`~repro.analysis.runner.RunRecord` (status ``ok`` or
    ``divergence``, with a forensic dump attached on divergence)."""
    from repro.analysis.journal import config_from_dict
    from repro.analysis.runner import RunRecord
    from repro.sim.stats import SimStats

    cfg = config_from_dict(payload["config"])
    spec = payload["extra"]["spec"]
    oracle = payload["extra"].get("oracle", "record")
    result = run_case(spec, cfg,
                      max_cycles=payload["max_cycles"] or DEFAULT_MAX_CYCLES,
                      fault=payload["faults"], oracle=oracle)
    if result.ok:
        stats = (SimStats.from_dict(result.ref_stats)
                 if result.ref_stats else None)
        return RunRecord(benchmark=payload["benchmark"], arch="diff",
                         stats=stats, config=cfg)
    return RunRecord(benchmark=payload["benchmark"], arch="diff", stats=None,
                     config=cfg, status="divergence", error=result.summary(),
                     dump=format_fuzz_dump(spec, cfg, result,
                                           fault=payload["faults"]))


def make_cells(seeds, gen: GenConfig, *, max_cycles: int = DEFAULT_MAX_CYCLES,
               fault: dict | None = None, oracle: str = "record") -> list:
    """Sweep cells for ``seeds``: one differential case each, config
    sampled per seed."""
    from repro.analysis.orchestrator import SweepCell

    cells = []
    for seed in seeds:
        spec = generate_spec(seed, gen)
        name = cell_name(spec)
        cells.append(SweepCell(
            benchmark=name, cfg=sample_config(seed), max_cycles=max_cycles,
            faults=fault, workload_seed=seed, key=(name,), runner="fuzz",
            extra={"spec": spec, "oracle": oracle}))
    return cells


# ---------------------------------------------------------------------------
# Forensic dump / reproducer files
# ---------------------------------------------------------------------------

def format_fuzz_dump(spec: dict, cfg, result: DiffResult,
                     fault: dict | None = None) -> str:
    """Human-readable divergence forensics, deadlock-dump style."""
    from repro.analysis.journal import config_to_dict

    lines = [
        "=== fuzz divergence dump ===",
        f"case: {cell_name(spec)}  (seed {spec['seed']}, "
        f"{result.instructions} instructions)",
        "",
        "--- divergences ---",
    ]
    lines += [f"  {d}" for d in result.divergences]
    lines += ["", "--- legs ---"]
    for leg, info in sorted(result.legs.items()):
        lines.append(f"  {leg:24s} {info['status']:10s} "
                     f"cycles={info['cycles']}")
    lines += ["", "--- config ---"]
    lines += [f"  {k} = {v}" for k, v in
              sorted(config_to_dict(cfg).items())]
    if fault:
        lines += ["", "--- injected fault plan ---"]
        lines += [f"  {k} = {v}" for k, v in sorted(fault.items())]
    lines += ["", "--- spec ---", json.dumps(spec, sort_keys=True)]
    try:
        asm = materialize(spec).kernel.disassemble()
        lines += ["", "--- kernel ---", asm]
    except Exception as exc:  # noqa: BLE001 - dump must never fail
        lines += ["", f"--- kernel unavailable: {exc} ---"]
    return "\n".join(lines)


def write_reproducer(path, *, spec: dict, original_spec: dict, gen: GenConfig,
                     cfg, seed: int, divergences: list[Divergence],
                     shrink_info: dict, fault: dict | None = None,
                     oracle: str = "record") -> Path:
    """Write a replayable reproducer JSON; returns its path."""
    from repro.analysis.journal import config_to_dict

    config = config_to_dict(cfg)
    try:
        case = materialize(spec)
        asm = case.kernel.disassemble()
        instructions = len(case.kernel.instrs)
    except Exception:  # noqa: BLE001 - still dump what we have
        asm, instructions = None, None
    payload = {
        "v": 1,
        "kind": REPRO_KIND,
        "seed": seed,
        "genconfig": gen.to_dict(),
        "spec": spec,
        "original_spec": original_spec,
        "config": config,
        "fingerprint": reproducer_fingerprint(spec, config, seed),
        "fault": fault,
        "oracle": oracle,
        "divergences": [d.to_dict() for d in divergences],
        "shrink": shrink_info,
        "instructions": instructions,
        "asm": asm,
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


def load_reproducer(path) -> dict:
    """Load and structurally validate a reproducer dump."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(data, dict) or data.get("kind") != REPRO_KIND:
        raise ValueError(f"{path} is not a fuzz reproducer dump")
    for key in ("spec", "config", "fingerprint", "seed"):
        if key not in data:
            raise ValueError(f"{path}: reproducer is missing {key!r}")
    return data


def replay_reproducer(path, *, max_cycles: int = DEFAULT_MAX_CYCLES) -> DiffResult:
    """Re-run a reproducer from its dump alone.

    Raises :class:`StaleReproducerError` when the recomputed fingerprint
    over (spec, config, seed) does not match the dumped one — the journal's
    stale-fingerprint discipline applied to replays: a hand-edited config
    or a schema drift must fail loudly, not replay the wrong machine.
    """
    data = load_reproducer(path)
    from repro.analysis.journal import config_from_dict

    expected = reproducer_fingerprint(data["spec"], data["config"],
                                      data["seed"])
    if expected != data["fingerprint"]:
        raise StaleReproducerError(
            f"{path}: fingerprint {data['fingerprint']} does not match the "
            f"dumped spec/config (recomputed {expected}); the dump is stale "
            f"or was edited — regenerate it with a fresh campaign")
    return run_case(data["spec"], config_from_dict(data["config"]),
                    max_cycles=max_cycles, fault=data.get("fault"),
                    oracle=data.get("oracle", "record"))


def list_reproducers(directory) -> list[dict]:
    """Summaries of every reproducer under ``<dir>/reproducers`` (for
    ``repro doctor``); unreadable files are reported, not raised."""
    directory = Path(directory)
    root = directory / REPRO_DIR if (directory / REPRO_DIR).is_dir() else directory
    out = []
    for path in sorted(root.glob("*.json")):
        try:
            data = load_reproducer(path)
            out.append({
                "path": str(path),
                "seed": data["seed"],
                "instructions": data.get("instructions"),
                "kinds": sorted({d["kind"] for d in data.get("divergences", [])}),
                "stale": (reproducer_fingerprint(
                    data["spec"], data["config"], data["seed"])
                    != data["fingerprint"]),
            })
        except (ValueError, KeyError, json.JSONDecodeError) as exc:
            out.append({"path": str(path), "error": str(exc)})
    return out


# ---------------------------------------------------------------------------
# The campaign driver
# ---------------------------------------------------------------------------

@dataclass
class CampaignResult:
    """Outcome of one fuzz campaign."""

    seeds_run: list[int] = field(default_factory=list)
    seeds_skipped: list[int] = field(default_factory=list)  # time budget hit
    #: seed -> spec fingerprint, in seed order: the corpus identity
    corpus: dict[int, str] = field(default_factory=dict)
    records: dict = field(default_factory=dict)  # key -> RunRecord
    divergent: list[dict] = field(default_factory=list)
    reproducer_paths: list[str] = field(default_factory=list)
    stats: dict = field(default_factory=dict)
    journal_path: str | None = None

    @property
    def ok(self) -> bool:
        return not self.divergent and all(r.ok for r in self.records.values())


def _corpus_stats(cells, records) -> dict:
    """Aggregate corpus statistics for reporting (EXPERIMENTS.md)."""
    kinds: dict[str, int] = {}
    instructions = []
    agree = {"baseline": [0, 0], "vt": [0, 0]}
    for cell in cells:
        spec = cell.extra["spec"]
        for segment in spec["segments"]:
            kinds[segment["kind"]] = kinds.get(segment["kind"], 0) + 1
        try:
            instructions.append(len(materialize(spec).kernel.instrs))
        except Exception:  # noqa: BLE001
            pass
    ok = sum(1 for r in records.values() if r.ok)
    return {
        "cases": len(cells),
        "ok": ok,
        "divergent": len(records) - ok,
        "segment_kinds": dict(sorted(kinds.items())),
        "instructions_min": min(instructions) if instructions else 0,
        "instructions_max": max(instructions) if instructions else 0,
        "instructions_mean": (round(sum(instructions) / len(instructions), 1)
                              if instructions else 0.0),
    }


def run_campaign(n: int, seed: int = 0, gen: GenConfig | None = None, *,
                 jobs: int = 1, wall_timeout: float | None = 120.0,
                 time_budget: float | None = None, directory=None,
                 resume: bool = False, fault: dict | None = None,
                 oracle: str = "record",
                 max_cycles: int = DEFAULT_MAX_CYCLES, shrink: bool = True,
                 shrink_tests: int = 120, retries: int = 1,
                 progress=None) -> CampaignResult:
    """Fuzz ``n`` seeded cases starting at ``seed``.

    Cases run through :func:`repro.analysis.orchestrator.run_sweep` in
    batches (``jobs`` workers, per-case ``wall_timeout``); after each batch
    the ``time_budget`` (seconds of campaign wall-clock) is checked, so a
    budgeted campaign stops between batches with the journal intact and
    the remaining seeds reported in ``seeds_skipped``.  Divergent cases
    are shrunk in-parent and dumped as reproducers under
    ``<directory>/reproducers/``.
    """
    from repro.analysis.orchestrator import run_sweep

    gen = gen if gen is not None else GenConfig()
    seeds = list(range(seed, seed + n))
    cells = make_cells(seeds, gen, max_cycles=max_cycles, fault=fault,
                       oracle=oracle)
    by_key = {cell.key: cell for cell in cells}
    result = CampaignResult(
        corpus={c.workload_seed: spec_fingerprint(c.extra["spec"])
                for c in cells})

    def note(message: str) -> None:
        if progress:
            progress(message)

    started = time.monotonic()
    batch_size = (len(cells) if time_budget is None
                  else max(1, max(jobs, 1) * 2))
    first = True
    done_keys: set = set()
    for start in range(0, len(cells), batch_size):
        if time_budget is not None and not first \
                and time.monotonic() - started >= time_budget:
            break
        batch = cells[start:start + batch_size]
        sweep = run_sweep(batch, jobs=jobs, wall_timeout=wall_timeout,
                          retries=retries, journal_dir=directory,
                          resume=resume or not first, progress=progress)
        first = False
        result.journal_path = sweep.journal_path or result.journal_path
        result.records.update(sweep.records)
        done_keys.update(sweep.records)
        result.seeds_run.extend(c.workload_seed for c in batch)
    result.seeds_skipped = [c.workload_seed for c in cells
                            if c.key not in done_keys]
    if result.seeds_skipped:
        note(f"time budget hit: {len(result.seeds_skipped)} seed(s) left "
             f"unrun (resume with --resume)")

    # -- shrink + dump every divergence -----------------------------------
    divergent = [(key, record) for key, record in result.records.items()
                 if record.status == "divergence"]
    for key, record in divergent[:MAX_SHRINKS]:
        cell = by_key.get(key)
        if cell is None:  # resumed from a journal written by another matrix
            continue
        spec, cfg = cell.extra["spec"], cell.cfg
        case_seed = cell.workload_seed

        def is_bad(candidate: dict) -> bool:
            return not run_case(candidate, cfg, max_cycles=max_cycles,
                                fault=fault, oracle=oracle).ok

        if shrink:
            note(f"shrinking {key[0]} ...")
            small, info = shrink_spec(spec, is_bad, max_tests=shrink_tests)
        else:
            small, info = spec, {"reproduced": True, "tests": 0,
                                 "segments_before": len(spec["segments"]),
                                 "segments_after": len(spec["segments"])}
        final = run_case(small, cfg, max_cycles=max_cycles, fault=fault,
                         oracle=oracle)
        entry = {"key": key[0], "seed": case_seed,
                 "divergences": [d.to_dict() for d in final.divergences],
                 "instructions": final.instructions, "shrink": info}
        result.divergent.append(entry)
        if directory is not None:
            path = write_reproducer(
                Path(directory) / REPRO_DIR / f"{key[0]}.json",
                spec=small, original_spec=spec, gen=gen, cfg=cfg,
                seed=case_seed, divergences=final.divergences,
                shrink_info=info, fault=fault, oracle=oracle)
            entry["path"] = str(path)
            result.reproducer_paths.append(str(path))
            note(f"reproducer written: {path}")
    for key, record in divergent[MAX_SHRINKS:]:
        result.divergent.append({
            "key": key[0], "seed": by_key[key].workload_seed if key in by_key
            else None, "divergences": [], "instructions": None,
            "shrink": {"reproduced": True, "tests": 0, "skipped": True}})
    if len(divergent) > MAX_SHRINKS:
        note(f"{len(divergent) - MAX_SHRINKS} divergent case(s) beyond the "
             f"shrink cap recorded without reproducers")

    result.stats = _corpus_stats(cells, result.records)
    return result
