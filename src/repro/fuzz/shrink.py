"""Delta-debugging shrinker for fuzz divergences.

Shrinking operates purely on the *spec* (the JSON-able recipe consumed by
:func:`repro.fuzz.generator.materialize`), never on the instruction
stream — every candidate is re-materialized through the same grammar, so
a shrunken reproducer is still lint-strict-clean by construction and can
be replayed from its spec alone.

Three reduction families run to a fixed point, cheapest first:

1. **segment removal** — classic ddmin over the segment list (try
   dropping halves, then quarters, ... then single segments);
2. **structure reduction** — ``grid_x -> 1``, ``cta_x -> min``, and
   finally dropping the accumulator prologue/epilogue (``use_acc``);
3. **knob reduction** — per-segment knobs are individually driven toward
   their smallest value (loop trips to 2, arith chains to one op, atomic
   slots to 1, ...).

Before any of that, a **canonical-minimum probe** tries a handful of
floored one-segment specs (one per segment kind present, plus a bare
strided load, each with and without the accumulator) sorted by emitted
instruction count — engine-level bugs like a fault-injected fill delay
reproduce on almost any kernel with one load, so this usually jumps
straight to a 7-instruction reproducer instead of walking down to it.

The caller supplies ``is_bad(spec) -> bool`` ("does the divergence still
reproduce?"); results are memoized by spec fingerprint so re-visited
candidates cost nothing.
"""

from __future__ import annotations

import copy
import json

from repro.fuzz.generator import materialize

#: Per-knob "smallest interesting" values tried during knob reduction.
#: Order matters for string knobs: the first value that still reproduces
#: wins, so put the simplest first.
_KNOB_FLOOR = {
    "n": (1,),
    "body_n": (1,),
    "trips": (2,),
    "divergent": (False,),
    "stride": (0, 1),
    "offset": (0,),
    "rot": (1,),
    "cut": (1,),
    "slots": (1,),
    "sub": (0,),
    "v1": (1.0,),
    "v2": (1.0,),
    "c1": (1.0,),
    "c2": (1.0,),
    "writeback": (False,),
    "val": ("one",),
    "op": ("add",),
    "fn": ("sqrt",),
    "src": ("tid",),
    "buf": (0,),
    "flavor": ("int",),
}


def _floored(segment: dict) -> dict:
    return {k: (_KNOB_FLOOR[k][0] if k in _KNOB_FLOOR else v)
            for k, v in segment.items()}


def _instruction_count(spec: dict) -> int:
    try:
        return len(materialize(spec).kernel.instrs)
    except Exception:  # noqa: BLE001 - unbuildable candidates sort last
        return 1 << 30


def _minimal_candidates(spec: dict) -> list[dict]:
    """Floored one-segment specs to probe first, smallest kernel first."""
    base = {"v": spec.get("v", 1), "seed": spec["seed"],
            "cta_x": 32, "grid_x": 1}
    segment_choices = [
        {"kind": "gload", "buf": 0, "stride": 0, "offset": 0, "fold": True,
         "writeback": False},
        # The smallest kernel whose *timing* depends on a load: the
        # writeback store must wait for the fill (8 instructions total).
        {"kind": "gload", "buf": 0, "stride": 0, "offset": 0, "fold": True,
         "writeback": True},
    ]
    seen = set()
    for segment in spec["segments"]:
        if segment["kind"] not in seen:
            seen.add(segment["kind"])
            segment_choices.append(_floored(segment))
    candidates = [dict(base, use_acc=use_acc, segments=[dict(segment)])
                  for segment in segment_choices
                  for use_acc in (False, True)]
    candidates.sort(key=_instruction_count)
    return candidates


class _Shrinker:
    def __init__(self, is_bad, max_tests: int):
        self._is_bad = is_bad
        self._max_tests = max_tests
        self._cache: dict[str, bool] = {}
        self.tests = 0

    def bad(self, spec: dict) -> bool:
        key = json.dumps(spec, sort_keys=True)
        if key in self._cache:
            return self._cache[key]
        if self.tests >= self._max_tests:
            return False  # budget exhausted: treat as "didn't reproduce"
        self.tests += 1
        verdict = bool(self._is_bad(spec))
        self._cache[key] = verdict
        return verdict


def _ddmin_segments(spec: dict, sh: _Shrinker) -> dict:
    """Minimize ``spec['segments']`` by ddmin chunk removal."""
    segments = spec["segments"]
    chunk = max(1, len(segments) // 2)
    while len(segments) > 1:
        removed_any = False
        start = 0
        while start < len(segments):
            candidate = dict(spec)
            candidate["segments"] = segments[:start] + segments[start + chunk:]
            if candidate["segments"] and sh.bad(candidate):
                segments = candidate["segments"]
                removed_any = True
                # restart at same index: the list shifted left under us
            else:
                start += chunk
        if not removed_any:
            if chunk == 1:
                break
            chunk = max(1, chunk // 2)
    spec = dict(spec)
    spec["segments"] = segments
    return spec


def _reduce_structure(spec: dict, sh: _Shrinker) -> dict:
    for key, floor in (("grid_x", 1), ("cta_x", 32)):
        if spec.get(key, floor) != floor:
            candidate = dict(spec)
            candidate[key] = floor
            if sh.bad(candidate):
                spec = candidate
    if spec.get("use_acc", True):
        candidate = dict(spec)
        candidate["use_acc"] = False
        if sh.bad(candidate):
            spec = candidate
    return spec


def _reduce_knobs(spec: dict, sh: _Shrinker) -> dict:
    for i, segment in enumerate(spec["segments"]):
        for knob, floors in _KNOB_FLOOR.items():
            if knob not in segment:
                continue
            for floor in floors:
                if segment.get(knob) == floor:
                    break
                candidate = copy.deepcopy(spec)
                if segment["kind"] == "atomic" and knob == "op":
                    # Floor the reduction op on *every* atomic segment at
                    # once: mixing ops over one cell makes the final value
                    # interleaving-dependent, which would let the shrinker
                    # wander onto a divergence it invented itself.
                    for other in candidate["segments"]:
                        if other["kind"] == "atomic":
                            other[knob] = floor
                else:
                    candidate["segments"][i][knob] = floor
                if sh.bad(candidate):
                    spec = candidate
                    segment = spec["segments"][i]
                    break
    return spec


def shrink_spec(spec: dict, is_bad, max_tests: int = 300) -> tuple[dict, dict]:
    """Minimize ``spec`` while ``is_bad(spec)`` keeps returning True.

    Returns ``(smallest_spec, info)`` where ``info`` records the number of
    reduction tests executed and the before/after segment counts. If the
    original spec does not reproduce (``is_bad(spec)`` is False), it is
    returned unchanged with ``info["reproduced"] = False``.
    """
    sh = _Shrinker(is_bad, max_tests)
    original_segments = len(spec["segments"])
    if not sh.bad(spec):
        return spec, {"reproduced": False, "tests": sh.tests,
                      "segments_before": original_segments,
                      "segments_after": original_segments}

    current = copy.deepcopy(spec)
    for candidate in _minimal_candidates(spec):
        if sh.bad(candidate):
            current = candidate
            break
    while True:
        before = json.dumps(current, sort_keys=True)
        current = _ddmin_segments(current, sh)
        current = _reduce_structure(current, sh)
        current = _reduce_knobs(current, sh)
        if json.dumps(current, sort_keys=True) == before:
            break
        if sh.tests >= max_tests:
            break

    return current, {"reproduced": True, "tests": sh.tests,
                     "segments_before": original_segments,
                     "segments_after": len(current["segments"])}
