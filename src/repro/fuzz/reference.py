"""Sequential per-thread reference executor for generated kernels.

This is the semantic oracle of the differential harness: an interpreter
with *no* timing model, no warps, no caches — each thread of each CTA is
executed to completion as a scalar program, with barrier phases aligning
threads of a CTA at every ``BAR``.

Bit-exactness with the simulator's functional executor is achieved by
reusing its operator tables (:data:`repro.sim.exec._INT_BIN` et al.) on
1-element ``float64`` arrays — every arithmetic result goes through the
exact same numpy expression as the SIMD path, so even overflow to ``inf``
or a propagating ``NaN`` is reproduced bit for bit.

The executor is only a valid oracle for kernels obeying the generator's
memory discipline (:mod:`repro.fuzz.generator`): stores injective per
thread, loads from read-only buffers, and atomics exactly commutative.
Under those invariants any thread interleaving — including this one,
fully sequential — produces the same final memory image as the
simulator's warp-parallel execution.
"""

from __future__ import annotations

import numpy as np

from repro.isa.instruction import Imm, MemRef, Reg, SReg, SpecialReg
from repro.isa.opcodes import Op
from repro.sim.exec import _CMP, _FLOAT_BIN, _INT_BIN
from repro.sim.memory import MemoryError_

#: Per-thread dynamic instruction budget; generated loops are bounded far
#: below this, so hitting it means a generator or interpreter bug.
MAX_STEPS = 200_000


class ReferenceExecError(RuntimeError):
    """A semantic error (or budget blow-up) in the reference interpreter."""


def _special_values(t: int, ctaid, kernel, grid_dim, params) -> dict:
    """Special-register values for CTA-linear thread ``t``; mirrors
    :meth:`repro.sim.cta.CTA._special_regs` exactly (lane ``t % 32`` of
    local warp ``t // 32`` has linear id ``t``)."""
    ntid_x, ntid_y, ntid_z = kernel.cta_dim
    values = {
        SpecialReg.TID_X: float(t % ntid_x),
        SpecialReg.TID_Y: float((t // ntid_x) % ntid_y),
        SpecialReg.TID_Z: float(t // (ntid_x * ntid_y)),
        SpecialReg.CTAID_X: float(ctaid[0]),
        SpecialReg.CTAID_Y: float(ctaid[1]),
        SpecialReg.CTAID_Z: float(ctaid[2]),
        SpecialReg.NTID_X: float(ntid_x),
        SpecialReg.NTID_Y: float(ntid_y),
        SpecialReg.NTID_Z: float(ntid_z),
        SpecialReg.NCTAID_X: float(grid_dim[0]),
        SpecialReg.NCTAID_Y: float(grid_dim[1]),
        SpecialReg.NCTAID_Z: float(grid_dim[2]),
        SpecialReg.LANEID: float(t % 32),
        SpecialReg.WARPID: float(t // 32),
    }
    param_kinds = (SpecialReg.PARAM0, SpecialReg.PARAM1, SpecialReg.PARAM2,
                   SpecialReg.PARAM3, SpecialReg.PARAM4, SpecialReg.PARAM5,
                   SpecialReg.PARAM6, SpecialReg.PARAM7)
    for i, kind in enumerate(param_kinds):
        values[kind] = float(params[i]) if i < len(params) else 0.0
    return values


class _Thread:
    """One scalar thread: registers, pc, and barrier/exit state."""

    __slots__ = ("regs", "sregs", "pc", "done", "steps")

    def __init__(self, nregs: int, sregs: dict):
        self.regs = np.zeros(nregs, dtype=np.float64)
        self.sregs = sregs
        self.pc = 0
        self.done = False
        self.steps = 0


def _mem_index(data: np.ndarray, addr: int, space: str) -> int:
    if addr & 3:
        raise MemoryError_(f"misaligned {space} access at byte {addr}")
    idx = addr >> 2
    if idx < 0 or idx >= data.size:
        raise MemoryError_(f"{space} access out of bounds: byte {addr}")
    return idx


def _run_thread(thread: _Thread, kernel, gdata: np.ndarray,
                sdata: np.ndarray, smem_bytes: int) -> None:
    """Run one thread until it consumes a BAR, exits, or errors."""
    instrs = kernel.instrs
    regs = thread.regs

    def rd(operand) -> np.ndarray:
        if isinstance(operand, Reg):
            return regs[operand.idx : operand.idx + 1]
        if isinstance(operand, Imm):
            return np.full(1, float(operand.value))
        if isinstance(operand, SReg):
            return np.full(1, thread.sregs[operand.kind])
        raise ReferenceExecError(f"cannot read operand {operand!r}")

    def rd_int(operand) -> np.ndarray:
        return rd(operand).astype(np.int64)

    def wr(instr, values) -> None:
        regs[instr.dst.idx] = np.asarray(values, dtype=np.float64)[0]

    while True:
        thread.steps += 1
        if thread.steps > MAX_STEPS:
            raise ReferenceExecError(
                f"thread exceeded {MAX_STEPS} steps in {kernel.name!r}")
        if thread.pc >= len(instrs):
            raise ReferenceExecError(f"pc {thread.pc} fell off {kernel.name!r}")
        instr = instrs[thread.pc]
        op = instr.op

        enabled = True
        if instr.pred is not None:
            enabled = regs[instr.pred.idx] != 0
            if instr.pred_neg:
                enabled = not enabled

        if op is Op.BRA:
            thread.pc = instr.target if enabled else thread.pc + 1
            continue
        if op is Op.EXIT:
            if instr.pred is not None:
                raise ReferenceExecError("predicated EXIT is not supported")
            thread.done = True
            return
        if op is Op.BAR:
            if instr.pred is not None:
                raise ReferenceExecError("predicated BAR is not supported")
            thread.pc += 1
            return
        if not enabled or op is Op.NOP:
            thread.pc += 1
            continue

        if op in _INT_BIN:
            a, b = rd_int(instr.srcs[0]), rd_int(instr.srcs[1])
            if op in (Op.SHL, Op.SHR) and (b < 0).any():
                raise ReferenceExecError("negative shift amount")
            wr(instr, _INT_BIN[op](a, b).astype(np.float64))
        elif op in _FLOAT_BIN:
            wr(instr, _FLOAT_BIN[op](rd(instr.srcs[0]), rd(instr.srcs[1])))
        elif op is Op.IMAD:
            a, b, c = (rd_int(s) for s in instr.srcs)
            wr(instr, (a * b + c).astype(np.float64))
        elif op is Op.FFMA:
            a, b, c = (rd(s) for s in instr.srcs)
            wr(instr, a * b + c)
        elif op in (Op.IDIV, Op.IREM):
            a, b = rd_int(instr.srcs[0]), rd_int(instr.srcs[1])
            if (b == 0).any():
                raise ReferenceExecError("integer division by zero")
            quotient = np.trunc(a / b).astype(np.int64)
            wr(instr, (quotient if op is Op.IDIV else a - quotient * b
                       ).astype(np.float64))
        elif op is Op.FDIV:
            a, b = rd(instr.srcs[0]), rd(instr.srcs[1])
            if (b == 0).any():
                raise ReferenceExecError("float division by zero")
            wr(instr, a / b)
        elif op is Op.FSQRT:
            a = rd(instr.srcs[0])
            if (a < 0).any():
                raise ReferenceExecError("sqrt of negative value")
            wr(instr, np.sqrt(a))
        elif op is Op.FEXP:
            wr(instr, np.exp(rd(instr.srcs[0])))
        elif op is Op.FABS:
            wr(instr, np.abs(rd(instr.srcs[0])))
        elif op is Op.I2F:
            wr(instr, rd_int(instr.srcs[0]).astype(np.float64))
        elif op is Op.F2I:
            wr(instr, np.trunc(rd(instr.srcs[0])))
        elif op in (Op.MOV, Op.S2R):
            wr(instr, rd(instr.srcs[0]))
        elif op is Op.SEL:
            c, a, b = (rd(s) for s in instr.srcs)
            wr(instr, np.where(c != 0, a, b))
        elif op is Op.SETP:
            a, b = rd(instr.srcs[0]), rd(instr.srcs[1])
            wr(instr, _CMP[instr.cmp](a, b).astype(np.float64))
        elif op in (Op.LDG, Op.STG, Op.ATOMG_ADD, Op.ATOMG_MAX,
                    Op.LDS, Op.STS, Op.ATOMS_ADD):
            ref: MemRef = instr.srcs[0]
            addr = int(np.int64(regs[ref.base.idx])) + ref.offset
            if op in (Op.LDS, Op.STS, Op.ATOMS_ADD):
                if addr + 4 > smem_bytes:
                    raise MemoryError_(
                        f"shared access out of bounds: byte {addr}")
                data = sdata
            else:
                data = gdata
            idx = _mem_index(data, addr, "shared" if data is sdata else "global")
            if op in (Op.LDG, Op.LDS):
                wr(instr, data[idx : idx + 1])
            elif op in (Op.STG, Op.STS):
                data[idx] = rd(instr.srcs[1])[0]
            else:  # atomics: sequential read-modify-write, old value out
                old = data[idx]
                val = rd(instr.srcs[1])[0]
                data[idx] = max(old, val) if op is Op.ATOMG_MAX else old + val
                wr(instr, np.full(1, old))
        else:
            raise ReferenceExecError(f"unhandled opcode {op}")

        thread.pc += 1


def reference_execute(kernel, grid_dim, data: np.ndarray,
                      params: tuple[float, ...] = ()) -> None:
    """Execute ``kernel`` over ``grid_dim`` CTAs, mutating ``data`` (the
    flat word array of a :class:`~repro.sim.memory.GlobalMemory`) in place.

    CTAs run sequentially; threads of a CTA run in barrier phases (each
    thread advances until its next ``BAR`` or ``EXIT``, then the barrier
    releases once every unfinished thread has arrived).
    """
    gx, gy, gz = grid_dim
    nthreads = kernel.threads_per_cta
    smem_words = max(1, kernel.smem_bytes // 4)
    for cta in range(gx * gy * gz):
        ctaid = (cta % gx, (cta // gx) % gy, cta // (gx * gy))
        sdata = np.zeros(smem_words, dtype=np.float64)
        threads = []
        for t in range(nthreads):
            sregs = _special_values(t, ctaid, kernel, grid_dim, params)
            threads.append(_Thread(kernel.regs_per_thread, sregs))
        while any(not t.done for t in threads):
            for thread in threads:
                if not thread.done:
                    _run_thread(thread, kernel, data, sdata, kernel.smem_bytes)
