"""Seeded, deterministic structured-kernel generator.

The generator composes kernels from a small grammar of **segments** (loops,
branch diamonds, barriers, shared-memory tiles, predication, strided /
gathered global accesses, global atomics, SFU chains) constrained so every
emitted kernel passes ``lint --strict`` and :meth:`Kernel.validate` *by
construction*:

* barriers only appear in uniform top-level control flow (never inside a
  divergent loop or diamond), and every shared-memory tile is fenced
  ``STS -> BAR -> LDS -> BAR``, so the barrier-divergence and shared-race
  rules cannot fire;
* every scratch register is written before it is read, on every path
  (both polarities of predicated writes are emitted), keeping
  ``uninit-read`` clean;
* all addresses are in-bounds and 4-aligned by construction: stores are
  injective (one slot per thread), loads hit read-only input buffers, and
  atomics target a dedicated accumulator buffer with exactly-commutative
  integer-valued updates (their order-dependent *old value* goes to a
  poison register no instruction ever reads);
* integer chains are magnitude-bounded (shift/multiply budgets) so values
  stay exact in float64 and inside ``int64``.

Everything is driven by a :class:`KernelSpec`-shaped plain dict (the
**spec**): ``generate_spec(seed)`` draws one from a ``random.Random(seed)``
and ``materialize(spec)`` deterministically rebuilds the kernel *and* its
workload (buffer sizes are computed statically from the segments, inputs
come from ``numpy.random.default_rng`` seeded from the spec).  Specs are
JSON-safe, which is what makes shrinking (:mod:`repro.fuzz.shrink`) and
replayable reproducer dumps (:mod:`repro.fuzz.campaign`) cheap: the
shrinker edits the spec, never the instruction stream.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field

import numpy as np

from repro.isa.instruction import Imm
from repro.isa.kernel import Kernel, KernelBuilder
from repro.sim.memory import GlobalMemory

SPEC_VERSION = 1

#: Register conventions (regs_per_thread is fixed at 16).
R_TID = 0       # tid_x
R_CTAID = 1     # ctaid_x            (only materialized when grid_x > 1)
R_NTID = 2      # ntid_x             (only materialized when grid_x > 1)
R_GTID = 3      # global thread id   (aliases R_TID when grid_x == 1)
R_BYTEOFF = 4   # gtid * 4
R_ACC = 5       # float accumulator (loaded from in0, stored to out)
R_ADDR = 6      # prologue/epilogue address scratch
R_INT = 7       # integer scratch
R_FLT = 8       # float scratch
R_FLT2 = 9      # second float scratch
R_PRED = 10     # predicate register
R_INT2 = 11     # second integer scratch
R_POISON = 12   # atomic old-value sink; never read by any instruction
R_CTR = 13      # loop counter
R_BOUND = 14    # loop bound (divergent loops)
NUM_REGS = 16

#: Launch-parameter slots (``%param<i>``): buffer base addresses in order.
PARAM_IN0, PARAM_IN1, PARAM_OUT, PARAM_AUX, PARAM_IDX = range(5)

AUX_WORDS = 8  # atomic accumulator buffer (power of two)

SEGMENT_KINDS = ("arith", "loop", "gload", "gather", "smem", "pred",
                 "ifelse", "atomic", "sfu", "bar")


@dataclass(frozen=True)
class GenConfig:
    """Knobs of the generator grammar.

    ``version`` participates in spec fingerprints: changing the grammar in
    a way that alters what a (version, seed) pair produces must bump it,
    so stale journal entries and reproducer dumps are never misread.
    """

    version: int = SPEC_VERSION
    min_segments: int = 1
    max_segments: int = 6
    cta_choices: tuple[int, ...] = (32, 48, 64, 128)
    grid_choices: tuple[int, ...] = (1, 2, 3, 4)
    kinds: tuple[str, ...] = SEGMENT_KINDS

    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "min_segments": self.min_segments,
            "max_segments": self.max_segments,
            "cta_choices": list(self.cta_choices),
            "grid_choices": list(self.grid_choices),
            "kinds": list(self.kinds),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "GenConfig":
        return cls(
            version=int(data.get("version", SPEC_VERSION)),
            min_segments=int(data.get("min_segments", 1)),
            max_segments=int(data.get("max_segments", 6)),
            cta_choices=tuple(data.get("cta_choices", (32, 48, 64, 128))),
            grid_choices=tuple(data.get("grid_choices", (1, 2, 3, 4))),
            kinds=tuple(data.get("kinds", SEGMENT_KINDS)),
        )


def spec_fingerprint(spec: dict) -> str:
    """Stable 16-hex-char identity of one spec (content-addressed)."""
    blob = json.dumps(spec, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


# ---------------------------------------------------------------------------
# Spec generation
# ---------------------------------------------------------------------------

def _gen_segment(rng: random.Random, kind: str) -> dict:
    if kind == "arith":
        return {"kind": "arith", "flavor": rng.choice(("int", "float")),
                "n": rng.randint(2, 10), "sub": rng.randrange(1 << 30)}
    if kind == "loop":
        return {"kind": "loop", "trips": rng.randint(2, 8),
                "divergent": rng.random() < 0.4,
                "body_n": rng.randint(1, 4), "sub": rng.randrange(1 << 30)}
    if kind == "gload":
        return {"kind": "gload", "buf": rng.randint(0, 1),
                "stride": rng.choice((0, 1, 1, 2, 3, 8, 33)),
                "offset": rng.randint(0, 64), "fold": True,
                "writeback": rng.random() < 0.25}
    if kind == "gather":
        return {"kind": "gather", "fold": True}
    if kind == "smem":
        return {"kind": "smem", "rot": rng.randint(1, 31),
                "src": rng.choice(("acc", "tid"))}
    if kind == "pred":
        return {"kind": "pred", "cut": rng.randint(1, 96),
                "v1": round(rng.uniform(0.25, 4.0), 3),
                "v2": round(rng.uniform(0.25, 4.0), 3)}
    if kind == "ifelse":
        return {"kind": "ifelse", "cut": rng.randint(1, 96),
                "c1": round(rng.uniform(0.25, 4.0), 3),
                "c2": round(rng.uniform(0.25, 4.0), 3)}
    if kind == "atomic":
        return {"kind": "atomic", "op": rng.choice(("add", "max")),
                "slots": rng.choice((1, 2, 4, 8)),
                "val": rng.choice(("one", "tid"))}
    if kind == "sfu":
        return {"kind": "sfu", "fn": rng.choice(("sqrt", "exp", "div"))}
    if kind == "bar":
        return {"kind": "bar"}
    raise ValueError(f"unknown segment kind {kind!r}")


def generate_spec(seed: int, gen: GenConfig | None = None) -> dict:
    """Draw one kernel spec; same (seed, gen) always yields the same spec."""
    gen = gen or GenConfig()
    # Seeding with a string is deterministic across processes and platforms
    # (CPython hashes str seeds with sha512, not the randomized hash()).
    rng = random.Random(f"repro-fuzz:v{gen.version}:{seed}")
    segments = [_gen_segment(rng, rng.choice(gen.kinds))
                for _ in range(rng.randint(gen.min_segments, gen.max_segments))]
    # Pin every atomic segment to one reduction op: same-op commutative
    # reductions reach the same final cell value under any thread
    # interleaving, but *mixed* ops (max after some adds vs. before all
    # of them) are schedule-dependent and would make the sequential
    # reference executor diverge from any legitimate simulator ordering.
    atomics = [seg for seg in segments if seg["kind"] == "atomic"]
    for seg in atomics[1:]:
        seg["op"] = atomics[0]["op"]
    return {
        "v": gen.version,
        "seed": seed,
        "cta_x": rng.choice(gen.cta_choices),
        "grid_x": rng.choice(gen.grid_choices),
        "use_acc": True,
        "segments": segments,
    }


# ---------------------------------------------------------------------------
# Materialization: spec -> kernel + workload
# ---------------------------------------------------------------------------

def _needs(spec: dict) -> dict:
    """What the prologue must materialize, derived from the segments."""
    kinds = {seg["kind"] for seg in spec["segments"]}
    use_acc = bool(spec.get("use_acc", True))
    needs = {
        "acc": use_acc,
        "gtid": use_acc or bool(kinds & {"gload", "gather"}),
        "byteoff": use_acc or "gather" in kinds,
        "smem": "smem" in kinds,
    }
    return needs


def _buffer_words(spec: dict) -> dict[str, int]:
    """Statically computed buffer sizes (words) covering every access."""
    nthreads = spec["cta_x"] * spec["grid_x"]
    words = {"in0": nthreads, "in1": 1, "out": nthreads,
             "aux": AUX_WORDS, "idx": nthreads}
    for seg in spec["segments"]:
        if seg["kind"] == "gload":
            need = (nthreads - 1) * seg["stride"] + seg["offset"] + 1
            name = "in0" if seg["buf"] == 0 else "in1"
            words[name] = max(words[name], need)
    return words


class _Emitter:
    """Tracks per-segment label uniqueness while emitting one spec."""

    def __init__(self, spec: dict):
        self.spec = spec
        self.use_acc = bool(spec.get("use_acc", True))
        self.grid_x = spec["grid_x"]
        self.cta_x = spec["cta_x"]
        # When the grid is a single CTA the global thread id *is* tid_x;
        # skip the imad and alias the register (keeps shrunken kernels
        # at their true minimum instruction count).
        self.gtid_reg = R_TID if self.grid_x == 1 else R_GTID

    def prologue(self, b: KernelBuilder, needs: dict) -> None:
        b.s2r(R_TID, "tid_x")
        if needs["gtid"] and self.grid_x > 1:
            b.s2r(R_CTAID, "ctaid_x")
            b.s2r(R_NTID, "ntid_x")
            b.imad(R_GTID, R_CTAID, R_NTID, R_TID)
        if needs["byteoff"]:
            b.shl(R_BYTEOFF, self.gtid_reg, Imm(2))
        if needs["acc"]:
            b.s2r(R_ADDR, f"param{PARAM_IN0}")
            b.iadd(R_ADDR, R_ADDR, R_BYTEOFF)
            b.ldg(R_ACC, R_ADDR)

    def epilogue(self, b: KernelBuilder, needs: dict) -> None:
        if needs["acc"]:
            b.s2r(R_ADDR, f"param{PARAM_OUT}")
            b.iadd(R_ADDR, R_ADDR, R_BYTEOFF)
            b.stg(R_ADDR, R_ACC)
        b.exit()

    # -- segments ---------------------------------------------------------

    def segment(self, b: KernelBuilder, i: int, seg: dict) -> None:
        getattr(self, "_seg_" + seg["kind"])(b, i, seg)

    def _fold(self, b: KernelBuilder, src: int) -> None:
        if self.use_acc:
            b.fadd(R_ACC, R_ACC, src)

    def _float_seed(self, b: KernelBuilder, dst: int) -> None:
        """Define a float scratch value on every path, acc or not."""
        if self.use_acc:
            b.fadd(dst, R_ACC, Imm(0.5))
        else:
            b.i2f(dst, R_TID)
            b.fadd(dst, dst, Imm(0.5))

    def _seg_arith(self, b: KernelBuilder, i: int, seg: dict) -> None:
        rng = random.Random(f"arith:{seg['sub']}")
        if seg["flavor"] == "int":
            b.iadd(R_INT, R_TID, Imm(rng.randint(1, 9)))
            b.xor(R_INT2, R_TID, Imm(rng.randint(1, 9)))
            muls = shifts = 0
            for _ in range(seg["n"]):
                op = rng.choice(("iadd", "isub", "imul", "and_", "or_",
                                 "xor", "shl", "shr", "imin", "imax"))
                # Magnitude budget: at most two multiplies and two shifts
                # per segment keeps every intermediate exact in float64
                # and far inside int64.
                if op == "imul":
                    if muls >= 2:
                        op = "iadd"
                    else:
                        muls += 1
                if op == "shl":
                    if shifts >= 2:
                        op = "or_"
                    else:
                        shifts += 1
                rhs = (R_INT2 if op not in ("shl", "shr") and rng.random() < 0.4
                       else Imm(rng.randint(1, 4) if op in ("shl", "shr", "imul")
                                else rng.randint(1, 9)))
                getattr(b, op)(R_INT, R_INT, rhs)
            b.i2f(R_FLT, R_INT)
            b.fmul(R_FLT, R_FLT, Imm(0.125))
            self._fold(b, R_FLT)
        else:
            self._float_seed(b, R_FLT)
            for _ in range(seg["n"]):
                op = rng.choice(("fadd", "fsub", "fmul", "fmin", "fmax", "ffma"))
                c = Imm(round(rng.uniform(0.25, 4.0), 3))
                if op == "ffma":
                    b.ffma(R_FLT, R_FLT, c, Imm(round(rng.uniform(0.25, 4.0), 3)))
                else:
                    getattr(b, op)(R_FLT, R_FLT, c)
            self._fold(b, R_FLT)

    def _seg_loop(self, b: KernelBuilder, i: int, seg: dict) -> None:
        rng = random.Random(f"loop:{seg['sub']}")
        label = f"L{i}_top"
        b.movi(R_CTR, 0)
        if seg["divergent"]:
            b.and_(R_BOUND, R_TID, Imm(3))
            b.iadd(R_BOUND, R_BOUND, Imm(seg["trips"]))
        if self.use_acc:
            b.movi(R_FLT, 1.0)
        else:
            b.movi(R_INT, 0)
        b.label(label)
        for _ in range(seg["body_n"]):
            if self.use_acc:
                op = rng.choice(("fadd", "fmul"))
                getattr(b, op)(R_FLT, R_FLT,
                               Imm(round(rng.uniform(0.5, 1.5), 3)))
            else:
                b.iadd(R_INT, R_INT, Imm(rng.randint(1, 5)))
        b.iadd(R_CTR, R_CTR, Imm(1))
        if seg["divergent"]:
            b.setp("lt", R_PRED, R_CTR, R_BOUND)
        else:
            b.setp("lt", R_PRED, R_CTR, Imm(seg["trips"]))
        b.bra(label, pred=R_PRED)
        if self.use_acc:
            self._fold(b, R_FLT)

    def _seg_gload(self, b: KernelBuilder, i: int, seg: dict) -> None:
        if seg["stride"] == 0:
            b.movi(R_INT, seg["offset"])
        else:
            b.imul(R_INT, self.gtid_reg, Imm(seg["stride"]))
            if seg["offset"]:
                b.iadd(R_INT, R_INT, Imm(seg["offset"]))
        b.shl(R_INT, R_INT, Imm(2))
        param = PARAM_IN0 if seg["buf"] == 0 else PARAM_IN1
        b.s2r(R_INT2, f"param{param}")
        b.iadd(R_INT, R_INT, R_INT2)
        b.ldg(R_FLT, R_INT)
        if seg.get("writeback"):
            # Store the loaded value straight back to its own address: the
            # memory image is unchanged (even when threads share an address
            # they all write the value that was already there), but the STG
            # now *depends* on the fill — a minimal kernel whose timing is
            # sensitive to load latency, which is what fault-injection
            # canaries shrink down to.
            b.stg(R_INT, R_FLT)
        if seg.get("fold", True):
            self._fold(b, R_FLT)

    def _seg_gather(self, b: KernelBuilder, i: int, seg: dict) -> None:
        b.s2r(R_INT2, f"param{PARAM_IDX}")
        b.iadd(R_INT, R_INT2, R_BYTEOFF)
        b.ldg(R_INT, R_INT)  # word index into in0, in [0, nthreads)
        b.shl(R_INT, R_INT, Imm(2))
        b.s2r(R_INT2, f"param{PARAM_IN0}")
        b.iadd(R_INT, R_INT, R_INT2)
        b.ldg(R_FLT, R_INT)
        if seg.get("fold", True):
            self._fold(b, R_FLT)

    def _seg_smem(self, b: KernelBuilder, i: int, seg: dict) -> None:
        b.shl(R_INT, R_TID, Imm(2))
        if seg["src"] == "acc" and self.use_acc:
            b.sts(R_INT, R_ACC)
        else:
            b.i2f(R_FLT, R_TID)
            b.sts(R_INT, R_FLT)
        b.bar()
        rot = 1 + (seg["rot"] - 1) % (self.cta_x - 1)  # never the identity
        b.iadd(R_INT, R_TID, Imm(rot))
        if self.cta_x & (self.cta_x - 1) == 0:
            b.and_(R_INT, R_INT, Imm(self.cta_x - 1))
        else:
            b.irem(R_INT, R_INT, Imm(self.cta_x))
        b.shl(R_INT, R_INT, Imm(2))
        b.lds(R_FLT, R_INT)
        b.bar()
        self._fold(b, R_FLT)

    def _seg_pred(self, b: KernelBuilder, i: int, seg: dict) -> None:
        cut = 1 + (seg["cut"] - 1) % max(1, self.cta_x - 1)
        b.setp("lt", R_PRED, R_TID, Imm(cut))
        b.movi(R_FLT, seg["v1"], pred=R_PRED)
        b.movi(R_FLT, seg["v2"], pred=R_PRED, pred_neg=True)
        self._fold(b, R_FLT)

    def _seg_ifelse(self, b: KernelBuilder, i: int, seg: dict) -> None:
        cut = 1 + (seg["cut"] - 1) % max(1, self.cta_x - 1)
        if not self.use_acc:
            b.i2f(R_FLT2, R_TID)
        src = R_ACC if self.use_acc else R_FLT2
        b.setp("ge", R_PRED, R_TID, Imm(cut))
        b.bra(f"F{i}_else", pred=R_PRED, pred_neg=True)
        b.fmul(R_FLT, src, Imm(seg["c1"]))
        b.bra(f"F{i}_end")
        b.label(f"F{i}_else")
        b.fadd(R_FLT, src, Imm(seg["c2"]))
        b.label(f"F{i}_end")
        self._fold(b, R_FLT)

    def _seg_atomic(self, b: KernelBuilder, i: int, seg: dict) -> None:
        b.and_(R_INT, R_TID, Imm(seg["slots"] - 1))
        b.shl(R_INT, R_INT, Imm(2))
        b.s2r(R_INT2, f"param{PARAM_AUX}")
        b.iadd(R_INT, R_INT, R_INT2)
        if seg["val"] == "one":
            b.movi(R_FLT2, 1.0)
        else:
            b.i2f(R_FLT2, R_TID)
        if seg["op"] == "max":
            b.atomg_max(R_POISON, R_INT, R_FLT2)
        else:
            b.atomg_add(R_POISON, R_INT, R_FLT2)

    def _seg_sfu(self, b: KernelBuilder, i: int, seg: dict) -> None:
        self._float_seed(b, R_FLT)
        if seg["fn"] == "sqrt":
            b.fabs(R_FLT, R_FLT)
            b.fsqrt(R_FLT, R_FLT)
        elif seg["fn"] == "exp":
            b.fmin(R_FLT, R_FLT, Imm(20.0))
            b.fexp(R_FLT, R_FLT)
        else:
            b.fdiv(R_FLT, R_FLT, Imm(1.75))
        self._fold(b, R_FLT)

    def _seg_bar(self, b: KernelBuilder, i: int, seg: dict) -> None:
        b.bar()


@dataclass
class FuzzCase:
    """One materialized spec: the kernel plus its deterministic workload."""

    spec: dict
    kernel: Kernel
    grid_dim: tuple[int, int, int]
    buffers: list  # [(name, words, values | None)] in allocation order
    nthreads: int
    needs: dict = field(repr=False, default_factory=dict)

    def make_gmem(self, line_bytes: int = 128) -> tuple[GlobalMemory, tuple]:
        """A fresh global memory with inputs written; returns (gmem, params)."""
        gmem = GlobalMemory(line_bytes=line_bytes)
        bases = []
        for name, words, values in self.buffers:
            bases.append(gmem.alloc(name, words))
            if values is not None:
                gmem.write(name, values)
        return gmem, tuple(float(base) for base in bases)


def materialize(spec: dict) -> FuzzCase:
    """Deterministically rebuild the kernel and workload for ``spec``."""
    needs = _needs(spec)
    emitter = _Emitter(spec)
    words = _buffer_words(spec)
    nthreads = spec["cta_x"] * spec["grid_x"]
    smem_bytes = spec["cta_x"] * 4 if needs["smem"] else 0

    b = KernelBuilder(f"fuzz_{spec['seed']}", regs_per_thread=NUM_REGS,
                      smem_bytes=smem_bytes, cta_dim=(spec["cta_x"], 1, 1))
    emitter.prologue(b, needs)
    for i, seg in enumerate(spec["segments"]):
        emitter.segment(b, i, seg)
    emitter.epilogue(b, needs)
    kernel = b.build()

    seed = spec["seed"]
    in0 = np.random.default_rng((seed, 1)).uniform(0.25, 2.0, words["in0"])
    in1 = np.random.default_rng((seed, 2)).uniform(0.25, 2.0, words["in1"])
    idx = np.random.default_rng((seed, 3)).integers(
        0, nthreads, words["idx"]).astype(np.float64)
    buffers = [
        ("in0", words["in0"], in0),
        ("in1", words["in1"], in1),
        ("out", words["out"], None),
        ("aux", words["aux"], None),
        ("idx", words["idx"], idx),
    ]
    return FuzzCase(spec=spec, kernel=kernel,
                    grid_dim=(spec["grid_x"], 1, 1), buffers=buffers,
                    nthreads=nthreads, needs=needs)
