"""Differential testing of one generated kernel across engines and arches.

For one spec, :func:`run_case` runs the full cross product:

* **engines**: the per-cycle reference engine vs the event-driven
  fast-forward engine (``cfg.fast_forward``) vs the sharded parallel
  engine (``cfg.engine = "parallel"``, shard count derived from the
  seed), whose statistics must be byte-identical
  (``SimStats.to_dict()`` equality);
* **architectures**: ``baseline`` and ``vt`` (each with its own engine
  pair and sanitizer run);
* **sanitizer**: a ``sanitize=True`` leg per architecture, which both
  checks the per-cycle invariants *and* cross-checks every observed
  memory access cost against the static ``memaccess`` lo..hi bounds
  (rule ``exec-access-cost``) — the oracle-bounds part of the contract;
* **semantics**: every leg's final global memory must equal the
  pure-python reference executor's (:mod:`repro.fuzz.reference`),
  compared bit-exactly (``NaN`` positions included);
* **static oracle**: the performance oracle's idle-class prediction is
  compared against the measured idle breakdown (recorded always;
  enforced when ``oracle="check"``);
* **cycle bounds**: per architecture, the reference leg's total cycle
  count must fall inside the sound static interval from
  :func:`repro.isa.analysis.bounds.kernel_bounds` — *hard-enforced*:
  a count outside ``[lo, hi]`` is a ``bound`` divergence.  A kernel the
  bound analyzer declines (unresolvable loop) skips the leg with status
  ``"unbounded"``; an analyzer *crash* is itself a divergence.

The simulated :class:`~repro.sim.config.GPUConfig` is *sampled* per seed
(:func:`sample_config`): SM count, warp scheduler, CTA dispatch order,
VT trigger/select policies, and MSHR pressure all vary, so scheduling-
dependent engine bugs cannot hide behind one fixed configuration.

A ``fault`` plan (a :class:`repro.sim.faults.FaultPlan` as a dict) is
applied to the fast-forward leg only — the planted-bug canary: injected
fill delays silently change that leg's timing, which the stats
comparison must detect.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import numpy as np

from repro.fuzz.generator import materialize
from repro.fuzz.reference import reference_execute
from repro.sim.config import GPUConfig, scaled_fermi
from repro.sim.faults import FaultPlan
from repro.sim.gpu import GPU

#: Cycle budget per simulation leg; generated kernels finish orders of
#: magnitude earlier, so hitting it is itself a reportable divergence.
DEFAULT_MAX_CYCLES = 300_000

ARCHS = ("baseline", "vt")

#: Divergence kinds, roughly ordered by severity.
KINDS = ("lint", "reference-crash", "crash", "sanitizer", "stats-mismatch",
         "output-mismatch", "bound", "oracle-idle")


def sample_config(seed: int, version: int = 1) -> GPUConfig:
    """Deterministically sample the simulated machine for one case."""
    rng = random.Random(f"repro-fuzz-cfg:v{version}:{seed}")
    return scaled_fermi(
        num_sms=rng.choice((1, 2)),
        warp_scheduler=rng.choice(("lrr", "gto", "two-level")),
        cta_dispatch=rng.choice(("round-robin", "fill-first")),
        vt_trigger_policy=rng.choice(("all-stalled", "majority-stalled",
                                      "timeout")),
        vt_select_policy=rng.choice(("oldest-ready", "most-ready",
                                     "most-recent")),
        l1_mshrs=rng.choice((64, 64, 8)),
    )


@dataclass(frozen=True)
class Divergence:
    """One detected disagreement between two views of the same kernel."""

    kind: str  # see KINDS
    leg: str  # e.g. "vt/fast-forward", "baseline/sanitize", "case"
    detail: str

    def to_dict(self) -> dict:
        return {"kind": self.kind, "leg": self.leg, "detail": self.detail}

    @classmethod
    def from_dict(cls, data: dict) -> "Divergence":
        return cls(kind=data["kind"], leg=data["leg"], detail=data["detail"])

    def __str__(self) -> str:
        return f"[{self.kind}] {self.leg}: {self.detail}"


@dataclass
class DiffResult:
    """Everything the differential harness learned about one spec."""

    spec: dict
    divergences: list[Divergence] = field(default_factory=list)
    #: leg name -> {"status": "ok"|..., "cycles": int|None}
    legs: dict = field(default_factory=dict)
    instructions: int = 0
    oracle: dict = field(default_factory=dict)  # arch -> prediction summary
    #: stats dict of the first architecture's reference leg (for reporting)
    ref_stats: dict | None = None

    @property
    def ok(self) -> bool:
        return not self.divergences

    def summary(self) -> str:
        if self.ok:
            return "ok"
        return "; ".join(str(d) for d in self.divergences[:4])

    def to_dict(self) -> dict:
        return {
            "spec": self.spec,
            "ok": self.ok,
            "divergences": [d.to_dict() for d in self.divergences],
            "legs": self.legs,
            "instructions": self.instructions,
            "oracle": self.oracle,
        }


def _first_stat_diff(a: dict, b: dict, path: str = "") -> str:
    """Human-readable first difference between two stats dicts."""
    for key in sorted(set(a) | set(b)):
        va, vb = a.get(key), b.get(key)
        where = f"{path}{key}"
        if isinstance(va, dict) and isinstance(vb, dict):
            nested = _first_stat_diff(va, vb, where + ".")
            if nested:
                return nested
        elif isinstance(va, list) and isinstance(vb, list):
            for i, (ia, ib) in enumerate(zip(va, vb)):
                if isinstance(ia, dict) and isinstance(ib, dict):
                    nested = _first_stat_diff(ia, ib, f"{where}[{i}].")
                    if nested:
                        return nested
                elif ia != ib:
                    return f"{where}[{i}]: {ia} != {ib}"
            if len(va) != len(vb):
                return f"{where}: length {len(va)} != {len(vb)}"
        elif va != vb:
            return f"{where}: {va} != {vb}"
    return ""


def _output_diff(got: np.ndarray, expected: np.ndarray) -> str:
    same = (got == expected) | (np.isnan(got) & np.isnan(expected))
    bad = np.flatnonzero(~same)
    first = int(bad[0])
    return (f"{bad.size} word(s) differ; first at word {first}: "
            f"got {got[first]!r}, expected {expected[first]!r}")


def run_case(spec: dict, cfg: GPUConfig | None = None, *,
             max_cycles: int = DEFAULT_MAX_CYCLES, fault: dict | None = None,
             oracle: str = "record", archs: tuple[str, ...] = ARCHS) -> DiffResult:
    """Run the full differential matrix for one spec; never raises for a
    kernel-level problem — everything lands in ``result.divergences``.

    ``oracle="check"`` turns an idle-class disagreement into a divergence;
    the default records the prediction alongside the measurement.
    ``fault`` (a :class:`FaultPlan` field dict) is injected into the
    fast-forward leg only.
    """
    result = DiffResult(spec=spec)

    try:
        case = materialize(spec)
    except Exception as exc:  # noqa: BLE001 - the harness must not die
        result.divergences.append(Divergence(
            "reference-crash", "case", f"materialize: {type(exc).__name__}: {exc}"))
        return result
    result.instructions = len(case.kernel.instrs)

    from repro.isa.analysis import lint_kernel

    report = lint_kernel(case.kernel)
    if not report.ok(strict=True):
        for finding in (report.errors + report.warnings)[:4]:
            result.divergences.append(Divergence("lint", "case", str(finding)))
        return result

    cfg = cfg if cfg is not None else sample_config(spec["seed"])

    gmem, params = case.make_gmem(line_bytes=cfg.line_bytes)
    expected = gmem.data.copy()
    try:
        reference_execute(case.kernel, case.grid_dim, expected, params)
    except Exception as exc:  # noqa: BLE001
        result.divergences.append(Divergence(
            "reference-crash", "case", f"{type(exc).__name__}: {exc}"))
        return result

    # Launch-parameter values (non-pointer params) let the bound leg
    # resolve parameter-valued loop bounds, mirroring perf.layout_for.
    buffer_bases = {base for base, _nbytes in gmem._buffers.values()}
    param_values = {i: int(p) for i, p in enumerate(params)
                    if p not in buffer_bases}
    gx, gy, gz = case.grid_dim
    ctas = gx * gy * gz

    def launch(leg: str, run_cfg: GPUConfig, faults=None):
        """One simulation leg; returns (stats_dict, data) or (None, None)."""
        fresh, fresh_params = case.make_gmem(line_bytes=run_cfg.line_bytes)
        try:
            res = GPU(run_cfg).launch(case.kernel, case.grid_dim, fresh,
                                      fresh_params, max_cycles=max_cycles,
                                      faults=faults)
        except Exception as exc:  # noqa: BLE001
            from repro.sim.sanitizer import InvariantViolation

            kind = ("sanitizer" if isinstance(exc, InvariantViolation)
                    else "crash")
            result.divergences.append(Divergence(
                kind, leg, f"{type(exc).__name__}: {exc}"))
            result.legs[leg] = {"status": kind, "cycles": None}
            return None, None
        result.legs[leg] = {"status": "ok", "cycles": res.stats.cycles}
        return res.stats.to_dict(), fresh.data

    for arch in archs:
        base = cfg.with_(arch=arch)
        ref_stats, ref_data = launch(
            f"{arch}/reference", base.with_(fast_forward=False))
        if result.ref_stats is None and ref_stats is not None:
            result.ref_stats = ref_stats
        fault_plan = FaultPlan(**fault) if fault else None
        ff_stats, ff_data = launch(
            f"{arch}/fast-forward", base.with_(fast_forward=True),
            faults=fault_plan)
        san_stats, san_data = launch(
            f"{arch}/sanitize", base.with_(sanitize=True, fast_forward=False))
        # Sharded-engine leg: shard count varies with the seed so both the
        # in-process (1) and forked (2) drivers see fuzz traffic.  The
        # engine may decline and rerun serially — still required to match.
        par_stats, par_data = launch(
            f"{arch}/parallel",
            base.with_(engine="parallel", sim_jobs=1 + spec.get("seed", 0) % 2))

        if ref_stats is not None and ff_stats is not None and ref_stats != ff_stats:
            result.divergences.append(Divergence(
                "stats-mismatch", f"{arch}/fast-forward",
                _first_stat_diff(ff_stats, ref_stats)))
        if ref_stats is not None and san_stats is not None and ref_stats != san_stats:
            result.divergences.append(Divergence(
                "stats-mismatch", f"{arch}/sanitize",
                _first_stat_diff(san_stats, ref_stats)))
        if par_stats is not None and ref_stats is not None and par_stats != ref_stats:
            result.divergences.append(Divergence(
                "stats-mismatch", f"{arch}/parallel",
                _first_stat_diff(par_stats, ref_stats)))
        for leg, data in (("reference", ref_data), ("fast-forward", ff_data),
                          ("sanitize", san_data), ("parallel", par_data)):
            if data is not None and not np.array_equal(data, expected,
                                                       equal_nan=True):
                result.divergences.append(Divergence(
                    "output-mismatch", f"{arch}/{leg}",
                    _output_diff(data, expected)))

        # -- static cycle bounds vs measurement (hard-enforced) -----------
        if ref_stats is not None:
            from repro.isa.analysis.bounds import (IrregularControlFlow,
                                                   UnboundedLoop,
                                                   kernel_bounds)

            try:
                kb = kernel_bounds(case.kernel, base, mode=arch, ctas=ctas,
                                   param_values=param_values)
            except (UnboundedLoop, IrregularControlFlow) as exc:
                kb = None
                result.legs[f"{arch}/bound"] = {"status": "unbounded",
                                                "cycles": None,
                                                "detail": str(exc)}
            except Exception as exc:  # noqa: BLE001 - analyzer crash is a finding
                kb = None
                result.divergences.append(Divergence(
                    "bound", f"{arch}/bound",
                    f"bound analyzer crashed: {type(exc).__name__}: {exc}"))
            if kb is not None:
                cycles = result.legs[f"{arch}/reference"]["cycles"]
                result.legs[f"{arch}/bound"] = {
                    "status": "ok" if kb.contains(cycles) else "violated",
                    "cycles": cycles, "lo": kb.lo, "hi": kb.hi}
                if not kb.contains(cycles):
                    result.divergences.append(Divergence(
                        "bound", f"{arch}/bound",
                        f"simulated {cycles} outside [{kb.lo}, {kb.hi}]"))

        # -- static oracle vs measurement ---------------------------------
        if ref_stats is not None:
            from repro.isa.analysis.perf import idle_agreement, predict
            from repro.sim.stats import SimStats

            try:
                prediction = predict(case.kernel, base, arch=arch)
            except Exception as exc:  # noqa: BLE001 - oracle crash is a finding
                result.divergences.append(Divergence(
                    "oracle-idle", f"{arch}/oracle",
                    f"predict crashed: {type(exc).__name__}: {exc}"))
                continue
            breakdown = SimStats.from_dict(ref_stats).idle_breakdown()
            agrees, dominant, ratio = idle_agreement(
                prediction.idle_class, breakdown)
            result.oracle[arch] = {
                "limiter": prediction.limiter,
                "idle_class": prediction.idle_class,
                "measured_idle": dominant,
                "agreement_ratio": round(ratio, 3),
                "agrees": bool(agrees),
            }
            if oracle == "check" and not agrees:
                result.divergences.append(Divergence(
                    "oracle-idle", f"{arch}/oracle",
                    f"predicted {prediction.idle_class}, measured {dominant} "
                    f"(ratio {ratio:.2f})"))

    return result
