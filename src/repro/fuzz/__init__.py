"""Property-based kernel fuzzing: generation, differential testing, shrinking.

The fuzzer closes the loop on every correctness claim in the repo: instead
of trusting the 21 hand-written registry kernels, it generates an unbounded
stream of structured kernels (:mod:`.generator`), runs each one through
every engine/architecture combination against a pure-python reference
executor (:mod:`.differential`), and minimizes any divergence to a smallest
reproducer (:mod:`.shrink`) that replays deterministically
(:mod:`.campaign`, ``repro fuzz --replay``).
"""

from repro.fuzz.generator import (
    GenConfig,
    FuzzCase,
    generate_spec,
    materialize,
    spec_fingerprint,
)
from repro.fuzz.differential import DiffResult, Divergence, run_case
from repro.fuzz.shrink import shrink_spec
from repro.fuzz.campaign import (
    load_reproducer,
    replay_reproducer,
    run_campaign,
    run_fuzz_cell,
    write_reproducer,
)

__all__ = [
    "GenConfig",
    "FuzzCase",
    "generate_spec",
    "materialize",
    "spec_fingerprint",
    "DiffResult",
    "Divergence",
    "run_case",
    "shrink_spec",
    "run_campaign",
    "run_fuzz_cell",
    "write_reproducer",
    "load_reproducer",
    "replay_reproducer",
]
